# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_util[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_fft[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_tensor[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_db[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_io[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ops[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_core[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_lg_dp[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_nn[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_route[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_extensions[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_fences[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_properties[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_launch_counts[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_telemetry[1]_include.cmake")
