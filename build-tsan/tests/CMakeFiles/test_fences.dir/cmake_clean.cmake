file(REMOVE_RECURSE
  "CMakeFiles/test_fences.dir/test_fences.cpp.o"
  "CMakeFiles/test_fences.dir/test_fences.cpp.o.d"
  "test_fences"
  "test_fences.pdb"
  "test_fences[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
