# Empty dependencies file for test_fences.
# This may be replaced when dependencies are built.
