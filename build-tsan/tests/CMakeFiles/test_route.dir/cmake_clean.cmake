file(REMOVE_RECURSE
  "CMakeFiles/test_route.dir/test_route.cpp.o"
  "CMakeFiles/test_route.dir/test_route.cpp.o.d"
  "test_route"
  "test_route.pdb"
  "test_route[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
