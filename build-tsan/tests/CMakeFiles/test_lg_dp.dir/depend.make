# Empty dependencies file for test_lg_dp.
# This may be replaced when dependencies are built.
