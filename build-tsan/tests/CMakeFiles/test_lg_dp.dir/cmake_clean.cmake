file(REMOVE_RECURSE
  "CMakeFiles/test_lg_dp.dir/test_lg_dp.cpp.o"
  "CMakeFiles/test_lg_dp.dir/test_lg_dp.cpp.o.d"
  "test_lg_dp"
  "test_lg_dp.pdb"
  "test_lg_dp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lg_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
