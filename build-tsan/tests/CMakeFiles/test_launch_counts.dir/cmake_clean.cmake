file(REMOVE_RECURSE
  "CMakeFiles/test_launch_counts.dir/test_launch_counts.cpp.o"
  "CMakeFiles/test_launch_counts.dir/test_launch_counts.cpp.o.d"
  "test_launch_counts"
  "test_launch_counts.pdb"
  "test_launch_counts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_launch_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
