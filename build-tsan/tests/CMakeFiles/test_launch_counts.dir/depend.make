# Empty dependencies file for test_launch_counts.
# This may be replaced when dependencies are built.
