file(REMOVE_RECURSE
  "libxplace_telemetry.a"
)
