file(REMOVE_RECURSE
  "CMakeFiles/xplace_telemetry.dir/export.cpp.o"
  "CMakeFiles/xplace_telemetry.dir/export.cpp.o.d"
  "CMakeFiles/xplace_telemetry.dir/metrics.cpp.o"
  "CMakeFiles/xplace_telemetry.dir/metrics.cpp.o.d"
  "CMakeFiles/xplace_telemetry.dir/trace.cpp.o"
  "CMakeFiles/xplace_telemetry.dir/trace.cpp.o.d"
  "libxplace_telemetry.a"
  "libxplace_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
