# Empty dependencies file for xplace_telemetry.
# This may be replaced when dependencies are built.
