# Empty compiler generated dependencies file for xplace_route.
# This may be replaced when dependencies are built.
