file(REMOVE_RECURSE
  "CMakeFiles/xplace_route.dir/congestion.cpp.o"
  "CMakeFiles/xplace_route.dir/congestion.cpp.o.d"
  "CMakeFiles/xplace_route.dir/inflation.cpp.o"
  "CMakeFiles/xplace_route.dir/inflation.cpp.o.d"
  "libxplace_route.a"
  "libxplace_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
