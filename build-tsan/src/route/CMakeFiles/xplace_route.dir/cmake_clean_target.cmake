file(REMOVE_RECURSE
  "libxplace_route.a"
)
