# Empty compiler generated dependencies file for xplace_dp.
# This may be replaced when dependencies are built.
