
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dp/detailed_placer.cpp" "src/dp/CMakeFiles/xplace_dp.dir/detailed_placer.cpp.o" "gcc" "src/dp/CMakeFiles/xplace_dp.dir/detailed_placer.cpp.o.d"
  "/root/repo/src/dp/global_swap.cpp" "src/dp/CMakeFiles/xplace_dp.dir/global_swap.cpp.o" "gcc" "src/dp/CMakeFiles/xplace_dp.dir/global_swap.cpp.o.d"
  "/root/repo/src/dp/hpwl_eval.cpp" "src/dp/CMakeFiles/xplace_dp.dir/hpwl_eval.cpp.o" "gcc" "src/dp/CMakeFiles/xplace_dp.dir/hpwl_eval.cpp.o.d"
  "/root/repo/src/dp/hungarian.cpp" "src/dp/CMakeFiles/xplace_dp.dir/hungarian.cpp.o" "gcc" "src/dp/CMakeFiles/xplace_dp.dir/hungarian.cpp.o.d"
  "/root/repo/src/dp/ism.cpp" "src/dp/CMakeFiles/xplace_dp.dir/ism.cpp.o" "gcc" "src/dp/CMakeFiles/xplace_dp.dir/ism.cpp.o.d"
  "/root/repo/src/dp/local_reorder.cpp" "src/dp/CMakeFiles/xplace_dp.dir/local_reorder.cpp.o" "gcc" "src/dp/CMakeFiles/xplace_dp.dir/local_reorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/db/CMakeFiles/xplace_db.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lg/CMakeFiles/xplace_lg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/xplace_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/telemetry/CMakeFiles/xplace_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
