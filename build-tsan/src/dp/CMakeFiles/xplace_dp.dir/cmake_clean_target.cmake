file(REMOVE_RECURSE
  "libxplace_dp.a"
)
