file(REMOVE_RECURSE
  "CMakeFiles/xplace_dp.dir/detailed_placer.cpp.o"
  "CMakeFiles/xplace_dp.dir/detailed_placer.cpp.o.d"
  "CMakeFiles/xplace_dp.dir/global_swap.cpp.o"
  "CMakeFiles/xplace_dp.dir/global_swap.cpp.o.d"
  "CMakeFiles/xplace_dp.dir/hpwl_eval.cpp.o"
  "CMakeFiles/xplace_dp.dir/hpwl_eval.cpp.o.d"
  "CMakeFiles/xplace_dp.dir/hungarian.cpp.o"
  "CMakeFiles/xplace_dp.dir/hungarian.cpp.o.d"
  "CMakeFiles/xplace_dp.dir/ism.cpp.o"
  "CMakeFiles/xplace_dp.dir/ism.cpp.o.d"
  "CMakeFiles/xplace_dp.dir/local_reorder.cpp.o"
  "CMakeFiles/xplace_dp.dir/local_reorder.cpp.o.d"
  "libxplace_dp.a"
  "libxplace_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
