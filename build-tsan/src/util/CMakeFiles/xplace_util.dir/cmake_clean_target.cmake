file(REMOVE_RECURSE
  "libxplace_util.a"
)
