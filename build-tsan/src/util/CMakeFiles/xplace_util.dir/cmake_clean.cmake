file(REMOVE_RECURSE
  "CMakeFiles/xplace_util.dir/arg_parser.cpp.o"
  "CMakeFiles/xplace_util.dir/arg_parser.cpp.o.d"
  "CMakeFiles/xplace_util.dir/logging.cpp.o"
  "CMakeFiles/xplace_util.dir/logging.cpp.o.d"
  "CMakeFiles/xplace_util.dir/thread_pool.cpp.o"
  "CMakeFiles/xplace_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/xplace_util.dir/timer.cpp.o"
  "CMakeFiles/xplace_util.dir/timer.cpp.o.d"
  "libxplace_util.a"
  "libxplace_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
