# Empty dependencies file for xplace_util.
# This may be replaced when dependencies are built.
