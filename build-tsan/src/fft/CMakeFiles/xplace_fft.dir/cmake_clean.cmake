file(REMOVE_RECURSE
  "CMakeFiles/xplace_fft.dir/dct.cpp.o"
  "CMakeFiles/xplace_fft.dir/dct.cpp.o.d"
  "CMakeFiles/xplace_fft.dir/fft.cpp.o"
  "CMakeFiles/xplace_fft.dir/fft.cpp.o.d"
  "CMakeFiles/xplace_fft.dir/reference.cpp.o"
  "CMakeFiles/xplace_fft.dir/reference.cpp.o.d"
  "libxplace_fft.a"
  "libxplace_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
