# Empty dependencies file for xplace_fft.
# This may be replaced when dependencies are built.
