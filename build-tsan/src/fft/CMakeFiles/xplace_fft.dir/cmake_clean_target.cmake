file(REMOVE_RECURSE
  "libxplace_fft.a"
)
