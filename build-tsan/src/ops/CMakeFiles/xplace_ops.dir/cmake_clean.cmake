file(REMOVE_RECURSE
  "CMakeFiles/xplace_ops.dir/density.cpp.o"
  "CMakeFiles/xplace_ops.dir/density.cpp.o.d"
  "CMakeFiles/xplace_ops.dir/electrostatics.cpp.o"
  "CMakeFiles/xplace_ops.dir/electrostatics.cpp.o.d"
  "CMakeFiles/xplace_ops.dir/netlist_view.cpp.o"
  "CMakeFiles/xplace_ops.dir/netlist_view.cpp.o.d"
  "CMakeFiles/xplace_ops.dir/parallel.cpp.o"
  "CMakeFiles/xplace_ops.dir/parallel.cpp.o.d"
  "CMakeFiles/xplace_ops.dir/wirelength.cpp.o"
  "CMakeFiles/xplace_ops.dir/wirelength.cpp.o.d"
  "CMakeFiles/xplace_ops.dir/wirelength_tape.cpp.o"
  "CMakeFiles/xplace_ops.dir/wirelength_tape.cpp.o.d"
  "libxplace_ops.a"
  "libxplace_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
