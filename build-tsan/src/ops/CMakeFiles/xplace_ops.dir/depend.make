# Empty dependencies file for xplace_ops.
# This may be replaced when dependencies are built.
