file(REMOVE_RECURSE
  "libxplace_ops.a"
)
