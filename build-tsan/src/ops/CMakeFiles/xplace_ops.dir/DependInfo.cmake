
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ops/density.cpp" "src/ops/CMakeFiles/xplace_ops.dir/density.cpp.o" "gcc" "src/ops/CMakeFiles/xplace_ops.dir/density.cpp.o.d"
  "/root/repo/src/ops/electrostatics.cpp" "src/ops/CMakeFiles/xplace_ops.dir/electrostatics.cpp.o" "gcc" "src/ops/CMakeFiles/xplace_ops.dir/electrostatics.cpp.o.d"
  "/root/repo/src/ops/netlist_view.cpp" "src/ops/CMakeFiles/xplace_ops.dir/netlist_view.cpp.o" "gcc" "src/ops/CMakeFiles/xplace_ops.dir/netlist_view.cpp.o.d"
  "/root/repo/src/ops/parallel.cpp" "src/ops/CMakeFiles/xplace_ops.dir/parallel.cpp.o" "gcc" "src/ops/CMakeFiles/xplace_ops.dir/parallel.cpp.o.d"
  "/root/repo/src/ops/wirelength.cpp" "src/ops/CMakeFiles/xplace_ops.dir/wirelength.cpp.o" "gcc" "src/ops/CMakeFiles/xplace_ops.dir/wirelength.cpp.o.d"
  "/root/repo/src/ops/wirelength_tape.cpp" "src/ops/CMakeFiles/xplace_ops.dir/wirelength_tape.cpp.o" "gcc" "src/ops/CMakeFiles/xplace_ops.dir/wirelength_tape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/db/CMakeFiles/xplace_db.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/xplace_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fft/CMakeFiles/xplace_fft.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/xplace_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/telemetry/CMakeFiles/xplace_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
