# Empty compiler generated dependencies file for xplace_nn.
# This may be replaced when dependencies are built.
