file(REMOVE_RECURSE
  "CMakeFiles/xplace_nn.dir/data.cpp.o"
  "CMakeFiles/xplace_nn.dir/data.cpp.o.d"
  "CMakeFiles/xplace_nn.dir/fno.cpp.o"
  "CMakeFiles/xplace_nn.dir/fno.cpp.o.d"
  "CMakeFiles/xplace_nn.dir/guidance.cpp.o"
  "CMakeFiles/xplace_nn.dir/guidance.cpp.o.d"
  "CMakeFiles/xplace_nn.dir/layers.cpp.o"
  "CMakeFiles/xplace_nn.dir/layers.cpp.o.d"
  "libxplace_nn.a"
  "libxplace_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
