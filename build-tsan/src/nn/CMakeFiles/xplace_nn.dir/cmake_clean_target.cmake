file(REMOVE_RECURSE
  "libxplace_nn.a"
)
