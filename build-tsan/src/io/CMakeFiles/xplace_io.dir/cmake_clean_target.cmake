file(REMOVE_RECURSE
  "libxplace_io.a"
)
