# Empty dependencies file for xplace_io.
# This may be replaced when dependencies are built.
