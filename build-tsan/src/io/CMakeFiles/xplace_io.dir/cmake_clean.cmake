file(REMOVE_RECURSE
  "CMakeFiles/xplace_io.dir/bookshelf.cpp.o"
  "CMakeFiles/xplace_io.dir/bookshelf.cpp.o.d"
  "CMakeFiles/xplace_io.dir/generator.cpp.o"
  "CMakeFiles/xplace_io.dir/generator.cpp.o.d"
  "CMakeFiles/xplace_io.dir/plot.cpp.o"
  "CMakeFiles/xplace_io.dir/plot.cpp.o.d"
  "CMakeFiles/xplace_io.dir/suites.cpp.o"
  "CMakeFiles/xplace_io.dir/suites.cpp.o.d"
  "libxplace_io.a"
  "libxplace_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
