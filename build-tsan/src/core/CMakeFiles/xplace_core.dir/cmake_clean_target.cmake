file(REMOVE_RECURSE
  "libxplace_core.a"
)
