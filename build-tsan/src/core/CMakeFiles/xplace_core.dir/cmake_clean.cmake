file(REMOVE_RECURSE
  "CMakeFiles/xplace_core.dir/gradient_engine.cpp.o"
  "CMakeFiles/xplace_core.dir/gradient_engine.cpp.o.d"
  "CMakeFiles/xplace_core.dir/optimizer.cpp.o"
  "CMakeFiles/xplace_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/xplace_core.dir/placer.cpp.o"
  "CMakeFiles/xplace_core.dir/placer.cpp.o.d"
  "CMakeFiles/xplace_core.dir/recorder.cpp.o"
  "CMakeFiles/xplace_core.dir/recorder.cpp.o.d"
  "CMakeFiles/xplace_core.dir/scheduler.cpp.o"
  "CMakeFiles/xplace_core.dir/scheduler.cpp.o.d"
  "libxplace_core.a"
  "libxplace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
