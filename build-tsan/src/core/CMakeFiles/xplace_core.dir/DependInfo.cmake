
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gradient_engine.cpp" "src/core/CMakeFiles/xplace_core.dir/gradient_engine.cpp.o" "gcc" "src/core/CMakeFiles/xplace_core.dir/gradient_engine.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/xplace_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/xplace_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/placer.cpp" "src/core/CMakeFiles/xplace_core.dir/placer.cpp.o" "gcc" "src/core/CMakeFiles/xplace_core.dir/placer.cpp.o.d"
  "/root/repo/src/core/recorder.cpp" "src/core/CMakeFiles/xplace_core.dir/recorder.cpp.o" "gcc" "src/core/CMakeFiles/xplace_core.dir/recorder.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/xplace_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/xplace_core.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/ops/CMakeFiles/xplace_ops.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/db/CMakeFiles/xplace_db.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/xplace_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/xplace_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fft/CMakeFiles/xplace_fft.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/telemetry/CMakeFiles/xplace_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
