# Empty dependencies file for xplace_core.
# This may be replaced when dependencies are built.
