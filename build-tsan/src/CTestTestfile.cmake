# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("telemetry")
subdirs("util")
subdirs("fft")
subdirs("tensor")
subdirs("db")
subdirs("io")
subdirs("ops")
subdirs("core")
subdirs("nn")
subdirs("lg")
subdirs("dp")
subdirs("route")
