file(REMOVE_RECURSE
  "libxplace_tensor.a"
)
