# Empty dependencies file for xplace_tensor.
# This may be replaced when dependencies are built.
