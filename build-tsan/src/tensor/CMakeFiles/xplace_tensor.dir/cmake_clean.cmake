file(REMOVE_RECURSE
  "CMakeFiles/xplace_tensor.dir/dispatch.cpp.o"
  "CMakeFiles/xplace_tensor.dir/dispatch.cpp.o.d"
  "CMakeFiles/xplace_tensor.dir/ops.cpp.o"
  "CMakeFiles/xplace_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/xplace_tensor.dir/tape.cpp.o"
  "CMakeFiles/xplace_tensor.dir/tape.cpp.o.d"
  "CMakeFiles/xplace_tensor.dir/tensor.cpp.o"
  "CMakeFiles/xplace_tensor.dir/tensor.cpp.o.d"
  "libxplace_tensor.a"
  "libxplace_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
