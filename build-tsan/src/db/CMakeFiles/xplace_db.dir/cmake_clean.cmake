file(REMOVE_RECURSE
  "CMakeFiles/xplace_db.dir/database.cpp.o"
  "CMakeFiles/xplace_db.dir/database.cpp.o.d"
  "CMakeFiles/xplace_db.dir/stats.cpp.o"
  "CMakeFiles/xplace_db.dir/stats.cpp.o.d"
  "libxplace_db.a"
  "libxplace_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
