file(REMOVE_RECURSE
  "libxplace_db.a"
)
