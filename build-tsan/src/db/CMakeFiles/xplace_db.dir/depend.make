# Empty dependencies file for xplace_db.
# This may be replaced when dependencies are built.
