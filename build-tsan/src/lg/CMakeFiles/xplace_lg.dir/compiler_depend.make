# Empty compiler generated dependencies file for xplace_lg.
# This may be replaced when dependencies are built.
