
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lg/abacus.cpp" "src/lg/CMakeFiles/xplace_lg.dir/abacus.cpp.o" "gcc" "src/lg/CMakeFiles/xplace_lg.dir/abacus.cpp.o.d"
  "/root/repo/src/lg/checker.cpp" "src/lg/CMakeFiles/xplace_lg.dir/checker.cpp.o" "gcc" "src/lg/CMakeFiles/xplace_lg.dir/checker.cpp.o.d"
  "/root/repo/src/lg/row_map.cpp" "src/lg/CMakeFiles/xplace_lg.dir/row_map.cpp.o" "gcc" "src/lg/CMakeFiles/xplace_lg.dir/row_map.cpp.o.d"
  "/root/repo/src/lg/tetris.cpp" "src/lg/CMakeFiles/xplace_lg.dir/tetris.cpp.o" "gcc" "src/lg/CMakeFiles/xplace_lg.dir/tetris.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/db/CMakeFiles/xplace_db.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/xplace_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/telemetry/CMakeFiles/xplace_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
