file(REMOVE_RECURSE
  "CMakeFiles/xplace_lg.dir/abacus.cpp.o"
  "CMakeFiles/xplace_lg.dir/abacus.cpp.o.d"
  "CMakeFiles/xplace_lg.dir/checker.cpp.o"
  "CMakeFiles/xplace_lg.dir/checker.cpp.o.d"
  "CMakeFiles/xplace_lg.dir/row_map.cpp.o"
  "CMakeFiles/xplace_lg.dir/row_map.cpp.o.d"
  "CMakeFiles/xplace_lg.dir/tetris.cpp.o"
  "CMakeFiles/xplace_lg.dir/tetris.cpp.o.d"
  "libxplace_lg.a"
  "libxplace_lg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xplace_lg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
