file(REMOVE_RECURSE
  "libxplace_lg.a"
)
