file(REMOVE_RECURSE
  "../bench/bench_nn_field"
  "../bench/bench_nn_field.pdb"
  "CMakeFiles/bench_nn_field.dir/bench_nn_field.cpp.o"
  "CMakeFiles/bench_nn_field.dir/bench_nn_field.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nn_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
