# Empty compiler generated dependencies file for bench_nn_field.
# This may be replaced when dependencies are built.
