file(REMOVE_RECURSE
  "../bench/bench_convergence_trace"
  "../bench/bench_convergence_trace.pdb"
  "CMakeFiles/bench_convergence_trace.dir/bench_convergence_trace.cpp.o"
  "CMakeFiles/bench_convergence_trace.dir/bench_convergence_trace.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_convergence_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
