# Empty dependencies file for bench_convergence_trace.
# This may be replaced when dependencies are built.
