file(REMOVE_RECURSE
  "../bench/bench_telemetry_overhead"
  "../bench/bench_telemetry_overhead.pdb"
  "CMakeFiles/bench_telemetry_overhead.dir/bench_telemetry_overhead.cpp.o"
  "CMakeFiles/bench_telemetry_overhead.dir/bench_telemetry_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_telemetry_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
