file(REMOVE_RECURSE
  "../bench/bench_table2_ispd2005"
  "../bench/bench_table2_ispd2005.pdb"
  "CMakeFiles/bench_table2_ispd2005.dir/bench_table2_ispd2005.cpp.o"
  "CMakeFiles/bench_table2_ispd2005.dir/bench_table2_ispd2005.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_ispd2005.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
