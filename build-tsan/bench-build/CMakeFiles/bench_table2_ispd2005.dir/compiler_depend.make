# Empty compiler generated dependencies file for bench_table2_ispd2005.
# This may be replaced when dependencies are built.
