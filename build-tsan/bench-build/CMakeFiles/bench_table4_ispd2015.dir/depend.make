# Empty dependencies file for bench_table4_ispd2015.
# This may be replaced when dependencies are built.
