file(REMOVE_RECURSE
  "../bench/bench_table4_ispd2015"
  "../bench/bench_table4_ispd2015.pdb"
  "CMakeFiles/bench_table4_ispd2015.dir/bench_table4_ispd2015.cpp.o"
  "CMakeFiles/bench_table4_ispd2015.dir/bench_table4_ispd2015.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_ispd2015.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
