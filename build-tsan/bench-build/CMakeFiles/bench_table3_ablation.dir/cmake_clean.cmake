file(REMOVE_RECURSE
  "../bench/bench_table3_ablation"
  "../bench/bench_table3_ablation.pdb"
  "CMakeFiles/bench_table3_ablation.dir/bench_table3_ablation.cpp.o"
  "CMakeFiles/bench_table3_ablation.dir/bench_table3_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
