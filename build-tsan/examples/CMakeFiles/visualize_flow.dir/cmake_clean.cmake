file(REMOVE_RECURSE
  "CMakeFiles/visualize_flow.dir/visualize_flow.cpp.o"
  "CMakeFiles/visualize_flow.dir/visualize_flow.cpp.o.d"
  "visualize_flow"
  "visualize_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
