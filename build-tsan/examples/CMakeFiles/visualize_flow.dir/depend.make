# Empty dependencies file for visualize_flow.
# This may be replaced when dependencies are built.
