
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/visualize_flow.cpp" "examples/CMakeFiles/visualize_flow.dir/visualize_flow.cpp.o" "gcc" "examples/CMakeFiles/visualize_flow.dir/visualize_flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/xplace_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/io/CMakeFiles/xplace_io.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lg/CMakeFiles/xplace_lg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dp/CMakeFiles/xplace_dp.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ops/CMakeFiles/xplace_ops.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/fft/CMakeFiles/xplace_fft.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tensor/CMakeFiles/xplace_tensor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/db/CMakeFiles/xplace_db.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/xplace_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/telemetry/CMakeFiles/xplace_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
