file(REMOVE_RECURSE
  "CMakeFiles/routability_driven.dir/routability_driven.cpp.o"
  "CMakeFiles/routability_driven.dir/routability_driven.cpp.o.d"
  "routability_driven"
  "routability_driven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routability_driven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
