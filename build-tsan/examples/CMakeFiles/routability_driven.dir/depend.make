# Empty dependencies file for routability_driven.
# This may be replaced when dependencies are built.
