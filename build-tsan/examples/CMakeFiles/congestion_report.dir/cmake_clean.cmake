file(REMOVE_RECURSE
  "CMakeFiles/congestion_report.dir/congestion_report.cpp.o"
  "CMakeFiles/congestion_report.dir/congestion_report.cpp.o.d"
  "congestion_report"
  "congestion_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
