# Empty dependencies file for congestion_report.
# This may be replaced when dependencies are built.
