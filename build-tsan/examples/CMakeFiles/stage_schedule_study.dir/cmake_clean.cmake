file(REMOVE_RECURSE
  "CMakeFiles/stage_schedule_study.dir/stage_schedule_study.cpp.o"
  "CMakeFiles/stage_schedule_study.dir/stage_schedule_study.cpp.o.d"
  "stage_schedule_study"
  "stage_schedule_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stage_schedule_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
