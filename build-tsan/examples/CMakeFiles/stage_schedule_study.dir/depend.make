# Empty dependencies file for stage_schedule_study.
# This may be replaced when dependencies are built.
