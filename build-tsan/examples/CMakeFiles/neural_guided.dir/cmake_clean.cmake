file(REMOVE_RECURSE
  "CMakeFiles/neural_guided.dir/neural_guided.cpp.o"
  "CMakeFiles/neural_guided.dir/neural_guided.cpp.o.d"
  "neural_guided"
  "neural_guided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neural_guided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
