# Empty dependencies file for neural_guided.
# This may be replaced when dependencies are built.
