file(REMOVE_RECURSE
  "CMakeFiles/fence_regions.dir/fence_regions.cpp.o"
  "CMakeFiles/fence_regions.dir/fence_regions.cpp.o.d"
  "fence_regions"
  "fence_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fence_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
