# Empty dependencies file for fence_regions.
# This may be replaced when dependencies are built.
