#!/usr/bin/env bash
# CI lanes for Xplace. Run all lanes (default) or a single one:
#
#   ci/run_ci.sh [tier1|tier1-mt|tier1-scalar|tier1-serve|tier1-obs|tier1-chaos|tier1-batch|tier1-portfolio|faultinject|asan-ubsan|tsan|all]
#
#   tier1       plain build, full ctest suite
#   tier1-mt    same build, full ctest suite with XPLACE_THREADS=4 so every
#               module that consults the execution backend runs on the
#               threadpool — launch counts, numerics contracts, and recovery
#               logic must hold on both backends
#   tier1-scalar same build, full ctest suite with XPLACE_SIMD=scalar so the
#               whole flow runs on the scalar kernel table — the bitwise
#               determinism baseline must pass independent of host CPU
#               features
#   tier1-serve serving-subsystem smoke: start the xplace_serve daemon on a
#               Unix socket, drive it with xplace_client — two demo jobs, one
#               cancelled mid-run — assert both reach the expected terminal
#               state, and shut the daemon down gracefully (exit 0)
#   tier1-obs   observability-plane smoke (DESIGN.md §12): traced daemon runs
#               two jobs, the `metrics` scrape must expose the serve-level
#               SLO metric families, the Chrome trace must contain per-job
#               GP/LG/DP spans, and the perf-regression gate must pass its
#               selftest plus an advisory comparison against the committed
#               BENCH_simd.json baseline
#   tier1-chaos crash-recovery smoke (DESIGN.md §13): a daemon with
#               --state-dir runs three jobs, gets SIGKILLed mid-run after the
#               first XPCK spill lands, restarts over the same state dir,
#               must log that it is recovering, finish all three jobs, and
#               the resumed job's HPWL must bitwise-match an uninterrupted
#               reference run of the same spec
#   tier1-batch design-store + batch-sweep smoke (DESIGN.md §14): upload one
#               demo design, fan a 6-config sweep (with one repeated config)
#               over it, assert the daemon parsed the design exactly once
#               (serve_design_parses), every member reached a terminal done
#               state, and the repeated config was dedup-served by its twin
#   tier1-portfolio portfolio-racing smoke (DESIGN.md §16): a daemon with an
#               aggressive kill policy races a K=4 perturbed-restart
#               portfolio over 2 slots; the design must parse exactly once, a
#               winner must be selected, at least one laggard must be killed
#               early, and a fresh bench_portfolio run is compared (advisory)
#               against the committed BENCH_portfolio.json baseline
#   faultinject guardian/recovery tests (ctest -L faultinject) plus an
#               end-to-end XPLACE_FAULT matrix over the place_bookshelf demo:
#               every injected fault must be recovered (exit 0, legal result)
#   asan-ubsan  -DXPLACE_SANITIZE=address,undefined build; the recovery paths
#               (rollback, checkpoint restore, fault injection) are exactly
#               where stale pointers/uninitialized reads would hide, and the
#               SIMD kernels' masked heads/tails are exactly where
#               out-of-bounds lanes would hide, so the guardian and SIMD
#               parity suites run memory-clean under ASan+UBSan
#   tsan        -DXPLACE_SANITIZE=thread build, shared-state tests
#               (ctest -L concurrency) plus the end-to-end demo on the
#               threadpool backend — the full GP/LG/DP flow must be
#               race-clean under --threads 4
set -euo pipefail
cd "$(dirname "$0")/.."

lane="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

build() { # build <dir> [extra cmake args...]
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
}

run_tier1() {
  build build-ci
  ctest --test-dir build-ci --output-on-failure -j "$jobs"
}

run_tier1_mt() {
  build build-ci
  XPLACE_THREADS=4 ctest --test-dir build-ci --output-on-failure -j "$jobs"
}

run_tier1_scalar() {
  build build-ci
  XPLACE_SIMD=scalar ctest --test-dir build-ci --output-on-failure -j "$jobs"
}

serve_fail() { # serve_fail <message>  (kills the daemon, then fails the lane)
  echo "$1" >&2
  kill "$serve_daemon_pid" 2>/dev/null || true
  return 1
}

run_tier1_serve() {
  build build-ci
  local sock="/tmp/xplace_ci_$$.sock"
  local client=./build-ci/examples/xplace_client

  echo "=== tier1-serve lane: daemon smoke on $sock ==="
  ./build-ci/examples/xplace_serve --socket "$sock" --jobs 2 &
  serve_daemon_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || serve_fail "daemon never bound $sock" || return 1

  # Job 1 runs to completion; job 2 is long and gets cancelled mid-run.
  local id1 id2
  id1=$("$client" --socket "$sock" submit --demo-cells 1000 --max-iters 150 \
        --label ci_done | sed -n 's/.*"id":\([0-9]*\).*/\1/p') || true
  id2=$("$client" --socket "$sock" submit --demo-cells 8000 --max-iters 5000 \
        --label ci_cancel | sed -n 's/.*"id":\([0-9]*\).*/\1/p') || true
  { [ -n "$id1" ] && [ -n "$id2" ]; } \
      || serve_fail "submit failed" || return 1

  # Poll until job 2 streams its first progress events, then cancel it
  # immediately — many seconds before a run this size could finish.
  local ev="" streaming=0
  for _ in $(seq 1 100); do
    ev=$("$client" --socket "$sock" events --id "$id2" --timeout-s 0.2) || true
    if echo "$ev" | grep -q '"event"'; then streaming=1; break; fi
    sleep 0.1
  done
  [ "$streaming" = 1 ] \
      || serve_fail "no progress events streamed for job $id2" || return 1
  "$client" --socket "$sock" cancel --id "$id2" >/dev/null \
      || serve_fail "cancel failed" || return 1

  local r1 r2
  r1=$("$client" --socket "$sock" result --id "$id1" --wait --timeout-s 300) \
      || serve_fail "result for job $id1 failed" || return 1
  r2=$("$client" --socket "$sock" result --id "$id2" --wait --timeout-s 300) \
      || serve_fail "result for job $id2 failed" || return 1
  echo "job $id1: $r1"
  echo "job $id2: $r2"
  echo "$r1" | grep -q '"state":"done"' \
      || serve_fail "job 1 did not finish" || return 1
  echo "$r2" | grep -q '"state":"cancelled"' \
      || serve_fail "job 2 was not cancelled" || return 1
  echo "$r2" | grep -q '"stop_reason":"cancelled"' \
      || serve_fail "job 2 stop_reason wrong" || return 1

  # Graceful shutdown must complete and leave the daemon exiting 0.
  "$client" --socket "$sock" shutdown >/dev/null \
      || serve_fail "shutdown request failed" || return 1
  wait "$serve_daemon_pid" || serve_fail "daemon exited non-zero" || return 1
  echo "=== tier1-serve lane passed ==="
}

run_tier1_obs() {
  build build-ci
  local sock="/tmp/xplace_ci_obs_$$.sock"
  local trace="/tmp/xplace_ci_obs_$$.trace.json"
  local client=./build-ci/examples/xplace_client

  echo "=== tier1-obs lane: traced daemon + metrics scrape on $sock ==="
  ./build-ci/examples/xplace_serve --socket "$sock" --jobs 2 \
      --trace-out "$trace" &
  serve_daemon_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || serve_fail "daemon never bound $sock" || return 1

  # Two demo jobs to terminal state so the SLO histograms have samples.
  local id
  for id in 1 2; do
    "$client" --socket "$sock" submit --demo-cells 800 --max-iters 120 \
        --label "obs$id" >/dev/null \
        || serve_fail "submit $id failed" || return 1
  done
  "$client" --socket "$sock" result --id 1 --wait --timeout-s 300 \
      | grep -q '"state":"done"' \
      || serve_fail "job 1 did not finish" || return 1
  "$client" --socket "$sock" result --id 2 --wait --timeout-s 300 \
      | grep -q '"state":"done"' \
      || serve_fail "job 2 did not finish" || return 1

  # Scrape surface: every serve-level metric family must be present, and the
  # histograms must carry enough samples to derive percentiles from.
  local metrics
  metrics=$("$client" --socket "$sock" metrics) \
      || serve_fail "metrics scrape failed" || return 1
  local family
  for family in \
      xplace_serve_queue_wait_s_bucket xplace_serve_queue_wait_s_count \
      xplace_serve_run_s_bucket xplace_serve_e2e_s_bucket \
      xplace_serve_submitted xplace_serve_completed; do
    echo "$metrics" | grep -q "$family" \
        || serve_fail "metric family missing from scrape: $family" || return 1
  done
  echo "$metrics" | grep -q 'xplace_serve_e2e_s_count 2' \
      || serve_fail "e2e histogram did not observe both jobs" || return 1

  # Stats carries server-side percentile summaries for the watch dashboard.
  "$client" --socket "$sock" stats | grep -q '"latency"' \
      || serve_fail "stats lacks the latency summary" || return 1

  "$client" --socket "$sock" shutdown >/dev/null \
      || serve_fail "shutdown request failed" || return 1
  wait "$serve_daemon_pid" || serve_fail "daemon exited non-zero" || return 1

  # The Chrome trace must hold one per-job timeline: job-root, GP, LG and DP
  # spans, plus per-job process_name tracks carrying the submit labels.
  [ -s "$trace" ] || serve_fail "daemon wrote no trace to $trace" || return 1
  local span
  for span in '"serve.job"' '"gp.run"' '"serve.lg"' '"serve.dp"' \
      'obs1' 'obs2' '"process_name"'; do
    grep -q "$span" "$trace" \
        || serve_fail "trace lacks $span" || return 1
  done
  rm -f "$trace"

  # Perf-regression gate: selftest (a synthetic 2x slowdown must be flagged),
  # then an advisory comparison of a fresh micro-bench run against the
  # committed baseline — advisory because shared CI runners are noisy.
  ./build-ci/bench/check_regression --selftest \
      || { echo "check_regression selftest failed" >&2; return 1; }
  local fresh="/tmp/xplace_ci_obs_$$.bench.json"
  ./build-ci/bench/bench_micro_ops --json "$fresh" >/dev/null \
      || { echo "bench_micro_ops run failed" >&2; return 1; }
  ./build-ci/bench/check_regression --baseline BENCH_simd.json \
      --current "$fresh" --advisory \
      || { echo "advisory regression check errored" >&2; return 1; }
  rm -f "$fresh"

  # Same gate over the FFT plan-engine transforms (dct2/idct2/idxst_idct and
  # the full Poisson solve, scalar/AVX2 x serial/pooled): a lost plan cache
  # or de-fused pass shows up as a ~2x ns_per_iter jump, well outside the
  # 60% per-row band BENCH_fft.json ships.
  local fresh_fft="/tmp/xplace_ci_obs_$$.fft.bench.json"
  ./build-ci/bench/bench_micro_ops --json-fft "$fresh_fft" >/dev/null \
      || { echo "bench_micro_ops --json-fft run failed" >&2; return 1; }
  ./build-ci/bench/check_regression --baseline BENCH_fft.json \
      --current "$fresh_fft" --advisory \
      || { echo "advisory FFT regression check errored" >&2; return 1; }
  rm -f "$fresh_fft"
  echo "=== tier1-obs lane passed ==="
}

run_tier1_chaos() {
  build build-ci
  local sock="/tmp/xplace_ci_chaos_$$.sock"
  local state="/tmp/xplace_ci_chaos_$$.state"
  local log="/tmp/xplace_ci_chaos_$$.log"
  local client=./build-ci/examples/xplace_client
  rm -rf "$state"

  # Job 1's spec, shared by the reference and the chaos run. Large enough
  # that the first spill (iter 50) lands many seconds before the run ends.
  local cells=8000 iters=400 spill=50

  echo "=== tier1-chaos lane: reference run (uninterrupted) ==="
  ./build-ci/examples/xplace_serve --socket "$sock" --jobs 1 &
  serve_daemon_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || serve_fail "reference daemon never bound $sock" || return 1
  "$client" --socket "$sock" submit --demo-cells "$cells" \
      --max-iters "$iters" --label chaos_ref >/dev/null \
      || serve_fail "reference submit failed" || return 1
  local ref hpwl_ref
  ref=$("$client" --socket "$sock" result --id 1 --wait --timeout-s 600) \
      || serve_fail "reference result failed" || return 1
  echo "$ref" | grep -q '"state":"done"' \
      || serve_fail "reference job did not finish" || return 1
  hpwl_ref=$(echo "$ref" | sed -n 's/.*"hpwl":\([^,}]*\).*/\1/p')
  [ -n "$hpwl_ref" ] || serve_fail "no reference hpwl" || return 1
  "$client" --socket "$sock" shutdown >/dev/null \
      || serve_fail "reference shutdown failed" || return 1
  wait "$serve_daemon_pid" \
      || serve_fail "reference daemon exited non-zero" || return 1

  echo "=== tier1-chaos lane: SIGKILL mid-run, restart, recover ==="
  ./build-ci/examples/xplace_serve --socket "$sock" --jobs 1 \
      --state-dir "$state" --spill-every "$spill" >"$log" 2>&1 &
  serve_daemon_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || serve_fail "chaos daemon never bound $sock" || return 1
  # Same spec as the reference, plus two queued jobs behind the single slot.
  "$client" --socket "$sock" submit --demo-cells "$cells" \
      --max-iters "$iters" --label chaos_resume >/dev/null \
      || serve_fail "chaos submit 1 failed" || return 1
  "$client" --socket "$sock" submit --demo-cells 1000 --max-iters 100 \
      --label chaos_q1 >/dev/null \
      || serve_fail "chaos submit 2 failed" || return 1
  "$client" --socket "$sock" submit --demo-cells 1000 --max-iters 100 \
      --label chaos_q2 >/dev/null \
      || serve_fail "chaos submit 3 failed" || return 1

  # Kill -9 the instant job 1's first durable spill lands: the journal now
  # holds a checkpoint record, jobs 2 and 3 are still queued.
  local spilled=0
  for _ in $(seq 1 600); do
    if [ -s "$state/job1.xpck" ]; then spilled=1; break; fi
    sleep 0.05
  done
  [ "$spilled" = 1 ] \
      || serve_fail "job 1 never spilled a checkpoint" || return 1
  kill -9 "$serve_daemon_pid"
  wait "$serve_daemon_pid" 2>/dev/null || true
  # The dead daemon's socket file survives the SIGKILL; remove it so the
  # bind-wait below observes the restarted daemon, not the stale inode.
  rm -f "$sock"

  ./build-ci/examples/xplace_serve --socket "$sock" --jobs 1 \
      --state-dir "$state" --spill-every "$spill" >"$log" 2>&1 &
  serve_daemon_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || serve_fail "restarted daemon never bound $sock" || return 1
  grep -q "recovering 3 job" "$log" \
      || serve_fail "restart did not log journal recovery" || return 1

  # Every job must reach a terminal state; the interrupted one must have
  # resumed from its spill and reproduced the reference HPWL bit for bit
  # (compared as the %.17g JSON token — textually identical iff bitwise).
  local r1 hpwl_resumed
  r1=$("$client" --socket "$sock" result --id 1 --wait --timeout-s 600 \
       --wait-timeout-s 600) \
      || serve_fail "resumed job 1 result failed" || return 1
  echo "job 1 (resumed): $r1"
  echo "$r1" | grep -q '"state":"done"' \
      || serve_fail "resumed job 1 did not finish" || return 1
  echo "$r1" | grep -q '"recovered":true' \
      || serve_fail "job 1 lacks recovery provenance" || return 1
  echo "$r1" | grep -q '"resumed_from"' \
      || serve_fail "job 1 did not resume from its spill" || return 1
  hpwl_resumed=$(echo "$r1" | sed -n 's/.*"hpwl":\([^,}]*\).*/\1/p')
  [ "$hpwl_resumed" = "$hpwl_ref" ] \
      || serve_fail "resumed hpwl $hpwl_resumed != reference $hpwl_ref" \
      || return 1
  local id
  for id in 2 3; do
    "$client" --socket "$sock" result --id "$id" --wait --timeout-s 600 \
        | grep -q '"state":"done"' \
        || serve_fail "recovered job $id did not finish" || return 1
  done

  "$client" --socket "$sock" shutdown >/dev/null \
      || serve_fail "chaos shutdown failed" || return 1
  wait "$serve_daemon_pid" \
      || serve_fail "restarted daemon exited non-zero" || return 1
  rm -rf "$state" "$log"
  echo "=== tier1-chaos lane passed ==="
}

run_tier1_batch() {
  build build-ci
  local sock="/tmp/xplace_ci_batch_$$.sock"
  local client=./build-ci/examples/xplace_client

  echo "=== tier1-batch lane: parse-once sweep on $sock ==="
  ./build-ci/examples/xplace_serve --socket "$sock" --jobs 2 &
  serve_daemon_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || serve_fail "daemon never bound $sock" || return 1

  # Upload once, sweep against the content hash. The second upload of the
  # same content must be a cache hit, not a second parse.
  local up hash
  up=$("$client" --socket "$sock" upload --demo-cells 2000) \
      || serve_fail "upload failed" || return 1
  hash=$(echo "$up" | sed -n 's/.*"design":"\([0-9a-f]*\)".*/\1/p')
  [ -n "$hash" ] || serve_fail "upload returned no design hash" || return 1
  "$client" --socket "$sock" upload --demo-cells 2000 \
      | grep -q '"cached":true' \
      || serve_fail "re-upload of identical content was not a cache hit" \
      || return 1

  # 6 configs: four seed points (seed 1 listed twice — the repeat must be
  # dedup-served by its twin, same job id) plus two density points.
  local batch
  batch=$("$client" --socket "$sock" sweep --design "$hash" \
          --max-iters 120 --grid 64 --gp-only --seeds 1,2,3,1 \
          --densities 0.75,0.9) \
      || serve_fail "sweep submit failed" || return 1
  echo "sweep: $batch"
  echo "$batch" | grep -q '"dedup":true' \
      || serve_fail "repeated config was not dedup-served" || return 1

  # Every member must land terminal done; the aggregate must see all 6.
  local result
  result=$("$client" --socket "$sock" batch-result --id 1 --wait \
           --timeout-s 300) \
      || serve_fail "batch-result failed" || return 1
  echo "$result" | grep -q '"all_terminal":true' \
      || serve_fail "batch did not reach all-terminal" || return 1
  echo "$result" | grep -q '"done":6' \
      || serve_fail "batch did not finish all 6 members done" || return 1
  echo "$result" | grep -q '"best_hpwl"' \
      || serve_fail "batch aggregate lacks best_hpwl" || return 1

  # The whole point: one design, six configs, exactly ONE parse — and the
  # dedup counter must have seen the repeated config.
  local metrics
  metrics=$("$client" --socket "$sock" metrics) \
      || serve_fail "metrics scrape failed" || return 1
  echo "$metrics" | grep -q '^xplace_serve_design_parses 1$' \
      || serve_fail "design was parsed more than once across the batch" \
      || return 1
  echo "$metrics" | grep -q '^xplace_serve_dedup_hits 1$' \
      || serve_fail "dedup counter did not record the repeated config" \
      || return 1

  "$client" --socket "$sock" shutdown >/dev/null \
      || serve_fail "shutdown request failed" || return 1
  wait "$serve_daemon_pid" || serve_fail "daemon exited non-zero" || return 1
  echo "=== tier1-batch lane passed ==="
}

run_tier1_portfolio() {
  build build-ci
  local sock="/tmp/xplace_ci_portfolio_$$.sock"
  local client=./build-ci/examples/xplace_client

  echo "=== tier1-portfolio lane: K-way racing on $sock ==="
  # Aggressive racing so the lane deterministically exercises the kill path:
  # a 3-iteration grace window, any strictly-worse HPWL qualifies, and the
  # overflow gate never saves a laggard.
  ./build-ci/examples/xplace_serve --socket "$sock" --jobs 2 \
      --portfolio-poll-s 0.05 --kill-min-iter 3 --kill-margin 1.0 \
      --kill-slack -10 &
  serve_daemon_pid=$!
  for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    sleep 0.1
  done
  [ -S "$sock" ] || serve_fail "daemon never bound $sock" || return 1

  local up hash
  up=$("$client" --socket "$sock" upload --demo-cells 2000) \
      || serve_fail "upload failed" || return 1
  hash=$(echo "$up" | sed -n 's/.*"design":"\([0-9a-f]*\)".*/\1/p')
  [ -n "$hash" ] || serve_fail "upload returned no design hash" || return 1

  # K=4 perturbed restarts over 2 slots: the racer must kill at least one
  # laggard while the members are mid-flight.
  local pf
  pf=$("$client" --socket "$sock" portfolio --design "$hash" --k 4 \
       --seed 1 --max-iters 1500 --grid 64 --gp-only) \
      || serve_fail "submit-portfolio failed" || return 1
  echo "portfolio: $pf"
  echo "$pf" | grep -q '"portfolio":1' \
      || serve_fail "submit-portfolio returned no portfolio id" || return 1

  local result
  result=$("$client" --socket "$sock" portfolio-result --id 1 --wait \
           --timeout-s 300) \
      || serve_fail "portfolio-result failed" || return 1
  echo "$result" | grep -q '"all_terminal":true' \
      || serve_fail "portfolio did not reach all-terminal" || return 1
  echo "$result" | grep -q '"winner"' \
      || serve_fail "portfolio selected no winner" || return 1
  echo "$result" | grep -Eq '"killed":[1-9]' \
      || serve_fail "racer killed no laggard" || return 1

  # One design, K members, exactly ONE parse; the kill counter must agree.
  local metrics
  metrics=$("$client" --socket "$sock" metrics) \
      || serve_fail "metrics scrape failed" || return 1
  echo "$metrics" | grep -q '^xplace_serve_design_parses 1$' \
      || serve_fail "design was parsed more than once across the portfolio" \
      || return 1
  echo "$metrics" | grep -Eq '^xplace_serve_portfolio_killed [1-9]' \
      || serve_fail "portfolio kill counter did not record the laggard" \
      || return 1

  "$client" --socket "$sock" shutdown >/dev/null \
      || serve_fail "shutdown request failed" || return 1
  wait "$serve_daemon_pid" || serve_fail "daemon exited non-zero" || return 1

  # Quality gate, advisory on shared runners: fresh single-vs-kick-vs-best-
  # of-K HPWL numbers against the committed BENCH_portfolio.json baseline
  # (the HPWL rows are bitwise-deterministic; the core-second rows are not).
  local fresh="/tmp/xplace_ci_portfolio_$$.bench.json"
  ./build-ci/bench/bench_portfolio --json "$fresh" >/dev/null \
      || { echo "bench_portfolio run failed" >&2; return 1; }
  ./build-ci/bench/check_regression --baseline BENCH_portfolio.json \
      --current "$fresh" --advisory \
      || { echo "advisory portfolio regression check errored" >&2; return 1; }
  rm -f "$fresh"
  echo "=== tier1-portfolio lane passed ==="
}

run_faultinject() {
  build build-ci
  ctest --test-dir build-ci --output-on-failure -L faultinject

  # End-to-end env-driven matrix: the full flow must survive every fault kind
  # (and a multi-fault plan) and still produce a legal placement.
  local faults=(
    "nonfinite_grad@iter:120"
    "spike@iter:120"
    "alloc_fail@iter:40"
    "spike@iter:110,nonfinite_grad@iter:140"
  )
  for fault in "${faults[@]}"; do
    echo "=== faultinject lane: XPLACE_FAULT=$fault ==="
    XPLACE_FAULT="$fault" ./build-ci/examples/place_bookshelf \
        --demo --cells 2000 --max-iters 400
  done
}

run_asan_ubsan() {
  build build-asan -DXPLACE_SANITIZE=address,undefined
  ctest --test-dir build-asan --output-on-failure -L "faultinject|simd"
}

run_tsan() {
  build build-tsan-ci -DXPLACE_SANITIZE=thread
  ctest --test-dir build-tsan-ci --output-on-failure -L concurrency
  # End-to-end flow under the threadpool backend: GP scatter/gather/WA
  # partitions, pooled FFT passes, banded Abacus, and row-parallel reorder
  # all race-checked in one run.
  echo "=== tsan lane: place_bookshelf --threads 4 ==="
  ./build-tsan-ci/examples/place_bookshelf --demo --cells 2000 \
      --max-iters 300 --threads 4
}

case "$lane" in
  tier1)        run_tier1 ;;
  tier1-mt)     run_tier1_mt ;;
  tier1-scalar) run_tier1_scalar ;;
  tier1-serve)  run_tier1_serve ;;
  tier1-obs)    run_tier1_obs ;;
  tier1-chaos)  run_tier1_chaos ;;
  tier1-batch)  run_tier1_batch ;;
  tier1-portfolio) run_tier1_portfolio ;;
  faultinject)  run_faultinject ;;
  asan-ubsan)   run_asan_ubsan ;;
  tsan)         run_tsan ;;
  all)          run_tier1; run_tier1_mt; run_tier1_scalar; run_tier1_serve
                run_tier1_obs; run_tier1_chaos; run_tier1_batch
                run_tier1_portfolio
                run_faultinject; run_asan_ubsan; run_tsan ;;
  *) echo "unknown lane '$lane' (tier1|tier1-mt|tier1-scalar|tier1-serve|tier1-obs|tier1-chaos|tier1-batch|tier1-portfolio|faultinject|asan-ubsan|tsan|all)" >&2
     exit 2 ;;
esac
echo "ci lane(s) '$lane' passed"
