#!/usr/bin/env bash
# CI lanes for Xplace. Run all lanes (default) or a single one:
#
#   ci/run_ci.sh [tier1|tier1-mt|tier1-scalar|faultinject|asan-ubsan|tsan|all]
#
#   tier1       plain build, full ctest suite
#   tier1-mt    same build, full ctest suite with XPLACE_THREADS=4 so every
#               module that consults the execution backend runs on the
#               threadpool — launch counts, numerics contracts, and recovery
#               logic must hold on both backends
#   tier1-scalar same build, full ctest suite with XPLACE_SIMD=scalar so the
#               whole flow runs on the scalar kernel table — the bitwise
#               determinism baseline must pass independent of host CPU
#               features
#   faultinject guardian/recovery tests (ctest -L faultinject) plus an
#               end-to-end XPLACE_FAULT matrix over the place_bookshelf demo:
#               every injected fault must be recovered (exit 0, legal result)
#   asan-ubsan  -DXPLACE_SANITIZE=address,undefined build; the recovery paths
#               (rollback, checkpoint restore, fault injection) are exactly
#               where stale pointers/uninitialized reads would hide, and the
#               SIMD kernels' masked heads/tails are exactly where
#               out-of-bounds lanes would hide, so the guardian and SIMD
#               parity suites run memory-clean under ASan+UBSan
#   tsan        -DXPLACE_SANITIZE=thread build, shared-state tests
#               (ctest -L concurrency) plus the end-to-end demo on the
#               threadpool backend — the full GP/LG/DP flow must be
#               race-clean under --threads 4
set -euo pipefail
cd "$(dirname "$0")/.."

lane="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

build() { # build <dir> [extra cmake args...]
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$jobs"
}

run_tier1() {
  build build-ci
  ctest --test-dir build-ci --output-on-failure -j "$jobs"
}

run_tier1_mt() {
  build build-ci
  XPLACE_THREADS=4 ctest --test-dir build-ci --output-on-failure -j "$jobs"
}

run_tier1_scalar() {
  build build-ci
  XPLACE_SIMD=scalar ctest --test-dir build-ci --output-on-failure -j "$jobs"
}

run_faultinject() {
  build build-ci
  ctest --test-dir build-ci --output-on-failure -L faultinject

  # End-to-end env-driven matrix: the full flow must survive every fault kind
  # (and a multi-fault plan) and still produce a legal placement.
  local faults=(
    "nonfinite_grad@iter:120"
    "spike@iter:120"
    "alloc_fail@iter:40"
    "spike@iter:110,nonfinite_grad@iter:140"
  )
  for fault in "${faults[@]}"; do
    echo "=== faultinject lane: XPLACE_FAULT=$fault ==="
    XPLACE_FAULT="$fault" ./build-ci/examples/place_bookshelf \
        --demo --cells 2000 --max-iters 400
  done
}

run_asan_ubsan() {
  build build-asan -DXPLACE_SANITIZE=address,undefined
  ctest --test-dir build-asan --output-on-failure -L "faultinject|simd"
}

run_tsan() {
  build build-tsan-ci -DXPLACE_SANITIZE=thread
  ctest --test-dir build-tsan-ci --output-on-failure -L concurrency
  # End-to-end flow under the threadpool backend: GP scatter/gather/WA
  # partitions, pooled FFT passes, banded Abacus, and row-parallel reorder
  # all race-checked in one run.
  echo "=== tsan lane: place_bookshelf --threads 4 ==="
  ./build-tsan-ci/examples/place_bookshelf --demo --cells 2000 \
      --max-iters 300 --threads 4
}

case "$lane" in
  tier1)        run_tier1 ;;
  tier1-mt)     run_tier1_mt ;;
  tier1-scalar) run_tier1_scalar ;;
  faultinject)  run_faultinject ;;
  asan-ubsan)   run_asan_ubsan ;;
  tsan)         run_tsan ;;
  all)          run_tier1; run_tier1_mt; run_tier1_scalar; run_faultinject
                run_asan_ubsan; run_tsan ;;
  *) echo "unknown lane '$lane' (tier1|tier1-mt|tier1-scalar|faultinject|asan-ubsan|tsan|all)" >&2
     exit 2 ;;
esac
echo "ci lane(s) '$lane' passed"
