// Table 4 — HPWL(×10⁶), top5 overflow (OVFL-5) and runtime on the ISPD 2015
// suite (fence regions removed, as in the paper): DREAMPlace-mode vs Xplace,
// identical LG/DP and identical congestion evaluation.
//
// Expected shape (paper): Xplace ≈ 2.8× faster GP, HPWL ratio ≈ 1.001,
// OVFL-5 ratio ≈ 1.000, DP time ≈ equal.
//
//   ./bench_table4_ispd2015 [--scale 100] [--designs fft_1,fft_2]
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/common.h"
#include "route/congestion.h"
#include "util/arg_parser.h"
#include "util/logging.h"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xplace;
  log::set_level(log::Level::kWarn);
  ArgParser args(argc, argv);
  const double scale = args.get_double("scale", 100.0);

  std::vector<std::string> designs;
  if (args.has("designs")) {
    designs = split_csv(args.get("designs"));
  } else {
    for (const auto& e : io::ispd2015_suite()) designs.push_back(e.design);
  }

  route::CongestionConfig ccfg;
  ccfg.grid = 64;
  ccfg.tracks_per_gcell = args.get_double("tracks", 8.0);

  struct Row {
    std::string design;
    bench::PipelineResult dream, xplace;
    double dream_ovfl5 = 0.0, xplace_ovfl5 = 0.0;
  };
  std::vector<Row> rows;

  for (const std::string& name : designs) {
    Row row;
    row.design = name;
    {
      db::Database db = io::make_design(name, scale);
      row.dream = bench::run_pipeline(
          db, bench::table_config(core::PlacerConfig::dreamplace()));
      row.dream_ovfl5 = route::estimate_congestion(db, ccfg).top5_utilization * 100.0;
    }
    {
      db::Database db = io::make_design(name, scale);
      row.xplace =
          bench::run_pipeline(db, bench::table_config(core::PlacerConfig::xplace()));
      row.xplace_ovfl5 = route::estimate_congestion(db, ccfg).top5_utilization * 100.0;
    }
    rows.push_back(row);
    std::fprintf(stderr, "done %s\n", name.c_str());
  }

  std::printf("=== Table 4: ISPD 2015 — HPWL(x1e6), OVFL-5, runtime (s), scale 1/%.0f ===\n",
              scale);
  std::printf("%-16s | %9s %8s %7s %7s | %9s %8s %7s %7s\n", "design",
              "DP.HPWL", "OVFL-5", "GP/s", "DP/s", "Xp.HPWL", "OVFL-5", "GP/s",
              "DP/s");
  double sum_dh = 0, sum_do = 0, sum_dg = 0, sum_dd = 0;
  double sum_xh = 0, sum_xo = 0, sum_xg = 0, sum_xd = 0;
  for (const Row& r : rows) {
    std::printf("%-16s | %9.3f %8.2f %7.2f %7.2f | %9.3f %8.2f %7.2f %7.2f\n",
                r.design.c_str(), r.dream.hpwl / 1e6, r.dream_ovfl5,
                r.dream.gp_seconds, r.dream.dp_seconds, r.xplace.hpwl / 1e6,
                r.xplace_ovfl5, r.xplace.gp_seconds, r.xplace.dp_seconds);
    sum_dh += r.dream.hpwl;
    sum_do += r.dream_ovfl5;
    sum_dg += r.dream.gp_seconds;
    sum_dd += r.dream.dp_seconds;
    sum_xh += r.xplace.hpwl;
    sum_xo += r.xplace_ovfl5;
    sum_xg += r.xplace.gp_seconds;
    sum_xd += r.xplace.dp_seconds;
  }
  std::printf("%-16s | %9.3f %8.2f %7.2f %7.2f | %9.3f %8.2f %7.2f %7.2f\n",
              "Sum", sum_dh / 1e6, sum_do, sum_dg, sum_dd, sum_xh / 1e6, sum_xo,
              sum_xg, sum_xd);
  if (sum_xh > 0) {
    std::printf("%-16s | %9.4f %8.3f %7.3f %7.3f |  (Xplace = 1.000)\n", "Ratio",
                sum_dh / sum_xh, sum_do / sum_xo, sum_dg / sum_xg, sum_dd / sum_xd);
  }
  std::printf("(paper ratios: DREAMPlace HPWL 1.001, OVFL-5 1.000, GP 2.837, DP 0.991)\n");
  return 0;
}
