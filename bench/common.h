// Shared helpers for the table-reproduction bench binaries.
//
// Each bench regenerates one table of the paper on the synthetic ISPD suites
// (see DESIGN.md for the substitution rationale). The pipeline mirrors the
// paper's: GP (DREAMPlace-mode / Xplace / Xplace-NN) → identical LG (Abacus)
// → identical DP (global swap + ISM + local reorder) for every engine, so the
// comparison isolates the global placer exactly as in Section 4.1.
#pragma once

#include <cstdio>
#include <string>

#include "core/placer.h"
#include "db/database.h"
#include "dp/detailed_placer.h"
#include "io/suites.h"
#include "lg/abacus.h"
#include "lg/checker.h"
#include "nn/guidance.h"
#include "util/timer.h"

namespace xplace::bench {

struct PipelineResult {
  double hpwl = 0.0;       ///< final HPWL after LG+DP
  double gp_hpwl = 0.0;    ///< HPWL straight out of GP
  double gp_seconds = 0.0;
  double dp_seconds = 0.0; ///< LG + DP (reported jointly as "DP" like the paper)
  double overflow = 0.0;
  int gp_iterations = 0;
  double gp_ms_per_iter = 0.0;
  bool legal = false;
};

/// GP → Abacus LG → DP on `db` (in place). `guidance` may be null.
inline PipelineResult run_pipeline(db::Database& db,
                                   const core::PlacerConfig& cfg,
                                   core::FieldGuidance* guidance = nullptr) {
  PipelineResult out;
  core::GlobalPlacer placer(db, cfg);
  if (guidance != nullptr) placer.set_field_guidance(guidance);
  const core::GlobalPlaceResult gp = placer.run();
  out.gp_hpwl = gp.hpwl;
  out.gp_seconds = gp.gp_seconds;
  out.overflow = gp.overflow;
  out.gp_iterations = gp.iterations;
  out.gp_ms_per_iter = gp.avg_iter_ms;

  Stopwatch dp_watch;
  lg::abacus_legalize(db);
  dp::detailed_place(db);
  out.dp_seconds = dp_watch.seconds();
  out.hpwl = db.hpwl();
  out.legal = lg::check_legality(db).legal();
  return out;
}

/// Standard GP config for the table benches at the given scale.
inline core::PlacerConfig table_config(core::PlacerConfig cfg) {
  cfg.grid_dim = 128;
  cfg.max_iters = 1200;
  return cfg;
}

}  // namespace xplace::bench
