// SIMD dispatch overhead micro-bench: verifies the runtime-dispatch
// indirection is free at kernel-launch granularity.
//
// Every call site holds the backend table by reference for the duration of a
// kernel launch (`const simd::Kernels& k = simd::active();` — see simd.h), so
// the per-launch cost of runtime dispatch is one call through a function
// pointer instead of a direct call. This bench times the worst realistic
// case, a tiny 64-element axpy (a launch doing almost no work):
//
//   1. direct:     a noinline local twin of the scalar kernel, called by
//                  symbol — what a compile-time backend selection would cost,
//   2. dispatched: the same 64-element axpy through the runtime-selected
//                  table reference, exactly as product call sites execute it.
//
// The marginal cost (dispatched − direct) must stay under --budget-pct
// (default 2%) of the direct call; exit code 1 otherwise so CI can gate on
// it. The one-time table *resolution* (`simd::active()`: an atomic acquire
// load + member fetch, ~1–3 ns) is also measured and reported for reference;
// it is paid once per kernel launch, not per call, and is hoisted out of
// every element loop in the codebase.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/arg_parser.h"
#include "util/simd.h"
#include "util/timer.h"

namespace {

using namespace xplace;

/// Twin of the scalar backend's axpy_ (same body, same flags): the
/// direct-call baseline the table call is compared against. `noipa` blocks
/// inlining *and* IPA constant-propagation clones, so the twin compiles to
/// the same shape as the table entry (which a pointer call can't specialize).
__attribute__((noipa)) void axpy_direct(float* __restrict a,
                                        const float* __restrict b, float s,
                                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] += s * b[i];
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Median ns per call of fn() over `rounds` rounds of `reps` calls.
template <typename Fn>
double time_ns(int rounds, int reps, Fn&& fn) {
  fn();  // warm-up
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    Stopwatch w;
    for (int i = 0; i < reps; ++i) fn();
    times.push_back(w.seconds() / reps * 1e9);
  }
  return median(times);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xplace;
  ArgParser args(argc, argv);
  const double budget_pct = args.get_double("budget-pct", 2.0);
  constexpr std::size_t kN = 64;
  constexpr int kReps = 400'000;
  constexpr int kRounds = 15;

  std::vector<float> a(kN, 1.0f), b(kN, 0.5f);

  // Compare against the scalar table entry so the dispatched call runs the
  // same machine code as the direct twin; the indirection cost (predicted
  // pointer call) is backend-independent.
  simd::select(simd::Isa::kScalar);
  const simd::Kernels& k = simd::active();

  const double direct_ns = time_ns(kRounds, 1, [&] {
    for (int i = 0; i < kReps; ++i) axpy_direct(a.data(), b.data(), 1e-6f, kN);
  }) / kReps;
  const double dispatched_ns = time_ns(kRounds, 1, [&] {
    for (int i = 0; i < kReps; ++i) k.axpy_(a.data(), b.data(), 1e-6f, kN);
  }) / kReps;

  // Reference: the per-launch table resolution (re-running simd::active()
  // on every call instead of holding the reference).
  const double resolve_ns = time_ns(kRounds, 1, [&] {
    for (int i = 0; i < kReps; ++i) {
      simd::active().axpy_(a.data(), b.data(), 1e-6f, kN);
    }
  }) / kReps;
  simd::select("auto");

  const double overhead_ns = std::max(0.0, dispatched_ns - direct_ns);
  const double overhead_pct = 100.0 * overhead_ns / direct_ns;
  std::printf("simd dispatch overhead (%zu-element axpy, scalar backend)\n",
              kN);
  std::printf("  direct call:          %8.2f ns/launch\n", direct_ns);
  std::printf("  dispatched (table):   %8.2f ns/launch\n", dispatched_ns);
  std::printf("  indirection marginal: %8.2f ns  = %.3f %%  (budget %.1f %%)\n",
              overhead_ns, overhead_pct, budget_pct);
  std::printf("  table resolution:     %8.2f ns/launch extra when active() "
              "is not hoisted (reference)\n",
              std::max(0.0, resolve_ns - dispatched_ns));

  if (overhead_pct >= budget_pct) {
    std::printf("FAIL: dispatch indirection %.3f%% exceeds %.1f%%\n",
                overhead_pct, budget_pct);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
