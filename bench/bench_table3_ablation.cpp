// Table 3 — Ablation of the operator-level optimization techniques:
// per-GP-iteration time for the cumulative tiers
//   {none} → {OR} → {OR,OC} → {OR,OC,OE} → Xplace(all) → DREAMPlace-mode,
// each measured over a fixed iteration window on every ISPD 2005 design.
//
// Ratios are relative to full Xplace (=100%), matching the paper's format.
// Two timing modes are reported:
//   * pure CPU kernel time (this machine's honest cost), and
//   * with the simulated CUDA launch latency (--launch-us, default 8), which
//     restores the launch-overhead regime the paper's OR technique targets
//     (see DESIGN.md, substitution table).
// Kernel-launch counts per iteration are also printed — those are
// hardware-independent evidence of the operator-graph reduction.
//
// A threads axis rides along: the full-Xplace tier is re-run on the
// threadpool backend (--threads, default 4) so the table shows what the CPU
// reproduction gains from the execution backend on top of the paper's
// operator techniques.
//
//   ./bench_table3_ablation [--scale 100] [--iters 120] [--launch-us 8]
//                           [--threads 4] [--json table3.json]
//
// `--json <path>` additionally writes every (tier, design) cell as a
// machine-readable record {kernel, backend, threads, simd, ns_per_iter,
// launches_per_iter, launch_us} for regression tracking.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common.h"
#include "tensor/dispatch.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/simd.h"

namespace {

struct TierResult {
  double ms_per_iter = 0.0;
  double launches_per_iter = 0.0;
};

TierResult run_tier(const std::string& design, double scale,
                    const xplace::core::PlacerConfig& base, int iters,
                    double launch_latency) {
  using namespace xplace;
  db::Database db = io::make_design(design, scale);
  core::PlacerConfig cfg = base;
  cfg.grid_dim = 128;
  cfg.max_iters = iters;
  cfg.stop_overflow = 0.0;  // run exactly `iters` iterations
  tensor::LaunchLatencyGuard guard(launch_latency);
  core::GlobalPlacer placer(db, cfg);
  const core::GlobalPlaceResult res = placer.run();
  TierResult out;
  out.ms_per_iter = res.avg_iter_ms;
  out.launches_per_iter =
      static_cast<double>(res.kernel_launches) / res.iterations;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xplace;
  log::set_level(log::Level::kWarn);
  ArgParser args(argc, argv);
  const double scale = args.get_double("scale", 300.0);
  const int iters = static_cast<int>(args.get_int("iters", 250));
  const double launch_us = args.get_double("launch-us", 8.0);
  const int bench_threads = static_cast<int>(args.get_int("threads", 4));

  struct Tier {
    std::string label;
    core::PlacerConfig cfg;
  };
  std::vector<Tier> tiers = {
      {"none        ", core::PlacerConfig::ablation(false, false, false, false)},
      {"OR          ", core::PlacerConfig::ablation(true, false, false, false)},
      {"OR+OC       ", core::PlacerConfig::ablation(true, true, false, false)},
      {"OR+OC+OE    ", core::PlacerConfig::ablation(true, true, true, false)},
      {"Xplace (all)", core::PlacerConfig::ablation(true, true, true, true)},
      {"DREAMPlace  ", core::PlacerConfig::dreamplace()},
  };
  // Threads axis (appended so the fixed Xplace/DREAMPlace row indices above
  // stay valid): full Xplace on the threadpool backend.
  if (bench_threads > 1) {
    char label[32];
    std::snprintf(label, sizeof(label), "Xplace %dT    ", bench_threads);
    Tier mt{label, core::PlacerConfig::ablation(true, true, true, true)};
    mt.cfg.threads = bench_threads;
    tiers.push_back(std::move(mt));
  }

  std::vector<std::string> designs;
  for (const auto& e : io::ispd2005_suite()) designs.push_back(e.design);

  std::vector<std::string> json_rows;
  auto trim = [](std::string s) {
    while (!s.empty() && s.back() == ' ') s.pop_back();
    return s;
  };

  for (int latency_mode = 0; latency_mode < 2; ++latency_mode) {
    const double latency = latency_mode == 0 ? 0.0 : launch_us * 1e-6;
    std::printf("=== Table 3: per-GP-iteration time, scale 1/%.0f, %d iters, "
                "launch latency %.0f us ===\n",
                scale, iters, latency * 1e6);
    // header
    std::printf("%-14s", "method");
    for (const auto& d : designs) std::printf(" %9.9s", d.c_str());
    std::printf(" %9s\n", "Avg");

    std::vector<std::vector<TierResult>> all(tiers.size());
    for (std::size_t t = 0; t < tiers.size(); ++t) {
      for (const auto& d : designs) {
        const TierResult r = run_tier(d, scale, tiers[t].cfg, iters, latency);
        char row[256];
        std::snprintf(
            row, sizeof(row),
            "    {\"kernel\": \"%s/%s\", \"backend\": \"%s\", "
            "\"threads\": %d, \"simd\": \"%s\", \"ns_per_iter\": %.0f, "
            "\"launches_per_iter\": %.1f, \"launch_us\": %.1f}",
            trim(tiers[t].label).c_str(), d.c_str(),
            tiers[t].cfg.threads > 1 ? "threadpool" : "serial",
            tiers[t].cfg.threads > 1 ? tiers[t].cfg.threads : 1,
            simd::isa_name(simd::isa()), r.ms_per_iter * 1e6,
            r.launches_per_iter, latency * 1e6);
        json_rows.emplace_back(row);
        all[t].push_back(r);
      }
      std::fprintf(stderr, "tier %s done (latency %.0fus)\n",
                   tiers[t].label.c_str(), latency * 1e6);
    }
    const std::size_t xp = 4;  // Xplace row index
    for (std::size_t t = 0; t < tiers.size(); ++t) {
      std::printf("%-14s", tiers[t].label.c_str());
      double ratio_sum = 0.0;
      for (std::size_t d = 0; d < designs.size(); ++d) {
        const double ratio = 100.0 * all[t][d].ms_per_iter / all[xp][d].ms_per_iter;
        ratio_sum += ratio;
        std::printf(" %8.0f%%", ratio);
      }
      std::printf(" %8.0f%%\n", ratio_sum / designs.size());
    }
    std::printf("%-14s", "Xplace ms/it");
    for (std::size_t d = 0; d < designs.size(); ++d) {
      std::printf(" %9.3f", all[xp][d].ms_per_iter);
    }
    std::printf("\n%-14s", "launches/it");
    for (std::size_t d = 0; d < designs.size(); ++d) {
      std::printf(" %9.1f", all[xp][d].launches_per_iter);
    }
    std::printf("  (Xplace)\n%-14s", "launches/it");
    for (std::size_t d = 0; d < designs.size(); ++d) {
      std::printf(" %9.1f", all[5][d].launches_per_iter);
    }
    std::printf("  (DREAMPlace)\n\n");
  }
  std::printf("(paper avg ratios: none 159%%, OR 113%%, OR+OC 108%%, OR+OC+OE 104%%, "
              "Xplace 100%%, DREAMPlace 296%%)\n");

  if (const std::string json = args.get("json"); !json.empty()) {
    std::FILE* out = std::fopen(json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"bench_table3_ablation\",\n"
                      "  \"scale\": %.0f,\n  \"iters\": %d,\n"
                      "  \"results\": [\n", scale, iters);
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      std::fprintf(out, "%s%s\n", json_rows[i].c_str(),
                   i + 1 < json_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("json written to %s\n", json.c_str());
  }
  return 0;
}
