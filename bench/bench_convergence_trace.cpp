// A1 — convergence dynamics backing the paper's scheduling claims:
//   * r = λ|∇D|/|∇WL| is ultra-small early (operator skipping trigger,
//     Section 3.1.4) and the skip fires only while r < 0.01 ∧ iter < 100;
//   * ω traverses 0 → 1 and parameter updates slow to 1/3 in the band
//     0.5 < ω < 0.95 (Algorithm 1);
//   * overflow decreases monotonically (trend) while HPWL grows to its
//     spread value; γ anneals with overflow.
//
//   ./bench_convergence_trace [--design adaptec1] [--scale 200] [--csv out.csv]
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "util/arg_parser.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace xplace;
  log::set_level(log::Level::kWarn);
  ArgParser args(argc, argv);
  const double scale = args.get_double("scale", 200.0);
  const std::string design = args.get("design", "adaptec1");

  db::Database db = io::make_design(design, scale);
  core::PlacerConfig cfg = bench::table_config(core::PlacerConfig::xplace());
  core::GlobalPlacer placer(db, cfg);
  const core::GlobalPlaceResult res = placer.run();
  const auto& recs = placer.recorder().records();

  std::printf("=== A1: convergence trace — %s (1/%.0f), %d iterations ===\n",
              design.c_str(), scale, res.iterations);
  std::printf("%6s %12s %9s %9s %10s %10s %8s %6s %6s\n", "iter", "hpwl",
              "overflow", "gamma", "lambda", "r_ratio", "omega", "skip",
              "upd");
  for (std::size_t i = 0; i < recs.size();
       i += std::max<std::size_t>(1, recs.size() / 25)) {
    const auto& r = recs[i];
    std::printf("%6d %12.5g %9.4f %9.3g %10.3g %10.3g %8.3f %6d %6d\n", r.iter,
                r.hpwl, r.overflow, r.gamma, r.lambda, r.r_ratio, r.omega,
                r.density_skipped ? 1 : 0, r.params_updated ? 1 : 0);
  }
  const auto& last = recs.back();
  std::printf("%6d %12.5g %9.4f %9.3g %10.3g %10.3g %8.3f %6d %6d\n", last.iter,
              last.hpwl, last.overflow, last.gamma, last.lambda, last.r_ratio,
              last.omega, last.density_skipped ? 1 : 0,
              last.params_updated ? 1 : 0);

  // Claim checks.
  std::size_t skipped = 0, skipped_late = 0, deferred_mid = 0, mid_iters = 0;
  for (const auto& r : recs) {
    if (r.density_skipped) {
      ++skipped;
      if (r.iter >= 100) ++skipped_late;
    }
    if (r.omega > 0.5 && r.omega < 0.95) {
      ++mid_iters;
      if (!r.params_updated) ++deferred_mid;
    }
  }
  std::printf("\nclaim checks:\n");
  std::printf("  density-gradient skips: %zu (all in iter<100: %s)\n", skipped,
              skipped_late == 0 ? "yes" : "NO");
  std::printf("  intermediate-stage iters: %zu, parameter updates deferred: %zu "
              "(~2/3 expected: %.2f)\n",
              mid_iters, deferred_mid,
              mid_iters ? static_cast<double>(deferred_mid) / mid_iters : 0.0);
  std::printf("  r at iter 5: %.2g, at stop: %.2g (grows toward ~1)\n",
              recs[std::min<std::size_t>(5, recs.size() - 1)].r_ratio,
              last.r_ratio);
  std::printf("  overflow: %.3f -> %.3f, converged=%d\n", recs.front().overflow,
              last.overflow, res.converged ? 1 : 0);

  if (args.has("csv")) {
    placer.recorder().write(args.get("csv"));
    std::printf("full trace written to %s\n", args.get("csv").c_str());
  }
  return 0;
}
