// Table 2 — HPWL(×10⁶) and runtime on the ISPD 2005 suite:
// DREAMPlace-mode vs Xplace vs Xplace-NN, identical LG/DP for all three.
//
// Expected shape (paper): Xplace ≈ 1.6× faster GP than DREAMPlace with equal
// or slightly better HPWL; Xplace-NN shaves ~1‰ HPWL at moderate GP-time
// overhead; DP time identical across engines.
//
//   ./bench_table2_ispd2005 [--scale 100] [--designs adaptec1,adaptec2]
//                           [--nn-steps 200] [--skip-nn]
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/common.h"
#include "nn/data.h"
#include "nn/fno.h"
#include "util/arg_parser.h"
#include "util/logging.h"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xplace;
  log::set_level(log::Level::kWarn);
  ArgParser args(argc, argv);
  const double scale = args.get_double("scale", 100.0);
  const bool skip_nn = args.get_bool("skip-nn", false);
  const int nn_steps = static_cast<int>(args.get_int("nn-steps", 500));

  std::vector<std::string> designs;
  if (args.has("designs")) {
    designs = split_csv(args.get("designs"));
  } else {
    for (const auto& e : io::ispd2005_suite()) designs.push_back(e.design);
  }

  // Train the field network once on synthetic data (Section 4.3: no real
  // benchmark data needed) and reuse it for every design.
  nn::FieldNet net;  // paper-class configuration (~414k parameters)
  if (!skip_nn) {
    std::fprintf(stderr, "training FieldNet (%zu params, %d steps @32x32)...\n",
                 net.num_params(), nn_steps);
    nn::Adam opt(net.parameters(), 2e-3);
    auto data = nn::make_field_dataset(32, 24, 2027);
    std::vector<double> grad;
    for (int step = 0; step < nn_steps; ++step) {
      const nn::FieldSample& s = data[step % data.size()];
      const auto input = nn::FieldNet::make_input(s.density, 32, 32);
      const auto& pred = net.forward(input, 32, 32);
      nn::relative_l2(pred, s.field_x, grad);
      net.zero_grad();
      net.backward(grad);
      opt.step();
    }
  }

  struct Row {
    std::string design;
    bench::PipelineResult dream, xplace, xnn;
  };
  std::vector<Row> rows;

  for (const std::string& name : designs) {
    Row row;
    row.design = name;
    {
      db::Database db = io::make_design(name, scale);
      row.dream = bench::run_pipeline(
          db, bench::table_config(core::PlacerConfig::dreamplace()));
    }
    {
      db::Database db = io::make_design(name, scale);
      row.xplace =
          bench::run_pipeline(db, bench::table_config(core::PlacerConfig::xplace()));
    }
    if (!skip_nn) {
      db::Database db = io::make_design(name, scale);
      nn::FnoGuidance guide(&net, /*predict_every=*/2, 0.02, /*predict_grid=*/64, /*r_cutoff=*/0.3);
      row.xnn = bench::run_pipeline(
          db, bench::table_config(core::PlacerConfig::xplace()), &guide);
    }
    rows.push_back(row);
    std::fprintf(stderr, "done %s\n", name.c_str());
  }

  std::printf("=== Table 2: ISPD 2005 — HPWL(x1e6) and runtime (s), scale 1/%.0f ===\n",
              scale);
  std::printf("%-10s | %10s %8s %8s | %10s %8s %8s | %10s %8s %8s\n", "design",
              "DP.HPWL", "GP/s", "DP/s", "Xp.HPWL", "GP/s", "DP/s", "NN.HPWL",
              "GP/s", "DP/s");
  Row sum{};
  for (const Row& r : rows) {
    std::printf("%-10s | %10.4f %8.2f %8.2f | %10.4f %8.2f %8.2f | %10.4f %8.2f %8.2f\n",
                r.design.c_str(), r.dream.hpwl / 1e6, r.dream.gp_seconds,
                r.dream.dp_seconds, r.xplace.hpwl / 1e6, r.xplace.gp_seconds,
                r.xplace.dp_seconds, r.xnn.hpwl / 1e6, r.xnn.gp_seconds,
                r.xnn.dp_seconds);
    sum.dream.hpwl += r.dream.hpwl;
    sum.dream.gp_seconds += r.dream.gp_seconds;
    sum.dream.dp_seconds += r.dream.dp_seconds;
    sum.xplace.hpwl += r.xplace.hpwl;
    sum.xplace.gp_seconds += r.xplace.gp_seconds;
    sum.xplace.dp_seconds += r.xplace.dp_seconds;
    sum.xnn.hpwl += r.xnn.hpwl;
    sum.xnn.gp_seconds += r.xnn.gp_seconds;
    sum.xnn.dp_seconds += r.xnn.dp_seconds;
  }
  std::printf("%-10s | %10.4f %8.2f %8.2f | %10.4f %8.2f %8.2f | %10.4f %8.2f %8.2f\n",
              "Sum", sum.dream.hpwl / 1e6, sum.dream.gp_seconds,
              sum.dream.dp_seconds, sum.xplace.hpwl / 1e6, sum.xplace.gp_seconds,
              sum.xplace.dp_seconds, sum.xnn.hpwl / 1e6, sum.xnn.gp_seconds,
              sum.xnn.dp_seconds);
  if (sum.xplace.hpwl > 0) {
    std::printf("%-10s | %10.4f %8.3f %8.3f | %10.4f %8.3f %8.3f | %10.4f %8.3f %8.3f\n",
                "Ratio", sum.dream.hpwl / sum.xplace.hpwl,
                sum.dream.gp_seconds / sum.xplace.gp_seconds,
                sum.dream.dp_seconds / sum.xplace.dp_seconds, 1.0, 1.0, 1.0,
                skip_nn ? 0.0 : sum.xnn.hpwl / sum.xplace.hpwl,
                skip_nn ? 0.0 : sum.xnn.gp_seconds / sum.xplace.gp_seconds,
                skip_nn ? 0.0 : sum.xnn.dp_seconds / sum.xplace.dp_seconds);
  }
  std::printf("(paper ratios: DREAMPlace HPWL 1.003, GP 1.626; Xplace-NN HPWL 0.999, GP 1.442)\n");
  return 0;
}
