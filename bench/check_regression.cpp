// check_regression: perf-regression gate over committed bench baselines.
//
// Compares a freshly generated bench JSON (bench_micro_ops --json,
// bench_table3_ablation --json, bench_serve_soak) against a committed
// baseline (BENCH_simd.json, BENCH_serve.json) row by row. A row fails when
// its ns_per_iter exceeds baseline * (1 + tolerance); the band is the
// baseline row's own "tolerance" field when present, else --tolerance.
//
//   check_regression --baseline BENCH_simd.json --current /tmp/now.json
//   check_regression --baseline ... --current ... --advisory   # report only
//   check_regression --selftest                                # gate sanity
//
// Flags:
//   --baseline PATH    committed baseline JSON (required unless --selftest)
//   --current PATH     freshly generated JSON to compare (required too)
//   --tolerance F      default band for rows without their own (default 0.25)
//   --advisory         print the report but always exit 0 (CI shared runners
//                      are noisy; the advisory lane surfaces drift without
//                      blocking merges — see DESIGN.md §12)
//   --selftest         verify the gate itself: a synthetic 2x slowdown must
//                      be flagged and an identical run must pass; exits
//                      nonzero when the gate logic fails either way
//
// Exit: 0 = no regression (or --advisory), 1 = regression(s), 2 = usage or
// unreadable input.
#include <cstdio>
#include <string>

#include "server/regression.h"
#include "util/arg_parser.h"

namespace {

using namespace xplace;
using namespace xplace::server;

/// The gate must flag a synthetic 2x slowdown and pass an identical rerun;
/// per-row tolerance must override the default band.
int selftest() {
  BenchFile base;
  base.bench = "selftest";
  base.rows.push_back({"wa_fused", "serial", "avx2", 1, 1000.0, 0.0});
  base.rows.push_back({"axpy", "serial", "avx2", 1, 200.0, 0.0});
  base.rows.push_back({"noisy", "serial", "avx2", 1, 50.0, /*tolerance=*/3.0});

  BenchFile identical = base;
  const RegressionReport same = compare_bench(base, identical, 0.25);
  if (same.regressions != 0 || same.rows.size() != 3) {
    std::fprintf(stderr, "selftest FAIL: identical run flagged\n%s",
                 format_report(same).c_str());
    return 1;
  }

  BenchFile slow = base;
  slow.rows[0].ns_per_iter *= 2.0;  // 2x slowdown: must be flagged
  slow.rows[2].ns_per_iter *= 2.0;  // 2x but inside its own 300% band: pass
  const RegressionReport flagged = compare_bench(base, slow, 0.25);
  if (flagged.regressions != 1 || !flagged.rows[0].regressed ||
      flagged.rows[2].regressed) {
    std::fprintf(stderr, "selftest FAIL: 2x slowdown handling\n%s",
                 format_report(flagged).c_str());
    return 1;
  }

  BenchFile skewed = base;
  skewed.rows[1].ns_per_iter *= 1.2;  // +20% inside the default 25% band
  const RegressionReport tolerated = compare_bench(base, skewed, 0.25);
  if (tolerated.regressions != 0) {
    std::fprintf(stderr, "selftest FAIL: in-band drift flagged\n%s",
                 format_report(tolerated).c_str());
    return 1;
  }

  std::printf("selftest ok: 2x slowdown flagged, in-band drift and per-row "
              "bands honored\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.ok()) {
    for (const std::string& e : args.errors()) {
      std::fprintf(stderr, "%s\n", e.c_str());
    }
    return 2;
  }
  if (args.get_bool("selftest", false)) return selftest();

  const std::string baseline_path = args.get("baseline");
  const std::string current_path = args.get("current");
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr,
                 "usage: check_regression --baseline B.json --current C.json "
                 "[--tolerance 0.25] [--advisory] | --selftest\n");
    return 2;
  }

  BenchFile baseline, current;
  std::string error;
  if (!load_bench_json(baseline_path, &baseline, &error) ||
      !load_bench_json(current_path, &current, &error)) {
    std::fprintf(stderr, "check_regression: %s\n", error.c_str());
    return 2;
  }

  const double tolerance = args.get_double("tolerance", 0.25);
  const RegressionReport report = compare_bench(baseline, current, tolerance);
  std::printf("baseline %s (%s) vs current %s (%s), default band %.0f%%\n",
              baseline_path.c_str(), baseline.bench.c_str(),
              current_path.c_str(), current.bench.c_str(), tolerance * 100.0);
  std::printf("%s", format_report(report).c_str());

  if (report.regressions == 0) return 0;
  if (args.get_bool("advisory", false)) {
    std::printf("ADVISORY mode: %zu regression(s) reported, exit 0\n",
                report.regressions);
    return 0;
  }
  return 1;
}
