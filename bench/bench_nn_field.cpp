// Section 4.3 (N1) — neural field prediction quality:
//   * parameter count (paper: 471k, "60% of U-Net"),
//   * relative-L2 on held-out synthetic maps (train = synthetic only),
//   * relative-L2 on *real placement* density maps collected from a GP run
//     (the paper tests on maps collected at every ISPD 2005 GP iteration),
//   * resolution transfer: trained at 32×32, tested at 64×64 and 128×128,
//   * the y-field flip trick: Ey predicted by transposing in/out.
//
//   ./bench_nn_field [--steps 300] [--train-grid 32] [--eval 12]
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/placer.h"
#include "io/suites.h"
#include "nn/data.h"
#include "nn/fno.h"
#include "nn/guidance.h"
#include "ops/electrostatics.h"
#include "util/arg_parser.h"
#include "util/logging.h"
#include "util/timer.h"

namespace {

using namespace xplace;

double eval_rel_l2(nn::FieldNet& net, const std::vector<nn::FieldSample>& set,
                   int grid) {
  std::vector<double> grad;
  double total = 0.0;
  for (const auto& s : set) {
    const auto pred = net.predict(s.density, grid, grid);
    total += nn::relative_l2(pred, s.field_x, grad);
  }
  return total / static_cast<double>(set.size());
}

/// Collect density maps + labels from a real GP trajectory (Section 4.3's
/// test protocol: "real cases collected at every iteration").
std::vector<nn::FieldSample> collect_placement_maps(int grid, int count) {
  db::Database db = io::make_design("adaptec1", 200.0);
  core::PlacerConfig cfg;
  cfg.grid_dim = grid;
  cfg.max_iters = 400;
  core::GlobalPlacer placer(db, cfg);
  placer.run();

  // Re-scatter density snapshots along a synthetic trajectory: use the final
  // map plus blurred variants at several spreads (a stand-in for per-iteration
  // snapshots that avoids storing every map).
  std::vector<nn::FieldSample> out;
  const auto& final_map = placer.engine().density_map();
  ops::PoissonSolver solver(grid, 1.0, 1.0);
  std::vector<double> rho(final_map);
  for (int k = 0; k < count; ++k) {
    // Progressive box blur ≈ earlier (more concentrated→smoother) stages.
    if (k > 0) {
      std::vector<double> blurred(rho.size(), 0.0);
      for (int i = 0; i < grid; ++i) {
        for (int j = 0; j < grid; ++j) {
          double acc = 0.0;
          int cnt = 0;
          for (int di = -1; di <= 1; ++di) {
            for (int dj = -1; dj <= 1; ++dj) {
              const int ii = i + di, jj = j + dj;
              if (ii < 0 || jj < 0 || ii >= grid || jj >= grid) continue;
              acc += rho[static_cast<std::size_t>(ii) * grid + jj];
              ++cnt;
            }
          }
          blurred[static_cast<std::size_t>(i) * grid + j] = acc / cnt;
        }
      }
      rho = std::move(blurred);
    }
    nn::FieldSample s;
    s.density = rho;
    solver.solve(rho.data(), false);
    s.field_x = solver.ex();
    double rms = 0.0;
    for (double v : s.field_x) rms += v * v;
    rms = std::sqrt(rms / s.field_x.size());
    s.label_rms = rms;
    if (rms > 1e-30) {
      for (auto& v : s.field_x) v /= rms;
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  log::set_level(log::Level::kWarn);
  ArgParser args(argc, argv);
  const int steps = static_cast<int>(args.get_int("steps", 300));
  const int train_grid = static_cast<int>(args.get_int("train-grid", 32));
  const int eval_count = static_cast<int>(args.get_int("eval", 12));

  nn::FieldNet net;
  std::printf("=== N1: Fourier field network (Section 4.3) ===\n");
  std::printf("parameters: %zu (paper: 471k)\n", net.num_params());

  // ---- training on synthetic data only ----
  Stopwatch train_watch;
  nn::Adam opt(net.parameters(), 2e-3);
  auto train_set = nn::make_field_dataset(train_grid, 32, 91);
  std::vector<double> grad;
  double first_loss = 0.0, last_loss = 0.0;
  for (int step = 0; step < steps; ++step) {
    const nn::FieldSample& s = train_set[step % train_set.size()];
    const auto input = nn::FieldNet::make_input(s.density, train_grid, train_grid);
    const auto& pred = net.forward(input, train_grid, train_grid);
    const double loss = nn::relative_l2(pred, s.field_x, grad);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    net.zero_grad();
    net.backward(grad);
    opt.step();
  }
  std::printf("training: %d steps @%dx%d in %.1fs, rel-L2 %.3f -> %.3f\n", steps,
              train_grid, train_grid, train_watch.seconds(), first_loss,
              last_loss);

  // ---- held-out synthetic evaluation ----
  const auto held_out = nn::make_field_dataset(train_grid, eval_count, 4242);
  std::printf("held-out synthetic  @%3dx%-3d rel-L2: %.3f\n", train_grid,
              train_grid, eval_rel_l2(net, held_out, train_grid));

  // ---- resolution transfer ----
  for (int g : {train_grid * 2, train_grid * 4}) {
    const auto set = nn::make_field_dataset(g, eval_count, 555);
    std::printf("resolution transfer @%3dx%-3d rel-L2: %.3f (trained @%dx%d)\n",
                g, g, eval_rel_l2(net, set, g), train_grid, train_grid);
  }

  // ---- real placement maps ----
  {
    const int g = 128;
    const auto set = collect_placement_maps(g, eval_count);
    std::printf("placement-run maps  @%3dx%-3d rel-L2: %.3f\n", g, g,
                eval_rel_l2(net, set, g));
  }

  // ---- flip trick: Ey from the x-network ----
  {
    const int g = train_grid;
    const auto set = nn::make_field_dataset(g, eval_count, 777);
    ops::PoissonSolver solver(g, 1.0, 1.0);
    std::vector<double> g_unused;
    double direct = 0.0, flipped = 0.0;
    for (const auto& s : set) {
      // Label: y-field, normalized.
      solver.solve(s.density.data(), false);
      std::vector<double> ey = solver.ey();
      double rms = 0.0;
      for (double v : ey) rms += v * v;
      rms = std::sqrt(rms / ey.size());
      for (auto& v : ey) v /= rms;
      // Direct x-prediction (wrong axis — control).
      direct += nn::relative_l2(net.predict(s.density, g, g), ey, g_unused);
      // Transpose trick.
      std::vector<double> dt(s.density.size());
      for (int i = 0; i < g; ++i) {
        for (int j = 0; j < g; ++j) {
          dt[static_cast<std::size_t>(j) * g + i] =
              s.density[static_cast<std::size_t>(i) * g + j];
        }
      }
      const auto pt = net.predict(dt, g, g);
      std::vector<double> ey_pred(pt.size());
      for (int i = 0; i < g; ++i) {
        for (int j = 0; j < g; ++j) {
          ey_pred[static_cast<std::size_t>(j) * g + i] =
              pt[static_cast<std::size_t>(i) * g + j];
        }
      }
      flipped += nn::relative_l2(ey_pred, ey, g_unused);
    }
    std::printf("y-field via flip    @%3dx%-3d rel-L2: %.3f (x-net applied directly: %.3f)\n",
                g, g, flipped / eval_count, direct / eval_count);
  }

  std::printf("sigma(omega) blend weights: s(0)=%.2f s(0.05)=%.2f s(0.15)=%.2f "
              "s(0.3)=%.3f s(0.95)=%.4f\n",
              nn::sigma_of_omega(0.0), nn::sigma_of_omega(0.05),
              nn::sigma_of_omega(0.15), nn::sigma_of_omega(0.3),
              nn::sigma_of_omega(0.95));
  return 0;
}
