// bench_serve_soak: scripted soak of the in-process PlacementServer that
// measures the serving plane's SLO latencies (queue wait, run time, e2e)
// and emits them in the shared bench-JSON schema, so check_regression can
// gate the committed BENCH_serve.json baseline.
//
//   bench_serve_soak [--jobs 8] [--slots 2] [--cells 1500] [--iters 120]
//                    [--json BENCH_serve.json]
//
// Each "kernel" row is one percentile of one latency histogram
// (serve.queue_wait_s/p50, serve.run_s/p99, ...), reported in ns so the
// schema's ns_per_iter field keeps its meaning. Latency percentiles on a
// shared CI box are far noisier than kernel micro-benches, so every row
// carries a wide explicit tolerance band (see DESIGN.md §12).
#include <cstdio>
#include <string>
#include <vector>

#include "server/server.h"
#include "util/arg_parser.h"

namespace {

using namespace xplace;
using namespace xplace::server;

struct Row {
  std::string kernel;
  double ns = 0.0;
  double tolerance = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.ok()) {
    for (const std::string& e : args.errors()) {
      std::fprintf(stderr, "%s\n", e.c_str());
    }
    return 2;
  }
  const long jobs = args.get_int("jobs", 8);
  const long cells = args.get_int("cells", 1500);
  const long iters = args.get_int("iters", 120);

  ServerConfig cfg;
  cfg.max_concurrency = static_cast<std::size_t>(args.get_int("slots", 2));
  cfg.queue_capacity = static_cast<std::size_t>(jobs) + 4;
  PlacementServer server(cfg);

  // Saturating burst: all jobs land at once so the later ones accumulate
  // real queue wait behind the worker slots.
  std::vector<std::uint64_t> ids;
  for (long i = 0; i < jobs; ++i) {
    JobSpec spec;
    spec.demo_cells = cells;
    spec.demo_seed = 11 + static_cast<std::uint64_t>(i);
    spec.max_iters = static_cast<int>(iters);
    spec.full_flow = true;
    spec.label = "soak" + std::to_string(i);
    const auto out = server.submit(spec);
    if (!out.ok) {
      std::fprintf(stderr, "submit %ld rejected: %s\n", i, out.error.c_str());
      return 1;
    }
    ids.push_back(out.id);
  }
  for (const std::uint64_t id : ids) {
    const auto rec = server.wait(id, 600.0);
    if (!rec || rec->state != JobState::kDone) {
      std::fprintf(stderr, "job %llu did not complete\n",
                   static_cast<unsigned long long>(id));
      return 1;
    }
  }
  const PlacementServer::Stats stats = server.stats();
  server.shutdown(/*drain=*/true);

  // Latency percentiles are an order of magnitude noisier than kernel
  // micro-benches on shared runners; the committed bands reflect that.
  // Queue wait additionally depends on scheduling jitter → widest band.
  std::vector<Row> rows;
  const auto emit = [&rows](const char* name,
                            const PlacementServer::LatencySummary& lat,
                            double tolerance) {
    rows.push_back({std::string(name) + "/p50", lat.p50 * 1e9, tolerance});
    rows.push_back({std::string(name) + "/p95", lat.p95 * 1e9, tolerance});
    rows.push_back({std::string(name) + "/p99", lat.p99 * 1e9, tolerance});
  };
  emit("serve.queue_wait_s", stats.queue_wait, 3.0);
  emit("serve.run_s", stats.run, 1.0);
  emit("serve.e2e_s", stats.e2e, 1.0);

  std::printf("%ld jobs over %zu slot(s): queue p50/p95/p99 = "
              "%.3f/%.3f/%.3f s, run = %.3f/%.3f/%.3f s, e2e = "
              "%.3f/%.3f/%.3f s\n",
              jobs, cfg.max_concurrency, stats.queue_wait.p50,
              stats.queue_wait.p95, stats.queue_wait.p99, stats.run.p50,
              stats.run.p95, stats.run.p99, stats.e2e.p50, stats.e2e.p95,
              stats.e2e.p99);

  if (const std::string json = args.get("json"); !json.empty()) {
    std::FILE* out = std::fopen(json.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"bench_serve_soak\",\n"
                      "  \"jobs\": %ld,\n  \"slots\": %zu,\n"
                      "  \"results\": [\n", jobs, cfg.max_concurrency);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(out,
                   "    {\"kernel\": \"%s\", \"backend\": \"serve\", "
                   "\"threads\": 1, \"simd\": \"n/a\", \"ns_per_iter\": %.0f, "
                   "\"tolerance\": %.1f}%s\n",
                   rows[i].kernel.c_str(), rows[i].ns, rows[i].tolerance,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("json written to %s\n", json.c_str());
  }
  return 0;
}
