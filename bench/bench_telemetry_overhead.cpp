// Telemetry overhead micro-bench: verifies the observability layer is free
// when not observed.
//
// Every kernel launch now constructs a (usually inert) trace scope inside
// `Dispatcher::run`. This bench measures, on the bench_micro_ops workload
// class (the 8k-cell fused wirelength kernel + the full GradientEngine
// iteration):
//
//   1. the marginal cost of one *disabled* trace scope (tight-loop measured),
//   2. the per-iteration cost of the gradient engine with tracing disabled,
//   3. the implied disabled-tracing overhead = launches/iter × scope cost,
//      asserted < 2% of the iteration time (exit code 1 otherwise),
//   4. for reference, the measured overhead with tracing *enabled*.
//
// Exit code 0 = the <2% contract holds; CI runs this binary directly.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/gradient_engine.h"
#include "core/placer.h"
#include "io/generator.h"
#include "telemetry/trace.h"
#include "tensor/dispatch.h"
#include "util/arg_parser.h"
#include "util/timer.h"

namespace {

using namespace xplace;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Median seconds of `reps` calls to fn() over `rounds` rounds.
template <typename Fn>
double time_median(int rounds, int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    Stopwatch w;
    for (int i = 0; i < reps; ++i) fn();
    times.push_back(w.seconds() / reps);
  }
  return median(times);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const double budget_pct = args.get_double("budget-pct", 2.0);

  io::GeneratorSpec spec;
  spec.name = "telemetry_overhead";
  spec.num_cells = static_cast<std::size_t>(args.get_int("cells", 8000));
  spec.num_nets = spec.num_cells + spec.num_cells / 20;
  spec.seed = 7;
  db::Database db = io::generate(spec);
  db.insert_fillers(1);

  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  cfg.grid_dim = 128;
  core::GradientEngine engine(db, cfg);
  const std::size_t n = db.num_cells_total();
  std::vector<float> x(n), y(n), gx(n, 0.0f), gy(n, 0.0f);
  for (std::size_t c = 0; c < n; ++c) {
    x[c] = static_cast<float>(db.x(c));
    y[c] = static_cast<float>(db.y(c));
  }

  auto& tracer = telemetry::Tracer::global();
  auto& disp = tensor::Dispatcher::global();
  tracer.disable();

  // 1. Cost of one disabled trace scope (the only per-launch addition the
  // telemetry layer makes to the seed dispatcher when tracing is off).
  const int kScopeReps = 2'000'000;
  volatile int sink = 0;
  const double scope_ns =
      time_median(7, 1, [&] {
        for (int i = 0; i < kScopeReps; ++i) {
          XP_TRACE_SCOPE("probe");
          sink = sink + 1;
        }
      }) /
      kScopeReps * 1e9;
  // Same loop without the scope, to subtract the loop/sink skeleton.
  const double bare_ns =
      time_median(7, 1, [&] {
        for (int i = 0; i < kScopeReps; ++i) {
          sink = sink + 1;
        }
      }) /
      kScopeReps * 1e9;
  const double marginal_scope_ns = std::max(0.0, scope_ns - bare_ns);

  // 2. Full gradient-engine iteration with tracing disabled (the hot loop of
  // every GP run), and its launch count.
  auto compute = [&] {
    engine.compute(x.data(), y.data(), 8.0f, 1e-4f, 200, 0.0, gx.data(),
                   gy.data());
  };
  compute();  // warm-up (fills caches)
  disp.reset_counters();
  compute();
  const double launches_per_iter = static_cast<double>(disp.total_launches());

  const double iter_disabled_s = time_median(9, 5, compute);

  // 3. Implied disabled-tracing overhead per iteration.
  const double overhead_s = launches_per_iter * marginal_scope_ns * 1e-9;
  const double overhead_pct = 100.0 * overhead_s / iter_disabled_s;

  // 4. Reference: measured overhead with tracing enabled (ring large enough
  // to never wrap during a timing round).
  tracer.enable(1 << 20);
  const double iter_enabled_s = time_median(9, 5, compute);
  tracer.disable();
  const double enabled_pct =
      100.0 * (iter_enabled_s - iter_disabled_s) / iter_disabled_s;

  std::printf("telemetry overhead (bench_micro_ops workload, %zu cells)\n",
              spec.num_cells);
  std::printf("  disabled trace scope:    %8.2f ns/scope (marginal)\n",
              marginal_scope_ns);
  std::printf("  engine iteration:        %8.3f ms, %.0f launches\n",
              iter_disabled_s * 1e3, launches_per_iter);
  std::printf("  disabled-tracing cost:   %8.4f %% of iteration  (budget %.1f %%)\n",
              overhead_pct, budget_pct);
  std::printf("  enabled-tracing cost:    %8.2f %% of iteration (reference)\n",
              std::max(0.0, enabled_pct));

  if (overhead_pct >= budget_pct) {
    std::printf("FAIL: disabled-tracing overhead %.3f%% exceeds %.1f%%\n",
                overhead_pct, budget_pct);
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
