// M1 — operator micro-benchmarks (google-benchmark): the kernel-level costs
// behind Table 3's ablation.
//
//   * fused WL+grad+HPWL vs the three separate kernels vs the tape-decomposed
//     elementary-op graph (operator combination / reduction),
//   * extracted vs joint density accumulation (operator extraction),
//   * the spectral Poisson solve with and without the potential synthesis,
//   * FFT/DCT transform costs across grid sizes.
//
// `--json <path>` switches to the SIMD A/B mode: the four hot kernel classes
// (fused WA, density scatter, elementwise axpy, DCT pass) are timed under the
// forced-scalar and (if the CPU has it) AVX2 backends, and a machine-readable
// record {kernel, backend, threads, simd, ns_per_iter} per run is written to
// <path> (see BENCH_simd.json / EXPERIMENTS.md).
//
// `--json-fft <path>` is the transform-level A/B mode for the plan-based
// FFT/DCT engine: dct2 / idct2 / idxst_idct and the full Poisson solve at
// m=256 are timed under scalar/AVX2 × serial/pooled, with bytes_per_iter
// estimates alongside ns_per_iter (see BENCH_fft.json).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "fft/dct.h"
#include "fft/fft.h"
#include "io/generator.h"
#include "ops/density.h"
#include "ops/electrostatics.h"
#include "ops/netlist_view.h"
#include "ops/wirelength.h"
#include "ops/wirelength_tape.h"
#include "tensor/tape.h"
#include "util/arg_parser.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace xplace;

struct Fixture {
  db::Database db;
  ops::NetlistView view;
  std::vector<float> x, y, gx, gy;

  explicit Fixture(std::size_t cells) {
    io::GeneratorSpec spec;
    spec.name = "micro";
    spec.num_cells = cells;
    spec.num_nets = cells + cells / 20;
    spec.seed = 7;
    db = io::generate(spec);
    db.insert_fillers(1);
    view = ops::build_netlist_view(db);
    const std::size_t n = db.num_cells_total();
    x.resize(n);
    y.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      x[c] = static_cast<float>(db.x(c));
      y[c] = static_cast<float>(db.y(c));
    }
    gx.assign(n, 0.0f);
    gy.assign(n, 0.0f);
  }
};

Fixture& fixture() {
  static Fixture f(8000);
  return f;
}

void BM_WirelengthFused(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    std::fill(f.gx.begin(), f.gx.end(), 0.0f);
    std::fill(f.gy.begin(), f.gy.end(), 0.0f);
    const ops::WirelengthSums sums =
        ops::fused_wl_grad_hpwl(f.view, f.x.data(), f.y.data(), 8.0f,
                                f.gx.data(), f.gy.data());
    benchmark::DoNotOptimize(sums);
  }
}
BENCHMARK(BM_WirelengthFused);

void BM_WirelengthSeparate(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    std::fill(f.gx.begin(), f.gx.end(), 0.0f);
    std::fill(f.gy.begin(), f.gy.end(), 0.0f);
    const double wl = ops::wa_wirelength(f.view, f.x.data(), f.y.data(), 8.0f);
    ops::wa_gradient(f.view, f.x.data(), f.y.data(), 8.0f, f.gx.data(), f.gy.data());
    const double h = ops::hpwl(f.view, f.x.data(), f.y.data());
    benchmark::DoNotOptimize(wl + h);
  }
}
BENCHMARK(BM_WirelengthSeparate);

void BM_WirelengthTapeAutograd(benchmark::State& state) {
  Fixture& f = fixture();
  ops::TapeWirelength tape_wl(f.view);
  tensor::Tape tape;
  for (auto _ : state) {
    std::fill(f.gx.begin(), f.gx.end(), 0.0f);
    std::fill(f.gy.begin(), f.gy.end(), 0.0f);
    const double wl = tape_wl.forward(tape, f.x.data(), f.y.data(), 8.0f,
                                      f.gx.data(), f.gy.data());
    tape.backward();
    const double h = tape_wl.hpwl_op(f.x.data(), f.y.data());
    benchmark::DoNotOptimize(wl + h);
  }
}
BENCHMARK(BM_WirelengthTapeAutograd);

void BM_DensityExtracted(benchmark::State& state) {
  Fixture& f = fixture();
  ops::DensityGrid grid(f.db, 128);
  std::vector<double> d(grid.num_bins()), dfl(grid.num_bins()), total(grid.num_bins());
  for (auto _ : state) {
    grid.accumulate_range("m.d", f.x.data(), f.y.data(), 0, f.db.num_physical(),
                          d.data(), true);
    grid.accumulate_range("m.dfl", f.x.data(), f.y.data(), f.db.num_physical(),
                          f.db.num_cells_total(), dfl.data(), true);
    for (std::size_t b = 0; b < total.size(); ++b) total[b] = d[b] + dfl[b];
    benchmark::DoNotOptimize(grid.overflow(d.data()));
  }
}
BENCHMARK(BM_DensityExtracted);

void BM_DensityJoint(benchmark::State& state) {
  Fixture& f = fixture();
  ops::DensityGrid grid(f.db, 128);
  std::vector<double> d(grid.num_bins()), total(grid.num_bins());
  for (auto _ : state) {
    grid.accumulate_range("m.joint", f.x.data(), f.y.data(), 0,
                          f.db.num_cells_total(), total.data(), true);
    grid.accumulate_range("m.ovfl", f.x.data(), f.y.data(), 0,
                          f.db.num_physical(), d.data(), true);
    benchmark::DoNotOptimize(grid.overflow(d.data()));
  }
}
BENCHMARK(BM_DensityJoint);

void BM_PoissonFieldOnly(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  ops::PoissonSolver solver(m, 1.0, 1.0);
  Rng rng(1);
  std::vector<double> rho(static_cast<std::size_t>(m) * m);
  for (auto& v : rho) v = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    solver.solve(rho.data(), /*want_potential=*/false);
    benchmark::DoNotOptimize(solver.ex().data());
  }
}
BENCHMARK(BM_PoissonFieldOnly)->Arg(64)->Arg(128)->Arg(256);

void BM_PoissonWithPotential(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  ops::PoissonSolver solver(m, 1.0, 1.0);
  Rng rng(1);
  std::vector<double> rho(static_cast<std::size_t>(m) * m);
  for (auto& v : rho) v = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    solver.solve(rho.data(), /*want_potential=*/true);
    benchmark::DoNotOptimize(solver.energy(rho.data()));
  }
}
BENCHMARK(BM_PoissonWithPotential)->Arg(128);

void BM_Dct2d(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<double> map(m * m);
  for (auto& v : map) v = rng.uniform(-1, 1);
  for (auto _ : state) {
    fft::dct2(map.data(), m, m);
    benchmark::DoNotOptimize(map.data());
  }
}
BENCHMARK(BM_Dct2d)->Arg(64)->Arg(128)->Arg(256);

void BM_Fft1d(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<fft::Complex> v(n);
  for (auto& c : v) c = fft::Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  for (auto _ : state) {
    fft::fft(v.data(), n);
    benchmark::DoNotOptimize(v.data());
  }
}
BENCHMARK(BM_Fft1d)->Arg(256)->Arg(1024)->Arg(4096);

// ---------------- --json: SIMD backend A/B mode ----------------

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Median ns per call of fn() over `rounds` rounds of `reps` calls.
template <typename Fn>
double time_ns(int rounds, int reps, Fn&& fn) {
  fn();  // warm-up
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    Stopwatch w;
    for (int i = 0; i < reps; ++i) fn();
    times.push_back(w.seconds() / reps * 1e9);
  }
  return median(times);
}

struct JsonRow {
  std::string kernel;
  std::string simd;
  double ns_per_iter;
};

int run_json_mode(const std::string& path) {
  Fixture& f = fixture();
  ops::DensityGrid grid(f.db, 128);
  std::vector<double> dens(grid.num_bins());
  const std::size_t kAxpyN = 1 << 16;
  std::vector<float> ax(kAxpyN, 1.0f), ab(kAxpyN, 2.0f);
  const std::size_t kDct = 256;
  Rng rng(2);
  std::vector<double> map(kDct * kDct);
  for (auto& v : map) v = rng.uniform(-1, 1);

  std::vector<const char*> backends = {"scalar"};
  if (simd::cpu_has_avx2()) backends.push_back("avx2");

  std::vector<JsonRow> rows;
  for (const char* backend : backends) {
    simd::select(backend);
    rows.push_back({"wa_fused", backend, time_ns(9, 3, [&] {
                      std::fill(f.gx.begin(), f.gx.end(), 0.0f);
                      std::fill(f.gy.begin(), f.gy.end(), 0.0f);
                      benchmark::DoNotOptimize(ops::fused_wl_grad_hpwl(
                          f.view, f.x.data(), f.y.data(), 8.0f, f.gx.data(),
                          f.gy.data()));
                    })});
    rows.push_back({"density_scatter", backend, time_ns(9, 3, [&] {
                      grid.accumulate_range("m.json", f.x.data(), f.y.data(),
                                            0, f.db.num_cells_total(),
                                            dens.data(), true);
                      benchmark::DoNotOptimize(dens.data());
                    })});
    rows.push_back({"axpy", backend, time_ns(11, 200, [&] {
                      simd::active().axpy_(ax.data(), ab.data(), 0.125f,
                                           kAxpyN);
                      benchmark::DoNotOptimize(ax.data());
                    })});
    rows.push_back({"dct_pass", backend, time_ns(9, 3, [&] {
                      fft::dct2(map.data(), kDct, kDct);
                      benchmark::DoNotOptimize(map.data());
                    })});
  }
  simd::select("auto");

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"bench_micro_ops\",\n"
                    "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"backend\": \"serial\", "
                 "\"threads\": 1, \"simd\": \"%s\", \"ns_per_iter\": %.1f}%s\n",
                 rows[i].kernel.c_str(), rows[i].simd.c_str(),
                 rows[i].ns_per_iter, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  // Human-readable speedup table on stdout.
  std::printf("%-16s %14s %14s %9s\n", "kernel", "scalar ns/iter",
              "avx2 ns/iter", "speedup");
  const std::size_t half = rows.size() / backends.size();
  for (std::size_t i = 0; i < half; ++i) {
    if (backends.size() == 2) {
      std::printf("%-16s %14.0f %14.0f %8.2fx\n", rows[i].kernel.c_str(),
                  rows[i].ns_per_iter, rows[half + i].ns_per_iter,
                  rows[i].ns_per_iter / rows[half + i].ns_per_iter);
    } else {
      std::printf("%-16s %14.0f %14s %9s\n", rows[i].kernel.c_str(),
                  rows[i].ns_per_iter, "-", "-");
    }
  }
  std::printf("json written to %s\n", path.c_str());
  return 0;
}

// ---------------- --json-fft: FFT plan engine A/B mode ----------------

struct FftRow {
  std::string kernel;
  std::string backend;  // "serial" or "pooled"
  int threads;
  std::string simd;
  double ns_per_iter;
  double bytes_per_iter;
};

int run_json_fft_mode(const std::string& path) {
  const std::size_t kM = 256;
  Rng rng(4);
  std::vector<double> base(kM * kM);
  for (auto& v : base) v = rng.uniform(-1, 1);
  std::vector<double> map = base;
  std::vector<double> rho(kM * kM);
  Rng rng2(5);
  for (auto& v : rho) v = rng2.uniform(0.0, 1.0);
  ops::PoissonSolver solver(static_cast<int>(kM), 1.0, 1.0);
  ThreadPool pool(4);  // caller + 3 workers

  // Traffic estimates: each 1-D pass reads and writes the full grid once
  // (8 B/double), so a 2-D transform moves 4 grids of bytes. The solve is
  // dct2 rho→coeff (4 grids) + the fused spectral scale (read coeff, write
  // ex/ey/psi: 4) + the batched ex/ey row and column syntheses (2 grids ×
  // 2 passes × read+write: 8).
  const double kGrid = 8.0 * static_cast<double>(kM * kM);
  const double kXformBytes = 4.0 * kGrid;   // 2 passes × (read + write)
  const double kSolveBytes = 16.0 * kGrid;  // fwd(4) + scale(4) + fields(8)

  std::vector<const char*> isas = {"scalar"};
  if (simd::cpu_has_avx2()) isas.push_back("avx2");

  std::vector<FftRow> rows;
  for (const char* isa : isas) {
    simd::select(isa);
    for (int pooled = 0; pooled < 2; ++pooled) {
      ThreadPool* p = pooled != 0 ? &pool : nullptr;
      const char* backend = pooled != 0 ? "pooled" : "serial";
      const int threads = pooled != 0 ? static_cast<int>(pool.size()) : 1;
      rows.push_back({"dct2", backend, threads, isa, time_ns(9, 4, [&] {
                        fft::dct2(map.data(), kM, kM, p);
                        benchmark::DoNotOptimize(map.data());
                      }),
                      kXformBytes});
      rows.push_back({"idct2", backend, threads, isa, time_ns(9, 4, [&] {
                        fft::idct2(map.data(), kM, kM, p);
                        benchmark::DoNotOptimize(map.data());
                      }),
                      kXformBytes});
      rows.push_back({"idxst_idct", backend, threads, isa, time_ns(9, 4, [&] {
                        fft::idxst_idct(map.data(), kM, kM, p);
                        benchmark::DoNotOptimize(map.data());
                      }),
                      kXformBytes});
      solver.set_pool(p);
      rows.push_back({"poisson_solve", backend, threads, isa,
                      time_ns(9, 4, [&] {
                        solver.solve(rho.data(), /*want_potential=*/false);
                        benchmark::DoNotOptimize(solver.ex().data());
                      }),
                      kSolveBytes});
    }
  }
  simd::select("auto");
  solver.set_pool(nullptr);

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  // tolerance 0.6: shared CI runners make wall-clock noisy; the band still
  // catches the ~2x regression class (plan cache loss, de-fused passes).
  std::fprintf(out, "{\n  \"bench\": \"bench_micro_ops_fft\",\n"
                    "  \"results\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"backend\": \"%s\", "
                 "\"threads\": %d, \"simd\": \"%s\", \"ns_per_iter\": %.1f, "
                 "\"bytes_per_iter\": %.0f, \"tolerance\": 0.6}%s\n",
                 rows[i].kernel.c_str(), rows[i].backend.c_str(),
                 rows[i].threads, rows[i].simd.c_str(), rows[i].ns_per_iter,
                 rows[i].bytes_per_iter, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  // Human-readable table: one line per kernel × backend with the
  // scalar→avx2 speedup when both ISAs ran.
  std::printf("%-14s %-7s %8s %14s %14s %9s\n", "kernel", "backend",
              "threads", "scalar ns/iter", "avx2 ns/iter", "speedup");
  const std::size_t half = rows.size() / isas.size();
  for (std::size_t i = 0; i < half; ++i) {
    if (isas.size() == 2) {
      std::printf("%-14s %-7s %8d %14.0f %14.0f %8.2fx\n",
                  rows[i].kernel.c_str(), rows[i].backend.c_str(),
                  rows[i].threads, rows[i].ns_per_iter,
                  rows[half + i].ns_per_iter,
                  rows[i].ns_per_iter / rows[half + i].ns_per_iter);
    } else {
      std::printf("%-14s %-7s %8d %14.0f %14s %9s\n", rows[i].kernel.c_str(),
                  rows[i].backend.c_str(), rows[i].threads,
                  rows[i].ns_per_iter, "-", "-");
    }
  }
  std::printf("json written to %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  xplace::ArgParser args(argc, argv);
  const std::string json = args.get("json");
  if (!json.empty()) return run_json_mode(json);
  const std::string json_fft = args.get("json-fft");
  if (!json_fft.empty()) return run_json_fft_mode(json_fft);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
