// bench_portfolio: quantifies the local-optima-escape subsystem (DESIGN.md
// §16) on the demo design — single GP run vs the hill-climb kick vs the
// best of a K-way perturbed-restart portfolio — and emits the shared
// bench-JSON schema so check_regression can gate the committed
// BENCH_portfolio.json baseline.
//
//   bench_portfolio [--cells 3000] [--iters 800] [--k 4] [--seed 1]
//                   [--json BENCH_portfolio.json]
//
// All gated rows are bitwise-deterministic: serial backend, fixed seeds, and
// the portfolio runs under a no-kill policy (racing reclaims core-seconds but
// its kill timing is wall-clock-dependent — the tier1-portfolio CI lane
// covers that path over the socket). HPWL values ride the schema's
// ns_per_iter field; core-second rows carry wide tolerance bands.
#include <cstdio>
#include <string>
#include <vector>

#include "core/placer.h"
#include "io/generator.h"
#include "server/server.h"
#include "util/arg_parser.h"

namespace {

using namespace xplace;

struct Row {
  std::string kernel;
  double value = 0.0;
  double tolerance = 0.0;
};

// The exact config mapping run_job applies to a portfolio member's JobSpec,
// so the core-level runs and the served members are apples-to-apples.
core::PlacerConfig job_cfg(int iters, std::uint64_t seed) {
  core::PlacerConfig cfg = core::PlacerConfig::xplace();
  cfg.grid_dim = 64;
  cfg.max_iters = iters;
  cfg.threads = 1;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!args.ok()) {
    for (const std::string& e : args.errors()) {
      std::fprintf(stderr, "%s\n", e.c_str());
    }
    return 2;
  }
  const long cells = args.get_int("cells", 3000);
  const int iters = static_cast<int>(args.get_int("iters", 800));
  const int k = static_cast<int>(args.get_int("k", 4));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::uint64_t demo_seed = 11;

  const auto snap =
      io::make_demo_snapshot(static_cast<std::size_t>(cells), demo_seed);

  // ---- baseline: one GP run at the base seed ------------------------------
  core::GlobalPlacer single(snap, job_cfg(iters, seed));
  const core::GlobalPlaceResult r_single = single.run();

  // ---- cheap escape: the same run + hill-climb kicks ----------------------
  core::PlacerConfig kick_cfg = job_cfg(iters, seed);
  kick_cfg.kicks = 2;
  core::GlobalPlacer kicked(snap, kick_cfg);
  const core::GlobalPlaceResult r_kick = kicked.run();

  // ---- full escape: K-way perturbed-restart portfolio through the server --
  server::ServerConfig scfg;
  scfg.max_concurrency = static_cast<std::size_t>(k);
  scfg.portfolio_poll_s = -1.0;  // no racing: keep the gated rows bitwise
  server::PlacementServer srv(scfg);
  server::JobSpec src;
  src.demo_cells = cells;
  src.demo_seed = demo_seed;
  const auto up = srv.upload_design(src);
  if (!up.ok) {
    std::fprintf(stderr, "upload failed: %s\n", up.error.c_str());
    return 1;
  }
  server::JobSpec base;
  base.design_hash = up.hash;
  base.max_iters = iters;
  base.grid = 64;
  base.seed = seed;
  base.full_flow = false;
  base.label = "bench";
  server::RacePolicy no_kill;
  no_kill.no_kill = true;
  const auto out = srv.submit_portfolio(base, k, 0.0, no_kill);
  if (!out.ok) {
    std::fprintf(stderr, "submit-portfolio failed: %s\n", out.error.c_str());
    return 1;
  }
  const auto st = srv.portfolio_wait(out.portfolio_id, 3600.0);
  if (!st || !st->all_terminal || st->winner == 0) {
    std::fprintf(stderr, "portfolio did not settle\n");
    return 1;
  }
  double portfolio_core_s = 0.0;
  for (const auto& ref : out.jobs) {
    if (const auto rec = srv.status(ref.id)) portfolio_core_s += rec->gp_seconds;
  }
  const double winner_hpwl = st->winner_hpwl;
  srv.shutdown(/*drain=*/true);

  const double vs_single = 100.0 * (r_single.hpwl - winner_hpwl) / r_single.hpwl;
  const double kick_vs_single = 100.0 * (r_single.hpwl - r_kick.hpwl) / r_single.hpwl;
  std::printf("single     : hpwl %.1f  (%.2f core-s)\n", r_single.hpwl,
              r_single.gp_seconds);
  std::printf("kicks x2   : hpwl %.1f  (%.2f core-s, %+.2f%% vs single)\n",
              r_kick.hpwl, r_kick.gp_seconds, kick_vs_single);
  std::printf("best of %d  : hpwl %.1f  (%.2f core-s, %+.2f%% vs single)\n", k,
              winner_hpwl, portfolio_core_s, vs_single);

  std::vector<Row> rows = {
      {"portfolio.single_hpwl", r_single.hpwl, 0.02},
      {"portfolio.kick_hpwl", r_kick.hpwl, 0.02},
      {"portfolio.best_of_k_hpwl", winner_hpwl, 0.02},
      // Quality ratio the subsystem exists for: > 1 means the portfolio
      // escaped the single run's basin. Deterministic, so the band is tight.
      {"portfolio.single_over_winner", r_single.hpwl / winner_hpwl, 0.02},
      // Wall-clock rows are informational: shared runners are noisy.
      {"portfolio.single_core_s", r_single.gp_seconds * 1e9, 3.0},
      {"portfolio.total_core_s", portfolio_core_s * 1e9, 3.0},
  };

  if (const std::string json = args.get("json"); !json.empty()) {
    std::FILE* f = std::fopen(json.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json.c_str());
      return 1;
    }
    std::fprintf(f, "{\n  \"bench\": \"bench_portfolio\",\n"
                    "  \"cells\": %ld,\n  \"iters\": %d,\n  \"k\": %d,\n"
                    "  \"results\": [\n", cells, iters, k);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      std::fprintf(f,
                   "    {\"kernel\": \"%s\", \"backend\": \"serve\", "
                   "\"threads\": 1, \"simd\": \"n/a\", \"ns_per_iter\": %.6f, "
                   "\"tolerance\": %.2f}%s\n",
                   rows[i].kernel.c_str(), rows[i].value, rows[i].tolerance,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json written to %s\n", json.c_str());
  }
  return 0;
}
