// Table 1 — Benchmarks Statistics.
//
// Prints the per-design statistics of the synthetic ISPD 2005 / ISPD 2015
// suites at the chosen scale, next to the paper's cell/net counts so the
// structural correspondence is auditable.
//
//   ./bench_table1_stats [--scale 100]
#include <cstdio>

#include "db/stats.h"
#include "io/suites.h"
#include "util/arg_parser.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace xplace;
  log::set_level(log::Level::kWarn);
  ArgParser args(argc, argv);
  const double scale = args.get_double("scale", 100.0);

  std::printf("=== Table 1: Benchmarks Statistics (synthetic suites, 1/%.0f scale) ===\n",
              scale);
  std::printf("%-16s %10s %10s | %s\n", "design", "paper#cell", "paper#net",
              db::DesignStats::header().c_str());
  auto print_suite = [&](const char* name,
                         const std::vector<io::SuiteEntry>& suite) {
    std::printf("--- %s ---\n", name);
    for (const io::SuiteEntry& e : suite) {
      db::Database db = io::make_design(e, scale);
      const db::DesignStats s = db::compute_stats(db);
      std::printf("%-16s %9zuk %9zuk | %s\n", e.design.c_str(),
                  e.paper_cells / 1000, e.paper_nets / 1000, s.row().c_str());
    }
  };
  print_suite("ISPD 2005", io::ispd2005_suite());
  print_suite("ISPD 2015", io::ispd2015_suite());
  return 0;
}
