// Placement visualization: SVG layout plots and PPM density heatmaps.
//
// These are debugging/reporting utilities: `write_placement_svg` draws the
// die, rows, fixed macros and movable cells (colored by size class);
// `write_density_ppm` renders an M×M density or field map as a grayscale /
// diverging-color image. Both formats are plain text/binary with no external
// dependencies.
#pragma once

#include <string>
#include <vector>

#include "db/database.h"

namespace xplace::io {

struct SvgOptions {
  double canvas = 1000.0;     ///< longest canvas side in px
  bool draw_fillers = false;
  bool draw_nets = false;     ///< net bounding boxes (slow for big designs)
  std::size_t max_nets = 500;
};

void write_placement_svg(const db::Database& db, const std::string& path,
                         const SvgOptions& opts = {});

/// Grayscale PPM of a row-major m×m map (x-major like ops::DensityGrid);
/// values are min-max normalized. For signed maps (fields) use
/// `write_signed_map_ppm`, which renders a blue-white-red diverging scale.
void write_density_ppm(const std::vector<double>& map, int m,
                       const std::string& path);
void write_signed_map_ppm(const std::vector<double>& map, int m,
                          const std::string& path);

}  // namespace xplace::io
