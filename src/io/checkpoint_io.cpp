#include "io/checkpoint_io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace xplace::io {
namespace {

constexpr std::uint32_t kMagic = 0x4B435058;  // "XPCK" little-endian

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// ---- encoding ----

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

void put_str(std::string& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

void put_blob(std::string& out, const core::StateBlob& blob) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(blob.arrays.size()));
  for (const auto& [name, v] : blob.arrays) {
    put_str(out, name);
    put<std::uint64_t>(out, static_cast<std::uint64_t>(v.size()));
    out.append(reinterpret_cast<const char*>(v.data()),
               v.size() * sizeof(float));
  }
  put<std::uint32_t>(out, static_cast<std::uint32_t>(blob.scalars.size()));
  for (const auto& [name, v] : blob.scalars) {
    put_str(out, name);
    put<double>(out, v);
  }
}

// ---- decoding (bounds-checked cursor) ----

class Cursor {
 public:
  Cursor(const std::string& path, const std::string& buf)
      : path_(path), buf_(buf) {}

  template <typename T>
  T get() {
    require(sizeof(T));
    T v;
    std::memcpy(&v, buf_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string get_str() {
    const std::uint32_t n = get<std::uint32_t>();
    require(n);
    std::string s(buf_.data() + pos_, n);
    pos_ += n;
    return s;
  }

  core::StateBlob get_blob() {
    core::StateBlob blob;
    const std::uint32_t na = get<std::uint32_t>();
    for (std::uint32_t i = 0; i < na; ++i) {
      std::string name = get_str();
      const std::uint64_t count = get<std::uint64_t>();
      require(count * sizeof(float));
      std::vector<float> v(static_cast<std::size_t>(count));
      std::memcpy(v.data(), buf_.data() + pos_, v.size() * sizeof(float));
      pos_ += v.size() * sizeof(float);
      blob.put_array(std::move(name), std::move(v));
    }
    const std::uint32_t ns = get<std::uint32_t>();
    for (std::uint32_t i = 0; i < ns; ++i) {
      std::string name = get_str();
      blob.put_scalar(std::move(name), get<double>());
    }
    return blob;
  }

  std::size_t pos() const { return pos_; }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error(path_ + ": " + msg);
  }

 private:
  void require(std::uint64_t n) {
    if (pos_ + n > buf_.size()) fail("truncated checkpoint");
  }

  const std::string& path_;
  const std::string& buf_;
  std::size_t pos_ = 0;
};

}  // namespace

void write_checkpoint(const core::RunCheckpoint& ck, const std::string& path) {
  std::string payload;
  put<std::uint32_t>(payload, kMagic);
  put<std::uint32_t>(payload, core::RunCheckpoint::kVersion);
  put_str(payload, ck.design);
  put<std::uint64_t>(payload, ck.n_total);
  put<std::uint64_t>(payload, ck.n_movable);
  put<std::int32_t>(payload, ck.optimizer_kind);
  put<std::int32_t>(payload, ck.next_iter);
  put<double>(payload, ck.gamma);
  put<double>(payload, ck.overflow);
  put<double>(payload, ck.best_hpwl);
  put<double>(payload, ck.hpwl);
  put_blob(payload, ck.optimizer);
  put_blob(payload, ck.scheduler);
  put_blob(payload, ck.engine);
  put<std::uint64_t>(payload, fnv1a(payload.data(), payload.size()));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write '" + tmp + "'");
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out) throw std::runtime_error("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

core::RunCheckpoint read_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open checkpoint '" + path + "'");
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());

  Cursor c(path, buf);
  if (buf.size() < sizeof(std::uint64_t)) c.fail("truncated checkpoint");
  if (c.get<std::uint32_t>() != kMagic) {
    c.fail("not an Xplace checkpoint (bad magic)");
  }
  const std::uint32_t version = c.get<std::uint32_t>();
  if (version != core::RunCheckpoint::kVersion) {
    c.fail("unsupported checkpoint version " + std::to_string(version) +
           " (this build reads version " +
           std::to_string(core::RunCheckpoint::kVersion) + ")");
  }
  core::RunCheckpoint ck;
  ck.design = c.get_str();
  ck.n_total = c.get<std::uint64_t>();
  ck.n_movable = c.get<std::uint64_t>();
  ck.optimizer_kind = c.get<std::int32_t>();
  ck.next_iter = c.get<std::int32_t>();
  ck.gamma = c.get<double>();
  ck.overflow = c.get<double>();
  ck.best_hpwl = c.get<double>();
  ck.hpwl = c.get<double>();
  ck.optimizer = c.get_blob();
  ck.scheduler = c.get_blob();
  ck.engine = c.get_blob();
  const std::size_t payload_end = c.pos();
  const std::uint64_t stored_sum = c.get<std::uint64_t>();
  if (stored_sum != fnv1a(buf.data(), payload_end)) {
    c.fail("checkpoint checksum mismatch (corrupted file)");
  }
  return ck;
}

}  // namespace xplace::io
