#include "io/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "util/logging.h"

namespace xplace::io {

namespace {

constexpr std::uint32_t kJournalMagic = 0x4C4A5058;  // "XPJL" little-endian
constexpr std::uint32_t kJournalVersion = 1;

template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
bool get_at(const std::string& buf, std::size_t pos, T* out) {
  if (pos + sizeof(T) > buf.size()) return false;
  std::memcpy(out, buf.data() + pos, sizeof(T));
  return true;
}

std::string frame_record(const JournalRecord& rec) {
  std::string body;
  put<std::uint32_t>(body, rec.type);
  put<std::uint64_t>(body, rec.job_id);
  put<double>(body, rec.time_s);
  body.append(rec.payload);

  std::string frame;
  put<std::uint32_t>(frame, static_cast<std::uint32_t>(body.size()));
  frame.append(body);
  put<std::uint64_t>(frame, fnv1a64(body.data(), body.size()));
  return frame;
}

bool write_fully(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// ---------------------------------------------------------------------------
// JournalWriter
// ---------------------------------------------------------------------------

JournalWriter::~JournalWriter() { close(); }

bool JournalWriter::open(const std::string& path, bool truncate) {
  close();
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    XP_ERROR("journal: cannot open '%s': %s", path.c_str(),
             std::strerror(errno));
    return false;
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  fd_ = fd;
  path_ = path;
  size_ = static_cast<std::uint64_t>(st.st_size);
  records_ = 0;
  dead_ = false;
  if (size_ == 0) {
    std::string header;
    put<std::uint32_t>(header, kJournalMagic);
    put<std::uint32_t>(header, kJournalVersion);
    if (!write_fully(fd_, header.data(), header.size()) || ::fsync(fd_) != 0) {
      close();
      return false;
    }
    size_ = header.size();
  }
  return true;
}

bool JournalWriter::append(const JournalRecord& rec) {
  if (fd_ < 0 || dead_) return false;
  if (disk_full_) return false;  // injected ENOSPC: fail without writing
  const std::string frame = frame_record(rec);
  if (torn_armed_) {
    // Crash-mid-append simulation: half the frame lands on disk, then the
    // writer is gone. Replay must treat the partial frame as a torn tail.
    torn_armed_ = false;
    dead_ = true;
    write_fully(fd_, frame.data(), frame.size() / 2);
    ::fsync(fd_);
    size_ += frame.size() / 2;
    return false;
  }
  if (!write_fully(fd_, frame.data(), frame.size())) return false;
  if (::fsync(fd_) != 0) return false;
  size_ += frame.size();
  ++records_;
  return true;
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------------

JournalReplay read_journal(const std::string& path) {
  JournalReplay out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    out.missing = true;
    return out;
  }
  std::string buf((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  out.bytes_scanned = buf.size();

  std::uint32_t magic = 0, version = 0;
  if (!get_at(buf, 0, &magic) || !get_at(buf, 4, &version)) {
    // Shorter than a header: a journal whose very first write was torn.
    out.torn_tail = !buf.empty();
    return out;
  }
  if (magic != kJournalMagic) {
    throw std::runtime_error(path + ": not an Xplace journal (bad magic)");
  }
  if (version != kJournalVersion) {
    throw std::runtime_error(path + ": unsupported journal version " +
                             std::to_string(version));
  }

  std::size_t pos = 8;
  while (pos < buf.size()) {
    std::uint32_t body_len = 0;
    if (!get_at(buf, pos, &body_len)) {
      out.torn_tail = true;  // partial length field
      break;
    }
    if (body_len < sizeof(std::uint32_t) + sizeof(std::uint64_t) +
                       sizeof(double) ||
        body_len > kMaxJournalRecordBytes) {
      out.corrupt = true;  // structurally impossible frame
      break;
    }
    const std::size_t body_pos = pos + sizeof(std::uint32_t);
    const std::size_t sum_pos = body_pos + body_len;
    std::uint64_t stored_sum = 0;
    if (!get_at(buf, sum_pos, &stored_sum)) {
      out.torn_tail = true;  // frame cut off mid-body or mid-checksum
      break;
    }
    if (stored_sum != fnv1a64(buf.data() + body_pos, body_len)) {
      out.corrupt = true;
      break;
    }
    JournalRecord rec;
    get_at(buf, body_pos, &rec.type);
    get_at(buf, body_pos + 4, &rec.job_id);
    get_at(buf, body_pos + 12, &rec.time_s);
    rec.payload.assign(buf, body_pos + 20, body_len - 20);
    out.records.push_back(std::move(rec));
    pos = sum_pos + sizeof(std::uint64_t);
  }
  return out;
}

bool rewrite_journal(const std::string& path,
                     const std::vector<JournalRecord>& records) {
  const std::string tmp = path + ".tmp";
  {
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return false;
    std::string payload;
    put<std::uint32_t>(payload, kJournalMagic);
    put<std::uint32_t>(payload, kJournalVersion);
    for (const JournalRecord& rec : records) payload.append(frame_record(rec));
    const bool ok = write_fully(fd, payload.data(), payload.size()) &&
                    ::fsync(fd) == 0;
    ::close(fd);
    if (!ok) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace xplace::io
