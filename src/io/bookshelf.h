// GSRC Bookshelf format reader/writer (the ISPD 2005 contest interchange
// format: .aux, .nodes, .nets, .wts, .pl, .scl).
//
// The reader accepts the conventions used by the ISPD 2005 suite:
//   * .nodes   "name width height [terminal]"
//   * .nets    "NetDegree : k [name]" followed by "cell I/O/B : ox oy" pin
//              lines with offsets measured from the *cell center*
//   * .pl      "name x y : orient [/FIXED]" with (x, y) the *lower-left* corner
//   * .scl     CoreRow blocks
// Comments (#...) and blank lines are ignored everywhere.
//
// The writer emits files the reader round-trips exactly (modulo float
// formatting), so placements can be exchanged with external bookshelf tools.
#pragma once

#include <string>

#include "db/database.h"

namespace xplace::io {

/// Parse a design given the path to its .aux file. Throws std::runtime_error
/// with a file/line diagnostic on malformed input. The returned database is
/// finalized (fillers not inserted).
db::Database read_bookshelf_aux(const std::string& aux_path);

/// Write a complete bookshelf design (aux/nodes/nets/wts/pl/scl) under
/// `directory` with file stem `design`.
void write_bookshelf(const db::Database& db, const std::string& directory,
                     const std::string& design);

/// Write only a .pl file with the database's current positions (the usual way
/// to hand a GP/LG/DP result to downstream tools).
void write_pl(const db::Database& db, const std::string& path);

/// Overwrite positions in `db` from a .pl file (cells matched by name;
/// unknown names are an error).
void read_pl_into(db::Database& db, const std::string& path);

}  // namespace xplace::io
