// GSRC Bookshelf format reader/writer (the ISPD 2005 contest interchange
// format: .aux, .nodes, .nets, .wts, .pl, .scl).
//
// The reader accepts the conventions used by the ISPD 2005 suite:
//   * .nodes   "name width height [terminal]"
//   * .nets    "NetDegree : k [name]" followed by "cell I/O/B : ox oy" pin
//              lines with offsets measured from the *cell center*
//   * .pl      "name x y : orient [/FIXED]" with (x, y) the *lower-left* corner
//   * .scl     CoreRow blocks
// Comments (#...) and blank lines are ignored everywhere.
//
// The writer emits files the reader round-trips exactly (modulo float
// formatting), so placements can be exchanged with external bookshelf tools.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "db/database.h"
#include "db/design_snapshot.h"

namespace xplace::io {

/// Parse a design given the path to its .aux file. Throws std::runtime_error
/// with a file/line diagnostic on malformed input. The returned database is
/// finalized (fillers not inserted).
db::Database read_bookshelf_aux(const std::string& aux_path);

/// FNV-1a content hash over the .aux file's bytes plus the bytes of every
/// component file it references (.nodes/.nets/.pl/.scl/.wts) — the design
/// store's cache key. Throws when the aux or a required component is
/// unreadable; a referenced-but-missing .wts is tolerated like the parser
/// tolerates it.
std::uint64_t hash_bookshelf_aux(const std::string& aux_path);

/// Parse + hash in one step: an immutable content-addressed snapshot that can
/// back many concurrent runs copy-on-write (see db::DesignSnapshot).
std::shared_ptr<const db::DesignSnapshot> read_bookshelf_snapshot(
    const std::string& aux_path);

/// Write a complete bookshelf design (aux/nodes/nets/wts/pl/scl) under
/// `directory` with file stem `design`.
void write_bookshelf(const db::Database& db, const std::string& directory,
                     const std::string& design);

/// Write only a .pl file with the database's current positions (the usual way
/// to hand a GP/LG/DP result to downstream tools).
void write_pl(const db::Database& db, const std::string& path);

/// Overwrite positions in `db` from a .pl file (cells matched by name;
/// unknown names are an error).
void read_pl_into(db::Database& db, const std::string& path);

}  // namespace xplace::io
