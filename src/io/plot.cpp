#include "io/plot.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace xplace::io {

void write_placement_svg(const db::Database& db, const std::string& path,
                         const SvgOptions& opts) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  const auto& r = db.region();
  const double scale = opts.canvas / std::max(r.width(), r.height());
  const double w = r.width() * scale, h = r.height() * scale;
  // SVG y grows downward; flip so the die's +y is up.
  auto X = [&](double x) { return (x - r.lx) * scale; };
  auto Y = [&](double y) { return h - (y - r.ly) * scale; };

  out << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w << "' height='"
      << h << "' viewBox='0 0 " << w << " " << h << "'>\n";
  out << "<rect x='0' y='0' width='" << w << "' height='" << h
      << "' fill='#f8f8f8' stroke='#333'/>\n";

  // Rows (light horizontal bands).
  for (const db::Row& row : db.rows()) {
    out << "<rect x='" << X(row.lx) << "' y='" << Y(row.hy()) << "' width='"
        << (row.hx() - row.lx) * scale << "' height='" << row.height * scale
        << "' fill='none' stroke='#dddddd' stroke-width='0.3'/>\n";
  }

  // Fence regions (dashed outlines).
  for (const db::FenceRegion& f : db.fences()) {
    out << "<rect x='" << X(f.rect.lx) << "' y='" << Y(f.rect.hy) << "' width='"
        << f.rect.width() * scale << "' height='" << f.rect.height() * scale
        << "' fill='#33aacc' fill-opacity='0.08' stroke='#1177aa' "
           "stroke-width='1.2' stroke-dasharray='6,3'/>\n";
  }

  // Fixed cells (macros + pads).
  for (std::size_t c = db.num_movable(); c < db.num_physical(); ++c) {
    const RectD b = db.cell_rect(c);
    out << "<rect x='" << X(b.lx) << "' y='" << Y(b.hy) << "' width='"
        << b.width() * scale << "' height='" << b.height() * scale
        << "' fill='#8888aa' fill-opacity='0.8' stroke='#444'/>\n";
  }

  // Movable cells.
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    const RectD b = db.cell_rect(c);
    out << "<rect x='" << X(b.lx) << "' y='" << Y(b.hy) << "' width='"
        << std::max(0.5, b.width() * scale) << "' height='"
        << std::max(0.5, b.height() * scale)
        << "' fill='#cc3333' fill-opacity='0.6'/>\n";
  }

  if (opts.draw_fillers) {
    for (std::size_t c = db.num_physical(); c < db.num_cells_total(); ++c) {
      const RectD b = db.cell_rect(c);
      out << "<rect x='" << X(b.lx) << "' y='" << Y(b.hy) << "' width='"
          << b.width() * scale << "' height='" << b.height() * scale
          << "' fill='#33aa33' fill-opacity='0.25'/>\n";
    }
  }

  if (opts.draw_nets) {
    std::size_t drawn = 0;
    for (std::size_t e = 0; e < db.num_nets() && drawn < opts.max_nets; ++e) {
      if (db.net_degree(e) < 2) continue;
      double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
      for (std::size_t p = db.net_pin_start(e); p < db.net_pin_start(e + 1); ++p) {
        const std::size_t c = db.pin_cell(p);
        const double px = db.x(c) + db.pin_offset_x(p);
        const double py = db.y(c) + db.pin_offset_y(p);
        min_x = std::min(min_x, px);
        max_x = std::max(max_x, px);
        min_y = std::min(min_y, py);
        max_y = std::max(max_y, py);
      }
      out << "<rect x='" << X(min_x) << "' y='" << Y(max_y) << "' width='"
          << (max_x - min_x) * scale << "' height='" << (max_y - min_y) * scale
          << "' fill='none' stroke='#3366cc' stroke-opacity='0.3' "
             "stroke-width='0.4'/>\n";
      ++drawn;
    }
  }
  out << "</svg>\n";
}

namespace {

void write_ppm(const std::string& path, int m,
               const std::vector<std::array<unsigned char, 3>>& pixels) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  out << "P6\n" << m << " " << m << "\n255\n";
  // Image rows top-to-bottom = map y descending; map is x-major so pixel
  // (row=iy from top, col=ix) reads map[ix*m + (m-1-row)].
  for (int row = 0; row < m; ++row) {
    for (int ix = 0; ix < m; ++ix) {
      const auto& px = pixels[static_cast<std::size_t>(ix) * m + (m - 1 - row)];
      out.write(reinterpret_cast<const char*>(px.data()), 3);
    }
  }
}

}  // namespace

void write_density_ppm(const std::vector<double>& map, int m,
                       const std::string& path) {
  double lo = 1e300, hi = -1e300;
  for (double v : map) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo > 1e-30 ? hi - lo : 1.0;
  std::vector<std::array<unsigned char, 3>> pixels(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    const double t = (map[i] - lo) / span;
    // Black (empty) → yellow → white (hot).
    const auto ch = [&](double x) {
      return static_cast<unsigned char>(std::clamp(x, 0.0, 1.0) * 255.0);
    };
    pixels[i] = {ch(t * 1.5), ch(t * 1.2), ch(t * t)};
  }
  write_ppm(path, m, pixels);
}

void write_signed_map_ppm(const std::vector<double>& map, int m,
                          const std::string& path) {
  double amax = 1e-30;
  for (double v : map) amax = std::max(amax, std::fabs(v));
  std::vector<std::array<unsigned char, 3>> pixels(map.size());
  for (std::size_t i = 0; i < map.size(); ++i) {
    const double t = std::clamp(map[i] / amax, -1.0, 1.0);
    // Blue (negative) — white (zero) — red (positive).
    const auto ch = [](double x) {
      return static_cast<unsigned char>(std::clamp(x, 0.0, 1.0) * 255.0);
    };
    if (t >= 0) {
      pixels[i] = {255, ch(1.0 - t), ch(1.0 - t)};
    } else {
      pixels[i] = {ch(1.0 + t), ch(1.0 + t), 255};
    }
  }
  write_ppm(path, m, pixels);
}

}  // namespace xplace::io
