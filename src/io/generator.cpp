#include "io/generator.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <numeric>
#include <vector>

#include "io/bookshelf.h"
#include "io/journal.h"
#include "util/logging.h"
#include "util/rng.h"

namespace xplace::io {
namespace {

/// Draw a net degree: 2/3/4-pin nets dominate; geometric tail up to 24 pins,
/// with a rare "global" net up to 64. Tuned so the mean lands near
/// spec.avg_net_degree for the default mix.
std::size_t draw_degree(Rng& rng, double avg) {
  const double u = rng.uniform();
  // Base mix averaging ~3.0: 2:55%, 3:22%, 4:10%, tail: 13%.
  std::size_t deg;
  if (u < 0.55) {
    deg = 2;
  } else if (u < 0.77) {
    deg = 3;
  } else if (u < 0.87) {
    deg = 4;
  } else {
    // Geometric tail starting at 5.
    deg = 5;
    while (deg < 24 && rng.bernoulli(0.72)) ++deg;
    if (rng.bernoulli(0.004)) deg += rng.uniform_int(16, 48);  // rare global net
  }
  // Stretch the tail to hit the requested average (base mix averages ~3.2).
  if (avg > 3.2 && deg >= 3 && rng.bernoulli(std::min(0.9, (avg - 3.2) / 4.0))) {
    ++deg;
  }
  return deg;
}

}  // namespace

db::Database generate(const GeneratorSpec& spec) {
  Rng rng(spec.seed ^ 0xC0FFEEULL);
  db::Database db;
  db.set_design_name(spec.name);
  db.set_target_density(spec.target_density);

  // ---- movable cells ------------------------------------------------------
  // Widths: 2..14 sites, biased small (like contest standard-cell libraries).
  std::vector<int> ids(spec.num_cells);
  double movable_area = 0.0;
  for (std::size_t i = 0; i < spec.num_cells; ++i) {
    const double wsites = 2.0 + std::floor(std::pow(rng.uniform(), 1.7) * 13.0);
    const double w = wsites * spec.site_width;
    ids[i] = db.add_cell("o" + std::to_string(i), w, spec.row_height,
                         db::CellKind::kMovable);
    movable_area += w * spec.row_height;
  }

  // ---- die sizing ---------------------------------------------------------
  // free_area = movable / utilization; region = free + macro area, square,
  // snapped to an integer number of rows.
  const double free_area = movable_area / std::max(0.05, spec.utilization);
  const double region_area = free_area / std::max(1e-9, 1.0 - spec.macro_area_fraction);
  double side = std::sqrt(region_area);
  const int num_rows = std::max(4, static_cast<int>(std::lround(side / spec.row_height)));
  const double height = num_rows * spec.row_height;
  const double width_raw = region_area / height;
  const int num_sites = std::max(16, static_cast<int>(std::lround(width_raw / spec.site_width)));
  const double width = num_sites * spec.site_width;
  const RectD region{0.0, 0.0, width, height};
  db.set_region(region);
  for (int r = 0; r < num_rows; ++r) {
    db::Row row;
    row.lx = 0.0;
    row.ly = r * spec.row_height;
    row.height = spec.row_height;
    row.site_width = spec.site_width;
    row.num_sites = num_sites;
    db.add_row(row);
  }

  // ---- fixed macros + fence rectangles ------------------------------------
  // Macros and fences are placed on a shared jittered grid so nothing
  // overlaps (contest macro/fence layouts are non-overlapping).
  const double macro_area_total = region_area * spec.macro_area_fraction;
  std::vector<RectD> macro_rects;
  std::vector<RectD> fence_rects;
  if (spec.num_macros + spec.num_fences > 0 && region_area > 0.0) {
    const int grid = static_cast<int>(std::ceil(
        std::sqrt(static_cast<double>(spec.num_macros + spec.num_fences))));
    const double cell_w = width / grid, cell_h = height / grid;
    const double one_area =
        spec.num_macros > 0 ? macro_area_total / spec.num_macros : 0.0;
    std::vector<int> slots(static_cast<std::size_t>(grid) * grid);
    std::iota(slots.begin(), slots.end(), 0);
    // Deterministic shuffle of grid slots.
    for (std::size_t i = slots.size(); i > 1; --i) {
      std::swap(slots[i - 1], slots[rng.uniform_index(i)]);
    }
    for (int m = 0; m < spec.num_macros; ++m) {
      const int slot = slots[static_cast<std::size_t>(m) % slots.size()];
      const int gx = slot % grid, gy = slot / grid;
      const double aspect = rng.uniform(0.6, 1.7);
      double mw = std::sqrt(one_area * aspect);
      double mh = one_area / mw;
      mw = std::min(mw, cell_w * 0.85);
      mh = std::min(mh, cell_h * 0.85);
      // Snap height to rows so legalization sees clean blockage boundaries.
      mh = std::max(spec.row_height, std::floor(mh / spec.row_height) * spec.row_height);
      const double lx = gx * cell_w + rng.uniform(0.0, std::max(0.0, cell_w - mw));
      const double ly_raw = gy * cell_h + rng.uniform(0.0, std::max(0.0, cell_h - mh));
      const double ly = std::min(height - mh,
                                 std::round(ly_raw / spec.row_height) * spec.row_height);
      const int id = db.add_cell("macro" + std::to_string(m), mw, mh,
                                 db::CellKind::kFixed);
      db.set_initial_position(id, lx + mw * 0.5, ly + mh * 0.5);
      macro_rects.push_back(RectD{lx, ly, lx + mw, ly + mh});
      ids.push_back(id);
    }
    // Fence rectangles in the remaining grid slots, row-aligned in y.
    const double fence_area_each =
        spec.num_fences > 0
            ? region_area * spec.fence_area_fraction / spec.num_fences
            : 0.0;
    for (int f = 0; f < spec.num_fences; ++f) {
      const int slot = slots[static_cast<std::size_t>(spec.num_macros + f) % slots.size()];
      const int gx = slot % grid, gy = slot / grid;
      double fw = std::sqrt(fence_area_each * rng.uniform(0.8, 1.3));
      double fh = fence_area_each / fw;
      fw = std::min(fw, cell_w * 0.9);
      fh = std::min(fh, cell_h * 0.9);
      // Rows must lie fully inside the fence's vertical span.
      fh = std::max(2.0 * spec.row_height,
                    std::floor(fh / spec.row_height) * spec.row_height);
      const double flx = gx * cell_w + rng.uniform(0.0, std::max(0.0, cell_w - fw));
      double fly = gy * cell_h + rng.uniform(0.0, std::max(0.0, cell_h - fh));
      fly = std::min(height - fh,
                     std::round(fly / spec.row_height) * spec.row_height);
      const RectD rect{flx, fly, flx + fw, fly + fh};
      db.add_fence_region("fence" + std::to_string(f), rect);
      fence_rects.push_back(rect);
    }
  }
  const std::size_t num_macros_made = macro_rects.size();

  // ---- IO pads ------------------------------------------------------------
  // Small fixed terminals on the die boundary (bookshelf contest designs pin
  // their IOs on the periphery).
  std::vector<int> pad_ids;
  for (int p = 0; p < spec.num_io_pads; ++p) {
    const int id = db.add_cell("pad" + std::to_string(p), 1.0, 1.0,
                               db::CellKind::kFixed);
    const double t = (p + 0.5) / std::max(1, spec.num_io_pads);
    const double perim = 2.0 * (width + height);
    double d = t * perim;
    double px, py;
    if (d < width) {
      px = d;
      py = 0.0;
    } else if (d < width + height) {
      px = width;
      py = d - width;
    } else if (d < 2 * width + height) {
      px = 2 * width + height - d;
      py = height;
    } else {
      px = 0.0;
      py = perim - d;
    }
    db.set_initial_position(id, px, py);
    pad_ids.push_back(id);
  }

  // ---- netlist ------------------------------------------------------------
  // Cluster order: cells are conceptually laid out along a recursive-bisection
  // order; a net anchors at a random cell and draws its other pins from a
  // power-law window around the anchor, giving Rent-style locality.
  std::vector<std::uint32_t> cluster_order(spec.num_cells);
  std::iota(cluster_order.begin(), cluster_order.end(), 0u);
  for (std::size_t i = cluster_order.size(); i > 1; --i) {
    // Mild shuffle: swap within a +-num_cells/64 neighborhood to keep global
    // structure but avoid index == cluster artifacts.
    const std::size_t window = std::max<std::size_t>(2, spec.num_cells / 64);
    const std::size_t j = (i - 1 + rng.uniform_index(window)) % cluster_order.size();
    std::swap(cluster_order[i - 1], cluster_order[j]);
  }

  // ---- fence membership ----------------------------------------------------
  // Cluster-contiguous ranges of cells are assigned per fence (capacity-
  // capped so the fence can hold its members at ~60% fill).
  if (!fence_rects.empty()) {
    const double avg_cell_area = movable_area / static_cast<double>(spec.num_cells);
    const std::size_t per_fence_target = static_cast<std::size_t>(
        spec.fenced_cell_fraction * static_cast<double>(spec.num_cells) /
        fence_rects.size());
    for (std::size_t f = 0; f < fence_rects.size(); ++f) {
      const double capacity =
          0.6 * fence_rects[f].area() * spec.target_density / avg_cell_area;
      const std::size_t count = std::min(
          per_fence_target, static_cast<std::size_t>(std::max(0.0, capacity)));
      const std::size_t start = f * spec.num_cells / fence_rects.size();
      for (std::size_t i = 0; i < count && start + i < spec.num_cells; ++i) {
        db.assign_to_fence(ids[cluster_order[start + i]], static_cast<int>(f));
      }
    }
  }

  auto pin_offset = [&](int cell_id, double& ox, double& oy) {
    // Pins sit inside the cell outline.
    const double w = db.width(cell_id), h = db.height(cell_id);
    ox = rng.uniform(-0.4, 0.4) * w;
    oy = rng.uniform(-0.4, 0.4) * h;
  };

  double total_pins = 0.0;
  std::vector<int> net_cells;
  for (std::size_t e = 0; e < spec.num_nets; ++e) {
    const std::size_t degree = draw_degree(rng, spec.avg_net_degree);
    const std::size_t anchor_pos = rng.uniform_index(spec.num_cells);
    // Window size: power-law between 8 and num_cells.
    const double umin = std::log(8.0);
    const double umax = std::log(static_cast<double>(std::max<std::size_t>(16, spec.num_cells)));
    const std::size_t window = static_cast<std::size_t>(
        std::exp(rng.uniform(umin, umax)));

    net_cells.clear();
    net_cells.push_back(ids[cluster_order[anchor_pos]]);
    std::size_t attempts = 0;
    while (net_cells.size() < degree && attempts < degree * 8) {
      ++attempts;
      std::size_t pos;
      if (rng.bernoulli(0.03) && num_macros_made + pad_ids.size() > 0) {
        // Occasionally connect to a macro or pad (clock/reset style nets).
        if (!pad_ids.empty() && rng.bernoulli(0.5)) {
          net_cells.push_back(pad_ids[rng.uniform_index(pad_ids.size())]);
          continue;
        }
        if (num_macros_made > 0) {
          net_cells.push_back(ids[spec.num_cells + rng.uniform_index(num_macros_made)]);
          continue;
        }
        continue;
      }
      const long off = static_cast<long>(rng.uniform_index(2 * window + 1)) -
                       static_cast<long>(window);
      const long raw = static_cast<long>(anchor_pos) + off;
      if (raw < 0 || raw >= static_cast<long>(spec.num_cells)) continue;
      pos = static_cast<std::size_t>(raw);
      const int cand = ids[cluster_order[pos]];
      if (std::find(net_cells.begin(), net_cells.end(), cand) != net_cells.end()) continue;
      net_cells.push_back(cand);
    }
    if (net_cells.size() < 2) {
      // Degenerate draw: connect anchor to a uniformly random second cell.
      int cand = ids[cluster_order[rng.uniform_index(spec.num_cells)]];
      if (cand == net_cells[0]) cand = ids[cluster_order[(anchor_pos + 1) % spec.num_cells]];
      net_cells.push_back(cand);
    }
    const int net = db.add_net("n" + std::to_string(e));
    for (int cell : net_cells) {
      double ox, oy;
      pin_offset(cell, ox, oy);
      db.add_pin(net, cell, ox, oy);
    }
    total_pins += static_cast<double>(net_cells.size());
  }

  // ---- initial positions --------------------------------------------------
  // Scatter movable cells uniformly over the die, avoiding macro interiors
  // (a rough contest-like initial .pl).
  for (std::size_t i = 0; i < spec.num_cells; ++i) {
    const int id = ids[i];
    const double hw = db.width(id) * 0.5, hh = db.height(id) * 0.5;
    const int fence = db.cell_fence(id);
    if (fence >= 0) {
      const RectD& fr = fence_rects[fence];
      db.set_initial_position(id, rng.uniform(fr.lx + hw, fr.hx - hw),
                              rng.uniform(fr.ly + hh, fr.hy - hh));
      continue;
    }
    for (int tries = 0; tries < 8; ++tries) {
      const double cx = rng.uniform(region.lx + hw, region.hx - hw);
      const double cy = rng.uniform(region.ly + hh, region.hy - hh);
      bool inside_macro = false;
      for (const RectD& m : macro_rects) {
        if (m.contains(cx, cy)) {
          inside_macro = true;
          break;
        }
      }
      db.set_initial_position(id, cx, cy);
      if (!inside_macro) break;
    }
  }

  db.finalize();
  XP_INFO("generated '%s': %zu cells, %zu nets, %.0f pins (avg deg %.2f), die %.0fx%.0f",
          spec.name.c_str(), db.num_movable(), db.num_nets(), total_pins,
          total_pins / std::max<std::size_t>(1, spec.num_nets), width, height);
  return db;
}

std::uint64_t demo_content_hash(std::size_t cells, std::uint64_t seed) {
  // Tagged key so demo hashes live in a different space than file-byte
  // hashes ("demo" prefix + the two little-endian u64 generator inputs).
  char key[4 + 8 + 8];
  std::memcpy(key, "demo", 4);
  const std::uint64_t c = static_cast<std::uint64_t>(cells);
  std::memcpy(key + 4, &c, 8);
  std::memcpy(key + 12, &seed, 8);
  return fnv1a64(key, sizeof(key));
}

std::shared_ptr<const db::DesignSnapshot> make_demo_snapshot(std::size_t cells,
                                                             std::uint64_t seed) {
  namespace fs = std::filesystem;
  // Scratch path must be unique per process AND per call: concurrent loads
  // (or two servers in one test binary) must not write and delete each
  // other's bookshelf scratch files mid-parse.
  static std::atomic<std::uint64_t> scratch_seq{0};
  const fs::path dir =
      fs::temp_directory_path() /
      ("xplace_demo_" + std::to_string(::getpid()) + "_" +
       std::to_string(scratch_seq.fetch_add(1)));
  fs::create_directories(dir);
  GeneratorSpec gen;
  gen.name = "demo";
  gen.num_cells = cells;
  gen.num_nets = gen.num_cells + gen.num_cells / 20;
  gen.seed = seed;
  const db::Database generated = generate(gen);
  write_bookshelf(generated, dir.string(), "demo");
  auto snap = std::make_shared<db::DesignSnapshot>();
  snap->content_hash = demo_content_hash(cells, seed);
  snap->source = "demo:" + std::to_string(cells) + ":" + std::to_string(seed);
  snap->base = read_bookshelf_aux((dir / "demo.aux").string());
  snap->resident_bytes = snap->base.core_resident_bytes();
  std::error_code ec;
  fs::remove_all(dir, ec);  // scratch files; ignore cleanup failures
  return snap;
}

}  // namespace xplace::io
