// Append-only, checksummed, fsync'd record journal (the WAL under
// xplace_serve's --state-dir).
//
// Layout (little-endian, no padding):
//   u32 magic 0x4C4A5058 ("XPJL") | u32 version
//   record*
// where each record is
//   u32 body_len | body | u64 FNV-1a checksum of body
//   body := u32 type | u64 job_id | f64 time_s | payload bytes
//
// The journal only frames bytes: record `type` values and payload encodings
// belong to the caller (the serving layer's recovery module). Properties:
//
//   * every append is written as one frame and fsync'd before it returns, so
//     an acknowledged record survives a process kill;
//   * the reader tolerates a torn final record (a crash mid-append): replay
//     returns every intact record and flags `torn_tail` instead of failing;
//   * a checksum-mismatched record stops replay at that point (`corrupt`) —
//     nothing after a corrupt frame can be trusted;
//   * rewrite_journal() compacts atomically via the checkpoint_io tmp+rename
//     idiom, so a crash mid-compaction leaves the previous journal intact.
//
// Fault injection (deterministic tests of the recovery paths): arm_torn_write
// makes the next append stop halfway through its frame and then behave as if
// the process had died (subsequent appends fail); arm_disk_full makes every
// subsequent append fail cleanly (the ENOSPC story).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xplace::io {

/// FNV-1a 64-bit over `n` bytes — the checksum shared by the XPCK checkpoint
/// format and the journal frames.
std::uint64_t fnv1a64(const char* data, std::size_t n);

/// One journal frame. `type` / `payload` semantics are the caller's;
/// `time_s` is wall-clock (CLOCK_REALTIME) seconds so replay after a restart
/// can reason about elapsed real time (deadline accounting).
struct JournalRecord {
  std::uint32_t type = 0;
  std::uint64_t job_id = 0;
  double time_s = 0.0;
  std::string payload;
};

/// Upper bound on one record body; a longer length field during replay is
/// treated as corruption, not an allocation request.
inline constexpr std::uint32_t kMaxJournalRecordBytes = 1u << 20;

class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens `path` for appending (the file is created with a header when
  /// missing; `truncate` starts a fresh journal). False on I/O failure.
  bool open(const std::string& path, bool truncate);
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Appends one frame and fsyncs. False when the write cannot be made
  /// durable (I/O error, injected disk_full, or a previous torn write) —
  /// the caller decides whether to degrade or shed.
  bool append(const JournalRecord& rec);

  /// Bytes in the journal file (header + every acknowledged frame).
  std::uint64_t size_bytes() const { return size_; }
  std::uint64_t records_written() const { return records_; }

  void close();

  // ---- fault injection (XPLACE_FAULT journal_torn / disk_full) -------------
  /// The next append writes only half of its frame, fsyncs, and then behaves
  /// as a dead writer — simulating a crash mid-append.
  void arm_torn_write() { torn_armed_ = true; }
  /// Every subsequent append fails without writing (ENOSPC simulation).
  void arm_disk_full() { disk_full_ = true; }

 private:
  int fd_ = -1;
  std::string path_;
  std::uint64_t size_ = 0;
  std::uint64_t records_ = 0;
  bool torn_armed_ = false;
  bool disk_full_ = false;
  bool dead_ = false;  ///< a torn write happened; the "process" is gone
};

/// Replay result: every record that could be trusted, in append order.
struct JournalReplay {
  std::vector<JournalRecord> records;
  bool missing = false;    ///< no journal file (a genuinely fresh start)
  bool torn_tail = false;  ///< final record incomplete (crash mid-append)
  bool corrupt = false;    ///< replay stopped at a checksum/structure mismatch
  std::uint64_t bytes_scanned = 0;
};

/// Reads `path` tolerantly per the header contract. A missing file is not an
/// error (`missing` set, zero records). Throws std::runtime_error only for a
/// present file whose header is not a journal (wrong magic/version) — that is
/// operator error, not crash damage.
JournalReplay read_journal(const std::string& path);

/// Atomically replaces `path` with a journal holding exactly `records`
/// (tmp + fsync + rename). False on I/O failure; the previous journal file
/// is left untouched in that case.
bool rewrite_journal(const std::string& path,
                     const std::vector<JournalRecord>& records);

}  // namespace xplace::io
