#include "io/bookshelf.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace xplace::io {
namespace {

/// Line-oriented tokenizer with diagnostics. Strips '#' comments, splits on
/// whitespace, and tracks line numbers for error messages.
class LineReader {
 public:
  explicit LineReader(const std::string& path) : path_(path), in_(path) {
    if (!in_) throw std::runtime_error("cannot open '" + path + "'");
  }

  /// Next non-empty token line (already split). Returns false at EOF.
  bool next(std::vector<std::string>& tokens) {
    std::string line;
    while (std::getline(in_, line)) {
      ++line_no_;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      tokens.clear();
      std::istringstream ss(line);
      std::string tok;
      while (ss >> tok) tokens.push_back(tok);
      if (!tokens.empty()) return true;
    }
    return false;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::runtime_error(path_ + ":" + std::to_string(line_no_) + ": " + msg);
  }

  int line() const { return line_no_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ifstream in_;
  int line_no_ = 0;
};

double to_double(const LineReader& r, const std::string& tok) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    const_cast<LineReader&>(r).fail("expected a number, got '" + tok + "'");
  }
}

long to_long(const LineReader& r, const std::string& tok) {
  try {
    std::size_t pos = 0;
    const long v = std::stol(tok, &pos);
    if (pos != tok.size()) throw std::invalid_argument(tok);
    return v;
  } catch (const std::exception&) {
    const_cast<LineReader&>(r).fail("expected an integer, got '" + tok + "'");
  }
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string stem_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const auto dot = base.find_last_of('.');
  return dot == std::string::npos ? base : base.substr(0, dot);
}

struct NodeRecord {
  std::string name;
  double w = 0.0, h = 0.0;
  bool terminal = false;
};

struct PinRecord {
  std::string cell;
  double ox = 0.0, oy = 0.0;
};

struct NetRecord {
  std::string name;
  std::vector<PinRecord> pins;
};

void read_nodes(const std::string& path, std::vector<NodeRecord>& nodes) {
  LineReader r(path);
  std::vector<std::string> t;
  long declared_nodes = -1, declared_terminals = -1;
  while (r.next(t)) {
    if (t[0] == "UCLA") continue;
    if (t[0] == "NumNodes") {
      declared_nodes = to_long(r, t.back());
      continue;
    }
    if (t[0] == "NumTerminals") {
      declared_terminals = to_long(r, t.back());
      continue;
    }
    if (t.size() < 3) r.fail("node line needs 'name width height'");
    NodeRecord n;
    n.name = t[0];
    n.w = to_double(r, t[1]);
    n.h = to_double(r, t[2]);
    n.terminal = t.size() > 3 && lower(t[3]).find("terminal") != std::string::npos;
    nodes.push_back(std::move(n));
  }
  if (declared_nodes >= 0 && declared_nodes != static_cast<long>(nodes.size())) {
    throw std::runtime_error(path + ": NumNodes=" + std::to_string(declared_nodes) +
                             " but " + std::to_string(nodes.size()) + " nodes found");
  }
  (void)declared_terminals;
}

void read_nets(const std::string& path, std::vector<NetRecord>& nets) {
  LineReader r(path);
  std::vector<std::string> t;
  long declared_nets = -1;
  while (r.next(t)) {
    if (t[0] == "UCLA" || t[0] == "NumPins") continue;
    if (t[0] == "NumNets") {
      declared_nets = to_long(r, t.back());
      continue;
    }
    if (t[0] == "NetDegree") {
      // "NetDegree : k [name]"
      if (t.size() < 3) r.fail("NetDegree line needs a degree");
      const long degree = to_long(r, t[2]);
      NetRecord net;
      net.name = t.size() > 3 ? t[3] : ("net" + std::to_string(nets.size()));
      net.pins.reserve(static_cast<std::size_t>(degree));
      for (long i = 0; i < degree; ++i) {
        if (!r.next(t)) r.fail("unexpected EOF inside net");
        // "cell I : ox oy"  or  "cell I" (offset omitted = 0 0)
        PinRecord pin;
        pin.cell = t[0];
        if (t.size() >= 5) {
          pin.ox = to_double(r, t[3]);
          pin.oy = to_double(r, t[4]);
        } else if (t.size() != 2 && t.size() != 3) {
          r.fail("malformed pin line");
        }
        net.pins.push_back(std::move(pin));
      }
      nets.push_back(std::move(net));
      continue;
    }
    r.fail("unexpected token '" + t[0] + "' in nets file");
  }
  if (declared_nets >= 0 && declared_nets != static_cast<long>(nets.size())) {
    throw std::runtime_error(path + ": NumNets mismatch");
  }
}

struct PlRecord {
  double x = 0.0, y = 0.0;  // lower-left
  bool fixed = false;
};

void read_pl(const std::string& path,
             std::unordered_map<std::string, PlRecord>& pl) {
  LineReader r(path);
  std::vector<std::string> t;
  while (r.next(t)) {
    if (t[0] == "UCLA") continue;
    if (t.size() < 3) r.fail("pl line needs 'name x y'");
    PlRecord rec;
    rec.x = to_double(r, t[1]);
    rec.y = to_double(r, t[2]);
    for (const auto& tok : t) {
      if (lower(tok).find("fixed") != std::string::npos) rec.fixed = true;
    }
    pl[t[0]] = rec;
  }
}

void read_scl(const std::string& path, db::Database& db) {
  LineReader r(path);
  std::vector<std::string> t;
  while (r.next(t)) {
    if (lower(t[0]) != "corerow") continue;
    db::Row row;
    row.site_width = 1.0;
    bool done = false;
    while (!done && r.next(t)) {
      const std::string key = lower(t[0]);
      if (key == "coordinate") {
        row.ly = to_double(r, t.back());
      } else if (key == "height") {
        row.height = to_double(r, t.back());
      } else if (key == "sitewidth") {
        row.site_width = to_double(r, t.back());
      } else if (key == "subroworigin") {
        // "SubrowOrigin : x NumSites : n" (single line) or split tokens
        for (std::size_t i = 0; i + 1 < t.size(); ++i) {
          if (lower(t[i]) == "subroworigin" && t[i + 1] == ":") {
            row.lx = to_double(r, t[i + 2]);
          }
          if (lower(t[i]) == "numsites" && t[i + 1] == ":") {
            row.num_sites = static_cast<int>(to_long(r, t[i + 2]));
          }
        }
      } else if (key == "end") {
        done = true;
      }
      // Ignore Sitespacing / Siteorient / Sitesymmetry etc.
    }
    db.add_row(row);
  }
}

}  // namespace

namespace {

/// Component files a .aux references, resolved relative to the aux directory.
struct AuxComponents {
  std::string nodes, nets, pl, scl, wts;
};

AuxComponents parse_aux_components(const std::string& aux_path) {
  // .aux: "RowBasedPlacement : f.nodes f.nets f.wts f.pl f.scl"
  LineReader aux(aux_path);
  std::vector<std::string> t;
  if (!aux.next(t)) aux.fail("empty aux file");
  const std::string dir = dir_of(aux_path);
  AuxComponents out;
  for (const std::string& tok : t) {
    const std::string low = lower(tok);
    const std::string full = dir + "/" + tok;
    if (low.size() > 6 && low.compare(low.size() - 6, 6, ".nodes") == 0) out.nodes = full;
    else if (low.size() > 5 && low.compare(low.size() - 5, 5, ".nets") == 0) out.nets = full;
    else if (low.size() > 3 && low.compare(low.size() - 3, 3, ".pl") == 0) out.pl = full;
    else if (low.size() > 4 && low.compare(low.size() - 4, 4, ".scl") == 0) out.scl = full;
    else if (low.size() > 4 && low.compare(low.size() - 4, 4, ".wts") == 0) out.wts = full;
  }
  if (out.nodes.empty() || out.nets.empty() || out.pl.empty()) {
    aux.fail("aux must reference .nodes, .nets and .pl files");
  }
  return out;
}

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a64_accum(std::uint64_t h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

/// Streams a whole file through the running FNV-1a state. `required` controls
/// whether an unreadable file throws or is skipped (matches the parser's
/// tolerance for a missing .wts).
std::uint64_t hash_file_bytes(std::uint64_t h, const std::string& path, bool required) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (required) throw std::runtime_error("cannot open '" + path + "'");
    return h;
  }
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    h = fnv1a64_accum(h, buf, static_cast<std::size_t>(in.gcount()));
  }
  return h;
}

}  // namespace

db::Database read_bookshelf_aux(const std::string& aux_path) {
  const AuxComponents comp = parse_aux_components(aux_path);
  const std::string& nodes_path = comp.nodes;
  const std::string& nets_path = comp.nets;
  const std::string& pl_path = comp.pl;
  const std::string& scl_path = comp.scl;
  const std::string& wts_path = comp.wts;

  std::vector<NodeRecord> nodes;
  read_nodes(nodes_path, nodes);
  std::vector<NetRecord> nets;
  read_nets(nets_path, nets);
  std::unordered_map<std::string, PlRecord> pl;
  read_pl(pl_path, pl);

  db::Database db;
  db.set_design_name(stem_of(aux_path));
  std::unordered_map<std::string, int> ids;
  ids.reserve(nodes.size());
  for (const NodeRecord& n : nodes) {
    const auto it = pl.find(n.name);
    // A node is fixed if it is declared terminal OR its .pl entry says FIXED.
    const bool fixed = n.terminal || (it != pl.end() && it->second.fixed);
    const int id = db.add_cell(n.name, n.w, n.h,
                               fixed ? db::CellKind::kFixed : db::CellKind::kMovable);
    ids.emplace(n.name, id);
    if (it != pl.end()) {
      // .pl stores the lower-left corner; the database stores centers.
      db.set_initial_position(id, it->second.x + n.w * 0.5, it->second.y + n.h * 0.5);
    }
  }
  // Optional per-net weights (.wts): "netname weight" lines.
  std::unordered_map<std::string, double> weights;
  if (!wts_path.empty() && std::ifstream(wts_path).good()) {
    LineReader r(wts_path);
    std::vector<std::string> wt;
    while (r.next(wt)) {
      if (wt[0] == "UCLA") continue;
      if (wt.size() >= 2) weights[wt[0]] = to_double(r, wt.back());
    }
  }

  for (const NetRecord& net : nets) {
    const auto wit = weights.find(net.name);
    const int e = db.add_net(net.name, wit == weights.end() ? 1.0 : wit->second);
    for (const PinRecord& p : net.pins) {
      const auto it = ids.find(p.cell);
      if (it == ids.end()) {
        throw std::runtime_error("net '" + net.name + "' references unknown cell '" +
                                 p.cell + "'");
      }
      db.add_pin(e, it->second, p.ox, p.oy);
    }
  }
  if (!scl_path.empty()) read_scl(scl_path, db);
  db.finalize();
  return db;
}

void write_pl(const db::Database& db, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  out.precision(12);  // coordinates must survive a round trip
  out << "UCLA pl 1.0\n\n";
  for (std::size_t c = 0; c < db.num_physical(); ++c) {
    const double lx = db.x(c) - db.width(c) * 0.5;
    const double ly = db.y(c) - db.height(c) * 0.5;
    out << db.cell_name(c) << "\t" << lx << "\t" << ly << "\t: N";
    if (db.kind(c) == db::CellKind::kFixed) out << " /FIXED";
    out << "\n";
  }
}

void read_pl_into(db::Database& db, const std::string& path) {
  std::unordered_map<std::string, PlRecord> pl;
  read_pl(path, pl);
  for (const auto& [name, rec] : pl) {
    const int id = db.cell_id(name);
    if (id < 0) throw std::runtime_error("pl references unknown cell '" + name + "'");
    db.set_position(static_cast<std::size_t>(id), rec.x + db.width(id) * 0.5,
                    rec.y + db.height(id) * 0.5);
  }
}

void write_bookshelf(const db::Database& db, const std::string& directory,
                     const std::string& design) {
  const std::string stem = directory + "/" + design;
  {
    std::ofstream aux(stem + ".aux");
    if (!aux) throw std::runtime_error("cannot write aux under '" + directory + "'");
    aux << "RowBasedPlacement : " << design << ".nodes " << design << ".nets "
        << design << ".wts " << design << ".pl " << design << ".scl\n";
  }
  {
    std::ofstream out(stem + ".nodes");
    out.precision(12);
    out << "UCLA nodes 1.0\n\n";
    out << "NumNodes : " << db.num_physical() << "\n";
    out << "NumTerminals : " << db.num_fixed() << "\n";
    for (std::size_t c = 0; c < db.num_physical(); ++c) {
      out << "\t" << db.cell_name(c) << "\t" << db.width(c) << "\t" << db.height(c);
      if (db.kind(c) == db::CellKind::kFixed) out << "\tterminal";
      out << "\n";
    }
  }
  {
    std::ofstream out(stem + ".nets");
    out.precision(12);
    out << "UCLA nets 1.0\n\n";
    out << "NumNets : " << db.num_nets() << "\n";
    out << "NumPins : " << db.num_pins() << "\n";
    for (std::size_t e = 0; e < db.num_nets(); ++e) {
      out << "NetDegree : " << db.net_degree(e) << "  " << db.net_name(e) << "\n";
      for (std::size_t p = db.net_pin_start(e); p < db.net_pin_start(e + 1); ++p) {
        out << "\t" << db.cell_name(db.pin_cell(p)) << "\tI : " << db.pin_offset_x(p)
            << "\t" << db.pin_offset_y(p) << "\n";
      }
    }
  }
  {
    std::ofstream out(stem + ".wts");
    out << "UCLA wts 1.0\n\n";
    for (std::size_t e = 0; e < db.num_nets(); ++e) {
      out << db.net_name(e) << "\t" << db.net_weight(e) << "\n";
    }
  }
  write_pl(db, stem + ".pl");
  {
    std::ofstream out(stem + ".scl");
    out.precision(12);
    out << "UCLA scl 1.0\n\n";
    out << "NumRows : " << db.rows().size() << "\n";
    for (const db::Row& row : db.rows()) {
      out << "CoreRow Horizontal\n";
      out << "  Coordinate    : " << row.ly << "\n";
      out << "  Height        : " << row.height << "\n";
      out << "  Sitewidth     : " << row.site_width << "\n";
      out << "  Sitespacing   : " << row.site_width << "\n";
      out << "  SubrowOrigin  : " << row.lx << "  NumSites : " << row.num_sites << "\n";
      out << "End\n";
    }
  }
}

std::uint64_t hash_bookshelf_aux(const std::string& aux_path) {
  // Hash the aux bytes first (it pins the component file *names*), then each
  // component's bytes in a fixed order so the hash is path-layout independent.
  std::uint64_t h = hash_file_bytes(kFnvBasis, aux_path, /*required=*/true);
  const AuxComponents comp = parse_aux_components(aux_path);
  h = hash_file_bytes(h, comp.nodes, /*required=*/true);
  h = hash_file_bytes(h, comp.nets, /*required=*/true);
  h = hash_file_bytes(h, comp.pl, /*required=*/true);
  if (!comp.scl.empty()) h = hash_file_bytes(h, comp.scl, /*required=*/false);
  if (!comp.wts.empty()) h = hash_file_bytes(h, comp.wts, /*required=*/false);
  return h;
}

std::shared_ptr<const db::DesignSnapshot> read_bookshelf_snapshot(
    const std::string& aux_path) {
  auto snap = std::make_shared<db::DesignSnapshot>();
  snap->content_hash = hash_bookshelf_aux(aux_path);
  snap->source = "aux:" + aux_path;
  snap->base = read_bookshelf_aux(aux_path);
  snap->resident_bytes = snap->base.core_resident_bytes();
  return snap;
}

}  // namespace xplace::io
