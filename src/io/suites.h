// The ISPD 2005 and ISPD 2015 contest suites as synthetic stand-ins.
//
// Table 1 of the paper lists per-design cell/net counts; this module exposes
// those suites with a `scale` factor (cells and nets divided by `scale`) so
// the full evaluation tables can be regenerated at CPU-friendly sizes while
// preserving each design's relative size and structure class.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/database.h"
#include "io/generator.h"

namespace xplace::io {

struct SuiteEntry {
  std::string design;
  std::size_t paper_cells;  ///< #cells from Table 1 (thousands expanded)
  std::size_t paper_nets;   ///< #nets from Table 1
  double utilization;       ///< structural class knob
  double macro_fraction;    ///< fixed macro coverage
  double target_density;
};

/// The 8 ISPD 2005 designs (adaptec1..bigblue4) as listed in Table 1.
const std::vector<SuiteEntry>& ispd2005_suite();

/// The 20 ISPD 2015 designs as listed in Table 1 (fence regions removed, as
/// in the paper).
const std::vector<SuiteEntry>& ispd2015_suite();

/// Look up an entry by design name across both suites; throws if unknown.
const SuiteEntry& find_suite_entry(const std::string& design);

/// Instantiate one suite design at 1/scale of its paper size. Deterministic:
/// the same (design, scale) always yields the same netlist.
db::Database make_design(const SuiteEntry& entry, double scale);

inline db::Database make_design(const std::string& design, double scale) {
  return make_design(find_suite_entry(design), scale);
}

}  // namespace xplace::io
