#include "io/suites.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xplace::io {

namespace {
// Structural knobs per design family:
//  * adaptec/bigblue (ISPD 2005): moderate utilization, visible macro blocks.
//  * fft/matrix_mult/des_perf/edit_dist/pci_bridge (ISPD 2015): small-to-mid
//    blocks with denser utilization.
//  * superblue (ISPD 2015): large dies, lower utilization, many macros.
constexpr double kUtil2005 = 0.55;
constexpr double kMacro2005 = 0.18;
constexpr double kDens2005 = 0.90;
constexpr double kUtil2015 = 0.62;
constexpr double kMacro2015 = 0.10;
constexpr double kDens2015 = 0.85;
constexpr double kUtilSuperblue = 0.50;
constexpr double kMacroSuperblue = 0.20;
}  // namespace

const std::vector<SuiteEntry>& ispd2005_suite() {
  static const std::vector<SuiteEntry> suite = {
      {"adaptec1", 211000, 221000, kUtil2005, kMacro2005, kDens2005},
      {"adaptec2", 255000, 266000, kUtil2005, kMacro2005, kDens2005},
      {"adaptec3", 452000, 467000, kUtil2005, kMacro2005, kDens2005},
      {"adaptec4", 496000, 516000, kUtil2005, kMacro2005, kDens2005},
      {"bigblue1", 278000, 284000, kUtil2005, kMacro2005, kDens2005},
      {"bigblue2", 558000, 577000, kUtil2005, kMacro2005, kDens2005},
      {"bigblue3", 1097000, 1123000, kUtil2005, kMacro2005, kDens2005},
      {"bigblue4", 2177000, 2230000, kUtil2005, kMacro2005, kDens2005},
  };
  return suite;
}

const std::vector<SuiteEntry>& ispd2015_suite() {
  static const std::vector<SuiteEntry> suite = {
      {"des_perf_1", 113000, 113000, kUtil2015, kMacro2015, kDens2015},
      {"fft_1", 35000, 33000, kUtil2015, kMacro2015, kDens2015},
      {"fft_2", 35000, 33000, kUtil2015, kMacro2015, kDens2015},
      {"fft_a", 34000, 32000, kUtil2015, kMacro2015, kDens2015},
      {"fft_b", 34000, 32000, kUtil2015, kMacro2015, kDens2015},
      {"matrix_mult_1", 160000, 159000, kUtil2015, kMacro2015, kDens2015},
      {"matrix_mult_2", 160000, 159000, kUtil2015, kMacro2015, kDens2015},
      {"matrix_mult_a", 154000, 154000, kUtil2015, kMacro2015, kDens2015},
      {"superblue12", 1293000, 1293000, kUtilSuperblue, kMacroSuperblue, kDens2015},
      {"superblue14", 634000, 620000, kUtilSuperblue, kMacroSuperblue, kDens2015},
      {"superblue19", 522000, 512000, kUtilSuperblue, kMacroSuperblue, kDens2015},
      {"des_perf_a", 108000, 115000, kUtil2015, kMacro2015, kDens2015},
      {"des_perf_b", 113000, 113000, kUtil2015, kMacro2015, kDens2015},
      {"edit_dist_a", 127000, 134000, kUtil2015, kMacro2015, kDens2015},
      {"matrix_mult_b", 146000, 152000, kUtil2015, kMacro2015, kDens2015},
      {"matrix_mult_c", 146000, 152000, kUtil2015, kMacro2015, kDens2015},
      {"pci_bridge32_a", 30000, 34000, kUtil2015, kMacro2015, kDens2015},
      {"pci_bridge32_b", 29000, 33000, kUtil2015, kMacro2015, kDens2015},
      {"superblue11_a", 926000, 936000, kUtilSuperblue, kMacroSuperblue, kDens2015},
      {"superblue16_a", 680000, 697000, kUtilSuperblue, kMacroSuperblue, kDens2015},
  };
  return suite;
}

const SuiteEntry& find_suite_entry(const std::string& design) {
  for (const auto& e : ispd2005_suite()) {
    if (e.design == design) return e;
  }
  for (const auto& e : ispd2015_suite()) {
    if (e.design == design) return e;
  }
  throw std::invalid_argument("unknown suite design '" + design + "'");
}

db::Database make_design(const SuiteEntry& entry, double scale) {
  if (scale < 1.0) throw std::invalid_argument("scale must be >= 1");
  GeneratorSpec spec;
  spec.name = entry.design;
  spec.num_cells = std::max<std::size_t>(
      500, static_cast<std::size_t>(std::llround(entry.paper_cells / scale)));
  spec.num_nets = std::max<std::size_t>(
      500, static_cast<std::size_t>(std::llround(entry.paper_nets / scale)));
  spec.utilization = entry.utilization;
  spec.macro_area_fraction = entry.macro_fraction;
  spec.target_density = entry.target_density;
  // Macro count scales sublinearly with design size.
  spec.num_macros = static_cast<int>(
      std::clamp(std::sqrt(static_cast<double>(spec.num_cells)) / 12.0, 4.0, 24.0));
  spec.num_io_pads = 64;
  // Seed derived from the design name so every design is distinct but stable.
  std::uint64_t seed = 1469598103934665603ULL;
  for (char c : entry.design) {
    seed ^= static_cast<unsigned char>(c);
    seed *= 1099511628211ULL;
  }
  spec.seed = seed;
  return generate(spec);
}

}  // namespace xplace::io
