// On-disk GP checkpoint format (versioned, checksummed binary).
//
// Layout (little-endian, no padding):
//   u32 magic 0x4B435058 ("XPCK") | u32 version
//   str design | u64 n_total | u64 n_movable
//   i32 optimizer_kind | i32 next_iter
//   f64 gamma | f64 overflow | f64 best_hpwl | f64 hpwl
//   blob optimizer | blob scheduler | blob engine
//   u64 FNV-1a checksum of everything above
// where str = u32 length + bytes, and blob = u32 array count, per array
// (str name, u64 count, f32[count]), then u32 scalar count, per scalar
// (str name, f64).
//
// Writes are atomic: the payload lands in `<path>.tmp` and is renamed over
// `path`, so a run killed mid-write never leaves a torn checkpoint behind.
// Readers verify magic, version, checksum and structural bounds, and throw
// std::runtime_error with a `path: message` diagnostic on any mismatch.
#pragma once

#include <string>

#include "core/checkpoint.h"

namespace xplace::io {

/// Serializes `ck` to `path` atomically. Throws std::runtime_error on I/O
/// failure.
void write_checkpoint(const core::RunCheckpoint& ck, const std::string& path);

/// Loads and validates a checkpoint. Throws std::runtime_error on missing /
/// truncated / corrupted / version-mismatched files.
core::RunCheckpoint read_checkpoint(const std::string& path);

}  // namespace xplace::io
