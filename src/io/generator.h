// Deterministic synthetic benchmark generator.
//
// The ISPD 2005/2015 contest files are not redistributable, so this module
// synthesizes designs with the same structural regime: standard-cell rows,
// fixed macro blocks, peripheral IO pads, and a clustered netlist whose
// degree distribution matches the contest suites (mostly 2–4 pin nets with a
// geometric tail). Netlist locality follows a Rent-style recursive-bisection
// model: cells are laid on a Hilbert-like cluster order and each net picks
// its pins from a window whose size is drawn from a power-law, so placements
// have realistic wirelength structure (local nets dominate, a few global
// nets span the die).
//
// Given the same spec + seed the generator is bit-reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "db/database.h"
#include "db/design_snapshot.h"

namespace xplace::io {

struct GeneratorSpec {
  std::string name = "synthetic";
  std::size_t num_cells = 10000;       ///< movable standard cells
  std::size_t num_nets = 10500;
  double avg_net_degree = 3.8;         ///< pins/net (incl. 2-pin majority)
  double utilization = 0.70;           ///< movable area / free area
  double target_density = 0.90;
  double macro_area_fraction = 0.12;   ///< fraction of region covered by fixed macros
  int num_macros = 8;
  int num_io_pads = 64;
  double row_height = 12.0;
  double site_width = 1.0;
  std::uint64_t seed = 0;

  /// Fence regions (ISPD 2015 style): `num_fences` disjoint rectangles
  /// covering ~`fence_area_fraction` of the die, with ~`fenced_cell_fraction`
  /// of the movable cells assigned across them (cluster-contiguous, so the
  /// fenced logic is connected like a real voltage island).
  int num_fences = 0;
  double fence_area_fraction = 0.15;
  double fenced_cell_fraction = 0.2;
};

/// Builds and finalizes a database matching the spec (fillers NOT inserted —
/// the placer does that). Initial movable positions are scattered uniformly
/// over the free region.
db::Database generate(const GeneratorSpec& spec);

/// Content hash of the demo design keyed on its generator inputs. The
/// generator is bit-reproducible given (cells, seed), so hashing the key is
/// equivalent to hashing the produced files; grid/iteration counts are
/// placement parameters, not design identity, and are deliberately excluded.
std::uint64_t demo_content_hash(std::size_t cells, std::uint64_t seed);

/// The demo-design path of place_bookshelf, verbatim: synthesize, dump to
/// bookshelf scratch files, read them back — so a demo snapshot is the exact
/// database a demo CLI run parses (bit-for-bit parity). Content-addressed by
/// demo_content_hash().
std::shared_ptr<const db::DesignSnapshot> make_demo_snapshot(std::size_t cells,
                                                             std::uint64_t seed);

}  // namespace xplace::io
