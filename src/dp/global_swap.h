// Global swap: for each cell, consider exchanging positions with an
// equal-width cell inside a search radius; accept the best HPWL-improving
// swap. Equal widths keep legality trivial (both slots remain exactly
// filled). A spatial hash bucketing by position keeps candidate lookup cheap.
#pragma once

#include "db/database.h"
#include "dp/local_reorder.h"  // PassStats

namespace xplace::dp {

/// One sweep over all movable cells. `radius` is the candidate search radius
/// in the design's length unit (e.g. a few row heights).
PassStats global_swap_pass(db::Database& db, double radius);

}  // namespace xplace::dp
