#include "dp/local_reorder.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "dp/hpwl_eval.h"
#include "lg/row_map.h"
#include "telemetry/trace.h"
#include "util/execution.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace xplace::dp {
namespace {

/// Builds the per-row cell lists (movable cells bucketed by nearest row,
/// sorted by x ascending within each row).
std::vector<std::vector<std::uint32_t>> group_rows(const db::Database& db,
                                                   const lg::RowMap& rows) {
  std::vector<std::vector<std::uint32_t>> per_row(rows.num_rows());
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    per_row[rows.nearest_row(db.y(c))].push_back(static_cast<std::uint32_t>(c));
  }
  for (auto& cells : per_row) {
    std::sort(cells.begin(), cells.end(),
              [&](std::uint32_t a, std::uint32_t b) { return db.x(a) < db.x(b); });
  }
  return per_row;
}

/// One row's worth of sliding-window permutation search against the position
/// array `x` (indexed by cell id; mutated in place for accepted moves). `y`
/// supplies the fixed vertical coordinates. Returns accepted-move count.
/// Shared by the serial and the row-parallel paths — the serial caller hands
/// in views backed by the database so the behavior is the historical one.
std::size_t reorder_row(const db::Database& db, const lg::RowMap& rows,
                        std::size_t row, std::vector<std::uint32_t>& cells,
                        int window, HpwlEval& eval, double* x,
                        const double* y) {
  if (static_cast<int>(cells.size()) < window) return 0;
  const auto& segs = rows.segments(row);
  auto segment_of = [&](double pos) -> int {
    for (std::size_t s = 0; s < segs.size(); ++s) {
      if (pos >= segs[s].lx - 1e-9 && pos <= segs[s].hx + 1e-9)
        return static_cast<int>(s);
    }
    return -1;
  };

  std::size_t accepted = 0;
  std::vector<std::uint32_t> win(window);
  std::vector<int> perm(window), best_perm(window);
  std::vector<double> save_x(window);

  for (std::size_t start = 0; start + window <= cells.size(); ++start) {
    for (int k = 0; k < window; ++k) {
      win[k] = cells[start + k];
      save_x[k] = x[win[k]];
    }
    // Window cells must lie in one segment: repacking may not cross a
    // blockage.
    const double left = x[win[0]] - db.width(win[0]) * 0.5;
    const double right =
        x[win[window - 1]] + db.width(win[window - 1]) * 0.5;
    if (segment_of(left) < 0 || segment_of(left) != segment_of(right)) continue;
    double total_w = 0.0;
    for (int k = 0; k < window; ++k) total_w += db.width(win[k]);
    if (total_w > right - left + 1e-9) continue;  // shouldn't happen (legal)

    const double before = eval.cells_net_hpwl_at(win.data(), win.size(), x, y);
    std::iota(perm.begin(), perm.end(), 0);
    double best_delta = -1e-9;
    bool found = false;
    // Try all permutations except identity.
    std::vector<int> p(perm);
    while (std::next_permutation(p.begin(), p.end())) {
      double pos = left;
      for (int k = 0; k < window; ++k) {
        const std::uint32_t cell = win[p[k]];
        x[cell] = pos + db.width(cell) * 0.5;
        pos += db.width(cell);
      }
      const double after = eval.cells_net_hpwl_at(win.data(), win.size(), x, y);
      const double delta = after - before;
      if (delta < best_delta) {
        best_delta = delta;
        best_perm = p;
        found = true;
      }
    }
    if (found) {
      double pos = left;
      for (int k = 0; k < window; ++k) {
        const std::uint32_t cell = win[best_perm[k]];
        x[cell] = pos + db.width(cell) * 0.5;
        pos += db.width(cell);
      }
      // Keep the per-row x order consistent with positions.
      std::sort(cells.begin() + start, cells.begin() + start + window,
                [&](std::uint32_t a, std::uint32_t b) { return x[a] < x[b]; });
      ++accepted;
    } else {
      for (int k = 0; k < window; ++k) x[win[k]] = save_x[k];
    }
  }
  return accepted;
}

}  // namespace

PassStats local_reorder_pass(db::Database& db, int window,
                             const ExecutionContext* exec) {
  XP_TRACE_SCOPE("dp.local_reorder");
  Stopwatch watch;
  PassStats stats;
  stats.hpwl_before = db.hpwl();

  lg::RowMap rows(db);
  std::vector<std::vector<std::uint32_t>> per_row = group_rows(db, rows);

  // Snapshot of all positions (pins may reference fixed cells too).
  const std::size_t n_all = db.num_cells_total();
  std::vector<double> sx(n_all), sy(n_all);
  for (std::size_t c = 0; c < n_all; ++c) {
    sx[c] = db.x(c);
    sy[c] = db.y(c);
  }

  ThreadPool* pool =
      exec != nullptr && exec->parallel() ? exec->pool() : nullptr;
  if (pool == nullptr) {
    // Serial: rows in order, each row's accepts visible to the next
    // (historical behavior — sx doubles as the live position array and is
    // committed per row).
    HpwlEval eval(db);
    for (std::size_t row = 0; row < per_row.size(); ++row) {
      stats.moves_accepted += reorder_row(db, rows, row, per_row[row], window,
                                          eval, sx.data(), sy.data());
      for (std::uint32_t cell : per_row[row]) {
        db.set_position(cell, sx[cell], sy[cell]);
      }
    }
    stats.hpwl_after = db.hpwl();
    stats.seconds = watch.seconds();
    return stats;
  }

  // Row-parallel: every row is priced against the pass-entry snapshot in a
  // per-worker private position array (reset to the snapshot after each row,
  // so one worker's rows never see another row's accepts), and the accepted
  // positions are committed serially in row order below. The outcome depends
  // only on the snapshot — deterministic for any worker count.
  const std::size_t workers = pool->size();
  std::vector<std::vector<double>> wx(workers);
  std::vector<std::unique_ptr<HpwlEval>> wev(workers);
  struct RowResult {
    std::vector<std::pair<std::uint32_t, double>> moved;  // cell → final x
    std::size_t accepted = 0;
  };
  std::vector<RowResult> results(per_row.size());
  pool->parallel_for(
      per_row.size(),
      [&](std::size_t b, std::size_t e, std::size_t worker) {
        if (wx[worker].empty()) {
          wx[worker] = sx;  // lazy per-worker snapshot copy
          wev[worker] = std::make_unique<HpwlEval>(db);
        }
        for (std::size_t row = b; row < e; ++row) {
          RowResult& res = results[row];
          res.accepted = reorder_row(db, rows, row, per_row[row], window,
                                     *wev[worker], wx[worker].data(),
                                     sy.data());
          for (std::uint32_t cell : per_row[row]) {
            if (wx[worker][cell] != sx[cell]) {
              res.moved.emplace_back(cell, wx[worker][cell]);
            }
            wx[worker][cell] = sx[cell];  // reset for this worker's next row
          }
        }
      },
      /*grain=*/1);
  for (std::size_t row = 0; row < results.size(); ++row) {
    stats.moves_accepted += results[row].accepted;
    for (const auto& [cell, newx] : results[row].moved) {
      db.set_position(cell, newx, sy[cell]);
    }
  }

  stats.hpwl_after = db.hpwl();
  // Each row was priced against the pass-entry snapshot, so two rows sharing
  // a net can each win locally yet jointly regress once both commit. The
  // serial pass is monotone non-increasing; guarantee the same here: if the
  // joint commit regressed, undo it and redo the pass serially. The parallel
  // outcome is snapshot-deterministic, so this fallback fires (or not)
  // identically for every worker count.
  if (stats.hpwl_after > stats.hpwl_before) {
    for (const RowResult& res : results) {
      for (const auto& mv : res.moved) {
        db.set_position(mv.first, sx[mv.first], sy[mv.first]);
      }
    }
    stats.moves_accepted = 0;
    per_row = group_rows(db, rows);  // positions are back at the snapshot
    HpwlEval eval(db);
    for (std::size_t row = 0; row < per_row.size(); ++row) {
      stats.moves_accepted += reorder_row(db, rows, row, per_row[row], window,
                                          eval, sx.data(), sy.data());
      for (std::uint32_t cell : per_row[row]) {
        db.set_position(cell, sx[cell], sy[cell]);
      }
    }
    stats.hpwl_after = db.hpwl();
  }
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace xplace::dp
