#include "dp/local_reorder.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "dp/hpwl_eval.h"
#include "lg/row_map.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace xplace::dp {

PassStats local_reorder_pass(db::Database& db, int window) {
  XP_TRACE_SCOPE("dp.local_reorder");
  Stopwatch watch;
  PassStats stats;
  stats.hpwl_before = db.hpwl();

  lg::RowMap rows(db);
  HpwlEval eval(db);

  // Group movable cells by row, sorted by x.
  std::vector<std::vector<std::uint32_t>> per_row(rows.num_rows());
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    per_row[rows.nearest_row(db.y(c))].push_back(static_cast<std::uint32_t>(c));
  }

  std::vector<std::uint32_t> win(window);
  std::vector<int> perm(window), best_perm(window);
  std::vector<double> save_x(window);

  for (std::size_t row = 0; row < per_row.size(); ++row) {
    auto& cells = per_row[row];
    std::sort(cells.begin(), cells.end(), [&](std::uint32_t a, std::uint32_t b) {
      return db.x(a) < db.x(b);
    });
    if (static_cast<int>(cells.size()) < window) continue;
    const auto& segs = rows.segments(row);
    auto segment_of = [&](double x) -> int {
      for (std::size_t s = 0; s < segs.size(); ++s) {
        if (x >= segs[s].lx - 1e-9 && x <= segs[s].hx + 1e-9)
          return static_cast<int>(s);
      }
      return -1;
    };
    for (std::size_t start = 0; start + window <= cells.size(); ++start) {
      for (int k = 0; k < window; ++k) {
        win[k] = cells[start + k];
        save_x[k] = db.x(win[k]);
      }
      // Window cells must lie in one segment: repacking may not cross a
      // blockage.
      const double left = db.x(win[0]) - db.width(win[0]) * 0.5;
      const double right =
          db.x(win[window - 1]) + db.width(win[window - 1]) * 0.5;
      if (segment_of(left) < 0 || segment_of(left) != segment_of(right)) continue;
      double total_w = 0.0;
      for (int k = 0; k < window; ++k) total_w += db.width(win[k]);
      if (total_w > right - left + 1e-9) continue;  // shouldn't happen (legal)

      const double before = eval.cells_net_hpwl(win.data(), win.size());
      std::iota(perm.begin(), perm.end(), 0);
      double best_delta = -1e-9;
      bool found = false;
      // Try all permutations except identity.
      std::vector<int> p(perm);
      while (std::next_permutation(p.begin(), p.end())) {
        double x = left;
        for (int k = 0; k < window; ++k) {
          const std::uint32_t cell = win[p[k]];
          db.set_position(cell, x + db.width(cell) * 0.5, db.y(cell));
          x += db.width(cell);
        }
        const double after = eval.cells_net_hpwl(win.data(), win.size());
        const double delta = after - before;
        if (delta < best_delta) {
          best_delta = delta;
          best_perm = p;
          found = true;
        }
      }
      if (found) {
        double x = left;
        for (int k = 0; k < window; ++k) {
          const std::uint32_t cell = win[best_perm[k]];
          db.set_position(cell, x + db.width(cell) * 0.5, db.y(cell));
          x += db.width(cell);
        }
        // Keep the per-row x order consistent with positions.
        std::sort(cells.begin() + start, cells.begin() + start + window,
                  [&](std::uint32_t a, std::uint32_t b) { return db.x(a) < db.x(b); });
        ++stats.moves_accepted;
      } else {
        for (int k = 0; k < window; ++k) {
          db.set_position(win[k], save_x[k], db.y(win[k]));
        }
      }
    }
  }

  stats.hpwl_after = db.hpwl();
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace xplace::dp
