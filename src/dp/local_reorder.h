// Local reordering: slide a window of k consecutive cells along each row and
// try every permutation, repacking the permuted cells from the window start
// (total width is preserved, so legality is maintained; slack moves to the
// window's right edge). The classic cheap DP pass in NTUPlace/ABCDPlace.
#pragma once

#include "db/database.h"

namespace xplace::dp {

struct PassStats {
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
  std::size_t moves_accepted = 0;
  double seconds = 0.0;
};

/// One sweep over all rows with the given window size (3 or 4 are typical).
/// Returns accepted-move statistics; the database is updated in place.
PassStats local_reorder_pass(db::Database& db, int window);

}  // namespace xplace::dp
