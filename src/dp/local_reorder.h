// Local reordering: slide a window of k consecutive cells along each row and
// try every permutation, repacking the permuted cells from the window start
// (total width is preserved, so legality is maintained; slack moves to the
// window's right edge). The classic cheap DP pass in NTUPlace/ABCDPlace.
#pragma once

#include "db/database.h"

namespace xplace {
class ExecutionContext;
}

namespace xplace::dp {

struct PassStats {
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
  std::size_t moves_accepted = 0;
  double seconds = 0.0;
};

/// One sweep over all rows with the given window size (3 or 4 are typical).
/// Returns accepted-move statistics; the database is updated in place.
///
/// With a parallel `exec`, rows fan out across the pool: every row is priced
/// against a position snapshot taken at pass entry (window slides within a
/// row still see that row's earlier accepts), and accepted positions are
/// committed serially in row order afterwards. That makes the parallel pass
/// deterministic for ANY worker count; it differs from the serial pass only
/// through the snapshot semantics of nets spanning multiple rows. Snapshot
/// pricing is not monotone (two rows sharing a net can jointly regress), so
/// the pass re-checks HPWL after committing and falls back to a serial redo
/// if it increased — hpwl_after <= hpwl_before always holds. Null (the
/// default) is the historical serial path, bit for bit.
PassStats local_reorder_pass(db::Database& db, int window,
                             const ExecutionContext* exec = nullptr);

}  // namespace xplace::dp
