#include "dp/hpwl_eval.h"

#include <algorithm>

namespace xplace::dp {

HpwlEval::HpwlEval(const db::Database& db) : db_(db) {
  stamp_.assign(db.num_nets(), 0u);
}

const std::vector<std::uint32_t>& HpwlEval::collect_nets(
    const std::uint32_t* cells, std::size_t count) {
  ++stamp_value_;
  nets_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t c = cells[i];
    for (std::size_t k = db_.cell_pin_start(c); k < db_.cell_pin_start(c + 1); ++k) {
      const std::uint32_t net = db_.pin_net(db_.cell_pin_list()[k]);
      if (stamp_[net] != stamp_value_) {
        stamp_[net] = stamp_value_;
        nets_.push_back(net);
      }
    }
  }
  return nets_;
}

double HpwlEval::cells_net_hpwl(const std::uint32_t* cells, std::size_t count) {
  const auto& nets = collect_nets(cells, count);
  double total = 0.0;
  for (std::uint32_t e : nets) {
    total += db_.net_weight(e) * db_.net_hpwl(e);
  }
  return total;
}

double HpwlEval::cells_net_hpwl_at(const std::uint32_t* cells,
                                   std::size_t count, const double* x,
                                   const double* y) {
  const auto& nets = collect_nets(cells, count);
  double total = 0.0;
  for (std::uint32_t e : nets) {
    const std::size_t begin = db_.net_pin_start(e);
    const std::size_t end = db_.net_pin_start(e + 1);
    if (end - begin < 2) continue;
    double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
    for (std::size_t p = begin; p < end; ++p) {
      const std::uint32_t c = db_.pin_cell(p);
      const double px = x[c] + db_.pin_offset_x(p);
      const double py = y[c] + db_.pin_offset_y(p);
      min_x = std::min(min_x, px);
      max_x = std::max(max_x, px);
      min_y = std::min(min_y, py);
      max_y = std::max(max_y, py);
    }
    total += db_.net_weight(e) * ((max_x - min_x) + (max_y - min_y));
  }
  return total;
}

}  // namespace xplace::dp
