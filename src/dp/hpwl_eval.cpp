#include "dp/hpwl_eval.h"

namespace xplace::dp {

HpwlEval::HpwlEval(const db::Database& db) : db_(db) {
  stamp_.assign(db.num_nets(), 0u);
}

const std::vector<std::uint32_t>& HpwlEval::collect_nets(
    const std::uint32_t* cells, std::size_t count) {
  ++stamp_value_;
  nets_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t c = cells[i];
    for (std::size_t k = db_.cell_pin_start(c); k < db_.cell_pin_start(c + 1); ++k) {
      const std::uint32_t net = db_.pin_net(db_.cell_pin_list()[k]);
      if (stamp_[net] != stamp_value_) {
        stamp_[net] = stamp_value_;
        nets_.push_back(net);
      }
    }
  }
  return nets_;
}

double HpwlEval::cells_net_hpwl(const std::uint32_t* cells, std::size_t count) {
  const auto& nets = collect_nets(cells, count);
  double total = 0.0;
  for (std::uint32_t e : nets) {
    total += db_.net_weight(e) * db_.net_hpwl(e);
  }
  return total;
}

}  // namespace xplace::dp
