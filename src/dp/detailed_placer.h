// Detailed placement driver: alternates global-swap, independent-set
// matching and local-reordering passes until improvement stalls (the
// ABCDPlace recipe on a single thread).
#pragma once

#include <string>

#include "db/database.h"

namespace xplace {
class ExecutionContext;
class StopToken;
}

namespace xplace::dp {

struct DetailedPlaceConfig {
  int max_rounds = 3;            ///< full GS+ISM+LR rounds
  double min_improvement = 5e-4; ///< stop when a round improves less than this
  double swap_radius_rows = 6.0; ///< global-swap radius in row heights
  int reorder_window = 3;
  int ism_max_set = 16;
  bool enable_global_swap = true;
  bool enable_ism = true;
  bool enable_local_reorder = true;
  /// Cooperative stop, polled at pass boundaries (between GS/ISM/LR passes
  /// and between rounds). Each pass preserves legality, so an interrupted DP
  /// returns early with a legal, partially-optimized placement. Null = off.
  const StopToken* stop = nullptr;
};

struct DetailedPlaceResult {
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
  int rounds = 0;
  std::size_t moves_accepted = 0;
  double seconds = 0.0;

  std::string summary() const;
};

/// Runs on a *legal* placement and preserves legality. A parallel `exec`
/// fans the local-reorder pass across rows (see local_reorder.h for the
/// determinism contract); global-swap and ISM stay serial — their move
/// chains are inherently sequential.
DetailedPlaceResult detailed_place(db::Database& db,
                                   const DetailedPlaceConfig& cfg = {},
                                   const ExecutionContext* exec = nullptr);

}  // namespace xplace::dp
