// Incremental HPWL evaluation for detailed placement moves.
//
// All DP passes evaluate a candidate move as "recompute the HPWL of every net
// touching the moved cells, before and after". Nets are deduplicated with a
// stamp array so multi-cell moves (swaps, window permutations, set
// assignments) are charged once per net.
#pragma once

#include <cstdint>
#include <vector>

#include "db/database.h"

namespace xplace::dp {

class HpwlEval {
 public:
  explicit HpwlEval(const db::Database& db);

  /// Sum of weighted HPWL over all nets incident to any of `cells`
  /// (deduplicated), at the database's *current* positions.
  double cells_net_hpwl(const std::uint32_t* cells, std::size_t count);

  /// Convenience for a single cell.
  double cell_net_hpwl(std::uint32_t cell) {
    return cells_net_hpwl(&cell, 1);
  }

  /// Same as cells_net_hpwl, but measured at the explicit position arrays
  /// `x`/`y` (indexed by cell id) instead of the database's current
  /// positions. Lets the row-parallel reorder pass price candidate
  /// permutations against a private snapshot without touching the database.
  double cells_net_hpwl_at(const std::uint32_t* cells, std::size_t count,
                           const double* x, const double* y);

  /// Nets incident to `cells`, deduplicated (valid until the next call).
  const std::vector<std::uint32_t>& collect_nets(const std::uint32_t* cells,
                                                 std::size_t count);

 private:
  const db::Database& db_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t stamp_value_ = 0;
  std::vector<std::uint32_t> nets_;
};

}  // namespace xplace::dp
