#include "dp/hungarian.h"

#include <cassert>
#include <limits>

namespace xplace::dp {

// Classic O(n³) shortest-augmenting-path implementation with row/column
// potentials (the "e-maxx" formulation, 1-indexed internally).
std::vector<int> hungarian(const std::vector<double>& cost, int n) {
  assert(static_cast<int>(cost.size()) == n * n);
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(n + 1, 0.0);
  std::vector<int> p(n + 1, 0), way(n + 1, 0);
  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const int i0 = p[j0];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost[(i0 - 1) * n + (j - 1)] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }
  std::vector<int> assignment(n, -1);
  for (int j = 1; j <= n; ++j) {
    if (p[j] > 0) assignment[p[j] - 1] = j - 1;
  }
  return assignment;
}

double assignment_cost(const std::vector<double>& cost, int n,
                       const std::vector<int>& assignment) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += cost[i * n + assignment[i]];
  return total;
}

}  // namespace xplace::dp
