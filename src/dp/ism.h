// Independent-set matching (the core move of ABCDPlace): take a set of
// equal-width cells that share no nets, treat their current slots as
// interchangeable positions, and solve the optimal reassignment as a linear
// assignment problem. Because the set is independent, per-(cell, slot) costs
// are exact and the Hungarian solution is globally optimal for the set.
#pragma once

#include "db/database.h"
#include "dp/local_reorder.h"  // PassStats

namespace xplace::dp {

/// One ISM sweep. Cells are bucketed by width; maximal independent sets of up
/// to `max_set` cells are formed greedily by spatial proximity and reassigned
/// optimally. Returns pass statistics.
PassStats ism_pass(db::Database& db, int max_set = 16);

}  // namespace xplace::dp
