#include "dp/global_swap.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "dp/hpwl_eval.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace xplace::dp {
namespace {

/// Uniform-grid spatial hash over cell centers.
class SpatialHash {
 public:
  SpatialHash(const db::Database& db, double cell_size)
      : db_(db), size_(cell_size) {
    for (std::size_t c = 0; c < db.num_movable(); ++c) {
      grid_[key(db.x(c), db.y(c))].push_back(static_cast<std::uint32_t>(c));
    }
  }

  template <typename Fn>
  void for_each_near(double x, double y, double radius, Fn&& fn) const {
    const long kx0 = static_cast<long>(std::floor((x - radius) / size_));
    const long kx1 = static_cast<long>(std::floor((x + radius) / size_));
    const long ky0 = static_cast<long>(std::floor((y - radius) / size_));
    const long ky1 = static_cast<long>(std::floor((y + radius) / size_));
    for (long kx = kx0; kx <= kx1; ++kx) {
      for (long ky = ky0; ky <= ky1; ++ky) {
        const auto it = grid_.find((kx << 24) ^ ky);
        if (it == grid_.end()) continue;
        for (std::uint32_t c : it->second) fn(c);
      }
    }
  }

  void move(std::uint32_t cell, double old_x, double old_y, double new_x,
            double new_y) {
    const long k_old = key(old_x, old_y), k_new = key(new_x, new_y);
    if (k_old == k_new) return;
    auto& v = grid_[k_old];
    v.erase(std::find(v.begin(), v.end(), cell));
    grid_[k_new].push_back(cell);
  }

 private:
  long key(double x, double y) const {
    return (static_cast<long>(std::floor(x / size_)) << 24) ^
           static_cast<long>(std::floor(y / size_));
  }
  const db::Database& db_;
  double size_;
  std::unordered_map<long, std::vector<std::uint32_t>> grid_;
};

}  // namespace

PassStats global_swap_pass(db::Database& db, double radius) {
  XP_TRACE_SCOPE("dp.global_swap");
  Stopwatch watch;
  PassStats stats;
  stats.hpwl_before = db.hpwl();

  HpwlEval eval(db);
  SpatialHash hash(db, std::max(1.0, radius));

  for (std::size_t a = 0; a < db.num_movable(); ++a) {
    const double ax = db.x(a), ay = db.y(a);
    double best_delta = -1e-9;
    std::uint32_t best_b = static_cast<std::uint32_t>(-1);

    std::uint32_t pair[2];
    pair[0] = static_cast<std::uint32_t>(a);
    hash.for_each_near(ax, ay, radius, [&](std::uint32_t b) {
      if (b <= a) return;  // each unordered pair once
      if (db.width(b) != db.width(a)) return;
      if (db.cell_fence(b) != db.cell_fence(a)) return;  // fence-preserving
      const double bx = db.x(b), by = db.y(b);
      if (std::fabs(bx - ax) + std::fabs(by - ay) > radius) return;
      pair[1] = b;
      const double before = eval.cells_net_hpwl(pair, 2);
      db.set_position(a, bx, by);
      db.set_position(b, ax, ay);
      const double delta = eval.cells_net_hpwl(pair, 2) - before;
      db.set_position(a, ax, ay);
      db.set_position(b, bx, by);
      if (delta < best_delta) {
        best_delta = delta;
        best_b = b;
      }
    });

    if (best_b != static_cast<std::uint32_t>(-1)) {
      const double bx = db.x(best_b), by = db.y(best_b);
      db.set_position(a, bx, by);
      db.set_position(best_b, ax, ay);
      hash.move(static_cast<std::uint32_t>(a), ax, ay, bx, by);
      hash.move(best_b, bx, by, ax, ay);
      ++stats.moves_accepted;
    }
  }

  stats.hpwl_after = db.hpwl();
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace xplace::dp
