// Hungarian algorithm (Kuhn–Munkres, potential/JV formulation) for the small
// square assignment problems produced by independent-set matching.
// O(n³); n is the independent-set size (≤ a few dozen).
#pragma once

#include <vector>

namespace xplace::dp {

/// cost is row-major n×n; returns assignment[row] = column minimizing the
/// total cost. Deterministic.
std::vector<int> hungarian(const std::vector<double>& cost, int n);

/// Total cost of an assignment under a cost matrix (test/diagnostic helper).
double assignment_cost(const std::vector<double>& cost, int n,
                       const std::vector<int>& assignment);

}  // namespace xplace::dp
