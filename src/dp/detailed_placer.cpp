#include "dp/detailed_placer.h"

#include <cstdio>

#include "dp/global_swap.h"
#include "dp/ism.h"
#include "dp/local_reorder.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/stop_token.h"
#include "util/timer.h"

namespace xplace::dp {

std::string DetailedPlaceResult::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "hpwl %.6g -> %.6g (%+.3f%%), %d rounds, %zu moves, %.3fs",
                hpwl_before, hpwl_after,
                hpwl_before > 0 ? (hpwl_after / hpwl_before - 1.0) * 100 : 0.0,
                rounds, moves_accepted, seconds);
  return buf;
}

DetailedPlaceResult detailed_place(db::Database& db,
                                   const DetailedPlaceConfig& cfg,
                                   const ExecutionContext* exec) {
  XP_TRACE_SCOPE("dp.run");
  Stopwatch watch;
  DetailedPlaceResult result;
  result.hpwl_before = db.hpwl();

  double row_h = 12.0;
  if (!db.rows().empty()) row_h = db.rows().front().height;
  const double radius = cfg.swap_radius_rows * row_h;

  // Stop poll at every pass boundary: each pass leaves the placement legal,
  // so bailing out between passes returns a legal, partially-refined result.
  bool stopped = false;
  const auto should_stop = [&]() {
    if (!stopped) {
      const StopCause cause = poll_stop(cfg.stop);
      if (cause != StopCause::kNone) {
        XP_INFO("dp stop requested (%s) — returning at pass boundary",
                to_string(cause));
        stopped = true;
      }
    }
    return stopped;
  };

  double prev = result.hpwl_before;
  for (int round = 0; round < cfg.max_rounds && !should_stop(); ++round) {
    if (cfg.enable_global_swap) {
      const PassStats s = global_swap_pass(db, radius);
      result.moves_accepted += s.moves_accepted;
      XP_DEBUG("dp round %d swap: %.6g -> %.6g (%zu moves)", round,
               s.hpwl_before, s.hpwl_after, s.moves_accepted);
    }
    if (cfg.enable_ism && !should_stop()) {
      const PassStats s = ism_pass(db, cfg.ism_max_set);
      result.moves_accepted += s.moves_accepted;
      XP_DEBUG("dp round %d ism: %.6g -> %.6g (%zu moves)", round,
               s.hpwl_before, s.hpwl_after, s.moves_accepted);
    }
    if (cfg.enable_local_reorder && !should_stop()) {
      const PassStats s = local_reorder_pass(db, cfg.reorder_window, exec);
      result.moves_accepted += s.moves_accepted;
      XP_DEBUG("dp round %d reorder: %.6g -> %.6g (%zu moves)", round,
               s.hpwl_before, s.hpwl_after, s.moves_accepted);
    }
    result.rounds = round + 1;
    const double cur = db.hpwl();
    if (prev - cur < cfg.min_improvement * prev) break;
    prev = cur;
  }

  result.hpwl_after = db.hpwl();
  result.seconds = watch.seconds();
  XP_INFO("detailed place: %s", result.summary().c_str());
  return result;
}

}  // namespace xplace::dp
