#include "dp/ism.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "dp/hpwl_eval.h"
#include "dp/hungarian.h"
#include "telemetry/trace.h"
#include "util/timer.h"

namespace xplace::dp {

PassStats ism_pass(db::Database& db, int max_set) {
  XP_TRACE_SCOPE("dp.ism");
  Stopwatch watch;
  PassStats stats;
  stats.hpwl_before = db.hpwl();

  HpwlEval eval(db);

  // Bucket movable cells by (width, height, fence) — slots are only
  // interchangeable within a fence region.
  std::map<std::tuple<double, double, int>, std::vector<std::uint32_t>> buckets;
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    buckets[{db.width(c), db.height(c), db.cell_fence(c)}].push_back(
        static_cast<std::uint32_t>(c));
  }

  std::vector<std::uint32_t> net_stamp(db.num_nets(), 0u);
  std::uint32_t stamp = 0;

  for (auto& [dims, cells] : buckets) {
    if (cells.size() < 2) continue;
    // Order by position (x-major) so consecutive picks are spatially close —
    // distant swaps are rarely independent-set winners.
    std::sort(cells.begin(), cells.end(), [&](std::uint32_t a, std::uint32_t b) {
      return db.x(a) < db.x(b) || (db.x(a) == db.x(b) && db.y(a) < db.y(b));
    });

    std::vector<char> used(cells.size(), 0);
    for (std::size_t seed = 0; seed < cells.size(); ++seed) {
      if (used[seed]) continue;
      // Greedy independent set starting at `seed`.
      ++stamp;
      std::vector<std::uint32_t> set;
      auto try_add = [&](std::size_t idx) {
        const std::uint32_t c = cells[idx];
        // Check net-independence against the current set.
        for (std::size_t k = db.cell_pin_start(c); k < db.cell_pin_start(c + 1); ++k) {
          if (net_stamp[db.pin_net(db.cell_pin_list()[k])] == stamp) return false;
        }
        for (std::size_t k = db.cell_pin_start(c); k < db.cell_pin_start(c + 1); ++k) {
          net_stamp[db.pin_net(db.cell_pin_list()[k])] = stamp;
        }
        set.push_back(c);
        used[idx] = 1;
        return true;
      };
      try_add(seed);
      for (std::size_t j = seed + 1;
           j < cells.size() && static_cast<int>(set.size()) < max_set; ++j) {
        if (!used[j]) try_add(j);
      }
      const int n = static_cast<int>(set.size());
      if (n < 2) continue;

      // Slots = current positions of the set. cost[i][j] = HPWL of cell i's
      // nets with cell i at slot j (exact because the set is independent).
      std::vector<double> slot_x(n), slot_y(n);
      for (int i = 0; i < n; ++i) {
        slot_x[i] = db.x(set[i]);
        slot_y[i] = db.y(set[i]);
      }
      std::vector<double> cost(static_cast<std::size_t>(n) * n);
      for (int i = 0; i < n; ++i) {
        const std::uint32_t c = set[i];
        const double sx = db.x(c), sy = db.y(c);
        for (int j = 0; j < n; ++j) {
          db.set_position(c, slot_x[j], slot_y[j]);
          cost[static_cast<std::size_t>(i) * n + j] = eval.cell_net_hpwl(c);
        }
        db.set_position(c, sx, sy);
      }
      const std::vector<int> assign = hungarian(cost, n);
      // Apply only if strictly better than identity.
      double identity = 0.0, best = 0.0;
      for (int i = 0; i < n; ++i) {
        identity += cost[static_cast<std::size_t>(i) * n + i];
        best += cost[static_cast<std::size_t>(i) * n + assign[i]];
      }
      if (best < identity - 1e-9) {
        for (int i = 0; i < n; ++i) {
          db.set_position(set[i], slot_x[assign[i]], slot_y[assign[i]]);
        }
        ++stats.moves_accepted;
      }
    }
  }

  stats.hpwl_after = db.hpwl();
  stats.seconds = watch.seconds();
  return stats;
}

}  // namespace xplace::dp
