// Telemetry exporters: Chrome trace-event JSON (Perfetto / chrome://tracing),
// Prometheus-style text exposition, and a shared write-to-file helper.
//
// The exporters are pure functions over snapshots — they never touch the
// global tracer/registry themselves, so tests and tools can export private
// instances.
#pragma once

#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace xplace::telemetry {

/// Chrome trace-event JSON ("X" complete events, µs timestamps). The result
/// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing. Spans
/// become one event each; per-span numeric args are emitted under "args".
/// `process_name` labels pid 1 via a metadata event.
std::string to_chrome_trace(const std::vector<SpanEvent>& spans,
                            const std::string& process_name = "xplace");

/// Prometheus text exposition (metric names are prefixed "xplace_" and dots
/// become underscores; histogram buckets are cumulative `le` buckets).
std::string to_prometheus(const Registry& registry);

/// Writes `content` to `path` (truncating). Returns false and fills `*error`
/// (when non-null) with a strerror-style message on failure.
bool write_text_file(const std::string& path, const std::string& content,
                     std::string* error = nullptr);

/// Minimal JSON string escaping (shared by the exporters and the JSONL
/// recorder sink).
std::string json_escape(const std::string& s);

}  // namespace xplace::telemetry
