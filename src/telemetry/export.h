// Telemetry exporters: Chrome trace-event JSON (Perfetto / chrome://tracing),
// Prometheus-style text exposition, and a shared write-to-file helper.
//
// The exporters are pure functions over snapshots — they never touch the
// global tracer/registry themselves, so tests and tools can export private
// instances.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace xplace::telemetry {

/// Chrome trace-event JSON ("X" complete events, µs timestamps). The result
/// loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing. Spans
/// become one event each; per-span numeric args are emitted under "args".
/// `process_name` labels pid 1 via a metadata event.
///
/// Spans carrying a nonzero trace_id are grouped into one process track per
/// trace (pid 2, 3, ... in order of first appearance), so a served job's
/// GP/LG/DP timeline renders as one coherent lane regardless of which
/// scheduler or pool thread recorded each span. `trace_names` supplies the
///// track labels (e.g. Tracer::global().trace_labels()); unnamed traces get
/// "trace <id>". Untraced spans (trace_id 0) stay on the pid-1 process.
std::string to_chrome_trace(
    const std::vector<SpanEvent>& spans,
    const std::string& process_name = "xplace",
    const std::vector<std::pair<std::uint64_t, std::string>>& trace_names = {});

/// Prometheus text exposition (metric names are prefixed "xplace_" and dots
/// become underscores; histogram buckets are cumulative `le` buckets).
std::string to_prometheus(const Registry& registry);

/// Writes `content` to `path` (truncating). Returns false and fills `*error`
/// (when non-null) with a strerror-style message on failure.
bool write_text_file(const std::string& path, const std::string& content,
                     std::string* error = nullptr);

/// Minimal JSON string escaping (shared by the exporters and the JSONL
/// recorder sink).
std::string json_escape(const std::string& s);

}  // namespace xplace::telemetry
