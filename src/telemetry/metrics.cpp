#include "telemetry/metrics.h"

#include <algorithm>

namespace xplace::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (buckets_.size() != bounds_.size() + 1) {
    // Duplicates were removed; re-size the bucket array to match. This only
    // happens during construction, before any concurrent access.
    buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> requires C++20 but not all libstdc++ versions
  // implement it for floating point; CAS-loop is portable.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> Histogram::exponential_bounds(double base, double growth,
                                                  int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n > 0 ? n : 0));
  double b = base;
  for (int i = 0; i < n; ++i) {
    out.push_back(b);
    b *= growth;
  }
  return out;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

std::vector<std::pair<std::string, const Counter*>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

}  // namespace xplace::telemetry
