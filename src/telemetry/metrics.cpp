#include "telemetry/metrics.h"

#include <algorithm>

namespace xplace::telemetry {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  if (buckets_.size() != bounds_.size() + 1) {
    // Duplicates were removed; re-size the bucket array to match. This only
    // happens during construction, before any concurrent access.
    buckets_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> requires C++20 but not all libstdc++ versions
  // implement it for floating point; CAS-loop is portable.
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  // Rank of the target observation; q = 0 resolves to the first non-empty
  // bucket via the epsilon floor.
  const double rank = std::max(q * static_cast<double>(total), 1e-12);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double prev_cum = cum;
    cum += static_cast<double>(counts[i]);
    if (cum < rank) continue;
    if (i == bounds_.size()) {
      // +Inf bucket: the true value is beyond the layout's resolution; clamp
      // to the highest finite bound (Prometheus convention).
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    const double upper = bounds_[i];
    if (i == 0 && upper <= 0.0) return upper;
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double in_bucket = static_cast<double>(counts[i]);
    return lower + (upper - lower) * (rank - prev_cum) / in_bucket;
  }
  return bounds_.empty() ? 0.0 : bounds_.back();  // unreachable (cum == total)
}

std::vector<double> Histogram::exponential_bounds(double base, double growth,
                                                  int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n > 0 ? n : 0));
  double b = base;
  for (int i = 0; i < n; ++i) {
    out.push_back(b);
    b *= growth;
  }
  return out;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

std::vector<std::pair<std::string, const Counter*>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::size_t Registry::unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t removed = 0;
  removed += counters_.erase(name);
  removed += gauges_.erase(name);
  removed += histograms_.erase(name);
  return removed;
}

std::size_t Registry::remove_prefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t removed = 0;
  const auto sweep = [&](auto& map) {
    for (auto it = map.lower_bound(prefix);
         it != map.end() && it->first.compare(0, prefix.size(), prefix) == 0;) {
      it = map.erase(it);
      ++removed;
    }
  };
  sweep(counters_);
  sweep(gauges_);
  sweep(histograms_);
  return removed;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

}  // namespace xplace::telemetry
