// Span-based tracer — records begin/end timestamps of named scopes into a
// bounded ring buffer, for export as Chrome trace-event JSON (viewable in
// Perfetto / chrome://tracing; see telemetry/export.h).
//
// Hot-path contract:
//   * Disabled (the default): `XP_TRACE_SCOPE` costs one relaxed atomic load
//     and a branch. No clock reads, no allocation. bench_telemetry_overhead
//     pins this below 2% on real kernel workloads.
//   * Enabled: two steady_clock reads per span plus one fetch_add to claim a
//     ring slot. Span names must be string literals (or otherwise outlive the
//     tracer) — they are stored as `const char*`, never copied.
//   * The ring buffer is fixed-capacity; when full, new spans overwrite the
//     oldest (dropped() reports how many were evicted). Recording is
//     thread-safe and lock-free.
//
// Usage:
//   telemetry::Tracer::global().enable();
//   {
//     XP_TRACE_SCOPE("wa_fused");            // RAII span
//     ...
//   }
//   {
//     telemetry::TraceScope s("gp.iter");    // span with args
//     ...
//     s.arg("hpwl", hpwl).arg("overflow", ovfl);
//   }
//   io::write_text_file("trace.json",
//       telemetry::to_chrome_trace(telemetry::Tracer::global().snapshot()));
//
// Environment: setting XPLACE_TRACE=1 (or any non-empty value other than "0")
// enables the global tracer at first use — benches and CI can capture traces
// without code changes.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace xplace::telemetry {

/// One completed span. Timestamps are microseconds since the tracer epoch
/// (process start). POD so the ring buffer can recycle slots freely.
struct SpanEvent {
  static constexpr int kMaxArgs = 4;

  const char* name = nullptr;  ///< static-lifetime string (never owned)
  double begin_us = 0.0;
  double end_us = 0.0;
  std::uint32_t tid = 0;   ///< small dense thread id (not the OS tid)
  std::uint32_t depth = 0; ///< nesting depth within the recording thread
  std::uint64_t seq = 0;   ///< global record order (survives ring wrap)
  std::uint64_t trace_id = 0;  ///< request/job identity (0 = process-level)
  int num_args = 0;
  const char* arg_names[kMaxArgs] = {nullptr, nullptr, nullptr, nullptr};
  double arg_values[kMaxArgs] = {0.0, 0.0, 0.0, 0.0};

  double duration_us() const { return end_us - begin_us; }
};

/// Request/job identity for spans. A trace id groups every span recorded on
/// behalf of one logical request (a served placement job), no matter which
/// thread records it — the Chrome exporter renders each trace as its own
/// process track so a job's GP/LG/DP timeline stays coherent across the
/// scheduler's worker and pool threads.
///
/// The binding is a thread-local: `TraceBinding` installs an id for the
/// current scope (RAII, restores the previous id on destruction), and every
/// `TraceScope` started while it is bound tags its span with the id. The
/// thread pool propagates the dispatching thread's binding into its workers
/// for the duration of a parallel_for, so pooled kernels tag correctly too.
class TraceContext {
 public:
  /// Allocates a fresh nonzero trace id (process-wide monotonic).
  static std::uint64_t new_id();
  /// The id bound to the calling thread (0 = none).
  static std::uint64_t current();
};

/// RAII thread-local trace-id binding. Cheap enough for per-chunk use in the
/// thread pool (two thread_local stores); no-op cost when tracing is off
/// since TraceScope only reads the binding when it is active.
class TraceBinding {
 public:
  explicit TraceBinding(std::uint64_t trace_id);
  ~TraceBinding();

  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
  std::uint64_t prev_;
};

class Tracer {
 public:
  static Tracer& global();

  /// (Re)arms the tracer with a ring of `capacity` spans. Existing spans are
  /// discarded. Not safe to call concurrently with recording.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a completed span (fills `seq` itself). No-op when disabled.
  void record(SpanEvent ev);

  /// Spans currently held in the ring, oldest first. Takes no lock: call
  /// from a quiesced state (end of run) for an exact snapshot.
  std::vector<SpanEvent> snapshot() const;

  std::uint64_t total_recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  /// Spans evicted by ring wraparound.
  std::uint64_t dropped() const;
  std::size_t capacity() const { return ring_.size(); }

  /// Clears recorded spans (keeps enabled state and capacity).
  void clear();

  /// Associates a human-readable label with a trace id (shown as the
  /// process name of the trace's Chrome-trace track). Labels live until
  /// forget_trace — long-lived daemons must forget evicted jobs' traces or
  /// the label table grows unboundedly.
  void set_trace_label(std::uint64_t trace_id, std::string label);
  void forget_trace(std::uint64_t trace_id);
  /// Snapshot of the (trace id → label) table, insertion-ordered.
  std::vector<std::pair<std::uint64_t, std::string>> trace_labels() const;

  /// Microseconds since the tracer epoch — the timebase of SpanEvent.
  static double now_us();

  /// Small dense id of the calling thread (0 = first thread observed).
  static std::uint32_t thread_id();

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_seq_{0};
  std::vector<SpanEvent> ring_;
  // Slot publication flags: snapshot() skips slots whose write is in flight.
  std::vector<std::atomic<std::uint64_t>> slot_seq_;
};

/// RAII span. When the tracer is disabled at construction the scope is inert
/// (args are ignored, destructor is a branch).
class TraceScope {
 public:
  explicit TraceScope(const char* name);
  ~TraceScope() { end(); }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  /// Attach a numeric argument (silently ignored past SpanEvent::kMaxArgs or
  /// when inert). Chainable.
  TraceScope& arg(const char* key, double value);

  /// Ends the span now instead of at destruction; idempotent. Returns the
  /// span duration in seconds (0 when inert) so callers can reuse the exact
  /// traced interval for their own accounting.
  double end();

  bool active() const { return active_; }

 private:
  SpanEvent ev_;
  bool active_;
};

}  // namespace xplace::telemetry

// Token pasting so several scopes can coexist in one block.
#define XP_TRACE_CONCAT_IMPL(a, b) a##b
#define XP_TRACE_CONCAT(a, b) XP_TRACE_CONCAT_IMPL(a, b)

/// RAII trace span covering the rest of the enclosing block.
#define XP_TRACE_SCOPE(name) \
  ::xplace::telemetry::TraceScope XP_TRACE_CONCAT(xp_trace_scope_, __LINE__)(name)
