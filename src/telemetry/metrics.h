// Metrics registry — the counters/gauges/histograms half of the telemetry
// subsystem (the tracer lives in telemetry/trace.h, exporters in
// telemetry/export.h).
//
// Design:
//   * `Counter` / `Gauge` / `Histogram` are lock-free once created: all
//     mutation is relaxed atomics, so operator bodies running on the thread
//     pool can hit them concurrently without serializing.
//   * `Registry` owns metrics by name. Lookup/creation takes a mutex, so hot
//     paths should resolve the metric pointer once and cache it; the returned
//     references are stable for the registry's lifetime.
//   * `Registry::global()` is the process-wide instance that the dispatcher,
//     placer, and LG/DP passes publish into; benches and tests may construct
//     private registries.
//
// The registry supersedes the scattered accounting that used to live in
// `TimerRegistry` (per-op wall time) and `Dispatcher` (launch counts): those
// components keep their narrow APIs but publish through here, and exporters
// (Prometheus text, JSON) read everything from one place.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace xplace::telemetry {

/// Monotonically increasing count (events, launches, moves, ...).
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written scalar (overflow, lambda, hpwl, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram. Boundaries are upper bounds of each bucket
/// (Prometheus `le` semantics); an implicit +Inf bucket catches the rest.
/// `observe` is wait-free: a linear scan over the (small, immutable)
/// boundary list plus relaxed atomic increments.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts, one per bound plus the trailing +Inf bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  /// Percentile estimate with Prometheus `histogram_quantile` semantics:
  /// linear interpolation inside the bucket the rank falls in (the first
  /// bucket interpolates from 0 when its upper bound is positive). Values
  /// landing in the +Inf bucket clamp to the highest finite bound — the
  /// estimate can never exceed what the bucket layout can resolve. Returns
  /// 0.0 for an empty histogram; `q` is clamped to [0, 1]. Wait-free (one
  /// relaxed pass over the bucket array).
  double quantile(double q) const;

  /// Exponential boundaries: `base * growth^i` for i in [0, n).
  static std::vector<double> exponential_bounds(double base, double growth,
                                                int n);

 private:
  std::vector<double> bounds_;  ///< sorted ascending, immutable after ctor
  std::vector<std::atomic<std::uint64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Name → metric store. Names follow `subsystem.metric` dotted style; the
/// Prometheus exporter rewrites dots to underscores.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. References remain valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// If the histogram already exists, `upper_bounds` is ignored.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Snapshot views (copy names; metric pointers are stable).
  std::vector<std::pair<std::string, const Counter*>> counters() const;
  std::vector<std::pair<std::string, const Gauge*>> gauges() const;
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;

  /// Removes one metric by exact name (searched across all three kinds).
  /// Returns how many entries were dropped (0 or 1 per kind). As with
  /// clear(), outstanding references to the removed metric dangle — callers
  /// must not cache pointers to metrics they later unregister.
  std::size_t unregister(const std::string& name);

  /// Removes every metric whose name starts with `prefix` — the per-job
  /// label GC the serving daemon runs when it evicts a terminal job, so
  /// `serve.job.<label>.*` families don't accumulate forever (DESIGN.md §12
  /// documents the retention policy). Returns the number of metrics removed.
  std::size_t remove_prefix(const std::string& prefix);

  /// Drops every metric. Outstanding references become dangling; only for
  /// test isolation on private registries.
  void clear();

  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace xplace::telemetry
