#include "telemetry/export.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace xplace::telemetry {
namespace {

/// JSON-safe number formatting: finite shortest-roundtrip-ish, non-finite
/// mapped to 0 (JSON has no Inf/NaN).
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

std::string sanitize_metric_name(const std::string& name) {
  std::string out = "xplace_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string to_chrome_trace(
    const std::vector<SpanEvent>& spans, const std::string& process_name,
    const std::vector<std::pair<std::uint64_t, std::string>>& trace_names) {
  std::string out;
  out.reserve(spans.size() * 128 + 256);
  out += "{\"traceEvents\":[";
  // Metadata event naming the process in the Perfetto track list.
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"" + json_escape(process_name) + "\"}}";

  // One process track per trace id, pids assigned in order of first
  // appearance so the track order matches submission order.
  std::vector<std::uint64_t> trace_ids;  // index -> trace id; pid = index + 2
  const auto pid_of = [&](std::uint64_t trace_id) -> int {
    if (trace_id == 0) return 1;
    for (std::size_t i = 0; i < trace_ids.size(); ++i) {
      if (trace_ids[i] == trace_id) return static_cast<int>(i) + 2;
    }
    trace_ids.push_back(trace_id);
    std::string label = "trace " + std::to_string(trace_id);
    for (const auto& [id, name] : trace_names) {
      if (id == trace_id) {
        label = name;
        break;
      }
    }
    const int pid = static_cast<int>(trace_ids.size()) + 1;
    out += ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
           json_escape(label) + "\"}}";
    return pid;
  };

  for (const SpanEvent& ev : spans) {
    const int pid = pid_of(ev.trace_id);
    out += ",{\"name\":\"";
    out += json_escape(ev.name != nullptr ? ev.name : "?");
    out += "\",\"cat\":\"xplace\",\"ph\":\"X\",\"ts\":";
    append_number(out, ev.begin_us);
    out += ",\"dur\":";
    append_number(out, ev.duration_us());
    out += ",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(ev.tid);
    if (ev.num_args > 0) {
      out += ",\"args\":{";
      for (int a = 0; a < ev.num_args; ++a) {
        if (a > 0) out += ",";
        out += "\"";
        out += json_escape(ev.arg_names[a] != nullptr ? ev.arg_names[a] : "?");
        out += "\":";
        append_number(out, ev.arg_values[a]);
      }
      out += "}";
    }
    out += "}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string to_prometheus(const Registry& registry) {
  std::string out;
  for (const auto& [name, c] : registry.counters()) {
    const std::string n = sanitize_metric_name(name);
    out += "# TYPE " + n + " counter\n";
    out += n + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [name, g] : registry.gauges()) {
    const std::string n = sanitize_metric_name(name);
    out += "# TYPE " + n + " gauge\n";
    out += n + " ";
    append_number(out, g->value());
    out += "\n";
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::string n = sanitize_metric_name(name);
    out += "# TYPE " + n + " histogram\n";
    const auto& bounds = h->upper_bounds();
    const auto counts = h->bucket_counts();
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      cum += counts[i];
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", bounds[i]);
      out += n + "_bucket{le=\"" + buf + "\"} " + std::to_string(cum) + "\n";
    }
    cum += counts.empty() ? 0 : counts.back();
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + "\n";
    out += n + "_sum ";
    append_number(out, h->sum());
    out += "\n";
    out += n + "_count " + std::to_string(h->count()) + "\n";
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& content,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace xplace::telemetry
