#include "telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <utility>

namespace xplace::telemetry {
namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

// Force epoch initialization early so concurrent first uses are safe.
const auto g_epoch_init = trace_epoch();

std::atomic<std::uint32_t> g_next_thread_id{0};
std::atomic<std::uint64_t> g_next_trace_id{1};

thread_local std::uint32_t t_thread_id = 0xffffffffu;
thread_local std::uint32_t t_depth = 0;
thread_local std::uint64_t t_trace_id = 0;

// Trace-id label table (off the recording hot path: written at job submit,
// read at export, erased at job eviction).
std::mutex& label_mutex() {
  static std::mutex m;
  return m;
}
std::vector<std::pair<std::uint64_t, std::string>>& label_table() {
  static std::vector<std::pair<std::uint64_t, std::string>> t;
  return t;
}

}  // namespace

std::uint64_t TraceContext::new_id() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t TraceContext::current() { return t_trace_id; }

TraceBinding::TraceBinding(std::uint64_t trace_id) : prev_(t_trace_id) {
  t_trace_id = trace_id;
}

TraceBinding::~TraceBinding() { t_trace_id = prev_; }

double Tracer::now_us() {
  return std::chrono::duration<double, std::micro>(Clock::now() - trace_epoch())
      .count();
}

std::uint32_t Tracer::thread_id() {
  if (t_thread_id == 0xffffffffu) {
    t_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_id;
}

Tracer::Tracer() {
  const char* env = std::getenv("XPLACE_TRACE");
  if (env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0) {
    // XPLACE_TRACE may carry a capacity ("XPLACE_TRACE=131072"); any
    // non-numeric non-zero value ("1", "on") selects the default.
    char* end = nullptr;
    const unsigned long long cap = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && cap > 1) {
      enable(static_cast<std::size_t>(cap));
    } else {
      enable();
    }
  }
}

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

void Tracer::enable(std::size_t capacity) {
  enabled_.store(false, std::memory_order_relaxed);
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, SpanEvent{});
  slot_seq_ = std::vector<std::atomic<std::uint64_t>>(capacity);
  next_seq_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::record(SpanEvent ev) {
  if (!enabled()) return;
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ev.seq = seq;
  const std::size_t slot = static_cast<std::size_t>(seq % ring_.size());
  ring_[slot] = ev;
  // Publish: snapshot() only trusts a slot whose seq tag matches the event
  // written into it (tag is seq+1 so 0 means "never written").
  slot_seq_[slot].store(seq + 1, std::memory_order_release);
}

std::vector<SpanEvent> Tracer::snapshot() const {
  std::vector<SpanEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const std::uint64_t tag = slot_seq_[i].load(std::memory_order_acquire);
    if (tag == 0) continue;
    const SpanEvent& ev = ring_[i];
    if (ev.seq + 1 != tag) continue;  // torn slot (writer in flight)
    out.push_back(ev);
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) { return a.seq < b.seq; });
  return out;
}

std::uint64_t Tracer::dropped() const {
  const std::uint64_t total = total_recorded();
  const std::uint64_t cap = ring_.size();
  return total > cap ? total - cap : 0;
}

void Tracer::clear() {
  for (auto& s : slot_seq_) s.store(0, std::memory_order_relaxed);
  next_seq_.store(0, std::memory_order_relaxed);
}

void Tracer::set_trace_label(std::uint64_t trace_id, std::string label) {
  std::lock_guard<std::mutex> lock(label_mutex());
  for (auto& [id, l] : label_table()) {
    if (id == trace_id) {
      l = std::move(label);
      return;
    }
  }
  label_table().emplace_back(trace_id, std::move(label));
}

void Tracer::forget_trace(std::uint64_t trace_id) {
  std::lock_guard<std::mutex> lock(label_mutex());
  auto& t = label_table();
  t.erase(std::remove_if(t.begin(), t.end(),
                         [&](const auto& e) { return e.first == trace_id; }),
          t.end());
}

std::vector<std::pair<std::uint64_t, std::string>> Tracer::trace_labels()
    const {
  std::lock_guard<std::mutex> lock(label_mutex());
  return label_table();
}

TraceScope::TraceScope(const char* name)
    : active_(Tracer::global().enabled()) {
  if (!active_) return;
  ev_.name = name;
  ev_.tid = Tracer::thread_id();
  ev_.depth = t_depth++;
  ev_.trace_id = t_trace_id;
  ev_.begin_us = Tracer::now_us();
}

TraceScope& TraceScope::arg(const char* key, double value) {
  if (!active_ || ev_.num_args >= SpanEvent::kMaxArgs) return *this;
  ev_.arg_names[ev_.num_args] = key;
  ev_.arg_values[ev_.num_args] = value;
  ++ev_.num_args;
  return *this;
}

double TraceScope::end() {
  if (!active_) return 0.0;
  active_ = false;
  ev_.end_us = Tracer::now_us();
  --t_depth;
  Tracer::global().record(ev_);
  return (ev_.end_us - ev_.begin_us) * 1e-6;
}

}  // namespace xplace::telemetry
