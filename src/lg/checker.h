// Legality checker: validates a placement against the row/site structure.
#pragma once

#include <string>
#include <vector>

#include "db/database.h"

namespace xplace::lg {

struct LegalityReport {
  std::size_t overlaps = 0;          ///< pairwise overlapping movable cells
  std::size_t out_of_row = 0;        ///< cells not aligned to a row
  std::size_t off_site = 0;          ///< cells not aligned to the site grid
  std::size_t outside_region = 0;    ///< cells poking out of the region
  std::size_t on_blockage = 0;       ///< cells overlapping fixed cells
  std::size_t fence_violations = 0;  ///< fenced cell outside its fence, or
                                     ///< default cell overlapping a fence
  std::vector<std::string> samples;  ///< up to 10 human-readable violations

  bool legal() const {
    return overlaps == 0 && out_of_row == 0 && off_site == 0 &&
           outside_region == 0 && on_blockage == 0 && fence_violations == 0;
  }
  std::string summary() const;
};

LegalityReport check_legality(const db::Database& db);

}  // namespace xplace::lg
