#include "lg/abacus.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "lg/row_map.h"
#include "telemetry/trace.h"
#include "util/execution.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace xplace::lg {
namespace {

/// An Abacus cluster: a maximal run of abutting cells within one segment.
/// Optimal position minimizes Σ e_i (x_i − x'_i)², giving x = q/e with
/// q = Σ e_i (x'_i − offset_i), where offset_i is the cell's offset from the
/// cluster start.
struct Cluster {
  double e = 0.0;  ///< total weight
  double q = 0.0;  ///< weighted target sum
  double w = 0.0;  ///< total width
  double x = 0.0;  ///< cluster start position
  std::vector<std::uint32_t> cells;
};

struct SegmentState {
  Segment seg;
  std::vector<Cluster> clusters;
  double used = 0.0;  ///< total cell width placed here
};

/// Appends cell to the cluster list (by value math only; `cells` bookkeeping
/// is kept so positions can be expanded later). Collapses/merges backwards
/// per the Abacus recurrence. Returns the placed x of the *new cell*.
double place_row(SegmentState& st, std::uint32_t cell, double target_lx,
                 double width, double weight, bool commit,
                 std::vector<Cluster>* scratch) {
  std::vector<Cluster>& cl = commit ? st.clusters : *scratch;
  if (!commit) cl = st.clusters;  // trial on a copy

  auto clamp_x = [&](const Cluster& c) {
    return std::clamp(c.q / c.e, st.seg.lx, st.seg.hx - c.w);
  };

  Cluster nc;
  nc.e = weight;
  nc.q = weight * target_lx;
  nc.w = width;
  if (commit) nc.cells.push_back(cell);
  nc.x = std::clamp(target_lx, st.seg.lx, st.seg.hx - width);
  cl.push_back(std::move(nc));

  // Collapse: while the last cluster overlaps its predecessor, merge.
  while (cl.size() >= 2) {
    Cluster& last = cl.back();
    last.x = clamp_x(last);
    Cluster& prev = cl[cl.size() - 2];
    if (prev.x + prev.w <= last.x + 1e-9) break;
    // Merge last into prev.
    prev.q += last.q - last.e * prev.w;
    prev.e += last.e;
    if (commit) {
      prev.cells.insert(prev.cells.end(), last.cells.begin(), last.cells.end());
    }
    prev.w += last.w;
    cl.pop_back();
    cl.back().x = clamp_x(cl.back());
  }
  cl.back().x = clamp_x(cl.back());

  // New cell sits at the end of the final cluster.
  const Cluster& tail = cl.back();
  return tail.x + tail.w - width;
}

}  // namespace

LegalizeStats abacus_legalize(db::Database& db, const ExecutionContext* exec,
                              std::size_t min_band_clusters) {
  XP_TRACE_SCOPE("lg.abacus");
  Stopwatch watch;
  LegalizeStats stats;
  stats.hpwl_before = db.hpwl();
  ThreadPool* pool =
      exec != nullptr && exec->parallel() ? exec->pool() : nullptr;

  RowMap rows(db);
  std::vector<std::vector<SegmentState>> state(rows.num_rows());
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    for (const Segment& s : rows.segments(r)) {
      state[r].push_back(SegmentState{s, {}, 0.0});
    }
  }

  std::vector<std::uint32_t> order(db.num_movable());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double ax = db.x(a) - db.width(a) * 0.5;
    const double bx = db.x(b) - db.width(b) * 0.5;
    return ax < bx || (ax == bx && a < b);
  });

  const double row_h = rows.row_height();
  // Trial scratch: one cluster-list copy per worker so band candidates can be
  // evaluated concurrently (index 0 doubles as the serial scratch).
  std::vector<std::vector<Cluster>> scratch(pool != nullptr ? pool->size() : 1);
  struct Candidate {
    SegmentState* st;
    double dy2;
  };
  std::vector<Candidate> band;
  std::vector<double> band_cost;
  for (std::uint32_t cell : order) {
    const double w = db.width(cell);
    const double tx = db.x(cell) - w * 0.5;
    const double ty = db.y(cell);
    const std::size_t center_row = rows.nearest_row(ty);

    double best_cost = std::numeric_limits<double>::max();
    SegmentState* best_seg = nullptr;

    // Candidate rows by distance band d = |r − center|. Within a band, every
    // feasible segment's trial placement is independent of the others (trials
    // mutate only per-worker scratch), so a band can fan out across the pool.
    // The reduction then scans candidates in the exact serial visit order
    // (d ascending, +d row before −d, segments in row order) with a strict
    // `<`: any candidate the serial loop's dy² pruning would have skipped has
    // cost ≥ dy² ≥ the running best at that point, so it can never win — the
    // committed segment is bitwise-identical to the serial one for any worker
    // count.
    const long nrows = static_cast<long>(rows.num_rows());
    for (long d = 0; d < nrows; ++d) {
      const double dy_min = (d > 0 ? (d - 0.5) * row_h : 0.0);
      if (dy_min * dy_min >= best_cost) break;  // rows only get farther
      band.clear();
      for (int sign = 0; sign < (d == 0 ? 1 : 2); ++sign) {
        const long r = static_cast<long>(center_row) + (sign == 0 ? d : -d);
        if (r < 0 || r >= nrows) continue;
        const double cy = rows.row_y(r) + row_h * 0.5;
        const double dy = cy - ty;
        if (dy * dy >= best_cost) continue;
        for (SegmentState& st : state[r]) {
          if (st.seg.label != db.cell_fence(cell)) continue;  // fence mismatch
          if (st.used + w > st.seg.width() + 1e-9) continue;
          band.push_back(Candidate{&st, dy * dy});
        }
      }
      if (band.empty()) continue;
      band_cost.resize(band.size());
      auto eval = [&](std::size_t b, std::size_t e, std::size_t worker) {
        for (std::size_t i = b; i < e; ++i) {
          const double x = place_row(*band[i].st, cell, tx, w, 1.0,
                                     /*commit=*/false, &scratch[worker]);
          const double dx = x - tx;
          band_cost[i] = dx * dx + band[i].dy2;
        }
      };
      // A trial place_row costs ~one cluster-list copy, so estimate the band's
      // work in clusters and only pay the pool dispatch (cv broadcast + join,
      // microseconds) when the trials amortize it; early bands on near-empty
      // segments stay serial. band_cost is the same either way.
      std::size_t band_clusters = 0;
      for (const Candidate& cand : band) {
        band_clusters += cand.st->clusters.size() + 1;
      }
      if (pool != nullptr && band.size() >= 2 &&
          band_clusters >= min_band_clusters) {
        pool->parallel_for(band.size(), eval, /*grain=*/1);
      } else {
        eval(0, band.size(), 0);
      }
      for (std::size_t i = 0; i < band.size(); ++i) {
        if (band_cost[i] < best_cost) {
          best_cost = band_cost[i];
          best_seg = band[i].st;
        }
      }
    }

    if (best_seg == nullptr) {
      ++stats.failed_cells;
      XP_WARN("abacus: no segment for cell %s", db.cell_name(cell).c_str());
      continue;
    }
    place_row(*best_seg, cell, tx, w, 1.0, /*commit=*/true, nullptr);
    best_seg->used += w;
  }

  // Expand clusters to final positions (snapped to sites).
  double total_disp = 0.0;
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    const double cy = rows.row_y(r) + row_h * 0.5;
    for (SegmentState& st : state[r]) {
      for (Cluster& c : st.clusters) {
        double x = rows.snap_x(r, c.x);
        if (x < st.seg.lx - 1e-9) x += rows.row(r).site_width;
        if (x + c.w > st.seg.hx + 1e-9) x = rows.snap_x(r, st.seg.hx - c.w);
        for (std::uint32_t cell : c.cells) {
          const double w = db.width(cell);
          const double new_cx = x + w * 0.5;
          const double disp =
              std::fabs(new_cx - db.x(cell)) + std::fabs(cy - db.y(cell));
          total_disp += disp;
          stats.max_displacement = std::max(stats.max_displacement, disp);
          db.set_position(cell, new_cx, cy);
          x += w;
        }
      }
    }
  }

  stats.avg_displacement =
      db.num_movable() > 0 ? total_disp / static_cast<double>(db.num_movable()) : 0;
  stats.hpwl_after = db.hpwl();
  stats.seconds = watch.seconds();
  XP_INFO("abacus LG: %s", stats.summary().c_str());
  return stats;
}

}  // namespace xplace::lg
