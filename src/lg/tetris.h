// Tetris-style greedy legalizer.
//
// Cells are processed in increasing global-placement x order; each one is
// packed into the feasible (row, segment) slot that minimizes its
// displacement, advancing a per-segment fill pointer. Fast and robust; used
// as the fallback/baseline legalizer and as the seed for Abacus.
#pragma once

#include <string>

#include "db/database.h"

namespace xplace::lg {

struct LegalizeStats {
  double hpwl_before = 0.0;
  double hpwl_after = 0.0;
  double avg_displacement = 0.0;
  double max_displacement = 0.0;
  double seconds = 0.0;
  std::size_t failed_cells = 0;  ///< cells that found no slot (should be 0)

  std::string summary() const;
};

/// Legalizes all movable cells of `db` in place. Requires rows.
LegalizeStats tetris_legalize(db::Database& db);

}  // namespace xplace::lg
