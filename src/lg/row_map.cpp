#include "lg/row_map.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace xplace::lg {

RowMap::RowMap(const db::Database& db) {
  if (db.rows().empty()) {
    throw std::invalid_argument("RowMap requires rows (.scl data)");
  }
  rows_ = db.rows();
  std::sort(rows_.begin(), rows_.end(),
            [](const db::Row& a, const db::Row& b) { return a.ly < b.ly; });
  segs_.resize(rows_.size());

  // Collect fixed-cell blockages.
  std::vector<RectD> blockages;
  for (std::size_t c = db.num_movable(); c < db.num_physical(); ++c) {
    const RectD r = db.cell_rect(c);
    if (r.area() > 0.0) blockages.push_back(r);
  }

  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const db::Row& row = rows_[r];
    const double ry0 = row.ly, ry1 = row.hy();
    // Blockage intervals within this row.
    std::vector<std::pair<double, double>> blocked;
    for (const RectD& b : blockages) {
      if (b.ly < ry1 - 1e-9 && b.hy > ry0 + 1e-9) {
        const double lo = std::max(b.lx, row.lx);
        const double hi = std::min(b.hx, row.hx());
        if (hi > lo) blocked.emplace_back(lo, hi);
      }
    }
    std::sort(blocked.begin(), blocked.end());
    double cursor = row.lx;
    auto emit = [&](double lo, double hi) {
      // Snap inward to the site grid.
      const double slo =
          row.lx + std::ceil((lo - row.lx) / row.site_width - 1e-9) * row.site_width;
      const double shi =
          row.lx + std::floor((hi - row.lx) / row.site_width + 1e-9) * row.site_width;
      if (shi - slo >= row.site_width - 1e-9) {
        segs_[r].push_back(Segment{slo, shi, static_cast<int>(r)});
      }
    };
    for (const auto& [lo, hi] : blocked) {
      if (lo > cursor) emit(cursor, lo);
      cursor = std::max(cursor, hi);
    }
    if (cursor < row.hx()) emit(cursor, row.hx());
  }

  if (db.has_fences()) split_by_fences(db);
}

void RowMap::split_by_fences(const db::Database& db) {
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const db::Row& row = rows_[r];
    const double ry0 = row.ly, ry1 = row.hy();
    std::vector<Segment> out;
    for (const Segment& seg : segs_[r]) {
      // Breakpoints at fence x-boundaries that overlap this segment.
      std::vector<double> cuts{seg.lx, seg.hx};
      for (const db::FenceRegion& f : db.fences()) {
        if (f.rect.hy <= ry0 + 1e-9 || f.rect.ly >= ry1 - 1e-9) continue;
        for (double x : {f.rect.lx, f.rect.hx}) {
          if (x > seg.lx + 1e-9 && x < seg.hx - 1e-9) cuts.push_back(x);
        }
      }
      std::sort(cuts.begin(), cuts.end());
      for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        double lo = cuts[i], hi = cuts[i + 1];
        if (hi - lo < row.site_width * 0.5) continue;
        const double mid = 0.5 * (lo + hi);
        int label = -1;
        bool usable = true;
        for (std::size_t k = 0; k < db.fences().size(); ++k) {
          const RectD& fr = db.fences()[k].rect;
          if (mid <= fr.lx || mid >= fr.hx) continue;
          if (fr.hy <= ry0 + 1e-9 || fr.ly >= ry1 - 1e-9) continue;
          if (fr.ly <= ry0 + 1e-9 && fr.hy >= ry1 - 1e-9) {
            label = static_cast<int>(k);  // row fully inside the fence's y-span
          } else {
            usable = false;  // partial vertical overlap: nobody can sit here
          }
          break;
        }
        if (!usable) continue;
        // Snap inward to the site grid.
        lo = row.lx + std::ceil((lo - row.lx) / row.site_width - 1e-9) * row.site_width;
        hi = row.lx + std::floor((hi - row.lx) / row.site_width + 1e-9) * row.site_width;
        if (hi - lo < row.site_width - 1e-9) continue;
        out.push_back(Segment{lo, hi, static_cast<int>(r), label});
      }
    }
    segs_[r] = std::move(out);
  }
}

std::vector<Segment> RowMap::all_segments() const {
  std::vector<Segment> out;
  for (const auto& s : segs_) out.insert(out.end(), s.begin(), s.end());
  return out;
}

std::size_t RowMap::nearest_row(double y_center) const {
  // Rows are uniform-height and sorted; binary search then clamp.
  const double h = row_height();
  if (h <= 0.0 || rows_.size() == 1) return 0;
  const double rel = (y_center - rows_.front().ly) / h - 0.5;
  const long idx = std::lround(rel);
  return static_cast<std::size_t>(
      std::clamp<long>(idx, 0, static_cast<long>(rows_.size()) - 1));
}

double RowMap::snap_x(std::size_t r, double x) const {
  const db::Row& row = rows_[r];
  return row.lx + std::floor((x - row.lx) / row.site_width + 1e-9) * row.site_width;
}

}  // namespace xplace::lg
