#include "lg/tetris.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <vector>

#include "lg/row_map.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace xplace::lg {

std::string LegalizeStats::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "hpwl %.6g -> %.6g (%+.2f%%), disp avg %.2f max %.2f, %.3fs, "
                "failed %zu",
                hpwl_before, hpwl_after,
                hpwl_before > 0 ? (hpwl_after / hpwl_before - 1.0) * 100.0 : 0.0,
                avg_displacement, max_displacement, seconds, failed_cells);
  return buf;
}

LegalizeStats tetris_legalize(db::Database& db) {
  XP_TRACE_SCOPE("lg.tetris");
  Stopwatch watch;
  LegalizeStats stats;
  stats.hpwl_before = db.hpwl();

  RowMap rows(db);
  // Per-segment fill pointer (next free x).
  std::vector<std::vector<double>> fill(rows.num_rows());
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    fill[r].resize(rows.segments(r).size());
    for (std::size_t s = 0; s < rows.segments(r).size(); ++s) {
      fill[r][s] = rows.segments(r)[s].lx;
    }
  }

  // Process cells left-to-right by GP position (classic Tetris order).
  std::vector<std::uint32_t> order(db.num_movable());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double ax = db.x(a) - db.width(a) * 0.5;
    const double bx = db.x(b) - db.width(b) * 0.5;
    return ax < bx || (ax == bx && a < b);
  });

  double total_disp = 0.0;
  const double row_h = rows.row_height();
  for (std::uint32_t cell : order) {
    const double w = db.width(cell);
    const double tx = db.x(cell) - w * 0.5;  // target left edge
    const double ty = db.y(cell);
    const std::size_t center_row = rows.nearest_row(ty);

    double best_cost = std::numeric_limits<double>::max();
    std::size_t best_row = 0, best_seg = 0;
    double best_x = 0.0;

    // Expand the row search window outward; stop once the vertical distance
    // alone exceeds the best cost found.
    const long nrows = static_cast<long>(rows.num_rows());
    for (long d = 0; d < nrows; ++d) {
      bool any_candidate_possible = false;
      for (int sign = 0; sign < (d == 0 ? 1 : 2); ++sign) {
        const long r = static_cast<long>(center_row) + (sign == 0 ? d : -d);
        if (r < 0 || r >= nrows) continue;
        const double dy = std::fabs(rows.row_y(r) + row_h * 0.5 - ty);
        if (dy >= best_cost) continue;
        any_candidate_possible = true;
        const auto& segs = rows.segments(r);
        for (std::size_t s = 0; s < segs.size(); ++s) {
          const Segment& seg = segs[s];
          if (seg.label != db.cell_fence(cell)) continue;  // fence mismatch
          if (fill[r][s] + w > seg.hx + 1e-9) continue;  // segment full
          // Inside fences, pack without gaps: fence segments are small and
          // the gap-leaving greedy fragments them into infeasibility.
          double x = seg.label >= 0 ? fill[r][s]
                                    : std::max(fill[r][s], rows.snap_x(r, tx));
          if (x + w > seg.hx) x = std::max(fill[r][s], rows.snap_x(r, seg.hx - w));
          if (x + w > seg.hx + 1e-9) continue;
          const double cost = std::fabs(x - tx) + dy;
          if (cost < best_cost) {
            best_cost = cost;
            best_row = static_cast<std::size_t>(r);
            best_seg = s;
            best_x = x;
          }
        }
      }
      if (!any_candidate_possible && d > 0 &&
          d * row_h > best_cost) {
        break;
      }
    }

    if (best_cost == std::numeric_limits<double>::max()) {
      ++stats.failed_cells;
      XP_WARN("tetris: no slot for cell %s (w=%.1f)", db.cell_name(cell).c_str(), w);
      continue;
    }
    fill[best_row][best_seg] = best_x + w;
    const double new_cx = best_x + w * 0.5;
    const double new_cy = rows.row_y(best_row) + row_h * 0.5;
    total_disp += std::fabs(new_cx - db.x(cell)) + std::fabs(new_cy - db.y(cell));
    stats.max_displacement =
        std::max(stats.max_displacement,
                 std::fabs(new_cx - db.x(cell)) + std::fabs(new_cy - db.y(cell)));
    db.set_position(cell, new_cx, new_cy);
  }

  stats.avg_displacement =
      db.num_movable() > 0 ? total_disp / static_cast<double>(db.num_movable()) : 0;
  stats.hpwl_after = db.hpwl();
  stats.seconds = watch.seconds();
  XP_INFO("tetris LG: %s", stats.summary().c_str());
  return stats;
}

}  // namespace xplace::lg
