// Abacus row-based legalizer (Spindler et al., "Abacus: fast legalization of
// standard cell circuits with minimal movement").
//
// Cells are inserted in global-placement x order. For each cell, candidate
// rows near its GP position are tried; a *trial* PlaceRow computes the
// quadratic-optimal packed position by merging clusters, and the cheapest row
// is committed. Compared to Tetris this moves cells substantially less (it
// shifts earlier cells instead of only packing forward), which is why it is
// the default legalizer for the Table 2/4 pipelines.
#pragma once

#include "db/database.h"
#include "lg/tetris.h"  // LegalizeStats

namespace xplace {
class ExecutionContext;
}

namespace xplace::lg {

/// Legalizes all movable cells of `db` in place. Requires rows.
///
/// `exec` selects the execution backend for the candidate-row search: with a
/// parallel context, each distance band's trial placements are evaluated
/// concurrently (per-worker scratch) and reduced in the serial visit order
/// with a strict `<`, so the committed placement is bitwise-identical to the
/// serial one for ANY worker count. Null (the default) is the historical
/// serial path.
///
/// `min_band_clusters` gates the fan-out: a band is only dispatched to the
/// pool when its estimated trial work (total clusters across candidate
/// segments) reaches the threshold, since a pool dispatch costs microseconds
/// but a trial on a near-empty segment costs nanoseconds. The default keeps
/// small bands serial; tests pass 0 to force the pooled path.
LegalizeStats abacus_legalize(db::Database& db,
                              const ExecutionContext* exec = nullptr,
                              std::size_t min_band_clusters = 512);

}  // namespace xplace::lg
