// Row/segment geometry for legalization and detailed placement.
//
// Each placement row is cut by fixed-cell (macro) blockages into free
// *segments*; standard cells legalize into segments at site-aligned x
// positions. This mirrors how NTUPlace3 / Abacus model the row structure.
#pragma once

#include <cstddef>
#include <vector>

#include "db/database.h"

namespace xplace::lg {

struct Segment {
  double lx = 0.0;  ///< segment left edge (site-aligned)
  double hx = 0.0;  ///< segment right edge
  int row = 0;      ///< owning row index
  /// Fence label: cells may only legalize into segments whose label equals
  /// their fence id (-1 = the default region outside all fences).
  int label = -1;

  double width() const { return hx - lx; }
};

class RowMap {
 public:
  /// Builds segments from the database rows minus fixed-cell blockages.
  /// Rows must exist; throws otherwise.
  explicit RowMap(const db::Database& db);

  std::size_t num_rows() const { return rows_.size(); }
  const db::Row& row(std::size_t r) const { return rows_[r]; }
  double row_y(std::size_t r) const { return rows_[r].ly; }
  double row_height() const { return rows_.empty() ? 0.0 : rows_[0].height; }

  /// Segments of one row, sorted by lx.
  const std::vector<Segment>& segments(std::size_t r) const { return segs_[r]; }
  /// All segments flattened (row-major).
  std::vector<Segment> all_segments() const;

  /// Row index whose vertical center is nearest to y (clamped).
  std::size_t nearest_row(double y_center) const;

  /// Snap an x coordinate to the site grid of row r (toward -inf).
  double snap_x(std::size_t r, double x) const;

 private:
  void split_by_fences(const db::Database& db);

  std::vector<db::Row> rows_;
  std::vector<std::vector<Segment>> segs_;
};

}  // namespace xplace::lg
