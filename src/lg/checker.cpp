#include "lg/checker.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "lg/row_map.h"

namespace xplace::lg {

std::string LegalityReport::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "legal=%d overlaps=%zu out_of_row=%zu off_site=%zu "
                "outside=%zu on_blockage=%zu fence=%zu",
                legal() ? 1 : 0, overlaps, out_of_row, off_site,
                outside_region, on_blockage, fence_violations);
  return buf;
}

LegalityReport check_legality(const db::Database& db) {
  LegalityReport rep;
  RowMap rows(db);
  const double tol = 1e-6;
  auto note = [&](const std::string& msg) {
    if (rep.samples.size() < 10) rep.samples.push_back(msg);
  };

  // Per-cell structural checks.
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    const RectD r = db.cell_rect(c);
    if (r.lx < db.region().lx - tol || r.hx > db.region().hx + tol ||
        r.ly < db.region().ly - tol || r.hy > db.region().hy + tol) {
      ++rep.outside_region;
      note("outside: " + db.cell_name(c));
    }
    const std::size_t row = rows.nearest_row(db.y(c));
    if (std::fabs(r.ly - rows.row_y(row)) > tol ||
        std::fabs(db.height(c) - rows.row_height()) > tol) {
      ++rep.out_of_row;
      note("row-misaligned: " + db.cell_name(c));
      continue;
    }
    const double site = rows.row(row).site_width;
    const double frac = (r.lx - rows.row(row).lx) / site;
    if (std::fabs(frac - std::round(frac)) > 1e-4) {
      ++rep.off_site;
      note("off-site: " + db.cell_name(c));
    }
  }

  // Pairwise overlap via per-row sweep.
  std::vector<std::vector<std::uint32_t>> per_row(rows.num_rows());
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    per_row[rows.nearest_row(db.y(c))].push_back(static_cast<std::uint32_t>(c));
  }
  for (auto& cells : per_row) {
    std::sort(cells.begin(), cells.end(), [&](std::uint32_t a, std::uint32_t b) {
      return db.x(a) - db.width(a) * 0.5 < db.x(b) - db.width(b) * 0.5;
    });
    for (std::size_t i = 1; i < cells.size(); ++i) {
      const double prev_end = db.x(cells[i - 1]) + db.width(cells[i - 1]) * 0.5;
      const double cur_start = db.x(cells[i]) - db.width(cells[i]) * 0.5;
      if (cur_start < prev_end - tol) {
        ++rep.overlaps;
        note("overlap: " + db.cell_name(cells[i - 1]) + " / " +
             db.cell_name(cells[i]));
      }
    }
  }

  // Fence-region constraints.
  if (db.has_fences()) {
    for (std::size_t c = 0; c < db.num_movable(); ++c) {
      const RectD cr = db.cell_rect(c);
      const int fence = db.cell_fence(c);
      if (fence >= 0) {
        const RectD& fr = db.fences()[fence].rect;
        if (cr.overlap_area(fr) < cr.area() - tol) {
          ++rep.fence_violations;
          note("fence-escape: " + db.cell_name(c));
        }
      } else {
        for (const db::FenceRegion& f : db.fences()) {
          if (cr.overlap_area(f.rect) > tol) {
            ++rep.fence_violations;
            note("fence-intrusion: " + db.cell_name(c));
            break;
          }
        }
      }
    }
  }

  // Blockage overlap (against fixed cells with area).
  for (std::size_t f = db.num_movable(); f < db.num_physical(); ++f) {
    const RectD b = db.cell_rect(f);
    if (b.area() <= 0.0) continue;
    for (std::size_t c = 0; c < db.num_movable(); ++c) {
      if (db.cell_rect(c).overlap_area(b) > tol) {
        ++rep.on_blockage;
        note("on-blockage: " + db.cell_name(c) + " on " + db.cell_name(f));
      }
    }
  }
  return rep;
}

}  // namespace xplace::lg
