#include "fft/dct.h"

#include <cassert>
#include <cmath>
#include <map>
#include <mutex>
#include <numbers>

#include "fft/fft.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace xplace::fft {
namespace {

/// Phase factors e^{-iπk/(2N)} for the Makhoul DCT-II post-twiddle, cached per
/// size (the inverse uses their conjugates). Mutex-guarded for the pooled 2-D
/// passes; map node pointers stay stable after insert, so the returned
/// reference outlives the lock.
const std::vector<Complex>& dct_phases(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::vector<Complex>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  std::vector<Complex> ph(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -std::numbers::pi * static_cast<double>(k) /
                       (2.0 * static_cast<double>(n));
    ph[k] = Complex(std::cos(ang), std::sin(ang));
  }
  return cache.emplace(n, std::move(ph)).first->second;
}

/// Scratch buffers reused across calls to avoid per-transform allocation.
/// thread_local so the thread pool can run row transforms concurrently.
/// dct/idct use tl_cbuf; idxst uses tl_sbuf so that its call into idct never
/// aliases its own scratch; the 2-D column pass gathers strided columns into
/// tl_colbuf (allocation-free at steady state).
thread_local std::vector<Complex> tl_cbuf;
thread_local std::vector<double> tl_sbuf;
thread_local std::vector<double> tl_colbuf;

/// Complex buffers viewed as interleaved (re,im) doubles for the SIMD table.
double* flat(std::vector<Complex>& v) {
  return reinterpret_cast<double*>(v.data());
}
const double* flat(const std::vector<Complex>& v) {
  return reinterpret_cast<const double*>(v.data());
}

}  // namespace

// Makhoul's N-point algorithm: reorder x into even indices ascending followed
// by odd indices descending, take an N-point complex FFT, then rotate.
void dct(double* x, std::size_t n) {
  assert(is_pow2(n));
  if (n == 1) return;
  const simd::Kernels& k = simd::active();
  auto& v = tl_cbuf;
  v.resize(n);
  k.dct_pack(x, flat(v), n);
  fft(v.data(), n);
  const auto& ph = dct_phases(n);
  k.dct_rotate(flat(v), flat(ph), x, n);
}

// Inverse of the above: rebuild the complex spectrum from the real DCT
// coefficients (V_0 = X_0, V_k = e^{iπk/(2N)} (X_k - i X_{N-k})), inverse FFT,
// and de-interleave.
void idct(double* x, std::size_t n) {
  assert(is_pow2(n));
  if (n == 1) return;
  const simd::Kernels& k = simd::active();
  auto& v = tl_cbuf;
  v.resize(n);
  const auto& ph = dct_phases(n);
  v[0] = Complex(x[0], 0.0);
  // conj(ph[k]) = e^{+iπk/(2N)}; the pre-twiddle reads x before the unpack
  // overwrites it, and v never aliases x, so the unpack writes x directly.
  k.idct_pretwiddle(x, flat(ph), flat(v), n);
  ifft(v.data(), n);
  k.idct_unpack(flat(v), x, n);
}

// Sine synthesis via the DCT-III identity
//   Σ_k α_k X_k sin(πk(2n+1)/(2N)) = (-1)^n · idct(d)_n,
// where d_0 = 0 and d_j = X_{N-j}.
void idxst(double* x, std::size_t n) {
  assert(is_pow2(n));
  if (n == 1) {
    x[0] = 0.0;  // k=0 sine term vanishes
    return;
  }
  auto& d = tl_sbuf;
  d.resize(n);
  d[0] = 0.0;
  for (std::size_t j = 1; j < n; ++j) d[j] = x[n - j];
  idct(d.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = (i & 1) ? -d[i] : d[i];
  }
}

namespace {

/// Transforms one strided column in place via the thread_local gather buffer.
template <typename Fn>
void transform_column(double* data, std::size_t rows, std::size_t cols,
                      std::size_t c, Fn&& along_rows) {
  auto& col = tl_colbuf;
  col.resize(rows);
  for (std::size_t r = 0; r < rows; ++r) col[r] = data[r * cols + c];
  along_rows(col.data(), rows);
  for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = col[r];
}

/// Applies a 1-D in-place transform along both dims of a row-major array.
/// Rows (and then columns) are independent, so with a pool they partition
/// across workers; every 1-D transform writes a disjoint slice, making the
/// pooled result bitwise-equal to the serial one for any worker count.
template <typename Fn0, typename Fn1>
void separable2(double* data, std::size_t rows, std::size_t cols, Fn0 along_rows,
                Fn1 along_cols, ThreadPool* pool) {
  if (pool != nullptr && pool->size() > 1 && rows >= 4 && cols >= 4) {
    // Each index is a whole 1-D transform (coarse), so use a small grain
    // rather than the element-loop chunk heuristic. 4 rows per chunk keeps
    // dispatch overhead low while still spreading a 128-row grid across 8+
    // workers.
    pool->parallel_for(
        rows,
        [&](std::size_t b, std::size_t e, std::size_t) {
          for (std::size_t r = b; r < e; ++r) along_cols(data + r * cols, cols);
        },
        /*grain=*/4);
    pool->parallel_for(
        cols,
        [&](std::size_t b, std::size_t e, std::size_t) {
          for (std::size_t c = b; c < e; ++c)
            transform_column(data, rows, cols, c, along_rows);
        },
        /*grain=*/4);
    return;
  }
  // Dimension 1 (contiguous): transform each row.
  for (std::size_t r = 0; r < rows; ++r) along_cols(data + r * cols, cols);
  // Dimension 0 (strided): gather each column, transform, scatter back.
  for (std::size_t c = 0; c < cols; ++c) {
    transform_column(data, rows, cols, c, along_rows);
  }
}

}  // namespace

namespace {
// Disambiguated wrappers (dct/idct also have vector overloads).
const auto kDct = [](double* p, std::size_t n) { dct(p, n); };
const auto kIdct = [](double* p, std::size_t n) { idct(p, n); };
const auto kIdxst = [](double* p, std::size_t n) { idxst(p, n); };
}  // namespace

void dct2(double* data, std::size_t rows, std::size_t cols, ThreadPool* pool) {
  separable2(data, rows, cols, kDct, kDct, pool);
}

void idct2(double* data, std::size_t rows, std::size_t cols, ThreadPool* pool) {
  separable2(data, rows, cols, kIdct, kIdct, pool);
}

void idxst_idct(double* data, std::size_t rows, std::size_t cols,
                ThreadPool* pool) {
  separable2(data, rows, cols, kIdxst, kIdct, pool);
}

void idct_idxst(double* data, std::size_t rows, std::size_t cols,
                ThreadPool* pool) {
  separable2(data, rows, cols, kIdct, kIdxst, pool);
}

std::vector<double> dct(const std::vector<double>& x) {
  std::vector<double> y = x;
  dct(y.data(), y.size());
  return y;
}

std::vector<double> idct(const std::vector<double>& x) {
  std::vector<double> y = x;
  idct(y.data(), y.size());
  return y;
}

std::vector<double> idxst(const std::vector<double>& x) {
  std::vector<double> y = x;
  idxst(y.data(), y.size());
  return y;
}

}  // namespace xplace::fft
