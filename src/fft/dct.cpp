#include "fft/dct.h"

#include <cassert>
#include <vector>

#include "fft/fft.h"
#include "fft/plan.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace xplace::fft {
namespace {

/// Complex buffers viewed as interleaved (re,im) doubles for the SIMD table.
double* flat(std::vector<Complex>& v) {
  return reinterpret_cast<double*>(v.data());
}

}  // namespace

// The 1-D entry points below keep the classic Makhoul glue-kernel pipeline
// (pack → full complex FFT → rotate). The 2-D hot path no longer goes
// through them — run_rows/run_cols drive the fused plan passes instead —
// but they remain the reference-grade scalar pipeline for tests and for
// callers that transform a single line. Phase factors now come from the
// lock-free plan cache; the old mutex-guarded dct_phases() map is gone.

// Makhoul's N-point algorithm: reorder x into even indices ascending followed
// by odd indices descending, take an N-point complex FFT, then rotate.
void dct(double* x, std::size_t n) {
  assert(is_pow2(n));
  if (n == 1) return;
  const simd::Kernels& k = simd::active();
  std::vector<Complex> v(n);
  k.dct_pack(x, flat(v), n);
  fft(v.data(), n);
  k.dct_rotate(flat(v), plan(n).ph_flat(), x, n);
}

// Inverse of the above: rebuild the complex spectrum from the real DCT
// coefficients (V_0 = X_0, V_k = e^{iπk/(2N)} (X_k - i X_{N-k})), inverse FFT,
// and de-interleave.
void idct(double* x, std::size_t n) {
  assert(is_pow2(n));
  if (n == 1) return;
  const simd::Kernels& k = simd::active();
  std::vector<Complex> v(n);
  const double* ph = plan(n).ph_flat();
  v[0] = Complex(x[0], 0.0);
  // conj(ph[k]) = e^{+iπk/(2N)}; the pre-twiddle reads x before the unpack
  // overwrites it, and v never aliases x, so the unpack writes x directly.
  k.idct_pretwiddle(x, ph, flat(v), n);
  ifft(v.data(), n);
  k.idct_unpack(flat(v), x, n);
}

// Sine synthesis via the DCT-III identity
//   Σ_k α_k X_k sin(πk(2n+1)/(2N)) = (-1)^n · idct(d)_n,
// where d_0 = 0 and d_j = X_{N-j}.
void idxst(double* x, std::size_t n) {
  assert(is_pow2(n));
  if (n == 1) {
    x[0] = 0.0;  // k=0 sine term vanishes
    return;
  }
  std::vector<double> d(n);
  d[0] = 0.0;
  for (std::size_t j = 1; j < n; ++j) d[j] = x[n - j];
  idct(d.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = (i & 1) ? -d[i] : d[i];
  }
}

namespace {

/// Per-thread scratch slab for the standalone 2-D wrappers (allocation-free
/// at steady state). PoissonSolver bypasses these wrappers and owns its own
/// slab so its iterations share one allocation across all passes.
thread_local PlanScratch tl_scratch;

/// One in-place separable 2-D transform through the fused plan executors:
/// dimension 1 first (contiguous rows, paired two per complex FFT), then
/// dimension 0 (adjacent column pairs at native stride — no gather/scatter).
void run2d(double* data, std::size_t rows, std::size_t cols, Kind1D row_kind,
           Kind1D col_kind, ThreadPool* pool) {
  assert(is_pow2(rows) && is_pow2(cols));
  ThreadPool* p = (pool != nullptr && pool->size() > 1) ? pool : nullptr;
  const PassOp row_op{data, data, row_kind};
  run_rows(&row_op, 1, rows, cols, p, tl_scratch);
  const PassOp col_op{data, data, col_kind};
  run_cols(&col_op, 1, rows, cols, p, tl_scratch);
}

}  // namespace

void dct2(double* data, std::size_t rows, std::size_t cols, ThreadPool* pool) {
  run2d(data, rows, cols, Kind1D::kDct, Kind1D::kDct, pool);
}

void idct2(double* data, std::size_t rows, std::size_t cols, ThreadPool* pool) {
  run2d(data, rows, cols, Kind1D::kIdct, Kind1D::kIdct, pool);
}

void idxst_idct(double* data, std::size_t rows, std::size_t cols,
                ThreadPool* pool) {
  // idxst along dimension 0, idct along dimension 1.
  run2d(data, rows, cols, Kind1D::kIdct, Kind1D::kIdxst, pool);
}

void idct_idxst(double* data, std::size_t rows, std::size_t cols,
                ThreadPool* pool) {
  // idct along dimension 0, idxst along dimension 1.
  run2d(data, rows, cols, Kind1D::kIdxst, Kind1D::kIdct, pool);
}

std::vector<double> dct(const std::vector<double>& x) {
  std::vector<double> y = x;
  dct(y.data(), y.size());
  return y;
}

std::vector<double> idct(const std::vector<double>& x) {
  std::vector<double> y = x;
  idct(y.data(), y.size());
  return y;
}

std::vector<double> idxst(const std::vector<double>& x) {
  std::vector<double> y = x;
  idxst(y.data(), y.size());
  return y;
}

}  // namespace xplace::fft
