#include "fft/fft.h"

#include <cassert>
#include <cmath>
#include <map>
#include <mutex>
#include <numbers>

namespace xplace::fft {
namespace {

/// Twiddle factors e^{-2πi k/n} for k in [0, n/2), cached per size.
/// The cache lives for the process lifetime; sizes used are a handful of
/// powers of two so the footprint is trivial. Mutex-guarded: row/column
/// transforms run concurrently on the thread pool, and node pointers stay
/// stable after insert so the returned reference outlives the lock.
const std::vector<Complex>& twiddles(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, std::vector<Complex>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  std::vector<Complex> tw(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang = -2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(n);
    tw[k] = Complex(std::cos(ang), std::sin(ang));
  }
  return cache.emplace(n, std::move(tw)).first->second;
}

void bit_reverse_permute(Complex* data, std::size_t n) {
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

}  // namespace

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(Complex* data, std::size_t n) {
  assert(is_pow2(n));
  if (n == 1) return;
  bit_reverse_permute(data, n);
  const auto& tw = twiddles(n);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t step = n / len;  // twiddle stride for this stage
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex w = tw[k * step];
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
      }
    }
  }
}

void ifft(Complex* data, std::size_t n) {
  assert(is_pow2(n));
  // Conjugate trick: ifft(x) = conj(fft(conj(x))) / n.
  for (std::size_t i = 0; i < n; ++i) data[i] = std::conj(data[i]);
  fft(data, n);
  const double inv = 1.0 / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = std::conj(data[i]) * inv;
}

std::vector<Complex> fft(const std::vector<Complex>& x) {
  std::vector<Complex> y = x;
  fft(y.data(), y.size());
  return y;
}

std::vector<Complex> ifft(const std::vector<Complex>& x) {
  std::vector<Complex> y = x;
  ifft(y.data(), y.size());
  return y;
}

void fft2(Complex* data, std::size_t rows, std::size_t cols) {
  assert(is_pow2(rows) && is_pow2(cols));
  for (std::size_t r = 0; r < rows; ++r) fft(data + r * cols, cols);
  std::vector<Complex> col(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) col[r] = data[r * cols + c];
    fft(col.data(), rows);
    for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = col[r];
  }
}

void ifft2(Complex* data, std::size_t rows, std::size_t cols) {
  assert(is_pow2(rows) && is_pow2(cols));
  for (std::size_t r = 0; r < rows; ++r) ifft(data + r * cols, cols);
  std::vector<Complex> col(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) col[r] = data[r * cols + c];
    ifft(col.data(), rows);
    for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = col[r];
  }
}

std::vector<Complex> rfft(const std::vector<double>& x) {
  std::vector<Complex> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = Complex(x[i], 0.0);
  fft(y.data(), y.size());
  return y;
}

}  // namespace xplace::fft
