#include "fft/fft.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <numbers>

#include "util/simd.h"

namespace xplace::fft {
namespace {

/// Precomputed per-size transform plan, cached for the process lifetime
/// (sizes used are a handful of powers of two so the footprint is trivial).
/// Mutex-guarded: row/column transforms run concurrently on the thread pool,
/// and map node pointers stay stable after insert so the returned reference
/// outlives the lock.
struct FftPlan {
  /// Stage-major contiguous twiddles: for each stage `len` (2, 4, …, n), the
  /// values e^{-2πi k/n} for k·(n/len), k in [0, len/2), concatenated. The
  /// per-stage slice equals the classic strided walk of the size-n table —
  /// same doubles, unit stride — so every fft_pass launch runs with step=1.
  std::vector<Complex> tw;
  std::vector<std::size_t> stage_off;  // complex offset of each stage's slice
  /// Bit-reversal swap pairs (i < j only), so the permutation is a flat pair
  /// walk instead of the per-index bit-twiddling loop.
  std::vector<std::uint32_t> rev_i, rev_j;
};

const FftPlan& fft_plan(std::size_t n) {
  static std::mutex mutex;
  static std::map<std::size_t, FftPlan> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  FftPlan p;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    p.stage_off.push_back(p.tw.size());
    const std::size_t step = n / len;
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(k * step) / static_cast<double>(n);
      p.tw.emplace_back(std::cos(ang), std::sin(ang));
    }
  }
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      p.rev_i.push_back(static_cast<std::uint32_t>(i));
      p.rev_j.push_back(static_cast<std::uint32_t>(j));
    }
  }
  return cache.emplace(n, std::move(p)).first->second;
}

}  // namespace

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(Complex* data, std::size_t n) {
  assert(is_pow2(n));
  if (n == 1) return;
  const FftPlan& p = fft_plan(n);
  for (std::size_t s = 0; s < p.rev_i.size(); ++s) {
    std::swap(data[p.rev_i[s]], data[p.rev_j[s]]);
  }
  // std::complex<double> is layout-compatible with double[2] (guaranteed by
  // the standard), so each radix-2 stage runs through the SIMD backend's
  // butterfly kernel on the raw interleaved buffer. Stage twiddles are
  // contiguous in the plan, so every launch is unit-stride (step=1).
  const simd::Kernels& k = simd::active();
  double* d = reinterpret_cast<double*>(data);
  const double* twd = reinterpret_cast<const double*>(p.tw.data());
  std::size_t s = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++s) {
    k.fft_pass(d, twd + 2 * p.stage_off[s], n, len, /*step=*/1);
  }
}

void ifft(Complex* data, std::size_t n) {
  assert(is_pow2(n));
  // Conjugate trick: ifft(x) = conj(fft(conj(x))) / n.
  const simd::Kernels& k = simd::active();
  k.conj_scale(reinterpret_cast<double*>(data), n, 1.0);
  fft(data, n);
  k.conj_scale(reinterpret_cast<double*>(data), n,
               1.0 / static_cast<double>(n));
}

std::vector<Complex> fft(const std::vector<Complex>& x) {
  std::vector<Complex> y = x;
  fft(y.data(), y.size());
  return y;
}

std::vector<Complex> ifft(const std::vector<Complex>& x) {
  std::vector<Complex> y = x;
  ifft(y.data(), y.size());
  return y;
}

void fft2(Complex* data, std::size_t rows, std::size_t cols) {
  assert(is_pow2(rows) && is_pow2(cols));
  for (std::size_t r = 0; r < rows; ++r) fft(data + r * cols, cols);
  std::vector<Complex> col(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) col[r] = data[r * cols + c];
    fft(col.data(), rows);
    for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = col[r];
  }
}

void ifft2(Complex* data, std::size_t rows, std::size_t cols) {
  assert(is_pow2(rows) && is_pow2(cols));
  for (std::size_t r = 0; r < rows; ++r) ifft(data + r * cols, cols);
  std::vector<Complex> col(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) col[r] = data[r * cols + c];
    ifft(col.data(), rows);
    for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = col[r];
  }
}

std::vector<Complex> rfft(const std::vector<double>& x) {
  std::vector<Complex> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = Complex(x[i], 0.0);
  fft(y.data(), y.size());
  return y;
}

}  // namespace xplace::fft
