#include "fft/fft.h"

#include <cassert>
#include <cstdint>

#include "fft/plan.h"
#include "util/simd.h"

namespace xplace::fft {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft(Complex* data, std::size_t n) {
  assert(is_pow2(n));
  if (n == 1) return;
  // Twiddles, stage offsets, and bit-reversal pairs come from the shared
  // lock-free plan cache (fft/plan.h) — same tables the fused DCT passes use.
  const Plan& p = plan(n);
  for (std::size_t s = 0; s < p.rev_i.size(); ++s) {
    std::swap(data[p.rev_i[s]], data[p.rev_j[s]]);
  }
  // std::complex<double> is layout-compatible with double[2] (guaranteed by
  // the standard), so each radix-2 stage runs through the SIMD backend's
  // butterfly kernel on the raw interleaved buffer. Stage twiddles are
  // contiguous in the plan, so every launch is unit-stride (step=1).
  const simd::Kernels& k = simd::active();
  double* d = reinterpret_cast<double*>(data);
  const double* twd = reinterpret_cast<const double*>(p.tw.data());
  std::size_t s = 0;
  for (std::size_t len = 2; len <= n; len <<= 1, ++s) {
    k.fft_pass(d, twd + 2 * p.stage_off[s], n, len, /*step=*/1);
  }
}

void ifft(Complex* data, std::size_t n) {
  assert(is_pow2(n));
  // Conjugate trick: ifft(x) = conj(fft(conj(x))) / n.
  const simd::Kernels& k = simd::active();
  k.conj_scale(reinterpret_cast<double*>(data), n, 1.0);
  fft(data, n);
  k.conj_scale(reinterpret_cast<double*>(data), n,
               1.0 / static_cast<double>(n));
}

std::vector<Complex> fft(const std::vector<Complex>& x) {
  std::vector<Complex> y = x;
  fft(y.data(), y.size());
  return y;
}

std::vector<Complex> ifft(const std::vector<Complex>& x) {
  std::vector<Complex> y = x;
  ifft(y.data(), y.size());
  return y;
}

void fft2(Complex* data, std::size_t rows, std::size_t cols) {
  assert(is_pow2(rows) && is_pow2(cols));
  for (std::size_t r = 0; r < rows; ++r) fft(data + r * cols, cols);
  std::vector<Complex> col(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) col[r] = data[r * cols + c];
    fft(col.data(), rows);
    for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = col[r];
  }
}

void ifft2(Complex* data, std::size_t rows, std::size_t cols) {
  assert(is_pow2(rows) && is_pow2(cols));
  for (std::size_t r = 0; r < rows; ++r) ifft(data + r * cols, cols);
  std::vector<Complex> col(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    for (std::size_t r = 0; r < rows; ++r) col[r] = data[r * cols + c];
    ifft(col.data(), rows);
    for (std::size_t r = 0; r < rows; ++r) data[r * cols + c] = col[r];
  }
}

std::vector<Complex> rfft(const std::vector<double>& x) {
  std::vector<Complex> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = Complex(x[i], 0.0);
  fft(y.data(), y.size());
  return y;
}

}  // namespace xplace::fft
