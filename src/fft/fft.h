// Iterative radix-2 complex FFT (power-of-two sizes).
//
// This is the repository's stand-in for cuFFT / torch.fft: it backs the
// DCT/IDXST transforms of the electrostatic Poisson solver (src/ops) and the
// spectral layers of the Fourier neural operator (src/nn).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace xplace::fft {

using Complex = std::complex<double>;

/// True iff n is a nonzero power of two.
bool is_pow2(std::size_t n);

/// Smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// In-place forward DFT: X_k = sum_n x_n e^{-2πi kn/N}. N must be a power of
/// two. Unnormalized (matching FFTW/cuFFT convention).
void fft(Complex* data, std::size_t n);

/// In-place inverse DFT with 1/N normalization: ifft(fft(x)) == x.
void ifft(Complex* data, std::size_t n);

/// Convenience copies.
std::vector<Complex> fft(const std::vector<Complex>& x);
std::vector<Complex> ifft(const std::vector<Complex>& x);

/// 2-D transforms on a row-major rows×cols array (both powers of two).
/// Row-column decomposition; unnormalized forward, 1/(rows*cols) inverse.
void fft2(Complex* data, std::size_t rows, std::size_t cols);
void ifft2(Complex* data, std::size_t rows, std::size_t cols);

/// Forward DFT of a real signal; returns the full length-n complex spectrum
/// (callers that want the Hermitian half can read the first n/2+1 entries).
std::vector<Complex> rfft(const std::vector<double>& x);

}  // namespace xplace::fft
