#include "fft/reference.h"

#include <cmath>
#include <numbers>

namespace xplace::fft::reference {

std::vector<std::complex<double>> dft(
    const std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      const double ang = -2.0 * std::numbers::pi * static_cast<double>(k * i) /
                         static_cast<double>(n);
      acc += x[i] * std::complex<double>(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> dct2_naive_1d(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> out(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += x[i] * std::cos(std::numbers::pi * static_cast<double>(k) *
                             (2.0 * static_cast<double>(i) + 1.0) /
                             (2.0 * static_cast<double>(n)));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<double> idct_naive_1d(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = x[0];
    for (std::size_t k = 1; k < n; ++k) {
      acc += 2.0 * x[k] *
             std::cos(std::numbers::pi * static_cast<double>(k) *
                      (2.0 * static_cast<double>(i) + 1.0) /
                      (2.0 * static_cast<double>(n)));
    }
    out[i] = acc / static_cast<double>(n);
  }
  return out;
}

std::vector<double> idxst_naive_1d(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> out(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t k = 1; k < n; ++k) {
      acc += 2.0 * x[k] *
             std::sin(std::numbers::pi * static_cast<double>(k) *
                      (2.0 * static_cast<double>(i) + 1.0) /
                      (2.0 * static_cast<double>(n)));
    }
    out[i] = acc / static_cast<double>(n);
  }
  return out;
}

}  // namespace xplace::fft::reference
