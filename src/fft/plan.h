// Fused FFT/DCT plan engine (DESIGN.md §15).
//
// The per-call Makhoul pipeline (pack → full complex FFT → rotate, with a
// mutex-guarded phase-table lookup on every row) is replaced here by
// per-size `Plan`s that precompute everything a transform needs once —
// stage-major butterfly twiddles, bit-reversal tables, the composed
// pack∘bit-reverse gather permutation, and the DCT phase factors — plus an
// executor that exploits the real-input symmetry of the electrostatic
// transforms: two real rows (or two adjacent columns) ride one complex FFT
// as its real and imaginary parts, halving the butterfly work.
//
// Per pair, the executor runs
//
//   plan_fwd_head   gather both sequences through the composed permutation
//                   directly into bit-reversed slots + the twiddle-free
//                   first butterfly             (one pass instead of three)
//   fft_pass        middle stages len 4 … n/2   (the PR 4 SIMD butterflies)
//   plan_fwd_tail   last butterfly + spectrum disentangle + Makhoul rotate
//                   + paired store              (one pass instead of three)
//
// and the mirror-image inverse pipeline (pretwiddle head / 1⁄n-scaled
// unpack tail); see util/simd.h for the kernel contracts. Column passes
// transform adjacent column pairs in place at their native stride — the
// old gather/scatter copy through a thread_local buffer is gone.
//
// Determinism: pairing is by fixed line index (2p, 2p+1), every pair writes
// a disjoint slice, and per-worker scratch comes from a caller-owned
// `PlanScratch` slab — so pooled passes are bitwise-identical to serial
// ones for ANY worker count, and the scalar and AVX2 backends of the new
// kernels are bitwise-identical to each other by construction (single-
// rounded mul/add/addsub chains in matching order, no FMA contraction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "fft/fft.h"

namespace xplace {
class ThreadPool;
}

namespace xplace::fft {

/// The 1-D transform kinds the electrostatic solver composes.
enum class Kind1D : std::uint8_t { kDct, kIdct, kIdxst };

/// Immutable per-size transform plan (n a power of two, n ≥ 2). Built once,
/// cached for the process lifetime, shared by every thread without locks.
struct Plan {
  std::size_t n = 0;

  /// Stage-major contiguous butterfly twiddles: for each stage `len`
  /// (2, 4, …, n) the values e^{-2πik/n} for k·(n/len), k < len/2,
  /// concatenated; `stage_off[s]` is the complex offset of stage s
  /// (len = 2<<s). Identical layout to the historical fft.cpp plan, so
  /// every fft_pass launch stays unit-stride.
  std::vector<Complex> tw;
  std::vector<std::size_t> stage_off;

  /// Bit-reversal swap pairs (i < j only) for the in-place complex fft().
  std::vector<std::uint32_t> rev_i, rev_j;

  /// brev[j] = bit-reverse of j — the frequency a slot j holds after the
  /// scatter (inverse heads index the spectrum through this).
  std::vector<std::uint32_t> brev;

  /// fwd_perm[j] = Makhoul-pack source index of bit-reversed slot j: the
  /// composed gather map pack∘brev, so the forward head reads the real
  /// input straight into butterfly-ready slots.
  std::vector<std::uint32_t> fwd_perm;

  /// DCT phase factors e^{-iπk/(2n)}, k < n (plan-owned: the old per-call
  /// mutex-guarded dct_phases() map is gone).
  std::vector<Complex> ph;

  const double* tw_flat() const {
    return reinterpret_cast<const double*>(tw.data());
  }
  const double* ph_flat() const {
    return reinterpret_cast<const double*>(ph.data());
  }
  /// Last-stage (len = n) twiddle slice: e^{-2πik/n}, k < n/2.
  const double* tw_last() const {
    return tw_flat() + 2 * stage_off.back();
  }
};

/// The process-wide plan for size n (power of two, n ≥ 2). Lock-free after
/// the first build per size: a log2-indexed array of atomic slots, so the
/// pooled row/column passes hit a single acquire-load — no mutex, no map.
const Plan& plan(std::size_t n);

/// Caller-owned scratch slab for the executors: one interleaved-complex
/// buffer (2n doubles) per pool worker. Reserve is cheap when already
/// sized; the solver keeps one instance across iterations so the hot path
/// never allocates.
class PlanScratch {
 public:
  void reserve(std::size_t n, std::size_t workers) {
    const std::size_t need = 2 * n;
    if (need > stride_) stride_ = need;
    if (buf_.size() < stride_ * workers) buf_.resize(stride_ * workers);
  }
  double* slot(std::size_t worker) { return buf_.data() + worker * stride_; }

 private:
  std::vector<double> buf_;
  std::size_t stride_ = 0;
};

/// One 2-D pass over one array: transform every line of `src` into `dst`
/// (same shape; src == dst for in place) with the given 1-D kind.
struct PassOp {
  const double* src = nullptr;
  double* dst = nullptr;
  Kind1D kind = Kind1D::kDct;
};

/// Called after each column pair (c0, c1) of a run_cols pass lands
/// (c1 == c0 for the degenerate single-column case), while the pair is
/// still cache-hot. Pairs may run on different workers concurrently; hooks
/// must write disjoint state per pair (the spectral scale does).
using ColHook = std::function<void(std::size_t c0, std::size_t c1)>;

/// Transforms dimension 1 (each contiguous row) of every op, pairing rows
/// (2p, 2p+1) through one complex FFT. All (op, pair) items of every op fan
/// out in a single pool dispatch; serial when pool is null.
void run_rows(const PassOp* ops, std::size_t num_ops, std::size_t rows,
              std::size_t cols, ThreadPool* pool, PlanScratch& scratch);

/// Transforms dimension 0 (each strided column) of every op, pairing
/// adjacent columns — a column pair is 16-byte contiguous at every element,
/// so there is no gather/scatter copy. `hook`, when non-null, fires once
/// per finished column pair.
void run_cols(const PassOp* ops, std::size_t num_ops, std::size_t rows,
              std::size_t cols, ThreadPool* pool, PlanScratch& scratch,
              const ColHook* hook = nullptr);

/// The pair core (exposed for tests): transform sequences a and b — length
/// p.n, elements at `stride` — in one complex FFT. sb may equal sa (the
/// self-pair used for an odd leftover line); z is scratch of 2·p.n doubles.
void transform_pair(const Plan& p, Kind1D kind, const double* sa,
                    const double* sb, double* da, double* db,
                    std::size_t stride, double* z);

}  // namespace xplace::fft
