#include "fft/plan.h"

#include <atomic>
#include <cassert>
#include <cmath>
#include <mutex>
#include <numbers>

#include "util/simd.h"
#include "util/thread_pool.h"

namespace xplace::fft {
namespace {

Plan* build_plan(std::size_t n) {
  Plan* p = new Plan;
  p->n = n;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    p->stage_off.push_back(p->tw.size());
    const std::size_t step = n / len;
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(k * step) / static_cast<double>(n);
      p->tw.emplace_back(std::cos(ang), std::sin(ang));
    }
  }
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      p->rev_i.push_back(static_cast<std::uint32_t>(i));
      p->rev_j.push_back(static_cast<std::uint32_t>(j));
    }
  }
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  p->brev.resize(n);
  p->fwd_perm.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    std::size_t r = 0;
    for (std::size_t t = 0; t < bits; ++t) r |= ((j >> t) & 1u) << (bits - 1 - t);
    p->brev[j] = static_cast<std::uint32_t>(r);
    // Makhoul pack: slot t reads x[2t] (t < n/2) or x[2(n-1-t)+1] (t ≥ n/2);
    // composed with the bit-reversal so the head gathers once.
    const std::size_t src = r < n / 2 ? 2 * r : 2 * (n - 1 - r) + 1;
    p->fwd_perm[j] = static_cast<std::uint32_t>(src);
  }
  p->ph.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -std::numbers::pi * static_cast<double>(k) /
                       (2.0 * static_cast<double>(n));
    p->ph[k] = Complex(std::cos(ang), std::sin(ang));
  }
  return p;
}

}  // namespace

const Plan& plan(std::size_t n) {
  assert(is_pow2(n) && n >= 2);
  // One atomic slot per log2(n): the hot path is a single acquire-load.
  // First build per size takes a mutex; plans live for the process.
  static std::atomic<const Plan*> slots[64] = {};
  std::size_t lg = 0;
  while ((std::size_t{1} << lg) < n) ++lg;
  std::atomic<const Plan*>& slot = slots[lg];
  const Plan* got = slot.load(std::memory_order_acquire);
  if (got != nullptr) return *got;
  static std::mutex build_mutex;
  std::lock_guard<std::mutex> lock(build_mutex);
  got = slot.load(std::memory_order_relaxed);
  if (got == nullptr) {
    got = build_plan(n);
    slot.store(got, std::memory_order_release);
  }
  return *got;
}

void transform_pair(const Plan& p, Kind1D kind, const double* sa,
                    const double* sb, double* da, double* db,
                    std::size_t stride, double* z) {
  const simd::Kernels& k = simd::active();
  const std::size_t n = p.n;
  const double* twd = p.tw_flat();
  if (kind == Kind1D::kDct) {
    k.plan_fwd_head(sa, sb, stride, p.fwd_perm.data(), z, n);
    std::size_t s = 1;  // stage index of len = 4
    for (std::size_t len = 4; len <= n / 2; len <<= 1, ++s) {
      k.fft_pass(z, twd + 2 * p.stage_off[s], n, len, /*step=*/1);
    }
    k.plan_fwd_tail(z, p.tw_last(), p.ph_flat(), da, db, stride, n);
  } else {
    const int sine = kind == Kind1D::kIdxst ? 1 : 0;
    k.plan_inv_head(sa, sb, stride, p.brev.data(), p.ph_flat(), z, n, sine);
    std::size_t s = 1;
    for (std::size_t len = 4; len <= n / 2; len <<= 1, ++s) {
      k.fft_pass(z, twd + 2 * p.stage_off[s], n, len, /*step=*/1);
    }
    k.plan_inv_tail(z, p.tw_last(), da, db, stride, n, sine);
  }
}

namespace {

/// Length-1 lines: dct/idct are the identity, idxst vanishes.
void copy_or_zero(const PassOp& op, std::size_t count, std::size_t stride) {
  for (std::size_t i = 0; i < count; ++i) {
    op.dst[i * stride] =
        op.kind == Kind1D::kIdxst ? 0.0 : op.src[i * stride];
  }
}

template <typename Item>
void fan_out(std::size_t total, std::size_t n, ThreadPool* pool,
             PlanScratch& scratch, const Item& item) {
  if (pool != nullptr && pool->size() > 1 && total >= 2) {
    scratch.reserve(n, pool->size());
    pool->parallel_for(
        total,
        [&](std::size_t b, std::size_t e, std::size_t w) {
          double* z = scratch.slot(w);
          for (std::size_t t = b; t < e; ++t) item(t, z);
        },
        /*grain=*/2);
    return;
  }
  scratch.reserve(n, 1);
  double* z = scratch.slot(0);
  for (std::size_t t = 0; t < total; ++t) item(t, z);
}

}  // namespace

void run_rows(const PassOp* ops, std::size_t num_ops, std::size_t rows,
              std::size_t cols, ThreadPool* pool, PlanScratch& scratch) {
  if (num_ops == 0 || rows == 0) return;
  if (cols == 1) {
    for (std::size_t o = 0; o < num_ops; ++o) copy_or_zero(ops[o], rows, 1);
    return;
  }
  const Plan& p = plan(cols);
  const std::size_t pairs = (rows + 1) / 2;
  fan_out(pairs * num_ops, cols, pool, scratch,
          [&](std::size_t t, double* z) {
            const PassOp& op = ops[t / pairs];
            const std::size_t r0 = 2 * (t % pairs);
            const std::size_t r1 = r0 + 1 < rows ? r0 + 1 : r0;
            transform_pair(p, op.kind, op.src + r0 * cols, op.src + r1 * cols,
                           op.dst + r0 * cols, op.dst + r1 * cols,
                           /*stride=*/1, z);
          });
}

void run_cols(const PassOp* ops, std::size_t num_ops, std::size_t rows,
              std::size_t cols, ThreadPool* pool, PlanScratch& scratch,
              const ColHook* hook) {
  if (num_ops == 0 || cols == 0) return;
  if (rows == 1) {
    for (std::size_t o = 0; o < num_ops; ++o) copy_or_zero(ops[o], cols, 1);
    if (hook != nullptr) {
      for (std::size_t c = 0; c < cols; c += 2) {
        (*hook)(c, c + 1 < cols ? c + 1 : c);
      }
    }
    return;
  }
  // A hook needs the pair complete when it fires; with several ops the same
  // pair lives in several independent work items, so fusion is only sound
  // for a single-op pass (the Poisson forward — its only user).
  assert(hook == nullptr || num_ops == 1);
  const Plan& p = plan(rows);
  const std::size_t pairs = (cols + 1) / 2;
  fan_out(pairs * num_ops, rows, pool, scratch,
          [&](std::size_t t, double* z) {
            const PassOp& op = ops[t / pairs];
            const std::size_t c0 = 2 * (t % pairs);
            const std::size_t c1 = c0 + 1 < cols ? c0 + 1 : c0;
            transform_pair(p, op.kind, op.src + c0, op.src + c1, op.dst + c0,
                           op.dst + c1, /*stride=*/cols, z);
            if (hook != nullptr) (*hook)(c0, c1);
          });
}

}  // namespace xplace::fft
