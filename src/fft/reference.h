// Naive O(N²) reference transforms used only by tests to validate the fast
// FFT/DCT implementations.
#pragma once

#include <complex>
#include <vector>

namespace xplace::fft::reference {

std::vector<std::complex<double>> dft(const std::vector<std::complex<double>>& x);

/// X_k = Σ_n x_n cos(πk(2n+1)/(2N))  (unnormalized DCT-II).
std::vector<double> dct2_naive_1d(const std::vector<double>& x);

/// Exact inverse of dct2_naive_1d: x_n = (1/N)(X_0 + 2 Σ_{k≥1} X_k cos(...)).
std::vector<double> idct_naive_1d(const std::vector<double>& x);

/// y_n = Σ_k α_k X_k sin(πk(2n+1)/(2N)) with α_0 = 1/N, α_{k>0} = 2/N.
std::vector<double> idxst_naive_1d(const std::vector<double>& x);

}  // namespace xplace::fft::reference
