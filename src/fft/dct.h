// Discrete cosine / sine transforms built on the radix-2 FFT.
//
// These are the spectral kernels of the ePlace electrostatic solver
// (Equation (5) of the Xplace paper):
//
//   dct       X_k = Σ_n x_n cos(πk(2n+1)/(2N))            (DCT-II, unnormalized)
//   idct      exact inverse of dct — includes the 1/N and the halved k=0 term
//   idxst     y_n = Σ_k α_k X_k sin(πk(2n+1)/(2N)),  α_0 = 1/N, α_{k>0} = 2/N
//             (the sine synthesis paired with idct's normalization; the k=0
//             term vanishes so α_0 is irrelevant)
//
// 2-D combinations follow DREAMPlace's naming: `idxst_idct` applies the sine
// synthesis along dimension 0 (x / rows) and cosine synthesis along dimension
// 1 (y / cols); `idct_idxst` is the transpose pairing. All sizes must be
// powers of two.
#pragma once

#include <cstddef>
#include <vector>

namespace xplace {
class ThreadPool;
}

namespace xplace::fft {

/// In-place 1-D transforms on length-n buffers (n a power of two).
void dct(double* x, std::size_t n);
void idct(double* x, std::size_t n);
void idxst(double* x, std::size_t n);

/// Row-major 2-D transforms over rows×cols (both powers of two).
/// Dimension 0 = rows (x), dimension 1 = cols (y).
///
/// When `pool` is non-null (and larger than one worker) the independent
/// row-pair transforms — and then the column pairs — are partitioned across
/// it via the plan engine's run_rows/run_cols (fft/plan.h); each pair
/// touches a disjoint slice and its own scratch slot, so the result is
/// bitwise-identical to the serial pass for ANY worker count.
void dct2(double* data, std::size_t rows, std::size_t cols,
          ThreadPool* pool = nullptr);
void idct2(double* data, std::size_t rows, std::size_t cols,
           ThreadPool* pool = nullptr);
void idxst_idct(double* data, std::size_t rows, std::size_t cols,
                ThreadPool* pool = nullptr);
void idct_idxst(double* data, std::size_t rows, std::size_t cols,
                ThreadPool* pool = nullptr);

/// Vector conveniences used by tests.
std::vector<double> dct(const std::vector<double>& x);
std::vector<double> idct(const std::vector<double>& x);
std::vector<double> idxst(const std::vector<double>& x);

}  // namespace xplace::fft
