#include "core/checkpoint.h"

#include "core/gradient_engine.h"
#include "core/optimizer.h"
#include "core/scheduler.h"
#include "db/database.h"

namespace xplace::core {

RunCheckpoint capture_checkpoint(const db::Database& db, int optimizer_kind,
                                 int next_iter, double gamma, double overflow,
                                 double best_hpwl, double hpwl,
                                 const Optimizer& opt, const Scheduler& sched,
                                 const GradientEngine& engine) {
  RunCheckpoint ck;
  ck.design = db.design_name();
  ck.n_total = db.num_cells_total();
  ck.n_movable = db.num_movable();
  ck.optimizer_kind = optimizer_kind;
  ck.next_iter = next_iter;
  ck.gamma = gamma;
  ck.overflow = overflow;
  ck.best_hpwl = best_hpwl;
  ck.hpwl = hpwl;
  opt.save_state(ck.optimizer);
  sched.save_state(ck.scheduler);
  engine.save_state(ck.engine);
  return ck;
}

void restore_checkpoint(const RunCheckpoint& ck, const db::Database& db,
                        int optimizer_kind, Optimizer& opt, Scheduler& sched,
                        GradientEngine& engine) {
  if (ck.n_total != db.num_cells_total() || ck.n_movable != db.num_movable()) {
    throw std::runtime_error(
        "checkpoint for '" + ck.design + "' has " +
        std::to_string(ck.n_total) + " cells but the database has " +
        std::to_string(db.num_cells_total()));
  }
  if (ck.optimizer_kind != optimizer_kind) {
    throw std::runtime_error(
        "checkpoint was taken with a different optimizer (kind " +
        std::to_string(ck.optimizer_kind) + " vs " +
        std::to_string(optimizer_kind) + ")");
  }
  opt.restore_state(ck.optimizer);
  sched.restore_state(ck.scheduler);
  engine.restore_state(ck.engine);
}

}  // namespace xplace::core
