#include "core/recorder.h"

#include <cstdio>

#include "telemetry/export.h"
#include "util/logging.h"

namespace xplace::core {

std::string Recorder::to_csv() const {
  std::string out =
      "iter,hpwl,wa_wl,overflow,gamma,lambda,omega,r_ratio,step_ms,"
      "density_skipped,params_updated\n";
  char buf[256];
  for (const IterationRecord& r : records_) {
    std::snprintf(buf, sizeof(buf), "%d,%.8g,%.8g,%.6f,%.6g,%.6g,%.6f,%.6g,%.4f,%d,%d\n",
                  r.iter, r.hpwl, r.wa_wl, r.overflow, r.gamma, r.lambda,
                  r.omega, r.r_ratio, r.step_seconds * 1e3,
                  r.density_skipped ? 1 : 0, r.params_updated ? 1 : 0);
    out += buf;
  }
  return out;
}

std::string Recorder::to_jsonl() const {
  std::string out;
  out.reserve(records_.size() * 192);
  char buf[384];
  for (const IterationRecord& r : records_) {
    std::snprintf(
        buf, sizeof(buf),
        "{\"iter\":%d,\"hpwl\":%.8g,\"wa_wl\":%.8g,\"overflow\":%.6f,"
        "\"gamma\":%.6g,\"lambda\":%.6g,\"omega\":%.6f,\"r_ratio\":%.6g,"
        "\"step_ms\":%.4f,\"density_skipped\":%s,\"params_updated\":%s}\n",
        r.iter, r.hpwl, r.wa_wl, r.overflow, r.gamma, r.lambda, r.omega,
        r.r_ratio, r.step_seconds * 1e3, r.density_skipped ? "true" : "false",
        r.params_updated ? "true" : "false");
    out += buf;
  }
  return out;
}

bool Recorder::write(const std::string& path) const {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::string error;
  if (!telemetry::write_text_file(path, csv ? to_csv() : to_jsonl(), &error)) {
    XP_ERROR("recorder: cannot write %s: %s", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

}  // namespace xplace::core
