#include "core/recorder.h"

#include <cstdio>

namespace xplace::core {

std::string Recorder::to_csv() const {
  std::string out =
      "iter,hpwl,wa_wl,overflow,gamma,lambda,omega,r_ratio,step_ms,"
      "density_skipped,params_updated\n";
  char buf[256];
  for (const IterationRecord& r : records_) {
    std::snprintf(buf, sizeof(buf), "%d,%.8g,%.8g,%.6f,%.6g,%.6g,%.6f,%.6g,%.4f,%d,%d\n",
                  r.iter, r.hpwl, r.wa_wl, r.overflow, r.gamma, r.lambda,
                  r.omega, r.r_ratio, r.step_seconds * 1e3,
                  r.density_skipped ? 1 : 0, r.params_updated ? 1 : 0);
    out += buf;
  }
  return out;
}

}  // namespace xplace::core
