// GlobalPlacer: the placement core engine of Figure 1 — gradient engine,
// optimizer, evaluator/recorder and scheduler wired into the GP loop.
//
// Usage:
//   db.finalize();                         // parser or generator output
//   GlobalPlacer placer(db, PlacerConfig::xplace());
//   GlobalPlaceResult res = placer.run();  // writes positions back into db
//
// The placer inserts filler cells into `db` (if not present), initializes
// movable cells at the region center (ePlace-style), and on completion writes
// the final movable positions back into the database (fillers are dropped
// from the result; they exist only inside the electrostatic system).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/gradient_engine.h"
#include "core/guardian.h"
#include "core/optimizer.h"
#include "core/recorder.h"
#include "core/scheduler.h"
#include "db/database.h"
#include "db/design_snapshot.h"
#include "telemetry/metrics.h"
#include "util/execution.h"
#include "util/stop_token.h"

namespace xplace::core {

/// Why the GP loop ended. Exactly one reason per run; the `converged` /
/// `diverged` bools of GlobalPlaceResult are derived views of this.
/// Numeric values are stable (published as the `gp.stop_reason` gauge and in
/// serialized job records).
enum class StopReason : int {
  kConverged = 0,  ///< stop_overflow reached
  kIterCap = 1,    ///< max_iters exhausted before convergence
  kDiverged = 2,   ///< sentinel/divergence stop; best snapshot committed
  kCancelled = 3,  ///< StopToken cancel; best snapshot committed
  kDeadline = 4,   ///< StopToken deadline; best snapshot committed
};

const char* to_string(StopReason reason);

struct GlobalPlaceResult {
  double hpwl = 0.0;          ///< final exact HPWL
  double overflow = 0.0;      ///< final overflow ratio
  int iterations = 0;
  double gp_seconds = 0.0;    ///< wall-clock of the GP loop
  double avg_iter_ms = 0.0;
  StopReason stop_reason = StopReason::kIterCap;
  bool converged = false;     ///< == (stop_reason == kConverged)
  std::uint64_t kernel_launches = 0;  ///< dispatcher launches in the loop
  // Run-guardian outcome.
  bool diverged = false;      ///< == (stop_reason == kDiverged)
  int rollbacks = 0;          ///< rollback-and-retune recoveries performed
  int sentinel_trips = 0;     ///< NONFINITE/SPIKE sentinel classifications
  // Hill-climb kick outcome (cfg.kicks > 0).
  int kicks_attempted = 0;
  int kicks_accepted = 0;     ///< kicks that improved the committed HPWL
};

class GlobalPlacer {
 public:
  /// `db` must be finalized; fillers are inserted here if absent.
  GlobalPlacer(db::Database& db, const PlacerConfig& cfg);
  /// Snapshot entry point: materializes a private copy-on-write run state
  /// from the shared immutable snapshot (which stays alive for the placer's
  /// lifetime). A run over a cached snapshot is bit-identical to a run over
  /// a fresh parse of the same design with the same config.
  GlobalPlacer(std::shared_ptr<const db::DesignSnapshot> snapshot,
               const PlacerConfig& cfg);
  ~GlobalPlacer();

  /// The database this run mutates (the caller's db, or the snapshot-
  /// materialized private state). Legalization/detailed placement run here.
  db::Database& db() { return *db_; }
  const db::Database& db() const { return *db_; }

  /// Optional neural guidance (Section 3.3); must outlive run().
  void set_field_guidance(FieldGuidance* guidance);

  /// Optional cooperative stop (cancel / deadline); must outlive run().
  /// Polled once per GP iteration: on a fired token the loop exits with
  /// stop_reason kCancelled/kDeadline, commits the guardian's best-known
  /// snapshot when one exists (same path as a divergent stop), and writes
  /// finite positions back into the database — a cancelled run still yields
  /// a usable placement. Null (default) disables polling.
  void set_stop_token(const StopToken* token) { stop_ = token; }

  /// Called right after each periodic checkpoint (cfg.checkpoint_out /
  /// checkpoint_period) has been durably written, with the iteration the
  /// checkpoint resumes at and the file path. Drivers that journal resume
  /// points (xplace-serve's WAL) hook here — by the time the observer runs,
  /// the XPCK on disk is a valid crash-recovery point.
  void set_checkpoint_observer(
      std::function<void(int next_iter, const std::string& path)> obs) {
    checkpoint_obs_ = std::move(obs);
  }

  GlobalPlaceResult run();

  const Recorder& recorder() const { return recorder_; }
  /// Mutable recorder access: drivers install a streaming observer here
  /// (see Recorder::set_observer) before run().
  Recorder& recorder() { return recorder_; }
  const GradientEngine& engine() const { return *engine_; }
  /// The execution backend the placer built from cfg.threads (shared pool for
  /// the whole flow — the driver hands it on to legalization / detailed
  /// placement so GP/LG/DP run on one pool).
  const ExecutionContext& execution() const { return exec_; }
  /// Run guardian (sentinels, snapshots, rollback, fault injection). Tests
  /// arm fault plans through this before run().
  Guardian& guardian() { return *guardian_; }

 private:
  void init();
  void init_positions();

  /// Rolling state of the descent loop, shared between the main segment and
  /// the kick segments so a kick continues the same trajectory bookkeeping.
  struct LoopState {
    std::vector<float> grad_x, grad_y;
    double best_hpwl = 1e300;
    double gamma = 0.0;
    double overflow = 1.0;
    double last_hpwl = 0.0;  ///< HPWL of the newest completed iteration
    telemetry::Histogram* step_hist = nullptr;
  };
  /// One bounded descent segment: iterations [start_iter, iter_cap), stopping
  /// early on convergence (not before min_iters), divergence, or the stop
  /// token. Returns the reason the segment ended and keeps result.iterations /
  /// result.stop_reason in sync.
  StopReason run_segment(int start_iter, int iter_cap, int min_iters,
                         LoopState& st, GlobalPlaceResult& result);
  /// Writes the optimizer's committed solution back into the database
  /// (movable cells + fillers).
  void commit_solution();
  /// Perturb-and-re-anneal hill climb (cfg_.kicks > 0): bounded random kick of
  /// the movable cells, λ/γ re-anneal, bounded re-descent, accept-if-better
  /// against the incumbent checkpoint. Leaves the incumbent (best) solution
  /// committed in the optimizer/db on return.
  void kick_phase(LoopState& st, GlobalPlaceResult& result);

  std::shared_ptr<const db::DesignSnapshot> snapshot_;  ///< keeps the shared core alive
  std::unique_ptr<db::Database> owned_db_;  ///< snapshot-materialized run state
  db::Database* db_;
  PlacerConfig cfg_;
  const StopToken* stop_ = nullptr;
  std::function<void(int, const std::string&)> checkpoint_obs_;
  ExecutionContext exec_;  ///< must outlive engine_ (engine holds a pointer)
  std::unique_ptr<GradientEngine> engine_;
  std::unique_ptr<Preconditioner> precond_;
  std::unique_ptr<Optimizer> optimizer_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<Guardian> guardian_;
  Recorder recorder_;
};

}  // namespace xplace::core
