// Optimizers for the global placement objective.
//
// The primary optimizer is ePlace's Nesterov scheme with Lipschitz-constant
// steplength prediction: the step is η_k = ‖v_k − v_{k−1}‖ / ‖g̃_k − g̃_{k−1}‖
// over the preconditioned gradients g̃, which adapts automatically as λ grows.
// Adam is provided as an alternative (the placement-as-training view of
// DREAMPlace); Nesterov consistently converges faster on these objectives.
//
// The preconditioner is the diagonal of H̃_W + λH̃_D (Section 3.2):
// precond_i = max(1, |S_i| + λ·A_i), with |S_i| = 0 for fillers.
#pragma once

#include <cstddef>
#include <vector>

#include "core/checkpoint.h"
#include "core/config.h"
#include "db/database.h"

namespace xplace::core {

class Preconditioner {
 public:
  explicit Preconditioner(const db::Database& db);

  /// In-place divide grads by max(1, |S_i| + λ A_i). One kernel launch
  /// (in-place, OR style) or two (out-of-place) per call depending on
  /// `in_place`.
  void apply(float lambda, float* grad_x, float* grad_y, bool in_place) const;

  /// ω = λ·Σ A_i / (Σ|S_i| + λ·Σ A_i) over movable cells — the placement
  /// stage indicator of Section 3.2.
  double omega(double lambda) const {
    return lambda * sum_area_ / (sum_nets_ + lambda * sum_area_);
  }

 private:
  std::vector<float> num_nets_;  ///< |S_i| per cell (0 for fillers)
  std::vector<float> area_;      ///< A_i per cell
  double sum_nets_ = 0.0;        ///< Σ|S_i| over movable
  double sum_area_ = 0.0;        ///< ΣA_i over movable
  std::size_t n_total_;
  mutable std::vector<float> scratch_;  ///< out-of-place result buffer
};

/// Interface shared by the optimizers. Positions are center coordinates of
/// ALL cells (movable + fixed + filler); only movable and filler entries are
/// updated — fixed cells never move.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// One step given the preconditioned gradient evaluated at the *query
  /// point* returned by the previous query()/initial positions. Returns the
  /// positions to evaluate the next gradient at.
  virtual void step(const float* grad_x, const float* grad_y) = 0;

  /// Current query point (where the gradient should be evaluated).
  virtual const float* query_x() const = 0;
  virtual const float* query_y() const = 0;

  /// Best-known solution positions (for Nesterov, the major iterate u_k).
  virtual const float* solution_x() const = 0;
  virtual const float* solution_y() const = 0;

  /// Full trajectory state (iterates + steplength bookkeeping) for the run
  /// guardian's snapshots and the on-disk checkpoint. restore_state() with a
  /// blob from save_state() reproduces the trajectory bit-for-bit.
  virtual void save_state(StateBlob& out) const = 0;
  virtual void restore_state(const StateBlob& in) = 0;

  /// Post-rollback retune: shrink the steplength bounds by `scale` and reset
  /// momentum, so the retried trajectory is more conservative than the one
  /// that diverged.
  virtual void retune(double scale) = 0;
};

class NesterovOptimizer : public Optimizer {
 public:
  NesterovOptimizer(const db::Database& db, const PlacerConfig& cfg,
                    int grid_dim);

  void step(const float* grad_x, const float* grad_y) override;
  const float* query_x() const override { return v_x_.data(); }
  const float* query_y() const override { return v_y_.data(); }
  const float* solution_x() const override { return u_x_.data(); }
  const float* solution_y() const override { return u_y_.data(); }
  void save_state(StateBlob& out) const override;
  void restore_state(const StateBlob& in) override;
  void retune(double scale) override;

 private:
  void clamp(std::vector<float>& x, std::vector<float>& y) const;

  const db::Database& db_;
  std::size_t n_total_, n_movable_, n_physical_;
  double bin_size_;
  double initial_step_, max_step_;
  double a_k_ = 1.0;
  bool first_ = true;

  std::vector<float> u_x_, u_y_;  ///< major iterates
  std::vector<float> v_x_, v_y_;  ///< lookahead (gradient query) points
  std::vector<float> v_prev_x_, v_prev_y_;
  std::vector<float> g_prev_x_, g_prev_y_;
  // Region clamp bounds per cell (inset by the half-size).
  std::vector<float> min_x_, max_x_, min_y_, max_y_;
};

class AdamOptimizer : public Optimizer {
 public:
  AdamOptimizer(const db::Database& db, const PlacerConfig& cfg, int grid_dim,
                double lr_bins = 1.0);

  void step(const float* grad_x, const float* grad_y) override;
  const float* query_x() const override { return x_.data(); }
  const float* query_y() const override { return y_.data(); }
  const float* solution_x() const override { return x_.data(); }
  const float* solution_y() const override { return y_.data(); }
  void save_state(StateBlob& out) const override;
  void restore_state(const StateBlob& in) override;
  void retune(double scale) override;

 private:
  const db::Database& db_;
  std::size_t n_total_, n_physical_;
  double lr_;
  double beta1_ = 0.9, beta2_ = 0.999, eps_ = 1e-8;
  long t_ = 0;
  std::vector<float> x_, y_;
  std::vector<float> m_x_, m_y_, v2_x_, v2_y_;
  std::vector<float> min_x_, max_x_, min_y_, max_y_;
};

/// Builds the per-cell clamp bounds shared by the optimizers: centers stay
/// inside the region inset by each cell's half extent (fixed cells get
/// degenerate bounds at their position).
void build_clamp_bounds(const db::Database& db, std::vector<float>& min_x,
                        std::vector<float>& max_x, std::vector<float>& min_y,
                        std::vector<float>& max_y);

}  // namespace xplace::core
