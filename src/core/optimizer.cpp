#include "core/optimizer.h"

#include <algorithm>
#include <cmath>

#include "tensor/dispatch.h"
#include "util/simd.h"

namespace xplace::core {

using tensor::Dispatcher;

// ---------------- Preconditioner ----------------

Preconditioner::Preconditioner(const db::Database& db)
    : n_total_(db.num_cells_total()) {
  num_nets_.resize(n_total_);
  area_.resize(n_total_);
  scratch_.resize(n_total_);
  for (std::size_t c = 0; c < n_total_; ++c) {
    num_nets_[c] = static_cast<float>(db.cell_num_nets(c));
    area_[c] = static_cast<float>(db.area(c));
  }
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    sum_nets_ += num_nets_[c];
    sum_area_ += area_[c];
  }
}

void Preconditioner::apply(float lambda, float* grad_x, float* grad_y,
                           bool in_place) const {
  auto& disp = Dispatcher::global();
  if (in_place) {
    // The scalar kernel is the historical loop verbatim; the AVX2 kernel is
    // bitwise-equal (mul+add+max+div, no FMA), so this routes unconditionally.
    disp.run("precond.apply_", [&] {
      simd::active().precond_apply(grad_x, grad_y, num_nets_.data(),
                                   area_.data(), lambda, n_total_);
    });
  } else {
    // Expression-graph style: compute the divisor tensor, then two divides.
    disp.run("precond.build", [&] {
      for (std::size_t c = 0; c < n_total_; ++c)
        scratch_[c] = std::max(1.0f, num_nets_[c] + lambda * area_[c]);
    });
    disp.run("precond.div", [&] {
      for (std::size_t c = 0; c < n_total_; ++c) grad_x[c] /= scratch_[c];
    });
    disp.run("precond.div", [&] {
      for (std::size_t c = 0; c < n_total_; ++c) grad_y[c] /= scratch_[c];
    });
  }
}

// ---------------- clamp bounds ----------------

void build_clamp_bounds(const db::Database& db, std::vector<float>& min_x,
                        std::vector<float>& max_x, std::vector<float>& min_y,
                        std::vector<float>& max_y) {
  const std::size_t n = db.num_cells_total();
  min_x.resize(n);
  max_x.resize(n);
  min_y.resize(n);
  max_y.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    if (db.kind(c) == db::CellKind::kFixed) {
      min_x[c] = max_x[c] = static_cast<float>(db.x(c));
      min_y[c] = max_y[c] = static_cast<float>(db.y(c));
      continue;
    }
    // Fenced cells are confined to their fence rectangle (which keeps the
    // fence constraint feasible throughout GP); everyone else to the region.
    RectD bounds = db.region();
    const int fence = db.cell_fence(c);
    if (fence >= 0) bounds = db.fences()[fence].rect.intersection(bounds);
    const double hw = std::min(db.width(c) * 0.5, bounds.width() * 0.5);
    const double hh = std::min(db.height(c) * 0.5, bounds.height() * 0.5);
    min_x[c] = static_cast<float>(bounds.lx + hw);
    max_x[c] = static_cast<float>(bounds.hx - hw);
    min_y[c] = static_cast<float>(bounds.ly + hh);
    max_y[c] = static_cast<float>(bounds.hy - hh);
    if (max_x[c] < min_x[c]) max_x[c] = min_x[c];
    if (max_y[c] < min_y[c]) max_y[c] = min_y[c];
  }
}

// ---------------- Nesterov ----------------

NesterovOptimizer::NesterovOptimizer(const db::Database& db,
                                     const PlacerConfig& cfg, int grid_dim)
    : db_(db),
      n_total_(db.num_cells_total()),
      n_movable_(db.num_movable()),
      n_physical_(db.num_physical()) {
  bin_size_ = std::min(db.region().width(), db.region().height()) / grid_dim;
  initial_step_ = cfg.initial_step_bins * bin_size_;
  max_step_ = cfg.max_step_bins * bin_size_;
  u_x_.resize(n_total_);
  u_y_.resize(n_total_);
  for (std::size_t c = 0; c < n_total_; ++c) {
    u_x_[c] = static_cast<float>(db.x(c));
    u_y_[c] = static_cast<float>(db.y(c));
  }
  build_clamp_bounds(db, min_x_, max_x_, min_y_, max_y_);
  clamp(u_x_, u_y_);
  v_x_ = u_x_;
  v_y_ = u_y_;
  v_prev_x_ = v_x_;
  v_prev_y_ = v_y_;
  g_prev_x_.assign(n_total_, 0.0f);
  g_prev_y_.assign(n_total_, 0.0f);
}

void NesterovOptimizer::clamp(std::vector<float>& x,
                              std::vector<float>& y) const {
  for (std::size_t c = 0; c < n_total_; ++c) {
    x[c] = std::clamp(x[c], min_x_[c], max_x_[c]);
    y[c] = std::clamp(y[c], min_y_[c], max_y_[c]);
  }
}

void NesterovOptimizer::step(const float* grad_x, const float* grad_y) {
  auto& disp = Dispatcher::global();

  // Steplength: Lipschitz prediction η = ‖Δv‖ / ‖Δg‖ (one reduce launch).
  double eta = initial_step_;
  if (!first_) {
    double dv2 = 0.0, dg2 = 0.0;
    disp.run("nesterov.lipschitz_reduce", [&] {
      const simd::Kernels& k = simd::active();
      if (k.isa == simd::Isa::kScalar) {
        for (std::size_t c = 0; c < n_total_; ++c) {
          const double dvx = v_x_[c] - v_prev_x_[c];
          const double dvy = v_y_[c] - v_prev_y_[c];
          const double dgx = grad_x[c] - g_prev_x_[c];
          const double dgy = grad_y[c] - g_prev_y_[c];
          dv2 += dvx * dvx + dvy * dvy;
          dg2 += dgx * dgx + dgy * dgy;
        }
        return;
      }
      dv2 = k.diff_sq_sum(v_x_.data(), v_prev_x_.data(), n_total_) +
            k.diff_sq_sum(v_y_.data(), v_prev_y_.data(), n_total_);
      dg2 = k.diff_sq_sum(grad_x, g_prev_x_.data(), n_total_) +
            k.diff_sq_sum(grad_y, g_prev_y_.data(), n_total_);
    });
    if (dg2 > 1e-30 && dv2 > 1e-30) {
      eta = std::sqrt(dv2 / dg2);
    }
  } else {
    // Scale the first step so the mean displacement is initial_step_.
    double gsum = 0.0;
    std::size_t moving = 0;
    disp.run("nesterov.first_step_reduce", [&] {
      for (std::size_t c = 0; c < n_total_; ++c) {
        if (min_x_[c] == max_x_[c] && min_y_[c] == max_y_[c]) continue;  // fixed
        gsum += std::fabs(grad_x[c]) + std::fabs(grad_y[c]);
        ++moving;
      }
    });
    if (gsum > 1e-30) eta = initial_step_ * (2.0 * moving) / gsum;
    first_ = false;
  }

  // Clamp η so no cell moves more than max_step_ this iteration.
  float gmax = 0.0f;
  disp.run("nesterov.gmax_reduce", [&] {
    const simd::Kernels& k = simd::active();
    if (k.isa == simd::Isa::kScalar) {
      for (std::size_t c = 0; c < n_total_; ++c) {
        gmax = std::max(gmax,
                        std::max(std::fabs(grad_x[c]), std::fabs(grad_y[c])));
      }
      return;
    }
    gmax = std::max(k.abs_max(grad_x, n_total_), k.abs_max(grad_y, n_total_));
  });
  if (gmax > 0.0f && eta * gmax > max_step_) eta = max_step_ / gmax;

  // Nesterov update (one fused in-place launch):
  //   u⁺ = clamp(v − η g);  a⁺ = (1+√(4a²+1))/2;
  //   v⁺ = clamp(u⁺ + (a−1)/a⁺ · (u⁺ − u)).
  const double a_next = (1.0 + std::sqrt(4.0 * a_k_ * a_k_ + 1.0)) * 0.5;
  const float coef = static_cast<float>((a_k_ - 1.0) / a_next);
  a_k_ = a_next;
  disp.run("nesterov.update_", [&] {
    const simd::Kernels& k = simd::active();
    if (k.isa == simd::Isa::kScalar) {
      for (std::size_t c = 0; c < n_total_; ++c) {
        v_prev_x_[c] = v_x_[c];
        v_prev_y_[c] = v_y_[c];
        g_prev_x_[c] = grad_x[c];
        g_prev_y_[c] = grad_y[c];
        const float ux_new =
            std::clamp(static_cast<float>(v_x_[c] - eta * grad_x[c]),
                       min_x_[c], max_x_[c]);
        const float uy_new =
            std::clamp(static_cast<float>(v_y_[c] - eta * grad_y[c]),
                       min_y_[c], max_y_[c]);
        v_x_[c] = std::clamp(ux_new + coef * (ux_new - u_x_[c]), min_x_[c],
                             max_x_[c]);
        v_y_[c] = std::clamp(uy_new + coef * (uy_new - u_y_[c]), min_y_[c],
                             max_y_[c]);
        u_x_[c] = ux_new;
        u_y_[c] = uy_new;
      }
      return;
    }
    // Per-axis fused update: elements are independent, so splitting x/y
    // changes nothing, and the kernel's double-precision η·g math matches
    // the scalar expression rounding-for-rounding.
    k.nesterov_update(v_x_.data(), v_prev_x_.data(), g_prev_x_.data(),
                      u_x_.data(), grad_x, min_x_.data(), max_x_.data(),
                      n_total_, eta, coef);
    k.nesterov_update(v_y_.data(), v_prev_y_.data(), g_prev_y_.data(),
                      u_y_.data(), grad_y, min_y_.data(), max_y_.data(),
                      n_total_, eta, coef);
  });
}

void NesterovOptimizer::save_state(StateBlob& out) const {
  out.put_array("u_x", u_x_);
  out.put_array("u_y", u_y_);
  out.put_array("v_x", v_x_);
  out.put_array("v_y", v_y_);
  out.put_array("v_prev_x", v_prev_x_);
  out.put_array("v_prev_y", v_prev_y_);
  out.put_array("g_prev_x", g_prev_x_);
  out.put_array("g_prev_y", g_prev_y_);
  out.put_scalar("a_k", a_k_);
  out.put_scalar("first", first_ ? 1.0 : 0.0);
  out.put_scalar("initial_step", initial_step_);
  out.put_scalar("max_step", max_step_);
}

void NesterovOptimizer::restore_state(const StateBlob& in) {
  u_x_ = in.array("u_x");
  u_y_ = in.array("u_y");
  v_x_ = in.array("v_x");
  v_y_ = in.array("v_y");
  v_prev_x_ = in.array("v_prev_x");
  v_prev_y_ = in.array("v_prev_y");
  g_prev_x_ = in.array("g_prev_x");
  g_prev_y_ = in.array("g_prev_y");
  a_k_ = in.scalar("a_k");
  first_ = in.scalar("first") != 0.0;
  initial_step_ = in.scalar("initial_step");
  max_step_ = in.scalar("max_step");
  if (u_x_.size() != n_total_) {
    throw std::runtime_error("optimizer state has " +
                             std::to_string(u_x_.size()) + " cells, expected " +
                             std::to_string(n_total_));
  }
}

void NesterovOptimizer::retune(double scale) {
  // Shrink only the restart step: the Lipschitz estimate re-derives the
  // working steplength within a few iterations, so permanently tightening
  // max_step_ would slow the whole remaining run, not just the retry.
  initial_step_ *= scale;
  // Reset the momentum sequence and the Lipschitz history: the restored
  // iterate restarts as a fresh (smaller) first step instead of inheriting
  // the velocity that diverged.
  a_k_ = 1.0;
  first_ = true;
}

// ---------------- Adam ----------------

AdamOptimizer::AdamOptimizer(const db::Database& db, const PlacerConfig& cfg,
                             int grid_dim, double lr_bins)
    : db_(db), n_total_(db.num_cells_total()), n_physical_(db.num_physical()) {
  const double bin =
      std::min(db.region().width(), db.region().height()) / grid_dim;
  lr_ = lr_bins * bin;
  (void)cfg;
  x_.resize(n_total_);
  y_.resize(n_total_);
  for (std::size_t c = 0; c < n_total_; ++c) {
    x_[c] = static_cast<float>(db.x(c));
    y_[c] = static_cast<float>(db.y(c));
  }
  m_x_.assign(n_total_, 0.0f);
  m_y_.assign(n_total_, 0.0f);
  v2_x_.assign(n_total_, 0.0f);
  v2_y_.assign(n_total_, 0.0f);
  build_clamp_bounds(db, min_x_, max_x_, min_y_, max_y_);
}

void AdamOptimizer::step(const float* grad_x, const float* grad_y) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  Dispatcher::global().run("adam.update_", [&] {
    for (std::size_t c = 0; c < n_total_; ++c) {
      m_x_[c] = static_cast<float>(beta1_ * m_x_[c] + (1 - beta1_) * grad_x[c]);
      m_y_[c] = static_cast<float>(beta1_ * m_y_[c] + (1 - beta1_) * grad_y[c]);
      v2_x_[c] = static_cast<float>(beta2_ * v2_x_[c] +
                                    (1 - beta2_) * grad_x[c] * grad_x[c]);
      v2_y_[c] = static_cast<float>(beta2_ * v2_y_[c] +
                                    (1 - beta2_) * grad_y[c] * grad_y[c]);
      const double mx = m_x_[c] / bc1, my = m_y_[c] / bc1;
      const double vx = v2_x_[c] / bc2, vy = v2_y_[c] / bc2;
      x_[c] = std::clamp(static_cast<float>(x_[c] - lr_ * mx / (std::sqrt(vx) + eps_)),
                         min_x_[c], max_x_[c]);
      y_[c] = std::clamp(static_cast<float>(y_[c] - lr_ * my / (std::sqrt(vy) + eps_)),
                         min_y_[c], max_y_[c]);
    }
  });
}

void AdamOptimizer::save_state(StateBlob& out) const {
  out.put_array("x", x_);
  out.put_array("y", y_);
  out.put_array("m_x", m_x_);
  out.put_array("m_y", m_y_);
  out.put_array("v2_x", v2_x_);
  out.put_array("v2_y", v2_y_);
  out.put_scalar("t", static_cast<double>(t_));
  out.put_scalar("lr", lr_);
}

void AdamOptimizer::restore_state(const StateBlob& in) {
  x_ = in.array("x");
  y_ = in.array("y");
  m_x_ = in.array("m_x");
  m_y_ = in.array("m_y");
  v2_x_ = in.array("v2_x");
  v2_y_ = in.array("v2_y");
  t_ = static_cast<long>(in.scalar("t"));
  lr_ = in.scalar("lr");
  if (x_.size() != n_total_) {
    throw std::runtime_error("optimizer state has " +
                             std::to_string(x_.size()) + " cells, expected " +
                             std::to_string(n_total_));
  }
}

void AdamOptimizer::retune(double scale) {
  lr_ *= scale;
  // Drop the first moment: the accumulated direction is what diverged.
  std::fill(m_x_.begin(), m_x_.end(), 0.0f);
  std::fill(m_y_.begin(), m_y_.end(), 0.0f);
}

}  // namespace xplace::core
