// Per-iteration metric recording (the "recorder" block of Figure 1).
#pragma once

#include <string>
#include <vector>

namespace xplace::core {

struct IterationRecord {
  int iter = 0;
  double hpwl = 0.0;
  double wa_wl = 0.0;
  double overflow = 0.0;
  double gamma = 0.0;
  double lambda = 0.0;
  double omega = 0.0;     ///< stage indicator (Section 3.2)
  double r_ratio = 0.0;   ///< λ|∇D| / |∇WL| (Section 3.1.4)
  double step_seconds = 0.0;
  bool density_skipped = false;
  bool params_updated = true;
};

class Recorder {
 public:
  void add(const IterationRecord& rec) { records_.push_back(rec); }
  const std::vector<IterationRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  const IterationRecord& back() const { return records_.back(); }

  /// CSV with a header row; used by the convergence-trace bench.
  std::string to_csv() const;

 private:
  std::vector<IterationRecord> records_;
};

}  // namespace xplace::core
