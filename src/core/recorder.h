// Per-iteration metric recording (the "recorder" block of Figure 1).
//
// The canonical export format is JSONL (one JSON object per iteration, the
// same fields the tracer attaches to per-iteration spans); CSV is kept as a
// thin adapter for spreadsheet tooling. `write(path)` picks the format from
// the file extension and handles I/O errors.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace xplace::core {

struct IterationRecord {
  int iter = 0;
  double hpwl = 0.0;
  double wa_wl = 0.0;
  double overflow = 0.0;
  double gamma = 0.0;
  double lambda = 0.0;
  double omega = 0.0;     ///< stage indicator (Section 3.2)
  double r_ratio = 0.0;   ///< λ|∇D| / |∇WL| (Section 3.1.4)
  double step_seconds = 0.0;  ///< measured over the same interval as the
                              ///< iteration trace span (excludes recorder/log
                              ///< overhead), so traces and exports agree
  bool density_skipped = false;
  bool params_updated = true;
};

class Recorder {
 public:
  /// Streaming hook: invoked synchronously from add() — i.e. on the GP loop
  /// thread, once per iteration — with the record just appended. The server
  /// uses this to stream per-iteration progress events to clients while a
  /// job runs; the observer must be cheap and must not re-enter the placer.
  using Observer = std::function<void(const IterationRecord&)>;

  void set_observer(Observer observer) { observer_ = std::move(observer); }

  void add(const IterationRecord& rec) {
    records_.push_back(rec);
    if (observer_) observer_(rec);
  }
  const std::vector<IterationRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  const IterationRecord& back() const { return records_.back(); }

  /// JSON-lines: one object per iteration. The canonical machine-readable
  /// sink (benches, CI, trace tooling).
  std::string to_jsonl() const;

  /// CSV with a header row; thin adapter over the same records.
  std::string to_csv() const;

  /// Writes records to `path`: CSV when the path ends in ".csv", JSONL
  /// otherwise. Returns false (and logs an error) on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::vector<IterationRecord> records_;
  Observer observer_;
};

}  // namespace xplace::core
