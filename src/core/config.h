// Global placement configuration.
//
// The four `op_*` switches correspond one-to-one to the paper's ablation rows
// (Table 3); `stage_aware_schedule` is Algorithm 1. `PlacerConfig::xplace()`
// enables everything; `PlacerConfig::dreamplace()` models the baseline
// (autograd-tape execution, unfused kernels, joint density, per-iteration
// scheduling, plus the baseline's extra per-iteration passes).
#pragma once

#include <cstdint>
#include <string>

namespace xplace::core {

enum class OptimizerKind { kNesterov, kAdam };

struct PlacerConfig {
  // ---- grid / stopping -----------------------------------------------------
  int grid_dim = 128;              ///< M (power of two)
  int max_iters = 1500;
  int min_iters = 30;
  double stop_overflow = 0.07;     ///< terminate when OVFL drops below this
  double divergence_hpwl_ratio = 5.0;  ///< abort if HPWL exceeds best × this

  // ---- operator-level optimizations (Section 3.1) ---------------------------
  bool op_reduction = true;    ///< direct numerical gradients, no autograd tape
  bool op_combination = true;  ///< fused WA-wl + grad + HPWL kernel
  bool op_extraction = true;   ///< reuse movable density map D for OVFL and D̃
  bool op_skipping = true;     ///< skip density grad when r < 0.01 ∧ iter < 100

  /// Model the baseline's additional per-iteration operator passes (pin
  /// position materialization, net-mask application, explicit syncs). Only
  /// meaningful with op_reduction == false.
  bool baseline_extra_ops = false;

  // ---- scheduling (Section 3.2) ---------------------------------------------
  bool stage_aware_schedule = true;  ///< Algorithm 1: slow updates mid-stage
  int stage_update_period = 3;       ///< parameter update period when 0.5<ω<0.95
  double omega_low = 0.5;
  double omega_high = 0.95;

  // ---- γ schedule (ePlace) ---------------------------------------------------
  /// γ = gamma_base_factor · bin_w · 10^((overflow − 0.1) · 20/9 − 1)
  double gamma_base_factor = 8.0;

  // ---- λ schedule -------------------------------------------------------------
  /// λ₀ = lambda_init_factor · Σ|∇WL| / Σ|∇D| at the first iteration.
  double lambda_init_factor = 1.0e-4;
  /// μ = clamp(mu_base^(1 − ΔHPWL/(hpwl_ref_rel·HPWL₀)), mu_min, mu_max)
  double mu_base = 1.1;
  double mu_min = 1.0;
  double mu_max = 1.1;
  double hpwl_ref_rel = 3.5e-3;

  // ---- optimizer ---------------------------------------------------------------
  OptimizerKind optimizer = OptimizerKind::kNesterov;
  double initial_step_bins = 0.10;   ///< first-step mean displacement, in bins
  double max_step_bins = 1.0;        ///< clamp per-iteration max displacement

  // ---- run guardian (numeric sentinels + divergence recovery) ----------------
  bool guardian = true;              ///< sentinels, snapshots, rollback-and-retune
  int guardian_snapshot_period = 20; ///< min iterations between best-snapshots
  int guardian_max_rollbacks = 3;    ///< retry budget before graceful stop
  double guardian_lambda_shrink = 0.5;  ///< λ multiplier applied on rollback
  double guardian_step_shrink = 0.5;    ///< restart-steplength multiplier
  /// Sentinel spike trip: Σ|g| this iteration vs its EMA must stay below this
  /// factor (injected/real blow-ups are many orders of magnitude).
  double guardian_spike_ratio = 1e3;
  double guardian_spike_ema = 0.25;  ///< EMA smoothing of the grad magnitude

  // ---- checkpoint / resume ----------------------------------------------------
  std::string checkpoint_out;  ///< periodic on-disk checkpoint path ("" = off)
  int checkpoint_period = 100; ///< iterations between checkpoint writes
  std::string resume_path;     ///< checkpoint to resume from ("" = fresh run)

  // ---- execution backend ------------------------------------------------------
  /// Worker threads for the compute kernels (GP gradients, FFT passes, LG/DP):
  ///   0  — read XPLACE_THREADS from the environment; serial when unset,
  ///   1  — force the serial backend (the historical bitwise-exact path),
  ///   N>1 — thread pool of N workers (bitwise-deterministic per fixed N),
  ///   <0 — thread pool sized to hardware concurrency.
  int threads = 0;

  // ---- local-optima escape: hill-climb kicks (arXiv 2402.18311) --------------
  /// Perturb-and-re-anneal attempts after the main descent ends (converged or
  /// iter-capped). Each kick displaces every movable cell by a bounded random
  /// offset, re-anneals λ/γ, re-runs a bounded descent segment, and keeps the
  /// result only when the committed HPWL improves — the final placement is
  /// never worse than the unkicked one. 0 disables.
  int kicks = 0;
  double kick_magnitude_bins = 2.0;  ///< max |Δx|,|Δy| per cell, in bins
  int kick_iters = 200;              ///< descent-iteration budget per kick
  int kick_min_iters = 15;           ///< re-anneal at least this long per kick
  double kick_lambda_scale = 0.5;    ///< λ multiplier applied before each kick

  // ---- misc ---------------------------------------------------------------------
  /// First-class run seed. When > 0 it derives every stochastic stream of the
  /// run (filler_seed = seed, init_noise_seed = seed + 1, and the kick RNG),
  /// so a perturbed restart is reproducible from this one number. 0 keeps the
  /// explicit per-stream seeds below.
  std::uint64_t seed = 0;
  std::uint64_t filler_seed = 1;
  std::uint64_t init_noise_seed = 2;
  /// Per-run target-density override applied before filler insertion
  /// (sweep axis for batched runs). 0 keeps the design's parse-time density.
  double target_density = 0.0;
  /// Movable cells start at the region center plus Gaussian noise of this
  /// fraction of the region size (ePlace-style initialization). Negative
  /// keeps the positions already in the database.
  double center_init_noise = 0.001;
  bool verbose = false;

  static PlacerConfig xplace();
  static PlacerConfig dreamplace();
  /// Ablation tier: reduction/combination/extraction/skipping toggled
  /// cumulatively, everything else Xplace defaults.
  static PlacerConfig ablation(bool reduction, bool combination,
                               bool extraction, bool skipping);
};

}  // namespace xplace::core
