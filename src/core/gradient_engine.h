// The gradient engine (Figure 1): evaluates the objective gradient
// ∇(Σ_e w_e WL_e + λ·D) at the current positions under one of the execution
// strategies selected by the operator-level switches in PlacerConfig.
//
// Execution strategies per iteration:
//
//   op_reduction=1, op_combination=1 (Xplace):
//     fused_wl_grad_hpwl (1 launch) + density pipeline + in-place combines.
//   op_reduction=1, op_combination=0:
//     wa_wirelength + wa_gradient + hpwl (3 launches, redundant min/max).
//   op_reduction=0:
//     elementary-op forward (~28 launches) + autograd tape backward (~12
//     nodes) + separate HPWL op + potential-energy synthesis (the loss the
//     autograd formulation differentiates) + out-of-place combines.
//
//   op_extraction=1: D (physical) and D_fl (filler) accumulated separately;
//     D̃ = D + D_fl by one elementwise add; OVFL from D.
//   op_extraction=0: D̃ accumulated jointly over all cells AND D re-accumulated
//     for the overflow — the movable scatter runs twice.
//
//   op_skipping=1: when r = λ|∇D|/|∇WL| < 0.01 and iter < 100, the density
//     pipeline (scatter + transforms + gather) executes only every 20th
//     iteration; the cached density gradient is reused in between.
//
// An optional FieldGuidance hook lets the NN extension blend a predicted
// field into the numerical one before the gather (Section 3.3, Eq. (14)).
#pragma once

#include <memory>
#include <vector>

#include "core/checkpoint.h"
#include "core/config.h"
#include "db/database.h"
#include "ops/density.h"
#include "ops/electrostatics.h"
#include "ops/netlist_view.h"
#include "ops/wirelength_tape.h"
#include "tensor/tape.h"
#include "util/execution.h"
#include "util/timer.h"

namespace xplace::core {

/// Neural field guidance interface (implemented in src/nn). `blend` may
/// modify ex/ey in place given the density map, the stage indicator ω, and
/// the gradient ratio r = λ|∇D|/|∇WL| of the previous iteration (the paper's
/// "early stage" marker from Section 3.1.4).
class FieldGuidance {
 public:
  virtual ~FieldGuidance() = default;
  virtual void blend(const double* rho, int m, double bin_w, double bin_h,
                     double omega, double r, std::vector<double>& ex,
                     std::vector<double>& ey) = 0;
};

struct GradientResult {
  double wa_wl = 0.0;
  double hpwl = 0.0;
  double overflow = 0.0;
  double wl_grad_norm = 0.0;      ///< Σ|∇WL| over movable cells
  double density_grad_norm = 0.0; ///< Σ|∇D| over movable cells (unweighted by λ)
  double r_ratio = 0.0;           ///< λ|∇D| / |∇WL|
  bool density_skipped = false;
};

class GradientEngine {
 public:
  /// `exec` selects the execution backend for the heavy kernels (null or
  /// serial → the historical single-threaded path, bit for bit). Not owned;
  /// must outlive the engine.
  GradientEngine(const db::Database& db, const PlacerConfig& cfg,
                 const ExecutionContext* exec = nullptr);

  /// Evaluate gradient at (x, y) into grad_x/grad_y (sized num_cells_total;
  /// overwritten). `omega` is the stage indicator used by the NN guidance.
  GradientResult compute(const float* x, const float* y, float gamma,
                         float lambda, int iter, double omega, float* grad_x,
                         float* grad_y);

  void set_field_guidance(FieldGuidance* guidance) { guidance_ = guidance; }

  const ops::NetlistView& view() const { return view_; }
  const ops::DensityGrid& grid() const { return grid_; }

  /// Movable-cell density map D of the most recent compute() (for debugging
  /// and the NN training-data collector).
  const std::vector<double>& density_map() const { return dmap_; }

  /// Operator-skipping cache state (cached density gradient + norms). It is
  /// part of the trajectory: a resumed run must reuse exactly the cached
  /// gradient the uninterrupted run would have, or the iterates drift.
  void save_state(StateBlob& out) const;
  void restore_state(const StateBlob& in);

  /// Accumulated wall-clock per phase (gp.phase.wirelength / density / fft /
  /// field) — the timers the `--threads` speedup is measured against.
  const TimerRegistry& phase_timers() const { return phase_timers_; }

 private:
  void wirelength_pass(const float* x, const float* y, float gamma,
                       GradientResult& res, float* grad_x, float* grad_y);
  void density_pass(const float* x, const float* y, GradientResult& res,
                    double omega);
  /// Multi-electrostatics (fence regions): one system per region, each with
  /// a static blockage map of the complement area + fixed cells, solved and
  /// gathered per member cell (DREAMPlace-3.0 style).
  void density_pass_fenced(const float* x, const float* y,
                           GradientResult& res, double omega);
  void build_fence_systems();

  /// The pool to fan kernels onto, or null for the serial backend.
  ThreadPool* pool_or_null() const {
    return exec_ != nullptr && exec_->parallel() ? exec_->pool() : nullptr;
  }

  const db::Database& db_;
  PlacerConfig cfg_;
  const ExecutionContext* exec_ = nullptr;
  mutable TimerRegistry phase_timers_;
  ops::NetlistView view_;
  ops::DensityGrid grid_;
  ops::PoissonSolver solver_;
  std::unique_ptr<ops::TapeWirelength> tape_wl_;
  tensor::Tape tape_;
  FieldGuidance* guidance_ = nullptr;

  std::size_t n_total_;     ///< cells incl. fillers
  std::size_t n_physical_;
  std::size_t n_movable_;

  std::vector<double> dmap_;       ///< movable+fixed density D
  std::vector<double> dmap_fl_;    ///< filler density D_fl
  std::vector<double> dmap_total_; ///< D̃

  // Fence-region systems (empty unless the design has fences).
  struct FenceSystem {
    std::vector<std::uint32_t> movable;   ///< member movable cells
    std::vector<std::uint32_t> fillers;   ///< member filler cells
    std::vector<double> blockage;         ///< static map: complement + fixed
    std::vector<double> map;              ///< per-iteration density map
  };
  std::vector<FenceSystem> systems_;
  std::vector<float> dgrad_x_, dgrad_y_;  ///< cached unweighted density grad
  std::vector<float> wl_grad_x_, wl_grad_y_;
  std::vector<float> pin_scratch_;  ///< baseline extra-op scratch
  int last_density_iter_ = -1000;
  // Caches for skipped iterations (Section 3.1.4 reuses the last full result).
  double wl_grad_norm_cache_ = 0.0;
  double density_grad_norm_cache_ = 0.0;
  double overflow_cache_ = 1.0;
  double lambda_cache_ = 0.0;
};

}  // namespace xplace::core
