#include "core/gradient_engine.h"

#include <algorithm>
#include <cmath>

#include "ops/parallel.h"
#include "ops/wirelength.h"
#include "telemetry/trace.h"
#include "tensor/dispatch.h"
#include "util/logging.h"
#include "util/simd.h"

namespace xplace::core {

using tensor::Dispatcher;

GradientEngine::GradientEngine(const db::Database& db, const PlacerConfig& cfg,
                               const ExecutionContext* exec)
    : db_(db),
      cfg_(cfg),
      exec_(exec),
      view_(ops::build_netlist_view(db)),
      grid_(db, cfg.grid_dim),
      solver_(cfg.grid_dim, grid_.bin_w(), grid_.bin_h()),
      n_total_(db.num_cells_total()),
      n_physical_(db.num_physical()),
      n_movable_(db.num_movable()) {
  solver_.set_pool(pool_or_null());
  if (!cfg_.op_reduction) {
    tape_wl_ = std::make_unique<ops::TapeWirelength>(view_);
  }
  dmap_.resize(grid_.num_bins());
  dmap_fl_.resize(grid_.num_bins());
  dmap_total_.resize(grid_.num_bins());
  dgrad_x_.assign(n_total_, 0.0f);
  dgrad_y_.assign(n_total_, 0.0f);
  wl_grad_x_.assign(n_total_, 0.0f);
  wl_grad_y_.assign(n_total_, 0.0f);
  if (cfg_.baseline_extra_ops) pin_scratch_.resize(view_.num_pins);
  if (db.has_fences()) build_fence_systems();
}

void GradientEngine::build_fence_systems() {
  const int num_fences = static_cast<int>(db_.fences().size());
  systems_.resize(num_fences + 1);  // [0..K) fences, [K] default region
  const std::size_t nbins = grid_.num_bins();
  const int m = grid_.m();
  const double bw = grid_.bin_w(), bh = grid_.bin_h();
  const double bin_area = bw * bh;
  const auto& region = db_.region();

  // Membership.
  for (std::size_t c = 0; c < n_movable_; ++c) {
    const int k = db_.cell_fence(c);
    systems_[k >= 0 ? k : num_fences].movable.push_back(static_cast<std::uint32_t>(c));
  }
  for (std::size_t c = n_physical_; c < n_total_; ++c) {
    const int k = db_.cell_fence(c);
    systems_[k >= 0 ? k : num_fences].fillers.push_back(static_cast<std::uint32_t>(c));
  }

  // Static blockage maps: complement of the allowed area at target density,
  // plus the fixed cells (already density-capped by the grid).
  std::vector<float> x_static(n_total_), y_static(n_total_);
  for (std::size_t c = 0; c < n_total_; ++c) {
    x_static[c] = static_cast<float>(db_.x(c));
    y_static[c] = static_cast<float>(db_.y(c));
  }
  for (int k = 0; k <= num_fences; ++k) {
    FenceSystem& sys = systems_[k];
    sys.blockage.assign(nbins, 0.0);
    sys.map.assign(nbins, 0.0);
    for (int bx = 0; bx < m; ++bx) {
      for (int by = 0; by < m; ++by) {
        const RectD bin{region.lx + bx * bw, region.ly + by * bh,
                        region.lx + (bx + 1) * bw, region.ly + (by + 1) * bh};
        double allowed;
        if (k < num_fences) {
          allowed = bin.overlap_area(db_.fences()[k].rect);
        } else {
          double fenced = 0.0;
          for (const db::FenceRegion& f : db_.fences()) {
            fenced += bin.overlap_area(f.rect);
          }
          allowed = bin_area - fenced;
        }
        sys.blockage[static_cast<std::size_t>(bx) * m + by] =
            (1.0 - allowed / bin_area) * db_.target_density();
      }
    }
    // Fixed cells block every system within its allowed area. Clamp each bin
    // at the target density: "fully blocked" is the ceiling — otherwise a
    // macro outside the fence would stack on top of the complement blockage
    // and register phantom overflow in every system.
    grid_.accumulate_range("density.fence_blockage_init", x_static.data(),
                           y_static.data(), n_movable_, n_physical_,
                           sys.blockage.data(), /*clear=*/false);
    for (double& b : sys.blockage) b = std::min(b, db_.target_density());
  }
}

void GradientEngine::wirelength_pass(const float* x, const float* y,
                                     float gamma, GradientResult& res,
                                     float* /*grad_x*/, float* /*grad_y*/) {
  XP_TRACE_SCOPE("gp.phase.wirelength");
  ScopedTimer phase_timer(phase_timers_, "gp.phase.wirelength");
  auto& disp = Dispatcher::global();
  // Zero the WL gradient accumulators. With operator reduction this is one
  // in-place fill; without it, a stock framework would allocate fresh zero
  // tensors (two launches).
  if (cfg_.op_reduction) {
    disp.run("wlgrad.zero_", [&] {
      std::fill(wl_grad_x_.begin(), wl_grad_x_.end(), 0.0f);
      std::fill(wl_grad_y_.begin(), wl_grad_y_.end(), 0.0f);
    });
  } else {
    disp.run("wlgrad.zeros_alloc", [&] {
      std::fill(wl_grad_x_.begin(), wl_grad_x_.end(), 0.0f);
    });
    disp.run("wlgrad.zeros_alloc", [&] {
      std::fill(wl_grad_y_.begin(), wl_grad_y_.end(), 0.0f);
    });
  }

  if (cfg_.op_reduction && cfg_.op_combination) {
    // Backend switch: same fat kernel (and launch name) either way; the pool
    // variant partitions nets across workers with slot-ordered reduction.
    ThreadPool* pool = pool_or_null();
    const ops::WirelengthSums sums =
        pool != nullptr
            ? ops::fused_wl_grad_hpwl_mt(view_, x, y, gamma, wl_grad_x_.data(),
                                         wl_grad_y_.data(), *pool)
            : ops::fused_wl_grad_hpwl(view_, x, y, gamma, wl_grad_x_.data(),
                                      wl_grad_y_.data());
    res.wa_wl = sums.wa;
    res.hpwl = sums.hpwl;
  } else if (cfg_.op_reduction) {
    // Separate kernels: each re-derives the per-net min/max (operator
    // combination OFF measures exactly this redundancy).
    res.wa_wl = ops::wa_wirelength(view_, x, y, gamma);
    ops::wa_gradient(view_, x, y, gamma, wl_grad_x_.data(), wl_grad_y_.data());
    res.hpwl = ops::hpwl(view_, x, y);
  } else {
    // Elementary-op forward + autograd backward (operator reduction OFF).
    res.wa_wl = tape_wl_->forward(tape_, x, y, gamma, wl_grad_x_.data(),
                                  wl_grad_y_.data());
    tape_.backward();
    res.hpwl = tape_wl_->hpwl_op(x, y);
  }
}

void GradientEngine::density_pass_fenced(const float* x, const float* y,
                                         GradientResult& res, double omega) {
  XP_TRACE_SCOPE("gp.phase.density");
  ScopedTimer phase_timer(phase_timers_, "gp.phase.density");
  auto& disp = Dispatcher::global();
  ThreadPool* pool = pool_or_null();
  disp.run("dgrad.zero_", [&] {
    std::fill(dgrad_x_.begin(), dgrad_x_.end(), 0.0f);
    std::fill(dgrad_y_.begin(), dgrad_y_.end(), 0.0f);
  });
  double over_area = 0.0;
  for (FenceSystem& sys : systems_) {
    // D_k = blockage + member movables; D̃_k = D_k + member fillers.
    disp.run("density.fence_copy_blockage_", [&] {
      std::copy(sys.blockage.begin(), sys.blockage.end(), sys.map.begin());
    });
    if (pool != nullptr) {
      ops::accumulate_cells_mt(grid_, "density.fence_movable", x, y,
                               sys.movable, sys.map.data(), /*clear=*/false,
                               *pool);
    } else {
      grid_.accumulate_cells("density.fence_movable", x, y, sys.movable,
                             sys.map.data(), /*clear=*/false);
    }
    over_area += grid_.overflow_area(sys.map.data());
    if (pool != nullptr) {
      ops::accumulate_cells_mt(grid_, "density.fence_filler", x, y,
                               sys.fillers, sys.map.data(), /*clear=*/false,
                               *pool);
    } else {
      grid_.accumulate_cells("density.fence_filler", x, y, sys.fillers,
                             sys.map.data(), /*clear=*/false);
    }
    solver_.solve(sys.map.data(), /*want_potential=*/!cfg_.op_reduction);
    std::vector<double>& ex = solver_.mutable_ex();
    std::vector<double>& ey = solver_.mutable_ey();
    if (guidance_ != nullptr) {
      const double r_prev =
          wl_grad_norm_cache_ > 0.0
              ? lambda_cache_ * density_grad_norm_cache_ / wl_grad_norm_cache_
              : 0.0;
      guidance_->blend(sys.map.data(), grid_.m(), grid_.bin_w(), grid_.bin_h(),
                       omega, r_prev, ex, ey);
    }
    if (pool != nullptr) {
      ops::gather_field_cells_mt(grid_, "dgrad.fence_gather_movable", x, y,
                                 sys.movable, ex.data(), ey.data(), -1.0f,
                                 dgrad_x_.data(), dgrad_y_.data(), *pool);
      ops::gather_field_cells_mt(grid_, "dgrad.fence_gather_filler", x, y,
                                 sys.fillers, ex.data(), ey.data(), -1.0f,
                                 dgrad_x_.data(), dgrad_y_.data(), *pool);
    } else {
      grid_.gather_field_cells("dgrad.fence_gather_movable", x, y, sys.movable,
                               ex.data(), ey.data(), -1.0f, dgrad_x_.data(),
                               dgrad_y_.data());
      grid_.gather_field_cells("dgrad.fence_gather_filler", x, y, sys.fillers,
                               ex.data(), ey.data(), -1.0f, dgrad_x_.data(),
                               dgrad_y_.data());
    }
  }
  res.overflow = db_.total_movable_area() > 0.0
                     ? over_area / db_.total_movable_area()
                     : 0.0;
}

void GradientEngine::density_pass(const float* x, const float* y,
                                  GradientResult& res, double omega) {
  if (!systems_.empty()) {
    density_pass_fenced(x, y, res, omega);
    return;
  }
  XP_TRACE_SCOPE("gp.phase.density");
  ScopedTimer phase_timer(phase_timers_, "gp.phase.density");
  auto& disp = Dispatcher::global();
  ThreadPool* pool = pool_or_null();
  const bool want_potential = !cfg_.op_reduction;

  if (cfg_.op_extraction) {
    // D (movable + fixed) once; filler map separately; D̃ via one add; OVFL
    // reuses D.
    if (pool != nullptr) {
      ops::accumulate_range_mt(grid_, "density.map_physical", x, y, 0,
                               n_physical_, dmap_.data(), true, *pool);
      ops::accumulate_range_mt(grid_, "density.map_filler", x, y, n_physical_,
                               n_total_, dmap_fl_.data(), true, *pool);
    } else {
      grid_.accumulate_range("density.map_physical", x, y, 0, n_physical_,
                             dmap_.data(), true);
      grid_.accumulate_range("density.map_filler", x, y, n_physical_, n_total_,
                             dmap_fl_.data(), true);
    }
    disp.run("density.add_maps_", [&] {
      for (std::size_t b = 0; b < dmap_.size(); ++b)
        dmap_total_[b] = dmap_[b] + dmap_fl_[b];
    });
  } else {
    // Joint accumulation for the electrostatic map AND a second scatter of
    // the physical cells for the overflow metric (the redundancy extraction
    // removes).
    if (pool != nullptr) {
      ops::accumulate_range_mt(grid_, "density.map_joint", x, y, 0, n_total_,
                               dmap_total_.data(), true, *pool);
      ops::accumulate_range_mt(grid_, "density.map_overflow", x, y, 0,
                               n_physical_, dmap_.data(), true, *pool);
    } else {
      grid_.accumulate_range("density.map_joint", x, y, 0, n_total_,
                             dmap_total_.data(), true);
      grid_.accumulate_range("density.map_overflow", x, y, 0, n_physical_,
                             dmap_.data(), true);
    }
  }
  res.overflow = grid_.overflow(dmap_.data());

  {
    ScopedTimer fft_timer(phase_timers_, "gp.phase.fft");
    solver_.solve(dmap_total_.data(), want_potential);
  }
  if (want_potential) {
    // The loss the autograd formulation carries: U = ½Σρψ (one dispatched
    // f64 dot reduce through the SIMD table).
    disp.run("es.energy_reduce", [&] { (void)solver_.energy(dmap_total_.data()); });
  }

  std::vector<double>& ex = solver_.mutable_ex();
  std::vector<double>& ey = solver_.mutable_ey();
  if (guidance_ != nullptr) {
    const double r_prev =
        wl_grad_norm_cache_ > 0.0
            ? lambda_cache_ * density_grad_norm_cache_ / wl_grad_norm_cache_
            : 0.0;
    guidance_->blend(dmap_total_.data(), grid_.m(), grid_.bin_w(),
                     grid_.bin_h(), omega, r_prev, ex, ey);
  }

  disp.run("dgrad.zero_", [&] {
    std::fill(dgrad_x_.begin(), dgrad_x_.end(), 0.0f);
    std::fill(dgrad_y_.begin(), dgrad_y_.end(), 0.0f);
  });
  // Unweighted density gradient ∂U/∂x = −q·E; movable cells and fillers.
  XP_TRACE_SCOPE("gp.phase.field");
  ScopedTimer field_timer(phase_timers_, "gp.phase.field");
  if (pool != nullptr) {
    ops::gather_field_mt(grid_, "dgrad.gather_movable", x, y, 0, n_movable_,
                         ex.data(), ey.data(), -1.0f, dgrad_x_.data(),
                         dgrad_y_.data(), *pool);
    ops::gather_field_mt(grid_, "dgrad.gather_filler", x, y, n_physical_,
                         n_total_, ex.data(), ey.data(), -1.0f,
                         dgrad_x_.data(), dgrad_y_.data(), *pool);
  } else {
    grid_.gather_field("dgrad.gather_movable", x, y, 0, n_movable_, ex.data(),
                       ey.data(), -1.0f, dgrad_x_.data(), dgrad_y_.data());
    grid_.gather_field("dgrad.gather_filler", x, y, n_physical_, n_total_,
                       ex.data(), ey.data(), -1.0f, dgrad_x_.data(),
                       dgrad_y_.data());
  }
}

void GradientEngine::save_state(StateBlob& out) const {
  out.put_array("dgrad_x", dgrad_x_);
  out.put_array("dgrad_y", dgrad_y_);
  out.put_scalar("last_density_iter", static_cast<double>(last_density_iter_));
  out.put_scalar("wl_grad_norm_cache", wl_grad_norm_cache_);
  out.put_scalar("density_grad_norm_cache", density_grad_norm_cache_);
  out.put_scalar("overflow_cache", overflow_cache_);
  out.put_scalar("lambda_cache", lambda_cache_);
}

void GradientEngine::restore_state(const StateBlob& in) {
  dgrad_x_ = in.array("dgrad_x");
  dgrad_y_ = in.array("dgrad_y");
  if (dgrad_x_.size() != n_total_) {
    throw std::runtime_error("engine state has " +
                             std::to_string(dgrad_x_.size()) +
                             " cells, expected " + std::to_string(n_total_));
  }
  last_density_iter_ = static_cast<int>(in.scalar("last_density_iter"));
  wl_grad_norm_cache_ = in.scalar("wl_grad_norm_cache");
  density_grad_norm_cache_ = in.scalar("density_grad_norm_cache");
  overflow_cache_ = in.scalar("overflow_cache");
  lambda_cache_ = in.scalar("lambda_cache");
}

GradientResult GradientEngine::compute(const float* x, const float* y,
                                       float gamma, float lambda, int iter,
                                       double omega, float* grad_x,
                                       float* grad_y) {
  auto& disp = Dispatcher::global();
  GradientResult res;
  lambda_cache_ = lambda;

  if (cfg_.baseline_extra_ops) {
    // The baseline flow materializes pin positions and applies the net mask
    // as standalone tensor ops before the wirelength kernels, and issues
    // explicit metric syncs; these are real (if light) passes here too.
    disp.run("base.pin_pos_x", [&] {
      for (std::size_t p = 0; p < view_.num_pins; ++p)
        pin_scratch_[p] = x[view_.pin_cell[p]] + view_.pin_ox[p];
    });
    disp.run("base.pin_pos_y", [&] {
      for (std::size_t p = 0; p < view_.num_pins; ++p)
        pin_scratch_[p] = y[view_.pin_cell[p]] + view_.pin_oy[p];
    });
    disp.run("base.net_mask_apply", [&] {
      volatile float sink = 0.0f;
      for (std::size_t e = 0; e < view_.num_nets; ++e)
        sink = sink + view_.net_weight[e] * view_.net_mask[e];
    });
  }

  wirelength_pass(x, y, gamma, res, grad_x, grad_y);

  // Operator skipping (Section 3.1.4): in the early, wirelength-dominated
  // stage the density pipeline runs once every 20 iterations.
  bool run_density = true;
  if (cfg_.op_skipping && iter < 100 && last_density_iter_ >= 0) {
    // r from the cached norms of the last full evaluation.
    const double r = wl_grad_norm_cache_ > 0.0
                         ? lambda * density_grad_norm_cache_ / wl_grad_norm_cache_
                         : 1.0;
    if (r < 0.01 && iter - last_density_iter_ < 20) {
      run_density = false;
    }
  }

  if (run_density) {
    density_pass(x, y, res, omega);
    last_density_iter_ = iter;
  } else {
    res.density_skipped = true;
    res.overflow = overflow_cache_;
  }

  // Gradient norms over movable cells (two reduces, i.e. sync points).
  double wl_norm = 0.0, d_norm = 0.0;
  disp.run("reduce.wl_grad_norm", [&] {
    const simd::Kernels& k = simd::active();
    if (k.isa == simd::Isa::kScalar) {
      for (std::size_t c = 0; c < n_movable_; ++c)
        wl_norm += std::fabs(wl_grad_x_[c]) + std::fabs(wl_grad_y_[c]);
      return;
    }
    wl_norm = k.abs_sum(wl_grad_x_.data(), n_movable_) +
              k.abs_sum(wl_grad_y_.data(), n_movable_);
  });
  disp.run("reduce.density_grad_norm", [&] {
    const simd::Kernels& k = simd::active();
    if (k.isa == simd::Isa::kScalar) {
      for (std::size_t c = 0; c < n_movable_; ++c)
        d_norm += std::fabs(dgrad_x_[c]) + std::fabs(dgrad_y_[c]);
      return;
    }
    d_norm = k.abs_sum(dgrad_x_.data(), n_movable_) +
             k.abs_sum(dgrad_y_.data(), n_movable_);
  });
  res.wl_grad_norm = wl_norm;
  res.density_grad_norm = d_norm;
  res.r_ratio = wl_norm > 0.0 ? lambda * d_norm / wl_norm : 0.0;
  wl_grad_norm_cache_ = wl_norm;
  density_grad_norm_cache_ = d_norm;
  if (run_density) overflow_cache_ = res.overflow;

  // Combine: grad = ∇WL + λ·∇D (fillers have zero ∇WL).
  if (cfg_.op_reduction) {
    disp.run("grad.combine_", [&] {
      const simd::Kernels& k = simd::active();
      if (k.isa == simd::Isa::kScalar) {
        for (std::size_t c = 0; c < n_total_; ++c) {
          grad_x[c] = wl_grad_x_[c] + lambda * dgrad_x_[c];
          grad_y[c] = wl_grad_y_[c] + lambda * dgrad_y_[c];
        }
        return;
      }
      // copy + axpy performs the same mul-then-add rounding per element.
      k.copy(grad_x, wl_grad_x_.data(), n_total_);
      k.axpy_(grad_x, dgrad_x_.data(), lambda, n_total_);
      k.copy(grad_y, wl_grad_y_.data(), n_total_);
      k.axpy_(grad_y, dgrad_y_.data(), lambda, n_total_);
    });
  } else {
    // Out-of-place expression-graph style: scale then add, per axis.
    disp.run("grad.mul_lambda", [&] {
      simd::active().mul_scalar(dgrad_x_.data(), lambda, grad_x, n_total_);
    });
    disp.run("grad.add", [&] {
      simd::active().add_(grad_x, wl_grad_x_.data(), n_total_);
    });
    disp.run("grad.mul_lambda", [&] {
      simd::active().mul_scalar(dgrad_y_.data(), lambda, grad_y, n_total_);
    });
    disp.run("grad.add", [&] {
      simd::active().add_(grad_y, wl_grad_y_.data(), n_total_);
    });
  }

  if (cfg_.baseline_extra_ops) {
    disp.run("base.sync_metrics", [] {});
    disp.run("base.sync_stop_check", [] {});
  }
  return res;
}

}  // namespace xplace::core
