// Parameter scheduling: the γ/λ update laws of ePlace plus the paper's
// placement-stage-aware gating (Algorithm 1).
//
// γ (wirelength smoothness):   γ = k·bin_w·10^((overflow − 0.1)·20/9 − 1),
//   so γ shrinks (WA → HPWL) as the placement spreads out.
// λ (density weight):          λ₀ from the gradient-norm ratio at iteration 0;
//   afterwards λ ← μ·λ with μ = clamp(μ₀^(1 − ΔHPWL/Δref), μ_min, μ_max):
//   shrinking HPWL accelerates densification, regressions slow it down.
// Stage gating (Algorithm 1):  with ω = λ|H_D|/(|H_W|+λ|H_D|), parameters are
//   updated every iteration in the early (ω<0.5) and final (ω>0.95) stages
//   but only every `stage_update_period` iterations in between.
#pragma once

#include "core/checkpoint.h"
#include "core/config.h"

namespace xplace::core {

class Scheduler {
 public:
  Scheduler(const PlacerConfig& cfg, double bin_w);

  /// γ from overflow (always recomputed; it is a pure function).
  double gamma(double overflow) const;

  /// Initialize λ from the first gradient norms.
  void init_lambda(double wl_grad_norm, double density_grad_norm,
                   double hpwl0);

  /// Called once per iteration with the current metrics; decides (per
  /// Algorithm 1) whether parameters update this iteration and applies the
  /// λ update if so. Returns true when an update happened.
  bool maybe_update(int iter, double hpwl, double omega);

  double lambda() const { return lambda_; }
  bool lambda_initialized() const { return lambda_init_; }

  /// Post-rollback retune: shrink λ so the retried densification pushes less
  /// hard than the schedule that diverged.
  void scale_lambda(double factor) { lambda_ *= factor; }

  /// λ/γ schedule state for the run guardian and the on-disk checkpoint.
  void save_state(StateBlob& out) const;
  void restore_state(const StateBlob& in);

 private:
  PlacerConfig cfg_;
  double bin_w_;
  double lambda_ = 0.0;
  bool lambda_init_ = false;
  double prev_hpwl_ = -1.0;
  double hpwl_ref_ = 1.0;  ///< Δref = hpwl_ref_rel · HPWL₀
  int iters_since_update_ = 0;
};

}  // namespace xplace::core
