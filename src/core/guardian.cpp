#include "core/guardian.h"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <stdexcept>

#include "core/gradient_engine.h"
#include "core/optimizer.h"
#include "core/scheduler.h"
#include "db/database.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace xplace::core {

namespace {

const char* kind_name(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kNonfiniteGrad: return "nonfinite_grad";
    case FaultEvent::Kind::kSpike: return "spike";
    case FaultEvent::Kind::kAllocFail: return "alloc_fail";
  }
  return "?";
}

telemetry::Counter& guardian_counter(const char* name) {
  return telemetry::Registry::global().counter(name);
}

}  // namespace

// ---------------- FaultPlan ----------------

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;

    // Server-scoped kinds (server/faults.h) share the XPLACE_FAULT variable;
    // they are not this layer's to validate or act on.
    if (item == "journal_torn" || item == "disk_full" ||
        item.rfind("serve_crash@", 0) == 0 || item.rfind("diverge@", 0) == 0) {
      continue;
    }

    const std::size_t at = item.find("@iter:");
    if (at == std::string::npos) {
      throw std::invalid_argument("fault '" + item +
                                  "': expected kind@iter:N");
    }
    const std::string kind = item.substr(0, at);
    const std::string num = item.substr(at + 6);
    FaultEvent ev;
    if (kind == "nonfinite_grad") {
      ev.kind = FaultEvent::Kind::kNonfiniteGrad;
    } else if (kind == "spike") {
      ev.kind = FaultEvent::Kind::kSpike;
    } else if (kind == "alloc_fail") {
      ev.kind = FaultEvent::Kind::kAllocFail;
    } else {
      throw std::invalid_argument(
          "fault kind '" + kind +
          "': expected nonfinite_grad, spike or alloc_fail");
    }
    try {
      std::size_t end = 0;
      ev.iter = std::stoi(num, &end);
      if (end != num.size() || ev.iter < 0) throw std::invalid_argument(num);
    } catch (const std::exception&) {
      throw std::invalid_argument("fault '" + item +
                                  "': iteration must be a non-negative integer");
    }
    plan.events.push_back(ev);
  }
  return plan;
}

FaultPlan FaultPlan::from_env() {
  const char* spec = std::getenv("XPLACE_FAULT");
  return spec != nullptr ? parse(spec) : FaultPlan{};
}

// ---------------- Guardian ----------------

Guardian::Guardian(const PlacerConfig& cfg, const db::Database& db)
    : cfg_(cfg),
      db_(db),
      optimizer_kind_(static_cast<int>(cfg.optimizer)),
      plan_(FaultPlan::from_env()) {
  fired_.assign(plan_.events.size(), false);
  if (!plan_.empty()) {
    XP_WARN("[%s] fault injection armed: %zu scheduled fault(s) from XPLACE_FAULT",
            db_.design_name().c_str(), plan_.events.size());
  }
}

void Guardian::set_fault_plan(FaultPlan plan) {
  plan_ = std::move(plan);
  fired_.assign(plan_.events.size(), false);
}

bool Guardian::maybe_inject(int iter, float* grad_x, float* grad_y,
                            std::size_t n) {
  bool any = false;
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    if (fired_[i] || plan_.events[i].iter != iter) continue;
    fired_[i] = true;
    any = true;
    ++faults_injected_;
    guardian_counter("guardian.faults_injected").inc();
    XP_WARN("[%s] injecting fault %s at iter %d",
            db_.design_name().c_str(), kind_name(plan_.events[i].kind), iter);
    switch (plan_.events[i].kind) {
      case FaultEvent::Kind::kNonfiniteGrad:
        // Poison a sparse subset plus the first entry — the pattern a single
        // corrupted kernel launch would leave behind.
        if (n > 0) grad_x[0] = std::numeric_limits<float>::infinity();
        for (std::size_t c = 0; c < n; c += 97) {
          grad_y[c] = std::numeric_limits<float>::quiet_NaN();
        }
        break;
      case FaultEvent::Kind::kSpike:
        for (std::size_t c = 0; c < n; ++c) {
          grad_x[c] *= 1e6f;
          grad_y[c] *= 1e6f;
        }
        break;
      case FaultEvent::Kind::kAllocFail:
        alloc_fail_armed_ = true;
        break;
    }
  }
  return any;
}

SentinelHealth Guardian::inspect(const float* grad_x, const float* grad_y,
                                 std::size_t n, double hpwl) {
  const tensor::FiniteStats st = tensor::finite_stats(grad_x, grad_y, n);
  SentinelHealth health = SentinelHealth::kOk;
  if (st.nonfinite > 0 || !std::isfinite(hpwl)) {
    health = SentinelHealth::kNonFinite;
  } else if (ema_init_ && st.abs_sum >
                              cfg_.guardian_spike_ratio *
                                  std::max(grad_mag_ema_, 1e-30)) {
    health = SentinelHealth::kSpike;
  }
  if (health == SentinelHealth::kOk) {
    if (ema_init_) {
      grad_mag_ema_ += cfg_.guardian_spike_ema * (st.abs_sum - grad_mag_ema_);
    } else {
      grad_mag_ema_ = st.abs_sum;
      ema_init_ = true;
    }
  } else {
    ++sentinel_trips_;
    guardian_counter("guardian.sentinel_trips").inc();
  }
  return health;
}

bool Guardian::should_snapshot(int iter, double overflow) const {
  if (!snapshot_.has_value()) return true;
  return overflow < snapshot_->overflow &&
         iter - last_snapshot_iter_ >= cfg_.guardian_snapshot_period;
}

void Guardian::snapshot(const db::Database& db, int next_iter, double gamma,
                        double overflow, double best_hpwl, double hpwl,
                        const Optimizer& opt, const Scheduler& sched,
                        const GradientEngine& engine) {
  XP_TRACE_SCOPE("guardian.snapshot");
  if (alloc_fail_armed_) {
    // Injected allocation failure: behave exactly as the bad_alloc path.
    alloc_fail_armed_ = false;
    guardian_counter("guardian.snapshot_alloc_failures").inc();
    XP_WARN("[%s] snapshot allocation failed (injected); keeping previous snapshot",
            db_.design_name().c_str());
    return;
  }
  try {
    snapshot_ = capture_checkpoint(db, optimizer_kind_, next_iter, gamma,
                                   overflow, best_hpwl, hpwl, opt, sched,
                                   engine);
  } catch (const std::bad_alloc&) {
    guardian_counter("guardian.snapshot_alloc_failures").inc();
    XP_WARN("[%s] snapshot allocation failed; keeping previous snapshot",
            db_.design_name().c_str());
    return;
  }
  last_snapshot_iter_ = next_iter - 1;
  guardian_counter("guardian.snapshots").inc();
}

bool Guardian::rollback(const std::string& reason, Optimizer& opt,
                        Scheduler& sched, GradientEngine& engine,
                        double* gamma, double* overflow) {
  XP_TRACE_SCOPE("guardian.rollback");
  ++rollbacks_;
  guardian_counter("guardian.rollbacks").inc();
  if (snapshot_.has_value()) {
    restore_checkpoint(*snapshot_, db_, optimizer_kind_, opt, sched, engine);
    *gamma = snapshot_->gamma;
    *overflow = snapshot_->overflow;
  }
  // Retune: densify and step less aggressively than the schedule that broke.
  // restore_checkpoint rewound λ and the steplength to the snapshot's values,
  // so compound the shrink by the retry count — each retry is gentler than
  // the one that failed, instead of replaying the identical trajectory.
  const double lambda_shrink =
      std::pow(cfg_.guardian_lambda_shrink, rollbacks_);
  const double step_shrink = std::pow(cfg_.guardian_step_shrink, rollbacks_);
  sched.scale_lambda(lambda_shrink);
  opt.retune(step_shrink);
  ema_init_ = false;  // magnitude baseline is invalid across a retune
  if (rollbacks_ > cfg_.guardian_max_rollbacks) {
    guardian_counter("guardian.retries_exhausted").inc();
    XP_WARN("[%s] %s: retry budget (%d) exhausted; stopping at best-known iterate",
            db_.design_name().c_str(), reason.c_str(),
            cfg_.guardian_max_rollbacks);
    return false;
  }
  XP_WARN("[%s] %s: rolled back to best snapshot (hpwl %.6g), lambda x%.2g, step x%.2g (retry %d/%d)",
          db_.design_name().c_str(), reason.c_str(),
          snapshot_.has_value() ? snapshot_->hpwl : 0.0, lambda_shrink,
          step_shrink, rollbacks_, cfg_.guardian_max_rollbacks);
  return true;
}

bool Guardian::restore_best(Optimizer& opt, Scheduler& sched,
                            GradientEngine& engine) {
  if (!snapshot_.has_value()) return false;
  restore_checkpoint(*snapshot_, db_, optimizer_kind_, opt, sched, engine);
  return true;
}

PlacerConfig retuned_for_restart(const PlacerConfig& cfg, int attempt) {
  PlacerConfig out = cfg;
  if (attempt <= 0) return out;
  // The same compounding λ/step shrink rollback() applies within a run,
  // lifted to the whole-run restart the serve-layer supervisor performs: a
  // trajectory that exhausted its in-run retry budget restarts from scratch
  // with a gentler schedule than the one that diverged.
  out.lambda_init_factor *=
      std::pow(cfg.guardian_lambda_shrink, static_cast<double>(attempt));
  out.initial_step_bins *=
      std::pow(cfg.guardian_step_shrink, static_cast<double>(attempt));
  return out;
}

}  // namespace xplace::core
