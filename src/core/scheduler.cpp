#include "core/scheduler.h"

#include <algorithm>
#include <cmath>

namespace xplace::core {

Scheduler::Scheduler(const PlacerConfig& cfg, double bin_w)
    : cfg_(cfg), bin_w_(bin_w) {}

double Scheduler::gamma(double overflow) const {
  const double ovfl = std::clamp(overflow, 0.0, 1.0);
  return cfg_.gamma_base_factor * bin_w_ *
         std::pow(10.0, (ovfl - 0.1) * (20.0 / 9.0) - 1.0);
}

void Scheduler::init_lambda(double wl_grad_norm, double density_grad_norm,
                            double hpwl0) {
  lambda_ = density_grad_norm > 1e-30
                ? cfg_.lambda_init_factor * wl_grad_norm / density_grad_norm
                : cfg_.lambda_init_factor;
  hpwl_ref_ = std::max(1.0, cfg_.hpwl_ref_rel * hpwl0);
  prev_hpwl_ = hpwl0;
  lambda_init_ = true;
}

bool Scheduler::maybe_update(int iter, double hpwl, double omega) {
  (void)iter;
  ++iters_since_update_;
  // Algorithm 1: in the intermediate stage, parameters update only every
  // `stage_update_period` iterations to fully exploit the optimization space.
  if (cfg_.stage_aware_schedule && omega > cfg_.omega_low &&
      omega < cfg_.omega_high &&
      iters_since_update_ < cfg_.stage_update_period) {
    return false;
  }
  iters_since_update_ = 0;

  const double delta = hpwl - prev_hpwl_;
  prev_hpwl_ = hpwl;
  // Δref scales with the *current* HPWL (ePlace's absolute 3.5e5 is ≈3.5e-3
  // of its designs' HPWL); this keeps μ meaningful across design scales and
  // placement stages.
  const double ref = std::max(1.0, cfg_.hpwl_ref_rel * hpwl);
  const double mu = std::clamp(std::pow(cfg_.mu_base, 1.0 - delta / ref),
                               cfg_.mu_min, cfg_.mu_max);
  lambda_ *= mu;
  return true;
}

void Scheduler::save_state(StateBlob& out) const {
  out.put_scalar("lambda", lambda_);
  out.put_scalar("lambda_init", lambda_init_ ? 1.0 : 0.0);
  out.put_scalar("prev_hpwl", prev_hpwl_);
  out.put_scalar("hpwl_ref", hpwl_ref_);
  out.put_scalar("iters_since_update", static_cast<double>(iters_since_update_));
}

void Scheduler::restore_state(const StateBlob& in) {
  lambda_ = in.scalar("lambda");
  lambda_init_ = in.scalar("lambda_init") != 0.0;
  prev_hpwl_ = in.scalar("prev_hpwl");
  hpwl_ref_ = in.scalar("hpwl_ref");
  iters_since_update_ = static_cast<int>(in.scalar("iters_since_update"));
}

}  // namespace xplace::core
