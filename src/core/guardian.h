// Run guardian: numeric sentinels, best-iterate snapshots, and
// rollback-and-retune divergence recovery for the GP loop.
//
// The paper's operator optimizations strip the safety nets a stock framework
// provides (autograd sanity, framework-level NaN propagation checks), so the
// guardian reintroduces them at negligible cost:
//
//   * Sentinels — one fused finite-check + magnitude reduce over the gradient
//     pair each iteration (tensor::finite_stats, a single launch) classifies
//     health as OK / SPIKE / NONFINITE. A spike is a gradient magnitude that
//     jumps orders of magnitude above its running average.
//   * Snapshots — the best-known iterate (optimizer state + scheduler λ/γ +
//     engine caches) is captured as a RunCheckpoint, throttled to every
//     `guardian_snapshot_period` iterations. "Best" is ranked by overflow:
//     in a healthy run HPWL *grows* from the collapsed center init while
//     overflow falls monotonically, so overflow is the progress metric, and
//     a diverging run (rising overflow) stops refreshing automatically.
//   * Rollback-and-retune — on a sentinel trip or HPWL divergence the loop
//     restores the best snapshot, shrinks λ and the optimizer steplength, and
//     continues. A bounded retry budget guards against livelock; when it is
//     exhausted the run stops gracefully at the best-known iterate.
//   * Fault injection — XPLACE_FAULT=kind@iter:N[,kind@iter:M...] (kinds:
//     nonfinite_grad, spike, alloc_fail) deterministically exercises every
//     recovery path; tests drive the same hook programmatically.
//
// All guardian events are counted in telemetry::Registry::global()
// (guardian.*) and emitted as trace spans.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/config.h"

namespace xplace::db {
class Database;
}

namespace xplace::core {

class Optimizer;
class Scheduler;
class GradientEngine;

enum class SentinelHealth { kOk, kSpike, kNonFinite };

/// One scheduled fault. `iter` is the GP iteration it fires at (once).
struct FaultEvent {
  enum class Kind { kNonfiniteGrad, kSpike, kAllocFail };
  Kind kind = Kind::kNonfiniteGrad;
  int iter = 0;
};

/// Deterministic fault schedule. Grammar (also via the XPLACE_FAULT env var):
///   plan  := event (',' event)*
///   event := kind '@iter:' N        with kind in
///            { nonfinite_grad | spike | alloc_fail }
struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Parses the grammar above; throws std::invalid_argument on bad specs.
  static FaultPlan parse(const std::string& spec);
  /// Plan from XPLACE_FAULT (empty plan when the variable is unset).
  static FaultPlan from_env();
};

class Guardian {
 public:
  /// `db` must outlive the guardian (snapshot fingerprint checks). Reads
  /// XPLACE_FAULT for the default fault plan.
  Guardian(const PlacerConfig& cfg, const db::Database& db);

  /// Replaces the fault plan (tests drive recovery paths through this).
  void set_fault_plan(FaultPlan plan);

  /// Applies any fault scheduled for `iter` to the gradient buffers (before
  /// the sentinel scan, mimicking a kernel that produced garbage). Returns
  /// true when a fault fired.
  bool maybe_inject(int iter, float* grad_x, float* grad_y, std::size_t n);

  /// Sentinel scan over the gradient pair + the iteration HPWL (one launch).
  SentinelHealth inspect(const float* grad_x, const float* grad_y,
                         std::size_t n, double hpwl);

  /// True when the best-iterate snapshot should be refreshed: no snapshot
  /// yet, or a better (lower) overflow at least `guardian_snapshot_period`
  /// iterations after the previous capture.
  bool should_snapshot(int iter, double overflow) const;

  /// Captures the full loop state as the best-iterate snapshot. Allocation
  /// failure (real or injected) is absorbed: the previous snapshot survives.
  void snapshot(const db::Database& db, int next_iter, double gamma,
                double overflow, double best_hpwl, double hpwl,
                const Optimizer& opt, const Scheduler& sched,
                const GradientEngine& engine);

  bool has_snapshot() const { return snapshot_.has_value(); }
  const RunCheckpoint& best() const { return *snapshot_; }

  /// Rollback-and-retune: restores the best snapshot (when one exists) into
  /// the live components, shrinks λ and the optimizer steplength, and resets
  /// the sentinel baseline. `gamma`/`overflow` are rewound to the snapshot's
  /// values. Returns false when the retry budget is exhausted — the caller
  /// must stop gracefully (state is already at the best-known iterate).
  bool rollback(const std::string& reason, Optimizer& opt, Scheduler& sched,
                GradientEngine& engine, double* gamma, double* overflow);

  /// Restores the best snapshot without retuning (final-commit path after a
  /// divergent stop). Returns false when no snapshot exists.
  bool restore_best(Optimizer& opt, Scheduler& sched, GradientEngine& engine);

  int rollbacks() const { return rollbacks_; }
  int sentinel_trips() const { return sentinel_trips_; }
  int faults_injected() const { return faults_injected_; }

 private:
  PlacerConfig cfg_;
  const db::Database& db_;
  int optimizer_kind_;

  FaultPlan plan_;
  std::vector<bool> fired_;
  bool alloc_fail_armed_ = false;

  std::optional<RunCheckpoint> snapshot_;
  int last_snapshot_iter_ = -1;

  double grad_mag_ema_ = 0.0;
  bool ema_init_ = false;

  int rollbacks_ = 0;
  int sentinel_trips_ = 0;
  int faults_injected_ = 0;
};

/// Config for restart `attempt` (0-based; attempt 0 returns `cfg` verbatim)
/// of a whole run that previously diverged: the guardian's compounding λ/step
/// shrink applied at the config level, for supervisors that re-admit failed
/// jobs (DESIGN.md §13 retry policy).
PlacerConfig retuned_for_restart(const PlacerConfig& cfg, int attempt);

}  // namespace xplace::core
