#include "core/placer.h"

#include <algorithm>
#include <cmath>

#include "core/checkpoint.h"
#include "io/checkpoint_io.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "tensor/dispatch.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"

namespace xplace::core {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kConverged: return "converged";
    case StopReason::kIterCap: return "iter_cap";
    case StopReason::kDiverged: return "diverged";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kDeadline: return "deadline";
  }
  return "?";
}

PlacerConfig PlacerConfig::xplace() { return PlacerConfig{}; }

PlacerConfig PlacerConfig::dreamplace() {
  PlacerConfig cfg;
  cfg.op_reduction = false;
  cfg.op_combination = false;
  cfg.op_extraction = false;
  cfg.op_skipping = false;
  cfg.stage_aware_schedule = false;
  cfg.baseline_extra_ops = true;
  return cfg;
}

PlacerConfig PlacerConfig::ablation(bool reduction, bool combination,
                                    bool extraction, bool skipping) {
  PlacerConfig cfg;
  cfg.op_reduction = reduction;
  cfg.op_combination = combination;
  cfg.op_extraction = extraction;
  cfg.op_skipping = skipping;
  return cfg;
}

GlobalPlacer::GlobalPlacer(db::Database& db, const PlacerConfig& cfg)
    : db_(&db), cfg_(cfg), exec_(ExecutionContext::from_threads(cfg.threads)) {
  init();
}

GlobalPlacer::GlobalPlacer(std::shared_ptr<const db::DesignSnapshot> snapshot,
                           const PlacerConfig& cfg)
    : snapshot_(std::move(snapshot)),
      owned_db_(std::make_unique<db::Database>(snapshot_->materialize())),
      db_(owned_db_.get()),
      cfg_(cfg),
      exec_(ExecutionContext::from_threads(cfg.threads)) {
  init();
}

void GlobalPlacer::init() {
  // First-class run seed: one number derives every stochastic stream of the
  // run, so a perturbed restart is reproducible (and its config hashes
  // distinctly) from `seed` alone.
  if (cfg_.seed > 0) {
    cfg_.filler_seed = cfg_.seed;
    cfg_.init_noise_seed = cfg_.seed + 1;
  }
  if (db_->num_fillers() == 0) {
    // Per-run density override must land before fillers: the filler budget is
    // D_t·free − movable, so this is what makes density a sweep axis.
    if (cfg_.target_density > 0.0) db_->set_target_density(cfg_.target_density);
    db_->insert_fillers(cfg_.filler_seed);
  }
  init_positions();
  engine_ = std::make_unique<GradientEngine>(*db_, cfg_, &exec_);
  precond_ = std::make_unique<Preconditioner>(*db_);
  scheduler_ = std::make_unique<Scheduler>(
      cfg_, engine_->grid().bin_w());
  if (cfg_.optimizer == OptimizerKind::kNesterov) {
    optimizer_ = std::make_unique<NesterovOptimizer>(*db_, cfg_, cfg_.grid_dim);
  } else {
    optimizer_ = std::make_unique<AdamOptimizer>(*db_, cfg_, cfg_.grid_dim);
  }
  guardian_ = std::make_unique<Guardian>(cfg_, *db_);
}

GlobalPlacer::~GlobalPlacer() = default;

void GlobalPlacer::set_field_guidance(FieldGuidance* guidance) {
  engine_->set_field_guidance(guidance);
}

void GlobalPlacer::init_positions() {
  if (cfg_.center_init_noise < 0.0) return;  // keep given positions
  Rng rng(cfg_.init_noise_seed);
  const auto& r = db_->region();
  const double cx = r.cx(), cy = r.cy();
  const double sx = r.width() * cfg_.center_init_noise;
  const double sy = r.height() * cfg_.center_init_noise;
  for (std::size_t c = 0; c < db_->num_movable(); ++c) {
    const int fence = db_->cell_fence(c);
    if (fence >= 0) {
      // Fenced cells start at their fence's center (keeps GP feasible).
      const RectD& fr = db_->fences()[fence].rect;
      db_->set_position(c, fr.cx() + rng.normal(0.0, sx * 0.2),
                       fr.cy() + rng.normal(0.0, sy * 0.2));
      continue;
    }
    db_->set_position(c, cx + rng.normal(0.0, sx), cy + rng.normal(0.0, sy));
  }
  // Fillers keep their uniform-random insert positions.
}

GlobalPlaceResult GlobalPlacer::run() {
  auto& disp = tensor::Dispatcher::global();
  const std::uint64_t launches_before = disp.total_launches();
  XP_TRACE_SCOPE("gp.run");
  Stopwatch gp_watch;

  const std::size_t n = db_->num_cells_total();
  LoopState st;
  st.grad_x.assign(n, 0.0f);
  st.grad_y.assign(n, 0.0f);

  // Per-iteration step-time distribution (ms); ~30 ns .. ~2 s range.
  st.step_hist = &telemetry::Registry::global().histogram(
      "gp.step_ms", telemetry::Histogram::exponential_bounds(1e-3, 2.0, 22));

  GlobalPlaceResult result;
  st.gamma = scheduler_->gamma(1.0);
  st.overflow = 1.0;
  int start_iter = 0;

  if (!cfg_.resume_path.empty()) {
    // Full resume: the checkpoint carries the optimizer iterates, scheduler
    // λ state, and engine caches, so the continued trajectory is bit-for-bit
    // the one the interrupted run would have produced.
    const RunCheckpoint ck = io::read_checkpoint(cfg_.resume_path);
    restore_checkpoint(ck, *db_, static_cast<int>(cfg_.optimizer), *optimizer_,
                       *scheduler_, *engine_);
    start_iter = ck.next_iter;
    st.gamma = ck.gamma;
    st.overflow = ck.overflow;
    st.best_hpwl = ck.best_hpwl;
    st.last_hpwl = ck.hpwl;
    telemetry::Registry::global().counter("gp.resumes").inc();
    XP_INFO("[%s] resumed from %s at iter %d (hpwl %.6g, ovfl %.4f)",
            db_->design_name().c_str(), cfg_.resume_path.c_str(), start_iter,
            ck.hpwl, st.overflow);
  }

  run_segment(start_iter, cfg_.max_iters, cfg_.min_iters, st, result);

  // Hill-climb kicks only make sense after a completed descent: a divergent
  // or interrupted run already committed the guardian's best snapshot below.
  if (cfg_.kicks > 0 && (result.stop_reason == StopReason::kConverged ||
                         result.stop_reason == StopReason::kIterCap)) {
    kick_phase(st, result);
  }

  // The bools are derived views of stop_reason (kept in lockstep so older
  // callers checking `converged`/`diverged` keep working).
  result.converged = result.stop_reason == StopReason::kConverged;
  result.diverged = result.stop_reason == StopReason::kDiverged;

  result.rollbacks = guardian_->rollbacks();
  result.sentinel_trips = guardian_->sentinel_trips();

  // On a divergent, cancelled, or deadline stop, commit the best-known
  // snapshot instead of the current iterate: for divergence the current
  // iterate is garbage; for cancel/deadline the snapshot is the best-overflow
  // (most usable) placement seen, so an interrupted job still returns a
  // meaningful result.
  const bool stopped_early = result.stop_reason == StopReason::kDiverged ||
                             result.stop_reason == StopReason::kCancelled ||
                             result.stop_reason == StopReason::kDeadline;
  if (stopped_early &&
      guardian_->restore_best(*optimizer_, *scheduler_, *engine_)) {
    XP_WARN("[%s] committing best snapshot (hpwl %.6g) after %s stop",
            db_->design_name().c_str(), guardian_->best().hpwl,
            to_string(result.stop_reason));
    st.overflow = guardian_->best().overflow;
  }

  commit_solution();

  result.hpwl = db_->hpwl();
  result.overflow = st.overflow;
  result.gp_seconds = gp_watch.seconds();
  result.avg_iter_ms =
      result.iterations > 0 ? result.gp_seconds * 1e3 / result.iterations : 0.0;
  result.kernel_launches = disp.total_launches() - launches_before;

  // Publish run-level metrics to the global registry (one place for the
  // Prometheus dump; supersedes ad-hoc result plumbing in benches).
  telemetry::Registry& reg = telemetry::Registry::global();
  reg.gauge("gp.hpwl").set(result.hpwl);
  reg.gauge("gp.overflow").set(result.overflow);
  reg.gauge("gp.iterations").set(result.iterations);
  reg.gauge("gp.seconds").set(result.gp_seconds);
  reg.gauge("gp.stop_reason").set(static_cast<double>(result.stop_reason));
  reg.counter("gp.runs").inc();
  reg.counter("gp.kernel_launches").inc(result.kernel_launches);
  if (result.diverged) reg.counter("gp.diverged_runs").inc();
  if (result.stop_reason == StopReason::kCancelled ||
      result.stop_reason == StopReason::kDeadline) {
    reg.counter("gp.stopped_runs").inc();
  }
  // Backend + pool utilization, and the per-phase kernel timers the
  // `--threads` speedup is measured against.
  exec_.publish(reg);
  engine_->phase_timers().publish(reg, "timer.");

  XP_INFO("[%s] GP done (%s): %d iters, hpwl %.6g, ovfl %.4f, %.2fs (%.2f ms/iter), %llu launches",
          db_->design_name().c_str(), to_string(result.stop_reason),
          result.iterations, result.hpwl, result.overflow, result.gp_seconds,
          result.avg_iter_ms,
          static_cast<unsigned long long>(result.kernel_launches));
  return result;
}

StopReason GlobalPlacer::run_segment(int start_iter, int iter_cap,
                                     int min_iters, LoopState& st,
                                     GlobalPlaceResult& result) {
  const std::size_t n = db_->num_cells_total();
  std::vector<float>& grad_x = st.grad_x;
  std::vector<float>& grad_y = st.grad_y;
  double& gamma = st.gamma;
  double& overflow = st.overflow;
  double& best_hpwl = st.best_hpwl;
  telemetry::Histogram& step_hist = *st.step_hist;

  for (int iter = start_iter; iter < iter_cap; ++iter) {
    // Cooperative stop: polled before the iteration's kernels so a cancel
    // or deadline never pays for another gradient evaluation. The committed
    // iterate is handled below on the shared best-snapshot path.
    if (const StopCause cause = poll_stop(stop_); cause != StopCause::kNone) {
      result.stop_reason = cause == StopCause::kCancelled
                               ? StopReason::kCancelled
                               : StopReason::kDeadline;
      XP_INFO("[%s] GP stop requested at iter %d (%s)",
              db_->design_name().c_str(), iter, to_string(cause));
      return result.stop_reason;
    }
    telemetry::TraceScope iter_span("gp.iter");
    Stopwatch iter_watch;
    const double lambda = scheduler_->lambda();
    const double omega = precond_->omega(lambda);

    GradientResult g = engine_->compute(
        optimizer_->query_x(), optimizer_->query_y(), static_cast<float>(gamma),
        static_cast<float>(lambda), iter, omega, grad_x.data(), grad_y.data());

    // Guardian gate: inject any scheduled fault, then scan the gradients and
    // HPWL *before* the iterate advances, so a poisoned step never lands.
    if (cfg_.guardian) {
      guardian_->maybe_inject(iter, grad_x.data(), grad_y.data(), n);
      const SentinelHealth health =
          guardian_->inspect(grad_x.data(), grad_y.data(), n, g.hpwl);
      const bool hpwl_diverged =
          iter > 100 && g.hpwl > best_hpwl * cfg_.divergence_hpwl_ratio;
      if (health != SentinelHealth::kOk || hpwl_diverged) {
        const char* reason = health == SentinelHealth::kNonFinite
                                 ? "non-finite gradients/HPWL"
                                 : (health == SentinelHealth::kSpike
                                        ? "gradient-magnitude spike"
                                        : "HPWL divergence");
        result.iterations = iter + 1;
        if (!guardian_->rollback(reason, *optimizer_, *scheduler_, *engine_,
                                 &gamma, &overflow)) {
          result.stop_reason = StopReason::kDiverged;
          return result.stop_reason;
        }
        continue;  // retry from the restored best iterate
      }
    } else if (iter > 100 &&
               g.hpwl > best_hpwl * cfg_.divergence_hpwl_ratio) {
      XP_WARN("[%s] divergence detected at iter %d (hpwl %.4g vs best %.4g)",
              db_->design_name().c_str(), iter, g.hpwl, best_hpwl);
      result.iterations = iter + 1;
      result.stop_reason = StopReason::kDiverged;
      return result.stop_reason;
    }

    if (!scheduler_->lambda_initialized()) {
      scheduler_->init_lambda(g.wl_grad_norm, g.density_grad_norm, g.hpwl);
    }

    precond_->apply(static_cast<float>(scheduler_->lambda()), grad_x.data(),
                    grad_y.data(), /*in_place=*/cfg_.op_reduction);
    optimizer_->step(grad_x.data(), grad_y.data());

    overflow = g.overflow;
    const bool updated = scheduler_->maybe_update(iter, g.hpwl, omega);
    if (updated) {
      gamma = scheduler_->gamma(overflow);
    }

    // Close the iteration span and take step_seconds at the same point —
    // before the recorder append and logging below — so the traced span and
    // the recorded step time cover the identical interval.
    iter_span.arg("iter", iter)
        .arg("hpwl", g.hpwl)
        .arg("overflow", overflow)
        .arg("omega", omega);
    const double step_seconds = iter_watch.seconds();
    iter_span.end();
    step_hist.observe(step_seconds * 1e3);

    IterationRecord rec;
    rec.iter = iter;
    rec.hpwl = g.hpwl;
    rec.wa_wl = g.wa_wl;
    rec.overflow = overflow;
    rec.gamma = gamma;
    rec.lambda = scheduler_->lambda();
    rec.omega = omega;
    rec.r_ratio = g.r_ratio;
    rec.step_seconds = step_seconds;
    rec.density_skipped = g.density_skipped;
    rec.params_updated = updated;
    recorder_.add(rec);

    if (cfg_.verbose && iter % 50 == 0) {
      XP_INFO("[%s] iter %4d  hpwl %.6g  ovfl %.4f  gamma %.3g  lambda %.3g  omega %.3f",
              db_->design_name().c_str(), iter, g.hpwl, overflow, gamma,
              scheduler_->lambda(), omega);
    }

    best_hpwl = std::min(best_hpwl, g.hpwl);
    st.last_hpwl = g.hpwl;
    result.iterations = iter + 1;

    if (cfg_.guardian && guardian_->should_snapshot(iter, overflow)) {
      guardian_->snapshot(*db_, iter + 1, gamma, overflow, best_hpwl, g.hpwl,
                          *optimizer_, *scheduler_, *engine_);
    }
    if (!cfg_.checkpoint_out.empty() && cfg_.checkpoint_period > 0 &&
        (iter + 1) % cfg_.checkpoint_period == 0) {
      XP_TRACE_SCOPE("gp.checkpoint_write");
      io::write_checkpoint(
          capture_checkpoint(*db_, static_cast<int>(cfg_.optimizer), iter + 1,
                             gamma, overflow, best_hpwl, g.hpwl, *optimizer_,
                             *scheduler_, *engine_),
          cfg_.checkpoint_out);
      telemetry::Registry::global().counter("gp.checkpoints_written").inc();
      if (checkpoint_obs_) checkpoint_obs_(iter + 1, cfg_.checkpoint_out);
    }

    if (iter >= min_iters && overflow < cfg_.stop_overflow) {
      result.stop_reason = StopReason::kConverged;
      return result.stop_reason;
    }
  }
  result.stop_reason = StopReason::kIterCap;
  return result.stop_reason;
}

void GlobalPlacer::commit_solution() {
  // Commit the major iterate back to the database (movable cells only;
  // fillers are internal to the electrostatic system).
  const float* sx = optimizer_->solution_x();
  const float* sy = optimizer_->solution_y();
  for (std::size_t c = 0; c < db_->num_movable(); ++c) {
    db_->set_position(c, sx[c], sy[c]);
  }
  // Keep filler positions in the db too (harmless; useful for debugging).
  for (std::size_t c = db_->num_physical(); c < db_->num_cells_total(); ++c) {
    db_->set_position(c, sx[c], sy[c]);
  }
}

void GlobalPlacer::kick_phase(LoopState& st, GlobalPlaceResult& result) {
  XP_TRACE_SCOPE("gp.kick_phase");
  telemetry::Registry& reg = telemetry::Registry::global();
  const StopReason base_reason = result.stop_reason;
  const int kind = static_cast<int>(cfg_.optimizer);

  // Incumbent: the completed descent's placement. Every kick is judged
  // against it by committed HPWL, so the phase is monotone — the final
  // placement is never worse than the unkicked one.
  commit_solution();
  double incumbent_hpwl = db_->hpwl();
  RunCheckpoint incumbent = capture_checkpoint(
      *db_, kind, result.iterations, st.gamma, st.overflow, st.best_hpwl,
      st.last_hpwl, *optimizer_, *scheduler_, *engine_);

  const double mag = cfg_.kick_magnitude_bins * engine_->grid().bin_w();
  for (int k = 0; k < cfg_.kicks; ++k) {
    if (poll_stop(stop_) != StopCause::kNone) break;
    ++result.kicks_attempted;
    reg.counter("gp.kicks").inc();

    // Bounded random kick of the movable cells, seeded from the run's noise
    // seed so each kick is individually reproducible.
    Rng rng(cfg_.init_noise_seed +
            0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(k + 1));
    for (std::size_t c = 0; c < db_->num_movable(); ++c) {
      db_->set_position(c, db_->x(c) + rng.uniform(-mag, mag),
                        db_->y(c) + rng.uniform(-mag, mag));
    }
    // Fresh momentum from the kicked positions + λ/γ re-anneal.
    if (cfg_.optimizer == OptimizerKind::kNesterov) {
      optimizer_ =
          std::make_unique<NesterovOptimizer>(*db_, cfg_, cfg_.grid_dim);
    } else {
      optimizer_ = std::make_unique<AdamOptimizer>(*db_, cfg_, cfg_.grid_dim);
    }
    scheduler_->scale_lambda(cfg_.kick_lambda_scale);
    st.gamma = scheduler_->gamma(st.overflow);

    const int seg_start = result.iterations;
    const StopReason r =
        run_segment(seg_start, seg_start + cfg_.kick_iters,
                    seg_start + cfg_.kick_min_iters, st, result);

    commit_solution();
    const double kicked_hpwl = db_->hpwl();
    const bool completed =
        r == StopReason::kConverged || r == StopReason::kIterCap;
    if (completed && kicked_hpwl < incumbent_hpwl) {
      incumbent_hpwl = kicked_hpwl;
      incumbent = capture_checkpoint(*db_, kind, result.iterations, st.gamma,
                                     st.overflow, st.best_hpwl, st.last_hpwl,
                                     *optimizer_, *scheduler_, *engine_);
      ++result.kicks_accepted;
      reg.counter("gp.kicks_accepted").inc();
      XP_INFO("[%s] kick %d/%d accepted (hpwl %.6g)",
              db_->design_name().c_str(), k + 1, cfg_.kicks, kicked_hpwl);
    } else {
      restore_checkpoint(incumbent, *db_, kind, *optimizer_, *scheduler_,
                         *engine_);
      st.gamma = incumbent.gamma;
      st.overflow = incumbent.overflow;
      st.best_hpwl = incumbent.best_hpwl;
      st.last_hpwl = incumbent.hpwl;
      if (cfg_.verbose) {
        XP_INFO("[%s] kick %d/%d rejected (hpwl %.6g vs incumbent %.6g)",
                db_->design_name().c_str(), k + 1, cfg_.kicks, kicked_hpwl,
                incumbent_hpwl);
      }
    }
    if (!completed) break;  // token fired or kick diverged: stop climbing
  }
  // Kicks are opportunistic: an interrupted or divergent kick segment falls
  // back to the incumbent above, and the run reports the main descent's
  // stop reason — the committed placement is that descent's (or better).
  result.stop_reason = base_reason;
}

}  // namespace xplace::core
