// Run checkpointing: a self-describing capture of everything the GP loop
// needs to continue a trajectory bit-for-bit — optimizer iterates, scheduler
// λ/γ state, gradient-engine caches (the operator-skipping reuse buffers),
// and the loop-level scalars (next iteration, γ, overflow, best HPWL).
//
// `RunCheckpoint` serves two masters:
//   * the run guardian keeps one in memory as the best-iterate snapshot and
//     restores it on divergence (rollback-and-retune),
//   * `io::write_checkpoint` / `io::read_checkpoint` persist it to disk in a
//     versioned binary format so a killed run resumes with `--resume`.
//
// `StateBlob` is the generic payload: named float arrays + named double
// scalars. Names make the binary format self-describing and let restore
// fail loudly when a component's layout changed across versions.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace xplace::db {
class Database;
}

namespace xplace::core {

class Optimizer;
class Scheduler;
class GradientEngine;

/// Named arrays + scalars. Kept header-inline so the io serializer can read
/// it without a link dependency on xplace_core.
struct StateBlob {
  std::vector<std::pair<std::string, std::vector<float>>> arrays;
  std::vector<std::pair<std::string, double>> scalars;

  void put_array(std::string name, std::vector<float> v) {
    arrays.emplace_back(std::move(name), std::move(v));
  }
  void put_scalar(std::string name, double v) {
    scalars.emplace_back(std::move(name), v);
  }
  const std::vector<float>& array(const std::string& name) const {
    for (const auto& [k, v] : arrays)
      if (k == name) return v;
    throw std::runtime_error("checkpoint blob missing array '" + name + "'");
  }
  double scalar(const std::string& name) const {
    for (const auto& [k, v] : scalars)
      if (k == name) return v;
    throw std::runtime_error("checkpoint blob missing scalar '" + name + "'");
  }
  bool has_scalar(const std::string& name) const {
    for (const auto& [k, v] : scalars) {
      (void)v;
      if (k == name) return true;
    }
    return false;
  }
};

/// Full GP-loop state at an iteration boundary.
struct RunCheckpoint {
  static constexpr std::uint32_t kVersion = 1;

  std::string design;
  std::uint64_t n_total = 0;    ///< cells incl. fillers (layout fingerprint)
  std::uint64_t n_movable = 0;
  std::int32_t optimizer_kind = 0;  ///< core::OptimizerKind value

  std::int32_t next_iter = 0;   ///< first iteration the resumed loop executes
  double gamma = 0.0;
  double overflow = 1.0;
  double best_hpwl = 1e300;
  double hpwl = 0.0;            ///< HPWL at the captured iterate (snapshot rank)

  StateBlob optimizer;
  StateBlob scheduler;
  StateBlob engine;
};

/// Captures the current loop state. `hpwl` ranks guardian snapshots; the
/// loop scalars come from the caller since they live in run().
RunCheckpoint capture_checkpoint(const db::Database& db, int optimizer_kind,
                                 int next_iter, double gamma, double overflow,
                                 double best_hpwl, double hpwl,
                                 const Optimizer& opt, const Scheduler& sched,
                                 const GradientEngine& engine);

/// Restores a checkpoint into live components. Throws std::runtime_error when
/// the checkpoint does not match the design/optimizer it is applied to.
void restore_checkpoint(const RunCheckpoint& ck, const db::Database& db,
                        int optimizer_kind, Optimizer& opt, Scheduler& sched,
                        GradientEngine& engine);

}  // namespace xplace::core
