// Neural network layers for the Fourier-neural-operator extension
// (Section 3.3, Figure 3): pixel-wise linear ("1×1 conv" / FC lift), GELU,
// and the spectral convolution of Equation (11).
//
// All layers implement explicit forward/backward with cached activations —
// a deliberate mini-autograd, because the deployed network has a fixed
// topology. Tensors are channel-major double arrays: x[(c*H + h)*W + w].
// Every backward is finite-difference-verified in tests/test_nn.cpp.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace xplace::nn {

/// A learnable parameter: value and gradient of identical shape.
struct Parameter {
  std::vector<double> value;
  std::vector<double> grad;

  void resize(std::size_t n) {
    value.assign(n, 0.0);
    grad.assign(n, 0.0);
  }
  std::size_t size() const { return value.size(); }
};

/// Pixel-wise linear map (equivalently a 1×1 convolution or a per-pixel FC):
/// y[o][p] = b[o] + Σ_i w[o][i]·x[i][p].
class Conv1x1 {
 public:
  Conv1x1(int c_in, int c_out, Rng& rng);

  /// x: c_in×n_pix, y: c_out×n_pix (resized).
  void forward(const std::vector<double>& x, std::size_t n_pix,
               std::vector<double>& y);
  /// dy: c_out×n_pix; accumulates parameter grads, writes dx (resized).
  void backward(const std::vector<double>& dy, std::vector<double>& dx);

  Parameter& weight() { return w_; }
  Parameter& bias() { return b_; }
  int c_in() const { return c_in_; }
  int c_out() const { return c_out_; }
  std::size_t num_params() const { return w_.size() + b_.size(); }

 private:
  int c_in_, c_out_;
  Parameter w_, b_;
  std::vector<double> x_cache_;
  std::size_t n_pix_ = 0;
};

/// Exact GELU: 0.5·x·(1 + erf(x/√2)).
class Gelu {
 public:
  void forward(const std::vector<double>& x, std::vector<double>& y);
  void backward(const std::vector<double>& dy, std::vector<double>& dx);

 private:
  std::vector<double> x_cache_;
};

/// Spectral convolution (the Fourier path of Eq. (11)):
///   y_o = Re( ifft2( Σ_i W[o][i] ⊙ L(fft2(x_i)) ) )
/// where the low-pass filter L keeps the m×m lowest-frequency modes in the
/// two corners u ∈ [0,m) ∪ [H−m,H), v ∈ [0,m) (the Hermitian-independent
/// half), with complex weights per (o, i, mode).
class SpectralConv2d {
 public:
  SpectralConv2d(int c_in, int c_out, int modes, Rng& rng);

  /// x: c_in×H×W → y: c_out×H×W. H, W powers of two, H ≥ 2·modes.
  void forward(const std::vector<double>& x, int h, int w,
               std::vector<double>& y);
  void backward(const std::vector<double>& dy, std::vector<double>& dx);

  /// Complex weights flattened [2 corners][c_out][c_in][m][m], stored as
  /// interleaved (re, im) doubles.
  Parameter& weight() { return w_; }
  int modes() const { return modes_; }
  std::size_t num_params() const { return w_.size(); }

 private:
  std::size_t widx(int corner, int o, int i, int mu, int mv) const;

  int c_in_, c_out_, modes_;
  Parameter w_;
  int h_ = 0, w_pix_ = 0;
  std::vector<std::complex<double>> xhat_cache_;  // c_in×H×W spectra
};

}  // namespace xplace::nn
