// Xplace-NN: plugging the trained FieldNet into the gradient engine
// (Section 3.3, Equation (14)).
//
//   ∇'D = (1 − σ(ω))·∇D + σ(ω)·∇_nn D
//
// σ(ω) is high (≈0.9) in the early, wirelength-dominated stage and decays to
// ≈0 by ω ≈ 0.3, handing fine-grained spreading back to the numerical field.
// (The paper's printed formula has a sign typo — the denominator
// 1 − 5e^{ω/0.05−0.5} can vanish; we use the logistic with the shape the
// text describes: σ(ω) = 1 − 1/(1 + 5e^{−(ω/0.05 − 0.5)}).)
//
// The y-field is predicted with the transpose trick: Ey(D) = Ex(Dᵀ)ᵀ. The
// network is trained on unit-RMS labels, so each predicted component is
// rescaled to the RMS of the corresponding numerical field before blending.
#pragma once

#include <memory>
#include <vector>

#include "core/gradient_engine.h"
#include "nn/fno.h"

namespace xplace::nn {

/// σ(ω) as used by FnoGuidance (exposed for tests/benches).
double sigma_of_omega(double omega);

class FnoGuidance : public core::FieldGuidance {
 public:
  /// `net` must outlive this object. `predict_every` reuses the previous
  /// prediction for k−1 of every k calls (the maps drift slowly early on).
  /// `sigma_cutoff`: below this blend weight the network is not evaluated.
  /// `predict_grid`: when > 0 and smaller than the placement grid, the
  /// density map is average-pooled to predict_grid², predicted there, and the
  /// field bilinearly upsampled — exploiting the model's resolution
  /// independence to cut inference cost (the global, low-frequency guidance
  /// the early stage needs survives the pooling).
  /// `r_cutoff`: the network only engages while r = λ|∇D|/|∇WL| < r_cutoff,
  /// i.e. in the wirelength-dominated early stage the paper inserts the
  /// prediction into (≤ 0 disables the gate).
  explicit FnoGuidance(FieldNet* net, int predict_every = 1,
                       double sigma_cutoff = 0.02, int predict_grid = 0,
                       double r_cutoff = 0.0);

  void blend(const double* rho, int m, double bin_w, double bin_h,
             double omega, double r, std::vector<double>& ex,
             std::vector<double>& ey) override;

  /// Number of network evaluations performed (diagnostics).
  long evaluations() const { return evaluations_; }

 private:
  FieldNet* net_;
  int predict_every_;
  double sigma_cutoff_;
  int predict_grid_;
  double r_cutoff_;
  long calls_ = 0;
  long evaluations_ = 0;
  std::vector<double> cached_ex_, cached_ey_;
  int cached_m_ = 0;
};

}  // namespace xplace::nn
