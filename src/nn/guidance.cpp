#include "nn/guidance.h"

#include <cmath>

namespace xplace::nn {

double sigma_of_omega(double omega) {
  return 1.0 - 1.0 / (1.0 + 5.0 * std::exp(-(omega / 0.05 - 0.5)));
}

FnoGuidance::FnoGuidance(FieldNet* net, int predict_every, double sigma_cutoff,
                         int predict_grid, double r_cutoff)
    : net_(net),
      predict_every_(predict_every),
      sigma_cutoff_(sigma_cutoff),
      predict_grid_(predict_grid),
      r_cutoff_(r_cutoff) {}

namespace {

double rms(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc / static_cast<double>(v.size()));
}

std::vector<double> transpose(const std::vector<double>& a, int m) {
  std::vector<double> t(a.size());
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      t[static_cast<std::size_t>(j) * m + i] = a[static_cast<std::size_t>(i) * m + j];
    }
  }
  return t;
}

/// Average-pool an m×m map down by integer factor k.
std::vector<double> avg_pool(const double* a, int m, int k) {
  const int s = m / k;
  std::vector<double> out(static_cast<std::size_t>(s) * s, 0.0);
  const double inv = 1.0 / (k * k);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      out[static_cast<std::size_t>(i / k) * s + j / k] +=
          a[static_cast<std::size_t>(i) * m + j] * inv;
    }
  }
  return out;
}

/// Bilinear upsample an s×s map to m×m (cell-centered sampling).
std::vector<double> upsample(const std::vector<double>& a, int s, int m) {
  std::vector<double> out(static_cast<std::size_t>(m) * m);
  const double scale = static_cast<double>(s) / m;
  for (int i = 0; i < m; ++i) {
    const double fi = (i + 0.5) * scale - 0.5;
    const int i0 = std::clamp(static_cast<int>(std::floor(fi)), 0, s - 1);
    const int i1 = std::min(i0 + 1, s - 1);
    const double ti = std::clamp(fi - i0, 0.0, 1.0);
    for (int j = 0; j < m; ++j) {
      const double fj = (j + 0.5) * scale - 0.5;
      const int j0 = std::clamp(static_cast<int>(std::floor(fj)), 0, s - 1);
      const int j1 = std::min(j0 + 1, s - 1);
      const double tj = std::clamp(fj - j0, 0.0, 1.0);
      const double v00 = a[static_cast<std::size_t>(i0) * s + j0];
      const double v01 = a[static_cast<std::size_t>(i0) * s + j1];
      const double v10 = a[static_cast<std::size_t>(i1) * s + j0];
      const double v11 = a[static_cast<std::size_t>(i1) * s + j1];
      out[static_cast<std::size_t>(i) * m + j] =
          (1 - ti) * ((1 - tj) * v00 + tj * v01) + ti * ((1 - tj) * v10 + tj * v11);
    }
  }
  return out;
}

}  // namespace

void FnoGuidance::blend(const double* rho, int m, double /*bin_w*/,
                        double /*bin_h*/, double omega, double r,
                        std::vector<double>& ex, std::vector<double>& ey) {
  const double sigma = sigma_of_omega(omega);
  if (sigma < sigma_cutoff_) return;
  if (r_cutoff_ > 0.0 && r >= r_cutoff_) return;

  const std::size_t n = static_cast<std::size_t>(m) * m;
  const bool refresh =
      cached_m_ != m || (calls_ % std::max(1, predict_every_)) == 0;
  ++calls_;
  if (refresh) {
    if (predict_grid_ > 0 && predict_grid_ < m && m % predict_grid_ == 0) {
      const int s = predict_grid_;
      const std::vector<double> small = avg_pool(rho, m, m / s);
      cached_ex_ = upsample(net_->predict(small, s, s), s, m);
      cached_ey_ = upsample(
          transpose(net_->predict(transpose(small, s), s, s), s), s, m);
    } else {
      std::vector<double> density(rho, rho + n);
      cached_ex_ = net_->predict(density, m, m);
      // y-field via the transpose trick (the PDE is x↔y symmetric).
      cached_ey_ = transpose(net_->predict(transpose(density, m), m, m), m);
    }
    cached_m_ = m;
    ++evaluations_;
  }

  // Rescale unit-RMS predictions to the numerical field's scale.
  const double sx = rms(ex), sy = rms(ey);
  const double nx = rms(cached_ex_), ny = rms(cached_ey_);
  const double kx = nx > 1e-30 ? sx / nx : 0.0;
  const double ky = ny > 1e-30 ? sy / ny : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ex[i] = (1.0 - sigma) * ex[i] + sigma * kx * cached_ex_[i];
    ey[i] = (1.0 - sigma) * ey[i] + sigma * ky * cached_ey_[i];
  }
}

}  // namespace xplace::nn
