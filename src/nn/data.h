// Synthetic training data for the field-prediction network.
//
// Per Section 3.3: "we do not need to collect the ground-truth training data
// from real placement benchmarks. Rather, we can generate randomly
// distributed density maps and compute the numerical solution of the
// corresponding electric fields which will be used as labels."
//
// Each sample is a random density map (a mixture of Gaussian blobs, uniform
// rectangles — macro-like — and a noise floor, clipped to [0, ~2]) together
// with the x-direction field from the spectral Poisson solver. Labels are
// normalized to unit RMS (the paper normalizes label and prediction); the
// deployment path rescales predictions against the numerical field.
#pragma once

#include <cstdint>
#include <vector>

namespace xplace::nn {

struct FieldSample {
  std::vector<double> density;  ///< h×w, x-major
  std::vector<double> field_x;  ///< normalized (unit RMS) x field
  double label_rms = 0.0;       ///< RMS removed by normalization
};

/// Deterministic sample generator (same seed+index → same sample).
FieldSample make_field_sample(int grid, std::uint64_t seed);

/// A batch of independent samples.
std::vector<FieldSample> make_field_dataset(int grid, int count,
                                            std::uint64_t seed);

}  // namespace xplace::nn
