#include "nn/fno.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace xplace::nn {

namespace {
Rng make_rng(std::uint64_t seed, int salt) { return Rng(seed * 1315423911ULL + salt); }
}  // namespace

FieldNet::FieldNet(const FieldNetConfig& cfg) : cfg_(cfg) {
  Rng r0 = make_rng(cfg.seed, 0);
  lift_ = std::make_unique<Conv1x1>(3, cfg.width, r0);
  act_.assign(cfg.layers, Gelu{});
  for (int l = 0; l < cfg.layers; ++l) {
    Rng rs = make_rng(cfg.seed, 100 + l);
    spec_.push_back(std::make_unique<SpectralConv2d>(cfg.width, cfg.width,
                                                     cfg.modes, rs));
    Rng rc = make_rng(cfg.seed, 200 + l);
    spatial_.push_back(std::make_unique<Conv1x1>(cfg.width, cfg.width, rc));
  }
  Rng r1 = make_rng(cfg.seed, 300);
  proj1_ = std::make_unique<Conv1x1>(cfg.width, cfg.proj_hidden, r1);
  Rng r2 = make_rng(cfg.seed, 301);
  proj2_ = std::make_unique<Conv1x1>(cfg.proj_hidden, 1, r2);
  block_in_.resize(cfg.layers);
}

std::vector<double> FieldNet::make_input(const std::vector<double>& density,
                                         int h, int w) {
  const std::size_t n = static_cast<std::size_t>(h) * w;
  std::vector<double> input(3 * n);
  std::copy(density.begin(), density.begin() + n, input.begin());
  for (int ix = 0; ix < h; ++ix) {
    for (int iy = 0; iy < w; ++iy) {
      const std::size_t p = static_cast<std::size_t>(ix) * w + iy;
      input[n + p] = static_cast<double>(ix) / h;       // M_x
      input[2 * n + p] = static_cast<double>(iy) / w;   // M_y
    }
  }
  return input;
}

const std::vector<double>& FieldNet::forward(const std::vector<double>& input3,
                                             int h, int w) {
  h_ = h;
  w_ = w;
  const std::size_t n = static_cast<std::size_t>(h) * w;
  std::vector<double> cur;
  lift_->forward(input3, n, cur);
  for (int l = 0; l < cfg_.layers; ++l) {
    block_in_[l] = cur;
    spec_[l]->forward(cur, h, w, s_spec_);
    spatial_[l]->forward(cur, n, s_conv_);
    s_sum_.resize(s_spec_.size());
    for (std::size_t i = 0; i < s_sum_.size(); ++i) {
      s_sum_[i] = s_spec_[i] + s_conv_[i];
    }
    act_[l].forward(s_sum_, cur);
  }
  proj1_->forward(cur, n, s_proj_);
  std::vector<double> pa;
  proj_act_.forward(s_proj_, pa);
  proj2_->forward(pa, n, out_);
  return out_;
}

void FieldNet::backward(const std::vector<double>& d_out) {
  std::vector<double> d_cur, d_tmp, d_spec, d_conv;
  proj2_->backward(d_out, d_tmp);
  proj_act_.backward(d_tmp, d_cur);
  proj1_->backward(d_cur, d_tmp);
  d_cur = std::move(d_tmp);
  for (int l = cfg_.layers - 1; l >= 0; --l) {
    act_[l].backward(d_cur, d_tmp);  // d(sum)
    spec_[l]->backward(d_tmp, d_spec);
    spatial_[l]->backward(d_tmp, d_conv);
    d_cur.resize(d_spec.size());
    for (std::size_t i = 0; i < d_cur.size(); ++i) {
      d_cur[i] = d_spec[i] + d_conv[i];
    }
  }
  lift_->backward(d_cur, d_tmp);  // input grads discarded
}

std::vector<double> FieldNet::predict(const std::vector<double>& density,
                                      int h, int w) {
  const std::vector<double> input = make_input(density, h, w);
  return forward(input, h, w);
}

std::vector<Parameter*> FieldNet::parameters() {
  std::vector<Parameter*> out{&lift_->weight(), &lift_->bias()};
  for (int l = 0; l < cfg_.layers; ++l) {
    out.push_back(&spec_[l]->weight());
    out.push_back(&spatial_[l]->weight());
    out.push_back(&spatial_[l]->bias());
  }
  out.push_back(&proj1_->weight());
  out.push_back(&proj1_->bias());
  out.push_back(&proj2_->weight());
  out.push_back(&proj2_->bias());
  return out;
}

std::size_t FieldNet::num_params() const {
  std::size_t n = lift_->num_params() + proj1_->num_params() + proj2_->num_params();
  for (int l = 0; l < cfg_.layers; ++l) {
    n += spec_[l]->num_params() + spatial_[l]->num_params();
  }
  return n;
}

void FieldNet::zero_grad() {
  for (Parameter* p : parameters()) {
    std::fill(p->grad.begin(), p->grad.end(), 0.0);
  }
}

void FieldNet::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write model '" + path + "'");
  const std::uint32_t magic = 0x584E4E31;  // "XNN1"
  out.write(reinterpret_cast<const char*>(&magic), 4);
  const std::int32_t meta[4] = {cfg_.width, cfg_.modes, cfg_.layers,
                                cfg_.proj_hidden};
  out.write(reinterpret_cast<const char*>(meta), sizeof(meta));
  for (const Parameter* p : const_cast<FieldNet*>(this)->parameters()) {
    const std::uint64_t sz = p->value.size();
    out.write(reinterpret_cast<const char*>(&sz), 8);
    out.write(reinterpret_cast<const char*>(p->value.data()),
              static_cast<std::streamsize>(sz * sizeof(double)));
  }
}

void FieldNet::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read model '" + path + "'");
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), 4);
  if (magic != 0x584E4E31) throw std::runtime_error("bad model magic");
  std::int32_t meta[4];
  in.read(reinterpret_cast<char*>(meta), sizeof(meta));
  if (meta[0] != cfg_.width || meta[1] != cfg_.modes || meta[2] != cfg_.layers ||
      meta[3] != cfg_.proj_hidden) {
    throw std::runtime_error("model config mismatch in '" + path + "'");
  }
  for (Parameter* p : parameters()) {
    std::uint64_t sz = 0;
    in.read(reinterpret_cast<char*>(&sz), 8);
    if (sz != p->value.size()) throw std::runtime_error("model size mismatch");
    in.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(sz * sizeof(double)));
  }
  if (!in) throw std::runtime_error("truncated model file");
}

// ---------------- Adam ----------------

Adam::Adam(std::vector<Parameter*> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i]->size(), 0.0);
    v_[i].assign(params_[i]->size(), 0.0);
  }
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i];
    for (std::size_t j = 0; j < p.size(); ++j) {
      m_[i][j] = beta1_ * m_[i][j] + (1 - beta1_) * p.grad[j];
      v_[i][j] = beta2_ * v_[i][j] + (1 - beta2_) * p.grad[j] * p.grad[j];
      p.value[j] -=
          lr_ * (m_[i][j] / bc1) / (std::sqrt(v_[i][j] / bc2) + eps_);
    }
  }
}

// ---------------- loss ----------------

double relative_l2(const std::vector<double>& pred,
                   const std::vector<double>& label,
                   std::vector<double>& grad) {
  double d2 = 0.0, y2 = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - label[i];
    d2 += d * d;
    y2 += label[i] * label[i];
  }
  const double dn = std::sqrt(d2), yn = std::sqrt(std::max(y2, 1e-30));
  grad.resize(pred.size());
  const double scale = dn > 1e-30 ? 1.0 / (dn * yn) : 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    grad[i] = (pred[i] - label[i]) * scale;
  }
  return dn / yn;
}

}  // namespace xplace::nn
