#include "nn/layers.h"

#include <cassert>
#include <cmath>
#include <numbers>

#include "fft/fft.h"

namespace xplace::nn {

// ---------------- Conv1x1 ----------------

Conv1x1::Conv1x1(int c_in, int c_out, Rng& rng) : c_in_(c_in), c_out_(c_out) {
  w_.resize(static_cast<std::size_t>(c_in) * c_out);
  b_.resize(c_out);
  // Kaiming-style init.
  const double scale = std::sqrt(2.0 / c_in);
  for (auto& v : w_.value) v = rng.normal(0.0, scale);
}

void Conv1x1::forward(const std::vector<double>& x, std::size_t n_pix,
                      std::vector<double>& y) {
  assert(x.size() == static_cast<std::size_t>(c_in_) * n_pix);
  n_pix_ = n_pix;
  x_cache_ = x;
  y.assign(static_cast<std::size_t>(c_out_) * n_pix, 0.0);
  for (int o = 0; o < c_out_; ++o) {
    double* yo = y.data() + static_cast<std::size_t>(o) * n_pix;
    for (std::size_t p = 0; p < n_pix; ++p) yo[p] = b_.value[o];
    for (int i = 0; i < c_in_; ++i) {
      const double w = w_.value[static_cast<std::size_t>(o) * c_in_ + i];
      const double* xi = x.data() + static_cast<std::size_t>(i) * n_pix;
      for (std::size_t p = 0; p < n_pix; ++p) yo[p] += w * xi[p];
    }
  }
}

void Conv1x1::backward(const std::vector<double>& dy, std::vector<double>& dx) {
  assert(dy.size() == static_cast<std::size_t>(c_out_) * n_pix_);
  dx.assign(static_cast<std::size_t>(c_in_) * n_pix_, 0.0);
  for (int o = 0; o < c_out_; ++o) {
    const double* dyo = dy.data() + static_cast<std::size_t>(o) * n_pix_;
    for (std::size_t p = 0; p < n_pix_; ++p) b_.grad[o] += dyo[p];
    for (int i = 0; i < c_in_; ++i) {
      const double* xi = x_cache_.data() + static_cast<std::size_t>(i) * n_pix_;
      double* dxi = dx.data() + static_cast<std::size_t>(i) * n_pix_;
      const double w = w_.value[static_cast<std::size_t>(o) * c_in_ + i];
      double wg = 0.0;
      for (std::size_t p = 0; p < n_pix_; ++p) {
        wg += dyo[p] * xi[p];
        dxi[p] += w * dyo[p];
      }
      w_.grad[static_cast<std::size_t>(o) * c_in_ + i] += wg;
    }
  }
}

// ---------------- GELU ----------------

void Gelu::forward(const std::vector<double>& x, std::vector<double>& y) {
  x_cache_ = x;
  y.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = 0.5 * x[i] * (1.0 + std::erf(x[i] * 0.7071067811865476));
  }
}

void Gelu::backward(const std::vector<double>& dy, std::vector<double>& dx) {
  dx.resize(dy.size());
  constexpr double inv_sqrt2pi = 0.3989422804014327;
  for (std::size_t i = 0; i < dy.size(); ++i) {
    const double x = x_cache_[i];
    const double cdf = 0.5 * (1.0 + std::erf(x * 0.7071067811865476));
    const double pdf = inv_sqrt2pi * std::exp(-0.5 * x * x);
    dx[i] = dy[i] * (cdf + x * pdf);
  }
}

// ---------------- SpectralConv2d ----------------

SpectralConv2d::SpectralConv2d(int c_in, int c_out, int modes, Rng& rng)
    : c_in_(c_in), c_out_(c_out), modes_(modes) {
  // 2 corners × c_out × c_in × m × m complex weights (interleaved re/im).
  w_.resize(2ull * c_out * c_in * modes * modes * 2);
  const double scale = 1.0 / (static_cast<double>(c_in) * modes);
  for (auto& v : w_.value) v = rng.normal(0.0, scale);
}

std::size_t SpectralConv2d::widx(int corner, int o, int i, int mu,
                                 int mv) const {
  return ((((static_cast<std::size_t>(corner) * c_out_ + o) * c_in_ + i) *
               modes_ +
           mu) *
              modes_ +
          mv) *
         2;
}

void SpectralConv2d::forward(const std::vector<double>& x, int h, int w,
                             std::vector<double>& y) {
  assert(h >= 2 * modes_ && w >= 2 * modes_);
  h_ = h;
  w_pix_ = w;
  const std::size_t n = static_cast<std::size_t>(h) * w;
  using C = std::complex<double>;

  // Spectra of every input channel (cached for backward).
  xhat_cache_.assign(static_cast<std::size_t>(c_in_) * n, C(0, 0));
  for (int i = 0; i < c_in_; ++i) {
    C* xi = xhat_cache_.data() + static_cast<std::size_t>(i) * n;
    const double* src = x.data() + static_cast<std::size_t>(i) * n;
    for (std::size_t p = 0; p < n; ++p) xi[p] = C(src[p], 0.0);
    fft::fft2(xi, h, w);
  }

  y.assign(static_cast<std::size_t>(c_out_) * n, 0.0);
  std::vector<C> yhat(n);
  for (int o = 0; o < c_out_; ++o) {
    std::fill(yhat.begin(), yhat.end(), C(0, 0));
    for (int corner = 0; corner < 2; ++corner) {
      for (int mu = 0; mu < modes_; ++mu) {
        const int u = corner == 0 ? mu : h - modes_ + mu;
        for (int mv = 0; mv < modes_; ++mv) {
          C acc(0, 0);
          for (int i = 0; i < c_in_; ++i) {
            const double* wp = w_.value.data() + widx(corner, o, i, mu, mv);
            const C wc(wp[0], wp[1]);
            acc += wc * xhat_cache_[static_cast<std::size_t>(i) * n +
                                    static_cast<std::size_t>(u) * w + mv];
          }
          yhat[static_cast<std::size_t>(u) * w + mv] = acc;
        }
      }
    }
    fft::ifft2(yhat.data(), h, w);
    double* yo = y.data() + static_cast<std::size_t>(o) * n;
    for (std::size_t p = 0; p < n; ++p) yo[p] = yhat[p].real();
  }
}

void SpectralConv2d::backward(const std::vector<double>& dy,
                              std::vector<double>& dx) {
  const int h = h_, w = w_pix_;
  const std::size_t n = static_cast<std::size_t>(h) * w;
  using C = std::complex<double>;

  // dŶ_o = fft2(dy_o)/N  (adjoint of y = Re(ifft2(Ŷ))).
  // dX̂_i[k] = Σ_o conj(W)·dŶ_o[k];  dW = conj(X̂)·dŶ.
  // dx_i = N·Re(ifft2(dX̂_i))      (adjoint of X̂ = fft2(x)).
  std::vector<C> dyhat(n);
  std::vector<C> dxhat(static_cast<std::size_t>(c_in_) * n, C(0, 0));
  const double inv_n = 1.0 / static_cast<double>(n);

  for (int o = 0; o < c_out_; ++o) {
    const double* dyo = dy.data() + static_cast<std::size_t>(o) * n;
    for (std::size_t p = 0; p < n; ++p) dyhat[p] = C(dyo[p], 0.0);
    fft::fft2(dyhat.data(), h, w);
    for (std::size_t p = 0; p < n; ++p) dyhat[p] *= inv_n;

    for (int corner = 0; corner < 2; ++corner) {
      for (int mu = 0; mu < modes_; ++mu) {
        const int u = corner == 0 ? mu : h - modes_ + mu;
        for (int mv = 0; mv < modes_; ++mv) {
          const C g = dyhat[static_cast<std::size_t>(u) * w + mv];
          for (int i = 0; i < c_in_; ++i) {
            const std::size_t k =
                static_cast<std::size_t>(i) * n + static_cast<std::size_t>(u) * w + mv;
            double* wp = w_.value.data() + widx(corner, o, i, mu, mv);
            double* wg = w_.grad.data() + widx(corner, o, i, mu, mv);
            const C wc(wp[0], wp[1]);
            const C dw = std::conj(xhat_cache_[k]) * g;
            wg[0] += dw.real();
            wg[1] += dw.imag();
            dxhat[k] += std::conj(wc) * g;
          }
        }
      }
    }
  }

  dx.assign(static_cast<std::size_t>(c_in_) * n, 0.0);
  std::vector<C> tmp(n);
  for (int i = 0; i < c_in_; ++i) {
    std::copy(dxhat.begin() + static_cast<std::size_t>(i) * n,
              dxhat.begin() + static_cast<std::size_t>(i + 1) * n, tmp.begin());
    fft::ifft2(tmp.data(), h, w);
    double* dxi = dx.data() + static_cast<std::size_t>(i) * n;
    for (std::size_t p = 0; p < n; ++p) {
      dxi[p] = tmp[p].real() * static_cast<double>(n);
    }
  }
}

}  // namespace xplace::nn
