#include "nn/data.h"

#include <algorithm>
#include <cmath>

#include "ops/electrostatics.h"
#include "util/rng.h"

namespace xplace::nn {

FieldSample make_field_sample(int grid, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t n = static_cast<std::size_t>(grid) * grid;
  FieldSample s;
  s.density.assign(n, 0.0);

  // Noise floor (whitespace utilization).
  const double floor = rng.uniform(0.1, 0.5);
  for (auto& v : s.density) v = floor * rng.uniform(0.5, 1.5);

  // Gaussian blobs (clustered standard cells).
  const int blobs = rng.uniform_int(2, 6);
  for (int b = 0; b < blobs; ++b) {
    const double cx = rng.uniform(0.15, 0.85) * grid;
    const double cy = rng.uniform(0.15, 0.85) * grid;
    const double sx = rng.uniform(0.04, 0.2) * grid;
    const double sy = rng.uniform(0.04, 0.2) * grid;
    const double amp = rng.uniform(0.5, 1.6);
    for (int ix = 0; ix < grid; ++ix) {
      for (int iy = 0; iy < grid; ++iy) {
        const double dx = (ix + 0.5 - cx) / sx, dy = (iy + 0.5 - cy) / sy;
        s.density[static_cast<std::size_t>(ix) * grid + iy] +=
            amp * std::exp(-0.5 * (dx * dx + dy * dy));
      }
    }
  }

  // Uniform rectangles (macro-like plateaus).
  const int rects = rng.uniform_int(0, 3);
  for (int r = 0; r < rects; ++r) {
    const int x0 = rng.uniform_int(0, grid - 2);
    const int y0 = rng.uniform_int(0, grid - 2);
    const int x1 = std::min(grid - 1, x0 + rng.uniform_int(2, grid / 3 + 2));
    const int y1 = std::min(grid - 1, y0 + rng.uniform_int(2, grid / 3 + 2));
    const double amp = rng.uniform(0.6, 1.2);
    for (int ix = x0; ix <= x1; ++ix) {
      for (int iy = y0; iy <= y1; ++iy) {
        s.density[static_cast<std::size_t>(ix) * grid + iy] = amp;
      }
    }
  }
  for (auto& v : s.density) v = std::clamp(v, 0.0, 2.0);

  // Numerical label: x-direction field on unit bins.
  ops::PoissonSolver solver(grid, 1.0, 1.0);
  solver.solve(s.density.data(), /*want_potential=*/false);
  s.field_x = solver.ex();

  double rms = 0.0;
  for (double v : s.field_x) rms += v * v;
  rms = std::sqrt(rms / static_cast<double>(n));
  s.label_rms = rms;
  if (rms > 1e-30) {
    for (auto& v : s.field_x) v /= rms;
  }
  return s;
}

std::vector<FieldSample> make_field_dataset(int grid, int count,
                                            std::uint64_t seed) {
  std::vector<FieldSample> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) {
    out.push_back(make_field_sample(grid, seed * 1000003ULL + i));
  }
  return out;
}

}  // namespace xplace::nn
