// FieldNet: the two-path Fourier neural operator of Section 3.3 / Figure 3.
//
//   input  I = {D; M_x; M_y}          (density map + mesh-grid channels)
//   I_m    = FC(I)                     (lift to `width` channels)
//   block  O = GELU(Conv2D(I_m) + Freq(I_m))   × `layers`
//   output = FC⁻¹(O)                   (projection head → 1 channel)
//
// The network is resolution-independent: the spectral layers keep a fixed
// number of low-frequency modes and the spatial path is pixel-wise, so a
// model trained on 64×64 maps deploys on any power-of-two grid. The y-field
// is obtained from the x-field network by transposing the input and output
// (the PDE is symmetric under x↔y), as described in the paper.
//
// With the default config (width 20, modes 8, 4 layers, 128-wide projection)
// the parameter count is ~414k — the same class as the paper's 471k.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.h"

namespace xplace::nn {

struct FieldNetConfig {
  int width = 20;       ///< lifted channel count C
  int modes = 8;        ///< retained low-frequency modes per dimension
  int layers = 4;       ///< FNO blocks
  int proj_hidden = 128;
  std::uint64_t seed = 7;
};

class FieldNet {
 public:
  explicit FieldNet(const FieldNetConfig& cfg = {});

  /// Predict the x-direction electric field of an h×w density map (row-major
  /// x-major layout like ops::DensityGrid). Powers of two, ≥ 2·modes.
  std::vector<double> predict(const std::vector<double>& density, int h, int w);

  /// Forward on a prebuilt 3-channel input (training path). Returns the
  /// 1-channel output; caches activations for backward().
  const std::vector<double>& forward(const std::vector<double>& input3, int h,
                                     int w);
  /// Backprop from d(output); accumulates parameter gradients.
  void backward(const std::vector<double>& d_out);

  /// Builds {D; M_x; M_y} with M_x(x,y) = x/X, M_y = y/Y.
  static std::vector<double> make_input(const std::vector<double>& density,
                                        int h, int w);

  std::vector<Parameter*> parameters();
  std::size_t num_params() const;
  void zero_grad();

  void save(const std::string& path) const;
  void load(const std::string& path);

  const FieldNetConfig& config() const { return cfg_; }

 private:
  FieldNetConfig cfg_;
  std::unique_ptr<Conv1x1> lift_;
  std::vector<std::unique_ptr<SpectralConv2d>> spec_;
  std::vector<std::unique_ptr<Conv1x1>> spatial_;
  std::vector<Gelu> act_;
  std::unique_ptr<Conv1x1> proj1_;
  Gelu proj_act_;
  std::unique_ptr<Conv1x1> proj2_;

  int h_ = 0, w_ = 0;
  // Cached block inputs for backward.
  std::vector<std::vector<double>> block_in_;
  std::vector<double> out_;
  // scratch
  std::vector<double> s_spec_, s_conv_, s_sum_, s_proj_;
};

/// Adam over a set of parameters.
class Adam {
 public:
  explicit Adam(std::vector<Parameter*> params, double lr = 1e-3);
  void step();
  void set_lr(double lr) { lr_ = lr; }

 private:
  std::vector<Parameter*> params_;
  std::vector<std::vector<double>> m_, v_;
  double lr_, beta1_ = 0.9, beta2_ = 0.999, eps_ = 1e-8;
  long t_ = 0;
};

/// Relative L2 loss (Equation (13)): L = ‖p − y‖₂ / ‖y‖₂.
/// Writes dL/dp into `grad` and returns L.
double relative_l2(const std::vector<double>& pred,
                   const std::vector<double>& label, std::vector<double>& grad);

}  // namespace xplace::nn
