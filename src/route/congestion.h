// Global-routing congestion estimation — the stand-in for NCTUgr's top5
// overflow metric in Table 4.
//
// Two demand models over a gcell grid:
//   * RUDY (Rectangular Uniform wire DensitY): each net smears
//     (w + h)/(w·h) wire demand over its bounding box — fast, smooth.
//   * Probabilistic two-pattern routing: each net is decomposed into 2-pin
//     edges along a chain sorted by x; each edge contributes half a unit of
//     demand along each of its two L-shaped routes (upper-L and lower-L),
//     split into horizontal demand (on gcell x-edges) and vertical demand —
//     the classic probabilistic congestion map global routers start from.
//
// Overflow per gcell = max(demand − capacity, 0) summed over the H and V
// layers; OVFL-5 is the mean overflow of the 5 % most congested gcells
// (the paper's "top5 overflow", Equation in Section 4.1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "db/database.h"

namespace xplace::route {

struct CongestionConfig {
  int grid = 64;              ///< gcell grid dimension (grid × grid)
  double tracks_per_gcell = 10.0;  ///< per-direction routing capacity scale
  bool use_lshape = true;     ///< probabilistic 2-pattern routing (else RUDY only)
};

struct CongestionResult {
  int grid = 0;
  std::vector<double> demand_h;   ///< horizontal wire demand per gcell
  std::vector<double> demand_v;   ///< vertical wire demand per gcell
  double capacity_h = 0.0;        ///< uniform per-gcell capacity (per dir)
  double capacity_v = 0.0;
  double total_overflow = 0.0;
  double max_overflow = 0.0;
  double top5_overflow = 0.0;     ///< mean overflow of top 5% congested gcells
  double top5_utilization = 0.0;  ///< mean demand/capacity of top 5% gcells

  std::string summary() const;
};

CongestionResult estimate_congestion(const db::Database& db,
                                     const CongestionConfig& cfg = {});

/// Pure RUDY map (tests + NN features): demand[ix*grid+iy].
std::vector<double> rudy_map(const db::Database& db, int grid);

}  // namespace xplace::route
