#include "route/congestion.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace xplace::route {

std::string CongestionResult::summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "grid %d  total_ovfl %.4g  max_ovfl %.4g  top5_ovfl %.4g  "
                "top5_util %.3f",
                grid, total_overflow, max_overflow, top5_overflow,
                top5_utilization);
  return buf;
}

std::vector<double> rudy_map(const db::Database& db, int grid) {
  std::vector<double> demand(static_cast<std::size_t>(grid) * grid, 0.0);
  const auto& r = db.region();
  const double gw = r.width() / grid, gh = r.height() / grid;
  for (std::size_t e = 0; e < db.num_nets(); ++e) {
    const std::size_t begin = db.net_pin_start(e), end = db.net_pin_start(e + 1);
    if (end - begin < 2) continue;
    double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
    for (std::size_t p = begin; p < end; ++p) {
      const std::size_t c = db.pin_cell(p);
      const double px = db.x(c) + db.pin_offset_x(p);
      const double py = db.y(c) + db.pin_offset_y(p);
      min_x = std::min(min_x, px);
      max_x = std::max(max_x, px);
      min_y = std::min(min_y, py);
      max_y = std::max(max_y, py);
    }
    const double w = std::max(max_x - min_x, gw), h = std::max(max_y - min_y, gh);
    // RUDY: wirelength (w+h) spread uniformly over the bbox area.
    const double dens = (w + h) / (w * h);
    int bx0 = std::clamp(static_cast<int>((min_x - r.lx) / gw), 0, grid - 1);
    int bx1 = std::clamp(static_cast<int>((max_x - r.lx) / gw), 0, grid - 1);
    int by0 = std::clamp(static_cast<int>((min_y - r.ly) / gh), 0, grid - 1);
    int by1 = std::clamp(static_cast<int>((max_y - r.ly) / gh), 0, grid - 1);
    for (int bx = bx0; bx <= bx1; ++bx) {
      for (int by = by0; by <= by1; ++by) {
        // Overlap-weighted smear.
        const double ow = std::min(max_x, r.lx + (bx + 1) * gw) -
                          std::max(min_x, r.lx + bx * gw);
        const double oh = std::min(max_y, r.ly + (by + 1) * gh) -
                          std::max(min_y, r.ly + by * gh);
        demand[static_cast<std::size_t>(bx) * grid + by] +=
            dens * std::max(ow, 0.0) * std::max(oh, 0.0) / (gw * gh);
      }
    }
  }
  return demand;
}

namespace {

/// Adds probabilistic 2-pattern (L-shape) demand of a 2-pin connection
/// (x0,y0)→(x1,y1): each L route carries weight 0.5. Horizontal demand lands
/// on the gcells the horizontal span crosses (at the y of the row used);
/// vertical demand likewise.
void add_lshape(std::vector<double>& dh, std::vector<double>& dv, int grid,
                double gw, double gh, double lx, double ly, double x0,
                double y0, double x1, double y1) {
  auto gx = [&](double x) {
    return std::clamp(static_cast<int>((x - lx) / gw), 0, grid - 1);
  };
  auto gy = [&](double y) {
    return std::clamp(static_cast<int>((y - ly) / gh), 0, grid - 1);
  };
  const int bx0 = gx(std::min(x0, x1)), bx1 = gx(std::max(x0, x1));
  const int by0 = gy(std::min(y0, y1)), by1 = gy(std::max(y0, y1));
  const int src_y = gy(y0), dst_y = gy(y1);
  const int src_x = gx(x0), dst_x = gx(x1);
  // Route A: horizontal at src_y then vertical at dst_x.
  // Route B: vertical at src_x then horizontal at dst_y.
  for (int bx = bx0; bx <= bx1; ++bx) {
    dh[static_cast<std::size_t>(bx) * grid + src_y] += 0.5;
    dh[static_cast<std::size_t>(bx) * grid + dst_y] += 0.5;
  }
  for (int by = by0; by <= by1; ++by) {
    dv[static_cast<std::size_t>(dst_x) * grid + by] += 0.5;
    dv[static_cast<std::size_t>(src_x) * grid + by] += 0.5;
  }
}

}  // namespace

CongestionResult estimate_congestion(const db::Database& db,
                                     const CongestionConfig& cfg) {
  CongestionResult res;
  res.grid = cfg.grid;
  const std::size_t nbins = static_cast<std::size_t>(cfg.grid) * cfg.grid;
  res.demand_h.assign(nbins, 0.0);
  res.demand_v.assign(nbins, 0.0);
  const auto& r = db.region();
  const double gw = r.width() / cfg.grid, gh = r.height() / cfg.grid;

  if (cfg.use_lshape) {
    // Chain decomposition: pins sorted by x, consecutive pairs routed.
    std::vector<std::pair<double, double>> pins;
    for (std::size_t e = 0; e < db.num_nets(); ++e) {
      const std::size_t begin = db.net_pin_start(e), end = db.net_pin_start(e + 1);
      if (end - begin < 2) continue;
      pins.clear();
      for (std::size_t p = begin; p < end; ++p) {
        const std::size_t c = db.pin_cell(p);
        pins.emplace_back(db.x(c) + db.pin_offset_x(p),
                          db.y(c) + db.pin_offset_y(p));
      }
      std::sort(pins.begin(), pins.end());
      for (std::size_t i = 1; i < pins.size(); ++i) {
        add_lshape(res.demand_h, res.demand_v, cfg.grid, gw, gh, r.lx, r.ly,
                   pins[i - 1].first, pins[i - 1].second, pins[i].first,
                   pins[i].second);
      }
    }
  } else {
    // RUDY-only: split the smeared demand half/half into H and V.
    const std::vector<double> rudy = rudy_map(db, cfg.grid);
    for (std::size_t b = 0; b < nbins; ++b) {
      // Convert wire density (length/area) to track usage per gcell.
      const double tracks = rudy[b] * gw;  // wirelength crossing the gcell
      res.demand_h[b] = 0.5 * tracks;
      res.demand_v[b] = 0.5 * tracks;
    }
  }

  // Uniform capacity: tracks_per_gcell per direction.
  res.capacity_h = cfg.tracks_per_gcell;
  res.capacity_v = cfg.tracks_per_gcell;

  // Per-gcell overflow (H + V) and the top-5% statistic.
  std::vector<double> overflow(nbins), utilization(nbins);
  for (std::size_t b = 0; b < nbins; ++b) {
    const double oh = std::max(res.demand_h[b] - res.capacity_h, 0.0);
    const double ov = std::max(res.demand_v[b] - res.capacity_v, 0.0);
    overflow[b] = oh + ov;
    utilization[b] = 0.5 * (res.demand_h[b] / res.capacity_h +
                            res.demand_v[b] / res.capacity_v);
    res.total_overflow += overflow[b];
    res.max_overflow = std::max(res.max_overflow, overflow[b]);
  }
  std::vector<std::size_t> idx(nbins);
  for (std::size_t b = 0; b < nbins; ++b) idx[b] = b;
  const std::size_t top = std::max<std::size_t>(1, nbins / 20);
  std::partial_sort(idx.begin(), idx.begin() + top, idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      return utilization[a] > utilization[b];
                    });
  double ovfl_sum = 0.0, util_sum = 0.0;
  for (std::size_t k = 0; k < top; ++k) {
    ovfl_sum += overflow[idx[k]];
    util_sum += utilization[idx[k]];
  }
  res.top5_overflow = ovfl_sum / static_cast<double>(top);
  res.top5_utilization = util_sum / static_cast<double>(top);
  return res;
}

}  // namespace xplace::route
