#include "route/inflation.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace xplace::route {

std::vector<double> compute_inflation_factors(const db::Database& db,
                                              const CongestionResult& congestion,
                                              const InflationConfig& cfg) {
  const int grid = congestion.grid;
  const auto& r = db.region();
  const double gw = r.width() / grid, gh = r.height() / grid;
  std::vector<double> factors(db.num_movable(), 1.0);
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    const int gx = std::clamp(static_cast<int>((db.x(c) - r.lx) / gw), 0, grid - 1);
    const int gy = std::clamp(static_cast<int>((db.y(c) - r.ly) / gh), 0, grid - 1);
    const std::size_t b = static_cast<std::size_t>(gx) * grid + gy;
    const double util = 0.5 * (congestion.demand_h[b] / congestion.capacity_h +
                               congestion.demand_v[b] / congestion.capacity_v);
    if (util > cfg.start_utilization) {
      factors[c] = std::min(cfg.max_factor,
                            1.0 + cfg.gain * (util - cfg.start_utilization));
    }
  }
  return factors;
}

double apply_inflation(db::Database& db, const std::vector<double>& factors) {
  // Cap total growth: inflated movable area must stay below 95% of the free
  // area, otherwise scale all factors' growth down proportionally.
  const double free_area = db.region().area() - db.fixed_area_in_region();
  double inflated_area = 0.0;
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    inflated_area += db.area(c) * factors[c];
  }
  const double budget = 0.95 * db.target_density() * free_area;
  double shrink = 1.0;
  if (inflated_area > budget && inflated_area > db.total_movable_area()) {
    shrink = std::max(0.0, (budget - db.total_movable_area()) /
                               (inflated_area - db.total_movable_area()));
    shrink = std::clamp(shrink, 0.0, 1.0);
  }
  const double before = db.total_movable_area();
  for (std::size_t c = 0; c < db.num_movable(); ++c) {
    const double f = 1.0 + (factors[c] - 1.0) * shrink;
    if (f != 1.0) db.scale_cell_width(c, f);
  }
  const double growth = db.total_movable_area() / before;
  XP_INFO("inflation: movable area x%.3f (budget shrink %.2f)", growth, shrink);
  return growth;
}

}  // namespace xplace::route
