// Congestion-driven cell inflation — the classic routability-driven placement
// feedback loop (the paper lists routability handling as future work; this is
// the standard Ripple/EH?Placer-style mechanism built on our congestion
// estimator).
//
// Cells sitting in over-utilized gcells get their width inflated so the next
// global-placement pass reserves whitespace where routing demand is high.
#pragma once

#include <vector>

#include "db/database.h"
#include "route/congestion.h"

namespace xplace::route {

struct InflationConfig {
  double start_utilization = 0.7;  ///< inflation kicks in above this gcell util
  double max_factor = 2.0;         ///< per-cell width multiplier cap
  double gain = 1.5;               ///< factor = 1 + gain·(util − start)
};

/// Per-movable-cell width factors (≥ 1) from a congestion estimate. The
/// factor of a cell is driven by the utilization of the gcell containing its
/// center.
std::vector<double> compute_inflation_factors(const db::Database& db,
                                              const CongestionResult& congestion,
                                              const InflationConfig& cfg = {});

/// Applies factors to the database's movable cell widths (clamped so the
/// total inflated movable area stays below the region's free capacity).
/// Returns the achieved total-area growth ratio.
double apply_inflation(db::Database& db, const std::vector<double>& factors);

}  // namespace xplace::route
