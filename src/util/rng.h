// Deterministic pseudo-random number generation.
//
// All stochastic components of the framework (benchmark generation, filler
// initialization, NN weight init, training-data synthesis) draw from `Rng`
// seeded explicitly, so every experiment in this repository is reproducible
// bit-for-bit across runs and thread counts.
#pragma once

#include <cstdint>
#include <cmath>

namespace xplace {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
/// Seeded via SplitMix64 so that any 64-bit seed yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into four state words.
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's multiply-shift rejection-free variant is overkill here; the
    // simple modulo bias is negligible for the n << 2^64 used in this repo,
    // but we keep the debiased version for correctness.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      std::uint64_t t = -n % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  int uniform_int(int lo, int hi_inclusive) {
    return lo + static_cast<int>(
                    uniform_index(static_cast<std::uint64_t>(hi_inclusive) -
                                  static_cast<std::uint64_t>(lo) + 1));
  }

  /// Standard normal via Box–Muller (one value per call; simple and exact).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    // Avoid log(0).
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  bool bernoulli(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace xplace
