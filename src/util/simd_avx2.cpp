// AVX2+FMA backend of the SIMD kernel layer (src/util/simd.h).
//
// Compiled into every build via per-function target attributes, selected at
// runtime only when the CPU reports AVX2+FMA — no global -mavx2 flag, so the
// rest of the binary stays baseline-x86-64 and the scalar backend stays
// bitwise-identical to the pre-SIMD kernels.
//
// Lane policy (DESIGN.md §10):
//   * elementwise f32 kernels use mul/add (never FMA) so they are bitwise-
//     equal to scalar; this TU is built with -ffp-contract=off so the
//     compiler cannot fuse them behind our back,
//   * reductions accumulate per-lane and fold lanes in one fixed order —
//     deterministic run-to-run, different rounding than scalar (documented),
//   * exp is a Cephes-style degree-5 polynomial on floats (≤2 ULP of expf on
//     the WA input range (-87.3, 0]; arguments are clamped to ±87.3/88.7),
//   * tails are handled with AVX2 masked loads/stores (no out-of-bounds
//     touches — the ASan lane runs the parity sweep over head/tail sizes).
#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstdint>
#include <limits>

#define XP_TGT __attribute__((target("avx2,fma")))

namespace xplace::simd {
namespace avx2 {
namespace {

alignas(32) constexpr std::int32_t kMask32[16] = {-1, -1, -1, -1, -1, -1, -1,
                                                  -1, 0,  0,  0,  0,  0,  0,
                                                  0,  0};
alignas(32) constexpr std::int64_t kMask64[8] = {-1, -1, -1, -1, 0, 0, 0, 0};

/// Load mask with the low `rem` (1..7) f32 lanes enabled.
XP_TGT inline __m256i mask8(std::size_t rem) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask32 + (8 - rem)));
}
/// Load mask with the low `rem` (1..3) f64 lanes enabled.
XP_TGT inline __m256i mask4(std::size_t rem) {
  return _mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(kMask64 + (4 - rem)));
}

/// Fixed-order horizontal sum: lane0+lane1+lane2+lane3 (deterministic).
XP_TGT inline double hsum4(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

/// Widen the low/high float quads of `v` to doubles.
XP_TGT inline __m256d lo_pd(__m256 v) {
  return _mm256_cvtps_pd(_mm256_castps256_ps128(v));
}
XP_TGT inline __m256d hi_pd(__m256 v) {
  return _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

/// Cephes-style vector expf (degree-5 minimax on the reduced range, exact
/// power-of-two scaling). Inputs are clamped to [-87.336, 88.722]; on the WA
/// range (-87.3, 0] the result is within 2 ULP of std::expf.
XP_TGT inline __m256 exp256(__m256 x) {
  const __m256 hi = _mm256_set1_ps(88.72283935546875f);
  const __m256 lo = _mm256_set1_ps(-87.33654785156250f);
  const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 c1 = _mm256_set1_ps(0.693359375f);
  const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_max_ps(_mm256_min_ps(x, hi), lo);
  __m256 fx =
      _mm256_floor_ps(_mm256_fmadd_ps(x, log2e, _mm256_set1_ps(0.5f)));
  // Cody–Waite reduction: r = x − fx·ln2 (split constant).
  x = _mm256_fnmadd_ps(fx, c1, x);
  x = _mm256_fnmadd_ps(fx, c2, x);

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, _mm256_mul_ps(x, x), x);
  y = _mm256_add_ps(y, one);

  // 2^fx via exponent-field insertion (fx ∈ [-127, 128] after the clamp).
  const __m256i imm = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvtps_epi32(fx), _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(imm));
}

}  // namespace

// ---- elementwise f32, out-of-place ----------------------------------------

#define XP_AVX2_BINARY(fn, vop, sexpr)                                     \
  XP_TGT void fn(const float* a, const float* b, float* o, std::size_t n) { \
    std::size_t i = 0;                                                     \
    for (; i + 8 <= n; i += 8) {                                           \
      _mm256_storeu_ps(                                                    \
          o + i, vop(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));     \
    }                                                                      \
    if (i < n) {                                                           \
      const __m256i m = mask8(n - i);                                      \
      const __m256 va = _mm256_maskload_ps(a + i, m);                      \
      const __m256 vb = _mm256_maskload_ps(b + i, m);                      \
      _mm256_maskstore_ps(o + i, m, vop(va, vb));                          \
    }                                                                      \
  }

XP_AVX2_BINARY(add, _mm256_add_ps, )
XP_AVX2_BINARY(sub, _mm256_sub_ps, )
XP_AVX2_BINARY(mul, _mm256_mul_ps, )
#undef XP_AVX2_BINARY

// std::max(a,b) is (a<b)?b:a — i.e. returns `a` on ties/NaN — which is
// max_ps with the operand order swapped.
XP_TGT void maximum(const float* a, const float* b, float* o, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        o + i, _mm256_max_ps(_mm256_loadu_ps(b + i), _mm256_loadu_ps(a + i)));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    _mm256_maskstore_ps(o + i, m,
                        _mm256_max_ps(_mm256_maskload_ps(b + i, m),
                                      _mm256_maskload_ps(a + i, m)));
  }
}

XP_TGT void vexp(const float* a, float* o, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, exp256(_mm256_loadu_ps(a + i)));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    _mm256_maskstore_ps(o + i, m, exp256(_mm256_maskload_ps(a + i, m)));
  }
}

XP_TGT void reciprocal(const float* a, float* o, std::size_t n) {
  const __m256 one = _mm256_set1_ps(1.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_div_ps(one, _mm256_loadu_ps(a + i)));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    // Masked lanes load as 0; keep the division off them (0-div traps no
    // flags we care about, but the quiet-NaN noise is pointless).
    const __m256 va = _mm256_blendv_ps(one, _mm256_maskload_ps(a + i, m),
                                       _mm256_castsi256_ps(m));
    _mm256_maskstore_ps(o + i, m, _mm256_div_ps(one, va));
  }
}

XP_TGT void neg(const float* a, float* o, std::size_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_xor_ps(_mm256_loadu_ps(a + i), sign));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    _mm256_maskstore_ps(o + i, m,
                        _mm256_xor_ps(_mm256_maskload_ps(a + i, m), sign));
  }
}

XP_TGT void vabs(const float* a, float* o, std::size_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_andnot_ps(sign, _mm256_loadu_ps(a + i)));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    _mm256_maskstore_ps(o + i, m,
                        _mm256_andnot_ps(sign, _mm256_maskload_ps(a + i, m)));
  }
}

XP_TGT void mul_scalar(const float* a, float s, float* o, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    _mm256_maskstore_ps(o + i, m,
                        _mm256_mul_ps(_mm256_maskload_ps(a + i, m), vs));
  }
}

XP_TGT void add_scalar(const float* a, float s, float* o, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_add_ps(_mm256_loadu_ps(a + i), vs));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    _mm256_maskstore_ps(o + i, m,
                        _mm256_add_ps(_mm256_maskload_ps(a + i, m), vs));
  }
}

XP_TGT void clamp_min(const float* a, float lo, float* o, std::size_t n) {
  const __m256 vlo = _mm256_set1_ps(lo);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_max_ps(vlo, _mm256_loadu_ps(a + i)));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    _mm256_maskstore_ps(o + i, m,
                        _mm256_max_ps(vlo, _mm256_maskload_ps(a + i, m)));
  }
}

// ---- elementwise f32, in-place --------------------------------------------

XP_TGT void fill(float* a, float v, std::size_t n) {
  const __m256 vv = _mm256_set1_ps(v);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) _mm256_storeu_ps(a + i, vv);
  if (i < n) _mm256_maskstore_ps(a + i, mask8(n - i), vv);
}

XP_TGT void copy(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    _mm256_storeu_ps(dst + i, _mm256_loadu_ps(src + i));
  if (i < n) {
    const __m256i m = mask8(n - i);
    _mm256_maskstore_ps(dst + i, m, _mm256_maskload_ps(src + i, m));
  }
}

XP_TGT void add_(float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    _mm256_maskstore_ps(a + i, m,
                        _mm256_add_ps(_mm256_maskload_ps(a + i, m),
                                      _mm256_maskload_ps(b + i, m)));
  }
}

// No FMA: scalar computes s·b then += with two roundings; match it exactly.
XP_TGT void axpy_(float* a, const float* b, float s, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t = _mm256_mul_ps(vs, _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(a + i, _mm256_add_ps(_mm256_loadu_ps(a + i), t));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    const __m256 t = _mm256_mul_ps(vs, _mm256_maskload_ps(b + i, m));
    _mm256_maskstore_ps(a + i, m,
                        _mm256_add_ps(_mm256_maskload_ps(a + i, m), t));
  }
}

XP_TGT void scal_(float* a, float s, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(a + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    _mm256_maskstore_ps(a + i, m,
                        _mm256_mul_ps(_mm256_maskload_ps(a + i, m), vs));
  }
}

XP_TGT void axpby_(float* a, float alpha, const float* b, float beta,
                   std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 vb = _mm256_set1_ps(beta);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 t1 = _mm256_mul_ps(va, _mm256_loadu_ps(a + i));
    const __m256 t2 = _mm256_mul_ps(vb, _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(a + i, _mm256_add_ps(t1, t2));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    const __m256 t1 = _mm256_mul_ps(va, _mm256_maskload_ps(a + i, m));
    const __m256 t2 = _mm256_mul_ps(vb, _mm256_maskload_ps(b + i, m));
    _mm256_maskstore_ps(a + i, m, _mm256_add_ps(t1, t2));
  }
}

// ---- reductions ------------------------------------------------------------

XP_TGT double sum(const float* a, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    acc0 = _mm256_add_pd(acc0, lo_pd(v));
    acc1 = _mm256_add_pd(acc1, hi_pd(v));
  }
  double s = hsum4(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += a[i];
  return s;
}

XP_TGT double abs_sum(const float* a, std::size_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_andnot_ps(sign, _mm256_loadu_ps(a + i));
    acc0 = _mm256_add_pd(acc0, lo_pd(v));
    acc1 = _mm256_add_pd(acc1, hi_pd(v));
  }
  double s = hsum4(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += static_cast<double>(a[i] < 0.0f ? -a[i] : a[i]);
  return s;
}

XP_TGT float max_value(const float* a, std::size_t n) {
  float m = -std::numeric_limits<float>::infinity();
  __m256 acc = _mm256_set1_ps(m);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    acc = _mm256_max_ps(acc, _mm256_loadu_ps(a + i));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (int l = 0; l < 8; ++l) m = lanes[l] > m ? lanes[l] : m;
  for (; i < n; ++i) m = a[i] > m ? a[i] : m;
  return m;
}

XP_TGT float min_value(const float* a, std::size_t n) {
  float m = std::numeric_limits<float>::infinity();
  __m256 acc = _mm256_set1_ps(m);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    acc = _mm256_min_ps(acc, _mm256_loadu_ps(a + i));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  for (int l = 0; l < 8; ++l) m = lanes[l] < m ? lanes[l] : m;
  for (; i < n; ++i) m = a[i] < m ? a[i] : m;
  return m;
}

XP_TGT double dot(const float* a, const float* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    acc0 = _mm256_fmadd_pd(lo_pd(va), lo_pd(vb), acc0);
    acc1 = _mm256_fmadd_pd(hi_pd(va), hi_pd(vb), acc1);
  }
  double s = hsum4(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

XP_TGT double diff_sq_sum(const float* a, const float* b, std::size_t n) {
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 vb = _mm256_loadu_ps(b + i);
    const __m256d d0 = _mm256_sub_pd(lo_pd(va), lo_pd(vb));
    const __m256d d1 = _mm256_sub_pd(hi_pd(va), hi_pd(vb));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
  }
  double s = hsum4(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

XP_TGT float abs_max(const float* a, std::size_t n) {
  const __m256 sign = _mm256_set1_ps(-0.0f);
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8)
    acc = _mm256_max_ps(acc, _mm256_andnot_ps(sign, _mm256_loadu_ps(a + i)));
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float m = 0.0f;
  for (int l = 0; l < 8; ++l) m = lanes[l] > m ? lanes[l] : m;
  for (; i < n; ++i) {
    const float v = a[i] < 0.0f ? -a[i] : a[i];
    m = v > m ? v : m;
  }
  return m;
}

XP_TGT void finite_stats(const float* a, std::size_t n, std::size_t* nonfinite,
                         double* abs_sum_out) {
  const __m256i exp_mask = _mm256_set1_epi32(0x7f800000);
  const __m256 sign = _mm256_set1_ps(-0.0f);
  __m256d acc0 = _mm256_setzero_pd(), acc1 = _mm256_setzero_pd();
  std::size_t bad = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(a + i);
    // Exponent all-ones ⇔ Inf or NaN.
    const __m256i bits = _mm256_castps_si256(v);
    const __m256i isbad = _mm256_cmpeq_epi32(
        _mm256_and_si256(bits, exp_mask), exp_mask);
    bad += static_cast<std::size_t>(
        __builtin_popcount(_mm256_movemask_ps(_mm256_castsi256_ps(isbad))));
    const __m256 absv = _mm256_andnot_ps(sign, v);
    const __m256 finite =
        _mm256_andnot_ps(_mm256_castsi256_ps(isbad), absv);  // bad lanes → 0
    acc0 = _mm256_add_pd(acc0, lo_pd(finite));
    acc1 = _mm256_add_pd(acc1, hi_pd(finite));
  }
  double s = hsum4(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) {
    const float v = a[i];
    if (__builtin_isfinite(v)) {
      s += static_cast<double>(v < 0.0f ? -v : v);
    } else {
      ++bad;
    }
  }
  *nonfinite = bad;
  *abs_sum_out = s;
}

XP_TGT double ddot(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc);
  }
  double s = hsum4(acc);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

// ---- WA wirelength primitives ----------------------------------------------

XP_TGT void gather_pin_pos(const float* pos, const std::uint32_t* cell,
                           const float* off, float* px, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i idx = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(cell + i));
    const __m256 p = _mm256_i32gather_ps(pos, idx, 4);
    _mm256_storeu_ps(px + i, _mm256_add_ps(p, _mm256_loadu_ps(off + i)));
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    const __m256i idx = _mm256_maskload_epi32(
        reinterpret_cast<const int*>(cell + i), m);
    // Faults on masked-off lanes are architecturally suppressed.
    const __m256 p = _mm256_mask_i32gather_ps(
        _mm256_setzero_ps(), pos, idx, _mm256_castsi256_ps(m), 4);
    _mm256_maskstore_ps(
        px + i, m, _mm256_add_ps(p, _mm256_maskload_ps(off + i, m)));
  }
}

XP_TGT void minmax(const float* px, std::size_t n, float* lo, float* hi) {
  __m256 vmin = _mm256_set1_ps(std::numeric_limits<float>::max());
  __m256 vmax = _mm256_set1_ps(std::numeric_limits<float>::lowest());
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(px + i);
    vmin = _mm256_min_ps(vmin, v);
    vmax = _mm256_max_ps(vmax, v);
  }
  if (i < n) {
    const __m256i m = mask8(n - i);
    const __m256 mp = _mm256_castsi256_ps(m);
    const __m256 v = _mm256_maskload_ps(px + i, m);
    vmin = _mm256_min_ps(
        vmin, _mm256_blendv_ps(
                  _mm256_set1_ps(std::numeric_limits<float>::max()), v, mp));
    vmax = _mm256_max_ps(
        vmax,
        _mm256_blendv_ps(_mm256_set1_ps(std::numeric_limits<float>::lowest()),
                         v, mp));
  }
  alignas(32) float lmin[8], lmax[8];
  _mm256_store_ps(lmin, vmin);
  _mm256_store_ps(lmax, vmax);
  float mn = lmin[0], mx = lmax[0];
  for (int l = 1; l < 8; ++l) {
    mn = lmin[l] < mn ? lmin[l] : mn;
    mx = lmax[l] > mx ? lmax[l] : mx;
  }
  *lo = mn;
  *hi = mx;
}

XP_TGT WaSums wa_sums(const float* px, std::size_t n, float lo, float hi,
                      float inv_gamma, float* s_out, float* u_out) {
  const __m256 vhi = _mm256_set1_ps(hi);
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vig = _mm256_set1_ps(inv_gamma);
  __m256d e_max = _mm256_setzero_pd(), xe_max = _mm256_setzero_pd();
  __m256d e_min = _mm256_setzero_pd(), xe_min = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i < n; i += 8) {
    const std::size_t rem = n - i;
    __m256 p, s, u;
    if (rem >= 8) {
      p = _mm256_loadu_ps(px + i);
      s = exp256(_mm256_mul_ps(_mm256_sub_ps(p, vhi), vig));
      u = exp256(_mm256_mul_ps(_mm256_sub_ps(vlo, p), vig));
      _mm256_storeu_ps(s_out + i, s);
      _mm256_storeu_ps(u_out + i, u);
    } else {
      const __m256i m = mask8(rem);
      const __m256 mp = _mm256_castsi256_ps(m);
      p = _mm256_maskload_ps(px + i, m);
      s = exp256(_mm256_mul_ps(_mm256_sub_ps(p, vhi), vig));
      u = exp256(_mm256_mul_ps(_mm256_sub_ps(vlo, p), vig));
      // Dead lanes contribute 0 to every accumulator.
      s = _mm256_and_ps(s, mp);
      u = _mm256_and_ps(u, mp);
      _mm256_maskstore_ps(s_out + i, m, s);
      _mm256_maskstore_ps(u_out + i, m, u);
    }
    const __m256d p0 = lo_pd(p), p1 = hi_pd(p);
    const __m256d s0 = lo_pd(s), s1 = hi_pd(s);
    const __m256d u0 = lo_pd(u), u1 = hi_pd(u);
    e_max = _mm256_add_pd(e_max, _mm256_add_pd(s0, s1));
    xe_max = _mm256_fmadd_pd(p0, s0, _mm256_fmadd_pd(p1, s1, xe_max));
    e_min = _mm256_add_pd(e_min, _mm256_add_pd(u0, u1));
    xe_min = _mm256_fmadd_pd(p0, u0, _mm256_fmadd_pd(p1, u1, xe_min));
  }
  WaSums t;
  t.sum_e_max = hsum4(e_max);
  t.sum_xe_max = hsum4(xe_max);
  t.sum_e_min = hsum4(e_min);
  t.sum_xe_min = hsum4(xe_min);
  return t;
}

XP_TGT void wa_grad(const float* px, const float* s, const float* u,
                    std::size_t n, float inv_gamma, double wl_max,
                    double wl_min, double inv_smax, double inv_smin,
                    float weight, float* d) {
  const __m256d vig = _mm256_set1_pd(static_cast<double>(inv_gamma));
  const __m256d vwl_max = _mm256_set1_pd(wl_max);
  const __m256d vwl_min = _mm256_set1_pd(wl_min);
  const __m256d vismax = _mm256_set1_pd(inv_smax);
  const __m256d vismin = _mm256_set1_pd(inv_smin);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256 vw = _mm256_set1_ps(weight);
  for (std::size_t i = 0; i < n; i += 8) {
    const std::size_t rem = n - i;
    const bool full = rem >= 8;
    const __m256i m = full ? _mm256_setzero_si256() : mask8(rem);
    const __m256 p = full ? _mm256_loadu_ps(px + i)
                          : _mm256_maskload_ps(px + i, m);
    const __m256 vs = full ? _mm256_loadu_ps(s + i)
                           : _mm256_maskload_ps(s + i, m);
    const __m256 vu = full ? _mm256_loadu_ps(u + i)
                           : _mm256_maskload_ps(u + i, m);
    __m256 out;
    {
      const __m256d p0 = lo_pd(p), p1 = hi_pd(p);
      const __m256d dmax0 = _mm256_mul_pd(
          _mm256_mul_pd(lo_pd(vs),
                        _mm256_fmadd_pd(_mm256_sub_pd(p0, vwl_max), vig, one)),
          vismax);
      const __m256d dmax1 = _mm256_mul_pd(
          _mm256_mul_pd(hi_pd(vs),
                        _mm256_fmadd_pd(_mm256_sub_pd(p1, vwl_max), vig, one)),
          vismax);
      const __m256d dmin0 = _mm256_mul_pd(
          _mm256_mul_pd(lo_pd(vu),
                        _mm256_fnmadd_pd(_mm256_sub_pd(p0, vwl_min), vig, one)),
          vismin);
      const __m256d dmin1 = _mm256_mul_pd(
          _mm256_mul_pd(hi_pd(vu),
                        _mm256_fnmadd_pd(_mm256_sub_pd(p1, vwl_min), vig, one)),
          vismin);
      const __m128 f0 = _mm256_cvtpd_ps(_mm256_sub_pd(dmax0, dmin0));
      const __m128 f1 = _mm256_cvtpd_ps(_mm256_sub_pd(dmax1, dmin1));
      out = _mm256_mul_ps(vw, _mm256_set_m128(f1, f0));
    }
    if (full) {
      _mm256_storeu_ps(d + i, out);
    } else {
      _mm256_maskstore_ps(d + i, m, out);
    }
  }
}

// ---- density bin spans -----------------------------------------------------

XP_TGT void span_scatter(double* map, std::size_t n, double ly, double hy,
                         double ly0, double h, double wscale) {
  const __m256d vh = _mm256_set1_pd(h);
  const __m256d vly = _mm256_set1_pd(ly);
  const __m256d vhy = _mm256_set1_pd(hy);
  const __m256d vws = _mm256_set1_pd(wscale);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d step = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  std::size_t j = 0;
  for (; j < n; j += 4) {
    const std::size_t rem = n - j;
    const __m256d idx =
        _mm256_add_pd(_mm256_set1_pd(static_cast<double>(j)), step);
    const __m256d bin_ly = _mm256_fmadd_pd(idx, vh, _mm256_set1_pd(ly0));
    const __m256d oh = _mm256_max_pd(
        zero, _mm256_sub_pd(_mm256_min_pd(vhy, _mm256_add_pd(bin_ly, vh)),
                            _mm256_max_pd(vly, bin_ly)));
    if (rem >= 4) {
      _mm256_storeu_pd(map + j,
                       _mm256_fmadd_pd(oh, vws, _mm256_loadu_pd(map + j)));
    } else {
      const __m256i m = mask4(rem);
      _mm256_maskstore_pd(
          map + j, m, _mm256_fmadd_pd(oh, vws, _mm256_maskload_pd(map + j, m)));
    }
  }
}

XP_TGT void span_gather(const double* ex, const double* ey, std::size_t n,
                        double ly, double hy, double ly0, double h, double ow,
                        double* fx, double* fy) {
  const __m256d vh = _mm256_set1_pd(h);
  const __m256d vly = _mm256_set1_pd(ly);
  const __m256d vhy = _mm256_set1_pd(hy);
  const __m256d vow = _mm256_set1_pd(ow);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d step = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  __m256d ax = _mm256_setzero_pd(), ay = _mm256_setzero_pd();
  std::size_t j = 0;
  for (; j < n; j += 4) {
    const std::size_t rem = n - j;
    const __m256d idx =
        _mm256_add_pd(_mm256_set1_pd(static_cast<double>(j)), step);
    const __m256d bin_ly = _mm256_fmadd_pd(idx, vh, _mm256_set1_pd(ly0));
    __m256d oh = _mm256_max_pd(
        zero, _mm256_sub_pd(_mm256_min_pd(vhy, _mm256_add_pd(bin_ly, vh)),
                            _mm256_max_pd(vly, bin_ly)));
    __m256d vex, vey;
    if (rem >= 4) {
      vex = _mm256_loadu_pd(ex + j);
      vey = _mm256_loadu_pd(ey + j);
    } else {
      const __m256i m = mask4(rem);
      // Zero the dead lanes of oh so the masked-out field values (loaded as
      // 0 anyway) contribute nothing.
      oh = _mm256_and_pd(oh, _mm256_castsi256_pd(m));
      vex = _mm256_maskload_pd(ex + j, m);
      vey = _mm256_maskload_pd(ey + j, m);
    }
    const __m256d w = _mm256_mul_pd(oh, vow);
    ax = _mm256_fmadd_pd(w, vex, ax);
    ay = _mm256_fmadd_pd(w, vey, ay);
  }
  *fx += hsum4(ax);
  *fy += hsum4(ay);
}

// ---- FFT butterflies -------------------------------------------------------

namespace {

/// Complex multiply of two packed pairs: [a0·b0, a1·b1] with interleaved
/// (re,im) lanes.
XP_TGT inline __m256d cmul2(__m256d a, __m256d b) {
  const __m256d b_re = _mm256_movedup_pd(b);         // [br0,br0,br1,br1]
  const __m256d b_im = _mm256_permute_pd(b, 0xF);    // [bi0,bi0,bi1,bi1]
  const __m256d a_sw = _mm256_permute_pd(a, 0x5);    // [ai0,ar0,ai1,ar1]
  return _mm256_addsub_pd(_mm256_mul_pd(a, b_re), _mm256_mul_pd(a_sw, b_im));
}

}  // namespace

XP_TGT void fft_pass(double* d, const double* tw, std::size_t n,
                     std::size_t len, std::size_t step) {
  if (len == 2) {
    if (n < 4) {  // a single butterfly: scalar
      const double ur = d[0], ui = d[1], vr = d[2], vi = d[3];
      d[0] = ur + vr;
      d[1] = ui + vi;
      d[2] = ur - vr;
      d[3] = ui - vi;
      return;
    }
    // Pairs are adjacent: process two blocks (4 complexes) per iteration.
    for (std::size_t i = 0; i < n; i += 4) {
      const __m256d a = _mm256_loadu_pd(d + 2 * i);       // [u0, v0]
      const __m256d b = _mm256_loadu_pd(d + 2 * i + 4);   // [u1, v1]
      const __m256d u = _mm256_permute2f128_pd(a, b, 0x20);
      const __m256d v = _mm256_permute2f128_pd(a, b, 0x31);
      const __m256d s = _mm256_add_pd(u, v);
      const __m256d t = _mm256_sub_pd(u, v);
      _mm256_storeu_pd(d + 2 * i, _mm256_permute2f128_pd(s, t, 0x20));
      _mm256_storeu_pd(d + 2 * i + 4, _mm256_permute2f128_pd(s, t, 0x31));
    }
    return;
  }
  const std::size_t half = len / 2;  // ≥ 2 complexes: vector pairs
  for (std::size_t i = 0; i < n; i += len) {
    double* u_ptr = d + 2 * i;
    double* v_ptr = d + 2 * (i + half);
    for (std::size_t k = 0; k < half; k += 2) {
      __m256d w;
      if (step == 1) {
        w = _mm256_loadu_pd(tw + 2 * k);
      } else {
        w = _mm256_set_m128d(_mm_loadu_pd(tw + 2 * (k + 1) * step),
                             _mm_loadu_pd(tw + 2 * k * step));
      }
      const __m256d u = _mm256_loadu_pd(u_ptr + 2 * k);
      const __m256d v = cmul2(_mm256_loadu_pd(v_ptr + 2 * k), w);
      _mm256_storeu_pd(u_ptr + 2 * k, _mm256_add_pd(u, v));
      _mm256_storeu_pd(v_ptr + 2 * k, _mm256_sub_pd(u, v));
    }
  }
}

// ---- DCT glue ----

XP_TGT void dct_pack(const double* x, double* v, std::size_t n) {
  const __m256d zero = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n / 2; i += 2) {
    // x4 = (x[2i], x[2i+1], x[2i+2], x[2i+3]) = (a0, b0, a1, b1).
    const __m256d x4 = _mm256_loadu_pd(x + 2 * i);
    // Front of v: (a0, 0, a1, 0) at complex slots i, i+1.
    _mm256_storeu_pd(v + 2 * i, _mm256_unpacklo_pd(x4, zero));
    // Back of v: slots n-2-i, n-1-i hold (b1, 0, b0, 0).
    const __m256d odd = _mm256_unpackhi_pd(x4, zero);  // (b0, 0, b1, 0)
    _mm256_storeu_pd(v + 2 * (n - 2 - i),
                     _mm256_permute2f128_pd(odd, odd, 0x01));
  }
  for (; i < n / 2; ++i) {
    v[2 * i] = x[2 * i];
    v[2 * i + 1] = 0.0;
    v[2 * (n - 1 - i)] = x[2 * i + 1];
    v[2 * (n - 1 - i) + 1] = 0.0;
  }
}

XP_TGT void dct_rotate(const double* v, const double* ph, double* x,
                       std::size_t n) {
  std::size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    // Re(v·ph) per complex = vr·pr − vi·pi: multiply interleaved, then
    // horizontally subtract pairs from two vectors (4 complexes per store).
    const __m256d p0 = _mm256_mul_pd(_mm256_loadu_pd(v + 2 * k),
                                     _mm256_loadu_pd(ph + 2 * k));
    const __m256d p1 = _mm256_mul_pd(_mm256_loadu_pd(v + 2 * k + 4),
                                     _mm256_loadu_pd(ph + 2 * k + 4));
    // hsub lanes: (p0₀−p0₁, p1₀−p1₁, p0₂−p0₃, p1₂−p1₃) = (x_k, x_{k+2},
    // x_{k+1}, x_{k+3}); permute back to order.
    const __m256d h = _mm256_hsub_pd(p0, p1);
    _mm256_storeu_pd(x + k, _mm256_permute4x64_pd(h, 0xD8));
  }
  for (; k < n; ++k) {
    x[k] = v[2 * k] * ph[2 * k] - v[2 * k + 1] * ph[2 * k + 1];
  }
}

XP_TGT void idct_pretwiddle(const double* x, const double* ph, double* v,
                            std::size_t n) {
  // v[k] = conj(ph[k])·(x[k], −x[n−k]) = (pr·a − pi·b, −pr·b − pi·a)
  // with a = x[k], b = x[n−k]. Two complexes per vector round.
  std::size_t k = 1;
  for (; k + 2 <= n; k += 2) {
    // a2 = (a_k, a_k, a_{k+1}, a_{k+1}); b2 likewise from the reversed end.
    const __m128d alo = _mm_loadu_pd(x + k);          // (a_k, a_{k+1})
    const __m128d bhi = _mm_loadu_pd(x + n - k - 1);  // (b_{k+1}, b_k)
    const __m256d a2 = _mm256_permute4x64_pd(
        _mm256_castpd128_pd256(alo), 0x50);  // (a_k, a_k, a_{k+1}, a_{k+1})
    const __m256d b2 = _mm256_permute4x64_pd(
        _mm256_castpd128_pd256(bhi), 0x05);  // (b_k, b_k, b_{k+1}, b_{k+1})
    const __m256d p = _mm256_loadu_pd(ph + 2 * k);  // (pr, pi, pr', pi')
    const __m256d pa = _mm256_mul_pd(p, a2);        // (pr·a, pi·a, …)
    const __m256d pb = _mm256_mul_pd(p, b2);        // (pr·b, pi·b, …)
    const __m256d pbs = _mm256_permute_pd(pb, 0x5);  // (pi·b, pr·b, …)
    const __m256d pas = _mm256_permute_pd(pa, 0x5);  // (pi·a, pr·a, …)
    const __m256d re = _mm256_sub_pd(pa, pbs);  // even lanes: pr·a − pi·b
    const __m256d im = _mm256_sub_pd(
        _mm256_setzero_pd(), _mm256_add_pd(pb, pas));  // even: −pr·b − pi·a
    const __m256d ims = _mm256_permute_pd(im, 0x5);    // odd lanes hold im
    _mm256_storeu_pd(v + 2 * k, _mm256_blend_pd(re, ims, 0xA));
  }
  for (; k < n; ++k) {
    const double pr = ph[2 * k], pi = ph[2 * k + 1];
    const double a = x[k], b = x[n - k];
    v[2 * k] = pr * a - pi * b;
    v[2 * k + 1] = -pr * b - pi * a;
  }
}

XP_TGT void idct_unpack(const double* v, double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n / 2; i += 2) {
    const __m256d front = _mm256_loadu_pd(v + 2 * i);
    // back covers complex slots n-2-i, n-1-i; swap its halves so slot
    // n-1-i comes first, then interleave the real lanes.
    const __m256d back = _mm256_loadu_pd(v + 2 * (n - 2 - i));
    const __m256d bsw = _mm256_permute2f128_pd(back, back, 0x01);
    _mm256_storeu_pd(x + 2 * i, _mm256_unpacklo_pd(front, bsw));
  }
  for (; i < n / 2; ++i) {
    x[2 * i] = v[2 * i];
    x[2 * i + 1] = v[2 * (n - 1 - i)];
  }
}

XP_TGT void conj_scale(double* d, std::size_t n, double scale) {
  const __m256d vs = _mm256_set_pd(-scale, scale, -scale, scale);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm256_storeu_pd(d + 2 * i, _mm256_mul_pd(_mm256_loadu_pd(d + 2 * i), vs));
  }
  if (i < n) {
    d[2 * i] = d[2 * i] * scale;
    d[2 * i + 1] = d[2 * i + 1] * -scale;
  }
}

// ---- plan-fused DCT passes (fft/plan.h) ------------------------------------
// One 128-bit lane pair carries the SAME element of both real sequences:
// lane0 = a, lane1 = b. When b == a + 1 (an adjacent-column pair) every
// load/store is a single contiguous 16-byte access; otherwise the pair
// splits into two 8-byte halves. All arithmetic is single-rounded
// mul/add/sub/addsub in the exact order of the scalar kernels (no FMA), so
// the backends stay bitwise-identical.

namespace {

XP_TGT inline __m128d swap1(__m128d v) { return _mm_shuffle_pd(v, v, 1); }

/// (x.re·w.re − x.im·w.im, x.im·w.re + x.re·w.im) for interleaved w at `w`.
XP_TGT inline __m128d cmul1(__m128d x, const double* w) {
  return _mm_addsub_pd(_mm_mul_pd(x, _mm_loaddup_pd(w)),
                       _mm_mul_pd(swap1(x), _mm_loaddup_pd(w + 1)));
}

/// (a[off], b[off]) as one vector.
XP_TGT inline __m128d load_ab(const double* a, const double* b,
                              std::size_t off, bool adj) {
  if (adj) return _mm_loadu_pd(a + off);
  return _mm_loadh_pd(_mm_load_sd(a + off), b + off);
}

/// lane0 → a[off], lane1 → b[off] (b written last, like the scalar kernels,
/// so the degenerate self-pair b == a resolves the same way).
XP_TGT inline void store_ab(double* a, double* b, std::size_t off, bool adj,
                            __m128d v) {
  if (adj) {
    _mm_storeu_pd(a + off, v);
    return;
  }
  _mm_storel_pd(a + off, v);
  _mm_storeh_pd(b + off, v);
}

/// z_k = ph_k·g_k for one inverse-head slot holding frequency k.
XP_TGT inline __m128d plan_inv_g(const double* a, const double* b,
                                 std::size_t stride, const double* ph,
                                 std::size_t k, std::size_t n, int sine,
                                 bool adj) {
  __m128d g;
  if (k == 0) {
    g = sine ? _mm_setzero_pd() : load_ab(a, b, 0, adj);
  } else {
    const __m128d vk = load_ab(a, b, k * stride, adj);
    const __m128d vm = load_ab(a, b, (n - k) * stride, adj);
    // addsub(x, y) = (x0 − y0, x1 + y1): exactly the scalar g expressions.
    g = sine ? _mm_addsub_pd(vm, swap1(vk)) : _mm_addsub_pd(vk, swap1(vm));
  }
  return cmul1(g, ph + 2 * k);
}

/// Disentangle Z_k / Z_{n−k} and rotate — both sequences' outputs at
/// frequencies k and n−k in two paired stores.
XP_TGT inline void plan_fwd_rotate(__m128d zk, __m128d znk, const double* ph,
                                   std::size_t k, std::size_t n, double* a,
                                   double* b, std::size_t stride, bool adj) {
  const __m128d arbr =
      _mm_mul_pd(_mm_add_pd(zk, znk), _mm_set1_pd(0.5));
  const __m128d aibi = _mm_mul_pd(swap1(_mm_sub_pd(zk, znk)),
                                  _mm_set_pd(-0.5, 0.5));
  const double* p1 = ph + 2 * k;
  const double* p2 = ph + 2 * (n - k);
  store_ab(a, b, k * stride, adj,
           _mm_sub_pd(_mm_mul_pd(arbr, _mm_loaddup_pd(p1)),
                      _mm_mul_pd(aibi, _mm_loaddup_pd(p1 + 1))));
  store_ab(a, b, (n - k) * stride, adj,
           _mm_add_pd(_mm_mul_pd(arbr, _mm_loaddup_pd(p2)),
                      _mm_mul_pd(aibi, _mm_loaddup_pd(p2 + 1))));
}

}  // namespace

XP_TGT void plan_fwd_head(const double* a, const double* b, std::size_t stride,
                          const std::uint32_t* perm, double* z,
                          std::size_t n) {
  const bool adj = b == a + 1;
  if (n == 2) {
    _mm_storeu_pd(z, load_ab(a, b, perm[0] * stride, adj));
    _mm_storeu_pd(z + 2, load_ab(a, b, perm[1] * stride, adj));
    return;
  }
  for (std::size_t j = 0; j < n; j += 2) {
    const __m128d u = load_ab(a, b, perm[j] * stride, adj);
    const __m128d v = load_ab(a, b, perm[j + 1] * stride, adj);
    _mm_storeu_pd(z + 2 * j, _mm_add_pd(u, v));
    _mm_storeu_pd(z + 2 * j + 2, _mm_sub_pd(u, v));
  }
}

XP_TGT void plan_inv_head(const double* a, const double* b,
                          std::size_t stride, const std::uint32_t* brev,
                          const double* ph, double* z, std::size_t n,
                          int sine) {
  const bool adj = b == a + 1;
  if (n == 2) {
    _mm_storeu_pd(z, plan_inv_g(a, b, stride, ph, brev[0], n, sine, adj));
    _mm_storeu_pd(z + 2, plan_inv_g(a, b, stride, ph, brev[1], n, sine, adj));
    return;
  }
  for (std::size_t j = 0; j < n; j += 2) {
    const __m128d u = plan_inv_g(a, b, stride, ph, brev[j], n, sine, adj);
    const __m128d v = plan_inv_g(a, b, stride, ph, brev[j + 1], n, sine, adj);
    _mm_storeu_pd(z + 2 * j, _mm_add_pd(u, v));
    _mm_storeu_pd(z + 2 * j + 2, _mm_sub_pd(u, v));
  }
}

XP_TGT void plan_fwd_tail(const double* z, const double* tw, const double* ph,
                          double* a, double* b, std::size_t stride,
                          std::size_t n) {
  const bool adj = b == a + 1;
  const std::size_t h = n / 2;
  {
    const __m128d u = _mm_loadu_pd(z);
    const __m128d v = cmul1(_mm_loadu_pd(z + 2 * h), tw);
    store_ab(a, b, 0, adj, _mm_add_pd(u, v));
    store_ab(a, b, h * stride, adj,
             _mm_mul_pd(_mm_sub_pd(u, v), _mm_loaddup_pd(ph + 2 * h)));
  }
  for (std::size_t k = 1; 4 * k <= n; ++k) {
    const std::size_t jB = h - k;
    const __m128d uA = _mm_loadu_pd(z + 2 * k);
    const __m128d vA = cmul1(_mm_loadu_pd(z + 2 * (k + h)), tw + 2 * k);
    const __m128d sA = _mm_add_pd(uA, vA);
    const __m128d dA = _mm_sub_pd(uA, vA);
    if (k == jB) {
      plan_fwd_rotate(sA, dA, ph, k, n, a, b, stride, adj);
      break;
    }
    const __m128d uB = _mm_loadu_pd(z + 2 * jB);
    const __m128d vB = cmul1(_mm_loadu_pd(z + 2 * (jB + h)), tw + 2 * jB);
    const __m128d sB = _mm_add_pd(uB, vB);
    const __m128d dB = _mm_sub_pd(uB, vB);
    plan_fwd_rotate(sA, dB, ph, k, n, a, b, stride, adj);
    plan_fwd_rotate(sB, dA, ph, jB, n, a, b, stride, adj);
  }
}

XP_TGT void plan_inv_tail(const double* z, const double* tw, double* a,
                          double* b, std::size_t stride, std::size_t n,
                          int sine) {
  const bool adj = b == a + 1;
  const std::size_t h = n / 2;
  const double e = 1.0 / static_cast<double>(n);
  const __m128d ev = _mm_set1_pd(e);
  const __m128d ov = _mm_set1_pd(sine ? -e : e);
  if (n == 2) {
    const __m128d u = _mm_loadu_pd(z);
    const __m128d v = cmul1(_mm_loadu_pd(z + 2), tw);
    store_ab(a, b, 0, adj, _mm_mul_pd(_mm_add_pd(u, v), ev));
    store_ab(a, b, stride, adj, _mm_mul_pd(_mm_sub_pd(u, v), ov));
    return;
  }
  for (std::size_t i = 0; 4 * i < n; ++i) {
    const std::size_t jB = h - 1 - i;
    const __m128d uA = _mm_loadu_pd(z + 2 * i);
    const __m128d vA = cmul1(_mm_loadu_pd(z + 2 * (i + h)), tw + 2 * i);
    const __m128d uB = _mm_loadu_pd(z + 2 * jB);
    const __m128d vB = cmul1(_mm_loadu_pd(z + 2 * (jB + h)), tw + 2 * jB);
    store_ab(a, b, (2 * i) * stride, adj,
             _mm_mul_pd(_mm_add_pd(uA, vA), ev));
    store_ab(a, b, (2 * i + 1) * stride, adj,
             _mm_mul_pd(_mm_sub_pd(uB, vB), ov));
    store_ab(a, b, (n - 2 - 2 * i) * stride, adj,
             _mm_mul_pd(_mm_add_pd(uB, vB), ev));
    store_ab(a, b, (n - 1 - 2 * i) * stride, adj,
             _mm_mul_pd(_mm_sub_pd(uA, vA), ov));
  }
}

// ---- fused optimizer updates -----------------------------------------------

XP_TGT void nesterov_update(float* v, float* v_prev, float* g_prev, float* u,
                            const float* g, const float* lo, const float* hi,
                            std::size_t n, double eta, float coef) {
  const __m256d veta = _mm256_set1_pd(eta);
  const __m256 vcoef = _mm256_set1_ps(coef);
  for (std::size_t c = 0; c < n; c += 8) {
    const std::size_t rem = n - c;
    const bool full = rem >= 8;
    const __m256i m = full ? _mm256_setzero_si256() : mask8(rem);
    const __m256 vv = full ? _mm256_loadu_ps(v + c)
                           : _mm256_maskload_ps(v + c, m);
    const __m256 vg = full ? _mm256_loadu_ps(g + c)
                           : _mm256_maskload_ps(g + c, m);
    const __m256 vlo = full ? _mm256_loadu_ps(lo + c)
                            : _mm256_maskload_ps(lo + c, m);
    const __m256 vhi = full ? _mm256_loadu_ps(hi + c)
                            : _mm256_maskload_ps(hi + c, m);
    const __m256 vu = full ? _mm256_loadu_ps(u + c)
                           : _mm256_maskload_ps(u + c, m);
    // v − η·g in double (matches the scalar expression exactly; cvtpd_ps
    // rounds to nearest like the scalar float cast).
    const __m256d s0 =
        _mm256_sub_pd(lo_pd(vv), _mm256_mul_pd(veta, lo_pd(vg)));
    const __m256d s1 =
        _mm256_sub_pd(hi_pd(vv), _mm256_mul_pd(veta, hi_pd(vg)));
    const __m256 u_raw =
        _mm256_set_m128(_mm256_cvtpd_ps(s1), _mm256_cvtpd_ps(s0));
    const __m256 u_new =
        _mm256_min_ps(_mm256_max_ps(u_raw, vlo), vhi);
    const __m256 ext = _mm256_add_ps(
        u_new, _mm256_mul_ps(vcoef, _mm256_sub_ps(u_new, vu)));
    const __m256 v_new = _mm256_min_ps(_mm256_max_ps(ext, vlo), vhi);
    if (full) {
      _mm256_storeu_ps(v_prev + c, vv);
      _mm256_storeu_ps(g_prev + c, vg);
      _mm256_storeu_ps(v + c, v_new);
      _mm256_storeu_ps(u + c, u_new);
    } else {
      _mm256_maskstore_ps(v_prev + c, m, vv);
      _mm256_maskstore_ps(g_prev + c, m, vg);
      _mm256_maskstore_ps(v + c, m, v_new);
      _mm256_maskstore_ps(u + c, m, u_new);
    }
  }
}

XP_TGT void precond_apply(float* gx, float* gy, const float* nets,
                          const float* area, float lambda, std::size_t n) {
  const __m256 vl = _mm256_set1_ps(lambda);
  const __m256 one = _mm256_set1_ps(1.0f);
  for (std::size_t c = 0; c < n; c += 8) {
    const std::size_t rem = n - c;
    const bool full = rem >= 8;
    const __m256i m = full ? _mm256_setzero_si256() : mask8(rem);
    const __m256 vn = full ? _mm256_loadu_ps(nets + c)
                           : _mm256_maskload_ps(nets + c, m);
    const __m256 va = full ? _mm256_loadu_ps(area + c)
                           : _mm256_maskload_ps(area + c, m);
    // max(1, nets + λ·area); mul+add (not FMA) to match scalar bitwise.
    __m256 p = _mm256_add_ps(vn, _mm256_mul_ps(vl, va));
    p = _mm256_max_ps(p, one);
    if (full) {
      _mm256_storeu_ps(gx + c, _mm256_div_ps(_mm256_loadu_ps(gx + c), p));
      _mm256_storeu_ps(gy + c, _mm256_div_ps(_mm256_loadu_ps(gy + c), p));
    } else {
      _mm256_maskstore_ps(gx + c, m,
                          _mm256_div_ps(_mm256_maskload_ps(gx + c, m), p));
      _mm256_maskstore_ps(gy + c, m,
                          _mm256_div_ps(_mm256_maskload_ps(gy + c, m), p));
    }
  }
}

}  // namespace avx2

const Kernels* avx2_kernels_or_null() {
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  if (!supported) return nullptr;
  static const Kernels k = {
      .isa = Isa::kAvx2,
      .name = "avx2",
      .add = avx2::add,
      .sub = avx2::sub,
      .mul = avx2::mul,
      .maximum = avx2::maximum,
      .vexp = avx2::vexp,
      .reciprocal = avx2::reciprocal,
      .neg = avx2::neg,
      .vabs = avx2::vabs,
      .mul_scalar = avx2::mul_scalar,
      .add_scalar = avx2::add_scalar,
      .clamp_min = avx2::clamp_min,
      .fill = avx2::fill,
      .copy = avx2::copy,
      .add_ = avx2::add_,
      .axpy_ = avx2::axpy_,
      .scal_ = avx2::scal_,
      .axpby_ = avx2::axpby_,
      .sum = avx2::sum,
      .abs_sum = avx2::abs_sum,
      .max_value = avx2::max_value,
      .min_value = avx2::min_value,
      .dot = avx2::dot,
      .diff_sq_sum = avx2::diff_sq_sum,
      .abs_max = avx2::abs_max,
      .finite_stats = avx2::finite_stats,
      .ddot = avx2::ddot,
      .gather_pin_pos = avx2::gather_pin_pos,
      .minmax = avx2::minmax,
      .wa_sums = avx2::wa_sums,
      .wa_grad = avx2::wa_grad,
      .span_scatter = avx2::span_scatter,
      .span_gather = avx2::span_gather,
      .fft_pass = avx2::fft_pass,
      .conj_scale = avx2::conj_scale,
      .dct_pack = avx2::dct_pack,
      .dct_rotate = avx2::dct_rotate,
      .idct_pretwiddle = avx2::idct_pretwiddle,
      .idct_unpack = avx2::idct_unpack,
      .plan_fwd_head = avx2::plan_fwd_head,
      .plan_inv_head = avx2::plan_inv_head,
      .plan_fwd_tail = avx2::plan_fwd_tail,
      .plan_inv_tail = avx2::plan_inv_tail,
      .nesterov_update = avx2::nesterov_update,
      .precond_apply = avx2::precond_apply,
  };
  return &k;
}

}  // namespace xplace::simd

#else  // non-x86 targets: no AVX2 backend

namespace xplace::simd {
const Kernels* avx2_kernels_or_null() { return nullptr; }
}  // namespace xplace::simd

#endif
