#include "util/timer.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/metrics.h"

namespace xplace {

std::string TimerRegistry::report() const {
  const std::map<std::string, Entry> snap = entries();
  std::vector<std::pair<std::string, Entry>> rows(snap.begin(), snap.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_seconds > b.second.total_seconds;
  });
  std::string out;
  char buf[256];
  for (const auto& [key, e] : rows) {
    std::snprintf(buf, sizeof(buf), "%-32s %10.3f ms  %8llu calls\n",
                  key.c_str(), e.total_seconds * 1e3,
                  static_cast<unsigned long long>(e.calls));
    out += buf;
  }
  return out;
}

void TimerRegistry::publish(telemetry::Registry& registry,
                            const std::string& prefix) const {
  for (const auto& [key, e] : entries()) {
    registry.gauge(prefix + key + ".seconds").set(e.total_seconds);
    telemetry::Counter& calls = registry.counter(prefix + key + ".calls");
    calls.reset();
    calls.inc(e.calls);
  }
}

}  // namespace xplace
