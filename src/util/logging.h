// Lightweight leveled logging for the Xplace framework.
//
// Usage:
//   XP_INFO("placed %d cells, hpwl=%.4g", n, hpwl);
//   xplace::log::set_level(xplace::log::Level::kWarn);   // silence info logs
//
// All output goes to stderr so that example/bench binaries can emit
// machine-readable results on stdout.
//
// The startup level honors the XPLACE_LOG_LEVEL environment variable
// (debug|info|warn|error|off or 0-4); set_level() overrides it at runtime.
// Relatedly, XPLACE_TRACE=1 arms the telemetry tracer at startup (see
// telemetry/trace.h).
#pragma once

#include <cstdarg>
#include <string>

namespace xplace::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global minimum level that is actually printed.
void set_level(Level level);
Level level();

/// printf-style logging primitive; prefer the XP_* macros below.
void logf(Level level, const char* file, int line, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;

/// Elapsed wall-clock seconds since process start (used for log timestamps).
double elapsed_seconds();

}  // namespace xplace::log

#define XP_DEBUG(...) \
  ::xplace::log::logf(::xplace::log::Level::kDebug, __FILE__, __LINE__, __VA_ARGS__)
#define XP_INFO(...) \
  ::xplace::log::logf(::xplace::log::Level::kInfo, __FILE__, __LINE__, __VA_ARGS__)
#define XP_WARN(...) \
  ::xplace::log::logf(::xplace::log::Level::kWarn, __FILE__, __LINE__, __VA_ARGS__)
#define XP_ERROR(...) \
  ::xplace::log::logf(::xplace::log::Level::kError, __FILE__, __LINE__, __VA_ARGS__)
