#include "util/simd.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "telemetry/metrics.h"
#include "util/logging.h"

namespace xplace::simd {

// ---------------------------------------------------------------------------
// Scalar backend. These loops are the pre-SIMD kernels verbatim (same
// expression, same evaluation order) so the scalar backend is bitwise-
// identical to the historical flow. `__restrict` + a hoisted bound lets the
// compiler vectorize the fallback where it can.
// ---------------------------------------------------------------------------
namespace scalar {

#define XP_SIMD_BINARY(fn, expr)                                             \
  void fn(const float* __restrict a, const float* __restrict b,              \
          float* __restrict o, std::size_t n) {                              \
    for (std::size_t i = 0; i < n; ++i) o[i] = (expr);                       \
  }

XP_SIMD_BINARY(add, a[i] + b[i])
XP_SIMD_BINARY(sub, a[i] - b[i])
XP_SIMD_BINARY(mul, a[i] * b[i])
XP_SIMD_BINARY(maximum, std::max(a[i], b[i]))
#undef XP_SIMD_BINARY

#define XP_SIMD_UNARY(fn, expr)                                   \
  void fn(const float* __restrict a, float* __restrict o,         \
          std::size_t n) {                                        \
    for (std::size_t i = 0; i < n; ++i) o[i] = (expr);            \
  }

XP_SIMD_UNARY(vexp, std::exp(a[i]))
XP_SIMD_UNARY(reciprocal, 1.0f / a[i])
XP_SIMD_UNARY(neg, -a[i])
XP_SIMD_UNARY(vabs, std::fabs(a[i]))
#undef XP_SIMD_UNARY

void mul_scalar(const float* __restrict a, float s, float* __restrict o,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) o[i] = a[i] * s;
}
void add_scalar(const float* __restrict a, float s, float* __restrict o,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) o[i] = a[i] + s;
}
void clamp_min(const float* __restrict a, float lo, float* __restrict o,
               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) o[i] = std::max(a[i], lo);
}
void fill(float* __restrict a, float v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] = v;
}
void copy(float* __restrict dst, const float* __restrict src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
}
void add_(float* __restrict a, const float* __restrict b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] += b[i];
}
void axpy_(float* __restrict a, const float* __restrict b, float s,
           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] += s * b[i];
}
void scal_(float* __restrict a, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] *= s;
}
void axpby_(float* __restrict a, float alpha, const float* __restrict b,
            float beta, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) a[i] = alpha * a[i] + beta * b[i];
}

double sum(const float* __restrict a, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i];
  return acc;
}
double abs_sum(const float* __restrict a, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += std::fabs(a[i]);
  return acc;
}
float max_value(const float* __restrict a, std::size_t n) {
  float m = -std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, a[i]);
  return m;
}
float min_value(const float* __restrict a, std::size_t n) {
  float m = std::numeric_limits<float>::infinity();
  for (std::size_t i = 0; i < n; ++i) m = std::min(m, a[i]);
  return m;
}
double dot(const float* __restrict a, const float* __restrict b,
           std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    acc += static_cast<double>(a[i]) * b[i];
  return acc;
}
double diff_sq_sum(const float* __restrict a, const float* __restrict b,
                   std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    acc += d * d;
  }
  return acc;
}
float abs_max(const float* __restrict a, std::size_t n) {
  float m = 0.0f;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}
void finite_stats(const float* __restrict a, std::size_t n,
                  std::size_t* nonfinite, double* abs_sum_out) {
  std::size_t bad = 0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const float v = a[i];
    if (std::isfinite(v)) acc += std::fabs(v); else ++bad;
  }
  *nonfinite = bad;
  *abs_sum_out = acc;
}

double ddot(const double* __restrict a, const double* __restrict b,
            std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

void gather_pin_pos(const float* __restrict pos,
                    const std::uint32_t* __restrict cell,
                    const float* __restrict off, float* __restrict px,
                    std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) px[i] = pos[cell[i]] + off[i];
}
void minmax(const float* __restrict px, std::size_t n, float* lo, float* hi) {
  float mn = std::numeric_limits<float>::max();
  float mx = std::numeric_limits<float>::lowest();
  for (std::size_t i = 0; i < n; ++i) {
    mn = std::min(mn, px[i]);
    mx = std::max(mx, px[i]);
  }
  *lo = mn;
  *hi = mx;
}
WaSums wa_sums(const float* __restrict px, std::size_t n, float lo, float hi,
               float inv_gamma, float* __restrict s_out,
               float* __restrict u_out) {
  WaSums t;
  for (std::size_t i = 0; i < n; ++i) {
    const float p = px[i];
    const double s = std::exp((p - hi) * inv_gamma);
    const double u = std::exp((lo - p) * inv_gamma);
    t.sum_e_max += s;
    t.sum_xe_max += p * s;
    t.sum_e_min += u;
    t.sum_xe_min += p * u;
    s_out[i] = static_cast<float>(s);
    u_out[i] = static_cast<float>(u);
  }
  return t;
}
void wa_grad(const float* __restrict px, const float* __restrict s,
             const float* __restrict u, std::size_t n, float inv_gamma,
             double wl_max, double wl_min, double inv_smax, double inv_smin,
             float weight, float* __restrict d) {
  for (std::size_t i = 0; i < n; ++i) {
    const float p = px[i];
    const double d_max = s[i] * (1.0 + (p - wl_max) * inv_gamma) * inv_smax;
    const double d_min = u[i] * (1.0 - (p - wl_min) * inv_gamma) * inv_smin;
    d[i] = weight * static_cast<float>(d_max - d_min);
  }
}

void span_scatter(double* __restrict map, std::size_t n, double ly, double hy,
                  double ly0, double h, double wscale) {
  for (std::size_t j = 0; j < n; ++j) {
    const double bin_ly = ly0 + static_cast<double>(j) * h;
    const double oh = std::min(hy, bin_ly + h) - std::max(ly, bin_ly);
    if (oh > 0.0) map[j] += oh * wscale;
  }
}
void span_gather(const double* __restrict ex, const double* __restrict ey,
                 std::size_t n, double ly, double hy, double ly0, double h,
                 double ow, double* fx, double* fy) {
  double ax = 0.0, ay = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const double bin_ly = ly0 + static_cast<double>(j) * h;
    const double oh = std::min(hy, bin_ly + h) - std::max(ly, bin_ly);
    if (oh > 0.0) {
      ax += oh * ow * ex[j];
      ay += oh * ow * ey[j];
    }
  }
  *fx += ax;
  *fy += ay;
}

// One radix-2 stage, expressed in std::complex exactly as the historical
// fft() loop body so the scalar backend stays bitwise-identical.
void fft_pass(double* d, const double* tw, std::size_t n, std::size_t len,
              std::size_t step) {
  auto* data = reinterpret_cast<std::complex<double>*>(d);
  const auto* twc = reinterpret_cast<const std::complex<double>*>(tw);
  for (std::size_t i = 0; i < n; i += len) {
    for (std::size_t k = 0; k < len / 2; ++k) {
      const std::complex<double> w = twc[k * step];
      const std::complex<double> u = data[i + k];
      const std::complex<double> v = data[i + k + len / 2] * w;
      data[i + k] = u + v;
      data[i + k + len / 2] = u - v;
    }
  }
}
void conj_scale(double* d, std::size_t n, double scale) {
  auto* data = reinterpret_cast<std::complex<double>*>(d);
  for (std::size_t i = 0; i < n; ++i) data[i] = std::conj(data[i]) * scale;
}

// DCT glue, expressed in std::complex exactly as the historical dct()/idct()
// loop bodies so the scalar backend stays bitwise-identical.
void dct_pack(const double* x, double* vd, std::size_t n) {
  auto* v = reinterpret_cast<std::complex<double>*>(vd);
  for (std::size_t i = 0; i < n / 2; ++i) {
    v[i] = std::complex<double>(x[2 * i], 0.0);
    v[n - 1 - i] = std::complex<double>(x[2 * i + 1], 0.0);
  }
}
void dct_rotate(const double* vd, const double* phd, double* x,
                std::size_t n) {
  const auto* v = reinterpret_cast<const std::complex<double>*>(vd);
  const auto* ph = reinterpret_cast<const std::complex<double>*>(phd);
  for (std::size_t k = 0; k < n; ++k) x[k] = (v[k] * ph[k]).real();
}
void idct_pretwiddle(const double* x, const double* phd, double* vd,
                     std::size_t n) {
  auto* v = reinterpret_cast<std::complex<double>*>(vd);
  const auto* ph = reinterpret_cast<const std::complex<double>*>(phd);
  for (std::size_t k = 1; k < n; ++k) {
    v[k] = std::conj(ph[k]) * std::complex<double>(x[k], -x[n - k]);
  }
}
void idct_unpack(const double* vd, double* x, std::size_t n) {
  const auto* v = reinterpret_cast<const std::complex<double>*>(vd);
  for (std::size_t i = 0; i < n / 2; ++i) {
    x[2 * i] = v[i].real();
    x[2 * i + 1] = v[n - 1 - i].real();
  }
}

// ---- plan-fused DCT passes (fft/plan.h) -----------------------------------
// Expression order mirrors the AVX2 lane ops exactly — single-rounded
// mul/add/sub/addsub chains, no FMA — so the two backends are bitwise-
// identical by construction (DESIGN.md §15). Sequences a and b ride one
// complex value as (re, im).

namespace {

// (xr,xi)·(wr,wi) in the addsub order the AVX2 cmul helpers produce.
inline void plan_cmul(double xr, double xi, double wr, double wi,
                      double* out_r, double* out_i) {
  *out_r = xr * wr - xi * wi;
  *out_i = xi * wr + xr * wi;
}

// z_k = ph_k·g_k for one inverse-head slot holding frequency k.
inline void plan_inv_g(const double* a, const double* b, std::size_t stride,
                       const double* ph, std::size_t k, std::size_t n,
                       int sine, double* zr, double* zi) {
  double gr, gi;
  if (k == 0) {
    gr = sine ? 0.0 : a[0];
    gi = sine ? 0.0 : b[0];
  } else {
    const std::size_t ks = k * stride;
    const std::size_t ms = (n - k) * stride;
    if (sine) {
      gr = a[ms] - b[ks];
      gi = b[ms] + a[ks];
    } else {
      gr = a[ks] - b[ms];
      gi = b[ks] + a[ms];
    }
  }
  plan_cmul(gr, gi, ph[2 * k], ph[2 * k + 1], zr, zi);
}

// Disentangle Z_k (p,q) / Z_{n−k} (r,s) into the two real spectra and apply
// the Makhoul rotate for output frequencies k and n−k of both sequences.
inline void plan_fwd_rotate(double p, double q, double r, double s,
                            const double* ph, std::size_t k, std::size_t n,
                            double* a, double* b, std::size_t stride) {
  const double ar = (p + r) * 0.5;
  const double br = (q + s) * 0.5;
  const double ai = (q - s) * 0.5;
  const double bi = (p - r) * -0.5;
  const double c1 = ph[2 * k], d1 = ph[2 * k + 1];
  const double c2 = ph[2 * (n - k)], d2 = ph[2 * (n - k) + 1];
  a[k * stride] = ar * c1 - ai * d1;
  b[k * stride] = br * c1 - bi * d1;
  a[(n - k) * stride] = ar * c2 + ai * d2;
  b[(n - k) * stride] = br * c2 + bi * d2;
}

}  // namespace

void plan_fwd_head(const double* a, const double* b, std::size_t stride,
                   const std::uint32_t* perm, double* z, std::size_t n) {
  if (n == 2) {  // the lone butterfly belongs to the tail's tw stage
    z[0] = a[perm[0] * stride];
    z[1] = b[perm[0] * stride];
    z[2] = a[perm[1] * stride];
    z[3] = b[perm[1] * stride];
    return;
  }
  for (std::size_t j = 0; j < n; j += 2) {
    const std::size_t s0 = perm[j] * stride;
    const std::size_t s1 = perm[j + 1] * stride;
    const double ur = a[s0], ui = b[s0];
    const double vr = a[s1], vi = b[s1];
    z[2 * j] = ur + vr;
    z[2 * j + 1] = ui + vi;
    z[2 * j + 2] = ur - vr;
    z[2 * j + 3] = ui - vi;
  }
}

void plan_inv_head(const double* a, const double* b, std::size_t stride,
                   const std::uint32_t* brev, const double* ph, double* z,
                   std::size_t n, int sine) {
  if (n == 2) {
    plan_inv_g(a, b, stride, ph, brev[0], n, sine, &z[0], &z[1]);
    plan_inv_g(a, b, stride, ph, brev[1], n, sine, &z[2], &z[3]);
    return;
  }
  for (std::size_t j = 0; j < n; j += 2) {
    double ur, ui, vr, vi;
    plan_inv_g(a, b, stride, ph, brev[j], n, sine, &ur, &ui);
    plan_inv_g(a, b, stride, ph, brev[j + 1], n, sine, &vr, &vi);
    z[2 * j] = ur + vr;
    z[2 * j + 1] = ui + vi;
    z[2 * j + 2] = ur - vr;
    z[2 * j + 3] = ui - vi;
  }
}

void plan_fwd_tail(const double* z, const double* tw, const double* ph,
                   double* a, double* b, std::size_t stride, std::size_t n) {
  const std::size_t h = n / 2;
  // j = 0 feeds the two self-conjugate frequencies 0 and n/2, where both
  // real spectra are purely real: Z_0 = (A_0, B_0), Z_{n/2} = (A_{n/2},
  // B_{n/2}), and the rotate collapses to ·1 resp. ·Re(ph_{n/2}).
  {
    const double ur = z[0], ui = z[1];
    double vr, vi;
    plan_cmul(z[2 * h], z[2 * h + 1], tw[0], tw[1], &vr, &vi);
    a[0] = ur + vr;
    b[0] = ui + vi;
    const double c = ph[2 * h];
    a[h * stride] = (ur - vr) * c;
    b[h * stride] = (ui - vi) * c;
  }
  for (std::size_t k = 1; 4 * k <= n; ++k) {
    const std::size_t jB = h - k;
    double vr, vi;
    plan_cmul(z[2 * (k + h)], z[2 * (k + h) + 1], tw[2 * k], tw[2 * k + 1],
              &vr, &vi);
    const double sAr = z[2 * k] + vr, sAi = z[2 * k + 1] + vi;      // Z_k
    const double dAr = z[2 * k] - vr, dAi = z[2 * k + 1] - vi;      // Z_{k+h}
    if (k == jB) {  // k = n/4 mirrors onto itself: one pair, done
      plan_fwd_rotate(sAr, sAi, dAr, dAi, ph, k, n, a, b, stride);
      break;
    }
    plan_cmul(z[2 * (jB + h)], z[2 * (jB + h) + 1], tw[2 * jB],
              tw[2 * jB + 1], &vr, &vi);
    const double sBr = z[2 * jB] + vr, sBi = z[2 * jB + 1] + vi;    // Z_{h−k}
    const double dBr = z[2 * jB] - vr, dBi = z[2 * jB + 1] - vi;    // Z_{n−k}
    plan_fwd_rotate(sAr, sAi, dBr, dBi, ph, k, n, a, b, stride);
    plan_fwd_rotate(sBr, sBi, dAr, dAi, ph, jB, n, a, b, stride);
  }
}

void plan_inv_tail(const double* z, const double* tw, double* a, double* b,
                   std::size_t stride, std::size_t n, int sine) {
  const std::size_t h = n / 2;
  const double e = 1.0 / static_cast<double>(n);  // exact: n a power of two
  const double o = sine ? -e : e;
  if (n == 2) {
    double vr, vi;
    plan_cmul(z[2], z[3], tw[0], tw[1], &vr, &vi);
    a[0] = (z[0] + vr) * e;
    b[0] = (z[1] + vi) * e;
    a[stride] = (z[0] - vr) * o;
    b[stride] = (z[1] - vi) * o;
    return;
  }
  // y = FFT(z) = n·(w_a + i·w_b); the Makhoul unpack reads w_t into slot 2t
  // and w_{n−1−t} into 2t+1, so butterfly i (sum y_i, diff y_{i+h}) pairs
  // with butterfly h−1−i and the four outputs land at 2i, 2i+1, n−2−2i,
  // n−1−2i — all distinct for every i < n/4.
  for (std::size_t i = 0; 4 * i < n; ++i) {
    const std::size_t jB = h - 1 - i;
    double vr, vi;
    plan_cmul(z[2 * (i + h)], z[2 * (i + h) + 1], tw[2 * i], tw[2 * i + 1],
              &vr, &vi);
    const double sAr = z[2 * i] + vr, sAi = z[2 * i + 1] + vi;
    const double dAr = z[2 * i] - vr, dAi = z[2 * i + 1] - vi;
    plan_cmul(z[2 * (jB + h)], z[2 * (jB + h) + 1], tw[2 * jB],
              tw[2 * jB + 1], &vr, &vi);
    const double sBr = z[2 * jB] + vr, sBi = z[2 * jB + 1] + vi;
    const double dBr = z[2 * jB] - vr, dBi = z[2 * jB + 1] - vi;
    a[(2 * i) * stride] = sAr * e;
    b[(2 * i) * stride] = sAi * e;
    a[(2 * i + 1) * stride] = dBr * o;
    b[(2 * i + 1) * stride] = dBi * o;
    a[(n - 2 - 2 * i) * stride] = sBr * e;
    b[(n - 2 - 2 * i) * stride] = sBi * e;
    a[(n - 1 - 2 * i) * stride] = dAr * o;
    b[(n - 1 - 2 * i) * stride] = dAi * o;
  }
}

void nesterov_update(float* __restrict v, float* __restrict v_prev,
                     float* __restrict g_prev, float* __restrict u,
                     const float* __restrict g, const float* __restrict lo,
                     const float* __restrict hi, std::size_t n, double eta,
                     float coef) {
  for (std::size_t c = 0; c < n; ++c) {
    v_prev[c] = v[c];
    g_prev[c] = g[c];
    const float u_new =
        std::clamp(static_cast<float>(v[c] - eta * g[c]), lo[c], hi[c]);
    v[c] = std::clamp(u_new + coef * (u_new - u[c]), lo[c], hi[c]);
    u[c] = u_new;
  }
}
void precond_apply(float* __restrict gx, float* __restrict gy,
                   const float* __restrict nets, const float* __restrict area,
                   float lambda, std::size_t n) {
  for (std::size_t c = 0; c < n; ++c) {
    const float p = std::max(1.0f, nets[c] + lambda * area[c]);
    gx[c] /= p;
    gy[c] /= p;
  }
}

}  // namespace scalar

const Kernels& scalar_kernels() {
  static const Kernels k = {
      .isa = Isa::kScalar,
      .name = "scalar",
      .add = scalar::add,
      .sub = scalar::sub,
      .mul = scalar::mul,
      .maximum = scalar::maximum,
      .vexp = scalar::vexp,
      .reciprocal = scalar::reciprocal,
      .neg = scalar::neg,
      .vabs = scalar::vabs,
      .mul_scalar = scalar::mul_scalar,
      .add_scalar = scalar::add_scalar,
      .clamp_min = scalar::clamp_min,
      .fill = scalar::fill,
      .copy = scalar::copy,
      .add_ = scalar::add_,
      .axpy_ = scalar::axpy_,
      .scal_ = scalar::scal_,
      .axpby_ = scalar::axpby_,
      .sum = scalar::sum,
      .abs_sum = scalar::abs_sum,
      .max_value = scalar::max_value,
      .min_value = scalar::min_value,
      .dot = scalar::dot,
      .diff_sq_sum = scalar::diff_sq_sum,
      .abs_max = scalar::abs_max,
      .finite_stats = scalar::finite_stats,
      .ddot = scalar::ddot,
      .gather_pin_pos = scalar::gather_pin_pos,
      .minmax = scalar::minmax,
      .wa_sums = scalar::wa_sums,
      .wa_grad = scalar::wa_grad,
      .span_scatter = scalar::span_scatter,
      .span_gather = scalar::span_gather,
      .fft_pass = scalar::fft_pass,
      .conj_scale = scalar::conj_scale,
      .dct_pack = scalar::dct_pack,
      .dct_rotate = scalar::dct_rotate,
      .idct_pretwiddle = scalar::idct_pretwiddle,
      .idct_unpack = scalar::idct_unpack,
      .plan_fwd_head = scalar::plan_fwd_head,
      .plan_inv_head = scalar::plan_inv_head,
      .plan_fwd_tail = scalar::plan_fwd_tail,
      .plan_inv_tail = scalar::plan_inv_tail,
      .nesterov_update = scalar::nesterov_update,
      .precond_apply = scalar::precond_apply,
  };
  return k;
}

// ---------------------------------------------------------------------------
// Runtime dispatch.
// ---------------------------------------------------------------------------

// Defined in simd_avx2.cpp; nullptr when the build target has no AVX2 path.
const Kernels* avx2_kernels_or_null();

bool cpu_has_avx2() { return avx2_kernels_or_null() != nullptr; }

const Kernels& avx2_kernels() {
  const Kernels* k = avx2_kernels_or_null();
  assert(k != nullptr && "avx2_kernels() requires cpu_has_avx2()");
  return *k;
}

const char* isa_name(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

Isa resolve_policy(const char* value) {
  if (value == nullptr || value[0] == '\0' ||
      std::strcmp(value, "auto") == 0) {
    return cpu_has_avx2() ? Isa::kAvx2 : Isa::kScalar;
  }
  if (std::strcmp(value, "off") == 0 || std::strcmp(value, "scalar") == 0) {
    return Isa::kScalar;
  }
  if (std::strcmp(value, "avx2") == 0) {
    if (cpu_has_avx2()) return Isa::kAvx2;
    XP_WARN("XPLACE_SIMD=avx2 requested but this CPU lacks AVX2+FMA; "
            "falling back to scalar");
    return Isa::kScalar;
  }
  XP_WARN("unknown SIMD backend '%s' (off|scalar|avx2|auto); using auto",
          value);
  return cpu_has_avx2() ? Isa::kAvx2 : Isa::kScalar;
}

namespace {

const Kernels* table_for(Isa isa) {
  return isa == Isa::kAvx2 ? &avx2_kernels() : &scalar_kernels();
}

std::atomic<const Kernels*> g_active{nullptr};

const Kernels* resolve_from_env() {
  const Kernels* k = table_for(resolve_policy(std::getenv("XPLACE_SIMD")));
  const Kernels* expected = nullptr;
  // First resolver wins; a concurrent explicit select() is not overwritten.
  g_active.compare_exchange_strong(expected, k, std::memory_order_acq_rel);
  return g_active.load(std::memory_order_acquire);
}

}  // namespace

const Kernels& active() {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) k = resolve_from_env();
  return *k;
}

Isa isa() { return active().isa; }

void select(Isa isa) {
  g_active.store(table_for(isa), std::memory_order_release);
}

bool select(const char* name) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "off") == 0 || std::strcmp(name, "scalar") == 0) {
    select(Isa::kScalar);
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    if (!cpu_has_avx2()) return false;
    select(Isa::kAvx2);
    return true;
  }
  if (name[0] == '\0' || std::strcmp(name, "auto") == 0) {
    select(cpu_has_avx2() ? Isa::kAvx2 : Isa::kScalar);
    return true;
  }
  return false;
}

void publish(telemetry::Registry& registry) {
  registry.gauge("exec.simd.isa").set(static_cast<double>(isa()));
}

}  // namespace xplace::simd
