// Fixed-width SIMD kernel layer with runtime CPU-feature dispatch.
//
// The paper's operators owe their speed to data-parallel GPU kernels; on this
// CPU substrate the analogous axis (after PR 3's thread pool) is vector
// lanes. Every hot inner loop — elementwise tensor ops, the fused WA
// wirelength exp-sums, density scatter/gather bin spans, FFT butterflies, and
// the Nesterov update — routes through the function-pointer table below
// (ggml-style), with two backends:
//
//   * scalar — plain loops, bitwise-identical to the historical kernels, and
//   * avx2   — AVX2+FMA (8×f32 / 4×f64 lanes), selected at runtime iff the
//              CPU supports it.
//
// Selection (first call wins, then cached):
//   1. an explicit select() call (the `--simd` CLI flag, tests),
//   2. the XPLACE_SIMD env var: off|scalar → scalar, avx2 → AVX2 (falls back
//      to scalar with a warning if unsupported), auto/unset → best available.
//
// Determinism contract (DESIGN.md §10):
//   * scalar backend: bitwise-identical results to the pre-SIMD kernels,
//   * avx2 backend: bitwise run-to-run deterministic for a fixed ISA (lane
//     reductions fold in a fixed order); elementwise float kernels are even
//     bitwise-equal to scalar (no FMA contraction in them — verified by
//     tests/test_simd.cpp), while exp-based and reduction kernels agree
//     within documented tolerances (vectorized exp: ≤2 ULP of expf on the WA
//     input range (-87.3, 0]).
//
// The table composes under the ThreadPool: `*_mt` kernels partition work
// across workers and each chunk runs vector lanes internally.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xplace::telemetry {
class Registry;
}

namespace xplace::simd {

/// Instruction-set backends. Numeric values are stable (published as the
/// `exec.simd.isa` gauge): 0 = scalar, 2 = AVX2+FMA.
enum class Isa : int { kScalar = 0, kAvx2 = 2 };

/// Stable WA exp-sum quad for one net/direction (matches ops::detail::WaTerms
/// member-for-member; kept separate so util does not depend on ops).
struct WaSums {
  double sum_e_max = 0.0, sum_xe_max = 0.0;  // Σs, Σx·s, s = exp((x-max)/γ)
  double sum_e_min = 0.0, sum_xe_min = 0.0;  // Σu, Σx·u, u = exp((min-x)/γ)
};

/// One backend: a flat function-pointer table. All pointers are always
/// non-null. `n` is an element count; float buffers need no alignment
/// (kernels use unaligned loads and masked/scalar tails).
struct Kernels {
  Isa isa;
  const char* name;

  // ---- elementwise f32, out-of-place ----
  void (*add)(const float* a, const float* b, float* o, std::size_t n);
  void (*sub)(const float* a, const float* b, float* o, std::size_t n);
  void (*mul)(const float* a, const float* b, float* o, std::size_t n);
  void (*maximum)(const float* a, const float* b, float* o, std::size_t n);
  void (*vexp)(const float* a, float* o, std::size_t n);
  void (*reciprocal)(const float* a, float* o, std::size_t n);
  void (*neg)(const float* a, float* o, std::size_t n);
  void (*vabs)(const float* a, float* o, std::size_t n);
  void (*mul_scalar)(const float* a, float s, float* o, std::size_t n);
  void (*add_scalar)(const float* a, float s, float* o, std::size_t n);
  void (*clamp_min)(const float* a, float lo, float* o, std::size_t n);

  // ---- elementwise f32, in-place ----
  void (*fill)(float* a, float v, std::size_t n);
  void (*copy)(float* dst, const float* src, std::size_t n);
  void (*add_)(float* a, const float* b, std::size_t n);
  void (*axpy_)(float* a, const float* b, float s, std::size_t n);  // a += s·b
  void (*scal_)(float* a, float s, std::size_t n);                  // a *= s
  void (*axpby_)(float* a, float alpha, const float* b, float beta,
                 std::size_t n);  // a = α·a + β·b

  // ---- reductions (double accumulators, fixed lane-fold order) ----
  double (*sum)(const float* a, std::size_t n);
  double (*abs_sum)(const float* a, std::size_t n);
  float (*max_value)(const float* a, std::size_t n);
  float (*min_value)(const float* a, std::size_t n);
  double (*dot)(const float* a, const float* b, std::size_t n);
  /// Σ(a-b)² in double — the Lipschitz ‖Δv‖/‖Δg‖ building block.
  double (*diff_sq_sum)(const float* a, const float* b, std::size_t n);
  /// max(|a_i|) — the Nesterov max-step clamp building block.
  float (*abs_max)(const float* a, std::size_t n);
  /// Fused finite scan of one buffer: counts NaN/Inf entries and sums |v| of
  /// the finite ones.
  void (*finite_stats)(const float* a, std::size_t n, std::size_t* nonfinite,
                       double* abs_sum_out);
  /// Σ a_i·b_i over f64 buffers (double accumulator, fixed lane-fold order) —
  /// the Poisson potential-energy reduce.
  double (*ddot)(const double* a, const double* b, std::size_t n);

  // ---- WA wirelength primitives (per net/direction) ----
  /// px[i] = pos[cell[i]] + off[i] (the per-pin position gather).
  void (*gather_pin_pos)(const float* pos, const std::uint32_t* cell,
                         const float* off, float* px, std::size_t n);
  void (*minmax)(const float* px, std::size_t n, float* lo, float* hi);
  /// The four stable-form WA sums over a gathered pin-position buffer; also
  /// stores the per-pin exp terms s_i, u_i for reuse by wa_grad.
  WaSums (*wa_sums)(const float* px, std::size_t n, float lo, float hi,
                    float inv_gamma, float* s_out, float* u_out);
  /// d[i] = weight·(s_i(1+(px_i-wl_max)/γ)/Σs − u_i(1−(px_i-wl_min)/γ)/Σu):
  /// the per-pin WA gradient values; the caller scatters d into grad[cell]
  /// (duplicate cells per net make the scatter inherently serial).
  void (*wa_grad)(const float* px, const float* s, const float* u,
                  std::size_t n, float inv_gamma, double wl_max, double wl_min,
                  double inv_smax, double inv_smin, float weight, float* d);

  // ---- density bin spans (f64; one contiguous row-run of bins) ----
  /// map[j] += max(0, min(hy, ly0+(j+1)h) − max(ly, ly0+j·h)) · wscale.
  void (*span_scatter)(double* map, std::size_t n, double ly, double hy,
                       double ly0, double h, double wscale);
  /// fx += Σ_j oh_j·ow·ex[j], fy += Σ_j oh_j·ow·ey[j] with the same oh_j.
  void (*span_gather)(const double* ex, const double* ey, std::size_t n,
                      double ly, double hy, double ly0, double h, double ow,
                      double* fx, double* fy);

  // ---- FFT butterflies (interleaved complex f64) ----
  /// One radix-2 stage of length `len` over `n` complex values: for every
  /// block i and k < len/2,
  ///   v = d[i+k+len/2]·tw[k·step];  d[i+k] += v;  d[i+k+len/2] = u − v.
  /// `d` and `tw` are interleaved (re,im) buffers.
  void (*fft_pass)(double* d, const double* tw, std::size_t n, std::size_t len,
                   std::size_t step);
  /// d[i] = conj(d[i])·scale over n complex values (the ifft wrapper).
  void (*conj_scale)(double* d, std::size_t n, double scale);

  // ---- DCT glue (Makhoul reorder/twiddle; v, ph interleaved complex) ----
  /// v[i] = (x[2i], 0), v[n−1−i] = (x[2i+1], 0) for i < n/2 (pre-pack).
  void (*dct_pack)(const double* x, double* v, std::size_t n);
  /// x[k] = Re(v[k]·ph[k]) for k < n (post-rotate).
  void (*dct_rotate)(const double* v, const double* ph, double* x,
                     std::size_t n);
  /// v[k] = conj(ph[k])·(x[k], −x[n−k]) for 1 ≤ k < n (idct pre-twiddle;
  /// the caller seeds v[0]).
  void (*idct_pretwiddle)(const double* x, const double* ph, double* v,
                          std::size_t n);
  /// x[2i] = Re(v[i]), x[2i+1] = Re(v[n−1−i]) for i < n/2 (idct unpack).
  void (*idct_unpack)(const double* v, double* x, std::size_t n);

  // ---- plan-fused DCT passes (fft/plan.h; two real sequences per complex
  //      FFT, sequences a and b read/written at element `stride`) ----
  /// Forward head: z[j] = (a[perm[j]·stride], b[perm[j]·stride]) — the
  /// Makhoul pack composed with the bit-reversal — fused with the
  /// twiddle-free first butterfly over adjacent slot pairs when n ≥ 4.
  void (*plan_fwd_head)(const double* a, const double* b, std::size_t stride,
                        const std::uint32_t* perm, double* z, std::size_t n);
  /// Inverse head: z[j] = ph_k·g_k at k = brev[j], where g packs the two
  /// spectra (conjugate-folded so the pipeline runs a FORWARD fft):
  ///   idct  (sine=0): g = (a_k − b_{n−k},  a_{n−k} + b_k), g_0 = (a_0, b_0)
  ///   idxst (sine=1): g = (a_{n−k} − b_k,  a_k + b_{n−k}), g_0 = (0, 0)
  /// fused with the first butterfly when n ≥ 4.
  void (*plan_inv_head)(const double* a, const double* b, std::size_t stride,
                        const std::uint32_t* brev, const double* ph, double* z,
                        std::size_t n, int sine);
  /// Forward tail: last butterfly (stage len = n, twiddles `tw`) fused with
  /// the real/imag spectrum disentangle and the Makhoul rotate by `ph`,
  /// storing both DCT outputs directly at their strided positions.
  void (*plan_fwd_tail)(const double* z, const double* tw, const double* ph,
                        double* a, double* b, std::size_t stride,
                        std::size_t n);
  /// Inverse tail: last butterfly fused with the 1/n scale and the Makhoul
  /// de-interleave; `sine` negates odd outputs (the idxst sign pattern).
  void (*plan_inv_tail)(const double* z, const double* tw, double* a,
                        double* b, std::size_t stride, std::size_t n,
                        int sine);

  // ---- fused optimizer updates ----
  /// One axis of the Nesterov step (history shift + clamped extrapolation):
  ///   v_prev=v; g_prev=g; u⁺=clamp(v−η·g); v=clamp(u⁺+coef·(u⁺−u)); u=u⁺.
  void (*nesterov_update)(float* v, float* v_prev, float* g_prev, float* u,
                          const float* g, const float* lo, const float* hi,
                          std::size_t n, double eta, float coef);
  /// gx[i] /= p, gy[i] /= p with p = max(1, nets[i] + λ·area[i]).
  void (*precond_apply)(float* gx, float* gy, const float* nets,
                        const float* area, float lambda, std::size_t n);
};

/// The active backend table. First call resolves the env policy; afterwards a
/// relaxed atomic load. Hoist `const Kernels& k = simd::active();` outside
/// element loops (the dispatch-overhead contract is per kernel launch, not
/// per element — see bench_simd_overhead).
const Kernels& active();

/// Shorthand for active().isa.
Isa isa();

/// "scalar" or "avx2".
const char* isa_name(Isa isa);

/// True iff this CPU (and build) can run the AVX2+FMA backend.
bool cpu_has_avx2();

/// Force a backend. Accepts "off"/"scalar", "avx2", "auto"/"" (best
/// available). Returns false (and leaves the selection unchanged) for an
/// unknown name or an ISA the CPU lacks.
bool select(const char* name);
void select(Isa isa);

/// Resolve a policy string the way the XPLACE_SIMD env var is resolved
/// (nullptr/"auto" → best available; unsupported avx2 → scalar). Exposed for
/// tests.
Isa resolve_policy(const char* value);

/// The individual backend tables (avx2_kernels() aborts if !cpu_has_avx2();
/// parity tests compare the two directly without flipping the selection).
const Kernels& scalar_kernels();
const Kernels& avx2_kernels();

/// Publishes the selected backend as the `exec.simd.isa` gauge (0 = scalar,
/// 2 = AVX2).
void publish(telemetry::Registry& registry);

}  // namespace xplace::simd
