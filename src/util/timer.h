// Wall-clock timing utilities.
//
// `Stopwatch` measures a single interval; `TimerRegistry` accumulates named
// intervals across a run (used by the global placer to attribute time to
// individual operators, mirroring a CUDA profiler's per-kernel accounting).
//
// TimerRegistry is thread-safe: operator bodies dispatched onto the thread
// pool may time themselves into one shared registry. For span-level (as
// opposed to aggregate) timing, prefer the telemetry tracer
// (telemetry/trace.h), which records begin/end timestamps for flame views.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace xplace::telemetry {
class Registry;
}

namespace xplace {

/// Simple wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total time and call counts under string keys. All members are
/// safe to call concurrently (guarded by an internal mutex).
class TimerRegistry {
 public:
  struct Entry {
    double total_seconds = 0.0;
    std::uint64_t calls = 0;
  };

  void add(const std::string& key, double seconds) {
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& e = entries_[key];
    e.total_seconds += seconds;
    e.calls += 1;
  }

  /// Snapshot of one entry; `found == false` when the key is absent.
  Entry get(const std::string& key, bool* found = nullptr) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (found != nullptr) *found = it != entries_.end();
    return it == entries_.end() ? Entry{} : it->second;
  }

  bool contains(const std::string& key) const {
    bool found = false;
    (void)get(key, &found);
    return found;
  }

  double total(const std::string& key) const { return get(key).total_seconds; }

  std::uint64_t calls(const std::string& key) const { return get(key).calls; }

  /// Copy of the full entry map (a snapshot, not a live view).
  std::map<std::string, Entry> entries() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_;
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
  }

  /// Multi-line human-readable report sorted by descending total time.
  std::string report() const;

  /// Exports every entry into `registry` as a seconds gauge
  /// (`<prefix><key>.seconds`) and calls counter (`<prefix><key>.calls`).
  /// Counters are overwritten with the current snapshot value, so repeated
  /// publishes are idempotent.
  void publish(telemetry::Registry& registry,
               const std::string& prefix = "timer.") const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

/// RAII helper: adds the scope's elapsed time to a registry entry on exit.
class ScopedTimer {
 public:
  ScopedTimer(TimerRegistry& registry, std::string key)
      : registry_(registry), key_(std::move(key)) {}
  ~ScopedTimer() { registry_.add(key_, watch_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerRegistry& registry_;
  std::string key_;
  Stopwatch watch_;
};

}  // namespace xplace
