// Wall-clock timing utilities.
//
// `Stopwatch` measures a single interval; `TimerRegistry` accumulates named
// intervals across a run (used by the global placer to attribute time to
// individual operators, mirroring a CUDA profiler's per-kernel accounting).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xplace {

/// Simple wall-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates total time and call counts under string keys.
/// Not thread-safe; each thread should use its own registry (the placer is
/// single-threaded at the orchestration level).
class TimerRegistry {
 public:
  struct Entry {
    double total_seconds = 0.0;
    std::uint64_t calls = 0;
  };

  void add(const std::string& key, double seconds) {
    Entry& e = entries_[key];
    e.total_seconds += seconds;
    e.calls += 1;
  }

  const Entry* find(const std::string& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  double total(const std::string& key) const {
    const Entry* e = find(key);
    return e != nullptr ? e->total_seconds : 0.0;
  }

  const std::map<std::string, Entry>& entries() const { return entries_; }

  void clear() { entries_.clear(); }

  /// Multi-line human-readable report sorted by descending total time.
  std::string report() const;

 private:
  std::map<std::string, Entry> entries_;
};

/// RAII helper: adds the scope's elapsed time to a registry entry on exit.
class ScopedTimer {
 public:
  ScopedTimer(TimerRegistry& registry, std::string key)
      : registry_(registry), key_(std::move(key)) {}
  ~ScopedTimer() { registry_.add(key_, watch_.seconds()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerRegistry& registry_;
  std::string key_;
  Stopwatch watch_;
};

}  // namespace xplace
