#include "util/execution.h"

#include <cstdlib>

#include "telemetry/metrics.h"
#include "util/simd.h"

namespace xplace {

ExecutionContext ExecutionContext::threaded(std::size_t threads) {
  ExecutionContext ctx;
  ctx.pool_ = std::make_shared<ThreadPool>(threads);
  // A pool of 1 is the caller thread alone: keep the serial tag so callers
  // asking backend() see the truth (parallel() is false either way).
  ctx.backend_ = ctx.pool_->size() > 1 ? ExecBackend::kThreadPool
                                       : ExecBackend::kSerial;
  return ctx;
}

ExecutionContext ExecutionContext::from_env() {
  if (const char* env = std::getenv("XPLACE_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 1) {
      // Borrow the process-wide pool (sized from the same env var) instead of
      // spawning a fresh one per placer: one shared pool for the flow. If two
      // flow threads ever dispatch concurrently, parallel_for serializes the
      // loser inline rather than racing the task slot (see thread_pool.h).
      ExecutionContext ctx;
      ctx.backend_ = ExecBackend::kThreadPool;
      ctx.pool_ = std::shared_ptr<ThreadPool>(&ThreadPool::global(),
                                              [](ThreadPool*) {});
      return ctx;
    }
  }
  return serial();
}

ExecutionContext ExecutionContext::from_threads(int threads) {
  if (threads == 0) return from_env();
  if (threads == 1) return serial();
  if (threads < 0) return threaded(0);  // hardware concurrency
  return threaded(static_cast<std::size_t>(threads));
}

void ExecutionContext::publish(telemetry::Registry& registry) const {
  registry.gauge("exec.threads").set(static_cast<double>(threads()));
  registry.gauge("exec.backend")
      .set(backend_ == ExecBackend::kThreadPool ? 1.0 : 0.0);
  simd::publish(registry);  // exec.simd.isa: 0 = scalar, 2 = AVX2
  if (pool_ == nullptr) return;
  const ThreadPool::Stats s = pool_->stats();
  telemetry::Counter& d = registry.counter("exec.pool.dispatches");
  d.reset();
  d.inc(s.dispatches);
  registry.gauge("exec.pool.busy_seconds").set(s.busy_seconds);
  registry.gauge("exec.pool.wall_seconds").set(s.wall_seconds);
  // Fraction of worker capacity doing kernel work while the pool was engaged;
  // 1.0 = perfect scaling across every parallel_for.
  const double denom = s.wall_seconds * static_cast<double>(threads());
  registry.gauge("exec.pool.utilization")
      .set(denom > 0.0 ? s.busy_seconds / denom : 0.0);
}

}  // namespace xplace
