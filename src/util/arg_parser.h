// Tiny command-line flag parser for the example and bench binaries.
//
// Flags use the form `--name value` or `--name=value`; `--flag` alone sets a
// boolean. Unknown flags are reported and cause `ok()` to be false.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace xplace {

class ArgParser {
 public:
  ArgParser(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& def = "") const;
  long get_int(const std::string& name, long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  bool ok() const { return errors_.empty(); }
  const std::vector<std::string>& errors() const { return errors_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace xplace
