// Shared CLI/env resolution of the execution + SIMD backends.
//
// Every runtime surface (place_bookshelf, the other example CLIs, and the
// xplace_serve daemon) accepts the same pair of knobs:
//
//   --threads N / XPLACE_THREADS   worker threads (see execution.h)
//   --simd B   / XPLACE_SIMD       SIMD kernel table (see simd.h)
//
// Historically each binary carried its own copy of the flag-beats-env
// resolution and the "execution backend: ..." summary line; this helper is
// the single implementation. Resolution happens exactly once per process
// (the SIMD table selection is first-call-wins anyway), and the summary
// string is derived from the *actually constructed* ExecutionContext so it
// never disagrees with what the flow runs on.
#pragma once

#include <string>

#include "util/execution.h"

namespace xplace {

struct BackendResolution {
  /// False when the SIMD flag named an unknown/unsupported backend; the
  /// caller should exit non-zero (an explicit flag is a hard error, while a
  /// bad XPLACE_SIMD value only warns and falls back — unchanged semantics).
  bool ok = true;
  /// Thread request to place into PlacerConfig::threads / ServerConfig:
  /// the flag value when given, otherwise 0 (= defer to XPLACE_THREADS).
  int threads = 0;
};

/// Resolves the backend flag pair once: selects the SIMD kernel table when
/// `simd_flag` is non-empty (empty defers to XPLACE_SIMD / auto on first
/// kernel launch) and passes the thread request through. Logs an error and
/// returns ok=false on an unknown SIMD backend.
BackendResolution resolve_backend_flags(const std::string& simd_flag,
                                        int threads);

/// One-line human summary of the backends a flow actually constructed, e.g.
///   "execution backend: threadpool (4 threads), simd avx2"
/// Forces SIMD resolution (env or auto) so the printed ISA is final.
std::string backend_summary(const ExecutionContext& exec);

}  // namespace xplace
