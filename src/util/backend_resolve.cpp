#include "util/backend_resolve.h"

#include <cstdio>

#include "util/logging.h"
#include "util/simd.h"

namespace xplace {

BackendResolution resolve_backend_flags(const std::string& simd_flag,
                                        int threads) {
  BackendResolution r;
  r.threads = threads;
  if (!simd_flag.empty() && !simd::select(simd_flag.c_str())) {
    XP_ERROR(
        "--simd %s: unknown backend or unsupported on this CPU "
        "(off|scalar|avx2|auto)",
        simd_flag.c_str());
    r.ok = false;
  }
  return r;
}

std::string backend_summary(const ExecutionContext& exec) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "execution backend: %s (%zu thread%s), simd %s",
                exec.backend_name(), exec.threads(),
                exec.threads() == 1 ? "" : "s", simd::isa_name(simd::isa()));
  return buf;
}

}  // namespace xplace
