// Pluggable execution backend for the placement flow.
//
// The paper's placer owes its speed to massively parallel per-net/per-cell
// GPU kernels; this CPU reproduction carries the same kernels in serial and
// ThreadPool-partitioned (`*_mt`) form. An ExecutionContext names which of
// the two backends a flow runs on and owns the one shared ThreadPool every
// layer dispatches onto:
//
//   GlobalPlacer ──▶ GradientEngine ──▶ ops kernels (scatter/gather/fused WA)
//                └─▶ PoissonSolver  ──▶ fft 2-D transforms
//   abacus_legalize / detailed_place (passed explicitly by the driver)
//
// Determinism contract (see DESIGN.md §9):
//   * serial backend: bitwise-identical to the historical single-threaded
//     flow — it runs the exact same code paths,
//   * threadpool backend: bitwise-deterministic run-to-run for a fixed
//     thread count (all reductions are worker- or slot-ordered), and equal
//     to serial up to float accumulation order.
//
// Contexts are cheap value types (a backend tag + a shared_ptr pool); copies
// share the pool. The flow-level selection comes from `--threads N` or the
// XPLACE_THREADS env var via from_threads()/from_env().
#pragma once

#include <cstddef>
#include <memory>

#include "util/thread_pool.h"

namespace xplace::telemetry {
class Registry;
}

namespace xplace {

enum class ExecBackend { kSerial, kThreadPool };

class ExecutionContext {
 public:
  /// Default-constructed context is the serial backend.
  ExecutionContext() = default;

  static ExecutionContext serial() { return ExecutionContext(); }

  /// Threadpool backend with an owned pool of `threads` workers
  /// (0 = hardware concurrency). A pool of 1 degenerates to serial.
  static ExecutionContext threaded(std::size_t threads = 0);

  /// Backend from the XPLACE_THREADS env var: > 1 selects the threadpool
  /// backend over the process-wide shared pool; unset/0/1 is serial.
  static ExecutionContext from_env();

  /// Backend from a config/CLI thread count:
  ///   0  → from_env()            (the default: env-controlled, serial if unset)
  ///   1  → serial
  ///   N>1 → threadpool with N threads
  ///   <0 → threadpool sized to hardware concurrency
  static ExecutionContext from_threads(int threads);

  ExecBackend backend() const { return backend_; }
  const char* backend_name() const {
    return backend_ == ExecBackend::kSerial ? "serial" : "threadpool";
  }

  /// Worker count the backend executes with (1 for serial).
  std::size_t threads() const { return pool_ ? pool_->size() : 1; }

  /// True when kernels should route to their `*_mt` variants.
  bool parallel() const { return pool_ != nullptr && pool_->size() > 1; }

  /// The shared pool, or nullptr on the serial backend.
  ThreadPool* pool() const { return pool_.get(); }

  /// Publishes backend configuration + pool utilization into `registry`:
  /// `exec.threads`, `exec.backend` (0 serial / 1 threadpool), and the pool's
  /// `exec.pool.*` gauges/counters. Idempotent (snapshot overwrite).
  void publish(telemetry::Registry& registry) const;

 private:
  ExecBackend backend_ = ExecBackend::kSerial;
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace xplace
