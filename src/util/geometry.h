// Planar geometry primitives used throughout the placement database.
#pragma once

#include <algorithm>
#include <cmath>

namespace xplace {

template <typename T>
struct Point {
  T x = T{};
  T y = T{};

  friend bool operator==(const Point&, const Point&) = default;
  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

using PointF = Point<float>;
using PointD = Point<double>;
using PointI = Point<int>;

/// Axis-aligned rectangle, half-open semantics are not assumed: callers decide
/// whether hi is inclusive. Width/height are hi - lo.
template <typename T>
struct Rect {
  T lx = T{};
  T ly = T{};
  T hx = T{};
  T hy = T{};

  friend bool operator==(const Rect&, const Rect&) = default;

  T width() const { return hx - lx; }
  T height() const { return hy - ly; }
  T area() const { return width() * height(); }
  T cx() const { return (lx + hx) / T{2}; }
  T cy() const { return (ly + hy) / T{2}; }

  bool contains(T x, T y) const {
    return x >= lx && x <= hx && y >= ly && y <= hy;
  }

  bool overlaps(const Rect& o) const {
    return lx < o.hx && o.lx < hx && ly < o.hy && o.ly < hy;
  }

  /// Area of intersection with `o`, zero when disjoint.
  T overlap_area(const Rect& o) const {
    const T w = std::min(hx, o.hx) - std::max(lx, o.lx);
    const T h = std::min(hy, o.hy) - std::max(ly, o.ly);
    if (w <= T{0} || h <= T{0}) return T{0};
    return w * h;
  }

  Rect intersection(const Rect& o) const {
    return {std::max(lx, o.lx), std::max(ly, o.ly), std::min(hx, o.hx),
            std::min(hy, o.hy)};
  }

  /// Smallest rectangle covering both.
  Rect united(const Rect& o) const {
    return {std::min(lx, o.lx), std::min(ly, o.ly), std::max(hx, o.hx),
            std::max(hy, o.hy)};
  }
};

using RectF = Rect<float>;
using RectD = Rect<double>;
using RectI = Rect<int>;

/// Clamp helper mirroring std::clamp but tolerant of lo > hi (returns lo).
template <typename T>
T clamp_safe(T v, T lo, T hi) {
  if (hi < lo) return lo;
  return std::min(std::max(v, lo), hi);
}

}  // namespace xplace
