// Cooperative cancellation for long-running placement flows.
//
// A StopToken is a cancel flag plus an optional monotonic deadline that a
// driver (CLI `--timeout-s`, the placement server's `cancel` command) arms
// and the flow polls at natural boundaries: once per GP iteration and at
// LG/DP phase boundaries. Polling is two relaxed atomic loads plus a clock
// read — negligible against an iteration's kernel work.
//
// Contract (DESIGN.md §11):
//   * The flow never stops mid-kernel; it finishes the current unit of work
//     and exits at the next poll point, so the database is always left in a
//     committed, finite state.
//   * Cancellation wins over deadline when both have fired (the explicit
//     request is the stronger signal).
//   * A fired token stays fired: check() is monotonic, so every later phase
//     of the flow observes the same cause and unwinds.
//
// Thread-safety: request_cancel()/set_deadline() may race check() freely;
// the poller sees the request at its next poll.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace xplace {

/// Why a poll told the flow to stop. kNone = keep running.
enum class StopCause : int { kNone = 0, kCancelled = 1, kDeadline = 2 };

inline const char* to_string(StopCause cause) {
  switch (cause) {
    case StopCause::kNone: return "none";
    case StopCause::kCancelled: return "cancelled";
    case StopCause::kDeadline: return "deadline";
  }
  return "?";
}

class StopToken {
 public:
  StopToken() = default;

  // Tokens are shared by address between the arming side and the polling
  // flow; copying one would silently split that channel.
  StopToken(const StopToken&) = delete;
  StopToken& operator=(const StopToken&) = delete;

  /// Arms the cancel flag. Idempotent; safe from any thread.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Arms (or moves) the deadline. Safe from any thread.
  void set_deadline(std::chrono::steady_clock::time_point tp) noexcept {
    deadline_ns_.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            tp.time_since_epoch())
            .count(),
        std::memory_order_relaxed);
  }

  /// Deadline `seconds` from now. Non-positive seconds = an already-expired
  /// deadline (the flow stops at its first poll).
  void set_timeout(double seconds) noexcept {
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::nanoseconds(
                     static_cast<std::int64_t>(seconds * 1e9)));
  }

  bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// The poll: kCancelled once request_cancel() was called (wins over an
  /// expired deadline), kDeadline once the deadline passed, kNone otherwise.
  StopCause check() const noexcept {
    if (cancel_requested()) return StopCause::kCancelled;
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    if (d != 0) {
      const std::int64_t now =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count();
      if (now >= d) return StopCause::kDeadline;
    }
    return StopCause::kNone;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  ///< steady-clock ns; 0 = unset
};

/// Null-safe poll helper for flows that take an optional token.
inline StopCause poll_stop(const StopToken* token) noexcept {
  return token != nullptr ? token->check() : StopCause::kNone;
}

}  // namespace xplace
