#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "telemetry/trace.h"
#include "util/timer.h"

namespace xplace {
namespace {

/// Relaxed fetch-add for atomic<double> (no hardware primitive in libstdc++;
/// a CAS loop is fine for the per-task accounting rate).
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// Set while this thread executes chunks of any pool's task: a kernel calling
/// parallel_for from inside a worker must not touch the single task slot.
thread_local bool t_in_pool_chunk = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The caller thread is worker 0; spawn the rest.
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(const Task& task, std::size_t worker_index) {
  const std::size_t n_chunks = (task.n + task.chunk - 1) / task.chunk;
  const bool was_in_chunk = t_in_pool_chunk;
  t_in_pool_chunk = true;
  // Inherit the dispatcher's job identity for spans recorded inside chunks
  // (two thread_local stores; restored on scope exit).
  telemetry::TraceBinding trace_binding(task.trace_id);
  double busy = 0.0;
  for (;;) {
    const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= n_chunks) break;
    const std::size_t begin = c * task.chunk;
    const std::size_t end = std::min(task.n, begin + task.chunk);
    Stopwatch watch;
    try {
      (*task.fn)(begin, end, worker_index);
    } catch (...) {
      // First exception wins; abandon the remaining chunks so every worker
      // drains quickly and parallel_for can rethrow.
      std::lock_guard<std::mutex> lock(mutex_);
      if (!pending_exception_) pending_exception_ = std::current_exception();
      next_chunk_.store(n_chunks, std::memory_order_relaxed);
    }
    busy += watch.seconds();
  }
  t_in_pool_chunk = was_in_chunk;
  if (busy > 0.0) atomic_add(busy_seconds_, busy);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      task = task_;
    }
    run_chunks(task, worker_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  if (n == 0) return;
  if (workers_.empty() || t_in_pool_chunk) {
    // No workers, or a nested call from inside a chunk: run inline.
    fn(0, n, 0);
    return;
  }
  bool expected = false;
  if (!dispatching_.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
    // Another thread is already driving this pool (e.g. two placers sharing
    // the global pool): racing the single task slot would corrupt it, so run
    // this caller's range inline instead.
    fn(0, n, 0);
    return;
  }
  struct DispatchClear {
    std::atomic<bool>* flag;
    ~DispatchClear() { flag->store(false, std::memory_order_release); }
  } dispatch_clear{&dispatching_};
  Stopwatch wall;
  const std::size_t workers = size();
  // Default: ~4 chunks per worker for load balancing, but never chunks smaller
  // than 64 elements (per-chunk dispatch would dominate). Callers with coarse
  // per-index work override via `grain`.
  const std::size_t chunk =
      grain > 0 ? grain : std::max<std::size_t>(64, n / (workers * 4) + 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_.fn = &fn;
    task_.n = n;
    task_.chunk = chunk;
    task_.trace_id = telemetry::TraceContext::current();
    next_chunk_.store(0, std::memory_order_relaxed);
    pending_exception_ = nullptr;
    pending_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  run_chunks(task_, 0);
  std::exception_ptr eptr;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
    eptr = pending_exception_;
    pending_exception_ = nullptr;
  }
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(wall_seconds_, wall.seconds());
  if (eptr) std::rethrow_exception(eptr);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.dispatches = dispatches_.load(std::memory_order_relaxed);
  s.busy_seconds = busy_seconds_.load(std::memory_order_relaxed);
  s.wall_seconds = wall_seconds_.load(std::memory_order_relaxed);
  return s;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("XPLACE_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace xplace
