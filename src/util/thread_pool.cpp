#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace xplace {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // The caller thread is worker 0; spawn the rest.
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(const Task& task, std::size_t worker_index) {
  const std::size_t n_chunks = (task.n + task.chunk - 1) / task.chunk;
  for (;;) {
    const std::size_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
    if (c >= n_chunks) break;
    const std::size_t begin = c * task.chunk;
    const std::size_t end = std::min(task.n, begin + task.chunk);
    (*task.fn)(begin, end, worker_index);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      task = task_;
    }
    run_chunks(task, worker_index);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    fn(0, n, 0);
    return;
  }
  const std::size_t workers = size();
  // ~4 chunks per worker for load balancing, but never chunks smaller than 64
  // elements (per-chunk dispatch would dominate).
  std::size_t chunk = std::max<std::size_t>(64, n / (workers * 4) + 1);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_.fn = &fn;
    task_.n = n;
    task_.chunk = chunk;
    next_chunk_.store(0, std::memory_order_relaxed);
    pending_ = workers_.size();
    ++generation_;
  }
  cv_start_.notify_all();
  run_chunks(task_, 0);
  std::unique_lock<std::mutex> lock(mutex_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("XPLACE_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<std::size_t>(v);
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace xplace
