// Minimal fixed-size thread pool with a blocking parallel_for.
//
// The GPU placer of the paper parallelizes per-net and per-cell kernels
// across CUDA threads; on this CPU substrate the same kernels are chunked
// across pool workers. Reductions use per-thread buffers so results are
// deterministic regardless of the worker count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xplace {

class ThreadPool {
 public:
  /// `num_threads == 0` means "hardware concurrency" (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size() + 1; }  // +1: caller thread

  /// Runs fn(begin, end, worker_index) over chunked subranges of [0, n) and
  /// blocks until all chunks complete. worker_index is in [0, size()).
  /// The calling thread participates, so a pool of size 1 degenerates to a
  /// plain loop with zero synchronization overhead.
  ///
  /// If fn throws, the first exception (any worker) is captured, remaining
  /// chunks are abandoned, and the exception is rethrown here after all
  /// workers have quiesced; the pool stays usable.
  ///
  /// The pool has one task slot, so only one thread may drive it at a time.
  /// Rather than deadlock or corrupt the slot, unsupported dispatches degrade
  /// to inline serial execution of the whole range (fn(0, n, 0) on the
  /// caller): a nested parallel_for from inside a worker chunk, or a
  /// concurrent parallel_for from a second flow thread while another is
  /// already dispatching. The intended regime remains one flow thread owning
  /// the pool.
  ///
  /// `grain` is the chunk size: 0 picks an element-loop heuristic (~4 chunks
  /// per worker, minimum 64 elements). Pass an explicit grain (usually 1)
  /// when each index is a coarse work item — a row transform, a per-worker
  /// partition, a trial placement — or the heuristic minimum will lump the
  /// whole range into one or two chunks.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn,
                    std::size_t grain = 0);

  /// Pool-utilization accounting, accumulated across every parallel_for:
  /// dispatch count and the summed worker-busy vs caller-wall seconds
  /// (utilization = busy / (wall · size())). Exposed so the
  /// ExecutionContext can publish `exec.pool.*` telemetry.
  struct Stats {
    std::uint64_t dispatches = 0;  ///< parallel_for calls that fanned out
    double busy_seconds = 0.0;     ///< Σ per-worker in-kernel time
    double wall_seconds = 0.0;     ///< Σ caller-side parallel_for time
  };
  Stats stats() const;

  /// Process-wide default pool (sized from XPLACE_THREADS env var if set,
  /// otherwise hardware concurrency).
  static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* fn =
        nullptr;
    std::size_t n = 0;
    std::size_t chunk = 0;
    /// Dispatching thread's telemetry trace binding, re-bound in each worker
    /// for the task's duration so pooled kernel spans carry the same job
    /// identity as the thread that launched them.
    std::uint64_t trace_id = 0;
  };

  void worker_loop(std::size_t worker_index);
  void run_chunks(const Task& task, std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  Task task_;
  std::size_t generation_ = 0;  // incremented per parallel_for call
  std::size_t pending_ = 0;     // workers still running the current task
  std::atomic<std::size_t> next_chunk_{0};
  std::exception_ptr pending_exception_;  // first exception of the current task
  std::atomic<bool> dispatching_{false};  // a thread is driving parallel_for
  bool stop_ = false;

  // Utilization accounting (relaxed; read via stats()).
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<double> busy_seconds_{0.0};
  std::atomic<double> wall_seconds_{0.0};
};

}  // namespace xplace
