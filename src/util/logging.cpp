#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace xplace::log {
namespace {

/// Startup level from the XPLACE_LOG_LEVEL environment variable. Accepts
/// names (debug/info/warn/error/off, case-sensitive lowercase) or the
/// numeric enum values 0-4; anything else (or unset) keeps the kInfo
/// default, so benches and CI control verbosity without code changes.
Level level_from_env() {
  const char* env = std::getenv("XPLACE_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return Level::kInfo;
  if (std::strcmp(env, "debug") == 0) return Level::kDebug;
  if (std::strcmp(env, "info") == 0) return Level::kInfo;
  if (std::strcmp(env, "warn") == 0) return Level::kWarn;
  if (std::strcmp(env, "error") == 0) return Level::kError;
  if (std::strcmp(env, "off") == 0) return Level::kOff;
  if (env[0] >= '0' && env[0] <= '4' && env[1] == '\0') {
    return static_cast<Level>(env[0] - '0');
  }
  return Level::kInfo;
}

std::atomic<Level> g_level{level_from_env()};
std::mutex g_mutex;

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DBG ";
    case Level::kInfo:  return "INFO";
    case Level::kWarn:  return "WARN";
    case Level::kError: return "ERR ";
    default:            return "????";
  }
}

std::chrono::steady_clock::time_point process_start() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

// Force initialization of the start time at static-init time.
const auto g_start_init = process_start();

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

double elapsed_seconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       process_start())
      .count();
}

void logf(Level lvl, const char* file, int line, const char* fmt, ...) {
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;
  // Trim the file path to its basename for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%8.3f][%s] %s:%d: ", elapsed_seconds(),
               level_tag(lvl), base, line);
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace xplace::log
