// Perf-regression gate over committed bench baselines (DESIGN.md §12).
//
// The benches (bench_micro_ops, bench_table3_ablation, bench_serve_soak)
// emit a shared JSON schema:
//
//   {"bench": "<name>", "results": [
//      {"kernel": "...", "backend": "...", "threads": 1, "simd": "...",
//       "ns_per_iter": 1234.5, "tolerance": 0.35}, ...]}
//
// A baseline file of that schema is committed (BENCH_simd.json,
// BENCH_serve.json); check_regression re-runs the bench and compares each
// row against the committed number. A row regresses when
//
//   current > baseline * (1 + tolerance)
//
// where `tolerance` is the row's own field when present (noisy kernels ship
// wider bands) or the comparison-wide default. Rows present on only one
// side are reported but never fail the gate — baselines age across kernel
// additions without churn.
//
// This lives in the server module (not telemetry) because it reuses the
// JSON parser the protocol already owns; telemetry must stay leaf-level.
#pragma once

#include <string>
#include <vector>

namespace xplace::server {

/// One bench measurement row. `tolerance` <= 0 means "use the default".
struct BenchRow {
  std::string kernel;
  std::string backend;
  std::string simd;
  int threads = 1;
  double ns_per_iter = 0.0;
  double tolerance = 0.0;
};

struct BenchFile {
  std::string bench;  ///< emitting binary's name ("" when absent)
  std::vector<BenchRow> rows;
};

/// Stable row identity for matching baseline to current: kernel, backend,
/// simd, threads, plus an occurrence index so files with repeated keys
/// (table3 emits one row per launch-latency mode) match positionally.
std::string row_key(const BenchRow& row, int occurrence);

/// Parses a bench JSON file. False (with *error) on unreadable/malformed
/// input or a missing `results` array; rows lacking `ns_per_iter` are
/// skipped.
bool load_bench_json(const std::string& path, BenchFile* out,
                     std::string* error);

/// Verdict for one matched row pair.
struct RowComparison {
  std::string key;
  double baseline_ns = 0.0;
  double current_ns = 0.0;
  double ratio = 0.0;      ///< current / baseline
  double tolerance = 0.0;  ///< band applied (row override or default)
  bool regressed = false;  ///< ratio > 1 + tolerance
};

struct RegressionReport {
  std::vector<RowComparison> rows;        ///< matched on both sides
  std::vector<std::string> only_baseline; ///< keys missing from current
  std::vector<std::string> only_current;  ///< keys missing from baseline
  std::size_t regressions = 0;
};

/// Compares `current` against `baseline`. `default_tolerance` is the band
/// for rows without their own `tolerance` field (0.25 = +25% slower fails).
/// The row's tolerance always wins when set.
RegressionReport compare_bench(const BenchFile& baseline,
                               const BenchFile& current,
                               double default_tolerance);

/// Human-readable report (one line per row, regressions flagged), suitable
/// for CI logs.
std::string format_report(const RegressionReport& report);

}  // namespace xplace::server
