// Content-addressed design store: the multi-tenant cache that makes the
// netlist — not the job — the unit of residency (DESIGN.md §14).
//
// A design is parsed exactly once per content hash and held as an immutable
// db::DesignSnapshot behind a shared_ptr; every job materializes its private
// run state from the shared snapshot copy-on-write. The store is bounded by
// entry count and resident bytes with LRU eviction of unpinned snapshots;
// jobs pin their snapshot for the duration of the run. Evicting a design
// drops only its residency — the store remembers the source (aux path or
// demo generator key) and lazily re-parses on the next reference, which is
// also how uploaded designs survive a daemon restart (journal design-ref
// records re-register sources without parsing).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/design_snapshot.h"

namespace xplace::server {

struct DesignStoreConfig {
  std::size_t capacity = 16;                     ///< max resident snapshots
  std::size_t max_resident_bytes = 1ull << 30;   ///< LRU-evict beyond this
};

class DesignStore {
 public:
  using SnapshotPtr = std::shared_ptr<const db::DesignSnapshot>;

  /// Where a design came from — enough to re-parse it after eviction or a
  /// restart. Exactly one of (aux) / (demo cells+seed) is meaningful.
  struct SourceRef {
    bool demo = false;
    std::string aux;
    std::size_t cells = 0;
    std::uint64_t seed = 0;
  };

  /// One row of list-designs.
  struct Entry {
    std::uint64_t hash = 0;
    std::string source;
    std::string name;
    std::size_t cells = 0;
    std::size_t nets = 0;
    std::size_t resident_bytes = 0;
    std::uint64_t hits = 0;
    int pins = 0;
    bool resident = false;
  };

  struct Stats {
    std::uint64_t parses = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_evictions = 0;
    std::size_t resident = 0;
    std::size_t resident_bytes = 0;
  };

  explicit DesignStore(DesignStoreConfig cfg);

  /// Loads (or returns the cached) snapshot for a bookshelf design. The file
  /// bytes are hashed first; a hash already resident is a cache hit with no
  /// re-parse. The store mutex is held across the parse — loads serialize,
  /// which is the documented price of the exactly-one-parse guarantee.
  SnapshotPtr get_aux(const std::string& aux_path, std::string* error);

  /// Demo-design variant, keyed on the generator inputs (cells, seed).
  SnapshotPtr get_demo(std::size_t cells, std::uint64_t seed, std::string* error);

  /// Snapshot by content hash: resident → returned directly; known-but-
  /// evicted → re-parsed from the remembered source (hash-verified for aux
  /// sources); unknown → null with *error.
  SnapshotPtr get_hash(std::uint64_t hash, std::string* error);

  /// True when the hash is resident or has a remembered source.
  bool known(std::uint64_t hash) const;

  /// Pin/unpin: pinned snapshots are exempt from LRU eviction (jobs pin for
  /// the duration of their run). Unknown hashes are ignored.
  void pin(std::uint64_t hash);
  void unpin(std::uint64_t hash);

  /// RAII pin for a job's run scope.
  class Pin {
   public:
    Pin() = default;
    Pin(DesignStore& store, std::uint64_t hash) : store_(&store), hash_(hash) {
      store_->pin(hash_);
    }
    Pin(Pin&& o) noexcept : store_(o.store_), hash_(o.hash_) { o.store_ = nullptr; }
    Pin& operator=(Pin&& o) noexcept {
      if (this != &o) {
        release();
        store_ = o.store_;
        hash_ = o.hash_;
        o.store_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

   private:
    void release() {
      if (store_) store_->unpin(hash_);
      store_ = nullptr;
    }
    DesignStore* store_ = nullptr;
    std::uint64_t hash_ = 0;
  };

  /// Explicit eviction (evict-design verb): drops residency AND the
  /// remembered source. Fails when the design is pinned by a running job.
  bool evict(std::uint64_t hash, std::string* error);

  /// Recovery path: remember a source without parsing (re-parse happens on
  /// the first get_hash that misses).
  void register_source(std::uint64_t hash, SourceRef ref);

  std::vector<Entry> list() const;
  Stats stats() const;

 private:
  SnapshotPtr load_locked(std::uint64_t hash, const SourceRef& ref,
                          std::string* error);
  void touch_locked(std::uint64_t hash);
  void evict_lru_locked();
  void publish_gauges_locked();

  struct EntryImpl {
    SnapshotPtr snapshot;  ///< null when evicted (source remembered)
    SourceRef source;
    std::uint64_t hits = 0;
    int pins = 0;
    std::uint64_t last_use = 0;  ///< LRU tick
  };

  DesignStoreConfig cfg_;
  mutable std::mutex mutex_;
  std::map<std::uint64_t, EntryImpl> entries_;
  std::uint64_t tick_ = 0;
  std::size_t resident_count_ = 0;
  std::size_t resident_bytes_ = 0;
  std::uint64_t parses_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_evictions_ = 0;
};

}  // namespace xplace::server
