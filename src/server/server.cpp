#include "server/server.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <new>
#include <stdexcept>

#include "dp/detailed_placer.h"
#include "io/bookshelf.h"
#include "io/generator.h"
#include "lg/abacus.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace xplace::server {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CLOCK_REALTIME seconds — the journal's time domain. The steady clock
/// resets across a restart, so replay-side deadline accounting has to reason
/// in wall time.
double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Deterministic backoff jitter in [0, 0.25): hashed from (job id, attempt)
/// so a retry schedule replays identically across runs and restarts — no
/// wall-clock or RNG dependence, same spirit as the demo seeds.
double retry_jitter(std::uint64_t id, int attempt) {
  char key[12];
  std::memcpy(key, &id, 8);
  std::int32_t a = attempt;
  std::memcpy(key + 8, &a, 4);
  return static_cast<double>(io::fnv1a64(key, sizeof(key)) % 1024) / 4096.0;
}

std::string sanitize_label(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

/// The demo-design path of place_bookshelf, verbatim: synthesize, dump to
/// bookshelf, read it back — so a demo job exercises the parser and produces
/// the exact database a demo CLI run does (bit-for-bit parity).
db::Database make_demo_db(const JobSpec& spec, std::uint64_t job_id) {
  namespace fs = std::filesystem;
  // Scratch path must be unique per process AND per server instance: job ids
  // restart at 1 in every PlacementServer, so two daemons (or two servers in
  // one test binary) running "job 1" concurrently would otherwise write and
  // delete each other's bookshelf scratch files mid-parse.
  static std::atomic<std::uint64_t> scratch_seq{0};
  const fs::path dir =
      fs::temp_directory_path() /
      ("xplace_serve_" + std::to_string(::getpid()) + "_" +
       std::to_string(scratch_seq.fetch_add(1)) + "_job" +
       std::to_string(job_id));
  fs::create_directories(dir);
  io::GeneratorSpec gen;
  gen.name = "demo";
  gen.num_cells = static_cast<std::size_t>(spec.demo_cells);
  gen.num_nets = gen.num_cells + gen.num_cells / 20;
  gen.seed = spec.demo_seed;
  const db::Database generated = io::generate(gen);
  io::write_bookshelf(generated, dir.string(), "demo");
  db::Database db = io::read_bookshelf_aux((dir / "demo.aux").string());
  std::error_code ec;
  fs::remove_all(dir, ec);  // scratch files; ignore cleanup failures
  return db;
}

core::StopReason stop_reason_from(StopCause cause) {
  return cause == StopCause::kDeadline ? core::StopReason::kDeadline
                                       : core::StopReason::kCancelled;
}

/// Bucket layout for the serve-level latency histograms: 1 ms .. ~2.3 h,
/// ×2 per bucket. Shared by queue-wait / run / e2e so their percentiles are
/// directly comparable.
std::vector<double> latency_bounds() {
  return telemetry::Histogram::exponential_bounds(1e-3, 2.0, 24);
}

}  // namespace

PlacementServer::PlacementServer(ServerConfig cfg)
    : cfg_(std::move(cfg)), queue_(cfg_.queue_capacity) {
  cfg_.max_concurrency = std::max<std::size_t>(1, cfg_.max_concurrency);
  cfg_.default_job_threads = std::max(1, cfg_.default_job_threads);
  if (cfg_.thread_budget == 0) {
    cfg_.thread_budget =
        cfg_.max_concurrency * static_cast<std::size_t>(cfg_.default_job_threads);
  }
  if (!cfg_.state_dir.empty() && cfg_.spill_dir.empty()) {
    // Durable mode spills next to the journal by default so running jobs
    // always leave resume points under the state dir.
    cfg_.spill_dir = cfg_.state_dir;
  }
  if (!cfg_.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg_.spill_dir, ec);
  }
  if (cfg_.faults.empty()) cfg_.faults = ServeFaultPlan::from_env();
  telemetry::Registry& reg = telemetry::Registry::global();
  queue_wait_hist_ = &reg.histogram("serve.queue_wait_s", latency_bounds());
  run_hist_ = &reg.histogram("serve.run_s", latency_bounds());
  e2e_hist_ = &reg.histogram("serve.e2e_s", latency_bounds());
  // Replay + re-enqueue strictly before any worker thread exists: recovery
  // mutates the queue and the job map without racing live execution.
  if (!cfg_.state_dir.empty()) recover_from_journal();
  retry_thread_ = std::thread([this] { retry_loop(); });
  workers_.reserve(cfg_.max_concurrency);
  for (std::size_t i = 0; i < cfg_.max_concurrency; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  XP_INFO("placement server up: %zu job slot(s), queue %zu, thread budget %zu",
          cfg_.max_concurrency, cfg_.queue_capacity, cfg_.thread_budget);
}

PlacementServer::~PlacementServer() { shutdown(/*drain=*/false); }

PlacementServer::SubmitOutcome PlacementServer::submit(const JobSpec& spec) {
  telemetry::Registry& reg = telemetry::Registry::global();
  std::lock_guard<std::mutex> lock(mutex_);
  SubmitOutcome out;
  if (!accepting_) {
    out.error = "server is shutting down";
    ++rejected_;
    reg.counter("serve.rejected").inc();
    return out;
  }

  // Saturation checks beyond queue occupancy: losing the journal (disk_full
  // or an I/O error) or blowing its disk budget means new work can no longer
  // be made durable — admission degrades to the shedding path rather than
  // accepting silently-volatile jobs (DESIGN.md §13).
  const bool journal_saturated =
      journal_.is_open() &&
      (journal_degraded_ || journal_.size_bytes() > cfg_.journal_max_bytes);
  if (journal_saturated &&
      !shed_weakest_locked(spec.priority, journal_degraded_
                                              ? "journal degraded"
                                              : "journal disk budget")) {
    out.error = journal_degraded_
                    ? "journal degraded (durability lost) — not accepting work"
                    : "journal disk budget saturated — retry later";
    ++rejected_;
    reg.counter("serve.rejected").inc();
    return out;
  }

  const std::uint64_t id = next_id_;
  QueuedJob qj;
  qj.id = id;
  qj.priority = spec.priority;
  qj.deadline = spec.deadline_s > 0 ? steady_seconds() + spec.deadline_s
                                    : QueuedJob::kNoDeadline;
  if (!queue_.push(qj)) {
    // Queue full: shed the weakest strictly-lower-priority queued job in
    // favor of the incoming one; same-or-higher everywhere → plain reject.
    if (!shed_weakest_locked(spec.priority, "queue full") ||
        !queue_.push(qj)) {
      out.error = "queue full (" + std::to_string(queue_.capacity()) +
                  " jobs) — retry later";
      ++rejected_;
      reg.counter("serve.rejected").inc();
      return out;
    }
  }
  ++next_id_;

  auto job = std::make_shared<Job>();
  job->rec.id = id;
  job->rec.spec = spec;
  if (job->rec.spec.label.empty()) {
    job->rec.spec.label = "job" + std::to_string(id);
  }
  job->rec.spec.label = sanitize_label(job->rec.spec.label);
  job->rec.state = JobState::kQueued;
  job->rec.submitted_s = log::elapsed_seconds();
  job->submit_us = telemetry::Tracer::now_us();
  // Request identity: every span recorded on this job's behalf — scheduler
  // lease, GP/LG/DP phases, pooled kernels — carries this trace id, so the
  // Chrome exporter can render one coherent timeline per job. The label is
  // only registered when tracing is on (the table is GC'd at job eviction).
  job->rec.trace_id = telemetry::TraceContext::new_id();
  if (telemetry::Tracer::global().enabled()) {
    telemetry::Tracer::global().set_trace_label(
        job->rec.trace_id,
        "job " + std::to_string(id) + " (" + job->rec.spec.label + ")");
  }
  if (spec.deadline_s > 0) job->token.set_timeout(spec.deadline_s);
  job->queue_deadline = qj.deadline;
  journal_append_locked(JournalEvent::kSubmit, id,
                        encode_submit(job->rec.spec, /*attempt=*/0));
  jobs_.emplace(id, std::move(job));

  ++submitted_;
  reg.counter("serve.submitted").inc();
  reg.gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  out.ok = true;
  out.id = id;
  return out;
}

bool PlacementServer::cancel(std::uint64_t id, std::string* error) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      if (error != nullptr) *error = "unknown or evicted job id";
      return false;
    }
    job = it->second;
    if (is_terminal(job->rec.state)) {
      if (error != nullptr) {
        *error = std::string("job already terminal (") +
                 to_string(job->rec.state) + ")";
      }
      return false;
    }
    job->token.request_cancel();
    if (job->rec.state == JobState::kRunning) {
      // Running: the settle happens later on the worker thread. Journal the
      // intent now so a crash in between still cancels after recovery.
      journal_append_locked(JournalEvent::kCancel, id, {});
    }
    if (job->rec.state == JobState::kQueued) {
      // A queued job may be waiting out a retry backoff (not in queue_);
      // drop the pending entry so the timer never re-admits it.
      const std::size_t before = retry_pending_.size();
      retry_pending_.erase(
          std::remove_if(retry_pending_.begin(), retry_pending_.end(),
                         [id](const PendingRetry& p) { return p.id == id; }),
          retry_pending_.end());
      const bool was_backoff = retry_pending_.size() != before;
      // Still waiting: pull it out of the queue (or its backoff window) and
      // settle it here. If the remove races a worker's pop, the armed token
      // stops the run at its first poll instead.
      if (queue_.remove(id) || was_backoff) {
        job->rec.stop_reason = core::StopReason::kCancelled;
        finish_job_locked(*job, JobState::kCancelled);
      }
    }
  }
  return true;
}

std::optional<JobRecord> PlacementServer::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second->rec;
}

std::optional<JobRecord> PlacementServer::wait(std::uint64_t id,
                                               double timeout_s) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;  // keeps the record alive
  job->cv.wait_for(lock,
                   std::chrono::duration<double>(std::max(0.0, timeout_s)),
                   [&] { return is_terminal(job->rec.state); });
  return job->rec;
}

std::optional<PlacementServer::EventBatch> PlacementServer::events(
    std::uint64_t id, std::uint64_t from_seq, double timeout_s) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;

  const auto has_new = [&] {
    return is_terminal(job->rec.state) ||
           (!job->events.empty() && job->events.back().seq >= from_seq);
  };
  job->cv.wait_for(lock,
                   std::chrono::duration<double>(std::max(0.0, timeout_s)),
                   has_new);

  EventBatch batch;
  batch.terminal = is_terminal(job->rec.state);
  batch.dropped = job->dropped;
  batch.next_seq = from_seq;
  for (const JobEvent& ev : job->events) {
    if (ev.seq >= from_seq) {
      batch.events.push_back(ev);
      batch.next_seq = ev.seq + 1;
    }
  }
  return batch;
}

PlacementServer::Stats PlacementServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.cancelled = cancelled_;
  s.failed = failed_;
  s.shed = shed_;
  s.retries = retries_;
  s.recovered = recovered_;
  s.journal_active = journal_.is_open();
  s.journal_degraded = journal_degraded_;
  s.journal_bytes = journal_.size_bytes();
  s.journal_records = journal_.records_written();
  s.retry_pending = retry_pending_.size();
  s.queued = queue_.size();
  s.running = running_;
  s.queue_capacity = cfg_.queue_capacity;
  s.max_concurrency = cfg_.max_concurrency;
  s.thread_budget = cfg_.thread_budget;
  s.threads_leased = threads_leased_;
  s.accepting = accepting_;
  s.events_dropped = events_dropped_total_;
  s.deadline_missed = deadline_missed_;
  const auto summarize = [](const telemetry::Histogram* h) {
    LatencySummary sum;
    sum.p50 = h->quantile(0.50);
    sum.p95 = h->quantile(0.95);
    sum.p99 = h->quantile(0.99);
    sum.count = h->count();
    return sum;
  };
  s.queue_wait = summarize(queue_wait_hist_);
  s.run = summarize(run_hist_);
  s.e2e = summarize(e2e_hist_);
  return s;
}

bool PlacementServer::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepting_;
}

void PlacementServer::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    accepting_ = false;
  }
  XP_INFO("placement server shutdown (%s)", drain ? "drain" : "cancel");
  {
    // Retire the retry timer first. Drain flushes pending backoffs straight
    // into the queue (their jobs still get their remaining attempts);
    // no-drain settles them cancelled alongside the queued jobs below.
    std::unique_lock<std::mutex> lock(mutex_);
    retry_stop_ = true;
    if (drain) {
      for (const PendingRetry& p : retry_pending_) {
        const auto it = jobs_.find(p.id);
        if (it == jobs_.end() || is_terminal(it->second->rec.state)) continue;
        QueuedJob qj;
        qj.id = p.id;
        qj.priority = it->second->rec.spec.priority;
        qj.deadline = it->second->queue_deadline;
        queue_.push(qj);
      }
      retry_pending_.clear();
    }
  }
  retry_cv_.notify_all();
  if (retry_thread_.joinable()) retry_thread_.join();
  if (!drain) {
    // Settle queued jobs as cancelled, then arm every live token so running
    // (or popped-in-limbo) jobs stop at their next poll.
    const std::vector<QueuedJob> dropped = queue_.drain();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const QueuedJob& qj : dropped) {
      const auto it = jobs_.find(qj.id);
      if (it == jobs_.end() || is_terminal(it->second->rec.state)) continue;
      it->second->rec.stop_reason = core::StopReason::kCancelled;
      finish_job_locked(*it->second, JobState::kCancelled);
    }
    for (const PendingRetry& p : retry_pending_) {
      const auto it = jobs_.find(p.id);
      if (it == jobs_.end() || is_terminal(it->second->rec.state)) continue;
      it->second->rec.stop_reason = core::StopReason::kCancelled;
      finish_job_locked(*it->second, JobState::kCancelled);
    }
    retry_pending_.clear();
    for (auto& [id, job] : jobs_) {
      if (!is_terminal(job->rec.state)) job->token.request_cancel();
    }
  }
  queue_.close();  // poppers drain what is left, then exit
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    // Every job is terminal now. The clean-shutdown marker, as the journal's
    // final record, lets the next start skip recovery and log "clean start".
    std::lock_guard<std::mutex> lock(mutex_);
    bool all_settled = true;
    for (const auto& [id, job] : jobs_) {
      all_settled = all_settled && is_terminal(job->rec.state);
    }
    if (all_settled) {
      journal_append_locked(JournalEvent::kCleanShutdown, 0, {});
    }
    journal_.close();
  }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

std::size_t PlacementServer::lease_threads(int requested) {
  const std::size_t want = std::min<std::size_t>(
      cfg_.thread_budget,
      static_cast<std::size_t>(std::max(1, requested)));
  std::unique_lock<std::mutex> lock(mutex_);
  budget_cv_.wait(lock, [&] {
    return threads_leased_ + want <= cfg_.thread_budget;
  });
  threads_leased_ += want;
  return want;
}

void PlacementServer::release_threads(std::size_t leased) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads_leased_ -= leased;
  }
  budget_cv_.notify_all();
}

void PlacementServer::worker_loop() {
  QueuedJob qj;
  while (queue_.pop(&qj)) {
    std::shared_ptr<Job> job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = jobs_.find(qj.id);
      if (it == jobs_.end() || is_terminal(it->second->rec.state)) {
        continue;  // cancelled while queued (remove/pop race) or evicted
      }
      job = it->second;
      // Deadline admission: a job popped after its deadline never runs —
      // the deadline covers queue wait by design.
      if (const StopCause cause = job->token.check();
          cause != StopCause::kNone) {
        job->rec.stop_reason = stop_reason_from(cause);
        finish_job_locked(*job, JobState::kCancelled);
        continue;
      }
      job->rec.state = JobState::kRunning;
      job->rec.started_s = log::elapsed_seconds();
      ++running_;
      journal_append_locked(JournalEvent::kStart, qj.id, {});
      job->cv.notify_all();
    }
    telemetry::Registry::global().gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.size()));

    // Queue-wait span: begins at submit (recorded then in the tracer's
    // timebase), ends now that a worker slot picked the job up. Recorded
    // directly since the interval did not live on any one thread.
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    if (tracer.enabled()) {
      telemetry::SpanEvent ev;
      ev.name = "serve.queue_wait";
      ev.begin_us = job->submit_us;
      ev.end_us = telemetry::Tracer::now_us();
      ev.tid = telemetry::Tracer::thread_id();
      ev.trace_id = job->rec.trace_id;
      tracer.record(ev);
    }

    const int requested = job->rec.spec.threads > 0
                              ? job->rec.spec.threads
                              : cfg_.default_job_threads;
    std::size_t leased = 0;
    {
      // Lease-acquire span: how long the job's slot waited for the server's
      // thread budget (nested under the job's trace root).
      telemetry::TraceBinding bind(job->rec.trace_id);
      telemetry::TraceScope lease_span("serve.lease_acquire");
      lease_span.arg("requested", requested);
      leased = lease_threads(requested);
      lease_span.arg("leased", static_cast<double>(leased));
    }
    run_job(*job, leased);
    release_threads(leased);
  }
}

void PlacementServer::run_job(Job& job, std::size_t leased_threads) {
  const std::uint64_t id = job.rec.id;
  const JobSpec spec = job.rec.spec;  // stable copy for the run
  // Root span of the job's trace: every span below (design load, gp.run and
  // its per-iteration children, lg/dp passes, pooled kernels) inherits the
  // trace id through the thread-local binding, which the ThreadPool also
  // forwards into its workers.
  telemetry::TraceBinding trace_binding(job.rec.trace_id);
  telemetry::TraceScope job_span("serve.job");
  job_span.arg("id", static_cast<double>(id))
      .arg("threads", static_cast<double>(leased_threads));
  XP_INFO("job %llu (%s) starting: %s, %d iters, %zu thread(s)",
          static_cast<unsigned long long>(id), spec.label.c_str(),
          spec.aux.empty() ? "demo" : spec.aux.c_str(), spec.max_iters,
          leased_threads);
  try {
    telemetry::TraceScope load_span("serve.load_design");
    db::Database db =
        spec.aux.empty() ? make_demo_db(spec, id) : io::read_bookshelf_aux(spec.aux);
    load_span.end();

    core::PlacerConfig cfg = core::PlacerConfig::xplace();
    cfg.grid_dim = spec.grid;
    cfg.max_iters = spec.max_iters;
    cfg.threads = static_cast<int>(leased_threads);
    // Supervised restart: attempt > 0 re-runs from scratch (never from the
    // diverged trajectory's spill) with the guardian's compounding λ/step
    // retune lifted to the whole-run level.
    cfg = core::retuned_for_restart(cfg, job.rec.attempt);
    if (!job.rec.resume_from.empty()) {
      // Crash recovery: continue the interrupted trajectory bit-for-bit from
      // the last journaled XPCK spill (PR 2's restore contract).
      cfg.resume_path = job.rec.resume_from;
    }
    std::string spill_path;
    if (!cfg_.spill_dir.empty()) {
      spill_path = cfg_.spill_dir + "/job" + std::to_string(id) + ".xpck";
      cfg.checkpoint_out = spill_path;
      cfg.checkpoint_period = cfg_.spill_period;
    }

    core::GlobalPlacer placer(db, cfg);
    placer.set_stop_token(&job.token);
    placer.set_checkpoint_observer(
        [this, id](int next_iter, const std::string& path) {
          // The XPCK is durable on disk; journal it as the job's new resume
          // point. serve_crash@job:N fires here — right after the snapshot
          // the chaos lane expects recovery to resume from.
          {
            std::lock_guard<std::mutex> lock(mutex_);
            journal_append_locked(JournalEvent::kCheckpoint, id,
                                  encode_checkpoint(next_iter, path));
          }
          if (cfg_.faults.crash_armed_for(id)) cfg_.faults.crash_now(id);
        });
    if (cfg_.faults.diverge_armed_for(id) && job.rec.attempt == 0) {
      // diverge@job:N: exhaust the guardian's in-run rollback budget on the
      // first attempt so the run ends kDiverged and the supervisor's retry
      // path engages deterministically.
      core::FaultPlan fp;
      for (int it : {2, 4, 6, 8, 10, 12}) {
        core::FaultEvent ev;
        ev.kind = core::FaultEvent::Kind::kNonfiniteGrad;
        ev.iter = it;
        fp.events.push_back(ev);
      }
      placer.guardian().set_fault_plan(std::move(fp));
    }
    placer.recorder().set_observer([this, &job](
                                       const core::IterationRecord& r) {
      std::lock_guard<std::mutex> lock(mutex_);
      JobEvent ev;
      ev.seq = job.next_seq++;
      ev.iter = r.iter;
      ev.hpwl = r.hpwl;
      ev.overflow = r.overflow;
      ev.omega = r.omega;
      job.events.push_back(ev);
      if (job.events.size() > cfg_.event_capacity) {
        job.events.pop_front();
        ++job.dropped;
        job.rec.events_dropped = job.dropped;
        ++events_dropped_total_;
        telemetry::Registry::global().counter("serve.events.dropped").inc();
      }
      job.cv.notify_all();
    });

    const core::GlobalPlaceResult gp = placer.run();
    if (gp.rollbacks > 0) {
      telemetry::Registry::global().counter("serve.guardian_rollbacks")
          .inc(static_cast<std::uint64_t>(gp.rollbacks));
    }

    if (gp.stop_reason == core::StopReason::kDiverged) {
      // The in-run guardian spent its rollback budget; escalate to the
      // supervisor: re-admit with backoff + retune, budget permitting.
      std::lock_guard<std::mutex> lock(mutex_);
      if (maybe_schedule_retry_locked(job, "diverged")) return;
    }

    bool stopped = gp.stop_reason == core::StopReason::kCancelled ||
                   gp.stop_reason == core::StopReason::kDeadline;
    core::StopReason reason = gp.stop_reason;
    double dp_hpwl = 0.0;
    bool legalized = false;

    // LG/DP phase boundary polls: a stop that lands after GP converged still
    // cuts the flow short (deadline keeps its meaning end-to-end).
    if (spec.full_flow && !stopped) {
      if (const StopCause c = job.token.check(); c != StopCause::kNone) {
        stopped = true;
        reason = stop_reason_from(c);
      } else {
        {
          XP_TRACE_SCOPE("serve.lg");
          lg::abacus_legalize(db, &placer.execution());
        }
        XP_TRACE_SCOPE("serve.dp");
        dp::DetailedPlaceConfig dcfg;
        dcfg.stop = &job.token;
        dp::detailed_place(db, dcfg, &placer.execution());
        dp_hpwl = db.hpwl();
        legalized = true;
        if (const StopCause c2 = job.token.check(); c2 != StopCause::kNone) {
          stopped = true;  // fired mid-DP; placement is legal regardless
          reason = stop_reason_from(c2);
        }
      }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    job.rec.stop_reason = reason;
    job.rec.hpwl = gp.hpwl;
    job.rec.overflow = gp.overflow;
    job.rec.iterations = gp.iterations;
    job.rec.gp_seconds = gp.gp_seconds;
    job.rec.dp_hpwl = dp_hpwl;
    job.rec.legalized = legalized;
    job.rec.spill_path = spill_path;
    finish_job_locked(job, stopped ? JobState::kCancelled : JobState::kDone);
  } catch (const std::bad_alloc&) {
    // Allocation failure is transient by assumption (a co-resident job's
    // peak, not a broken spec) — retryable, unlike a parse error.
    XP_ERROR("job %llu hit allocation failure",
             static_cast<unsigned long long>(id));
    std::lock_guard<std::mutex> lock(mutex_);
    if (maybe_schedule_retry_locked(job, "alloc_fail")) return;
    job.rec.error = "allocation failure";
    finish_job_locked(job, JobState::kFailed);
  } catch (const std::exception& e) {
    XP_ERROR("job %llu failed: %s", static_cast<unsigned long long>(id),
             e.what());
    std::lock_guard<std::mutex> lock(mutex_);
    job.rec.error = e.what();
    finish_job_locked(job, JobState::kFailed);
  }
}

void PlacementServer::finish_job_locked(Job& job, JobState state) {
  if (job.rec.state == JobState::kRunning) --running_;
  job.rec.state = state;
  job.rec.finished_s = log::elapsed_seconds();
  job.rec.events_dropped = job.dropped;
  switch (state) {
    case JobState::kDone: ++completed_; break;
    case JobState::kCancelled: ++cancelled_; break;
    case JobState::kFailed: ++failed_; break;
    case JobState::kShed: ++shed_; break;
    default: break;
  }
  {
    // Terminal transition → journal, so a restart restores this job straight
    // into the result store instead of re-running it.
    FinishInfo info;
    info.state = state;
    info.stop_reason = job.rec.stop_reason;
    info.hpwl = job.rec.hpwl;
    info.overflow = job.rec.overflow;
    info.iterations = job.rec.iterations;
    info.gp_seconds = job.rec.gp_seconds;
    info.dp_hpwl = job.rec.dp_hpwl;
    info.legalized = job.rec.legalized;
    info.error = job.rec.error;
    journal_append_locked(JournalEvent::kFinish, job.rec.id,
                          encode_finish(info));
  }
  // SLO accounting: latency histograms (percentiles derive from these) and
  // deadline misses. Queue wait / run are only meaningful for jobs that got
  // a worker slot; e2e covers every terminal job including queue-cancelled.
  if (job.rec.started_s > 0.0) {
    queue_wait_hist_->observe(job.rec.started_s - job.rec.submitted_s);
    run_hist_->observe(job.rec.finished_s - job.rec.started_s);
  }
  e2e_hist_->observe(job.rec.finished_s - job.rec.submitted_s);
  if (job.rec.stop_reason == core::StopReason::kDeadline) {
    ++deadline_missed_;
    telemetry::Registry::global().counter("serve.deadline_missed").inc();
  }
  terminal_order_.push_back(job.rec.id);
  evict_terminal_locked();
  publish_job_metrics(job.rec);
  job.cv.notify_all();
}

void PlacementServer::evict_terminal_locked() {
  while (terminal_order_.size() > cfg_.result_capacity) {
    const std::uint64_t victim = terminal_order_.front();
    terminal_order_.pop_front();
    const auto it = jobs_.find(victim);
    if (it != jobs_.end()) {
      // Retention policy (DESIGN.md §12): per-job metric families and trace
      // labels live exactly as long as the job record — evicting the record
      // GCs `serve.job.<label>.*` and the trace-label entry, so a long-lived
      // daemon's registry stays bounded by result_capacity.
      telemetry::Registry::global().remove_prefix(
          "serve.job." + it->second->rec.spec.label + ".");
      telemetry::Tracer::global().forget_trace(it->second->rec.trace_id);
      jobs_.erase(it);  // waiters still holding the shared_ptr are safe
    }
  }
}

// ---------------------------------------------------------------------------
// Durability & self-healing (DESIGN.md §13)
// ---------------------------------------------------------------------------

void PlacementServer::journal_append_locked(JournalEvent type,
                                            std::uint64_t job_id,
                                            std::string payload) {
  if (!journal_.is_open() || journal_degraded_) return;
  io::JournalRecord rec;
  rec.type = static_cast<std::uint32_t>(type);
  rec.job_id = job_id;
  rec.time_s = wall_seconds();
  rec.payload = std::move(payload);
  if (!journal_.append(rec)) {
    // Keep serving from memory, but remember durability is gone: admission
    // treats a degraded journal as saturation (see submit()).
    journal_degraded_ = true;
    telemetry::Registry::global().counter("serve.journal.degraded").inc();
    XP_ERROR("journal append failed — durability degraded, serving from "
             "memory only");
  }
}

void PlacementServer::recover_from_journal() {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(cfg_.state_dir, ec);
  const std::string path = cfg_.state_dir + "/journal.xpjl";

  const io::JournalReplay replay = io::read_journal(path);
  RecoveryPlan plan = build_recovery_plan(replay);
  if (replay.torn_tail) {
    XP_WARN("journal %s: torn final record (crash mid-append); %zu intact "
            "record(s) replayed", path.c_str(), plan.records);
  }
  if (replay.corrupt) {
    XP_WARN("journal %s: corrupt record; replay kept the %zu trusted "
            "record(s) before it", path.c_str(), plan.records);
  }

  std::lock_guard<std::mutex> lock(mutex_);  // workers not started yet
  if (replay.missing || plan.clean_shutdown) {
    next_id_ = std::max<std::uint64_t>(next_id_, plan.max_id + 1);
    if (!journal_.open(path, /*truncate=*/true)) journal_degraded_ = true;
    XP_INFO("journal %s: clean start%s", path.c_str(),
            replay.missing ? " (fresh state dir)" : " (previous shutdown drained)");
  } else {
    // Compact the history into folded per-job state, then restore it: live
    // jobs re-enqueue in original submit order (the queue comparator then
    // reproduces the original priority → deadline → FIFO pop order),
    // interrupted running jobs carry their newest XPCK as the resume point,
    // and terminal jobs land straight in the result store.
    if (!io::rewrite_journal(path, compaction_records(plan)) ||
        !journal_.open(path, /*truncate=*/false)) {
      journal_degraded_ = true;
    }
    next_id_ = std::max<std::uint64_t>(next_id_, plan.max_id + 1);

    const double now_wall = wall_seconds();
    std::size_t live = 0, restored = 0;
    for (RecoveredJob& rj : plan.jobs) {
      auto job = std::make_shared<Job>();
      job->rec.id = rj.id;
      job->rec.spec = rj.spec;
      job->rec.attempt = rj.attempt;
      job->rec.attempts = rj.attempts;
      job->rec.recovered = true;
      job->rec.trace_id = telemetry::TraceContext::new_id();
      job->submit_us = telemetry::Tracer::now_us();
      job->rec.submitted_s = log::elapsed_seconds();
      ++submitted_;
      Job& ref = *job;
      jobs_.emplace(rj.id, std::move(job));

      if (rj.terminal) {
        // Already settled before the crash: restore the record verbatim (no
        // re-journal, no latency observation — those happened in the
        // previous process lifetime).
        ref.rec.state = rj.finish.state;
        ref.rec.stop_reason = rj.finish.stop_reason;
        ref.rec.hpwl = rj.finish.hpwl;
        ref.rec.overflow = rj.finish.overflow;
        ref.rec.iterations = rj.finish.iterations;
        ref.rec.gp_seconds = rj.finish.gp_seconds;
        ref.rec.dp_hpwl = rj.finish.dp_hpwl;
        ref.rec.legalized = rj.finish.legalized;
        ref.rec.error = rj.finish.error;
        ref.rec.finished_s = ref.rec.submitted_s;
        switch (ref.rec.state) {
          case JobState::kDone: ++completed_; break;
          case JobState::kCancelled: ++cancelled_; break;
          case JobState::kFailed: ++failed_; break;
          case JobState::kShed: ++shed_; break;
          default: break;
        }
        terminal_order_.push_back(rj.id);
        publish_job_metrics(ref.rec);
        ++restored;
        continue;
      }

      // Deadline accounting across the restart: the journal carries wall
      // time, so elapsed real time (including the downtime) still counts
      // against the job's deadline.
      if (rj.spec.deadline_s > 0) {
        const double remaining =
            rj.spec.deadline_s - (now_wall - rj.submit_time_s);
        if (remaining <= 0) {
          ref.rec.stop_reason = core::StopReason::kDeadline;
          finish_job_locked(ref, JobState::kCancelled);
          continue;
        }
        ref.token.set_timeout(remaining);
        ref.queue_deadline = steady_seconds() + remaining;
      }
      if (rj.cancel_requested) {
        // Cancel was journaled but the settle never landed before the crash.
        ref.rec.stop_reason = core::StopReason::kCancelled;
        finish_job_locked(ref, JobState::kCancelled);
        continue;
      }

      if (rj.was_running && !rj.checkpoint_path.empty() &&
          fs::exists(rj.checkpoint_path)) {
        ref.rec.resume_from = rj.checkpoint_path;
      }
      ref.rec.state = JobState::kQueued;
      QueuedJob qj;
      qj.id = rj.id;
      qj.priority = rj.spec.priority;
      qj.deadline = ref.queue_deadline;
      queue_.push(qj);
      ++live;
    }
    evict_terminal_locked();
    recovered_ = live;
    telemetry::Registry::global().counter("serve.recovered")
        .inc(static_cast<std::uint64_t>(live));
    XP_INFO("journal %s: recovering %zu job(s) (%zu re-enqueued, %zu terminal "
            "restored)", path.c_str(), plan.jobs.size() - restored, live,
            restored);
  }
  // Journal fault arming (XPLACE_FAULT journal_torn / disk_full) — applied
  // after recovery so the replay itself stays healthy.
  if (cfg_.faults.journal_torn) journal_.arm_torn_write();
  if (cfg_.faults.disk_full) journal_.arm_disk_full();
}

bool PlacementServer::maybe_schedule_retry_locked(Job& job,
                                                  const char* outcome) {
  if (shut_down_) return false;
  if (cfg_.max_retries <= 0 || job.rec.attempt >= cfg_.max_retries) {
    return false;
  }
  if (job.token.check() != StopCause::kNone) return false;  // cancel wins
  const int failed_attempt = job.rec.attempt;
  double backoff =
      std::min(cfg_.retry_backoff_s * std::pow(2.0, failed_attempt),
               cfg_.retry_backoff_max_s);
  backoff *= 1.0 + retry_jitter(job.rec.id, failed_attempt);

  JobAttempt att;
  att.number = failed_attempt;
  att.outcome = outcome;
  att.backoff_s = backoff;
  att.started_s = job.rec.started_s;
  att.finished_s = log::elapsed_seconds();
  job.rec.attempts.push_back(std::move(att));
  job.rec.attempt = failed_attempt + 1;
  if (job.rec.state == JobState::kRunning) --running_;
  job.rec.state = JobState::kQueued;
  job.rec.started_s = 0.0;
  // Never resume a broken trajectory's spill: the retry restarts from
  // scratch with retuned_for_restart's gentler λ/step schedule.
  job.rec.resume_from.clear();

  ++retries_;
  telemetry::Registry::global().counter("serve.retries").inc();
  RetryInfo info;
  info.attempt = job.rec.attempt;
  info.backoff_s = backoff;
  info.reason = outcome;
  journal_append_locked(JournalEvent::kRetry, job.rec.id, encode_retry(info));
  retry_pending_.push_back({steady_seconds() + backoff, job.rec.id});
  XP_WARN("job %llu attempt %d ended %s; retry as attempt %d in %.2fs "
          "(budget %d)",
          static_cast<unsigned long long>(job.rec.id), failed_attempt, outcome,
          job.rec.attempt, backoff, cfg_.max_retries);
  job.cv.notify_all();
  retry_cv_.notify_all();
  return true;
}

void PlacementServer::retry_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!retry_stop_) {
    if (retry_pending_.empty()) {
      retry_cv_.wait(lock, [&] {
        return retry_stop_ || !retry_pending_.empty();
      });
      continue;
    }
    const auto due = std::min_element(
        retry_pending_.begin(), retry_pending_.end(),
        [](const PendingRetry& a, const PendingRetry& b) {
          return a.due_s < b.due_s;
        });
    const double now = steady_seconds();
    if (due->due_s > now) {
      retry_cv_.wait_for(lock,
                         std::chrono::duration<double>(due->due_s - now));
      continue;
    }
    const std::uint64_t id = due->id;
    retry_pending_.erase(due);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->rec.state != JobState::kQueued) {
      continue;  // cancelled (or evicted) while backing off
    }
    Job& job = *it->second;
    QueuedJob qj;
    qj.id = id;
    qj.priority = job.rec.spec.priority;
    qj.deadline = job.queue_deadline;
    if (!queue_.push(qj)) {
      // The queue filled (or closed) while this job backed off — it lost its
      // seat; settle as shed rather than stall its waiters forever.
      job.rec.error = "shed: queue unavailable at retry re-admission";
      finish_job_locked(job, JobState::kShed);
    }
  }
}

bool PlacementServer::shed_weakest_locked(int incoming_priority,
                                          const char* cause) {
  QueuedJob victim;
  if (!queue_.weakest(&victim)) return false;
  // Strictly lower priority only: shedding a peer for a peer would let two
  // equal clients evict each other's work in a loop.
  if (victim.priority >= incoming_priority) return false;
  if (!queue_.remove(victim.id)) return false;
  const auto it = jobs_.find(victim.id);
  if (it != jobs_.end() && !is_terminal(it->second->rec.state)) {
    it->second->rec.error =
        std::string("shed: ") + cause + ", displaced by higher-priority work";
    finish_job_locked(*it->second, JobState::kShed);
    XP_WARN("job %llu shed (%s)",
            static_cast<unsigned long long>(victim.id), cause);
  }
  return true;
}

void PlacementServer::publish_job_metrics(const JobRecord& rec) {
  telemetry::Registry& reg = telemetry::Registry::global();
  switch (rec.state) {
    case JobState::kDone: reg.counter("serve.completed").inc(); break;
    case JobState::kCancelled: reg.counter("serve.cancelled").inc(); break;
    case JobState::kFailed: reg.counter("serve.failed").inc(); break;
    case JobState::kShed: reg.counter("serve.shed").inc(); break;
    default: break;
  }
  const std::string prefix = "serve.job." + rec.spec.label;
  reg.gauge(prefix + ".hpwl").set(rec.hpwl);
  reg.gauge(prefix + ".iterations").set(rec.iterations);
  reg.gauge(prefix + ".gp_seconds").set(rec.gp_seconds);
  reg.gauge(prefix + ".stop_reason")
      .set(static_cast<double>(rec.stop_reason));
  reg.gauge(prefix + ".events_dropped")
      .set(static_cast<double>(rec.events_dropped));
}

}  // namespace xplace::server
