#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>

#include "dp/detailed_placer.h"
#include "io/bookshelf.h"
#include "io/generator.h"
#include "lg/abacus.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace xplace::server {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string sanitize_label(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

/// The demo-design path of place_bookshelf, verbatim: synthesize, dump to
/// bookshelf, read it back — so a demo job exercises the parser and produces
/// the exact database a demo CLI run does (bit-for-bit parity).
db::Database make_demo_db(const JobSpec& spec, std::uint64_t job_id) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("xplace_serve_job" + std::to_string(job_id));
  fs::create_directories(dir);
  io::GeneratorSpec gen;
  gen.name = "demo";
  gen.num_cells = static_cast<std::size_t>(spec.demo_cells);
  gen.num_nets = gen.num_cells + gen.num_cells / 20;
  gen.seed = spec.demo_seed;
  const db::Database generated = io::generate(gen);
  io::write_bookshelf(generated, dir.string(), "demo");
  db::Database db = io::read_bookshelf_aux((dir / "demo.aux").string());
  std::error_code ec;
  fs::remove_all(dir, ec);  // scratch files; ignore cleanup failures
  return db;
}

core::StopReason stop_reason_from(StopCause cause) {
  return cause == StopCause::kDeadline ? core::StopReason::kDeadline
                                       : core::StopReason::kCancelled;
}

/// Bucket layout for the serve-level latency histograms: 1 ms .. ~2.3 h,
/// ×2 per bucket. Shared by queue-wait / run / e2e so their percentiles are
/// directly comparable.
std::vector<double> latency_bounds() {
  return telemetry::Histogram::exponential_bounds(1e-3, 2.0, 24);
}

}  // namespace

PlacementServer::PlacementServer(ServerConfig cfg)
    : cfg_(std::move(cfg)), queue_(cfg_.queue_capacity) {
  cfg_.max_concurrency = std::max<std::size_t>(1, cfg_.max_concurrency);
  cfg_.default_job_threads = std::max(1, cfg_.default_job_threads);
  if (cfg_.thread_budget == 0) {
    cfg_.thread_budget =
        cfg_.max_concurrency * static_cast<std::size_t>(cfg_.default_job_threads);
  }
  if (!cfg_.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg_.spill_dir, ec);
  }
  telemetry::Registry& reg = telemetry::Registry::global();
  queue_wait_hist_ = &reg.histogram("serve.queue_wait_s", latency_bounds());
  run_hist_ = &reg.histogram("serve.run_s", latency_bounds());
  e2e_hist_ = &reg.histogram("serve.e2e_s", latency_bounds());
  workers_.reserve(cfg_.max_concurrency);
  for (std::size_t i = 0; i < cfg_.max_concurrency; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  XP_INFO("placement server up: %zu job slot(s), queue %zu, thread budget %zu",
          cfg_.max_concurrency, cfg_.queue_capacity, cfg_.thread_budget);
}

PlacementServer::~PlacementServer() { shutdown(/*drain=*/false); }

PlacementServer::SubmitOutcome PlacementServer::submit(const JobSpec& spec) {
  telemetry::Registry& reg = telemetry::Registry::global();
  std::lock_guard<std::mutex> lock(mutex_);
  SubmitOutcome out;
  if (!accepting_) {
    out.error = "server is shutting down";
    ++rejected_;
    reg.counter("serve.rejected").inc();
    return out;
  }

  const std::uint64_t id = next_id_;
  QueuedJob qj;
  qj.id = id;
  qj.priority = spec.priority;
  qj.deadline = spec.deadline_s > 0 ? steady_seconds() + spec.deadline_s
                                    : QueuedJob::kNoDeadline;
  if (!queue_.push(qj)) {
    out.error = "queue full (" + std::to_string(queue_.capacity()) +
                " jobs) — retry later";
    ++rejected_;
    reg.counter("serve.rejected").inc();
    return out;
  }
  ++next_id_;

  auto job = std::make_shared<Job>();
  job->rec.id = id;
  job->rec.spec = spec;
  if (job->rec.spec.label.empty()) {
    job->rec.spec.label = "job" + std::to_string(id);
  }
  job->rec.spec.label = sanitize_label(job->rec.spec.label);
  job->rec.state = JobState::kQueued;
  job->rec.submitted_s = log::elapsed_seconds();
  job->submit_us = telemetry::Tracer::now_us();
  // Request identity: every span recorded on this job's behalf — scheduler
  // lease, GP/LG/DP phases, pooled kernels — carries this trace id, so the
  // Chrome exporter can render one coherent timeline per job. The label is
  // only registered when tracing is on (the table is GC'd at job eviction).
  job->rec.trace_id = telemetry::TraceContext::new_id();
  if (telemetry::Tracer::global().enabled()) {
    telemetry::Tracer::global().set_trace_label(
        job->rec.trace_id,
        "job " + std::to_string(id) + " (" + job->rec.spec.label + ")");
  }
  if (spec.deadline_s > 0) job->token.set_timeout(spec.deadline_s);
  jobs_.emplace(id, std::move(job));

  ++submitted_;
  reg.counter("serve.submitted").inc();
  reg.gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  out.ok = true;
  out.id = id;
  return out;
}

bool PlacementServer::cancel(std::uint64_t id, std::string* error) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      if (error != nullptr) *error = "unknown or evicted job id";
      return false;
    }
    job = it->second;
    if (is_terminal(job->rec.state)) {
      if (error != nullptr) {
        *error = std::string("job already terminal (") +
                 to_string(job->rec.state) + ")";
      }
      return false;
    }
    job->token.request_cancel();
    if (job->rec.state == JobState::kQueued) {
      // Still waiting: pull it out of the queue and settle it here. If the
      // remove races a worker's pop, the armed token stops the run at its
      // first poll instead.
      if (queue_.remove(id)) {
        job->rec.stop_reason = core::StopReason::kCancelled;
        finish_job_locked(*job, JobState::kCancelled);
      }
    }
  }
  return true;
}

std::optional<JobRecord> PlacementServer::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second->rec;
}

std::optional<JobRecord> PlacementServer::wait(std::uint64_t id,
                                               double timeout_s) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;  // keeps the record alive
  job->cv.wait_for(lock,
                   std::chrono::duration<double>(std::max(0.0, timeout_s)),
                   [&] { return is_terminal(job->rec.state); });
  return job->rec;
}

std::optional<PlacementServer::EventBatch> PlacementServer::events(
    std::uint64_t id, std::uint64_t from_seq, double timeout_s) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;

  const auto has_new = [&] {
    return is_terminal(job->rec.state) ||
           (!job->events.empty() && job->events.back().seq >= from_seq);
  };
  job->cv.wait_for(lock,
                   std::chrono::duration<double>(std::max(0.0, timeout_s)),
                   has_new);

  EventBatch batch;
  batch.terminal = is_terminal(job->rec.state);
  batch.dropped = job->dropped;
  batch.next_seq = from_seq;
  for (const JobEvent& ev : job->events) {
    if (ev.seq >= from_seq) {
      batch.events.push_back(ev);
      batch.next_seq = ev.seq + 1;
    }
  }
  return batch;
}

PlacementServer::Stats PlacementServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.cancelled = cancelled_;
  s.failed = failed_;
  s.queued = queue_.size();
  s.running = running_;
  s.queue_capacity = cfg_.queue_capacity;
  s.max_concurrency = cfg_.max_concurrency;
  s.thread_budget = cfg_.thread_budget;
  s.threads_leased = threads_leased_;
  s.accepting = accepting_;
  s.events_dropped = events_dropped_total_;
  s.deadline_missed = deadline_missed_;
  const auto summarize = [](const telemetry::Histogram* h) {
    LatencySummary sum;
    sum.p50 = h->quantile(0.50);
    sum.p95 = h->quantile(0.95);
    sum.p99 = h->quantile(0.99);
    sum.count = h->count();
    return sum;
  };
  s.queue_wait = summarize(queue_wait_hist_);
  s.run = summarize(run_hist_);
  s.e2e = summarize(e2e_hist_);
  return s;
}

bool PlacementServer::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepting_;
}

void PlacementServer::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    accepting_ = false;
  }
  XP_INFO("placement server shutdown (%s)", drain ? "drain" : "cancel");
  if (!drain) {
    // Settle queued jobs as cancelled, then arm every live token so running
    // (or popped-in-limbo) jobs stop at their next poll.
    const std::vector<QueuedJob> dropped = queue_.drain();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const QueuedJob& qj : dropped) {
      const auto it = jobs_.find(qj.id);
      if (it == jobs_.end() || is_terminal(it->second->rec.state)) continue;
      it->second->rec.stop_reason = core::StopReason::kCancelled;
      finish_job_locked(*it->second, JobState::kCancelled);
    }
    for (auto& [id, job] : jobs_) {
      if (!is_terminal(job->rec.state)) job->token.request_cancel();
    }
  }
  queue_.close();  // poppers drain what is left, then exit
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

std::size_t PlacementServer::lease_threads(int requested) {
  const std::size_t want = std::min<std::size_t>(
      cfg_.thread_budget,
      static_cast<std::size_t>(std::max(1, requested)));
  std::unique_lock<std::mutex> lock(mutex_);
  budget_cv_.wait(lock, [&] {
    return threads_leased_ + want <= cfg_.thread_budget;
  });
  threads_leased_ += want;
  return want;
}

void PlacementServer::release_threads(std::size_t leased) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads_leased_ -= leased;
  }
  budget_cv_.notify_all();
}

void PlacementServer::worker_loop() {
  QueuedJob qj;
  while (queue_.pop(&qj)) {
    std::shared_ptr<Job> job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = jobs_.find(qj.id);
      if (it == jobs_.end() || is_terminal(it->second->rec.state)) {
        continue;  // cancelled while queued (remove/pop race) or evicted
      }
      job = it->second;
      // Deadline admission: a job popped after its deadline never runs —
      // the deadline covers queue wait by design.
      if (const StopCause cause = job->token.check();
          cause != StopCause::kNone) {
        job->rec.stop_reason = stop_reason_from(cause);
        finish_job_locked(*job, JobState::kCancelled);
        continue;
      }
      job->rec.state = JobState::kRunning;
      job->rec.started_s = log::elapsed_seconds();
      ++running_;
      job->cv.notify_all();
    }
    telemetry::Registry::global().gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.size()));

    // Queue-wait span: begins at submit (recorded then in the tracer's
    // timebase), ends now that a worker slot picked the job up. Recorded
    // directly since the interval did not live on any one thread.
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    if (tracer.enabled()) {
      telemetry::SpanEvent ev;
      ev.name = "serve.queue_wait";
      ev.begin_us = job->submit_us;
      ev.end_us = telemetry::Tracer::now_us();
      ev.tid = telemetry::Tracer::thread_id();
      ev.trace_id = job->rec.trace_id;
      tracer.record(ev);
    }

    const int requested = job->rec.spec.threads > 0
                              ? job->rec.spec.threads
                              : cfg_.default_job_threads;
    std::size_t leased = 0;
    {
      // Lease-acquire span: how long the job's slot waited for the server's
      // thread budget (nested under the job's trace root).
      telemetry::TraceBinding bind(job->rec.trace_id);
      telemetry::TraceScope lease_span("serve.lease_acquire");
      lease_span.arg("requested", requested);
      leased = lease_threads(requested);
      lease_span.arg("leased", static_cast<double>(leased));
    }
    run_job(*job, leased);
    release_threads(leased);
  }
}

void PlacementServer::run_job(Job& job, std::size_t leased_threads) {
  const std::uint64_t id = job.rec.id;
  const JobSpec spec = job.rec.spec;  // stable copy for the run
  // Root span of the job's trace: every span below (design load, gp.run and
  // its per-iteration children, lg/dp passes, pooled kernels) inherits the
  // trace id through the thread-local binding, which the ThreadPool also
  // forwards into its workers.
  telemetry::TraceBinding trace_binding(job.rec.trace_id);
  telemetry::TraceScope job_span("serve.job");
  job_span.arg("id", static_cast<double>(id))
      .arg("threads", static_cast<double>(leased_threads));
  XP_INFO("job %llu (%s) starting: %s, %d iters, %zu thread(s)",
          static_cast<unsigned long long>(id), spec.label.c_str(),
          spec.aux.empty() ? "demo" : spec.aux.c_str(), spec.max_iters,
          leased_threads);
  try {
    telemetry::TraceScope load_span("serve.load_design");
    db::Database db =
        spec.aux.empty() ? make_demo_db(spec, id) : io::read_bookshelf_aux(spec.aux);
    load_span.end();

    core::PlacerConfig cfg = core::PlacerConfig::xplace();
    cfg.grid_dim = spec.grid;
    cfg.max_iters = spec.max_iters;
    cfg.threads = static_cast<int>(leased_threads);
    std::string spill_path;
    if (!cfg_.spill_dir.empty()) {
      spill_path = cfg_.spill_dir + "/job" + std::to_string(id) + ".xpck";
      cfg.checkpoint_out = spill_path;
      cfg.checkpoint_period = cfg_.spill_period;
    }

    core::GlobalPlacer placer(db, cfg);
    placer.set_stop_token(&job.token);
    placer.recorder().set_observer([this, &job](
                                       const core::IterationRecord& r) {
      std::lock_guard<std::mutex> lock(mutex_);
      JobEvent ev;
      ev.seq = job.next_seq++;
      ev.iter = r.iter;
      ev.hpwl = r.hpwl;
      ev.overflow = r.overflow;
      ev.omega = r.omega;
      job.events.push_back(ev);
      if (job.events.size() > cfg_.event_capacity) {
        job.events.pop_front();
        ++job.dropped;
        job.rec.events_dropped = job.dropped;
        ++events_dropped_total_;
        telemetry::Registry::global().counter("serve.events.dropped").inc();
      }
      job.cv.notify_all();
    });

    const core::GlobalPlaceResult gp = placer.run();
    if (gp.rollbacks > 0) {
      telemetry::Registry::global().counter("serve.guardian_rollbacks")
          .inc(static_cast<std::uint64_t>(gp.rollbacks));
    }

    bool stopped = gp.stop_reason == core::StopReason::kCancelled ||
                   gp.stop_reason == core::StopReason::kDeadline;
    core::StopReason reason = gp.stop_reason;
    double dp_hpwl = 0.0;
    bool legalized = false;

    // LG/DP phase boundary polls: a stop that lands after GP converged still
    // cuts the flow short (deadline keeps its meaning end-to-end).
    if (spec.full_flow && !stopped) {
      if (const StopCause c = job.token.check(); c != StopCause::kNone) {
        stopped = true;
        reason = stop_reason_from(c);
      } else {
        {
          XP_TRACE_SCOPE("serve.lg");
          lg::abacus_legalize(db, &placer.execution());
        }
        XP_TRACE_SCOPE("serve.dp");
        dp::DetailedPlaceConfig dcfg;
        dcfg.stop = &job.token;
        dp::detailed_place(db, dcfg, &placer.execution());
        dp_hpwl = db.hpwl();
        legalized = true;
        if (const StopCause c2 = job.token.check(); c2 != StopCause::kNone) {
          stopped = true;  // fired mid-DP; placement is legal regardless
          reason = stop_reason_from(c2);
        }
      }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    job.rec.stop_reason = reason;
    job.rec.hpwl = gp.hpwl;
    job.rec.overflow = gp.overflow;
    job.rec.iterations = gp.iterations;
    job.rec.gp_seconds = gp.gp_seconds;
    job.rec.dp_hpwl = dp_hpwl;
    job.rec.legalized = legalized;
    job.rec.spill_path = spill_path;
    finish_job_locked(job, stopped ? JobState::kCancelled : JobState::kDone);
  } catch (const std::exception& e) {
    XP_ERROR("job %llu failed: %s", static_cast<unsigned long long>(id),
             e.what());
    std::lock_guard<std::mutex> lock(mutex_);
    job.rec.error = e.what();
    finish_job_locked(job, JobState::kFailed);
  }
}

void PlacementServer::finish_job_locked(Job& job, JobState state) {
  if (job.rec.state == JobState::kRunning) --running_;
  job.rec.state = state;
  job.rec.finished_s = log::elapsed_seconds();
  job.rec.events_dropped = job.dropped;
  switch (state) {
    case JobState::kDone: ++completed_; break;
    case JobState::kCancelled: ++cancelled_; break;
    case JobState::kFailed: ++failed_; break;
    default: break;
  }
  // SLO accounting: latency histograms (percentiles derive from these) and
  // deadline misses. Queue wait / run are only meaningful for jobs that got
  // a worker slot; e2e covers every terminal job including queue-cancelled.
  if (job.rec.started_s > 0.0) {
    queue_wait_hist_->observe(job.rec.started_s - job.rec.submitted_s);
    run_hist_->observe(job.rec.finished_s - job.rec.started_s);
  }
  e2e_hist_->observe(job.rec.finished_s - job.rec.submitted_s);
  if (job.rec.stop_reason == core::StopReason::kDeadline) {
    ++deadline_missed_;
    telemetry::Registry::global().counter("serve.deadline_missed").inc();
  }
  terminal_order_.push_back(job.rec.id);
  evict_terminal_locked();
  publish_job_metrics(job.rec);
  job.cv.notify_all();
}

void PlacementServer::evict_terminal_locked() {
  while (terminal_order_.size() > cfg_.result_capacity) {
    const std::uint64_t victim = terminal_order_.front();
    terminal_order_.pop_front();
    const auto it = jobs_.find(victim);
    if (it != jobs_.end()) {
      // Retention policy (DESIGN.md §12): per-job metric families and trace
      // labels live exactly as long as the job record — evicting the record
      // GCs `serve.job.<label>.*` and the trace-label entry, so a long-lived
      // daemon's registry stays bounded by result_capacity.
      telemetry::Registry::global().remove_prefix(
          "serve.job." + it->second->rec.spec.label + ".");
      telemetry::Tracer::global().forget_trace(it->second->rec.trace_id);
      jobs_.erase(it);  // waiters still holding the shared_ptr are safe
    }
  }
}

void PlacementServer::publish_job_metrics(const JobRecord& rec) {
  telemetry::Registry& reg = telemetry::Registry::global();
  switch (rec.state) {
    case JobState::kDone: reg.counter("serve.completed").inc(); break;
    case JobState::kCancelled: reg.counter("serve.cancelled").inc(); break;
    case JobState::kFailed: reg.counter("serve.failed").inc(); break;
    default: break;
  }
  const std::string prefix = "serve.job." + rec.spec.label;
  reg.gauge(prefix + ".hpwl").set(rec.hpwl);
  reg.gauge(prefix + ".iterations").set(rec.iterations);
  reg.gauge(prefix + ".gp_seconds").set(rec.gp_seconds);
  reg.gauge(prefix + ".stop_reason")
      .set(static_cast<double>(rec.stop_reason));
  reg.gauge(prefix + ".events_dropped")
      .set(static_cast<double>(rec.events_dropped));
}

}  // namespace xplace::server
