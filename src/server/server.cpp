#include "server/server.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <new>
#include <stdexcept>

#include "dp/detailed_placer.h"
#include "io/bookshelf.h"
#include "io/generator.h"
#include "lg/abacus.h"
#include "opt/portfolio.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/logging.h"

namespace xplace::server {

namespace {

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CLOCK_REALTIME seconds — the journal's time domain. The steady clock
/// resets across a restart, so replay-side deadline accounting has to reason
/// in wall time.
double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Deterministic backoff jitter in [0, 0.25): hashed from (job id, attempt)
/// so a retry schedule replays identically across runs and restarts — no
/// wall-clock or RNG dependence, same spirit as the demo seeds.
double retry_jitter(std::uint64_t id, int attempt) {
  char key[12];
  std::memcpy(key, &id, 8);
  std::int32_t a = attempt;
  std::memcpy(key + 8, &a, 4);
  return static_cast<double>(io::fnv1a64(key, sizeof(key)) % 1024) / 4096.0;
}

std::string sanitize_label(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

core::StopReason stop_reason_from(StopCause cause) {
  return cause == StopCause::kDeadline ? core::StopReason::kDeadline
                                       : core::StopReason::kCancelled;
}

/// Bucket layout for the serve-level latency histograms: 1 ms .. ~2.3 h,
/// ×2 per bucket. Shared by queue-wait / run / e2e so their percentiles are
/// directly comparable.
std::vector<double> latency_bounds() {
  return telemetry::Histogram::exponential_bounds(1e-3, 2.0, 24);
}

}  // namespace

PlacementServer::PlacementServer(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queue_capacity),
      designs_(DesignStoreConfig{cfg_.design_capacity, cfg_.design_max_bytes}) {
  cfg_.max_concurrency = std::max<std::size_t>(1, cfg_.max_concurrency);
  cfg_.default_job_threads = std::max(1, cfg_.default_job_threads);
  if (cfg_.thread_budget == 0) {
    cfg_.thread_budget =
        cfg_.max_concurrency * static_cast<std::size_t>(cfg_.default_job_threads);
  }
  if (!cfg_.state_dir.empty() && cfg_.spill_dir.empty()) {
    // Durable mode spills next to the journal by default so running jobs
    // always leave resume points under the state dir.
    cfg_.spill_dir = cfg_.state_dir;
  }
  if (!cfg_.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cfg_.spill_dir, ec);
  }
  if (cfg_.faults.empty()) cfg_.faults = ServeFaultPlan::from_env();
  telemetry::Registry& reg = telemetry::Registry::global();
  queue_wait_hist_ = &reg.histogram("serve.queue_wait_s", latency_bounds());
  run_hist_ = &reg.histogram("serve.run_s", latency_bounds());
  e2e_hist_ = &reg.histogram("serve.e2e_s", latency_bounds());
  // Replay + re-enqueue strictly before any worker thread exists: recovery
  // mutates the queue and the job map without racing live execution.
  if (!cfg_.state_dir.empty()) recover_from_journal();
  retry_thread_ = std::thread([this] { retry_loop(); });
  portfolio_thread_ = std::thread([this] { portfolio_loop(); });
  workers_.reserve(cfg_.max_concurrency);
  for (std::size_t i = 0; i < cfg_.max_concurrency; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  XP_INFO("placement server up: %zu job slot(s), queue %zu, thread budget %zu",
          cfg_.max_concurrency, cfg_.queue_capacity, cfg_.thread_budget);
}

PlacementServer::~PlacementServer() { shutdown(/*drain=*/false); }

PlacementServer::SubmitOutcome PlacementServer::submit(const JobSpec& spec) {
  telemetry::Registry& reg = telemetry::Registry::global();
  // Spec validation before any admission bookkeeping — the satellite fix for
  // ambiguous sources (both aux and demo_cells) silently preferring aux. The
  // wire path goes through the same validate_spec in the protocol parser;
  // this covers the in-process entry point.
  if (std::string verr = validate_spec(spec); !verr.empty()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++rejected_;
    reg.counter("serve.rejected").inc();
    SubmitOutcome out;
    out.error = std::move(verr);
    return out;
  }
  // Dedup key resolution (file hash / generator key) happens outside mutex_:
  // hashing an aux file reads its bytes from disk.
  std::uint64_t dedup_hash = 0;
  if (spec.dedup) {
    if (spec.design_hash != 0) {
      dedup_hash = spec.design_hash;
    } else if (spec.demo_cells > 0) {
      dedup_hash = io::demo_content_hash(
          static_cast<std::size_t>(spec.demo_cells), spec.demo_seed);
    } else {
      try {
        dedup_hash = io::hash_bookshelf_aux(spec.aux);
      } catch (const std::exception&) {
        // Unreadable aux: leave dedup off; the run itself will surface the
        // parse error as a kFailed terminal state.
      }
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return submit_spec_locked(spec, dedup_hash, /*allow_shed=*/true);
}

std::uint64_t PlacementServer::config_hash(const JobSpec& spec) const {
  // Everything that changes the placement result at a fixed design and a
  // fixed thread count. Threads are resolved (spec override or server
  // default) so the same effective run dedups across the two spellings.
  std::uint64_t v[11];
  v[0] = static_cast<std::uint64_t>(spec.max_iters);
  v[1] = static_cast<std::uint64_t>(spec.grid);
  v[2] = static_cast<std::uint64_t>(
      spec.threads > 0 ? spec.threads : cfg_.default_job_threads);
  v[3] = spec.full_flow ? 1 : 0;
  v[4] = spec.seed;
  v[5] = spec.demo_seed;
  std::memcpy(&v[6], &spec.target_density, sizeof(double));
  std::memcpy(&v[7], &spec.lambda_init, sizeof(double));
  // Perturbed-restart knobs: two portfolio variants of the same design must
  // dedup as distinct results.
  std::memcpy(&v[8], &spec.init_noise_scale, sizeof(double));
  std::memcpy(&v[9], &spec.gamma_scale, sizeof(double));
  std::memcpy(&v[10], &spec.lambda_scale, sizeof(double));
  return io::fnv1a64(reinterpret_cast<const char*>(v), sizeof(v));
}

PlacementServer::SubmitOutcome PlacementServer::submit_spec_locked(
    JobSpec spec, std::uint64_t dedup_hash, bool allow_shed) {
  telemetry::Registry& reg = telemetry::Registry::global();
  SubmitOutcome out;
  if (!accepting_) {
    out.error = "server is shutting down";
    ++rejected_;
    reg.counter("serve.rejected").inc();
    return out;
  }

  // Result dedup: an identical (design, config) already serving — return its
  // id instead of re-running. A still-live target is shared the same way (the
  // flow is deterministic at fixed threads, so the eventual record is what a
  // fresh run would produce); a target that ended anything but kDone was
  // dropped from the index when it settled, so it never serves stale failure.
  const std::pair<std::uint64_t, std::uint64_t> key{dedup_hash,
                                                    config_hash(spec)};
  if (spec.dedup && dedup_hash != 0) {
    const auto hit = dedup_index_.find(key);
    if (hit != dedup_index_.end()) {
      const auto jit = jobs_.find(hit->second);
      if (jit != jobs_.end() && (jit->second->rec.state == JobState::kDone ||
                                 !is_terminal(jit->second->rec.state))) {
        ++dedup_hits_;
        reg.counter("serve.dedup_hits").inc();
        out.ok = true;
        out.id = hit->second;
        out.deduped = true;
        return out;
      }
      dedup_index_.erase(hit);  // stale: evicted or non-successful terminal
    }
  }

  // Saturation checks beyond queue occupancy: losing the journal (disk_full
  // or an I/O error) or blowing its disk budget means new work can no longer
  // be made durable — admission degrades to the shedding path rather than
  // accepting silently-volatile jobs (DESIGN.md §13).
  const bool journal_saturated =
      journal_.is_open() &&
      (journal_degraded_ || journal_.size_bytes() > cfg_.journal_max_bytes);
  if (journal_saturated &&
      (!allow_shed ||
       !shed_weakest_locked(spec.priority, journal_degraded_
                                               ? "journal degraded"
                                               : "journal disk budget"))) {
    out.error = journal_degraded_
                    ? "journal degraded (durability lost) — not accepting work"
                    : "journal disk budget saturated — retry later";
    ++rejected_;
    reg.counter("serve.rejected").inc();
    return out;
  }

  const std::uint64_t id = next_id_;
  QueuedJob qj;
  qj.id = id;
  qj.priority = spec.priority;
  qj.deadline = spec.deadline_s > 0 ? steady_seconds() + spec.deadline_s
                                    : QueuedJob::kNoDeadline;
  if (!queue_.push(qj)) {
    // Queue full: shed the weakest strictly-lower-priority queued job in
    // favor of the incoming one; same-or-higher everywhere → plain reject.
    if (!allow_shed || !shed_weakest_locked(spec.priority, "queue full") ||
        !queue_.push(qj)) {
      out.error = "queue full (" + std::to_string(queue_.capacity()) +
                  " jobs) — retry later";
      ++rejected_;
      reg.counter("serve.rejected").inc();
      return out;
    }
  }
  ++next_id_;

  auto job = std::make_shared<Job>();
  job->rec.id = id;
  job->rec.spec = spec;
  if (job->rec.spec.label.empty()) {
    job->rec.spec.label = "job" + std::to_string(id);
  }
  job->rec.spec.label = sanitize_label(job->rec.spec.label);
  job->rec.state = JobState::kQueued;
  job->rec.submitted_s = log::elapsed_seconds();
  job->submit_us = telemetry::Tracer::now_us();
  // Request identity: every span recorded on this job's behalf — scheduler
  // lease, GP/LG/DP phases, pooled kernels — carries this trace id, so the
  // Chrome exporter can render one coherent timeline per job. The label is
  // only registered when tracing is on (the table is GC'd at job eviction).
  job->rec.trace_id = telemetry::TraceContext::new_id();
  if (telemetry::Tracer::global().enabled()) {
    telemetry::Tracer::global().set_trace_label(
        job->rec.trace_id,
        "job " + std::to_string(id) + " (" + job->rec.spec.label + ")");
  }
  if (spec.deadline_s > 0) job->token.set_timeout(spec.deadline_s);
  job->queue_deadline = qj.deadline;
  if (spec.dedup && dedup_hash != 0) {
    job->dedup_key = key;
    dedup_index_[key] = id;  // later identical dedup submits share this job
  }
  journal_append_locked(JournalEvent::kSubmit, id,
                        encode_submit(job->rec.spec, /*attempt=*/0));
  jobs_.emplace(id, std::move(job));

  ++submitted_;
  reg.counter("serve.submitted").inc();
  reg.gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  out.ok = true;
  out.id = id;
  return out;
}

// ---------------------------------------------------------------------------
// Design store + batch sweeps (DESIGN.md §14)
// ---------------------------------------------------------------------------

void PlacementServer::journal_design_ref_locked(
    std::uint64_t hash, const DesignStore::SourceRef& ref) {
  if (journaled_designs_.count(hash) != 0) return;
  DesignRefInfo info;
  info.demo = ref.demo;
  info.aux = ref.aux;
  info.cells = ref.cells;
  info.seed = ref.seed;
  journal_append_locked(JournalEvent::kDesignRef, hash,
                        encode_design_ref(info));
  journaled_designs_[hash] = true;
}

PlacementServer::UploadOutcome PlacementServer::upload_design(
    const JobSpec& source) {
  UploadOutcome out;
  if (source.design_hash != 0) {
    out.error = "upload-design needs a parseable source (\"aux\" or "
                "\"demo_cells\"), not a design hash";
    return out;
  }
  if (std::string verr = validate_spec(source); !verr.empty()) {
    out.error = std::move(verr);
    return out;
  }
  DesignStore::SourceRef ref;
  std::string err;
  DesignStore::SnapshotPtr snap;
  const std::uint64_t parses_before = designs_.stats().parses;
  if (!source.aux.empty()) {
    ref.aux = source.aux;
    snap = designs_.get_aux(source.aux, &err);
  } else {
    ref.demo = true;
    ref.cells = static_cast<std::size_t>(source.demo_cells);
    ref.seed = source.demo_seed;
    snap = designs_.get_demo(ref.cells, ref.seed, &err);
  }
  if (!snap) {
    out.error = err;
    return out;
  }
  out.ok = true;
  out.hash = snap->content_hash;
  out.cached = designs_.stats().parses == parses_before;
  out.name = snap->design_name();
  out.cells = snap->num_cells();
  out.nets = snap->num_nets();
  out.bytes = snap->resident_bytes;
  std::lock_guard<std::mutex> lock(mutex_);
  journal_design_ref_locked(out.hash, ref);
  return out;
}

std::vector<DesignStore::Entry> PlacementServer::list_designs() const {
  return designs_.list();
}

bool PlacementServer::evict_design(std::uint64_t hash, std::string* error) {
  return designs_.evict(hash, error);
}

PlacementServer::BatchSubmitOutcome PlacementServer::submit_batch(
    const JobSpec& base, const std::vector<JobSpec>& configs) {
  telemetry::Registry& reg = telemetry::Registry::global();
  BatchSubmitOutcome out;
  if (configs.empty()) {
    out.error = "submit-batch needs at least one config";
    return out;
  }
  if (std::string verr = validate_spec(base); !verr.empty()) {
    out.error = std::move(verr);
    return out;
  }

  // Resolve the design FIRST, outside mutex_ — this is the batch's single
  // parse (or a cache hit); every member job then references the snapshot by
  // content hash.
  DesignStore::SourceRef ref;
  std::string err;
  DesignStore::SnapshotPtr snap;
  if (base.design_hash != 0) {
    snap = designs_.get_hash(base.design_hash, &err);
  } else if (!base.aux.empty()) {
    ref.aux = base.aux;
    snap = designs_.get_aux(base.aux, &err);
  } else {
    ref.demo = true;
    ref.cells = static_cast<std::size_t>(base.demo_cells);
    ref.seed = base.demo_seed;
    snap = designs_.get_demo(ref.cells, ref.seed, &err);
  }
  if (!snap) {
    out.error = err;
    return out;
  }
  const std::uint64_t dhash = snap->content_hash;
  if (base.design_hash != 0) {
    // The store already knows the source (upload or recovery registered it);
    // nothing to journal beyond what those paths wrote.
    ref = DesignStore::SourceRef{};
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (!accepting_) {
    out.error = "server is shutting down";
    ++rejected_;
    reg.counter("serve.rejected").inc();
    return out;
  }

  // Build + validate every member spec before admitting any (all-or-nothing).
  // Each config keeps its own placement fields; the design fields are
  // overwritten with the batch's resolved hash.
  std::vector<JobSpec> specs;
  specs.reserve(configs.size());
  std::size_t fresh = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    JobSpec s = configs[i];
    s.aux.clear();
    s.demo_cells = 0;
    s.demo_seed = base.demo_seed;
    s.design_hash = dhash;
    if (std::string verr = validate_spec(s); !verr.empty()) {
      out.error = "config " + std::to_string(i) + ": " + verr;
      ++rejected_;
      reg.counter("serve.rejected").inc();
      return out;
    }
    // Count the configs that will need a queue seat (a dedup hit does not).
    const std::pair<std::uint64_t, std::uint64_t> key{dhash, config_hash(s)};
    const auto hit = s.dedup ? dedup_index_.find(key) : dedup_index_.end();
    bool served = false;
    if (hit != dedup_index_.end()) {
      const auto jit = jobs_.find(hit->second);
      served = jit != jobs_.end() && (jit->second->rec.state == JobState::kDone ||
                                      !is_terminal(jit->second->rec.state));
    }
    if (!served) ++fresh;
    specs.push_back(std::move(s));
  }
  if (queue_.size() + fresh > queue_.capacity()) {
    out.error = "queue cannot take " + std::to_string(fresh) +
                " job(s) (" + std::to_string(queue_.capacity() - queue_.size()) +
                " seat(s) free) — batch rejected whole";
    ++rejected_;
    reg.counter("serve.rejected").inc();
    return out;
  }

  const std::uint64_t bid = next_batch_id_++;
  if (!ref.aux.empty() || ref.demo) journal_design_ref_locked(dhash, ref);

  Batch batch;
  batch.id = bid;
  batch.design_hash = dhash;
  batch.label = sanitize_label(base.label.empty() ? "batch" + std::to_string(bid)
                                                  : base.label);
  batch.submitted_s = log::elapsed_seconds();
  for (JobSpec& s : specs) {
    s.batch_id = bid;
    // A dedup hit inside the batch (within the current configs, a repeated
    // earlier config is already in the index) shares the serving job's id.
    const SubmitOutcome so =
        submit_spec_locked(s, s.dedup ? dhash : 0, /*allow_shed=*/false);
    if (!so.ok) {
      // Post-precheck failure can only be journal saturation racing this
      // batch's own appends; settle as a whole-batch error with the members
      // already admitted left to run (they are real jobs now).
      out.error = "batch admission failed at config " +
                  std::to_string(batch.jobs.size()) + ": " + so.error;
      break;
    }
    batch.jobs.push_back({so.id, so.deduped});
  }
  out.batch_id = bid;
  out.design_hash = dhash;
  out.jobs = batch.jobs;
  out.ok = out.error.empty();

  BatchInfo info;
  info.design_hash = dhash;
  info.label = batch.label;
  for (const BatchJobRef& r : batch.jobs) {
    info.job_ids.push_back(r.id);
    info.deduped.push_back(r.deduped ? 1 : 0);
  }
  journal_append_locked(JournalEvent::kBatch, bid, encode_batch(info));
  batches_.emplace(bid, std::move(batch));
  reg.counter("serve.batches").inc();
  return out;
}

PlacementServer::BatchStatus PlacementServer::batch_status_locked(
    std::uint64_t id) const {
  const Batch& b = batches_.at(id);
  BatchStatus s;
  s.id = b.id;
  s.design_hash = b.design_hash;
  s.label = b.label;
  s.jobs = b.jobs;
  s.all_terminal = true;
  for (const BatchJobRef& r : b.jobs) {
    const auto it = jobs_.find(r.id);
    if (it == jobs_.end()) {
      // Evicted from the bounded result store — eviction only takes terminal
      // jobs, so this member settled (state unknown; count it done).
      ++s.done;
      continue;
    }
    const JobRecord& rec = it->second->rec;
    switch (rec.state) {
      case JobState::kQueued: ++s.queued; s.all_terminal = false; break;
      case JobState::kRunning: ++s.running; s.all_terminal = false; break;
      case JobState::kDone: ++s.done; break;
      case JobState::kCancelled: ++s.cancelled; break;
      case JobState::kFailed: ++s.failed; break;
      case JobState::kShed: ++s.shed; break;
    }
    if (rec.state == JobState::kDone) {
      const double h = rec.legalized ? rec.dp_hpwl : rec.hpwl;
      if (s.best_hpwl == 0.0 || h < s.best_hpwl) {
        s.best_hpwl = h;
        s.best_job = rec.id;
      }
    }
  }
  return s;
}

std::optional<PlacementServer::BatchStatus> PlacementServer::batch_status(
    std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (batches_.count(id) == 0) return std::nullopt;
  return batch_status_locked(id);
}

std::optional<PlacementServer::BatchStatus> PlacementServer::batch_wait(
    std::uint64_t id, double timeout_s) const {
  std::unique_lock<std::mutex> lock(mutex_);
  if (batches_.count(id) == 0) return std::nullopt;
  batch_cv_.wait_for(lock,
                     std::chrono::duration<double>(std::max(0.0, timeout_s)),
                     [&] { return batch_status_locked(id).all_terminal; });
  return batch_status_locked(id);
}

// ---------------------------------------------------------------------------
// Portfolio racing (DESIGN.md §16)
// ---------------------------------------------------------------------------

PlacementServer::PortfolioSubmitOutcome PlacementServer::submit_portfolio(
    const JobSpec& base, int k, double deadline_s) {
  return submit_portfolio(base, k, deadline_s, cfg_.portfolio_policy);
}

PlacementServer::PortfolioSubmitOutcome PlacementServer::submit_portfolio(
    const JobSpec& base, int k, double deadline_s, const RacePolicy& policy) {
  PortfolioSubmitOutcome out;
  if (k < 2) {
    out.error = "submit-portfolio needs \"k\" >= 2 (one member is a submit)";
    return out;
  }
  if (k > 64) {
    out.error = "\"k\" exceeds the 64-member portfolio bound";
    return out;
  }
  if (deadline_s < 0.0) {
    out.error = "\"deadline_s\" must be non-negative";
    return out;
  }

  // The plan is a pure function of (k, base seed): same two numbers, same K
  // perturbation variants, every time — the determinism acceptance.
  const std::uint64_t base_seed = base.seed > 0 ? base.seed : 1;
  const std::vector<opt::PerturbationVariant> plan =
      opt::make_portfolio_plan(k, base_seed);

  // Reserve the id up front so member labels can carry it before the batch
  // admission runs (ids of rejected portfolios are simply skipped).
  std::uint64_t pid = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    pid = next_portfolio_id_++;
  }
  const std::string label = sanitize_label(
      base.label.empty() ? "p" + std::to_string(pid) : base.label);

  JobSpec batch_base = base;
  batch_base.label = label;
  std::vector<JobSpec> configs;
  configs.reserve(plan.size());
  for (const opt::PerturbationVariant& v : plan) {
    JobSpec s = base;
    s.seed = v.seed;
    s.init_noise_scale = v.init_noise_scale;
    s.gamma_scale = v.gamma_scale;
    s.lambda_scale = v.lambda_scale;
    s.label = label + "_" + v.label;
    s.deadline_s = deadline_s;  // shared race deadline, queue wait included
    s.portfolio_id = pid;
    s.dedup = true;
    configs.push_back(std::move(s));
  }

  // The member batch does the heavy lifting: one design parse, all-or-nothing
  // queue admission, per-member kSubmit + one kBatch journal record. Batch
  // verbs (batch-result, batch-cancel) work on a portfolio's batch too.
  const BatchSubmitOutcome bo = submit_batch(batch_base, configs);
  if (!bo.ok) {
    out.error = bo.error;
    return out;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  Portfolio p;
  p.id = pid;
  p.info.batch_id = bo.batch_id;
  p.info.design_hash = bo.design_hash;
  p.info.base_seed = base_seed;
  p.info.k = static_cast<std::uint32_t>(k);
  p.info.deadline_s = deadline_s;
  p.info.label = label;
  p.info.min_iter = policy.min_iter;
  p.info.hpwl_margin = policy.hpwl_margin;
  p.info.overflow_slack = policy.overflow_slack;
  p.info.no_kill = policy.no_kill ? 1 : 0;
  journal_append_locked(JournalEvent::kPortfolio, pid,
                        encode_portfolio(p.info));
  portfolios_.emplace(pid, std::move(p));
  telemetry::Registry::global().counter("serve.portfolio.submitted").inc();
  XP_INFO("portfolio %llu: %d-way race on design %016llx (batch %llu, base "
          "seed %llu, deadline %.1fs)",
          static_cast<unsigned long long>(pid), k,
          static_cast<unsigned long long>(bo.design_hash),
          static_cast<unsigned long long>(bo.batch_id),
          static_cast<unsigned long long>(base_seed), deadline_s);
  out.ok = true;
  out.portfolio_id = pid;
  out.batch_id = bo.batch_id;
  out.design_hash = bo.design_hash;
  out.jobs = bo.jobs;
  portfolio_cv_.notify_all();  // the racer wakes up to the new portfolio
  return out;
}

PlacementServer::PortfolioStatus PlacementServer::portfolio_status_locked(
    const Portfolio& p) const {
  PortfolioStatus s;
  s.id = p.id;
  s.batch_id = p.info.batch_id;
  s.design_hash = p.info.design_hash;
  s.base_seed = p.info.base_seed;
  s.label = p.info.label;
  s.killed = p.killed;
  s.deadline_s = p.info.deadline_s;
  s.all_terminal = true;
  const auto bit = batches_.find(p.info.batch_id);
  if (bit == batches_.end()) return s;  // defensive: batches_ never evicts
  s.jobs = bit->second.jobs;
  for (const BatchJobRef& r : s.jobs) {
    const auto it = jobs_.find(r.id);
    if (it == jobs_.end()) {
      ++s.done;  // evicted from the result store ⇒ settled (see batch_status)
      continue;
    }
    const JobRecord& rec = it->second->rec;
    switch (rec.state) {
      case JobState::kQueued: ++s.queued; s.all_terminal = false; break;
      case JobState::kRunning: ++s.running; s.all_terminal = false; break;
      case JobState::kDone: ++s.done; break;
      case JobState::kCancelled: ++s.cancelled; break;
      case JobState::kFailed: ++s.failed; break;
      case JobState::kShed: ++s.shed; break;
    }
    if (rec.state == JobState::kDone) {
      const double h = rec.legalized ? rec.dp_hpwl : rec.hpwl;
      if (s.winner == 0 || h < s.winner_hpwl ||
          (h == s.winner_hpwl && rec.id < s.winner)) {
        s.winner_hpwl = h;
        s.winner = rec.id;
      }
    }
  }
  return s;
}

std::optional<PlacementServer::PortfolioStatus>
PlacementServer::portfolio_status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = portfolios_.find(id);
  if (it == portfolios_.end()) return std::nullopt;
  return portfolio_status_locked(it->second);
}

std::optional<PlacementServer::PortfolioStatus> PlacementServer::portfolio_wait(
    std::uint64_t id, double timeout_s) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = portfolios_.find(id);
  if (it == portfolios_.end()) return std::nullopt;
  const Portfolio& p = it->second;  // rows are never erased while running
  batch_cv_.wait_for(lock,
                     std::chrono::duration<double>(std::max(0.0, timeout_s)),
                     [&] { return portfolio_status_locked(p).all_terminal; });
  return portfolio_status_locked(p);
}

void PlacementServer::race_portfolios_locked() {
  telemetry::Registry& reg = telemetry::Registry::global();
  for (auto& [pid, p] : portfolios_) {
    if (p.settled) continue;
    const auto bit = batches_.find(p.info.batch_id);
    if (bit == batches_.end()) {
      p.settled = true;
      continue;
    }
    // Sample each member's newest progress event — the same Recorder-sourced
    // numbers the events verb streams — into the racer's cross-job view.
    std::vector<MemberProgress> members;
    members.reserve(bit->second.jobs.size());
    bool all_terminal = true;
    for (const BatchJobRef& r : bit->second.jobs) {
      MemberProgress m;
      m.id = r.id;
      const auto jit = jobs_.find(r.id);
      if (jit == jobs_.end()) {
        m.terminal = true;  // evicted ⇒ settled long ago
      } else {
        const Job& job = *jit->second;
        m.terminal = is_terminal(job.rec.state);
        if (!job.events.empty()) {
          m.has_progress = true;
          m.iter = job.events.back().iter;
          m.hpwl = job.events.back().hpwl;
          m.overflow = job.events.back().overflow;
        }
      }
      all_terminal = all_terminal && m.terminal;
      members.push_back(m);
    }
    if (all_terminal) {
      p.settled = true;
      reg.counter("serve.portfolio.settled").inc();
      continue;
    }
    RacePolicy pol = cfg_.portfolio_policy;  // min_survivors stays server-wide
    pol.min_iter = p.info.min_iter;
    pol.hpwl_margin = p.info.hpwl_margin;
    pol.overflow_slack = p.info.overflow_slack;
    pol.no_kill = p.info.no_kill != 0;
    for (const std::uint64_t victim : laggards_to_kill(members, pol)) {
      if (!cancel_locked(victim, nullptr)) continue;
      ++p.killed;
      ++portfolio_kills_;
      reg.counter("serve.portfolio.killed").inc();
      XP_INFO("portfolio %llu: early-killed laggard job %llu",
              static_cast<unsigned long long>(pid),
              static_cast<unsigned long long>(victim));
    }
  }
}

void PlacementServer::portfolio_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!portfolio_stop_) {
    if (cfg_.portfolio_poll_s <= 0.0) {
      // Racing disabled: park until shutdown (members run to completion; the
      // winner is still selected by portfolio_status).
      portfolio_cv_.wait(lock, [&] { return portfolio_stop_; });
      continue;
    }
    portfolio_cv_.wait_for(
        lock, std::chrono::duration<double>(cfg_.portfolio_poll_s));
    if (portfolio_stop_) break;
    race_portfolios_locked();
  }
}

bool PlacementServer::cancel_locked(std::uint64_t id, std::string* error) {
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    if (error != nullptr) *error = "unknown or evicted job id";
    return false;
  }
  // Keep the job alive past a same-pass result-store eviction inside
  // finish_job_locked (waiters' shared_ptrs do the same for them).
  const std::shared_ptr<Job> job = it->second;
  if (is_terminal(job->rec.state)) {
    if (error != nullptr) {
      *error = std::string("job already terminal (") +
               to_string(job->rec.state) + ")";
    }
    return false;
  }
  job->token.request_cancel();
  if (job->rec.state == JobState::kRunning) {
    // Running: the settle happens later on the worker thread. Journal the
    // intent now so a crash in between still cancels after recovery.
    journal_append_locked(JournalEvent::kCancel, id, {});
  }
  if (job->rec.state == JobState::kQueued) {
    // A queued job may be waiting out a retry backoff (not in queue_);
    // drop the pending entry so the timer never re-admits it.
    const std::size_t before = retry_pending_.size();
    retry_pending_.erase(
        std::remove_if(retry_pending_.begin(), retry_pending_.end(),
                       [id](const PendingRetry& p) { return p.id == id; }),
        retry_pending_.end());
    const bool was_backoff = retry_pending_.size() != before;
    // Still waiting: pull it out of the queue (or its backoff window) and
    // settle it here. If the remove races a worker's pop, the armed token
    // stops the run at its first poll instead.
    if (queue_.remove(id) || was_backoff) {
      job->rec.stop_reason = core::StopReason::kCancelled;
      finish_job_locked(*job, JobState::kCancelled);
    }
  }
  return true;
}

bool PlacementServer::cancel(std::uint64_t id, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancel_locked(id, error);
}

bool PlacementServer::batch_cancel(std::uint64_t id, std::size_t* cancelled,
                                   std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = batches_.find(id);
  if (it == batches_.end()) {
    if (error != nullptr) *error = "unknown batch id";
    return false;
  }
  std::size_t n = 0;
  for (const BatchJobRef& r : it->second.jobs) {
    // Already-terminal (or evicted) members are simply skipped — a batch
    // cancel is "stop spending on this sweep", not an error on stragglers.
    if (cancel_locked(r.id, nullptr)) ++n;
  }
  if (cancelled != nullptr) *cancelled = n;
  telemetry::Registry::global().counter("serve.batch.cancelled").inc();
  return true;
}

std::optional<JobRecord> PlacementServer::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second->rec;
}

std::optional<JobRecord> PlacementServer::wait(std::uint64_t id,
                                               double timeout_s) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;  // keeps the record alive
  job->cv.wait_for(lock,
                   std::chrono::duration<double>(std::max(0.0, timeout_s)),
                   [&] { return is_terminal(job->rec.state); });
  return job->rec;
}

std::optional<PlacementServer::EventBatch> PlacementServer::events(
    std::uint64_t id, std::uint64_t from_seq, double timeout_s) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const std::shared_ptr<Job> job = it->second;

  const auto has_new = [&] {
    return is_terminal(job->rec.state) ||
           (!job->events.empty() && job->events.back().seq >= from_seq);
  };
  job->cv.wait_for(lock,
                   std::chrono::duration<double>(std::max(0.0, timeout_s)),
                   has_new);

  EventBatch batch;
  batch.terminal = is_terminal(job->rec.state);
  batch.dropped = job->dropped;
  batch.next_seq = from_seq;
  for (const JobEvent& ev : job->events) {
    if (ev.seq >= from_seq) {
      batch.events.push_back(ev);
      batch.next_seq = ev.seq + 1;
    }
  }
  return batch;
}

PlacementServer::Stats PlacementServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.submitted = submitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.cancelled = cancelled_;
  s.failed = failed_;
  s.shed = shed_;
  s.retries = retries_;
  s.recovered = recovered_;
  s.journal_active = journal_.is_open();
  s.journal_degraded = journal_degraded_;
  s.journal_bytes = journal_.size_bytes();
  s.journal_records = journal_.records_written();
  s.retry_pending = retry_pending_.size();
  s.queued = queue_.size();
  s.running = running_;
  s.queue_capacity = cfg_.queue_capacity;
  s.max_concurrency = cfg_.max_concurrency;
  s.thread_budget = cfg_.thread_budget;
  s.threads_leased = threads_leased_;
  s.accepting = accepting_;
  s.events_dropped = events_dropped_total_;
  s.deadline_missed = deadline_missed_;
  const auto summarize = [](const telemetry::Histogram* h) {
    LatencySummary sum;
    sum.p50 = h->quantile(0.50);
    sum.p95 = h->quantile(0.95);
    sum.p99 = h->quantile(0.99);
    sum.count = h->count();
    return sum;
  };
  s.queue_wait = summarize(queue_wait_hist_);
  s.run = summarize(run_hist_);
  s.e2e = summarize(e2e_hist_);
  const DesignStore::Stats ds = designs_.stats();
  s.design_parses = ds.parses;
  s.design_cache_hits = ds.cache_hits;
  s.design_cache_evictions = ds.cache_evictions;
  s.designs_resident = ds.resident;
  s.design_resident_bytes = ds.resident_bytes;
  s.batches = batches_.size();
  s.dedup_hits = dedup_hits_;
  s.portfolios = portfolios_.size();
  s.portfolio_kills = portfolio_kills_;
  return s;
}

bool PlacementServer::accepting() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepting_;
}

void PlacementServer::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (shut_down_) return;
    shut_down_ = true;
    accepting_ = false;
  }
  XP_INFO("placement server shutdown (%s)", drain ? "drain" : "cancel");
  {
    // Retire the retry timer first. Drain flushes pending backoffs straight
    // into the queue (their jobs still get their remaining attempts);
    // no-drain settles them cancelled alongside the queued jobs below.
    std::unique_lock<std::mutex> lock(mutex_);
    retry_stop_ = true;
    if (drain) {
      for (const PendingRetry& p : retry_pending_) {
        const auto it = jobs_.find(p.id);
        if (it == jobs_.end() || is_terminal(it->second->rec.state)) continue;
        QueuedJob qj;
        qj.id = p.id;
        qj.priority = it->second->rec.spec.priority;
        qj.deadline = it->second->queue_deadline;
        queue_.push(qj);
      }
      retry_pending_.clear();
    }
  }
  retry_cv_.notify_all();
  if (retry_thread_.joinable()) retry_thread_.join();
  {
    // Retire the racer: no more early-kills once shutdown is in motion (the
    // no-drain path below cancels everything anyway).
    std::lock_guard<std::mutex> lock(mutex_);
    portfolio_stop_ = true;
  }
  portfolio_cv_.notify_all();
  if (portfolio_thread_.joinable()) portfolio_thread_.join();
  if (!drain) {
    // Settle queued jobs as cancelled, then arm every live token so running
    // (or popped-in-limbo) jobs stop at their next poll.
    const std::vector<QueuedJob> dropped = queue_.drain();
    std::lock_guard<std::mutex> lock(mutex_);
    for (const QueuedJob& qj : dropped) {
      const auto it = jobs_.find(qj.id);
      if (it == jobs_.end() || is_terminal(it->second->rec.state)) continue;
      it->second->rec.stop_reason = core::StopReason::kCancelled;
      finish_job_locked(*it->second, JobState::kCancelled);
    }
    for (const PendingRetry& p : retry_pending_) {
      const auto it = jobs_.find(p.id);
      if (it == jobs_.end() || is_terminal(it->second->rec.state)) continue;
      it->second->rec.stop_reason = core::StopReason::kCancelled;
      finish_job_locked(*it->second, JobState::kCancelled);
    }
    retry_pending_.clear();
    for (auto& [id, job] : jobs_) {
      if (!is_terminal(job->rec.state)) job->token.request_cancel();
    }
  }
  queue_.close();  // poppers drain what is left, then exit
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  {
    // Every job is terminal now. The clean-shutdown marker, as the journal's
    // final record, lets the next start skip recovery and log "clean start".
    std::lock_guard<std::mutex> lock(mutex_);
    bool all_settled = true;
    for (const auto& [id, job] : jobs_) {
      all_settled = all_settled && is_terminal(job->rec.state);
    }
    if (all_settled) {
      journal_append_locked(JournalEvent::kCleanShutdown, 0, {});
    }
    journal_.close();
  }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

std::size_t PlacementServer::lease_threads(int requested) {
  const std::size_t want = std::min<std::size_t>(
      cfg_.thread_budget,
      static_cast<std::size_t>(std::max(1, requested)));
  std::unique_lock<std::mutex> lock(mutex_);
  budget_cv_.wait(lock, [&] {
    return threads_leased_ + want <= cfg_.thread_budget;
  });
  threads_leased_ += want;
  return want;
}

void PlacementServer::release_threads(std::size_t leased) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads_leased_ -= leased;
  }
  budget_cv_.notify_all();
}

void PlacementServer::worker_loop() {
  QueuedJob qj;
  while (queue_.pop(&qj)) {
    std::shared_ptr<Job> job;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = jobs_.find(qj.id);
      if (it == jobs_.end() || is_terminal(it->second->rec.state)) {
        continue;  // cancelled while queued (remove/pop race) or evicted
      }
      job = it->second;
      // Deadline admission: a job popped after its deadline never runs —
      // the deadline covers queue wait by design.
      if (const StopCause cause = job->token.check();
          cause != StopCause::kNone) {
        job->rec.stop_reason = stop_reason_from(cause);
        finish_job_locked(*job, JobState::kCancelled);
        continue;
      }
      job->rec.state = JobState::kRunning;
      job->rec.started_s = log::elapsed_seconds();
      ++running_;
      journal_append_locked(JournalEvent::kStart, qj.id, {});
      job->cv.notify_all();
    }
    telemetry::Registry::global().gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.size()));

    // Queue-wait span: begins at submit (recorded then in the tracer's
    // timebase), ends now that a worker slot picked the job up. Recorded
    // directly since the interval did not live on any one thread.
    telemetry::Tracer& tracer = telemetry::Tracer::global();
    if (tracer.enabled()) {
      telemetry::SpanEvent ev;
      ev.name = "serve.queue_wait";
      ev.begin_us = job->submit_us;
      ev.end_us = telemetry::Tracer::now_us();
      ev.tid = telemetry::Tracer::thread_id();
      ev.trace_id = job->rec.trace_id;
      tracer.record(ev);
    }

    const int requested = job->rec.spec.threads > 0
                              ? job->rec.spec.threads
                              : cfg_.default_job_threads;
    std::size_t leased = 0;
    {
      // Lease-acquire span: how long the job's slot waited for the server's
      // thread budget (nested under the job's trace root).
      telemetry::TraceBinding bind(job->rec.trace_id);
      telemetry::TraceScope lease_span("serve.lease_acquire");
      lease_span.arg("requested", requested);
      leased = lease_threads(requested);
      lease_span.arg("leased", static_cast<double>(leased));
    }
    run_job(*job, leased);
    release_threads(leased);
  }
}

void PlacementServer::run_job(Job& job, std::size_t leased_threads) {
  const std::uint64_t id = job.rec.id;
  const JobSpec spec = job.rec.spec;  // stable copy for the run
  // Root span of the job's trace: every span below (design load, gp.run and
  // its per-iteration children, lg/dp passes, pooled kernels) inherits the
  // trace id through the thread-local binding, which the ThreadPool also
  // forwards into its workers.
  telemetry::TraceBinding trace_binding(job.rec.trace_id);
  telemetry::TraceScope job_span("serve.job");
  job_span.arg("id", static_cast<double>(id))
      .arg("threads", static_cast<double>(leased_threads));
  XP_INFO("job %llu (%s) starting: %s, %d iters, %zu thread(s)",
          static_cast<unsigned long long>(id), spec.label.c_str(),
          spec.design_hash != 0 ? "stored design"
                                : (spec.aux.empty() ? "demo" : spec.aux.c_str()),
          spec.max_iters, leased_threads);
  try {
    // Design resolution goes through the content-addressed store: at most
    // one parse per distinct design ever, shared read-only across every
    // concurrent job (DESIGN.md §14). The pin exempts the snapshot from LRU
    // eviction for the duration of the run.
    telemetry::TraceScope load_span("serve.load_design");
    std::string derr;
    DesignStore::SnapshotPtr snap;
    if (spec.design_hash != 0) {
      snap = designs_.get_hash(spec.design_hash, &derr);
    } else if (!spec.aux.empty()) {
      snap = designs_.get_aux(spec.aux, &derr);
    } else {
      snap = designs_.get_demo(static_cast<std::size_t>(spec.demo_cells),
                               spec.demo_seed, &derr);
    }
    if (!snap) throw std::runtime_error(derr);
    DesignStore::Pin pin(designs_, snap->content_hash);
    load_span.end();

    core::PlacerConfig cfg = core::PlacerConfig::xplace();
    cfg.grid_dim = spec.grid;
    cfg.max_iters = spec.max_iters;
    cfg.threads = static_cast<int>(leased_threads);
    // Sweep axes (submit-batch configs, also honored on plain submits).
    if (spec.seed > 0) cfg.seed = spec.seed;  // init() derives the streams
    if (spec.target_density > 0.0) cfg.target_density = spec.target_density;
    if (spec.lambda_init > 0.0) cfg.lambda_init_factor = spec.lambda_init;
    // Perturbed-restart knobs (portfolio members): multiplicative against the
    // defaults, matching opt::apply_variant.
    if (spec.init_noise_scale > 0.0) {
      cfg.center_init_noise *= spec.init_noise_scale;
    }
    if (spec.gamma_scale > 0.0) cfg.gamma_base_factor *= spec.gamma_scale;
    if (spec.lambda_scale > 0.0) cfg.lambda_init_factor *= spec.lambda_scale;
    // Supervised restart: attempt > 0 re-runs from scratch (never from the
    // diverged trajectory's spill) with the guardian's compounding λ/step
    // retune lifted to the whole-run level.
    cfg = core::retuned_for_restart(cfg, job.rec.attempt);
    if (!job.rec.resume_from.empty()) {
      // Crash recovery: continue the interrupted trajectory bit-for-bit from
      // the last journaled XPCK spill (PR 2's restore contract).
      cfg.resume_path = job.rec.resume_from;
    }
    std::string spill_path;
    if (!cfg_.spill_dir.empty()) {
      spill_path = cfg_.spill_dir + "/job" + std::to_string(id) + ".xpck";
      cfg.checkpoint_out = spill_path;
      cfg.checkpoint_period = cfg_.spill_period;
    }

    // The placer materializes its private mutable run state from the shared
    // snapshot copy-on-write; `db` below is that per-run database (LG/DP
    // mutate positions, never the shared core).
    core::GlobalPlacer placer(snap, cfg);
    db::Database& db = placer.db();
    placer.set_stop_token(&job.token);
    placer.set_checkpoint_observer(
        [this, id](int next_iter, const std::string& path) {
          // The XPCK is durable on disk; journal it as the job's new resume
          // point. serve_crash@job:N fires here — right after the snapshot
          // the chaos lane expects recovery to resume from.
          {
            std::lock_guard<std::mutex> lock(mutex_);
            journal_append_locked(JournalEvent::kCheckpoint, id,
                                  encode_checkpoint(next_iter, path));
          }
          if (cfg_.faults.crash_armed_for(id)) cfg_.faults.crash_now(id);
        });
    if (cfg_.faults.diverge_armed_for(id) && job.rec.attempt == 0) {
      // diverge@job:N: exhaust the guardian's in-run rollback budget on the
      // first attempt so the run ends kDiverged and the supervisor's retry
      // path engages deterministically.
      core::FaultPlan fp;
      for (int it : {2, 4, 6, 8, 10, 12}) {
        core::FaultEvent ev;
        ev.kind = core::FaultEvent::Kind::kNonfiniteGrad;
        ev.iter = it;
        fp.events.push_back(ev);
      }
      placer.guardian().set_fault_plan(std::move(fp));
    }
    placer.recorder().set_observer([this, &job](
                                       const core::IterationRecord& r) {
      std::lock_guard<std::mutex> lock(mutex_);
      JobEvent ev;
      ev.seq = job.next_seq++;
      ev.iter = r.iter;
      ev.hpwl = r.hpwl;
      ev.overflow = r.overflow;
      ev.omega = r.omega;
      job.events.push_back(ev);
      if (job.events.size() > cfg_.event_capacity) {
        job.events.pop_front();
        ++job.dropped;
        job.rec.events_dropped = job.dropped;
        ++events_dropped_total_;
        telemetry::Registry::global().counter("serve.events.dropped").inc();
      }
      job.cv.notify_all();
    });

    const core::GlobalPlaceResult gp = placer.run();
    if (gp.rollbacks > 0) {
      telemetry::Registry::global().counter("serve.guardian_rollbacks")
          .inc(static_cast<std::uint64_t>(gp.rollbacks));
    }

    if (gp.stop_reason == core::StopReason::kDiverged) {
      // The in-run guardian spent its rollback budget; escalate to the
      // supervisor: re-admit with backoff + retune, budget permitting.
      std::lock_guard<std::mutex> lock(mutex_);
      if (maybe_schedule_retry_locked(job, "diverged")) return;
    }

    bool stopped = gp.stop_reason == core::StopReason::kCancelled ||
                   gp.stop_reason == core::StopReason::kDeadline;
    core::StopReason reason = gp.stop_reason;
    double dp_hpwl = 0.0;
    bool legalized = false;

    // LG/DP phase boundary polls: a stop that lands after GP converged still
    // cuts the flow short (deadline keeps its meaning end-to-end).
    if (spec.full_flow && !stopped) {
      if (const StopCause c = job.token.check(); c != StopCause::kNone) {
        stopped = true;
        reason = stop_reason_from(c);
      } else {
        {
          XP_TRACE_SCOPE("serve.lg");
          lg::abacus_legalize(db, &placer.execution());
        }
        XP_TRACE_SCOPE("serve.dp");
        dp::DetailedPlaceConfig dcfg;
        dcfg.stop = &job.token;
        dp::detailed_place(db, dcfg, &placer.execution());
        dp_hpwl = db.hpwl();
        legalized = true;
        if (const StopCause c2 = job.token.check(); c2 != StopCause::kNone) {
          stopped = true;  // fired mid-DP; placement is legal regardless
          reason = stop_reason_from(c2);
        }
      }
    }

    std::lock_guard<std::mutex> lock(mutex_);
    job.rec.stop_reason = reason;
    job.rec.hpwl = gp.hpwl;
    job.rec.overflow = gp.overflow;
    job.rec.iterations = gp.iterations;
    job.rec.gp_seconds = gp.gp_seconds;
    job.rec.dp_hpwl = dp_hpwl;
    job.rec.legalized = legalized;
    job.rec.spill_path = spill_path;
    finish_job_locked(job, stopped ? JobState::kCancelled : JobState::kDone);
  } catch (const std::bad_alloc&) {
    // Allocation failure is transient by assumption (a co-resident job's
    // peak, not a broken spec) — retryable, unlike a parse error.
    XP_ERROR("job %llu hit allocation failure",
             static_cast<unsigned long long>(id));
    std::lock_guard<std::mutex> lock(mutex_);
    if (maybe_schedule_retry_locked(job, "alloc_fail")) return;
    job.rec.error = "allocation failure";
    finish_job_locked(job, JobState::kFailed);
  } catch (const std::exception& e) {
    XP_ERROR("job %llu failed: %s", static_cast<unsigned long long>(id),
             e.what());
    std::lock_guard<std::mutex> lock(mutex_);
    job.rec.error = e.what();
    finish_job_locked(job, JobState::kFailed);
  }
}

void PlacementServer::finish_job_locked(Job& job, JobState state) {
  if (job.rec.state == JobState::kRunning) --running_;
  job.rec.state = state;
  job.rec.finished_s = log::elapsed_seconds();
  job.rec.events_dropped = job.dropped;
  switch (state) {
    case JobState::kDone: ++completed_; break;
    case JobState::kCancelled: ++cancelled_; break;
    case JobState::kFailed: ++failed_; break;
    case JobState::kShed: ++shed_; break;
    default: break;
  }
  {
    // Terminal transition → journal, so a restart restores this job straight
    // into the result store instead of re-running it.
    FinishInfo info;
    info.state = state;
    info.stop_reason = job.rec.stop_reason;
    info.hpwl = job.rec.hpwl;
    info.overflow = job.rec.overflow;
    info.iterations = job.rec.iterations;
    info.gp_seconds = job.rec.gp_seconds;
    info.dp_hpwl = job.rec.dp_hpwl;
    info.legalized = job.rec.legalized;
    info.error = job.rec.error;
    journal_append_locked(JournalEvent::kFinish, job.rec.id,
                          encode_finish(info));
  }
  // SLO accounting: latency histograms (percentiles derive from these) and
  // deadline misses. Queue wait / run are only meaningful for jobs that got
  // a worker slot; e2e covers every terminal job including queue-cancelled.
  if (job.rec.started_s > 0.0) {
    queue_wait_hist_->observe(job.rec.started_s - job.rec.submitted_s);
    run_hist_->observe(job.rec.finished_s - job.rec.started_s);
  }
  e2e_hist_->observe(job.rec.finished_s - job.rec.submitted_s);
  if (job.rec.stop_reason == core::StopReason::kDeadline) {
    ++deadline_missed_;
    telemetry::Registry::global().counter("serve.deadline_missed").inc();
  }
  // A dedup entry must only ever serve successful results: a job that
  // settled anything but kDone is dropped from the index so the next
  // identical submit runs fresh.
  if (state != JobState::kDone && job.dedup_key.first != 0) {
    const auto it = dedup_index_.find(job.dedup_key);
    if (it != dedup_index_.end() && it->second == job.rec.id) {
      dedup_index_.erase(it);
    }
  }
  terminal_order_.push_back(job.rec.id);
  evict_terminal_locked();
  publish_job_metrics(job.rec);
  job.cv.notify_all();
  batch_cv_.notify_all();  // batch_wait re-aggregates on any settle
}

void PlacementServer::evict_terminal_locked() {
  while (terminal_order_.size() > cfg_.result_capacity) {
    const std::uint64_t victim = terminal_order_.front();
    terminal_order_.pop_front();
    const auto it = jobs_.find(victim);
    if (it != jobs_.end()) {
      // Retention policy (DESIGN.md §12): per-job metric families and trace
      // labels live exactly as long as the job record — evicting the record
      // GCs `serve.job.<label>.*` and the trace-label entry, so a long-lived
      // daemon's registry stays bounded by result_capacity.
      telemetry::Registry::global().remove_prefix(
          "serve.job." + it->second->rec.spec.label + ".");
      telemetry::Tracer::global().forget_trace(it->second->rec.trace_id);
      if (it->second->dedup_key.first != 0) {
        // The cached result is gone with the record; stop advertising it.
        const auto dit = dedup_index_.find(it->second->dedup_key);
        if (dit != dedup_index_.end() && dit->second == victim) {
          dedup_index_.erase(dit);
        }
      }
      jobs_.erase(it);  // waiters still holding the shared_ptr are safe
    }
  }
}

// ---------------------------------------------------------------------------
// Durability & self-healing (DESIGN.md §13)
// ---------------------------------------------------------------------------

void PlacementServer::journal_append_locked(JournalEvent type,
                                            std::uint64_t job_id,
                                            std::string payload) {
  if (!journal_.is_open() || journal_degraded_) return;
  io::JournalRecord rec;
  rec.type = static_cast<std::uint32_t>(type);
  rec.job_id = job_id;
  rec.time_s = wall_seconds();
  rec.payload = std::move(payload);
  if (!journal_.append(rec)) {
    // Keep serving from memory, but remember durability is gone: admission
    // treats a degraded journal as saturation (see submit()).
    journal_degraded_ = true;
    telemetry::Registry::global().counter("serve.journal.degraded").inc();
    XP_ERROR("journal append failed — durability degraded, serving from "
             "memory only");
  }
}

void PlacementServer::recover_from_journal() {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(cfg_.state_dir, ec);
  const std::string path = cfg_.state_dir + "/journal.xpjl";

  const io::JournalReplay replay = io::read_journal(path);
  RecoveryPlan plan = build_recovery_plan(replay);
  if (replay.torn_tail) {
    XP_WARN("journal %s: torn final record (crash mid-append); %zu intact "
            "record(s) replayed", path.c_str(), plan.records);
  }
  if (replay.corrupt) {
    XP_WARN("journal %s: corrupt record; replay kept the %zu trusted "
            "record(s) before it", path.c_str(), plan.records);
  }

  std::lock_guard<std::mutex> lock(mutex_);  // workers not started yet

  // Design refs survive every kind of restart: register their sources for
  // lazy re-parse (no parse happens here — first reference re-parses).
  const auto register_designs = [&](bool mark_journaled) {
    for (const RecoveredDesign& rd : plan.designs) {
      DesignStore::SourceRef ref;
      ref.demo = rd.source.demo;
      ref.aux = rd.source.aux;
      ref.cells = static_cast<std::size_t>(rd.source.cells);
      ref.seed = rd.source.seed;
      designs_.register_source(rd.hash, ref);
      if (mark_journaled) journaled_designs_[rd.hash] = true;
    }
  };

  if (replay.missing || plan.clean_shutdown) {
    next_id_ = std::max<std::uint64_t>(next_id_, plan.max_id + 1);
    next_batch_id_ = std::max<std::uint64_t>(next_batch_id_,
                                             plan.max_batch_id + 1);
    next_portfolio_id_ = std::max<std::uint64_t>(next_portfolio_id_,
                                                 plan.max_portfolio_id + 1);
    if (!journal_.open(path, /*truncate=*/true)) journal_degraded_ = true;
    // Uploaded designs outlive a clean shutdown (batches and job results do
    // not — same retention as the result store): re-register the sources and
    // re-journal their refs into the fresh journal.
    register_designs(/*mark_journaled=*/false);
    for (const RecoveredDesign& rd : plan.designs) {
      DesignStore::SourceRef ref;
      ref.demo = rd.source.demo;
      ref.aux = rd.source.aux;
      ref.cells = static_cast<std::size_t>(rd.source.cells);
      ref.seed = rd.source.seed;
      journal_design_ref_locked(rd.hash, ref);
    }
    XP_INFO("journal %s: clean start%s", path.c_str(),
            replay.missing ? " (fresh state dir)" : " (previous shutdown drained)");
  } else {
    // Compact the history into folded per-job state, then restore it: live
    // jobs re-enqueue in original submit order (the queue comparator then
    // reproduces the original priority → deadline → FIFO pop order),
    // interrupted running jobs carry their newest XPCK as the resume point,
    // and terminal jobs land straight in the result store.
    if (!io::rewrite_journal(path, compaction_records(plan)) ||
        !journal_.open(path, /*truncate=*/false)) {
      journal_degraded_ = true;
    }
    next_id_ = std::max<std::uint64_t>(next_id_, plan.max_id + 1);
    next_batch_id_ = std::max<std::uint64_t>(next_batch_id_,
                                             plan.max_batch_id + 1);
    next_portfolio_id_ = std::max<std::uint64_t>(next_portfolio_id_,
                                                 plan.max_portfolio_id + 1);
    // Compaction re-emitted every design ref, batch, and portfolio record,
    // so none of them needs re-journaling here.
    register_designs(/*mark_journaled=*/true);
    for (const RecoveredBatch& rb : plan.batches) {
      Batch b;
      b.id = rb.id;
      b.design_hash = rb.info.design_hash;
      b.label = rb.info.label;
      for (std::size_t i = 0; i < rb.info.job_ids.size(); ++i) {
        b.jobs.push_back({rb.info.job_ids[i],
                          i < rb.info.deduped.size() && rb.info.deduped[i] != 0});
      }
      b.submitted_s = log::elapsed_seconds();
      batches_.emplace(rb.id, std::move(b));
    }
    for (const RecoveredPortfolio& rp : plan.portfolios) {
      Portfolio p;
      p.id = rp.id;
      p.info = rp.info;
      portfolios_.emplace(rp.id, std::move(p));
    }

    const double now_wall = wall_seconds();
    std::size_t live = 0, restored = 0;
    for (RecoveredJob& rj : plan.jobs) {
      auto job = std::make_shared<Job>();
      job->rec.id = rj.id;
      job->rec.spec = rj.spec;
      job->rec.attempt = rj.attempt;
      job->rec.attempts = rj.attempts;
      job->rec.recovered = true;
      job->rec.trace_id = telemetry::TraceContext::new_id();
      job->submit_us = telemetry::Tracer::now_us();
      job->rec.submitted_s = log::elapsed_seconds();
      ++submitted_;
      Job& ref = *job;
      jobs_.emplace(rj.id, std::move(job));

      if (rj.terminal) {
        // Already settled before the crash: restore the record verbatim (no
        // re-journal, no latency observation — those happened in the
        // previous process lifetime).
        ref.rec.state = rj.finish.state;
        ref.rec.stop_reason = rj.finish.stop_reason;
        ref.rec.hpwl = rj.finish.hpwl;
        ref.rec.overflow = rj.finish.overflow;
        ref.rec.iterations = rj.finish.iterations;
        ref.rec.gp_seconds = rj.finish.gp_seconds;
        ref.rec.dp_hpwl = rj.finish.dp_hpwl;
        ref.rec.legalized = rj.finish.legalized;
        ref.rec.error = rj.finish.error;
        ref.rec.finished_s = ref.rec.submitted_s;
        switch (ref.rec.state) {
          case JobState::kDone: ++completed_; break;
          case JobState::kCancelled: ++cancelled_; break;
          case JobState::kFailed: ++failed_; break;
          case JobState::kShed: ++shed_; break;
          default: break;
        }
        if (ref.rec.state == JobState::kDone && ref.rec.spec.dedup &&
            ref.rec.spec.design_hash != 0) {
          // Restored successful results keep serving dedup hits: the cache
          // survives the restart along with the record.
          ref.dedup_key = {ref.rec.spec.design_hash, config_hash(ref.rec.spec)};
          dedup_index_[ref.dedup_key] = rj.id;
        }
        terminal_order_.push_back(rj.id);
        publish_job_metrics(ref.rec);
        ++restored;
        continue;
      }

      // Deadline accounting across the restart: the journal carries wall
      // time, so elapsed real time (including the downtime) still counts
      // against the job's deadline.
      if (rj.spec.deadline_s > 0) {
        const double remaining =
            rj.spec.deadline_s - (now_wall - rj.submit_time_s);
        if (remaining <= 0) {
          ref.rec.stop_reason = core::StopReason::kDeadline;
          finish_job_locked(ref, JobState::kCancelled);
          continue;
        }
        ref.token.set_timeout(remaining);
        ref.queue_deadline = steady_seconds() + remaining;
      }
      if (rj.cancel_requested) {
        // Cancel was journaled but the settle never landed before the crash.
        ref.rec.stop_reason = core::StopReason::kCancelled;
        finish_job_locked(ref, JobState::kCancelled);
        continue;
      }

      if (rj.was_running && !rj.checkpoint_path.empty() &&
          fs::exists(rj.checkpoint_path)) {
        ref.rec.resume_from = rj.checkpoint_path;
      }
      ref.rec.state = JobState::kQueued;
      if (rj.spec.dedup && rj.spec.design_hash != 0) {
        ref.dedup_key = {rj.spec.design_hash, config_hash(rj.spec)};
        dedup_index_[ref.dedup_key] = rj.id;
      }
      QueuedJob qj;
      qj.id = rj.id;
      qj.priority = rj.spec.priority;
      qj.deadline = ref.queue_deadline;
      queue_.push(qj);
      ++live;
    }
    // Portfolio kill counts are not journaled per kill (the member's kCancel/
    // kFinish already is); approximate the tally from members that settled
    // cancelled. The racer resumes judging the surviving members as soon as
    // its thread starts.
    for (auto& [pid, p] : portfolios_) {
      const auto bit = batches_.find(p.info.batch_id);
      if (bit == batches_.end()) continue;
      for (const BatchJobRef& r : bit->second.jobs) {
        const auto jit = jobs_.find(r.id);
        if (jit != jobs_.end() &&
            jit->second->rec.state == JobState::kCancelled) {
          ++p.killed;
        }
      }
    }
    evict_terminal_locked();
    recovered_ = live;
    telemetry::Registry::global().counter("serve.recovered")
        .inc(static_cast<std::uint64_t>(live));
    XP_INFO("journal %s: recovering %zu job(s) (%zu re-enqueued, %zu terminal "
            "restored)", path.c_str(), plan.jobs.size() - restored, live,
            restored);
  }
  // Journal fault arming (XPLACE_FAULT journal_torn / disk_full) — applied
  // after recovery so the replay itself stays healthy.
  if (cfg_.faults.journal_torn) journal_.arm_torn_write();
  if (cfg_.faults.disk_full) journal_.arm_disk_full();
}

bool PlacementServer::maybe_schedule_retry_locked(Job& job,
                                                  const char* outcome) {
  if (shut_down_) return false;
  if (cfg_.max_retries <= 0 || job.rec.attempt >= cfg_.max_retries) {
    return false;
  }
  if (job.token.check() != StopCause::kNone) return false;  // cancel wins
  const int failed_attempt = job.rec.attempt;
  double backoff =
      std::min(cfg_.retry_backoff_s * std::pow(2.0, failed_attempt),
               cfg_.retry_backoff_max_s);
  backoff *= 1.0 + retry_jitter(job.rec.id, failed_attempt);

  JobAttempt att;
  att.number = failed_attempt;
  att.outcome = outcome;
  att.backoff_s = backoff;
  att.started_s = job.rec.started_s;
  att.finished_s = log::elapsed_seconds();
  job.rec.attempts.push_back(std::move(att));
  job.rec.attempt = failed_attempt + 1;
  if (job.rec.state == JobState::kRunning) --running_;
  job.rec.state = JobState::kQueued;
  job.rec.started_s = 0.0;
  // Never resume a broken trajectory's spill: the retry restarts from
  // scratch with retuned_for_restart's gentler λ/step schedule.
  job.rec.resume_from.clear();

  ++retries_;
  telemetry::Registry::global().counter("serve.retries").inc();
  RetryInfo info;
  info.attempt = job.rec.attempt;
  info.backoff_s = backoff;
  info.reason = outcome;
  journal_append_locked(JournalEvent::kRetry, job.rec.id, encode_retry(info));
  retry_pending_.push_back({steady_seconds() + backoff, job.rec.id});
  XP_WARN("job %llu attempt %d ended %s; retry as attempt %d in %.2fs "
          "(budget %d)",
          static_cast<unsigned long long>(job.rec.id), failed_attempt, outcome,
          job.rec.attempt, backoff, cfg_.max_retries);
  job.cv.notify_all();
  retry_cv_.notify_all();
  return true;
}

void PlacementServer::retry_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!retry_stop_) {
    if (retry_pending_.empty()) {
      retry_cv_.wait(lock, [&] {
        return retry_stop_ || !retry_pending_.empty();
      });
      continue;
    }
    const auto due = std::min_element(
        retry_pending_.begin(), retry_pending_.end(),
        [](const PendingRetry& a, const PendingRetry& b) {
          return a.due_s < b.due_s;
        });
    const double now = steady_seconds();
    if (due->due_s > now) {
      retry_cv_.wait_for(lock,
                         std::chrono::duration<double>(due->due_s - now));
      continue;
    }
    const std::uint64_t id = due->id;
    retry_pending_.erase(due);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || it->second->rec.state != JobState::kQueued) {
      continue;  // cancelled (or evicted) while backing off
    }
    Job& job = *it->second;
    QueuedJob qj;
    qj.id = id;
    qj.priority = job.rec.spec.priority;
    qj.deadline = job.queue_deadline;
    if (!queue_.push(qj)) {
      // The queue filled (or closed) while this job backed off — it lost its
      // seat; settle as shed rather than stall its waiters forever.
      job.rec.error = "shed: queue unavailable at retry re-admission";
      finish_job_locked(job, JobState::kShed);
    }
  }
}

bool PlacementServer::shed_weakest_locked(int incoming_priority,
                                          const char* cause) {
  QueuedJob victim;
  if (!queue_.weakest(&victim)) return false;
  // Strictly lower priority only: shedding a peer for a peer would let two
  // equal clients evict each other's work in a loop.
  if (victim.priority >= incoming_priority) return false;
  if (!queue_.remove(victim.id)) return false;
  const auto it = jobs_.find(victim.id);
  if (it != jobs_.end() && !is_terminal(it->second->rec.state)) {
    it->second->rec.error =
        std::string("shed: ") + cause + ", displaced by higher-priority work";
    finish_job_locked(*it->second, JobState::kShed);
    XP_WARN("job %llu shed (%s)",
            static_cast<unsigned long long>(victim.id), cause);
  }
  return true;
}

void PlacementServer::publish_job_metrics(const JobRecord& rec) {
  telemetry::Registry& reg = telemetry::Registry::global();
  switch (rec.state) {
    case JobState::kDone: reg.counter("serve.completed").inc(); break;
    case JobState::kCancelled: reg.counter("serve.cancelled").inc(); break;
    case JobState::kFailed: reg.counter("serve.failed").inc(); break;
    case JobState::kShed: reg.counter("serve.shed").inc(); break;
    default: break;
  }
  const std::string prefix = "serve.job." + rec.spec.label;
  reg.gauge(prefix + ".hpwl").set(rec.hpwl);
  reg.gauge(prefix + ".iterations").set(rec.iterations);
  reg.gauge(prefix + ".gp_seconds").set(rec.gp_seconds);
  reg.gauge(prefix + ".stop_reason")
      .set(static_cast<double>(rec.stop_reason));
  reg.gauge(prefix + ".events_dropped")
      .set(static_cast<double>(rec.events_dropped));
}

}  // namespace xplace::server
