// Minimal JSON value + parser/serializer for the serving protocol.
//
// The wire format is JSON-lines (protocol.h), so this module only needs the
// JSON core: null/bool/number/string/array/object, compact one-line dumps,
// and a strict parser with positioned error messages. It is deliberately
// dependency-free; the rest of the repo keeps writing JSON by hand where it
// only *emits* (recorder, telemetry exporters) — this exists because the
// server must *parse* untrusted bytes off a socket.
//
// Safety properties (exercised by tests/test_server.cpp):
//   * strict: trailing garbage, unterminated strings/containers, bad
//     escapes, and non-JSON bytes all fail with "offset N: message",
//   * bounded recursion: nesting beyond kMaxDepth is an error, not a stack
//     overflow, even though callers already cap line length,
//   * numbers parse via strtod (doubles); integers up to 2^53 round-trip,
//     which covers every id/counter the protocol carries.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace xplace::server::json {

inline constexpr int kMaxDepth = 64;

class Value;
/// Insertion-ordered; duplicate keys are kept (last find() wins is NOT
/// implemented — find() returns the first, matching common parsers).
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;                       // null
  Value(bool b) : type_(Type::kBool), bool_(b) {}
  Value(double n) : type_(Type::kNumber), num_(n) {}
  Value(int n) : type_(Type::kNumber), num_(n) {}
  Value(std::int64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Value(std::uint64_t n) : type_(Type::kNumber), num_(static_cast<double>(n)) {}
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Value(Array a) : type_(Type::kArray), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::kObject), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return num_; }
  const std::string& str() const { return str_; }
  const Array& array() const { return arr_; }
  const Object& object() const { return obj_; }

  /// First member with `key`, or nullptr (non-objects return nullptr too).
  const Value* find(std::string_view key) const;

  // Typed member lookups with defaults (missing key or wrong type → def).
  std::string get_string(std::string_view key, std::string def = "") const;
  double get_number(std::string_view key, double def = 0.0) const;
  bool get_bool(std::string_view key, bool def = false) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Compact single-line serialization (no spaces, keys in insertion order;
  /// non-finite numbers serialize as null per JSON).
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses exactly one JSON document covering all of `text` (surrounding
/// whitespace allowed). On failure returns false and sets *error to
/// "offset N: message" when `error` is non-null.
bool parse(std::string_view text, Value* out, std::string* error);

/// JSON string escaping of `s` (without surrounding quotes); used by the
/// dump path and by hand-built emitters.
std::string escape(std::string_view s);

}  // namespace xplace::server::json
