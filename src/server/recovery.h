// Journal record semantics + startup recovery planning for xplace-serve.
//
// The io::Journal layer frames and checksums bytes; this module owns what the
// bytes mean. One record type per job-lifecycle transition:
//
//   kSubmit      full JobSpec + attempt number (attempt > 0 after compaction
//                of a retried job)
//   kStart       a worker slot picked the job up
//   kCheckpoint  a periodic XPCK spill landed on disk (next_iter + path) —
//                the resume point if the process dies now
//   kFinish      terminal state + result fields
//   kCancel      cancel requested (queued-job cancels also get a kFinish;
//                a bare kCancel means the crash hit between cancel and settle)
//   kRetry       the supervisor re-admitted a diverged/alloc-failed job
//                (new attempt number + backoff + reason)
//   kCleanShutdown  drain completed with no jobs outstanding — the next start
//                is a "clean start" (no recovery) iff this is the last record
//
// build_recovery_plan folds a tolerant replay (io::read_journal) into per-job
// effective state: live jobs to re-enqueue in original submit order, running
// jobs' newest XPCK resume points, terminal jobs' records to restore into the
// result store. compaction_records re-emits that folded state so the journal
// on disk stays proportional to the live+retained job set, not to history.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/journal.h"
#include "server/job.h"

namespace xplace::server {

enum class JournalEvent : std::uint32_t {
  kSubmit = 1,
  kStart = 2,
  kCheckpoint = 3,
  kFinish = 4,
  kCancel = 5,
  kRetry = 6,
  kCleanShutdown = 7,
  /// A design became known to the store (upload-design, or the first job
  /// referencing it). The record's job_id slot carries the design's content
  /// hash; the payload carries its source so recovery can re-register it for
  /// lazy re-parse. Not a job record: excluded from max_id.
  kDesignRef = 8,
  /// A submit-batch landed: the job_id slot carries the batch id; the payload
  /// ties the member job ids to the batch + design hash.
  kBatch = 9,
  /// A submit-portfolio landed: the job_id slot carries the portfolio id; the
  /// payload names the member batch plus the racing parameters, so a restart
  /// resumes racing the surviving members under the same policy.
  kPortfolio = 10,
};

/// Decoded kFinish payload (the terminal slice of a JobRecord).
struct FinishInfo {
  JobState state = JobState::kDone;
  core::StopReason stop_reason = core::StopReason::kIterCap;
  double hpwl = 0.0;
  double overflow = 0.0;
  int iterations = 0;
  double gp_seconds = 0.0;
  double dp_hpwl = 0.0;
  bool legalized = false;
  std::string error;
};

/// Decoded kRetry payload.
struct RetryInfo {
  int attempt = 0;  ///< the attempt number the job is re-admitted as
  double backoff_s = 0.0;
  std::string reason;
};

// ---- payload codecs (little-endian, checkpoint_io-style) -------------------
std::string encode_submit(const JobSpec& spec, int attempt);
bool decode_submit(const std::string& payload, JobSpec* spec, int* attempt);

std::string encode_finish(const FinishInfo& info);
bool decode_finish(const std::string& payload, FinishInfo* info);

std::string encode_checkpoint(int next_iter, const std::string& path);
bool decode_checkpoint(const std::string& payload, int* next_iter,
                       std::string* path);

std::string encode_retry(const RetryInfo& info);
bool decode_retry(const std::string& payload, RetryInfo* info);

/// Decoded kDesignRef payload (the design's hash rides in the job_id slot).
struct DesignRefInfo {
  bool demo = false;
  std::string aux;
  std::uint64_t cells = 0;
  std::uint64_t seed = 0;
};

std::string encode_design_ref(const DesignRefInfo& info);
bool decode_design_ref(const std::string& payload, DesignRefInfo* info);

/// Decoded kBatch payload (the batch id rides in the job_id slot).
struct BatchInfo {
  std::uint64_t design_hash = 0;
  std::string label;
  std::vector<std::uint64_t> job_ids;
  std::vector<std::uint8_t> deduped;  ///< parallel to job_ids: served from cache
};

std::string encode_batch(const BatchInfo& info);
bool decode_batch(const std::string& payload, BatchInfo* info);

/// Decoded kPortfolio payload (the portfolio id rides in the job_id slot).
/// Members are reachable through the named batch's kBatch record.
struct PortfolioInfo {
  std::uint64_t batch_id = 0;
  std::uint64_t design_hash = 0;
  std::uint64_t base_seed = 0;
  std::uint32_t k = 0;
  double deadline_s = 0.0;
  std::string label;
  // Racing policy (portfolio_racer.h) the run was admitted under.
  std::int32_t min_iter = 100;
  double hpwl_margin = 1.15;
  double overflow_slack = 0.05;
  std::uint8_t no_kill = 0;
};

std::string encode_portfolio(const PortfolioInfo& info);
bool decode_portfolio(const std::string& payload, PortfolioInfo* info);

/// One job's effective state after folding every journal record about it.
struct RecoveredJob {
  std::uint64_t id = 0;
  JobSpec spec;
  int attempt = 0;
  double submit_time_s = 0.0;  ///< CLOCK_REALTIME at original submit
  bool was_running = false;    ///< started and neither finished nor retried
  bool cancel_requested = false;  ///< bare kCancel with no settling kFinish
  std::string checkpoint_path;    ///< newest spill ("" = none landed)
  int checkpoint_iter = 0;
  bool terminal = false;
  FinishInfo finish;           ///< valid when terminal
  std::vector<JobAttempt> attempts;  ///< folded retry history
};

/// A design the store knew about (possibly evicted); re-registered at
/// startup for lazy re-parse.
struct RecoveredDesign {
  std::uint64_t hash = 0;
  DesignRefInfo source;
};

/// A batch whose membership survives the restart (member jobs recover
/// independently through their own records).
struct RecoveredBatch {
  std::uint64_t id = 0;
  BatchInfo info;
  double submit_time_s = 0.0;
};

/// A portfolio whose racing state survives the restart: membership via its
/// batch, members via their own job records.
struct RecoveredPortfolio {
  std::uint64_t id = 0;
  PortfolioInfo info;
  double submit_time_s = 0.0;
};

struct RecoveryPlan {
  std::vector<RecoveredJob> jobs;  ///< original submit order
  bool clean_shutdown = false;     ///< last record is the clean marker
  bool torn_tail = false;          ///< forwarded from the replay
  bool corrupt = false;
  std::uint64_t max_id = 0;        ///< highest job id seen (id allocation)
  std::size_t records = 0;         ///< trusted records folded
  std::vector<RecoveredDesign> designs;  ///< design-ref records, first-seen order
  std::vector<RecoveredBatch> batches;   ///< batch records, submit order
  std::uint64_t max_batch_id = 0;
  std::vector<RecoveredPortfolio> portfolios;  ///< portfolio records, in order
  std::uint64_t max_portfolio_id = 0;
};

RecoveryPlan build_recovery_plan(const io::JournalReplay& replay);

/// Re-emits `plan` as a minimal record sequence (per job: submit at its
/// folded attempt, newest checkpoint, terminal finish or dangling cancel) —
/// the compacted journal the daemon rewrites at startup.
std::vector<io::JournalRecord> compaction_records(const RecoveryPlan& plan);

}  // namespace xplace::server
