#include "server/portfolio_racer.h"

#include <algorithm>

namespace xplace::server {

std::vector<std::uint64_t> laggards_to_kill(
    const std::vector<MemberProgress>& members, const RacePolicy& policy) {
  std::vector<std::uint64_t> victims;
  if (policy.no_kill) return victims;

  // Judgeable = live, with a progress sample past the grace window. The
  // leader is picked among judgeable members only: comparing a 500-iteration
  // trajectory against one that just started is noise, not racing.
  std::size_t live = 0;
  const MemberProgress* leader = nullptr;
  for (const MemberProgress& m : members) {
    if (m.terminal) continue;
    ++live;
    if (!m.has_progress || m.iter < policy.min_iter) continue;
    if (leader == nullptr || m.hpwl < leader->hpwl) leader = &m;
  }
  if (leader == nullptr) return victims;

  // Strict laggard: behind the leader on BOTH metrics. HPWL alone is not
  // enough mid-run (a slower-spreading member can show lower wirelength while
  // being far less legal), so the overflow gap must agree before anyone dies.
  std::vector<const MemberProgress*> candidates;
  for (const MemberProgress& m : members) {
    if (m.terminal || !m.has_progress || m.iter < policy.min_iter) continue;
    if (m.id == leader->id) continue;
    if (m.hpwl > leader->hpwl * policy.hpwl_margin &&
        m.overflow > leader->overflow + policy.overflow_slack) {
      candidates.push_back(&m);
    }
  }

  // Worst-first, and stop before the survivor floor. Ties break on id so the
  // decision is deterministic for a fixed set of samples.
  std::sort(candidates.begin(), candidates.end(),
            [](const MemberProgress* a, const MemberProgress* b) {
              if (a->hpwl != b->hpwl) return a->hpwl > b->hpwl;
              return a->id < b->id;
            });
  const std::size_t floor = std::max<std::size_t>(policy.min_survivors, 1);
  for (const MemberProgress* m : candidates) {
    if (live <= floor) break;
    victims.push_back(m->id);
    --live;
  }
  return victims;
}

}  // namespace xplace::server
