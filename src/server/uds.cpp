#include "server/uds.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/export.h"
#include "util/logging.h"

namespace xplace::server {

namespace {

int make_socket() { return ::socket(AF_UNIX, SOCK_STREAM, 0); }

bool fill_addr(const std::string& path, sockaddr_un* addr) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) return false;
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// ---------------------------------------------------------------------------
// UdsStream
// ---------------------------------------------------------------------------

UdsStream& UdsStream::operator=(UdsStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
    reader_ = std::move(other.reader_);
  }
  return *this;
}

UdsStream UdsStream::connect(const std::string& socket_path) {
  sockaddr_un addr;
  if (!fill_addr(socket_path, &addr)) return UdsStream();
  const int fd = make_socket();
  if (fd < 0) return UdsStream();
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return UdsStream();
  }
  return UdsStream(fd);
}

void UdsStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool UdsStream::write_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool UdsStream::read_line(std::string* line, bool* oversized) {
  *oversized = false;
  while (true) {
    switch (reader_.next(line)) {
      case LineReader::Pop::kLine:
        return true;
      case LineReader::Pop::kOversized:
        *oversized = true;
        return true;
      case LineReader::Pop::kNeedMore:
        break;
    }
    if (fd_ < 0) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    reader_.feed(chunk, static_cast<std::size_t>(n));
  }
}

// ---------------------------------------------------------------------------
// Daemon side
// ---------------------------------------------------------------------------

namespace {

/// Shared accept-loop state so any connection's `shutdown` request can
/// unblock accept(), plus the set of live connection fds so daemon exit can
/// unblock handlers parked in recv() on idle clients.
struct ServeState {
  std::atomic<bool> stopping{false};
  int listen_fd = -1;
  std::mutex mutex;
  std::vector<int> live_fds;

  void track(int fd) {
    std::lock_guard<std::mutex> lock(mutex);
    live_fds.push_back(fd);
  }
  /// Handlers untrack BEFORE the fd is closed, so kick_all() can never
  /// touch a recycled descriptor.
  void untrack(int fd) {
    std::lock_guard<std::mutex> lock(mutex);
    live_fds.erase(std::remove(live_fds.begin(), live_fds.end(), fd),
                   live_fds.end());
  }
  void kick_all() {
    std::lock_guard<std::mutex> lock(mutex);
    for (const int fd : live_fds) ::shutdown(fd, SHUT_RDWR);
  }
};

void stream_events(PlacementServer& server, UdsStream& stream,
                   const Request& req) {
  const double deadline = steady_seconds() + std::max(0.0, req.timeout_s);
  std::uint64_t from = req.from_seq;
  std::uint64_t dropped = 0;
  bool terminal = false;
  while (true) {
    const double remaining = deadline - steady_seconds();
    const auto batch =
        server.events(req.id, from, std::clamp(remaining, 0.0, 0.5));
    if (!batch) {
      stream.write_line(make_error("unknown or evicted job id"));
      return;
    }
    for (const JobEvent& ev : batch->events) {
      json::Object o;
      o.emplace_back("event", json::Value(event_to_json(ev)));
      if (!stream.write_line(json::Value(std::move(o)).dump())) return;
    }
    from = batch->next_seq;
    dropped = batch->dropped;
    terminal = batch->terminal;
    if (terminal || remaining <= 0) break;
  }
  json::Object done;
  done.emplace_back("terminal", json::Value(terminal));
  done.emplace_back("next", from);
  done.emplace_back("dropped", dropped);
  stream.write_line(make_ok(std::move(done)));
}

json::Object stats_to_json(const PlacementServer::Stats& s) {
  json::Object o;
  o.emplace_back("submitted", s.submitted);
  o.emplace_back("rejected", s.rejected);
  o.emplace_back("completed", s.completed);
  o.emplace_back("cancelled", s.cancelled);
  o.emplace_back("failed", s.failed);
  o.emplace_back("shed", s.shed);
  o.emplace_back("retries", s.retries);
  o.emplace_back("recovered", s.recovered);
  o.emplace_back("retry_pending", static_cast<std::uint64_t>(s.retry_pending));
  json::Object journal;
  journal.emplace_back("active", json::Value(s.journal_active));
  journal.emplace_back("degraded", json::Value(s.journal_degraded));
  journal.emplace_back("bytes", s.journal_bytes);
  journal.emplace_back("records", s.journal_records);
  o.emplace_back("journal", json::Value(std::move(journal)));
  o.emplace_back("queued", static_cast<std::uint64_t>(s.queued));
  o.emplace_back("running", static_cast<std::uint64_t>(s.running));
  o.emplace_back("queue_capacity", static_cast<std::uint64_t>(s.queue_capacity));
  o.emplace_back("max_concurrency",
                 static_cast<std::uint64_t>(s.max_concurrency));
  o.emplace_back("thread_budget", static_cast<std::uint64_t>(s.thread_budget));
  o.emplace_back("threads_leased",
                 static_cast<std::uint64_t>(s.threads_leased));
  o.emplace_back("accepting", json::Value(s.accepting));
  o.emplace_back("events_dropped", s.events_dropped);
  o.emplace_back("deadline_missed", s.deadline_missed);
  const auto latency = [](const PlacementServer::LatencySummary& l) {
    json::Object o;
    o.emplace_back("p50", l.p50);
    o.emplace_back("p95", l.p95);
    o.emplace_back("p99", l.p99);
    o.emplace_back("count", l.count);
    return o;
  };
  json::Object lat;
  lat.emplace_back("queue_wait_s", json::Value(latency(s.queue_wait)));
  lat.emplace_back("run_s", json::Value(latency(s.run)));
  lat.emplace_back("e2e_s", json::Value(latency(s.e2e)));
  o.emplace_back("latency", json::Value(std::move(lat)));
  json::Object design;
  design.emplace_back("parses", s.design_parses);
  design.emplace_back("cache_hits", s.design_cache_hits);
  design.emplace_back("cache_evictions", s.design_cache_evictions);
  design.emplace_back("resident", static_cast<std::uint64_t>(s.designs_resident));
  design.emplace_back("resident_bytes",
                      static_cast<std::uint64_t>(s.design_resident_bytes));
  o.emplace_back("design", json::Value(std::move(design)));
  o.emplace_back("batches", s.batches);
  o.emplace_back("dedup_hits", s.dedup_hits);
  o.emplace_back("portfolios", static_cast<std::uint64_t>(s.portfolios));
  o.emplace_back("portfolio_kills", s.portfolio_kills);
  return o;
}

json::Object design_to_json(const DesignStore::Entry& e) {
  json::Object o;
  o.emplace_back("design", hash_to_hex(e.hash));
  o.emplace_back("source", e.source);
  o.emplace_back("name", e.name);
  o.emplace_back("cells", static_cast<std::uint64_t>(e.cells));
  o.emplace_back("nets", static_cast<std::uint64_t>(e.nets));
  o.emplace_back("bytes", static_cast<std::uint64_t>(e.resident_bytes));
  o.emplace_back("resident", json::Value(e.resident));
  o.emplace_back("hits", e.hits);
  o.emplace_back("pins", static_cast<std::uint64_t>(e.pins));
  return o;
}

json::Object batch_to_json(const PlacementServer::BatchStatus& b) {
  json::Object o;
  o.emplace_back("id", b.id);
  o.emplace_back("design", hash_to_hex(b.design_hash));
  if (!b.label.empty()) o.emplace_back("label", b.label);
  json::Array jobs;
  for (const auto& j : b.jobs) {
    json::Object jo;
    jo.emplace_back("id", j.id);
    jo.emplace_back("dedup", json::Value(j.deduped));
    jobs.emplace_back(std::move(jo));
  }
  o.emplace_back("jobs", json::Value(std::move(jobs)));
  o.emplace_back("queued", static_cast<std::uint64_t>(b.queued));
  o.emplace_back("running", static_cast<std::uint64_t>(b.running));
  o.emplace_back("done", static_cast<std::uint64_t>(b.done));
  o.emplace_back("cancelled", static_cast<std::uint64_t>(b.cancelled));
  o.emplace_back("failed", static_cast<std::uint64_t>(b.failed));
  o.emplace_back("shed", static_cast<std::uint64_t>(b.shed));
  o.emplace_back("all_terminal", json::Value(b.all_terminal));
  if (b.best_job != 0) {
    o.emplace_back("best_hpwl", b.best_hpwl);
    o.emplace_back("best_job", b.best_job);
  }
  return o;
}

json::Object portfolio_to_json(const PlacementServer::PortfolioStatus& p) {
  json::Object o;
  o.emplace_back("id", p.id);
  o.emplace_back("batch", p.batch_id);
  o.emplace_back("design", hash_to_hex(p.design_hash));
  if (!p.label.empty()) o.emplace_back("label", p.label);
  o.emplace_back("base_seed", p.base_seed);
  json::Array jobs;
  for (const auto& j : p.jobs) {
    json::Object jo;
    jo.emplace_back("id", j.id);
    jo.emplace_back("dedup", json::Value(j.deduped));
    jobs.emplace_back(std::move(jo));
  }
  o.emplace_back("jobs", json::Value(std::move(jobs)));
  o.emplace_back("queued", static_cast<std::uint64_t>(p.queued));
  o.emplace_back("running", static_cast<std::uint64_t>(p.running));
  o.emplace_back("done", static_cast<std::uint64_t>(p.done));
  o.emplace_back("cancelled", static_cast<std::uint64_t>(p.cancelled));
  o.emplace_back("failed", static_cast<std::uint64_t>(p.failed));
  o.emplace_back("shed", static_cast<std::uint64_t>(p.shed));
  o.emplace_back("killed", static_cast<std::uint64_t>(p.killed));
  o.emplace_back("all_terminal", json::Value(p.all_terminal));
  if (p.winner != 0) {
    o.emplace_back("winner", p.winner);
    o.emplace_back("winner_hpwl", p.winner_hpwl);
  }
  if (p.deadline_s > 0) o.emplace_back("deadline_s", p.deadline_s);
  return o;
}

void handle_connection(PlacementServer& server, ServeState& state, int fd) {
  state.track(fd);
  UdsStream stream(fd);
  const struct Untrack {
    ServeState& state;
    int fd;
    ~Untrack() { state.untrack(fd); }
  } untrack{state, fd};  // runs before ~UdsStream closes the fd
  std::string line;
  bool oversized = false;
  while (stream.read_line(&line, &oversized)) {
    if (oversized) {
      stream.write_line(make_error("line exceeds " +
                                   std::to_string(kMaxLineBytes) + " bytes"));
      continue;
    }
    if (line.empty()) continue;

    Request req;
    std::string error;
    if (!parse_request(line, &req, &error)) {
      stream.write_line(make_error(error));
      continue;
    }

    switch (req.cmd) {
      case Command::kSubmit: {
        const auto out = server.submit(req.spec);
        if (!out.ok) {
          stream.write_line(make_error(out.error));
          break;
        }
        json::Object o;
        o.emplace_back("id", out.id);
        stream.write_line(make_ok(std::move(o)));
        break;
      }
      case Command::kStatus:
      case Command::kResult: {
        const bool block = req.cmd == Command::kResult && req.wait;
        const auto rec = block ? server.wait(req.id, req.timeout_s)
                               : server.status(req.id);
        if (!rec) {
          stream.write_line(make_error("unknown or evicted job id"));
          break;
        }
        stream.write_line(make_ok(job_to_json(*rec)));
        break;
      }
      case Command::kCancel: {
        std::string why;
        if (server.cancel(req.id, &why)) {
          stream.write_line(make_ok({}));
        } else {
          stream.write_line(make_error(why));
        }
        break;
      }
      case Command::kEvents:
        stream_events(server, stream, req);
        break;
      case Command::kStats:
        stream.write_line(make_ok(stats_to_json(server.stats())));
        break;
      case Command::kMetrics: {
        // Scrape surface (DESIGN.md §12): the whole Prometheus exposition of
        // the global registry as one response field.
        json::Object o;
        o.emplace_back("metrics",
                       telemetry::to_prometheus(telemetry::Registry::global()));
        stream.write_line(make_ok(std::move(o)));
        break;
      }
      case Command::kUploadDesign: {
        const auto out = server.upload_design(req.spec);
        if (!out.ok) {
          stream.write_line(make_error(out.error));
          break;
        }
        json::Object o;
        o.emplace_back("design", hash_to_hex(out.hash));
        o.emplace_back("name", out.name);
        o.emplace_back("cells", static_cast<std::uint64_t>(out.cells));
        o.emplace_back("nets", static_cast<std::uint64_t>(out.nets));
        o.emplace_back("bytes", static_cast<std::uint64_t>(out.bytes));
        o.emplace_back("cached", json::Value(out.cached));
        stream.write_line(make_ok(std::move(o)));
        break;
      }
      case Command::kListDesigns: {
        json::Array designs;
        for (const auto& e : server.list_designs()) {
          designs.emplace_back(design_to_json(e));
        }
        json::Object o;
        o.emplace_back("designs", json::Value(std::move(designs)));
        stream.write_line(make_ok(std::move(o)));
        break;
      }
      case Command::kEvictDesign: {
        std::string why;
        if (server.evict_design(req.spec.design_hash, &why)) {
          stream.write_line(make_ok({}));
        } else {
          stream.write_line(make_error(why));
        }
        break;
      }
      case Command::kSubmitBatch: {
        const auto out = server.submit_batch(req.spec, req.configs);
        if (!out.ok) {
          stream.write_line(make_error(out.error));
          break;
        }
        json::Object o;
        o.emplace_back("batch", out.batch_id);
        o.emplace_back("design", hash_to_hex(out.design_hash));
        json::Array jobs;
        for (const auto& j : out.jobs) {
          json::Object jo;
          jo.emplace_back("id", j.id);
          jo.emplace_back("dedup", json::Value(j.deduped));
          jobs.emplace_back(std::move(jo));
        }
        o.emplace_back("jobs", json::Value(std::move(jobs)));
        stream.write_line(make_ok(std::move(o)));
        break;
      }
      case Command::kBatchStatus:
      case Command::kBatchResult: {
        const bool block = req.cmd == Command::kBatchResult && req.wait;
        const auto batch = block ? server.batch_wait(req.id, req.timeout_s)
                                 : server.batch_status(req.id);
        if (!batch) {
          stream.write_line(make_error("unknown batch id"));
          break;
        }
        json::Object o;
        o.emplace_back("batch", json::Value(batch_to_json(*batch)));
        if (req.cmd == Command::kBatchResult) {
          json::Array jobs;
          for (const auto& j : batch->jobs) {
            if (const auto rec = server.status(j.id)) {
              jobs.emplace_back(job_to_json(*rec));
            }
          }
          o.emplace_back("jobs", json::Value(std::move(jobs)));
        }
        stream.write_line(make_ok(std::move(o)));
        break;
      }
      case Command::kBatchCancel: {
        std::size_t cancelled = 0;
        std::string why;
        if (!server.batch_cancel(req.id, &cancelled, &why)) {
          stream.write_line(make_error(why));
          break;
        }
        json::Object o;
        o.emplace_back("cancelled", static_cast<std::uint64_t>(cancelled));
        stream.write_line(make_ok(std::move(o)));
        break;
      }
      case Command::kSubmitPortfolio: {
        // Racer policy: server default with any per-request overrides.
        RacePolicy policy = server.config().portfolio_policy;
        if (req.kill_min_iter >= 0) policy.min_iter = req.kill_min_iter;
        if (req.kill_margin > 0) policy.hpwl_margin = req.kill_margin;
        if (req.kill_slack != kNoSlackOverride) {
          policy.overflow_slack = req.kill_slack;
        }
        if (req.no_kill) policy.no_kill = true;
        const auto out = server.submit_portfolio(req.spec, req.k,
                                                 req.spec.deadline_s, policy);
        if (!out.ok) {
          stream.write_line(make_error(out.error));
          break;
        }
        json::Object o;
        o.emplace_back("portfolio", out.portfolio_id);
        o.emplace_back("batch", out.batch_id);
        o.emplace_back("design", hash_to_hex(out.design_hash));
        json::Array jobs;
        for (const auto& j : out.jobs) {
          json::Object jo;
          jo.emplace_back("id", j.id);
          jo.emplace_back("dedup", json::Value(j.deduped));
          jobs.emplace_back(std::move(jo));
        }
        o.emplace_back("jobs", json::Value(std::move(jobs)));
        stream.write_line(make_ok(std::move(o)));
        break;
      }
      case Command::kPortfolioStatus:
      case Command::kPortfolioResult: {
        const bool block = req.cmd == Command::kPortfolioResult && req.wait;
        const auto p = block ? server.portfolio_wait(req.id, req.timeout_s)
                             : server.portfolio_status(req.id);
        if (!p) {
          stream.write_line(make_error("unknown portfolio id"));
          break;
        }
        json::Object o;
        o.emplace_back("portfolio", json::Value(portfolio_to_json(*p)));
        if (req.cmd == Command::kPortfolioResult) {
          if (p->winner != 0) {
            if (const auto rec = server.status(p->winner)) {
              o.emplace_back("winner", json::Value(job_to_json(*rec)));
            }
          }
          json::Array jobs;
          for (const auto& j : p->jobs) {
            if (const auto rec = server.status(j.id)) {
              jobs.emplace_back(job_to_json(*rec));
            }
          }
          o.emplace_back("jobs", json::Value(std::move(jobs)));
        }
        stream.write_line(make_ok(std::move(o)));
        break;
      }
      case Command::kShutdown: {
        XP_INFO("shutdown requested over socket (drain=%d)",
                req.drain ? 1 : 0);
        server.shutdown(req.drain);  // blocks until workers exit
        json::Object o;
        o.emplace_back("drained", json::Value(req.drain));
        stream.write_line(make_ok(std::move(o)));
        state.stopping.store(true);
        ::shutdown(state.listen_fd, SHUT_RDWR);  // unblock accept()
        return;
      }
    }
  }
}

}  // namespace

bool serve(PlacementServer& server, const std::string& socket_path) {
  sockaddr_un addr;
  if (!fill_addr(socket_path, &addr)) {
    XP_ERROR("invalid socket path '%s' (max %zu bytes)", socket_path.c_str(),
             sizeof(addr.sun_path) - 1);
    return false;
  }
  const int listen_fd = make_socket();
  if (listen_fd < 0) {
    XP_ERROR("socket(): %s", std::strerror(errno));
    return false;
  }
  ::unlink(socket_path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    XP_ERROR("bind/listen on '%s': %s", socket_path.c_str(),
             std::strerror(errno));
    ::close(listen_fd);
    return false;
  }
  XP_INFO("listening on %s", socket_path.c_str());

  ServeState state;
  state.listen_fd = listen_fd;
  std::vector<std::thread> handlers;

  while (!state.stopping.load()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (shutdown command) or hard error
    }
    handlers.emplace_back(
        [&server, &state, fd] { handle_connection(server, state, fd); });
  }

  state.kick_all();  // unblock handlers parked on idle connections
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  XP_INFO("daemon exiting");
  return true;
}

}  // namespace xplace::server
