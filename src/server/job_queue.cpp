#include "server/job_queue.h"

#include <algorithm>

namespace xplace::server {

bool JobQueue::before(const QueuedJob& a, const QueuedJob& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.seq < b.seq;
}

bool JobQueue::push(QueuedJob job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || entries_.size() >= capacity_) return false;
    job.seq = next_seq_++;
    entries_.push_back(job);
  }
  cv_.notify_one();
  return true;
}

bool JobQueue::pop(QueuedJob* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return !entries_.empty() || closed_; });
  if (entries_.empty()) return false;  // closed and drained
  auto best = entries_.begin();
  for (auto it = best + 1; it != entries_.end(); ++it) {
    if (before(*it, *best)) best = it;
  }
  *out = *best;
  entries_.erase(best);
  return true;
}

bool JobQueue::remove(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [id](const QueuedJob& j) { return j.id == id; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

bool JobQueue::weakest(QueuedJob* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.empty()) return false;
  auto worst = entries_.begin();
  for (auto it = worst + 1; it != entries_.end(); ++it) {
    if (before(*worst, *it)) worst = it;
  }
  *out = *worst;
  return true;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::vector<QueuedJob> JobQueue::drain() {
  std::vector<QueuedJob> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.swap(entries_);
  }
  cv_.notify_all();
  return out;
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace xplace::server
