#include "server/recovery.h"

#include <algorithm>
#include <cstring>

namespace xplace::server {

namespace {

// checkpoint_io-style little-endian scalar/string codec over std::string.
template <typename T>
void put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
bool get(const std::string& buf, std::size_t* pos, T* out) {
  if (*pos + sizeof(T) > buf.size()) return false;
  std::memcpy(out, buf.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void put_str(std::string& out, const std::string& s) {
  put<std::uint32_t>(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

bool get_str(const std::string& buf, std::size_t* pos, std::string* out) {
  std::uint32_t len = 0;
  if (!get(buf, pos, &len)) return false;
  if (*pos + len > buf.size()) return false;
  out->assign(buf, *pos, len);
  *pos += len;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

std::string encode_submit(const JobSpec& spec, int attempt) {
  std::string out;
  put_str(out, spec.aux);
  put<std::int64_t>(out, static_cast<std::int64_t>(spec.demo_cells));
  put<std::uint64_t>(out, spec.demo_seed);
  put<std::int32_t>(out, spec.max_iters);
  put<std::int32_t>(out, spec.grid);
  put<std::int32_t>(out, spec.threads);
  put<std::uint8_t>(out, spec.full_flow ? 1 : 0);
  put<std::int32_t>(out, spec.priority);
  put<double>(out, spec.deadline_s);
  put_str(out, spec.label);
  put<std::int32_t>(out, attempt);
  // Design-store / sweep fields (appended; decode reads them symmetrically —
  // startup compaction rewrites the journal with the running binary's codec,
  // so there is no cross-version payload to worry about).
  put<std::uint64_t>(out, spec.design_hash);
  put<std::uint64_t>(out, spec.seed);
  put<double>(out, spec.target_density);
  put<double>(out, spec.lambda_init);
  put<std::uint64_t>(out, spec.batch_id);
  put<std::uint8_t>(out, spec.dedup ? 1 : 0);
  // Portfolio / perturbed-restart fields (appended, same compaction argument).
  put<std::uint64_t>(out, spec.portfolio_id);
  put<double>(out, spec.init_noise_scale);
  put<double>(out, spec.gamma_scale);
  put<double>(out, spec.lambda_scale);
  return out;
}

bool decode_submit(const std::string& payload, JobSpec* spec, int* attempt) {
  std::size_t pos = 0;
  std::int64_t cells = 0;
  std::uint8_t full = 0;
  std::int32_t max_iters = 0, grid = 0, threads = 0, prio = 0, att = 0;
  if (!get_str(payload, &pos, &spec->aux)) return false;
  if (!get(payload, &pos, &cells)) return false;
  if (!get(payload, &pos, &spec->demo_seed)) return false;
  if (!get(payload, &pos, &max_iters)) return false;
  if (!get(payload, &pos, &grid)) return false;
  if (!get(payload, &pos, &threads)) return false;
  if (!get(payload, &pos, &full)) return false;
  if (!get(payload, &pos, &prio)) return false;
  if (!get(payload, &pos, &spec->deadline_s)) return false;
  if (!get_str(payload, &pos, &spec->label)) return false;
  if (!get(payload, &pos, &att)) return false;
  std::uint8_t dedup = 0;
  if (!get(payload, &pos, &spec->design_hash)) return false;
  if (!get(payload, &pos, &spec->seed)) return false;
  if (!get(payload, &pos, &spec->target_density)) return false;
  if (!get(payload, &pos, &spec->lambda_init)) return false;
  if (!get(payload, &pos, &spec->batch_id)) return false;
  if (!get(payload, &pos, &dedup)) return false;
  if (!get(payload, &pos, &spec->portfolio_id)) return false;
  if (!get(payload, &pos, &spec->init_noise_scale)) return false;
  if (!get(payload, &pos, &spec->gamma_scale)) return false;
  if (!get(payload, &pos, &spec->lambda_scale)) return false;
  spec->dedup = dedup != 0;
  spec->demo_cells = static_cast<long>(cells);
  spec->max_iters = max_iters;
  spec->grid = grid;
  spec->threads = threads;
  spec->full_flow = full != 0;
  spec->priority = prio;
  *attempt = att;
  return true;
}

std::string encode_finish(const FinishInfo& info) {
  std::string out;
  put<std::int32_t>(out, static_cast<std::int32_t>(info.state));
  put<std::int32_t>(out, static_cast<std::int32_t>(info.stop_reason));
  put<double>(out, info.hpwl);
  put<double>(out, info.overflow);
  put<std::int32_t>(out, info.iterations);
  put<double>(out, info.gp_seconds);
  put<double>(out, info.dp_hpwl);
  put<std::uint8_t>(out, info.legalized ? 1 : 0);
  put_str(out, info.error);
  return out;
}

bool decode_finish(const std::string& payload, FinishInfo* info) {
  std::size_t pos = 0;
  std::int32_t state = 0, reason = 0, iters = 0;
  std::uint8_t legal = 0;
  if (!get(payload, &pos, &state)) return false;
  if (!get(payload, &pos, &reason)) return false;
  if (!get(payload, &pos, &info->hpwl)) return false;
  if (!get(payload, &pos, &info->overflow)) return false;
  if (!get(payload, &pos, &iters)) return false;
  if (!get(payload, &pos, &info->gp_seconds)) return false;
  if (!get(payload, &pos, &info->dp_hpwl)) return false;
  if (!get(payload, &pos, &legal)) return false;
  if (!get_str(payload, &pos, &info->error)) return false;
  info->state = static_cast<JobState>(state);
  info->stop_reason = static_cast<core::StopReason>(reason);
  info->iterations = iters;
  info->legalized = legal != 0;
  return true;
}

std::string encode_checkpoint(int next_iter, const std::string& path) {
  std::string out;
  put<std::int32_t>(out, next_iter);
  put_str(out, path);
  return out;
}

bool decode_checkpoint(const std::string& payload, int* next_iter,
                       std::string* path) {
  std::size_t pos = 0;
  std::int32_t iter = 0;
  if (!get(payload, &pos, &iter)) return false;
  if (!get_str(payload, &pos, path)) return false;
  *next_iter = iter;
  return true;
}

std::string encode_retry(const RetryInfo& info) {
  std::string out;
  put<std::int32_t>(out, info.attempt);
  put<double>(out, info.backoff_s);
  put_str(out, info.reason);
  return out;
}

bool decode_retry(const std::string& payload, RetryInfo* info) {
  std::size_t pos = 0;
  std::int32_t att = 0;
  if (!get(payload, &pos, &att)) return false;
  if (!get(payload, &pos, &info->backoff_s)) return false;
  if (!get_str(payload, &pos, &info->reason)) return false;
  info->attempt = att;
  return true;
}

std::string encode_design_ref(const DesignRefInfo& info) {
  std::string out;
  put<std::uint8_t>(out, info.demo ? 1 : 0);
  put_str(out, info.aux);
  put<std::uint64_t>(out, info.cells);
  put<std::uint64_t>(out, info.seed);
  return out;
}

bool decode_design_ref(const std::string& payload, DesignRefInfo* info) {
  std::size_t pos = 0;
  std::uint8_t demo = 0;
  if (!get(payload, &pos, &demo)) return false;
  if (!get_str(payload, &pos, &info->aux)) return false;
  if (!get(payload, &pos, &info->cells)) return false;
  if (!get(payload, &pos, &info->seed)) return false;
  info->demo = demo != 0;
  return true;
}

std::string encode_batch(const BatchInfo& info) {
  std::string out;
  put<std::uint64_t>(out, info.design_hash);
  put_str(out, info.label);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(info.job_ids.size()));
  for (std::size_t i = 0; i < info.job_ids.size(); ++i) {
    put<std::uint64_t>(out, info.job_ids[i]);
    put<std::uint8_t>(out, i < info.deduped.size() ? info.deduped[i] : 0);
  }
  return out;
}

bool decode_batch(const std::string& payload, BatchInfo* info) {
  std::size_t pos = 0;
  std::uint32_t count = 0;
  if (!get(payload, &pos, &info->design_hash)) return false;
  if (!get_str(payload, &pos, &info->label)) return false;
  if (!get(payload, &pos, &count)) return false;
  info->job_ids.clear();
  info->deduped.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t id = 0;
    std::uint8_t dedup = 0;
    if (!get(payload, &pos, &id)) return false;
    if (!get(payload, &pos, &dedup)) return false;
    info->job_ids.push_back(id);
    info->deduped.push_back(dedup);
  }
  return true;
}

std::string encode_portfolio(const PortfolioInfo& info) {
  std::string out;
  put<std::uint64_t>(out, info.batch_id);
  put<std::uint64_t>(out, info.design_hash);
  put<std::uint64_t>(out, info.base_seed);
  put<std::uint32_t>(out, info.k);
  put<double>(out, info.deadline_s);
  put_str(out, info.label);
  put<std::int32_t>(out, info.min_iter);
  put<double>(out, info.hpwl_margin);
  put<double>(out, info.overflow_slack);
  put<std::uint8_t>(out, info.no_kill);
  return out;
}

bool decode_portfolio(const std::string& payload, PortfolioInfo* info) {
  std::size_t pos = 0;
  if (!get(payload, &pos, &info->batch_id)) return false;
  if (!get(payload, &pos, &info->design_hash)) return false;
  if (!get(payload, &pos, &info->base_seed)) return false;
  if (!get(payload, &pos, &info->k)) return false;
  if (!get(payload, &pos, &info->deadline_s)) return false;
  if (!get_str(payload, &pos, &info->label)) return false;
  if (!get(payload, &pos, &info->min_iter)) return false;
  if (!get(payload, &pos, &info->hpwl_margin)) return false;
  if (!get(payload, &pos, &info->overflow_slack)) return false;
  if (!get(payload, &pos, &info->no_kill)) return false;
  return true;
}

// ---------------------------------------------------------------------------
// Recovery planning
// ---------------------------------------------------------------------------

RecoveryPlan build_recovery_plan(const io::JournalReplay& replay) {
  RecoveryPlan plan;
  plan.torn_tail = replay.torn_tail;
  plan.corrupt = replay.corrupt;
  plan.records = replay.records.size();

  const auto find = [&plan](std::uint64_t id) -> RecoveredJob* {
    for (RecoveredJob& j : plan.jobs) {
      if (j.id == id) return &j;
    }
    return nullptr;
  };

  for (const io::JournalRecord& rec : replay.records) {
    const auto type = static_cast<JournalEvent>(rec.type);
    // Non-job records reuse the job_id slot for other identities (design
    // hash, batch id) — they must not poison job-id allocation.
    if (type != JournalEvent::kDesignRef && type != JournalEvent::kBatch &&
        type != JournalEvent::kPortfolio &&
        type != JournalEvent::kCleanShutdown) {
      plan.max_id = std::max(plan.max_id, rec.job_id);
    }
    switch (type) {
      case JournalEvent::kSubmit: {
        RecoveredJob job;
        job.id = rec.job_id;
        job.submit_time_s = rec.time_s;
        if (!decode_submit(rec.payload, &job.spec, &job.attempt)) break;
        if (RecoveredJob* existing = find(rec.job_id)) {
          *existing = std::move(job);  // duplicate id: newest submit wins
        } else {
          plan.jobs.push_back(std::move(job));
        }
        break;
      }
      case JournalEvent::kStart:
        if (RecoveredJob* job = find(rec.job_id)) job->was_running = true;
        break;
      case JournalEvent::kCheckpoint:
        if (RecoveredJob* job = find(rec.job_id)) {
          decode_checkpoint(rec.payload, &job->checkpoint_iter,
                            &job->checkpoint_path);
        }
        break;
      case JournalEvent::kFinish:
        if (RecoveredJob* job = find(rec.job_id)) {
          if (decode_finish(rec.payload, &job->finish)) {
            job->terminal = true;
            job->was_running = false;
          }
        }
        break;
      case JournalEvent::kCancel:
        if (RecoveredJob* job = find(rec.job_id)) job->cancel_requested = true;
        break;
      case JournalEvent::kRetry:
        if (RecoveredJob* job = find(rec.job_id)) {
          RetryInfo info;
          if (!decode_retry(rec.payload, &info)) break;
          JobAttempt att;
          att.number = info.attempt - 1;
          att.outcome = info.reason;
          att.backoff_s = info.backoff_s;
          job->attempts.push_back(std::move(att));
          job->attempt = info.attempt;
          job->was_running = false;
          job->terminal = false;
          // A retried attempt never resumes the diverged trajectory's spill.
          job->checkpoint_path.clear();
          job->checkpoint_iter = 0;
        }
        break;
      case JournalEvent::kCleanShutdown:
        break;  // positional: only meaningful as the final record
      case JournalEvent::kDesignRef: {
        DesignRefInfo info;
        if (!decode_design_ref(rec.payload, &info)) break;
        bool seen = false;
        for (const RecoveredDesign& d : plan.designs) {
          if (d.hash == rec.job_id) {
            seen = true;
            break;
          }
        }
        if (!seen) plan.designs.push_back(RecoveredDesign{rec.job_id, std::move(info)});
        break;
      }
      case JournalEvent::kBatch: {
        BatchInfo info;
        if (!decode_batch(rec.payload, &info)) break;
        plan.max_batch_id = std::max(plan.max_batch_id, rec.job_id);
        bool seen = false;
        for (RecoveredBatch& b : plan.batches) {
          if (b.id == rec.job_id) {
            b.info = std::move(info);  // duplicate id: newest wins
            seen = true;
            break;
          }
        }
        if (!seen) {
          plan.batches.push_back(RecoveredBatch{rec.job_id, std::move(info), rec.time_s});
        }
        break;
      }
      case JournalEvent::kPortfolio: {
        PortfolioInfo info;
        if (!decode_portfolio(rec.payload, &info)) break;
        plan.max_portfolio_id = std::max(plan.max_portfolio_id, rec.job_id);
        bool seen = false;
        for (RecoveredPortfolio& p : plan.portfolios) {
          if (p.id == rec.job_id) {
            p.info = std::move(info);  // duplicate id: newest wins
            seen = true;
            break;
          }
        }
        if (!seen) {
          plan.portfolios.push_back(
              RecoveredPortfolio{rec.job_id, std::move(info), rec.time_s});
        }
        break;
      }
    }
  }
  plan.clean_shutdown =
      !replay.records.empty() &&
      static_cast<JournalEvent>(replay.records.back().type) ==
          JournalEvent::kCleanShutdown;
  return plan;
}

std::vector<io::JournalRecord> compaction_records(const RecoveryPlan& plan) {
  std::vector<io::JournalRecord> out;
  // Designs first: jobs and batches reference them by hash, and recovery
  // registers sources before it re-admits any work.
  for (const RecoveredDesign& d : plan.designs) {
    io::JournalRecord rec;
    rec.type = static_cast<std::uint32_t>(JournalEvent::kDesignRef);
    rec.job_id = d.hash;
    rec.payload = encode_design_ref(d.source);
    out.push_back(std::move(rec));
  }
  for (const RecoveredJob& job : plan.jobs) {
    io::JournalRecord submit;
    submit.type = static_cast<std::uint32_t>(JournalEvent::kSubmit);
    submit.job_id = job.id;
    submit.time_s = job.submit_time_s;
    submit.payload = encode_submit(job.spec, 0);
    out.push_back(std::move(submit));
    for (const JobAttempt& att : job.attempts) {
      io::JournalRecord retry;
      retry.type = static_cast<std::uint32_t>(JournalEvent::kRetry);
      retry.job_id = job.id;
      retry.time_s = job.submit_time_s;
      RetryInfo info;
      info.attempt = att.number + 1;
      info.backoff_s = att.backoff_s;
      info.reason = att.outcome;
      retry.payload = encode_retry(info);
      out.push_back(std::move(retry));
    }
    if (job.was_running) {
      // Re-emit the start so a crash right after compaction still folds this
      // job as interrupted-while-running (its checkpoint stays the resume
      // point instead of being discarded as a stale queued-job artifact).
      io::JournalRecord start;
      start.type = static_cast<std::uint32_t>(JournalEvent::kStart);
      start.job_id = job.id;
      start.time_s = job.submit_time_s;
      out.push_back(std::move(start));
    }
    if (!job.checkpoint_path.empty()) {
      io::JournalRecord ck;
      ck.type = static_cast<std::uint32_t>(JournalEvent::kCheckpoint);
      ck.job_id = job.id;
      ck.time_s = job.submit_time_s;
      ck.payload = encode_checkpoint(job.checkpoint_iter, job.checkpoint_path);
      out.push_back(std::move(ck));
    }
    if (job.terminal) {
      io::JournalRecord fin;
      fin.type = static_cast<std::uint32_t>(JournalEvent::kFinish);
      fin.job_id = job.id;
      fin.time_s = job.submit_time_s;
      fin.payload = encode_finish(job.finish);
      out.push_back(std::move(fin));
    } else if (job.cancel_requested) {
      io::JournalRecord cancel;
      cancel.type = static_cast<std::uint32_t>(JournalEvent::kCancel);
      cancel.job_id = job.id;
      cancel.time_s = job.submit_time_s;
      out.push_back(std::move(cancel));
    }
  }
  for (const RecoveredBatch& b : plan.batches) {
    io::JournalRecord rec;
    rec.type = static_cast<std::uint32_t>(JournalEvent::kBatch);
    rec.job_id = b.id;
    rec.time_s = b.submit_time_s;
    rec.payload = encode_batch(b.info);
    out.push_back(std::move(rec));
  }
  for (const RecoveredPortfolio& p : plan.portfolios) {
    io::JournalRecord rec;
    rec.type = static_cast<std::uint32_t>(JournalEvent::kPortfolio);
    rec.job_id = p.id;
    rec.time_s = p.submit_time_s;
    rec.payload = encode_portfolio(p.info);
    out.push_back(std::move(rec));
  }
  return out;
}

}  // namespace xplace::server
