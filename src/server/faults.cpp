#include "server/faults.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "util/logging.h"

namespace xplace::server {

namespace {

bool parse_job_suffix(const std::string& item, const char* prefix,
                      std::uint64_t* out) {
  const std::size_t plen = std::char_traits<char>::length(prefix);
  if (item.rfind(prefix, 0) != 0) return false;
  const std::string num = item.substr(plen);
  try {
    std::size_t end = 0;
    const unsigned long long v = std::stoull(num, &end);
    if (end != num.size() || num.empty()) throw std::invalid_argument(num);
    *out = v;
  } catch (const std::exception&) {
    throw std::invalid_argument("fault '" + item +
                                "': job id must be a positive integer");
  }
  return true;
}

}  // namespace

bool ServeFaultPlan::crash_armed_for(std::uint64_t job_id) const {
  return std::find(crash_after_checkpoint_of.begin(),
                   crash_after_checkpoint_of.end(),
                   job_id) != crash_after_checkpoint_of.end();
}

bool ServeFaultPlan::diverge_armed_for(std::uint64_t job_id) const {
  return std::find(diverge_jobs.begin(), diverge_jobs.end(), job_id) !=
         diverge_jobs.end();
}

void ServeFaultPlan::crash_now(std::uint64_t job_id) const {
  if (crash_handler) {
    crash_handler();
    return;
  }
  XP_ERROR("injected serve_crash firing after job %llu checkpoint — _Exit(137)",
           static_cast<unsigned long long>(job_id));
  std::_Exit(137);  // no destructors, no flushes: a SIGKILL's footprint
}

ServeFaultPlan ServeFaultPlan::parse(const std::string& spec) {
  ServeFaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;

    if (item == "journal_torn") {
      plan.journal_torn = true;
      continue;
    }
    if (item == "disk_full") {
      plan.disk_full = true;
      continue;
    }
    std::uint64_t job_id = 0;
    if (parse_job_suffix(item, "serve_crash@job:", &job_id)) {
      plan.crash_after_checkpoint_of.push_back(job_id);
      continue;
    }
    if (parse_job_suffix(item, "diverge@job:", &job_id)) {
      plan.diverge_jobs.push_back(job_id);
      continue;
    }
    // Guardian-scoped item (nonfinite_grad@iter:N, ...) — the guardian's own
    // parser owns it; anything else unrecognized is also left to that parser
    // so one layer reports the error.
  }
  return plan;
}

ServeFaultPlan ServeFaultPlan::from_env() {
  const char* spec = std::getenv("XPLACE_FAULT");
  return spec != nullptr ? parse(spec) : ServeFaultPlan{};
}

}  // namespace xplace::server
