// Placement job model shared by the queue, the scheduler, and the protocol.
//
// A job is one full placement flow (GP → LG → DP, or GP only) over either a
// bookshelf .aux on disk or a synthesized demo design — exactly the two
// entry points place_bookshelf offers, so a job submitted to the daemon and
// a one-shot CLI run at the same config produce bit-identical results at a
// fixed thread count (the determinism acceptance of DESIGN.md §11).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/placer.h"

namespace xplace::server {

/// Everything a client specifies at submit time.
struct JobSpec {
  // ---- design source (exactly one) ----------------------------------------
  std::string aux;             ///< bookshelf .aux path ("" = demo)
  long demo_cells = 0;         ///< >0: synthesize like place_bookshelf --demo
  std::uint64_t demo_seed = 11;  ///< place_bookshelf's demo seed

  // ---- placement config (place_bookshelf defaults) -------------------------
  int max_iters = 1500;
  int grid = 128;
  /// Worker threads for this job's kernels; 0 = the server's per-job default.
  /// Each running job gets its own ExecutionContext so concurrent jobs never
  /// share a pool (sharing would serialize one job inline and break per-job
  /// run-to-run determinism).
  int threads = 0;
  bool full_flow = true;       ///< GP → LG → DP; false = GP only

  // ---- scheduling ----------------------------------------------------------
  int priority = 0;            ///< higher pops first
  /// Seconds from submission until the job's deadline; counts queue wait as
  /// well as runtime (a job popped after its deadline never runs). 0 = none.
  double deadline_s = 0.0;

  /// Metrics label: terminal jobs publish `serve.job.<label>.*` gauges into
  /// the global telemetry registry. Empty = "job<id>". Characters outside
  /// [A-Za-z0-9_.-] are replaced with '_'.
  std::string label;
};

enum class JobState : int {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,       ///< flow completed (converged or iteration cap)
  kCancelled = 3,  ///< cancel/deadline; result fields hold the committed
                   ///< best-snapshot placement when the job got to run
  kFailed = 4,     ///< exception (bad aux path, parse error, ...)
  kShed = 5,       ///< evicted by admission control under saturation — the
                   ///< graceful-degradation terminal state (DESIGN.md §13)
};

inline const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
    case JobState::kShed: return "shed";
  }
  return "?";
}

inline bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kCancelled ||
         s == JobState::kFailed || s == JobState::kShed;
}

/// One completed (and abandoned) run attempt of a supervised job: why it
/// ended, and the backoff the supervisor applied before the next admission.
struct JobAttempt {
  int number = 0;           ///< 0-based attempt index
  std::string outcome;      ///< "diverged", "alloc_fail", ...
  double backoff_s = 0.0;   ///< delay before the NEXT attempt was queued
  double started_s = 0.0;   ///< log::elapsed_seconds() domain; 0 = unknown
  double finished_s = 0.0;  ///< (attempts replayed from the journal keep 0)
};

/// One GP-iteration progress sample, streamed to `events` subscribers.
/// Sourced from the Recorder observer — the same numbers --record-out dumps.
struct JobEvent {
  std::uint64_t seq = 0;  ///< 0-based, monotonic per job
  int iter = 0;
  double hpwl = 0.0;
  double overflow = 0.0;
  double omega = 0.0;
};

/// Full job record: spec + lifecycle + results. Snapshot-copied out of the
/// server under its lock, so readers never see a torn record.
struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  core::StopReason stop_reason = core::StopReason::kIterCap;

  /// Telemetry trace id assigned at submit: every span the scheduler and the
  /// flow record on this job's behalf is tagged with it, so one Chrome trace
  /// holds a coherent per-job timeline (DESIGN.md §12).
  std::uint64_t trace_id = 0;
  /// Progress events evicted from this job's bounded ring so far (mirrors
  /// the per-page `dropped` count of the events verb, but survives paging).
  std::uint64_t events_dropped = 0;

  // GP results (valid once the job ran; cancelled jobs carry the committed
  // best-snapshot numbers).
  double hpwl = 0.0;
  double overflow = 0.0;
  int iterations = 0;
  double gp_seconds = 0.0;

  // Full-flow results (valid when full_flow and the job was not stopped).
  double dp_hpwl = 0.0;
  bool legalized = false;

  std::string error;       ///< kFailed/kShed diagnostic
  std::string spill_path;  ///< XPCK checkpoint path when the server spilled

  // Supervised-retry + crash-recovery lifecycle (DESIGN.md §13).
  int attempt = 0;                  ///< current 0-based attempt number
  std::vector<JobAttempt> attempts; ///< abandoned attempts, oldest first
  bool recovered = false;           ///< journal-replayed across a restart
  std::string resume_from;          ///< XPCK the current run resumed from

  // Lifecycle timestamps (log::elapsed_seconds() domain; 0 = not reached).
  double submitted_s = 0.0;
  double started_s = 0.0;
  double finished_s = 0.0;
};

}  // namespace xplace::server
