// Placement job model shared by the queue, the scheduler, and the protocol.
//
// A job is one full placement flow (GP → LG → DP, or GP only) over either a
// bookshelf .aux on disk or a synthesized demo design — exactly the two
// entry points place_bookshelf offers, so a job submitted to the daemon and
// a one-shot CLI run at the same config produce bit-identical results at a
// fixed thread count (the determinism acceptance of DESIGN.md §11).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/placer.h"

namespace xplace::server {

/// Everything a client specifies at submit time.
struct JobSpec {
  // ---- design source (exactly one) ----------------------------------------
  std::string aux;             ///< bookshelf .aux path ("" = demo)
  long demo_cells = 0;         ///< >0: synthesize like place_bookshelf --demo
  std::uint64_t demo_seed = 11;  ///< place_bookshelf's demo seed
  /// Content hash of an uploaded design (upload-design verb): non-zero
  /// selects the design store directly. Mutually exclusive with aux /
  /// demo_cells — validate_spec() rejects ambiguous sources.
  std::uint64_t design_hash = 0;

  // ---- placement config (place_bookshelf defaults) -------------------------
  int max_iters = 1500;
  int grid = 128;
  /// Sweep seed: >0 derives the placer's stochastic seeds deterministically
  /// (filler_seed = seed, init_noise_seed = seed + 1). 0 = placer defaults.
  std::uint64_t seed = 0;
  /// >0 overrides the design's target density before filler insertion.
  double target_density = 0.0;
  /// >0 overrides the λ-schedule init factor (PlacerConfig::lambda_init_factor).
  double lambda_init = 0.0;
  // Perturbed-restart knobs (portfolio members, DESIGN.md §16). All are
  // multiplicative against the placer defaults; 0 = leave the default alone.
  // They are part of the config hash, so two variants of the same design
  // dedup as distinct results.
  double init_noise_scale = 0.0;  ///< × PlacerConfig::center_init_noise
  double gamma_scale = 0.0;       ///< × PlacerConfig::gamma_base_factor
  double lambda_scale = 0.0;      ///< × PlacerConfig::lambda_init_factor
  /// Worker threads for this job's kernels; 0 = the server's per-job default.
  /// Each running job gets its own ExecutionContext so concurrent jobs never
  /// share a pool (sharing would serialize one job inline and break per-job
  /// run-to-run determinism).
  int threads = 0;
  bool full_flow = true;       ///< GP → LG → DP; false = GP only

  // ---- scheduling ----------------------------------------------------------
  int priority = 0;            ///< higher pops first
  /// Seconds from submission until the job's deadline; counts queue wait as
  /// well as runtime (a job popped after its deadline never runs). 0 = none.
  double deadline_s = 0.0;

  /// Metrics label: terminal jobs publish `serve.job.<label>.*` gauges into
  /// the global telemetry registry. Empty = "job<id>". Characters outside
  /// [A-Za-z0-9_.-] are replaced with '_'.
  std::string label;

  // ---- batching / dedup ----------------------------------------------------
  std::uint64_t batch_id = 0;  ///< owning submit-batch id (0 = standalone)
  std::uint64_t portfolio_id = 0;  ///< owning portfolio id (0 = none)
  /// Result dedup: when set, an identical (design_hash, config_hash) with a
  /// successful terminal result is served from cache instead of re-running.
  /// Default off for plain submits (soak tests rely on N identical jobs
  /// running independently); submit-batch defaults it on.
  bool dedup = false;
};

/// demo_cells admission bound: a demo bigger than this is almost certainly a
/// client bug (the generator would try to allocate tens of GiB).
inline constexpr long kMaxDemoCells = 5'000'000;

/// Spec validation shared by the protocol parser and the in-process
/// PlacementServer::submit path. Returns "" when valid. This is the fix for
/// `submit` silently preferring `aux` when both `aux` and `demo_cells` are
/// set: ambiguous sources are rejected at admission, on both entry points.
inline std::string validate_spec(const JobSpec& s) {
  int sources = 0;
  if (!s.aux.empty()) ++sources;
  if (s.demo_cells != 0) ++sources;
  if (s.design_hash != 0) ++sources;
  if (sources == 0) {
    return "job requires a design: \"aux\", \"demo_cells\" > 0, or \"design\"";
  }
  if (sources > 1) {
    return "ambiguous design source: give exactly one of \"aux\", "
           "\"demo_cells\", \"design\"";
  }
  if (s.demo_cells < 0) return "\"demo_cells\" must be positive";
  if (s.demo_cells > kMaxDemoCells) {
    return "\"demo_cells\" exceeds the " + std::to_string(kMaxDemoCells) +
           " admission bound";
  }
  if (s.max_iters <= 0) return "\"max_iters\" must be positive";
  if (s.grid <= 0) return "\"grid\" must be positive";
  if (s.deadline_s < 0.0) return "\"deadline_s\" must be non-negative";
  if (s.target_density < 0.0 || s.target_density > 1.0) {
    return "\"target_density\" must be in (0, 1]";
  }
  if (s.lambda_init < 0.0) return "\"lambda_init\" must be non-negative";
  if (s.init_noise_scale < 0.0) {
    return "\"init_noise_scale\" must be non-negative";
  }
  if (s.gamma_scale < 0.0) return "\"gamma_scale\" must be non-negative";
  if (s.lambda_scale < 0.0) return "\"lambda_scale\" must be non-negative";
  return "";
}

enum class JobState : int {
  kQueued = 0,
  kRunning = 1,
  kDone = 2,       ///< flow completed (converged or iteration cap)
  kCancelled = 3,  ///< cancel/deadline; result fields hold the committed
                   ///< best-snapshot placement when the job got to run
  kFailed = 4,     ///< exception (bad aux path, parse error, ...)
  kShed = 5,       ///< evicted by admission control under saturation — the
                   ///< graceful-degradation terminal state (DESIGN.md §13)
};

inline const char* to_string(JobState s) {
  switch (s) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kCancelled: return "cancelled";
    case JobState::kFailed: return "failed";
    case JobState::kShed: return "shed";
  }
  return "?";
}

inline bool is_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kCancelled ||
         s == JobState::kFailed || s == JobState::kShed;
}

/// One completed (and abandoned) run attempt of a supervised job: why it
/// ended, and the backoff the supervisor applied before the next admission.
struct JobAttempt {
  int number = 0;           ///< 0-based attempt index
  std::string outcome;      ///< "diverged", "alloc_fail", ...
  double backoff_s = 0.0;   ///< delay before the NEXT attempt was queued
  double started_s = 0.0;   ///< log::elapsed_seconds() domain; 0 = unknown
  double finished_s = 0.0;  ///< (attempts replayed from the journal keep 0)
};

/// One GP-iteration progress sample, streamed to `events` subscribers.
/// Sourced from the Recorder observer — the same numbers --record-out dumps.
struct JobEvent {
  std::uint64_t seq = 0;  ///< 0-based, monotonic per job
  int iter = 0;
  double hpwl = 0.0;
  double overflow = 0.0;
  double omega = 0.0;
};

/// Full job record: spec + lifecycle + results. Snapshot-copied out of the
/// server under its lock, so readers never see a torn record.
struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  core::StopReason stop_reason = core::StopReason::kIterCap;

  /// Telemetry trace id assigned at submit: every span the scheduler and the
  /// flow record on this job's behalf is tagged with it, so one Chrome trace
  /// holds a coherent per-job timeline (DESIGN.md §12).
  std::uint64_t trace_id = 0;
  /// Progress events evicted from this job's bounded ring so far (mirrors
  /// the per-page `dropped` count of the events verb, but survives paging).
  std::uint64_t events_dropped = 0;

  // GP results (valid once the job ran; cancelled jobs carry the committed
  // best-snapshot numbers).
  double hpwl = 0.0;
  double overflow = 0.0;
  int iterations = 0;
  double gp_seconds = 0.0;

  // Full-flow results (valid when full_flow and the job was not stopped).
  double dp_hpwl = 0.0;
  bool legalized = false;

  std::string error;       ///< kFailed/kShed diagnostic
  std::string spill_path;  ///< XPCK checkpoint path when the server spilled

  // Supervised-retry + crash-recovery lifecycle (DESIGN.md §13).
  int attempt = 0;                  ///< current 0-based attempt number
  std::vector<JobAttempt> attempts; ///< abandoned attempts, oldest first
  bool recovered = false;           ///< journal-replayed across a restart
  std::string resume_from;          ///< XPCK the current run resumed from

  // Lifecycle timestamps (log::elapsed_seconds() domain; 0 = not reached).
  double submitted_s = 0.0;
  double started_s = 0.0;
  double finished_s = 0.0;
};

}  // namespace xplace::server
