// Unix-domain-socket transport for the placement service.
//
// Framing is JSON lines (one request or response object per '\n'-terminated
// line, 64 KiB cap — see protocol.h). UdsStream wraps a connected
// SOCK_STREAM fd with full-write semantics and LineReader-based reads;
// serve() is the daemon side: an accept loop that binds the protocol to a
// PlacementServer, one handler thread per connection.
//
// The `events` command is the one streaming response: the daemon emits
// `{"event":{...}}` lines as GP iterations land and finishes with a
// `{"ok":true,"terminal":...}` summary line once the job is terminal or the
// request's timeout budget runs out. Every other command is one line in,
// one line out.
#pragma once

#include <cstddef>
#include <string>

#include "server/protocol.h"
#include "server/server.h"

namespace xplace::server {

/// Blocking line-framed stream over a connected AF_UNIX socket.
class UdsStream {
 public:
  UdsStream() = default;
  explicit UdsStream(int fd) : fd_(fd) {}
  ~UdsStream() { close(); }

  UdsStream(const UdsStream&) = delete;
  UdsStream& operator=(const UdsStream&) = delete;
  UdsStream(UdsStream&& other) noexcept { *this = std::move(other); }
  UdsStream& operator=(UdsStream&& other) noexcept;

  /// Client side: connect to the daemon's socket. !valid() on failure.
  static UdsStream connect(const std::string& socket_path);

  bool valid() const { return fd_ >= 0; }
  void close();

  /// Writes `line` + '\n' fully (short writes retried, SIGPIPE suppressed).
  bool write_line(const std::string& line);

  /// Next framed line. False = EOF or socket error. An oversized line (cap
  /// kMaxLineBytes) sets *oversized and returns true with *line empty —
  /// the caller answers with an error instead of dropping the connection.
  bool read_line(std::string* line, bool* oversized);

  /// Raises the read-side line cap (clients do this before `metrics`, whose
  /// one-line Prometheus payload can exceed the request-side default).
  void set_max_line(std::size_t max_line) { reader_.set_max_line(max_line); }

 private:
  int fd_ = -1;
  LineReader reader_;
};

/// Daemon accept loop: serves the JSON-lines protocol on `socket_path`
/// (unlinked and re-bound on entry) until a `shutdown` request completes.
/// Returns false when the socket cannot be bound.
bool serve(PlacementServer& server, const std::string& socket_path);

}  // namespace xplace::server
