#include "server/protocol.h"

#include <cmath>

namespace xplace::server {

// ---------------------------------------------------------------------------
// Line framing
// ---------------------------------------------------------------------------

void LineReader::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

LineReader::Pop LineReader::next(std::string* line) {
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (discarding_) {
      if (nl == std::string::npos) {
        buf_.clear();  // still inside the oversized line
        return Pop::kNeedMore;
      }
      buf_.erase(0, nl + 1);  // drop the oversized remainder, resync
      discarding_ = false;
      oversize_reported_ = false;
      continue;
    }
    if (nl == std::string::npos) {
      if (buf_.size() > max_line_) {
        // The line in progress can no longer fit: report once, then skip
        // bytes until its newline shows up.
        discarding_ = true;
        buf_.clear();
        if (!oversize_reported_) {
          oversize_reported_ = true;
          line->clear();
          return Pop::kOversized;
        }
        return Pop::kNeedMore;
      }
      return Pop::kNeedMore;
    }
    if (nl > max_line_) {
      buf_.erase(0, nl + 1);
      line->clear();
      return Pop::kOversized;
    }
    line->assign(buf_, 0, nl);
    buf_.erase(0, nl + 1);
    if (!line->empty() && line->back() == '\r') line->pop_back();
    return Pop::kLine;
  }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const char* to_string(Command cmd) {
  switch (cmd) {
    case Command::kSubmit: return "submit";
    case Command::kStatus: return "status";
    case Command::kCancel: return "cancel";
    case Command::kResult: return "result";
    case Command::kEvents: return "events";
    case Command::kStats: return "stats";
    case Command::kMetrics: return "metrics";
    case Command::kShutdown: return "shutdown";
    case Command::kUploadDesign: return "upload-design";
    case Command::kListDesigns: return "list-designs";
    case Command::kEvictDesign: return "evict-design";
    case Command::kSubmitBatch: return "submit-batch";
    case Command::kBatchStatus: return "batch-status";
    case Command::kBatchResult: return "batch-result";
    case Command::kBatchCancel: return "batch-cancel";
    case Command::kSubmitPortfolio: return "submit-portfolio";
    case Command::kPortfolioStatus: return "portfolio-status";
    case Command::kPortfolioResult: return "portfolio-result";
  }
  return "?";
}

std::string hash_to_hex(std::uint64_t hash) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[hash & 0xf];
    hash >>= 4;
  }
  return out;
}

bool hex_to_hash(const std::string& hex, std::uint64_t* out) {
  if (hex.empty() || hex.size() > 16) return false;
  std::uint64_t v = 0;
  for (char c : hex) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<std::uint64_t>(d);
  }
  *out = v;
  return true;
}

namespace {

bool command_from_string(const std::string& s, Command* out) {
  if (s == "submit") *out = Command::kSubmit;
  else if (s == "status") *out = Command::kStatus;
  else if (s == "cancel") *out = Command::kCancel;
  else if (s == "result") *out = Command::kResult;
  else if (s == "events") *out = Command::kEvents;
  else if (s == "stats") *out = Command::kStats;
  else if (s == "metrics") *out = Command::kMetrics;
  else if (s == "shutdown") *out = Command::kShutdown;
  else if (s == "upload-design") *out = Command::kUploadDesign;
  else if (s == "list-designs") *out = Command::kListDesigns;
  else if (s == "evict-design") *out = Command::kEvictDesign;
  else if (s == "submit-batch") *out = Command::kSubmitBatch;
  else if (s == "batch-status") *out = Command::kBatchStatus;
  else if (s == "batch-result") *out = Command::kBatchResult;
  else if (s == "batch-cancel") *out = Command::kBatchCancel;
  else if (s == "submit-portfolio") *out = Command::kSubmitPortfolio;
  else if (s == "portfolio-status") *out = Command::kPortfolioStatus;
  else if (s == "portfolio-result") *out = Command::kPortfolioResult;
  else return false;
  return true;
}

bool needs_id(Command cmd) {
  return cmd == Command::kStatus || cmd == Command::kCancel ||
         cmd == Command::kResult || cmd == Command::kEvents ||
         cmd == Command::kBatchStatus || cmd == Command::kBatchResult ||
         cmd == Command::kBatchCancel || cmd == Command::kPortfolioStatus ||
         cmd == Command::kPortfolioResult;
}

/// Non-negative integral number field; false (with message) on bad type or
/// a fractional/negative value.
bool get_uint(const json::Value& obj, std::string_view key,
              std::uint64_t* out, std::string* error) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return true;  // keep default
  if (!v->is_number() || v->number() < 0 ||
      v->number() != std::floor(v->number())) {
    *error = std::string(key) + " must be a non-negative integer";
    return false;
  }
  *out = static_cast<std::uint64_t>(v->number());
  return true;
}

/// Reads every JobSpec field present on `obj` into *s, leaving absent fields
/// at their current values — which is what lets submit-batch configs start
/// from the request's base fields and override per config.
bool parse_spec_fields(const json::Value& obj, JobSpec* s, std::string* error) {
  JobSpec& spec = *s;
  if (obj.has("aux")) spec.aux = obj.get_string("aux");
  spec.demo_cells =
      static_cast<long>(obj.get_number("demo_cells", spec.demo_cells));
  if (!get_uint(obj, "demo_seed", &spec.demo_seed, error)) return false;
  if (const json::Value* v = obj.find("design"); v != nullptr) {
    if (!v->is_string() || !hex_to_hash(v->str(), &spec.design_hash)) {
      *error = "\"design\" must be a hex content hash";
      return false;
    }
  }
  spec.max_iters = static_cast<int>(obj.get_number("max_iters", spec.max_iters));
  spec.grid = static_cast<int>(obj.get_number("grid", spec.grid));
  if (!get_uint(obj, "seed", &spec.seed, error)) return false;
  spec.target_density = obj.get_number("target_density", spec.target_density);
  spec.lambda_init = obj.get_number("lambda_init", spec.lambda_init);
  spec.init_noise_scale =
      obj.get_number("init_noise_scale", spec.init_noise_scale);
  spec.gamma_scale = obj.get_number("gamma_scale", spec.gamma_scale);
  spec.lambda_scale = obj.get_number("lambda_scale", spec.lambda_scale);
  spec.threads = static_cast<int>(obj.get_number("threads", spec.threads));
  spec.full_flow = obj.get_bool("full_flow", spec.full_flow);
  spec.priority = static_cast<int>(obj.get_number("priority", spec.priority));
  spec.deadline_s = obj.get_number("deadline_s", spec.deadline_s);
  if (obj.has("label")) spec.label = obj.get_string("label");
  spec.dedup = obj.get_bool("dedup", spec.dedup);
  return true;
}

}  // namespace

bool parse_request(const std::string& line, Request* out, std::string* error) {
  json::Value root;
  std::string json_error;
  if (!json::parse(line, &root, &json_error)) {
    *error = "malformed JSON (" + json_error + ")";
    return false;
  }
  if (!root.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  const std::string cmd_name = root.get_string("cmd");
  if (cmd_name.empty()) {
    *error = "missing \"cmd\" field";
    return false;
  }
  Request req;
  if (!command_from_string(cmd_name, &req.cmd)) {
    *error = "unknown command \"" + cmd_name + "\"";
    return false;
  }

  if (!get_uint(root, "id", &req.id, error)) return false;
  if (needs_id(req.cmd) && !root.has("id")) {
    *error = std::string(to_string(req.cmd)) + " requires \"id\"";
    return false;
  }
  if (!get_uint(root, "from", &req.from_seq, error)) return false;
  req.wait = root.get_bool("wait", false);
  req.timeout_s = root.get_number("timeout_s", req.timeout_s);
  req.drain = root.get_bool("drain", true);

  if (req.cmd == Command::kSubmit || req.cmd == Command::kUploadDesign ||
      req.cmd == Command::kSubmitBatch ||
      req.cmd == Command::kSubmitPortfolio) {
    if (!parse_spec_fields(root, &req.spec, error)) return false;
  }
  if (req.cmd == Command::kSubmit) {
    // One validation for both entry points: the wire path here, the
    // in-process PlacementServer::submit path inside the server — so an
    // ambiguous source (aux AND demo_cells) is rejected everywhere.
    if (std::string verr = validate_spec(req.spec); !verr.empty()) {
      *error = std::move(verr);
      return false;
    }
  }
  if (req.cmd == Command::kUploadDesign) {
    if (req.spec.design_hash != 0) {
      *error = "upload-design takes \"aux\" or \"demo_cells\", not \"design\"";
      return false;
    }
    if (std::string verr = validate_spec(req.spec); !verr.empty()) {
      *error = std::move(verr);
      return false;
    }
  }
  if (req.cmd == Command::kEvictDesign) {
    const json::Value* v = root.find("design");
    std::uint64_t hash = 0;
    if (v == nullptr || !v->is_string() || !hex_to_hash(v->str(), &hash)) {
      *error = "evict-design requires \"design\" (hex content hash)";
      return false;
    }
    req.spec.design_hash = hash;
  }
  if (req.cmd == Command::kSubmitBatch) {
    if (std::string verr = validate_spec(req.spec); !verr.empty()) {
      *error = std::move(verr);
      return false;
    }
    // Batch configs default dedup ON (the whole point of a sweep cache);
    // a plain submit keeps it off unless asked.
    req.spec.dedup = root.get_bool("dedup", true);
    const json::Value* configs = root.find("configs");
    if (configs == nullptr || !configs->is_array() ||
        configs->array().empty()) {
      *error = "submit-batch requires a non-empty \"configs\" array";
      return false;
    }
    for (std::size_t i = 0; i < configs->array().size(); ++i) {
      const json::Value& c = configs->array()[i];
      if (!c.is_object()) {
        *error = "configs[" + std::to_string(i) + "] must be an object";
        return false;
      }
      // Each config starts from the base spec and overrides; design fields
      // are resolved by the server from the batch's design, so configs may
      // not name their own source.
      if (c.has("aux") || c.has("demo_cells") || c.has("design")) {
        *error = "configs[" + std::to_string(i) +
                 "] must not name a design source (the batch's design is "
                 "shared)";
        return false;
      }
      JobSpec member = req.spec;
      if (!parse_spec_fields(c, &member, error)) return false;
      req.configs.push_back(std::move(member));
    }
  }
  if (req.cmd == Command::kSubmitPortfolio) {
    if (std::string verr = validate_spec(req.spec); !verr.empty()) {
      *error = std::move(verr);
      return false;
    }
    const json::Value* kv = root.find("k");
    if (kv == nullptr || !kv->is_number() ||
        kv->number() != std::floor(kv->number()) || kv->number() < 2) {
      *error = "submit-portfolio requires \"k\" (integer >= 2)";
      return false;
    }
    req.k = static_cast<int>(kv->number());
    req.kill_min_iter = static_cast<int>(
        root.get_number("kill_min_iter", req.kill_min_iter));
    req.kill_margin = root.get_number("kill_margin", req.kill_margin);
    req.kill_slack = root.get_number("kill_slack", req.kill_slack);
    req.no_kill = root.get_bool("no_kill", false);
  }

  *out = req;
  return true;
}

namespace {

/// Spec fields shared by submit / upload-design / submit-batch builders.
void append_spec_fields(json::Object* o, const JobSpec& s) {
  if (!s.aux.empty()) o->emplace_back("aux", s.aux);
  if (s.demo_cells > 0) {
    o->emplace_back("demo_cells", static_cast<double>(s.demo_cells));
    o->emplace_back("demo_seed", s.demo_seed);
  }
  if (s.design_hash != 0) o->emplace_back("design", hash_to_hex(s.design_hash));
  o->emplace_back("max_iters", s.max_iters);
  o->emplace_back("grid", s.grid);
  if (s.seed > 0) o->emplace_back("seed", s.seed);
  if (s.target_density > 0) o->emplace_back("target_density", s.target_density);
  if (s.lambda_init > 0) o->emplace_back("lambda_init", s.lambda_init);
  if (s.init_noise_scale > 0) {
    o->emplace_back("init_noise_scale", s.init_noise_scale);
  }
  if (s.gamma_scale > 0) o->emplace_back("gamma_scale", s.gamma_scale);
  if (s.lambda_scale > 0) o->emplace_back("lambda_scale", s.lambda_scale);
  o->emplace_back("threads", s.threads);
  o->emplace_back("full_flow", json::Value(s.full_flow));
  o->emplace_back("priority", s.priority);
  if (s.deadline_s > 0) o->emplace_back("deadline_s", s.deadline_s);
  if (!s.label.empty()) o->emplace_back("label", s.label);
}

}  // namespace

std::string build_request(const Request& req) {
  json::Object o;
  o.emplace_back("cmd", to_string(req.cmd));
  if (needs_id(req.cmd)) o.emplace_back("id", req.id);
  switch (req.cmd) {
    case Command::kSubmit:
      append_spec_fields(&o, req.spec);
      if (req.spec.dedup) o.emplace_back("dedup", json::Value(true));
      break;
    case Command::kUploadDesign: {
      const JobSpec& s = req.spec;
      if (!s.aux.empty()) o.emplace_back("aux", s.aux);
      if (s.demo_cells > 0) {
        o.emplace_back("demo_cells", static_cast<double>(s.demo_cells));
        o.emplace_back("demo_seed", s.demo_seed);
      }
      break;
    }
    case Command::kEvictDesign:
      o.emplace_back("design", hash_to_hex(req.spec.design_hash));
      break;
    case Command::kSubmitBatch: {
      append_spec_fields(&o, req.spec);
      o.emplace_back("dedup", json::Value(req.spec.dedup));
      json::Array configs;
      for (const JobSpec& c : req.configs) {
        // Emit only the per-config deltas that matter on the wire: the
        // parser re-applies them over the base fields above.
        json::Object cfg;
        if (c.seed != req.spec.seed) cfg.emplace_back("seed", c.seed);
        if (c.target_density != req.spec.target_density) {
          cfg.emplace_back("target_density", c.target_density);
        }
        if (c.lambda_init != req.spec.lambda_init) {
          cfg.emplace_back("lambda_init", c.lambda_init);
        }
        if (c.init_noise_scale != req.spec.init_noise_scale) {
          cfg.emplace_back("init_noise_scale", c.init_noise_scale);
        }
        if (c.gamma_scale != req.spec.gamma_scale) {
          cfg.emplace_back("gamma_scale", c.gamma_scale);
        }
        if (c.lambda_scale != req.spec.lambda_scale) {
          cfg.emplace_back("lambda_scale", c.lambda_scale);
        }
        if (c.max_iters != req.spec.max_iters) {
          cfg.emplace_back("max_iters", c.max_iters);
        }
        if (c.grid != req.spec.grid) cfg.emplace_back("grid", c.grid);
        if (c.label != req.spec.label) cfg.emplace_back("label", c.label);
        if (c.dedup != req.spec.dedup) {
          cfg.emplace_back("dedup", json::Value(c.dedup));
        }
        configs.emplace_back(std::move(cfg));
      }
      o.emplace_back("configs", std::move(configs));
      break;
    }
    case Command::kSubmitPortfolio:
      append_spec_fields(&o, req.spec);
      o.emplace_back("k", static_cast<std::uint64_t>(req.k));
      if (req.kill_min_iter >= 0) {
        o.emplace_back("kill_min_iter",
                       static_cast<std::uint64_t>(req.kill_min_iter));
      }
      if (req.kill_margin > 0) o.emplace_back("kill_margin", req.kill_margin);
      if (req.kill_slack != kNoSlackOverride) {
        o.emplace_back("kill_slack", req.kill_slack);
      }
      if (req.no_kill) o.emplace_back("no_kill", json::Value(true));
      break;
    case Command::kBatchResult:
    case Command::kPortfolioResult:
      o.emplace_back("wait", json::Value(req.wait));
      o.emplace_back("timeout_s", req.timeout_s);
      break;
    case Command::kResult:
      o.emplace_back("wait", json::Value(req.wait));
      o.emplace_back("timeout_s", req.timeout_s);
      break;
    case Command::kEvents:
      o.emplace_back("from", req.from_seq);
      o.emplace_back("timeout_s", req.timeout_s);
      break;
    case Command::kShutdown:
      o.emplace_back("drain", json::Value(req.drain));
      break;
    default:
      break;
  }
  return json::Value(std::move(o)).dump();
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

std::string make_error(const std::string& message) {
  json::Object o;
  o.emplace_back("ok", json::Value(false));
  o.emplace_back("error", message);
  return json::Value(std::move(o)).dump();
}

std::string make_ok(json::Object fields) {
  json::Object o;
  o.emplace_back("ok", json::Value(true));
  for (auto& f : fields) o.push_back(std::move(f));
  return json::Value(std::move(o)).dump();
}

json::Object job_to_json(const JobRecord& rec) {
  json::Object o;
  o.emplace_back("id", rec.id);
  o.emplace_back("state", to_string(rec.state));
  o.emplace_back("label", rec.spec.label);
  o.emplace_back("priority", rec.spec.priority);
  if (rec.trace_id > 0) o.emplace_back("trace_id", rec.trace_id);
  if (rec.events_dropped > 0) {
    o.emplace_back("events_dropped", rec.events_dropped);
  }
  if (is_terminal(rec.state) || rec.state == JobState::kRunning) {
    o.emplace_back("stop_reason", core::to_string(rec.stop_reason));
  }
  if (rec.iterations > 0 || is_terminal(rec.state)) {
    o.emplace_back("hpwl", rec.hpwl);
    o.emplace_back("overflow", rec.overflow);
    o.emplace_back("iterations", rec.iterations);
    o.emplace_back("gp_seconds", rec.gp_seconds);
  }
  if (rec.legalized) {
    o.emplace_back("dp_hpwl", rec.dp_hpwl);
    o.emplace_back("legalized", json::Value(true));
  }
  if (!rec.error.empty()) o.emplace_back("error", rec.error);
  if (!rec.spill_path.empty()) o.emplace_back("spill", rec.spill_path);
  // Supervised-retry + crash-recovery lifecycle (DESIGN.md §13): attempt
  // history appears once a retry happened; recovery provenance when the
  // daemon replayed this job across a restart.
  if (rec.attempt > 0 || !rec.attempts.empty()) {
    o.emplace_back("attempt", static_cast<std::uint64_t>(rec.attempt));
    json::Array history;
    for (const JobAttempt& att : rec.attempts) {
      json::Object a;
      a.emplace_back("number", static_cast<std::uint64_t>(att.number));
      a.emplace_back("outcome", att.outcome);
      a.emplace_back("backoff_s", att.backoff_s);
      history.emplace_back(std::move(a));
    }
    o.emplace_back("attempts", std::move(history));
  }
  if (rec.recovered) o.emplace_back("recovered", json::Value(true));
  if (!rec.resume_from.empty()) o.emplace_back("resumed_from", rec.resume_from);
  o.emplace_back("submitted_s", rec.submitted_s);
  if (rec.started_s > 0) o.emplace_back("started_s", rec.started_s);
  if (rec.finished_s > 0) o.emplace_back("finished_s", rec.finished_s);
  return o;
}

json::Object event_to_json(const JobEvent& ev) {
  json::Object o;
  o.emplace_back("seq", ev.seq);
  o.emplace_back("iter", ev.iter);
  o.emplace_back("hpwl", ev.hpwl);
  o.emplace_back("overflow", ev.overflow);
  o.emplace_back("omega", ev.omega);
  return o;
}

}  // namespace xplace::server
