#include "server/protocol.h"

#include <cmath>

namespace xplace::server {

// ---------------------------------------------------------------------------
// Line framing
// ---------------------------------------------------------------------------

void LineReader::feed(const char* data, std::size_t n) {
  buf_.append(data, n);
}

LineReader::Pop LineReader::next(std::string* line) {
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (discarding_) {
      if (nl == std::string::npos) {
        buf_.clear();  // still inside the oversized line
        return Pop::kNeedMore;
      }
      buf_.erase(0, nl + 1);  // drop the oversized remainder, resync
      discarding_ = false;
      oversize_reported_ = false;
      continue;
    }
    if (nl == std::string::npos) {
      if (buf_.size() > max_line_) {
        // The line in progress can no longer fit: report once, then skip
        // bytes until its newline shows up.
        discarding_ = true;
        buf_.clear();
        if (!oversize_reported_) {
          oversize_reported_ = true;
          line->clear();
          return Pop::kOversized;
        }
        return Pop::kNeedMore;
      }
      return Pop::kNeedMore;
    }
    if (nl > max_line_) {
      buf_.erase(0, nl + 1);
      line->clear();
      return Pop::kOversized;
    }
    line->assign(buf_, 0, nl);
    buf_.erase(0, nl + 1);
    if (!line->empty() && line->back() == '\r') line->pop_back();
    return Pop::kLine;
  }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

const char* to_string(Command cmd) {
  switch (cmd) {
    case Command::kSubmit: return "submit";
    case Command::kStatus: return "status";
    case Command::kCancel: return "cancel";
    case Command::kResult: return "result";
    case Command::kEvents: return "events";
    case Command::kStats: return "stats";
    case Command::kMetrics: return "metrics";
    case Command::kShutdown: return "shutdown";
  }
  return "?";
}

namespace {

bool command_from_string(const std::string& s, Command* out) {
  if (s == "submit") *out = Command::kSubmit;
  else if (s == "status") *out = Command::kStatus;
  else if (s == "cancel") *out = Command::kCancel;
  else if (s == "result") *out = Command::kResult;
  else if (s == "events") *out = Command::kEvents;
  else if (s == "stats") *out = Command::kStats;
  else if (s == "metrics") *out = Command::kMetrics;
  else if (s == "shutdown") *out = Command::kShutdown;
  else return false;
  return true;
}

bool needs_id(Command cmd) {
  return cmd == Command::kStatus || cmd == Command::kCancel ||
         cmd == Command::kResult || cmd == Command::kEvents;
}

/// Non-negative integral number field; false (with message) on bad type or
/// a fractional/negative value.
bool get_uint(const json::Value& obj, std::string_view key,
              std::uint64_t* out, std::string* error) {
  const json::Value* v = obj.find(key);
  if (v == nullptr) return true;  // keep default
  if (!v->is_number() || v->number() < 0 ||
      v->number() != std::floor(v->number())) {
    *error = std::string(key) + " must be a non-negative integer";
    return false;
  }
  *out = static_cast<std::uint64_t>(v->number());
  return true;
}

}  // namespace

bool parse_request(const std::string& line, Request* out, std::string* error) {
  json::Value root;
  std::string json_error;
  if (!json::parse(line, &root, &json_error)) {
    *error = "malformed JSON (" + json_error + ")";
    return false;
  }
  if (!root.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }
  const std::string cmd_name = root.get_string("cmd");
  if (cmd_name.empty()) {
    *error = "missing \"cmd\" field";
    return false;
  }
  Request req;
  if (!command_from_string(cmd_name, &req.cmd)) {
    *error = "unknown command \"" + cmd_name + "\"";
    return false;
  }

  if (!get_uint(root, "id", &req.id, error)) return false;
  if (needs_id(req.cmd) && !root.has("id")) {
    *error = std::string(to_string(req.cmd)) + " requires \"id\"";
    return false;
  }
  if (!get_uint(root, "from", &req.from_seq, error)) return false;
  req.wait = root.get_bool("wait", false);
  req.timeout_s = root.get_number("timeout_s", req.timeout_s);
  req.drain = root.get_bool("drain", true);

  if (req.cmd == Command::kSubmit) {
    JobSpec& s = req.spec;
    s.aux = root.get_string("aux");
    s.demo_cells = static_cast<long>(root.get_number("demo_cells", 0));
    std::uint64_t seed = s.demo_seed;
    if (!get_uint(root, "demo_seed", &seed, error)) return false;
    s.demo_seed = seed;
    s.max_iters = static_cast<int>(root.get_number("max_iters", s.max_iters));
    s.grid = static_cast<int>(root.get_number("grid", s.grid));
    s.threads = static_cast<int>(root.get_number("threads", s.threads));
    s.full_flow = root.get_bool("full_flow", true);
    s.priority = static_cast<int>(root.get_number("priority", 0));
    s.deadline_s = root.get_number("deadline_s", 0.0);
    s.label = root.get_string("label");
    if (s.aux.empty() && s.demo_cells <= 0) {
      *error = "submit requires \"aux\" or \"demo_cells\" > 0";
      return false;
    }
    if (!s.aux.empty() && s.demo_cells > 0) {
      *error = "submit takes \"aux\" or \"demo_cells\", not both";
      return false;
    }
    if (s.max_iters <= 0 || s.grid <= 0) {
      *error = "max_iters and grid must be positive";
      return false;
    }
    if (s.deadline_s < 0) {
      *error = "deadline_s must be non-negative";
      return false;
    }
  }

  *out = req;
  return true;
}

std::string build_request(const Request& req) {
  json::Object o;
  o.emplace_back("cmd", to_string(req.cmd));
  if (needs_id(req.cmd)) o.emplace_back("id", req.id);
  switch (req.cmd) {
    case Command::kSubmit: {
      const JobSpec& s = req.spec;
      if (!s.aux.empty()) o.emplace_back("aux", s.aux);
      if (s.demo_cells > 0) {
        o.emplace_back("demo_cells", static_cast<double>(s.demo_cells));
        o.emplace_back("demo_seed", s.demo_seed);
      }
      o.emplace_back("max_iters", s.max_iters);
      o.emplace_back("grid", s.grid);
      o.emplace_back("threads", s.threads);
      o.emplace_back("full_flow", json::Value(s.full_flow));
      o.emplace_back("priority", s.priority);
      if (s.deadline_s > 0) o.emplace_back("deadline_s", s.deadline_s);
      if (!s.label.empty()) o.emplace_back("label", s.label);
      break;
    }
    case Command::kResult:
      o.emplace_back("wait", json::Value(req.wait));
      o.emplace_back("timeout_s", req.timeout_s);
      break;
    case Command::kEvents:
      o.emplace_back("from", req.from_seq);
      o.emplace_back("timeout_s", req.timeout_s);
      break;
    case Command::kShutdown:
      o.emplace_back("drain", json::Value(req.drain));
      break;
    default:
      break;
  }
  return json::Value(std::move(o)).dump();
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

std::string make_error(const std::string& message) {
  json::Object o;
  o.emplace_back("ok", json::Value(false));
  o.emplace_back("error", message);
  return json::Value(std::move(o)).dump();
}

std::string make_ok(json::Object fields) {
  json::Object o;
  o.emplace_back("ok", json::Value(true));
  for (auto& f : fields) o.push_back(std::move(f));
  return json::Value(std::move(o)).dump();
}

json::Object job_to_json(const JobRecord& rec) {
  json::Object o;
  o.emplace_back("id", rec.id);
  o.emplace_back("state", to_string(rec.state));
  o.emplace_back("label", rec.spec.label);
  o.emplace_back("priority", rec.spec.priority);
  if (rec.trace_id > 0) o.emplace_back("trace_id", rec.trace_id);
  if (rec.events_dropped > 0) {
    o.emplace_back("events_dropped", rec.events_dropped);
  }
  if (is_terminal(rec.state) || rec.state == JobState::kRunning) {
    o.emplace_back("stop_reason", core::to_string(rec.stop_reason));
  }
  if (rec.iterations > 0 || is_terminal(rec.state)) {
    o.emplace_back("hpwl", rec.hpwl);
    o.emplace_back("overflow", rec.overflow);
    o.emplace_back("iterations", rec.iterations);
    o.emplace_back("gp_seconds", rec.gp_seconds);
  }
  if (rec.legalized) {
    o.emplace_back("dp_hpwl", rec.dp_hpwl);
    o.emplace_back("legalized", json::Value(true));
  }
  if (!rec.error.empty()) o.emplace_back("error", rec.error);
  if (!rec.spill_path.empty()) o.emplace_back("spill", rec.spill_path);
  // Supervised-retry + crash-recovery lifecycle (DESIGN.md §13): attempt
  // history appears once a retry happened; recovery provenance when the
  // daemon replayed this job across a restart.
  if (rec.attempt > 0 || !rec.attempts.empty()) {
    o.emplace_back("attempt", static_cast<std::uint64_t>(rec.attempt));
    json::Array history;
    for (const JobAttempt& att : rec.attempts) {
      json::Object a;
      a.emplace_back("number", static_cast<std::uint64_t>(att.number));
      a.emplace_back("outcome", att.outcome);
      a.emplace_back("backoff_s", att.backoff_s);
      history.emplace_back(std::move(a));
    }
    o.emplace_back("attempts", std::move(history));
  }
  if (rec.recovered) o.emplace_back("recovered", json::Value(true));
  if (!rec.resume_from.empty()) o.emplace_back("resumed_from", rec.resume_from);
  o.emplace_back("submitted_s", rec.submitted_s);
  if (rec.started_s > 0) o.emplace_back("started_s", rec.started_s);
  if (rec.finished_s > 0) o.emplace_back("finished_s", rec.finished_s);
  return o;
}

json::Object event_to_json(const JobEvent& ev) {
  json::Object o;
  o.emplace_back("seq", ev.seq);
  o.emplace_back("iter", ev.iter);
  o.emplace_back("hpwl", ev.hpwl);
  o.emplace_back("overflow", ev.overflow);
  o.emplace_back("omega", ev.omega);
  return o;
}

}  // namespace xplace::server
