// JSON-lines protocol for the placement service (DESIGN.md §11).
//
// Transport: a Unix-domain stream socket. Each request and each response is
// one JSON object on one '\n'-terminated line. Requests carry a "cmd" field:
//
//   {"cmd":"submit", "demo_cells":4000, "max_iters":800, "priority":2,
//    "deadline_s":30, "label":"sweep_a"}        → {"ok":true,"id":7,...}
//   {"cmd":"status","id":7}                     → {"ok":true,"job":{...}}
//   {"cmd":"cancel","id":7}                     → {"ok":true,...}
//   {"cmd":"result","id":7,"wait":true,"timeout_s":60}
//                                               → {"ok":true,"job":{...}}
//   {"cmd":"events","id":7,"from":0}            → a stream: one
//        {"ok":true,"event":{...}} line per GP iteration, terminated by
//        {"ok":true,"done":true,"state":"..."} when the job is terminal
//   {"cmd":"stats"}                             → {"ok":true,"stats":{...}}
//   {"cmd":"metrics"}                           → {"ok":true,"metrics":"..."}
//        with the full Prometheus text exposition of the global telemetry
//        registry in the string (the scrape surface of DESIGN.md §12; the
//        response line can exceed kMaxLineBytes — readers raise their cap
//        via LineReader::set_max_line)
//   {"cmd":"shutdown","drain":true}             → {"ok":true} then the
//        daemon stops accepting, drains, and exits 0
//
// Design-store + batch-sweep verbs (DESIGN.md §14). Design content hashes are
// 64-bit and travel as 16-char lowercase hex strings (JSON numbers are
// doubles — 53 bits of integer precision would corrupt them):
//
//   {"cmd":"upload-design","demo_cells":4000}   → {"ok":true,
//        "design":"a1b2...","name":"demo","cells":N,"nets":N,"bytes":N,
//        "cached":false}  (idempotent: re-upload of known content is a cache
//        hit, "cached":true)
//   {"cmd":"list-designs"}                      → {"ok":true,"designs":[...]}
//   {"cmd":"evict-design","design":"a1b2..."}   → {"ok":true} (fails while a
//        running job pins the design)
//   {"cmd":"submit-batch","design":"a1b2...","max_iters":500,
//    "configs":[{"seed":1},{"seed":2},{"target_density":0.8}]}
//        → {"ok":true,"batch":3,"design":"a1b2...",
//           "jobs":[{"id":7,"dedup":false},...]}
//        Each config starts from the base fields on the request object and
//        overrides per-config; the design is parsed at most once for the
//        whole batch. "dedup" (default true) serves a repeated
//        (design, config) from the existing job instead of re-running.
//   {"cmd":"batch-status","id":3}               → {"ok":true,"batch":{...}}
//   {"cmd":"batch-result","id":3,"wait":true,"timeout_s":600}
//        → {"ok":true,"batch":{...},"jobs":[{...},...]} with one full job
//        object per member, dedup-shared members repeated by reference
//   {"cmd":"batch-cancel","id":3}               → {"ok":true,"cancelled":N}
//        cancels every non-terminal member in one shot
//
// Portfolio-racing verbs (DESIGN.md §16). A portfolio launches K perturbed
// restarts of one design as a batch and races them; the racer thread
// early-kills strict laggards unless "no_kill":
//
//   {"cmd":"submit-portfolio","design":"a1b2...","k":4,"seed":1,
//    "max_iters":800,"deadline_s":120}
//        → {"ok":true,"portfolio":1,"batch":3,"design":"a1b2...",
//           "jobs":[{"id":7,"dedup":false},...]}
//        Optional racer overrides: "kill_min_iter" (grace iterations),
//        "kill_margin" (HPWL ratio), "kill_slack" (overflow gap),
//        "no_kill":true (race without early-kill).
//   {"cmd":"portfolio-status","id":1}           → {"ok":true,"portfolio":{...}}
//   {"cmd":"portfolio-result","id":1,"wait":true,"timeout_s":600}
//        → {"ok":true,"portfolio":{...},"winner":{...full job object...},
//           "jobs":[{...},...]} (winner present once a member is done)
//
// Every error is {"ok":false,"error":"..."} on one line; a malformed or
// oversized request line never kills the connection — the server answers
// with an error and keeps reading (the framing layer resynchronizes on the
// next newline).
//
// This header owns (a) the incremental line framing with an oversize guard
// and (b) the typed Request parse/build pair, so the daemon, the client CLI,
// and the tests all speak through one implementation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "server/job.h"
#include "server/json.h"

namespace xplace::server {

/// Hard cap on one protocol line (request or response). Large enough for
/// any legitimate request by orders of magnitude; small enough that a
/// misbehaving client cannot balloon server memory.
inline constexpr std::size_t kMaxLineBytes = 1 << 16;

/// Incremental JSON-lines framing: feed() arbitrary byte chunks (partial
/// reads are fine), next() pops complete lines. A line longer than the cap
/// is reported once as kOversized and discarded up to its terminating
/// newline; framing then resynchronizes on the next line.
class LineReader {
 public:
  explicit LineReader(std::size_t max_line = kMaxLineBytes)
      : max_line_(max_line) {}

  /// Raises (or lowers) the oversize cap for subsequent lines. Clients that
  /// issue `metrics` raise theirs: the Prometheus exposition is one response
  /// line and legitimately exceeds the request-side default.
  void set_max_line(std::size_t max_line) { max_line_ = max_line; }
  std::size_t max_line() const { return max_line_; }

  void feed(const char* data, std::size_t n);

  enum class Pop { kLine, kNeedMore, kOversized };

  /// kLine: *line holds the next complete line (newline stripped; a lone
  /// trailing '\r' is stripped too, tolerating CRLF clients).
  /// kOversized: the current line exceeded the cap; *line is cleared.
  /// kNeedMore: no complete line buffered yet.
  Pop next(std::string* line);

 private:
  std::string buf_;
  std::size_t max_line_;
  bool discarding_ = false;  ///< inside an oversized line, skipping to '\n'
  bool oversize_reported_ = false;
};

enum class Command {
  kSubmit,
  kStatus,
  kCancel,
  kResult,
  kEvents,
  kStats,
  kMetrics,
  kShutdown,
  kUploadDesign,
  kListDesigns,
  kEvictDesign,
  kSubmitBatch,
  kBatchStatus,
  kBatchResult,
  kBatchCancel,
  kSubmitPortfolio,
  kPortfolioStatus,
  kPortfolioResult,
};

const char* to_string(Command cmd);

/// 64-bit content hash ↔ 16-char lowercase hex (the wire encoding).
std::string hash_to_hex(std::uint64_t hash);
bool hex_to_hash(const std::string& hex, std::uint64_t* out);

/// One parsed request. `spec` is meaningful for kSubmit / kUploadDesign /
/// kSubmitBatch (the batch base); `configs` for kSubmitBatch; `id` for
/// status/cancel/result/events and batch-status/batch-result (the batch id);
/// `from_seq`/`wait`/`timeout_s`/`drain` for the commands that document them
/// above.
/// Sentinel for "no kill_slack override" — overflow slack is legitimately
/// negative (stricter-than-leader policies), so 0 cannot be the sentinel.
inline constexpr double kNoSlackOverride = -1.0e30;

struct Request {
  Command cmd = Command::kStats;
  std::uint64_t id = 0;
  std::uint64_t from_seq = 0;   ///< events: first sequence number wanted
  bool wait = false;            ///< result: block until terminal
  double timeout_s = 60.0;      ///< result --wait bound
  bool drain = true;            ///< shutdown: finish queued+running first
  JobSpec spec;                 ///< submit payload / batch or portfolio base
  std::vector<JobSpec> configs; ///< submit-batch member configs
  // submit-portfolio fields. The racer-policy overrides keep their sentinels
  // when absent; the daemon then applies the server-default policy.
  int k = 0;                    ///< member count (required, >= 2)
  int kill_min_iter = -1;       ///< grace iterations before judging (<0 = def)
  double kill_margin = 0.0;     ///< laggard HPWL ratio (0 = default)
  double kill_slack = kNoSlackOverride;  ///< laggard overflow gap
  bool no_kill = false;         ///< race without early-kill
};

/// Parses one request line. On failure returns false and sets *error to a
/// client-presentable message (also used verbatim in the error response).
bool parse_request(const std::string& line, Request* out, std::string* error);

/// Serializes a request to its wire line (no trailing newline). Inverse of
/// parse_request — the client CLI builds lines through this, and the tests
/// round-trip build→parse.
std::string build_request(const Request& req);

// ---- response builders (one line, no trailing newline) ---------------------

std::string make_error(const std::string& message);
/// {"ok":true, ...fields}.
std::string make_ok(json::Object fields);

/// The "job" object embedded in status/result responses.
json::Object job_to_json(const JobRecord& rec);
/// The "event" object embedded in events-stream responses.
json::Object event_to_json(const JobEvent& ev);

}  // namespace xplace::server
