// Racing policy for portfolio runs (DESIGN.md §16): which members of a
// K-way perturbed-restart portfolio are strict laggards and should be killed
// early so their core-seconds go back to the budget.
//
// Pure decision logic — the server samples each member's newest Recorder
// event (HPWL/overflow/iteration) from its event ring under the server lock,
// builds MemberProgress rows, and acts on the ids this module returns. Kept
// transport- and lock-free so the policy is unit-testable in isolation.
#pragma once

#include <cstdint>
#include <vector>

namespace xplace::server {

/// One member's newest progress sample, read from its event ring.
struct MemberProgress {
  std::uint64_t id = 0;
  bool terminal = false;     ///< already settled (any terminal state)
  bool has_progress = false; ///< at least one iteration event observed
  int iter = 0;              ///< newest event's iteration
  double hpwl = 0.0;         ///< newest event's HPWL
  double overflow = 1.0;     ///< newest event's overflow
};

/// When to call a member a strict laggard. Defaults are deliberately
/// conservative: a member dies only when it is behind the current leader on
/// *both* metrics — HPWL by a 15% margin *and* overflow (annealing progress)
/// by an absolute 0.05 — after both have run long enough to be comparable.
struct RacePolicy {
  int min_iter = 100;         ///< don't judge anyone before this iteration
  double hpwl_margin = 1.15;  ///< laggard needs hpwl > leader.hpwl × this
  double overflow_slack = 0.05;  ///< and overflow > leader.overflow + this
  std::size_t min_survivors = 1; ///< never race below this many live members
  bool no_kill = false;          ///< disable early kill entirely
};

/// Returns the ids of live members to cancel now. The leader (lowest HPWL
/// among judgeable live members) is never returned; members without progress
/// samples (still queued, or ring empty) are never returned; at least
/// `min_survivors` live members always remain.
std::vector<std::uint64_t> laggards_to_kill(
    const std::vector<MemberProgress>& members, const RacePolicy& policy);

}  // namespace xplace::server
