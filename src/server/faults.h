// Server-layer fault injection (the serve-side complement of the guardian's
// per-iteration FaultPlan). Grammar, shared with XPLACE_FAULT:
//
//   serve_crash@job:N   hard-kill the daemon right after job N's next XPCK
//                       spill lands on disk (the chaos lane's SIGKILL point,
//                       made deterministic)
//   diverge@job:N       arm job N's guardian with a budget-exhausting
//                       nonfinite-gradient schedule on its FIRST attempt, so
//                       the run ends `diverged` and the retry path engages
//   journal_torn        the journal's next append stops halfway through its
//                       frame (crash mid-append; replay must see torn_tail)
//   disk_full           every journal append fails cleanly (ENOSPC) — the
//                       server must degrade, not crash
//
// Guardian-scoped items (`kind@iter:N`) in the same XPLACE_FAULT value are
// skipped here, exactly as the guardian's parser skips these server-scoped
// kinds — one env var drives both layers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace xplace::server {

struct ServeFaultPlan {
  std::vector<std::uint64_t> crash_after_checkpoint_of;  ///< serve_crash@job:N
  std::vector<std::uint64_t> diverge_jobs;               ///< diverge@job:N
  bool journal_torn = false;
  bool disk_full = false;

  /// What serve_crash does when it fires. The default is the real thing —
  /// XP_ERROR then _Exit(137), no destructors, exactly a SIGKILL's footprint.
  /// Tests override it to observe the trigger without dying.
  std::function<void()> crash_handler;

  bool empty() const {
    return crash_after_checkpoint_of.empty() && diverge_jobs.empty() &&
           !journal_torn && !disk_full;
  }
  bool crash_armed_for(std::uint64_t job_id) const;
  bool diverge_armed_for(std::uint64_t job_id) const;
  /// Terminates the process via crash_handler (or the default handler when
  /// none was installed).
  void crash_now(std::uint64_t job_id) const;

  /// Parses the grammar above, silently skipping guardian-scoped
  /// `kind@iter:N` items. Throws std::invalid_argument on malformed
  /// server-scoped items (bad job number).
  static ServeFaultPlan parse(const std::string& spec);
  /// Plan from XPLACE_FAULT (empty plan when unset).
  static ServeFaultPlan from_env();
};

}  // namespace xplace::server
