#include "server/regression.h"

#include <cstdio>
#include <map>

#include "server/json.h"

namespace xplace::server {

std::string row_key(const BenchRow& row, int occurrence) {
  std::string key = row.kernel + "|" + row.backend + "|" + row.simd + "|t" +
                    std::to_string(row.threads);
  if (occurrence > 0) key += "|#" + std::to_string(occurrence);
  return key;
}

bool load_bench_json(const std::string& path, BenchFile* out,
                     std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    *error = "cannot open " + path;
    return false;
  }
  std::string text;
  char chunk[4096];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    text.append(chunk, n);
  }
  std::fclose(f);

  json::Value root;
  std::string json_error;
  if (!json::parse(text, &root, &json_error)) {
    *error = path + ": " + json_error;
    return false;
  }
  const json::Value* results = root.find("results");
  if (results == nullptr || !results->is_array()) {
    *error = path + ": missing \"results\" array";
    return false;
  }
  out->bench = root.get_string("bench");
  out->rows.clear();
  for (const json::Value& v : results->array()) {
    if (!v.is_object() || !v.has("ns_per_iter")) continue;
    BenchRow row;
    row.kernel = v.get_string("kernel");
    row.backend = v.get_string("backend");
    row.simd = v.get_string("simd");
    row.threads = static_cast<int>(v.get_number("threads", 1));
    row.ns_per_iter = v.get_number("ns_per_iter", 0.0);
    row.tolerance = v.get_number("tolerance", 0.0);
    out->rows.push_back(std::move(row));
  }
  return true;
}

namespace {

/// Rows keyed with per-duplicate occurrence indices, insertion-ordered.
std::vector<std::pair<std::string, const BenchRow*>> keyed_rows(
    const BenchFile& file) {
  std::map<std::string, int> seen;
  std::vector<std::pair<std::string, const BenchRow*>> out;
  out.reserve(file.rows.size());
  for (const BenchRow& row : file.rows) {
    const int occurrence = seen[row_key(row, 0)]++;
    out.emplace_back(row_key(row, occurrence), &row);
  }
  return out;
}

}  // namespace

RegressionReport compare_bench(const BenchFile& baseline,
                               const BenchFile& current,
                               double default_tolerance) {
  RegressionReport report;
  const auto base_rows = keyed_rows(baseline);
  const auto cur_rows = keyed_rows(current);
  std::map<std::string, const BenchRow*> cur_by_key;
  for (const auto& [key, row] : cur_rows) cur_by_key.emplace(key, row);

  std::map<std::string, bool> matched;
  for (const auto& [key, base] : base_rows) {
    const auto it = cur_by_key.find(key);
    if (it == cur_by_key.end()) {
      report.only_baseline.push_back(key);
      continue;
    }
    matched[key] = true;
    RowComparison cmp;
    cmp.key = key;
    cmp.baseline_ns = base->ns_per_iter;
    cmp.current_ns = it->second->ns_per_iter;
    cmp.ratio = base->ns_per_iter > 0.0
                    ? it->second->ns_per_iter / base->ns_per_iter
                    : 0.0;
    // The baseline row's band wins (it was committed alongside the number);
    // fall back to the current row's, then the comparison default.
    cmp.tolerance = base->tolerance > 0.0 ? base->tolerance
                    : it->second->tolerance > 0.0 ? it->second->tolerance
                                                  : default_tolerance;
    cmp.regressed = cmp.ratio > 1.0 + cmp.tolerance;
    if (cmp.regressed) ++report.regressions;
    report.rows.push_back(std::move(cmp));
  }
  for (const auto& [key, row] : cur_rows) {
    (void)row;
    if (matched.find(key) == matched.end()) {
      report.only_current.push_back(key);
    }
  }
  return report;
}

std::string format_report(const RegressionReport& report) {
  std::string out;
  char line[256];
  for (const RowComparison& row : report.rows) {
    std::snprintf(line, sizeof(line),
                  "%-52s %12.1f -> %12.1f ns  %6.2fx (band %.0f%%)%s\n",
                  row.key.c_str(), row.baseline_ns, row.current_ns, row.ratio,
                  row.tolerance * 100.0,
                  row.regressed ? "  REGRESSION" : "");
    out += line;
  }
  for (const std::string& key : report.only_baseline) {
    out += "baseline-only (not compared): " + key + "\n";
  }
  for (const std::string& key : report.only_current) {
    out += "new row (no baseline): " + key + "\n";
  }
  std::snprintf(line, sizeof(line), "%zu row(s) compared, %zu regression(s)\n",
                report.rows.size(), report.regressions);
  out += line;
  return out;
}

}  // namespace xplace::server
