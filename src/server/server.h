// Resident placement service: bounded priority queue + N-way job scheduler
// over the placement flow, with cooperative cancellation, streamed progress,
// a bounded result store, and graceful drain (DESIGN.md §11).
//
// The server amortizes process setup (SIMD table resolution, telemetry
// registries) across many placements and multiplexes runs the way an
// inference-serving stack wraps a model runtime:
//
//   submit ─▶ JobQueue ─▶ worker slots (max_concurrency threads)
//                              │  each: build db → GlobalPlacer(+StopToken)
//                              │         → [LG → DP] → JobRecord
//                              └─ thread-budget arbiter: a job starts only
//                                 when its worker-thread request fits the
//                                 server-wide budget, so the machine is
//                                 never oversubscribed
//
// Determinism: every job runs with an explicit per-job thread count (its
// spec's, or the server default) and its own ExecutionContext — concurrent
// jobs never share a ThreadPool (PR 3's pool serializes a second dispatcher
// inline, which would make results depend on timing). A job therefore
// produces bit-identical results to a one-shot place_bookshelf run at the
// same config/thread count, regardless of service load.
//
// Transport-free: this class is plain C++ (tests drive it in-process); the
// UDS daemon in uds.h binds it to the JSON-lines protocol.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "io/journal.h"
#include "server/design_store.h"
#include "server/faults.h"
#include "server/job.h"
#include "server/job_queue.h"
#include "server/portfolio_racer.h"
#include "server/recovery.h"
#include "telemetry/metrics.h"
#include "util/stop_token.h"

namespace xplace::server {

struct ServerConfig {
  std::size_t queue_capacity = 64;   ///< admission bound (reject-on-full)
  std::size_t max_concurrency = 2;   ///< worker slots (jobs in flight)
  /// Worker threads a job runs with when its spec says 0. 1 = serial (the
  /// bitwise-reproducible default).
  int default_job_threads = 1;
  /// Server-wide worker-thread budget the running jobs' thread counts must
  /// fit in; a job waits in its slot until the budget frees up. 0 = derive
  /// as max_concurrency * max(1, default_job_threads).
  std::size_t thread_budget = 0;
  /// Terminal JobRecords retained for status/result queries; older terminal
  /// jobs are evicted FIFO beyond this.
  std::size_t result_capacity = 256;
  /// Per-job ring of streamed iteration events; oldest events drop first
  /// (subscribers see a `dropped` count).
  std::size_t event_capacity = 4096;
  /// When non-empty: periodic GP checkpoint spill per job via the XPCK
  /// writer (io/checkpoint_io.h) into `<spill_dir>/job<id>.xpck`.
  std::string spill_dir;
  int spill_period = 200;  ///< iterations between spill writes

  // ---- durability & self-healing (DESIGN.md §13) ---------------------------
  /// When non-empty: crash-safe operation. The job journal (journal.xpjl)
  /// lives here, spill_dir defaults here, and the constructor replays the
  /// journal — restoring terminal records, re-enqueuing queued jobs in their
  /// original order, and resuming interrupted running jobs from their newest
  /// XPCK spill — before any worker starts.
  std::string state_dir;
  /// Journal disk budget: once the journal on disk exceeds this, admission
  /// switches to the load-shedding path (compaction happens at startup).
  std::size_t journal_max_bytes = 64ull << 20;
  /// Supervised retries: a job that ends `diverged` (or dies to allocation
  /// failure) is re-admitted up to this many times with exponential backoff
  /// and the guardian's compounding λ/step retune. 0 disables.
  int max_retries = 2;
  double retry_backoff_s = 0.5;      ///< base backoff before attempt 1
  double retry_backoff_max_s = 30.0; ///< backoff ceiling
  /// Server-layer fault plan (serve_crash/diverge/journal_torn/disk_full).
  /// Empty → parsed from XPLACE_FAULT at construction.
  ServeFaultPlan faults;

  // ---- design store (DESIGN.md §14) ----------------------------------------
  /// Max resident parsed designs; LRU eviction of unpinned snapshots beyond
  /// this (pinned-while-running designs are exempt).
  std::size_t design_capacity = 16;
  /// Resident-bytes bound for the design store (same LRU policy).
  std::size_t design_max_bytes = 1ull << 30;

  // ---- portfolio racing (DESIGN.md §16) ------------------------------------
  /// How often the racer thread samples live portfolios' member progress and
  /// kills strict laggards. <= 0 disables the racer entirely (members still
  /// run to completion; the winner is still selected).
  double portfolio_poll_s = 0.25;
  /// Server-default racing policy; submit-portfolio requests may override
  /// per portfolio.
  RacePolicy portfolio_policy;
};

class PlacementServer {
 public:
  explicit PlacementServer(ServerConfig cfg);
  /// Implies shutdown(/*drain=*/false) when still running.
  ~PlacementServer();

  PlacementServer(const PlacementServer&) = delete;
  PlacementServer& operator=(const PlacementServer&) = delete;

  struct SubmitOutcome {
    bool ok = false;
    std::uint64_t id = 0;
    bool deduped = false;  ///< served by an existing (design, config) job
    std::string error;
  };
  /// Admission control: rejects (ok=false) when the spec is invalid
  /// (validate_spec), the queue is full, or the server is shutting down.
  SubmitOutcome submit(const JobSpec& spec);

  // ---- design store (DESIGN.md §14) ----------------------------------------
  struct UploadOutcome {
    bool ok = false;
    std::uint64_t hash = 0;
    bool cached = false;  ///< content was already resident (no parse)
    std::string name;
    std::size_t cells = 0, nets = 0, bytes = 0;
    std::string error;
  };
  /// Parses (or finds cached) the design named by spec.aux / spec.demo_cells
  /// and registers it in the store. Idempotent per content hash.
  UploadOutcome upload_design(const JobSpec& source);
  std::vector<DesignStore::Entry> list_designs() const;
  bool evict_design(std::uint64_t hash, std::string* error);

  // ---- batch sweeps --------------------------------------------------------
  struct BatchJobRef {
    std::uint64_t id = 0;
    bool deduped = false;
  };
  struct BatchSubmitOutcome {
    bool ok = false;
    std::uint64_t batch_id = 0;
    std::uint64_t design_hash = 0;
    std::vector<BatchJobRef> jobs;
    std::string error;
  };
  /// Atomically fans `configs` (each a full JobSpec whose design fields are
  /// overwritten with the batch's design) out as ordinary jobs on the queue.
  /// All-or-nothing admission: if the queue cannot take every non-deduped
  /// config, the whole batch is rejected. The design is resolved (one parse,
  /// ever) before any job is enqueued.
  BatchSubmitOutcome submit_batch(const JobSpec& base,
                                  const std::vector<JobSpec>& configs);

  struct BatchStatus {
    std::uint64_t id = 0;
    std::uint64_t design_hash = 0;
    std::string label;
    std::vector<BatchJobRef> jobs;
    std::size_t queued = 0, running = 0, done = 0, cancelled = 0, failed = 0,
                shed = 0;
    bool all_terminal = false;
    double best_hpwl = 0.0;       ///< min final HPWL among done jobs (0 = none)
    std::uint64_t best_job = 0;
  };
  /// nullopt = unknown batch id.
  std::optional<BatchStatus> batch_status(std::uint64_t id) const;
  /// Blocks until every member job is terminal (or timeout); nullopt =
  /// unknown id. On timeout returns the current aggregate.
  std::optional<BatchStatus> batch_wait(std::uint64_t id, double timeout_s) const;
  /// Cancels every non-terminal member of a batch in one shot (queued members
  /// settle immediately, running members get their stop tokens armed). Dedup
  /// members whose serving job belongs to another batch are cancelled too —
  /// a batch-cancel means "stop spending on this sweep". Returns false with
  /// *error only for unknown batch ids; *cancelled counts members acted on.
  bool batch_cancel(std::uint64_t id, std::size_t* cancelled,
                    std::string* error);

  // ---- portfolio racing (DESIGN.md §16) ------------------------------------
  struct PortfolioSubmitOutcome {
    bool ok = false;
    std::uint64_t portfolio_id = 0;
    std::uint64_t batch_id = 0;   ///< the member batch (batch verbs work too)
    std::uint64_t design_hash = 0;
    std::vector<BatchJobRef> jobs;  ///< K members, plan order (v0 first)
    std::string error;
  };
  /// Launches K perturbed restarts of `base`'s design as one all-or-nothing
  /// batch (opt::make_portfolio_plan variants: distinct seeds, noise-injected
  /// anchors, varied γ/λ schedules) raced under `deadline_s` by the racer
  /// thread, which early-kills strict laggards per `policy`. base.seed seeds
  /// the plan; the portfolio is deterministic from (design, k, base.seed).
  PortfolioSubmitOutcome submit_portfolio(const JobSpec& base, int k,
                                          double deadline_s,
                                          const RacePolicy& policy);
  /// submit_portfolio with the server-default policy.
  PortfolioSubmitOutcome submit_portfolio(const JobSpec& base, int k,
                                          double deadline_s);

  struct PortfolioStatus {
    std::uint64_t id = 0;
    std::uint64_t batch_id = 0;
    std::uint64_t design_hash = 0;
    std::uint64_t base_seed = 0;
    std::string label;
    std::vector<BatchJobRef> jobs;
    std::size_t queued = 0, running = 0, done = 0, cancelled = 0, failed = 0,
                shed = 0;
    std::size_t killed = 0;   ///< members the racer cancelled as laggards
    bool all_terminal = false;
    /// Winner: best final HPWL among done members (legalized DP HPWL when the
    /// flow ran, GP HPWL otherwise; ties break on the lower job id so the
    /// selection is deterministic). 0 = no done member yet.
    std::uint64_t winner = 0;
    double winner_hpwl = 0.0;
    double deadline_s = 0.0;
  };
  /// nullopt = unknown portfolio id.
  std::optional<PortfolioStatus> portfolio_status(std::uint64_t id) const;
  /// Blocks until every member is terminal (or timeout); on timeout returns
  /// the current aggregate. nullopt = unknown id.
  std::optional<PortfolioStatus> portfolio_wait(std::uint64_t id,
                                                double timeout_s) const;

  /// Cancels a job. Queued → terminal kCancelled immediately; running → its
  /// StopToken is armed and the job lands terminal shortly (with the best-
  /// snapshot placement committed). False (with *error) for unknown ids or
  /// jobs already terminal.
  bool cancel(std::uint64_t id, std::string* error);

  /// Snapshot of a job record; nullopt = unknown id (never submitted, or
  /// evicted from the bounded result store).
  std::optional<JobRecord> status(std::uint64_t id) const;

  /// Blocks until the job is terminal (or timeout_s elapses) and returns its
  /// record; nullopt = unknown id. On timeout returns the current record.
  std::optional<JobRecord> wait(std::uint64_t id, double timeout_s) const;

  struct EventBatch {
    std::vector<JobEvent> events;
    std::uint64_t next_seq = 0;   ///< pass as `from` of the next call
    std::uint64_t dropped = 0;    ///< events lost to the bounded ring so far
    bool terminal = false;        ///< job reached a terminal state
  };
  /// Events with seq >= from_seq. Blocks up to timeout_s until at least one
  /// new event exists or the job is terminal; nullopt = unknown id.
  std::optional<EventBatch> events(std::uint64_t id, std::uint64_t from_seq,
                                   double timeout_s) const;

  /// Percentile summary of one serve-level latency histogram (seconds).
  /// Estimated via telemetry::Histogram::quantile over the SLO histograms
  /// the server observes on every terminal job.
  struct LatencySummary {
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    std::uint64_t count = 0;
  };

  struct Stats {
    std::uint64_t submitted = 0, rejected = 0, completed = 0, cancelled = 0,
                  failed = 0;
    // Self-healing counters (DESIGN.md §13).
    std::uint64_t shed = 0;       ///< jobs evicted by admission control
    std::uint64_t retries = 0;    ///< supervised re-admissions
    std::uint64_t recovered = 0;  ///< live jobs re-enqueued at startup
    bool journal_active = false;  ///< a state_dir journal is open
    bool journal_degraded = false;  ///< an append failed; durability is off
    std::uint64_t journal_bytes = 0;
    std::uint64_t journal_records = 0;
    std::size_t retry_pending = 0;  ///< jobs waiting out a backoff window
    std::size_t queued = 0, running = 0;
    std::size_t queue_capacity = 0, max_concurrency = 0;
    std::size_t thread_budget = 0, threads_leased = 0;
    bool accepting = true;
    // SLO telemetry (tentpole of the observability plane, DESIGN.md §12).
    std::uint64_t events_dropped = 0;   ///< cumulative across every job ring
    std::uint64_t deadline_missed = 0;  ///< jobs terminated by their deadline
    LatencySummary queue_wait;          ///< submit → start, terminal jobs
    LatencySummary run;                 ///< start → finish
    LatencySummary e2e;                 ///< submit → finish
    // Design store + batch sweeps (DESIGN.md §14).
    std::uint64_t design_parses = 0;
    std::uint64_t design_cache_hits = 0;
    std::uint64_t design_cache_evictions = 0;
    std::size_t designs_resident = 0;
    std::size_t design_resident_bytes = 0;
    std::size_t batches = 0;            ///< batches tracked (live + retained)
    std::uint64_t dedup_hits = 0;       ///< submits served from the result cache
    // Portfolio racing (DESIGN.md §16).
    std::size_t portfolios = 0;         ///< portfolios tracked
    std::uint64_t portfolio_kills = 0;  ///< laggards killed early by the racer
  };
  Stats stats() const;

  /// Stops accepting submissions, then: drain=true lets queued + running
  /// jobs finish; drain=false cancels queued jobs and arms running jobs'
  /// stop tokens. Blocks until workers exit. Idempotent.
  void shutdown(bool drain);

  bool accepting() const;
  const ServerConfig& config() const { return cfg_; }

 private:
  // One live job: record + stop token + event ring. Jobs are heap-allocated
  // (shared_ptr: waiters in wait()/events() hold a reference so eviction
  // from the result store cannot pull a condition_variable out from under
  // them) and never move, so worker threads can touch the token outside the
  // server lock's critical sections.
  struct Job {
    JobRecord rec;
    StopToken token;
    std::deque<JobEvent> events;
    std::uint64_t next_seq = 0;
    std::uint64_t dropped = 0;
    double submit_us = 0.0;  ///< Tracer::now_us() at submit (queue-wait span)
    /// Queue-entry deadline in the steady-clock domain (kNoDeadline = none);
    /// survives retries so the deadline keeps covering every attempt.
    double queue_deadline = QueuedJob::kNoDeadline;
    /// Dedup registration: (design_hash, config_hash) this job serves in
    /// dedup_index_ ({0,0} = none). Kept on the job so settling/eviction can
    /// drop the index entry without re-deriving the design hash.
    std::pair<std::uint64_t, std::uint64_t> dedup_key{0, 0};
    std::condition_variable cv;  ///< waits on mutex_: events + state changes
  };

  void worker_loop();
  void run_job(Job& job, std::size_t leased_threads);
  void finish_job_locked(Job& job, JobState state);
  void evict_terminal_locked();
  void publish_job_metrics(const JobRecord& rec);

  // Design store + batch plumbing (DESIGN.md §14).
  /// Core submit path shared by submit() and submit_batch(); caller holds
  /// mutex_. Performs the dedup lookup (spec.dedup + dedup_hash), allocates
  /// the id, journals, and enqueues. dedup_hash = the spec's design content
  /// hash (0 = dedup unavailable). allow_shed gates the displace-weaker
  /// admission path (off for batch members: batches are all-or-nothing).
  SubmitOutcome submit_spec_locked(JobSpec spec, std::uint64_t dedup_hash,
                                   bool allow_shed);
  /// Cancel core shared by cancel(), batch_cancel(), and the portfolio
  /// racer's early-kill; caller holds mutex_.
  bool cancel_locked(std::uint64_t id, std::string* error);
  /// FNV-1a over the placement-config slice of a spec (everything that
  /// changes the result at a fixed design) — the dedup key's second half.
  std::uint64_t config_hash(const JobSpec& spec) const;
  BatchStatus batch_status_locked(std::uint64_t id) const;
  void journal_design_ref_locked(std::uint64_t hash,
                                 const DesignStore::SourceRef& ref);

  // Durability & self-healing (DESIGN.md §13).
  void recover_from_journal();
  void journal_append_locked(JournalEvent type, std::uint64_t job_id,
                             std::string payload);
  /// True when the job was re-admitted for another attempt (caller must not
  /// settle it); false when the retry budget is spent or retries are off.
  bool maybe_schedule_retry_locked(Job& job, const char* outcome);
  void retry_loop();
  /// Sheds the weakest queued job strictly below `incoming_priority`.
  /// Returns true when a victim was settled kShed (queue space freed).
  bool shed_weakest_locked(int incoming_priority, const char* cause);

  // Thread-budget arbitration (counting semaphore over cfg_.thread_budget).
  std::size_t lease_threads(int requested);
  void release_threads(std::size_t leased);

  ServerConfig cfg_;
  JobQueue queue_;
  DesignStore designs_;

  mutable std::mutex mutex_;
  mutable std::condition_variable budget_cv_;
  mutable std::condition_variable batch_cv_;  ///< batch_wait: job settled
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::deque<std::uint64_t> terminal_order_;  // eviction FIFO
  std::uint64_t next_id_ = 1;
  std::size_t threads_leased_ = 0;
  std::size_t running_ = 0;
  bool accepting_ = true;
  bool shut_down_ = false;

  // Counters (under mutex_; mirrored into telemetry on change).
  std::uint64_t submitted_ = 0, rejected_ = 0, completed_ = 0, cancelled_ = 0,
                failed_ = 0;
  std::uint64_t shed_ = 0, retries_ = 0, recovered_ = 0;
  std::uint64_t events_dropped_total_ = 0;
  std::uint64_t deadline_missed_ = 0;
  std::uint64_t dedup_hits_ = 0;

  // Batch sweeps (under mutex_). Batches are bookkeeping only — member jobs
  // live in jobs_ like any other; a batch row just names them.
  struct Batch {
    std::uint64_t id = 0;
    std::uint64_t design_hash = 0;
    std::string label;
    std::vector<BatchJobRef> jobs;
    double submitted_s = 0.0;
  };
  std::map<std::uint64_t, Batch> batches_;
  std::uint64_t next_batch_id_ = 1;

  // Portfolio racing (under mutex_, DESIGN.md §16). A portfolio row names a
  // batch plus the racing policy; member jobs live in jobs_ like any other.
  struct Portfolio {
    std::uint64_t id = 0;
    PortfolioInfo info;       ///< batch id, design, seed, K, policy (journaled)
    std::size_t killed = 0;   ///< laggards the racer cancelled
    bool settled = false;     ///< all members terminal; racer stops sampling
  };
  std::map<std::uint64_t, Portfolio> portfolios_;
  std::uint64_t next_portfolio_id_ = 1;
  std::uint64_t portfolio_kills_ = 0;

  PortfolioStatus portfolio_status_locked(const Portfolio& p) const;
  /// One racer pass over every live portfolio: sample member progress from
  /// the event rings, kill strict laggards via cancel_locked. Caller holds
  /// mutex_.
  void race_portfolios_locked();
  void portfolio_loop();
  std::condition_variable portfolio_cv_;
  bool portfolio_stop_ = false;
  std::thread portfolio_thread_;
  /// (design_hash, config_hash) → job id serving that exact placement; used
  /// by dedup-enabled submits. Entries are dropped when the target job ends
  /// non-kDone or is evicted from the result store.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> dedup_index_;
  /// Design hashes already journaled as kDesignRef (avoid duplicate records).
  std::map<std::uint64_t, bool> journaled_designs_;

  // Durable journal (under mutex_). Degraded = an append failed (I/O error
  // or injected disk_full); the server keeps serving from memory but
  // admission treats the loss of durability as saturation.
  io::JournalWriter journal_;
  bool journal_degraded_ = false;

  // Supervised-retry timer: jobs waiting out their backoff, as (due steady-
  // clock seconds, id) pairs scanned for the earliest. Guarded by mutex_;
  // retry_cv_ wakes the timer thread on schedule/shutdown.
  struct PendingRetry {
    double due_s = 0.0;
    std::uint64_t id = 0;
  };
  std::vector<PendingRetry> retry_pending_;
  std::condition_variable retry_cv_;
  bool retry_stop_ = false;
  std::thread retry_thread_;

  // Serve-level SLO histograms (global-registry entries, resolved once in
  // the constructor; stable metric names — see DESIGN.md §12 catalog).
  telemetry::Histogram* queue_wait_hist_ = nullptr;  // serve.queue_wait_s
  telemetry::Histogram* run_hist_ = nullptr;         // serve.run_s
  telemetry::Histogram* e2e_hist_ = nullptr;         // serve.e2e_s

  std::vector<std::thread> workers_;
};

}  // namespace xplace::server
