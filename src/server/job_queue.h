// Bounded priority job queue with reject-on-full admission control.
//
// Ordering (strict weak, deterministic): higher priority first, then earlier
// deadline (no deadline sorts last), then submission order (FIFO). The queue
// is the admission-control point of the server: when it is full, submit is
// rejected immediately — backpressure surfaces to the client as an error
// response rather than unbounded buffering inside the daemon.
//
// Thread-safety: all methods are safe to call concurrently. pop() blocks
// until an entry is available or the queue is closed; close() wakes every
// blocked popper. remove() supports cancel-while-queued.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace xplace::server {

/// Queue entry: ordering keys + the job id (the server keeps the JobRecord;
/// the queue only schedules ids).
struct QueuedJob {
  std::uint64_t id = 0;
  int priority = 0;
  /// Absolute steady-clock deadline in seconds (monotonic domain of the
  /// caller's choosing); kNoDeadline = none.
  double deadline = kNoDeadline;
  std::uint64_t seq = 0;  ///< submission order; assigned by push()

  static constexpr double kNoDeadline = 1e300;
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Admits `job` (seq is assigned here). Returns false when the queue is
  /// full or closed — the reject-on-full backpressure path.
  bool push(QueuedJob job);

  /// Blocks until an entry is available, then pops the front per the
  /// ordering above. Returns false when the queue is closed and empty.
  bool pop(QueuedJob* out);

  /// Removes a queued entry by id (cancel-while-queued). False = not queued
  /// (already popped, or never admitted).
  bool remove(std::uint64_t id);

  /// Copies out the entry that would pop LAST (lowest priority, then latest
  /// deadline, then newest) — the load-shedding victim candidate. False when
  /// empty. The entry stays queued; pair with remove() to actually shed.
  bool weakest(QueuedJob* out) const;

  /// Rejects future pushes and wakes blocked poppers; queued entries drain
  /// normally (pop keeps returning them until empty).
  void close();

  /// Drops every queued entry, returning the removed ids' entries (the
  /// no-drain shutdown path marks them cancelled).
  std::vector<QueuedJob> drain();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

 private:
  // True when a should pop before b.
  static bool before(const QueuedJob& a, const QueuedJob& b);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<QueuedJob> entries_;  // unordered; pop scans (queues are small)
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace xplace::server
