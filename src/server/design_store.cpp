#include "server/design_store.h"

#include <stdexcept>

#include "io/bookshelf.h"
#include "io/generator.h"
#include "telemetry/metrics.h"
#include "util/logging.h"

namespace xplace::server {

namespace {

telemetry::Registry& reg() { return telemetry::Registry::global(); }

}  // namespace

DesignStore::DesignStore(DesignStoreConfig cfg) : cfg_(cfg) {
  cfg_.capacity = cfg_.capacity == 0 ? 1 : cfg_.capacity;
  publish_gauges_locked();
}

void DesignStore::touch_locked(std::uint64_t hash) {
  entries_[hash].last_use = ++tick_;
}

void DesignStore::publish_gauges_locked() {
  reg().gauge("serve.design.resident").set(static_cast<double>(resident_count_));
  reg().gauge("serve.design.resident_bytes").set(static_cast<double>(resident_bytes_));
}

DesignStore::SnapshotPtr DesignStore::load_locked(std::uint64_t hash,
                                                  const SourceRef& ref,
                                                  std::string* error) {
  SnapshotPtr snap;
  try {
    snap = ref.demo ? io::make_demo_snapshot(ref.cells, ref.seed)
                    : io::read_bookshelf_snapshot(ref.aux);
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return nullptr;
  }
  if (snap->content_hash != hash) {
    // Aux bytes changed on disk since the design was registered: the stored
    // hash no longer names this content. Refuse rather than serve a liar.
    if (error) {
      *error = "design source '" + snap->source +
               "' no longer matches its registered content hash";
    }
    return nullptr;
  }
  ++parses_;
  reg().counter("serve.design.parses").inc();
  EntryImpl& e = entries_[hash];
  e.snapshot = snap;
  e.source = ref;
  ++resident_count_;
  resident_bytes_ += snap->resident_bytes;
  touch_locked(hash);
  // The caller is about to use this snapshot: hold it pinned through the
  // bound check so the LRU pass can never pick the newcomer as its victim
  // (it would, when every other resident design is pinned by running jobs).
  ++e.pins;
  evict_lru_locked();
  --e.pins;
  publish_gauges_locked();
  XP_INFO("design store: parsed %s (hash %016llx, %zu cells, ~%zu KiB)",
          snap->source.c_str(), static_cast<unsigned long long>(hash),
          snap->num_cells(), snap->resident_bytes / 1024);
  return snap;
}

DesignStore::SnapshotPtr DesignStore::get_aux(const std::string& aux_path,
                                              std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t hash = 0;
  try {
    hash = io::hash_bookshelf_aux(aux_path);
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return nullptr;
  }
  auto it = entries_.find(hash);
  if (it != entries_.end() && it->second.snapshot) {
    ++cache_hits_;
    ++it->second.hits;
    reg().counter("serve.design.cache_hits").inc();
    touch_locked(hash);
    return it->second.snapshot;
  }
  SourceRef ref;
  ref.aux = aux_path;
  return load_locked(hash, ref, error);
}

DesignStore::SnapshotPtr DesignStore::get_demo(std::size_t cells,
                                               std::uint64_t seed,
                                               std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t hash = io::demo_content_hash(cells, seed);
  auto it = entries_.find(hash);
  if (it != entries_.end() && it->second.snapshot) {
    ++cache_hits_;
    ++it->second.hits;
    reg().counter("serve.design.cache_hits").inc();
    touch_locked(hash);
    return it->second.snapshot;
  }
  SourceRef ref;
  ref.demo = true;
  ref.cells = cells;
  ref.seed = seed;
  return load_locked(hash, ref, error);
}

DesignStore::SnapshotPtr DesignStore::get_hash(std::uint64_t hash,
                                               std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(hash);
  if (it == entries_.end()) {
    if (error) *error = "unknown design hash";
    return nullptr;
  }
  if (it->second.snapshot) {
    ++cache_hits_;
    ++it->second.hits;
    reg().counter("serve.design.cache_hits").inc();
    touch_locked(hash);
    return it->second.snapshot;
  }
  return load_locked(hash, it->second.source, error);
}

bool DesignStore::known(std::uint64_t hash) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(hash) != 0;
}

void DesignStore::pin(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(hash);
  if (it != entries_.end()) ++it->second.pins;
}

void DesignStore::unpin(std::uint64_t hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(hash);
  if (it != entries_.end() && it->second.pins > 0) --it->second.pins;
}

void DesignStore::evict_lru_locked() {
  while (resident_count_ > cfg_.capacity ||
         resident_bytes_ > cfg_.max_resident_bytes) {
    std::map<std::uint64_t, EntryImpl>::iterator victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.snapshot || it->second.pins > 0) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;  // everything resident is pinned
    resident_bytes_ -= victim->second.snapshot->resident_bytes;
    --resident_count_;
    victim->second.snapshot.reset();  // source stays — lazy re-parse later
    ++cache_evictions_;
    reg().counter("serve.design.cache_evictions").inc();
  }
}

bool DesignStore::evict(std::uint64_t hash, std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(hash);
  if (it == entries_.end()) {
    if (error) *error = "unknown design hash";
    return false;
  }
  if (it->second.pins > 0) {
    if (error) *error = "design is pinned by a running job";
    return false;
  }
  if (it->second.snapshot) {
    resident_bytes_ -= it->second.snapshot->resident_bytes;
    --resident_count_;
    ++cache_evictions_;
    reg().counter("serve.design.cache_evictions").inc();
  }
  entries_.erase(it);
  publish_gauges_locked();
  return true;
}

void DesignStore::register_source(std::uint64_t hash, SourceRef ref) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(hash);
  if (it != entries_.end()) return;  // already known (possibly resident)
  EntryImpl e;
  e.source = std::move(ref);
  entries_.emplace(hash, std::move(e));
}

std::vector<DesignStore::Entry> DesignStore::list() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [hash, e] : entries_) {
    Entry row;
    row.hash = hash;
    row.hits = e.hits;
    row.pins = e.pins;
    row.resident = e.snapshot != nullptr;
    if (e.snapshot) {
      row.source = e.snapshot->source;
      row.name = e.snapshot->design_name();
      row.cells = e.snapshot->num_cells();
      row.nets = e.snapshot->num_nets();
      row.resident_bytes = e.snapshot->resident_bytes;
    } else {
      row.source = e.source.demo
                       ? "demo:" + std::to_string(e.source.cells) + ":" +
                             std::to_string(e.source.seed)
                       : "aux:" + e.source.aux;
    }
    out.push_back(std::move(row));
  }
  return out;
}

DesignStore::Stats DesignStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.parses = parses_;
  s.cache_hits = cache_hits_;
  s.cache_evictions = cache_evictions_;
  s.resident = resident_count_;
  s.resident_bytes = resident_bytes_;
  return s;
}

}  // namespace xplace::server
