#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xplace::server::json {

// ---------------------------------------------------------------------------
// Value accessors
// ---------------------------------------------------------------------------

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Value::get_string(std::string_view key, std::string def) const {
  const Value* v = find(key);
  return v != nullptr && v->is_string() ? v->str() : std::move(def);
}

double Value::get_number(std::string_view key, double def) const {
  const Value* v = find(key);
  return v != nullptr && v->is_number() ? v->number() : def;
}

bool Value::get_bool(std::string_view key, bool def) const {
  const Value* v = find(key);
  return v != nullptr && v->is_bool() ? v->bool_value() : def;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  return out;
}

namespace {

void append_number(std::string& out, double n) {
  if (!std::isfinite(n)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  // Integers within the double-exact range print without a fraction so ids
  // and counters round-trip textually.
  if (n == std::floor(n) && std::fabs(n) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  out += buf;
}

void dump_value(const Value& v, std::string& out) {
  switch (v.type()) {
    case Value::Type::kNull: out += "null"; break;
    case Value::Type::kBool: out += v.bool_value() ? "true" : "false"; break;
    case Value::Type::kNumber: append_number(out, v.number()); break;
    case Value::Type::kString:
      out += '"';
      out += escape(v.str());
      out += '"';
      break;
    case Value::Type::kArray: {
      out += '[';
      bool first = true;
      for (const Value& e : v.array()) {
        if (!first) out += ',';
        first = false;
        dump_value(e, out);
      }
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.object()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(k);
        out += "\":";
        dump_value(e, out);
      }
      out += '}';
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Parser (strict recursive descent with depth cap)
// ---------------------------------------------------------------------------

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& msg) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "offset %zu: ", pos);
    error = buf + msg;
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool at_end() {
    skip_ws();
    return pos >= text.size();
  }

  bool literal(std::string_view word, Value v, Value* out) {
    if (text.substr(pos, word.size()) != word) return fail("invalid literal");
    pos += word.size();
    *out = std::move(v);
    return true;
  }

  bool parse_string(std::string* out) {
    // text[pos] == '"' on entry
    ++pos;
    std::string s;
    while (true) {
      if (pos >= text.size()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        *out = std::move(s);
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        s += static_cast<char>(c);
        ++pos;
        continue;
      }
      // Escape sequence.
      if (pos + 1 >= text.size()) return fail("unterminated escape");
      const char e = text[pos + 1];
      pos += 2;
      switch (e) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (pos + 1 >= text.size() || text[pos] != '\\' ||
                text[pos + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos += 2;
            unsigned lo = 0;
            if (!parse_hex4(&lo)) return false;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(s, cp);
          break;
        }
        default:
          return fail("invalid escape");
      }
    }
  }

  bool parse_hex4(unsigned* out) {
    if (pos + 4 > text.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text[pos + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape");
      }
    }
    pos += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return fail("invalid number");
    const std::string num(text.substr(start, pos - start));
    // RFC 8259: no leading zeros ("01"), no bare "-".
    const std::size_t d = num[0] == '-' ? 1 : 0;
    if (num.size() == d ||
        (num[d] == '0' && num.size() > d + 1 &&
         std::isdigit(static_cast<unsigned char>(num[d + 1])) != 0)) {
      pos = start;
      return fail("invalid number");
    }
    char* end = nullptr;
    const double v = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos = start;
      return fail("invalid number");
    }
    *out = Value(v);
    return true;
  }

  bool parse_value(Value* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case 'n': return literal("null", Value(), out);
      case 't': return literal("true", Value(true), out);
      case 'f': return literal("false", Value(false), out);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Value(std::move(s));
        return true;
      }
      case '[': {
        ++pos;
        Array arr;
        skip_ws();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          *out = Value(std::move(arr));
          return true;
        }
        while (true) {
          Value elem;
          if (!parse_value(&elem, depth + 1)) return false;
          arr.push_back(std::move(elem));
          skip_ws();
          if (pos >= text.size()) return fail("unterminated array");
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == ']') {
            ++pos;
            *out = Value(std::move(arr));
            return true;
          }
          return fail("expected ',' or ']'");
        }
      }
      case '{': {
        ++pos;
        Object obj;
        skip_ws();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          *out = Value(std::move(obj));
          return true;
        }
        while (true) {
          skip_ws();
          if (pos >= text.size() || text[pos] != '"') {
            return fail("expected object key");
          }
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (pos >= text.size() || text[pos] != ':') {
            return fail("expected ':'");
          }
          ++pos;
          Value val;
          if (!parse_value(&val, depth + 1)) return false;
          obj.emplace_back(std::move(key), std::move(val));
          skip_ws();
          if (pos >= text.size()) return fail("unterminated object");
          if (text[pos] == ',') {
            ++pos;
            continue;
          }
          if (text[pos] == '}') {
            ++pos;
            *out = Value(std::move(obj));
            return true;
          }
          return fail("expected ',' or '}'");
        }
      }
      default:
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
          return parse_number(out);
        }
        return fail("unexpected character");
    }
  }
};

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

bool parse(std::string_view text, Value* out, std::string* error) {
  Parser p;
  p.text = text;
  Value v;
  if (!p.parse_value(&v, 0)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  if (!p.at_end()) {
    p.fail("trailing characters after document");
    if (error != nullptr) *error = p.error;
    return false;
  }
  *out = std::move(v);
  return true;
}

}  // namespace xplace::server::json
