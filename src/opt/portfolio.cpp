#include "opt/portfolio.h"

#include <cmath>

#include "util/rng.h"

namespace xplace::opt {

std::vector<PerturbationVariant> make_portfolio_plan(int k,
                                                     std::uint64_t base_seed) {
  std::vector<PerturbationVariant> plan;
  if (k <= 0) return plan;
  plan.reserve(static_cast<std::size_t>(k));

  // Variant 0: the unperturbed baseline. Its presence makes the portfolio's
  // winner provably no worse than a single run at base_seed (it *is* that
  // run, raced against K-1 challengers).
  PerturbationVariant base;
  base.seed = base_seed == 0 ? 1 : base_seed;
  base.label = "v0";
  plan.push_back(base);

  // Challengers draw from one stream seeded by base_seed alone, so the whole
  // plan is a pure function of (k, base_seed). Ranges follow the perturb-and-
  // re-anneal recipe: anchor noise up to ~8× (log-uniform — small nudges and
  // big shakes both represented), γ/λ within a factor that re-shapes the
  // annealing path without breaking convergence.
  Rng rng(base.seed ^ 0x706f7274666f6cULL);  // "portfol"
  for (int i = 1; i < k; ++i) {
    PerturbationVariant v;
    v.seed = base.seed + static_cast<std::uint64_t>(i) * 7919ULL;
    v.init_noise_scale = std::exp(rng.uniform(std::log(0.5), std::log(8.0)));
    v.gamma_scale = rng.uniform(0.7, 1.4);
    v.lambda_scale = std::exp(rng.uniform(std::log(0.5), std::log(2.0)));
    v.label = "v" + std::to_string(i);
    plan.push_back(v);
  }
  return plan;
}

core::PlacerConfig apply_variant(core::PlacerConfig cfg,
                                 const PerturbationVariant& v) {
  if (v.seed > 0) cfg.seed = v.seed;
  if (v.init_noise_scale > 0.0) cfg.center_init_noise *= v.init_noise_scale;
  if (v.gamma_scale > 0.0) cfg.gamma_base_factor *= v.gamma_scale;
  if (v.lambda_scale > 0.0) cfg.lambda_init_factor *= v.lambda_scale;
  return cfg;
}

}  // namespace xplace::opt
