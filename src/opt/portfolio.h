// Portfolio plan generation for K-way perturbed-restart racing
// (DESIGN.md §16, grounded in "Escaping Local Optima in Global Placement",
// arXiv 2402.18311).
//
// Xplace's GP is a nonconvex descent: where it lands depends on the initial
// anchor noise, the spreading order the filler seed induces, and the γ/λ
// annealing path. A portfolio exploits that sensitivity deliberately — K
// restarts of the *same* design, each with a perturbed stochastic stream and
// schedule, raced to completion so the best basin wins.
//
// This module is the deterministic half of the subsystem: given (K, base
// seed) it produces the exact same K perturbation variants every time, so a
// portfolio is reproducible from two numbers and each member is individually
// reproducible from its variant (the server threads the variant through
// JobSpec → PlacerConfig). The racing half lives in src/server/.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"

namespace xplace::opt {

/// One perturbed restart: a first-class run seed plus multiplicative tweaks
/// of the stochastic/annealing knobs that shape the descent trajectory.
struct PerturbationVariant {
  std::uint64_t seed = 0;        ///< PlacerConfig::seed (derives all streams)
  double init_noise_scale = 1.0; ///< × center_init_noise (anchor injection)
  double gamma_scale = 1.0;      ///< × gamma_base_factor (WA smoothing path)
  double lambda_scale = 1.0;     ///< × lambda_init_factor (density pressure)
  std::string label;             ///< "v0".."vK-1" (v0 = unperturbed baseline)
};

/// Deterministic K-way plan. Variant 0 is the unperturbed baseline at
/// `base_seed` (so the portfolio's winner is never worse than a single run
/// at that seed); variants 1..K-1 draw perturbations from an Rng seeded by
/// `base_seed` alone. Same (k, base_seed) ⇒ bit-identical plan.
std::vector<PerturbationVariant> make_portfolio_plan(int k,
                                                     std::uint64_t base_seed);

/// Applies a variant to a placement config (seed + multiplicative knobs).
core::PlacerConfig apply_variant(core::PlacerConfig cfg,
                                 const PerturbationVariant& v);

}  // namespace xplace::opt
