// A content-addressed, immutable parse result: one finalized Database (pre-
// filler, at its parse-time positions) plus the identity the design store
// keys on. Snapshots are shared via shared_ptr<const DesignSnapshot> across
// concurrent placement runs; materialize() hands each run a private mutable
// state that still shares the parse-time arrays copy-on-write.
#pragma once

#include <cstdint>
#include <string>

#include "db/database.h"

namespace xplace::db {

struct DesignSnapshot {
  /// FNV-1a over the design's source bytes (bookshelf file contents) or its
  /// generator key (demo cells/seed). Stable across processes and restarts.
  std::uint64_t content_hash = 0;
  /// Human-readable provenance: "aux:<path>" or "demo:<cells>:<seed>".
  std::string source;
  /// Finalized database, fillers not yet inserted. Never mutated after load.
  Database base;
  /// Estimated footprint of the shared immutable core (store accounting).
  std::size_t resident_bytes = 0;

  const std::string& design_name() const { return base.design_name(); }
  std::size_t num_cells() const { return base.num_physical(); }
  std::size_t num_nets() const { return base.num_nets(); }

  /// Materializes a private per-run state: O(cells) position doubles are
  /// copied; the netlist/geometry core is shared with every other run.
  Database materialize() const { return base; }
};

}  // namespace xplace::db
