#include "db/stats.h"

#include <cstdio>

#include "db/database.h"

namespace xplace::db {

std::string DesignStats::header() {
  return "design            #movable   #fixed    #nets     #pins  avgdeg   util  tdens";
}

std::string DesignStats::row() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-16s %9zu %8zu %8zu %9zu  %5.2f  %5.3f  %5.2f",
                design.c_str(), num_movable, num_fixed, num_nets, num_pins,
                avg_net_degree, utilization, target_density);
  return buf;
}

DesignStats compute_stats(const Database& db) {
  DesignStats s;
  s.design = db.design_name();
  s.num_movable = db.num_movable();
  s.num_fixed = db.num_fixed();
  s.num_nets = db.num_nets();
  s.num_pins = db.num_pins();
  s.avg_net_degree =
      s.num_nets == 0 ? 0.0
                      : static_cast<double>(s.num_pins) / static_cast<double>(s.num_nets);
  s.movable_area = db.total_movable_area();
  s.fixed_area = db.fixed_area_in_region();
  s.region_area = db.region().area();
  const double free_area = s.region_area - s.fixed_area;
  s.utilization = free_area > 0.0 ? s.movable_area / free_area : 0.0;
  s.target_density = db.target_density();
  return s;
}

}  // namespace xplace::db
