// Placement database: the netlist + geometry model shared by every stage
// (global placement, legalization, detailed placement, routing estimation).
//
// Layout convention after finalize():
//   cell ids [0, num_movable)                    — movable standard cells
//   cell ids [num_movable, num_physical)         — fixed cells (macros, pads)
//   cell ids [num_physical, num_cells_total)     — filler cells (no pins)
//
// All cell positions are *center* coordinates in the same unit as the region
// rectangle. Pin offsets are relative to the cell center.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/geometry.h"

namespace xplace::db {

enum class CellKind : std::uint8_t { kMovable = 0, kFixed = 1, kFiller = 2 };

/// A fence region (ISPD 2015): cells assigned to it must be placed inside
/// `rect`; unassigned cells must stay outside every fence.
struct FenceRegion {
  std::string name;
  RectD rect;
};

/// One placement row (from bookshelf .scl). Cells legalize onto rows at
/// site-aligned x positions.
struct Row {
  double lx = 0.0;       ///< left edge
  double ly = 0.0;       ///< bottom edge
  double height = 0.0;   ///< row (= standard cell) height
  double site_width = 1.0;
  int num_sites = 0;

  double hx() const { return lx + site_width * num_sites; }
  double hy() const { return ly + height; }
};

class Database {
 public:
  // ---- construction (builder phase) ------------------------------------
  /// Adds a cell; returns a provisional id that is remapped by finalize().
  int add_cell(std::string name, double width, double height, CellKind kind);
  int add_net(std::string name, double weight = 1.0);
  /// Pin on `net` attached to `cell` at offset (ox, oy) from the cell center.
  void add_pin(int net, int cell, double ox, double oy);

  void set_region(const RectD& region) { region_ = region; }
  void set_target_density(double d) { target_density_ = d; }
  void add_row(const Row& row) { rows_.push_back(row); }
  void set_design_name(std::string name) { design_name_ = std::move(name); }

  /// Declares a fence region; returns its id. Builder phase only.
  int add_fence_region(std::string name, const RectD& rect);
  /// Assigns a (provisional-id) movable cell to a fence. Builder phase only.
  void assign_to_fence(int cell, int fence);

  /// Set the initial (center) position of a cell by provisional id.
  void set_initial_position(int cell, double x, double y);

  /// Reorders cells movable-first/fixed-after, builds pin CSR structures,
  /// and freezes the database. Must be called exactly once.
  void finalize();
  bool finalized() const { return finalized_; }

  /// Scales a movable cell's width by `factor` (routability-driven
  /// inflation). Allowed after finalize (before fillers are inserted);
  /// updates the cached movable area.
  void scale_cell_width(std::size_t cell, double factor);

  /// Appends filler cells per ePlace: total filler area equals
  /// target_density * free_area - movable_area (clamped at 0); each filler is
  /// a square with side = sqrt(mean movable cell area), at random positions.
  /// Must be called after finalize(). Safe to call with zero result.
  void insert_fillers(std::uint64_t seed = 1);

  // ---- identity ---------------------------------------------------------
  const std::string& design_name() const { return design_name_; }

  // ---- sizes --------------------------------------------------------------
  std::size_t num_movable() const { return num_movable_; }
  std::size_t num_fixed() const { return num_physical_ - num_movable_; }
  std::size_t num_physical() const { return num_physical_; }
  std::size_t num_fillers() const { return widths_.size() - num_physical_; }
  std::size_t num_cells_total() const { return widths_.size(); }
  std::size_t num_nets() const { return net_names_.size(); }
  std::size_t num_pins() const { return pin_cell_.size(); }

  bool is_movable(std::size_t cell) const { return cell < num_movable_; }
  bool is_filler(std::size_t cell) const { return cell >= num_physical_; }

  // ---- geometry -----------------------------------------------------------
  const RectD& region() const { return region_; }
  double target_density() const { return target_density_; }
  const std::vector<Row>& rows() const { return rows_; }

  double width(std::size_t cell) const { return widths_[cell]; }
  double height(std::size_t cell) const { return heights_[cell]; }
  double area(std::size_t cell) const { return widths_[cell] * heights_[cell]; }
  CellKind kind(std::size_t cell) const { return kinds_[cell]; }
  const std::string& cell_name(std::size_t cell) const { return cell_names_[cell]; }
  const std::string& net_name(std::size_t net) const { return net_names_[net]; }
  double net_weight(std::size_t net) const { return net_weights_[net]; }

  /// Cell id by name; -1 if unknown. (Names are unique per design.)
  int cell_id(const std::string& name) const;

  // ---- fence regions --------------------------------------------------------
  const std::vector<FenceRegion>& fences() const { return fences_; }
  bool has_fences() const { return !fences_.empty(); }
  /// Fence id of a cell, or -1 for the default (outside-all-fences) region.
  int cell_fence(std::size_t cell) const {
    return cell_fence_.empty() ? -1 : cell_fence_[cell];
  }

  // ---- positions (center coordinates) -------------------------------------
  double x(std::size_t cell) const { return x_[cell]; }
  double y(std::size_t cell) const { return y_[cell]; }
  void set_position(std::size_t cell, double x, double y) {
    x_[cell] = x;
    y_[cell] = y;
  }
  const std::vector<double>& x() const { return x_; }
  const std::vector<double>& y() const { return y_; }
  std::vector<double>& mutable_x() { return x_; }
  std::vector<double>& mutable_y() { return y_; }

  RectD cell_rect(std::size_t cell) const {
    const double hw = widths_[cell] * 0.5, hh = heights_[cell] * 0.5;
    return {x_[cell] - hw, y_[cell] - hh, x_[cell] + hw, y_[cell] + hh};
  }

  // ---- connectivity (valid after finalize) ---------------------------------
  /// Net pins occupy [net_pin_start(e), net_pin_start(e+1)) in the pin arrays.
  std::size_t net_pin_start(std::size_t net) const { return net_pin_start_[net]; }
  std::size_t net_degree(std::size_t net) const {
    return net_pin_start_[net + 1] - net_pin_start_[net];
  }
  int pin_cell(std::size_t pin) const { return pin_cell_[pin]; }
  double pin_offset_x(std::size_t pin) const { return pin_offset_x_[pin]; }
  double pin_offset_y(std::size_t pin) const { return pin_offset_y_[pin]; }

  /// Pins of a cell occupy [cell_pin_start(c), cell_pin_start(c+1)) in
  /// cell_pin_list(); filler cells have empty ranges.
  std::size_t cell_pin_start(std::size_t cell) const { return cell_pin_start_[cell]; }
  const std::vector<std::uint32_t>& cell_pin_list() const { return cell_pin_list_; }
  std::uint32_t pin_net(std::size_t pin) const { return pin_net_[pin]; }

  /// Number of nets incident to a cell (|S_i| in the preconditioner).
  std::size_t cell_num_nets(std::size_t cell) const {
    return cell_pin_start_[cell + 1] - cell_pin_start_[cell];
  }

  // ---- derived quantities ---------------------------------------------------
  double total_movable_area() const { return total_movable_area_; }
  /// Area of fixed cells clipped to the region.
  double fixed_area_in_region() const { return fixed_area_in_region_; }

  /// Exact total HPWL at current positions: Σ_e w_e * (Δx + Δy). Nets with
  /// fewer than 2 pins contribute zero.
  double hpwl() const;

  /// Per-net HPWL (unweighted) for one net.
  double net_hpwl(std::size_t net) const;

 private:
  void require_builder() const;

  std::string design_name_ = "unnamed";
  bool finalized_ = false;

  // Cell store (movable-first after finalize).
  std::vector<std::string> cell_names_;
  std::vector<double> widths_, heights_;
  std::vector<CellKind> kinds_;
  std::vector<double> x_, y_;
  std::size_t num_movable_ = 0;
  std::size_t num_physical_ = 0;
  std::unordered_map<std::string, int> cell_index_;

  // Net store.
  std::vector<std::string> net_names_;
  std::vector<double> net_weights_;

  // Builder-phase pins (net, cell, offset).
  struct RawPin {
    int net;
    int cell;
    double ox, oy;
  };
  std::vector<RawPin> raw_pins_;

  // CSR pin structures (after finalize).
  std::vector<std::uint32_t> net_pin_start_;
  std::vector<std::uint32_t> pin_cell_;
  std::vector<std::uint32_t> pin_net_;
  std::vector<double> pin_offset_x_, pin_offset_y_;
  std::vector<std::uint32_t> cell_pin_start_;
  std::vector<std::uint32_t> cell_pin_list_;

  RectD region_{0, 0, 0, 0};
  double target_density_ = 1.0;
  std::vector<Row> rows_;
  std::vector<FenceRegion> fences_;
  std::vector<int> cell_fence_;  ///< per-cell fence id (-1 default); empty if no fences

  double total_movable_area_ = 0.0;
  double fixed_area_in_region_ = 0.0;
};

}  // namespace xplace::db
