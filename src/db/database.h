// Placement database: the netlist + geometry model shared by every stage
// (global placement, legalization, detailed placement, routing estimation).
//
// Layout convention after finalize():
//   cell ids [0, num_movable)                    — movable standard cells
//   cell ids [num_movable, num_physical)         — fixed cells (macros, pads)
//   cell ids [num_physical, num_cells_total)     — filler cells (no pins)
//
// All cell positions are *center* coordinates in the same unit as the region
// rectangle. Pin offsets are relative to the cell center.
//
// Ownership model: finalize() freezes every parse-time array (netlist, sizes,
// rows, fences, CSR pin structures) into an immutable DesignCore held behind a
// shared_ptr. Copying a finalized Database is cheap — the core is shared
// copy-on-write across all copies; only the per-run mutable state (positions,
// filler overlay, width-inflation overlay, target-density override) is
// duplicated. This is what lets one parsed design back many concurrent runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/geometry.h"

namespace xplace::db {

enum class CellKind : std::uint8_t { kMovable = 0, kFixed = 1, kFiller = 2 };

/// A fence region (ISPD 2015): cells assigned to it must be placed inside
/// `rect`; unassigned cells must stay outside every fence.
struct FenceRegion {
  std::string name;
  RectD rect;
};

/// One placement row (from bookshelf .scl). Cells legalize onto rows at
/// site-aligned x positions.
struct Row {
  double lx = 0.0;       ///< left edge
  double ly = 0.0;       ///< bottom edge
  double height = 0.0;   ///< row (= standard cell) height
  double site_width = 1.0;
  int num_sites = 0;

  double hx() const { return lx + site_width * num_sites; }
  double hy() const { return ly + height; }
};

/// Everything a parse produces and a run never mutates. Shared read-only
/// (shared_ptr<const DesignCore>) by every Database materialized from one
/// snapshot; per-run mutations (positions, fillers, width inflation) live as
/// overlays in Database itself.
struct DesignCore {
  std::string design_name = "unnamed";

  // Cell store (movable-first after finalize).
  std::vector<std::string> cell_names;
  std::vector<double> widths, heights;
  std::vector<CellKind> kinds;
  std::size_t num_movable = 0;
  std::size_t num_physical = 0;
  std::unordered_map<std::string, int> cell_index;

  // Net store.
  std::vector<std::string> net_names;
  std::vector<double> net_weights;

  // CSR pin structures.
  std::vector<std::uint32_t> net_pin_start;
  std::vector<std::uint32_t> pin_cell;
  std::vector<std::uint32_t> pin_net;
  std::vector<double> pin_offset_x, pin_offset_y;
  std::vector<std::uint32_t> cell_pin_start;
  std::vector<std::uint32_t> cell_pin_list;

  RectD region{0, 0, 0, 0};
  double target_density = 1.0;
  std::vector<Row> rows;
  std::vector<FenceRegion> fences;
  std::vector<int> cell_fence;  ///< per-cell fence id (-1 default); empty if no fences

  double total_movable_area = 0.0;
  double fixed_area_in_region = 0.0;

  /// Rough resident footprint of the shared arrays (cache accounting).
  std::size_t resident_bytes() const;
};

class Database {
 public:
  // ---- construction (builder phase) ------------------------------------
  /// Adds a cell; returns a provisional id that is remapped by finalize().
  int add_cell(std::string name, double width, double height, CellKind kind);
  int add_net(std::string name, double weight = 1.0);
  /// Pin on `net` attached to `cell` at offset (ox, oy) from the cell center.
  void add_pin(int net, int cell, double ox, double oy);

  void set_region(const RectD& region) { build_.region = region; }
  /// Builder phase: sets the design's parse-time density. After finalize it
  /// only adjusts this run's density (the shared core keeps the parse value),
  /// which makes target density a per-run sweep axis; must precede
  /// insert_fillers() to take effect.
  void set_target_density(double d) {
    if (finalized_) {
      target_density_run_ = d;
    } else {
      build_.target_density = d;
    }
  }
  void add_row(const Row& row) { build_.rows.push_back(row); }
  void set_design_name(std::string name) { build_.design_name = std::move(name); }

  /// Declares a fence region; returns its id. Builder phase only.
  int add_fence_region(std::string name, const RectD& rect);
  /// Assigns a (provisional-id) movable cell to a fence. Builder phase only.
  void assign_to_fence(int cell, int fence);

  /// Set the initial (center) position of a cell by provisional id.
  void set_initial_position(int cell, double x, double y);

  /// Reorders cells movable-first/fixed-after, builds pin CSR structures,
  /// and freezes the parse-time data into the shared immutable core.
  /// Must be called exactly once.
  void finalize();
  bool finalized() const { return finalized_; }

  /// The shared immutable core (null before finalize). Two Databases with the
  /// same core share all parse-time arrays copy-on-write.
  std::shared_ptr<const DesignCore> core() const { return core_; }

  /// Scales a movable cell's width by `factor` (routability-driven
  /// inflation). Allowed after finalize (before fillers are inserted);
  /// updates the cached movable area. Copy-on-write: the first call detaches
  /// a private width array from the shared core.
  void scale_cell_width(std::size_t cell, double factor);

  /// Appends filler cells per ePlace: total filler area equals
  /// target_density * free_area - movable_area (clamped at 0); each filler is
  /// a square with side = sqrt(mean movable cell area), at random positions.
  /// Must be called after finalize(). Safe to call with zero result. Fillers
  /// live in a per-run overlay — the shared core is untouched.
  void insert_fillers(std::uint64_t seed = 1);

  // ---- identity ---------------------------------------------------------
  const std::string& design_name() const { return C().design_name; }

  // ---- sizes --------------------------------------------------------------
  std::size_t num_movable() const { return C().num_movable; }
  std::size_t num_fixed() const { return C().num_physical - C().num_movable; }
  std::size_t num_physical() const { return C().num_physical; }
  std::size_t num_fillers() const { return filler_w_.size(); }
  std::size_t num_cells_total() const { return C().widths.size() + filler_w_.size(); }
  std::size_t num_nets() const { return C().net_names.size(); }
  std::size_t num_pins() const { return C().pin_cell.size(); }

  bool is_movable(std::size_t cell) const { return cell < C().num_movable; }
  bool is_filler(std::size_t cell) const { return cell >= C().num_physical; }

  // ---- geometry -----------------------------------------------------------
  const RectD& region() const { return C().region; }
  double target_density() const {
    return finalized_ ? target_density_run_ : build_.target_density;
  }
  const std::vector<Row>& rows() const { return C().rows; }

  double width(std::size_t cell) const {
    const DesignCore& k = C();
    if (cell >= k.widths.size()) return filler_w_[cell - k.widths.size()];
    return widths_cow_.empty() ? k.widths[cell] : widths_cow_[cell];
  }
  double height(std::size_t cell) const {
    const DesignCore& k = C();
    return cell < k.heights.size() ? k.heights[cell]
                                   : filler_h_[cell - k.heights.size()];
  }
  double area(std::size_t cell) const { return width(cell) * height(cell); }
  CellKind kind(std::size_t cell) const {
    const DesignCore& k = C();
    return cell < k.kinds.size() ? k.kinds[cell] : CellKind::kFiller;
  }
  const std::string& cell_name(std::size_t cell) const {
    const DesignCore& k = C();
    return cell < k.cell_names.size() ? k.cell_names[cell]
                                      : filler_names_[cell - k.cell_names.size()];
  }
  const std::string& net_name(std::size_t net) const { return C().net_names[net]; }
  double net_weight(std::size_t net) const { return C().net_weights[net]; }

  /// Cell id by name; -1 if unknown. (Names are unique per design; filler
  /// cells are not indexed.)
  int cell_id(const std::string& name) const;

  // ---- fence regions --------------------------------------------------------
  const std::vector<FenceRegion>& fences() const { return C().fences; }
  bool has_fences() const { return !C().fences.empty(); }
  /// Fence id of a cell, or -1 for the default (outside-all-fences) region.
  int cell_fence(std::size_t cell) const {
    const DesignCore& k = C();
    if (cell >= k.widths.size()) return filler_fence_[cell - k.widths.size()];
    return k.cell_fence.empty() ? -1 : k.cell_fence[cell];
  }

  // ---- positions (center coordinates) -------------------------------------
  double x(std::size_t cell) const { return x_[cell]; }
  double y(std::size_t cell) const { return y_[cell]; }
  void set_position(std::size_t cell, double x, double y) {
    x_[cell] = x;
    y_[cell] = y;
  }
  const std::vector<double>& x() const { return x_; }
  const std::vector<double>& y() const { return y_; }
  std::vector<double>& mutable_x() { return x_; }
  std::vector<double>& mutable_y() { return y_; }

  RectD cell_rect(std::size_t cell) const {
    const double hw = width(cell) * 0.5, hh = height(cell) * 0.5;
    return {x_[cell] - hw, y_[cell] - hh, x_[cell] + hw, y_[cell] + hh};
  }

  // ---- connectivity (valid after finalize) ---------------------------------
  /// Net pins occupy [net_pin_start(e), net_pin_start(e+1)) in the pin arrays.
  std::size_t net_pin_start(std::size_t net) const { return C().net_pin_start[net]; }
  std::size_t net_degree(std::size_t net) const {
    return C().net_pin_start[net + 1] - C().net_pin_start[net];
  }
  int pin_cell(std::size_t pin) const { return C().pin_cell[pin]; }
  double pin_offset_x(std::size_t pin) const { return C().pin_offset_x[pin]; }
  double pin_offset_y(std::size_t pin) const { return C().pin_offset_y[pin]; }

  /// Pins of a cell occupy [cell_pin_start(c), cell_pin_start(c+1)) in
  /// cell_pin_list(); filler cells have empty ranges.
  std::size_t cell_pin_start(std::size_t cell) const {
    const DesignCore& k = C();
    return k.cell_pin_start[cell < k.num_physical ? cell : k.num_physical];
  }
  const std::vector<std::uint32_t>& cell_pin_list() const { return C().cell_pin_list; }
  std::uint32_t pin_net(std::size_t pin) const { return C().pin_net[pin]; }

  /// Number of nets incident to a cell (|S_i| in the preconditioner).
  std::size_t cell_num_nets(std::size_t cell) const {
    return cell_pin_start(cell + 1) - cell_pin_start(cell);
  }

  // ---- derived quantities ---------------------------------------------------
  double total_movable_area() const { return total_movable_area_run_; }
  /// Area of fixed cells clipped to the region.
  double fixed_area_in_region() const { return C().fixed_area_in_region; }

  /// Rough resident footprint of the shared immutable core.
  std::size_t core_resident_bytes() const { return C().resident_bytes(); }

  /// Exact total HPWL at current positions: Σ_e w_e * (Δx + Δy). Nets with
  /// fewer than 2 pins contribute zero.
  double hpwl() const;

  /// Per-net HPWL (unweighted) for one net.
  double net_hpwl(std::size_t net) const;

 private:
  void require_builder() const;
  /// Active parse-time view: the shared core once finalized, else the builder
  /// scratch. Per-run overlays layer on top of this in the accessors.
  const DesignCore& C() const { return core_ ? *core_ : build_; }

  bool finalized_ = false;

  // Builder-phase scratch; moved into core_ (and reset) by finalize().
  DesignCore build_;
  // Immutable parse-time data, shared across every copy of this Database.
  std::shared_ptr<const DesignCore> core_;

  // Builder-phase pins (net, cell, offset).
  struct RawPin {
    int net;
    int cell;
    double ox, oy;
  };
  std::vector<RawPin> raw_pins_;

  // ---- per-run mutable state (private to each Database copy) -------------
  std::vector<double> x_, y_;           ///< positions; grows with fillers
  std::vector<double> widths_cow_;      ///< detached widths after scale_cell_width; empty = use core
  std::vector<std::string> filler_names_;
  std::vector<double> filler_w_, filler_h_;
  std::vector<int> filler_fence_;
  double target_density_run_ = 1.0;
  double total_movable_area_run_ = 0.0;
};

}  // namespace xplace::db
