// Design statistics (Table 1 of the paper) and utilization summaries.
#pragma once

#include <string>

namespace xplace::db {

class Database;

struct DesignStats {
  std::string design;
  std::size_t num_movable = 0;
  std::size_t num_fixed = 0;
  std::size_t num_nets = 0;
  std::size_t num_pins = 0;
  double avg_net_degree = 0.0;
  double movable_area = 0.0;
  double fixed_area = 0.0;
  double region_area = 0.0;
  double utilization = 0.0;  ///< movable area / free area
  double target_density = 0.0;

  /// One formatted row: name, #cells, #nets, ... (used by bench_table1).
  std::string row() const;
  static std::string header();
};

DesignStats compute_stats(const Database& db);

}  // namespace xplace::db
