#include "db/database.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/logging.h"
#include "util/rng.h"

namespace xplace::db {

void Database::require_builder() const {
  if (finalized_) {
    throw std::logic_error("Database already finalized");
  }
}

int Database::add_cell(std::string name, double width, double height,
                       CellKind kind) {
  require_builder();
  if (width < 0.0 || height < 0.0) {
    throw std::invalid_argument("cell '" + name + "' has negative size");
  }
  if (cell_index_.count(name) != 0) {
    throw std::invalid_argument("duplicate cell name '" + name + "'");
  }
  const int id = static_cast<int>(cell_names_.size());
  cell_index_.emplace(name, id);
  cell_names_.push_back(std::move(name));
  widths_.push_back(width);
  heights_.push_back(height);
  kinds_.push_back(kind);
  x_.push_back(0.0);
  y_.push_back(0.0);
  return id;
}

int Database::add_net(std::string name, double weight) {
  require_builder();
  const int id = static_cast<int>(net_names_.size());
  net_names_.push_back(std::move(name));
  net_weights_.push_back(weight);
  return id;
}

void Database::add_pin(int net, int cell, double ox, double oy) {
  require_builder();
  assert(net >= 0 && net < static_cast<int>(net_names_.size()));
  assert(cell >= 0 && cell < static_cast<int>(cell_names_.size()));
  raw_pins_.push_back(RawPin{net, cell, ox, oy});
}

void Database::set_initial_position(int cell, double x, double y) {
  x_[cell] = x;
  y_[cell] = y;
}

int Database::add_fence_region(std::string name, const RectD& rect) {
  require_builder();
  if (rect.width() <= 0.0 || rect.height() <= 0.0) {
    throw std::invalid_argument("fence region '" + name + "' is degenerate");
  }
  fences_.push_back(FenceRegion{std::move(name), rect});
  return static_cast<int>(fences_.size() - 1);
}

void Database::assign_to_fence(int cell, int fence) {
  require_builder();
  if (fence < 0 || fence >= static_cast<int>(fences_.size())) {
    throw std::invalid_argument("unknown fence id");
  }
  if (kinds_[cell] != CellKind::kMovable) {
    throw std::invalid_argument("only movable cells can be fenced");
  }
  if (cell_fence_.empty()) cell_fence_.assign(cell_names_.size(), -1);
  cell_fence_.resize(cell_names_.size(), -1);
  cell_fence_[cell] = fence;
}

void Database::finalize() {
  require_builder();
  const std::size_t n = cell_names_.size();

  // Stable permutation: movable cells first, fixed cells after.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return (kinds_[a] == CellKind::kMovable) > (kinds_[b] == CellKind::kMovable);
  });
  std::vector<std::uint32_t> old_to_new(n);
  for (std::size_t i = 0; i < n; ++i) old_to_new[order[i]] = static_cast<std::uint32_t>(i);

  auto permute = [&](auto& v) {
    using V = std::decay_t<decltype(v)>;
    V out(v.size());
    for (std::size_t i = 0; i < n; ++i) out[i] = std::move(v[order[i]]);
    v = std::move(out);
  };
  permute(cell_names_);
  permute(widths_);
  permute(heights_);
  permute(kinds_);
  permute(x_);
  permute(y_);
  if (!cell_fence_.empty()) {
    cell_fence_.resize(n, -1);
    permute(cell_fence_);
  }
  cell_index_.clear();
  for (std::size_t i = 0; i < n; ++i) cell_index_.emplace(cell_names_[i], static_cast<int>(i));

  num_movable_ = static_cast<std::size_t>(
      std::count(kinds_.begin(), kinds_.end(), CellKind::kMovable));
  num_physical_ = n;

  // Build net CSR. Pins keep their within-net insertion order.
  const std::size_t num_nets = net_names_.size();
  net_pin_start_.assign(num_nets + 1, 0);
  for (const RawPin& p : raw_pins_) ++net_pin_start_[p.net + 1];
  for (std::size_t e = 0; e < num_nets; ++e) net_pin_start_[e + 1] += net_pin_start_[e];
  const std::size_t num_pins = raw_pins_.size();
  pin_cell_.resize(num_pins);
  pin_net_.resize(num_pins);
  pin_offset_x_.resize(num_pins);
  pin_offset_y_.resize(num_pins);
  {
    std::vector<std::uint32_t> cursor(net_pin_start_.begin(), net_pin_start_.end() - 1);
    for (const RawPin& p : raw_pins_) {
      const std::uint32_t slot = cursor[p.net]++;
      pin_cell_[slot] = old_to_new[p.cell];
      pin_net_[slot] = static_cast<std::uint32_t>(p.net);
      pin_offset_x_[slot] = p.ox;
      pin_offset_y_[slot] = p.oy;
    }
  }
  raw_pins_.clear();
  raw_pins_.shrink_to_fit();

  // Build cell→pin CSR.
  cell_pin_start_.assign(n + 1, 0);
  for (std::uint32_t c : pin_cell_) ++cell_pin_start_[c + 1];
  for (std::size_t c = 0; c < n; ++c) cell_pin_start_[c + 1] += cell_pin_start_[c];
  cell_pin_list_.resize(num_pins);
  {
    std::vector<std::uint32_t> cursor(cell_pin_start_.begin(), cell_pin_start_.end() - 1);
    for (std::uint32_t p = 0; p < num_pins; ++p) {
      cell_pin_list_[cursor[pin_cell_[p]]++] = p;
    }
  }

  // Default region: bounding box of rows if provided and region unset.
  if (region_.width() <= 0.0 && !rows_.empty()) {
    RectD r{rows_[0].lx, rows_[0].ly, rows_[0].hx(), rows_[0].hy()};
    for (const Row& row : rows_) {
      r = r.united(RectD{row.lx, row.ly, row.hx(), row.hy()});
    }
    region_ = r;
  }

  total_movable_area_ = 0.0;
  for (std::size_t c = 0; c < num_movable_; ++c) total_movable_area_ += area(c);
  fixed_area_in_region_ = 0.0;
  for (std::size_t c = num_movable_; c < n; ++c) {
    fixed_area_in_region_ += cell_rect(c).overlap_area(region_);
  }

  finalized_ = true;
  XP_DEBUG("finalized design '%s': %zu movable, %zu fixed, %zu nets, %zu pins",
           design_name_.c_str(), num_movable_, num_fixed(), num_nets, num_pins);
}

void Database::scale_cell_width(std::size_t cell, double factor) {
  if (!finalized_) throw std::logic_error("scale_cell_width before finalize");
  if (cell >= num_movable_) {
    throw std::invalid_argument("scale_cell_width: not a movable cell");
  }
  if (num_cells_total() != num_physical_) {
    throw std::logic_error("scale_cell_width after filler insertion");
  }
  if (factor <= 0.0) throw std::invalid_argument("non-positive inflation factor");
  const double old_area = area(cell);
  widths_[cell] *= factor;
  total_movable_area_ += area(cell) - old_area;
}

void Database::insert_fillers(std::uint64_t seed) {
  if (!finalized_) throw std::logic_error("insert_fillers before finalize");
  if (num_cells_total() != num_physical_) {
    throw std::logic_error("fillers already inserted");
  }
  if (num_movable_ == 0) return;

  // Filler size: mean movable width/height (ePlace uses the middle of the
  // sorted size distribution; the mean is equivalent for our size mixes).
  double mean_w = 0.0, mean_h = 0.0;
  for (std::size_t c = 0; c < num_movable_; ++c) {
    mean_w += widths_[c];
    mean_h += heights_[c];
  }
  mean_w /= static_cast<double>(num_movable_);
  mean_h /= static_cast<double>(num_movable_);
  const double one_area = std::max(1e-12, mean_w * mean_h);

  Rng rng(seed);
  std::size_t total_count = 0;
  // Per electrostatic region: allowed area, fixed blockage inside it, member
  // movable area; filler budget = D_t·free − movable (DREAMPlace 3.0 style).
  const int num_regions = static_cast<int>(fences_.size());
  for (int k = -1; k < num_regions; ++k) {
    double allowed_area;
    RectD bounds = region_;
    if (k >= 0) {
      bounds = fences_[k].rect.intersection(region_);
      allowed_area = std::max(0.0, bounds.width()) * std::max(0.0, bounds.height());
    } else {
      allowed_area = region_.area();
      for (const FenceRegion& f : fences_) {
        allowed_area -= f.rect.intersection(region_).area();
      }
    }
    double fixed_area = 0.0;
    for (std::size_t c = num_movable_; c < num_physical_; ++c) {
      const RectD r = cell_rect(c).intersection(region_);
      if (r.width() <= 0 || r.height() <= 0) continue;
      if (k >= 0) {
        fixed_area += r.overlap_area(fences_[k].rect);
      } else {
        double inside_fences = 0.0;
        for (const FenceRegion& f : fences_) inside_fences += r.overlap_area(f.rect);
        fixed_area += r.area() - inside_fences;
      }
    }
    double movable_area = 0.0;
    for (std::size_t c = 0; c < num_movable_; ++c) {
      if (cell_fence(c) == k) movable_area += area(c);
    }
    const double filler_area =
        std::max(0.0, target_density_ * (allowed_area - fixed_area) - movable_area);
    const std::size_t count = static_cast<std::size_t>(filler_area / one_area);
    if (count == 0) continue;

    const double lo_x = bounds.lx + mean_w * 0.5, hi_x = bounds.hx - mean_w * 0.5;
    const double lo_y = bounds.ly + mean_h * 0.5, hi_y = bounds.hy - mean_h * 0.5;
    for (std::size_t i = 0; i < count; ++i) {
      const int id = static_cast<int>(cell_names_.size());
      cell_names_.push_back("__filler_" + std::to_string(total_count + i));
      widths_.push_back(mean_w);
      heights_.push_back(mean_h);
      kinds_.push_back(CellKind::kFiller);
      double fx, fy;
      if (k < 0 && !fences_.empty()) {
        // Default-region fillers: rejection-sample outside the fences.
        fx = rng.uniform(lo_x, std::max(lo_x + 1e-9, hi_x));
        fy = rng.uniform(lo_y, std::max(lo_y + 1e-9, hi_y));
        for (int tries = 0; tries < 16; ++tries) {
          bool inside = false;
          for (const FenceRegion& f : fences_) {
            if (f.rect.contains(fx, fy)) {
              inside = true;
              break;
            }
          }
          if (!inside) break;
          fx = rng.uniform(lo_x, std::max(lo_x + 1e-9, hi_x));
          fy = rng.uniform(lo_y, std::max(lo_y + 1e-9, hi_y));
        }
      } else {
        fx = rng.uniform(lo_x, std::max(lo_x + 1e-9, hi_x));
        fy = rng.uniform(lo_y, std::max(lo_y + 1e-9, hi_y));
      }
      x_.push_back(fx);
      y_.push_back(fy);
      if (!cell_fence_.empty() || k >= 0) {
        if (cell_fence_.empty()) cell_fence_.assign(static_cast<std::size_t>(id), -1);
        cell_fence_.resize(static_cast<std::size_t>(id) + 1, -1);
        cell_fence_[id] = k;
      }
    }
    total_count += count;
  }
  if (!cell_fence_.empty()) cell_fence_.resize(num_cells_total(), -1);
  // Fillers carry no pins: extend the cell-pin CSR with empty ranges.
  cell_pin_start_.resize(num_cells_total() + 1, cell_pin_start_[num_physical_]);
  XP_DEBUG("inserted %zu fillers of %.3g x %.3g", total_count, mean_w, mean_h);
}

int Database::cell_id(const std::string& name) const {
  auto it = cell_index_.find(name);
  return it == cell_index_.end() ? -1 : it->second;
}

double Database::net_hpwl(std::size_t net) const {
  const std::size_t begin = net_pin_start_[net], end = net_pin_start_[net + 1];
  if (end - begin < 2) return 0.0;
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (std::size_t p = begin; p < end; ++p) {
    const std::uint32_t c = pin_cell_[p];
    const double px = x_[c] + pin_offset_x_[p];
    const double py = y_[c] + pin_offset_y_[p];
    min_x = std::min(min_x, px);
    max_x = std::max(max_x, px);
    min_y = std::min(min_y, py);
    max_y = std::max(max_y, py);
  }
  return (max_x - min_x) + (max_y - min_y);
}

double Database::hpwl() const {
  double total = 0.0;
  for (std::size_t e = 0; e < num_nets(); ++e) {
    total += net_weights_[e] * net_hpwl(e);
  }
  return total;
}

}  // namespace xplace::db
