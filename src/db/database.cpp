#include "db/database.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/logging.h"
#include "util/rng.h"

namespace xplace::db {

std::size_t DesignCore::resident_bytes() const {
  std::size_t bytes = sizeof(DesignCore);
  auto vec = [](const auto& v) {
    return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
  };
  bytes += vec(widths) + vec(heights) + vec(kinds);
  bytes += vec(net_weights) + vec(net_pin_start) + vec(pin_cell) + vec(pin_net);
  bytes += vec(pin_offset_x) + vec(pin_offset_y);
  bytes += vec(cell_pin_start) + vec(cell_pin_list);
  bytes += vec(rows) + vec(cell_fence);
  for (const std::string& s : cell_names) bytes += sizeof(std::string) + s.capacity();
  for (const std::string& s : net_names) bytes += sizeof(std::string) + s.capacity();
  for (const FenceRegion& f : fences) bytes += sizeof(FenceRegion) + f.name.capacity();
  // unordered_map: buckets + one node per entry (key string + int + pointers).
  bytes += cell_index.bucket_count() * sizeof(void*);
  for (const auto& kv : cell_index) {
    bytes += sizeof(void*) * 2 + sizeof(std::string) + kv.first.capacity() + sizeof(int);
  }
  return bytes;
}

void Database::require_builder() const {
  if (finalized_) {
    throw std::logic_error("Database already finalized");
  }
}

int Database::add_cell(std::string name, double width, double height,
                       CellKind kind) {
  require_builder();
  if (width < 0.0 || height < 0.0) {
    throw std::invalid_argument("cell '" + name + "' has negative size");
  }
  if (build_.cell_index.count(name) != 0) {
    throw std::invalid_argument("duplicate cell name '" + name + "'");
  }
  const int id = static_cast<int>(build_.cell_names.size());
  build_.cell_index.emplace(name, id);
  build_.cell_names.push_back(std::move(name));
  build_.widths.push_back(width);
  build_.heights.push_back(height);
  build_.kinds.push_back(kind);
  x_.push_back(0.0);
  y_.push_back(0.0);
  return id;
}

int Database::add_net(std::string name, double weight) {
  require_builder();
  const int id = static_cast<int>(build_.net_names.size());
  build_.net_names.push_back(std::move(name));
  build_.net_weights.push_back(weight);
  return id;
}

void Database::add_pin(int net, int cell, double ox, double oy) {
  require_builder();
  assert(net >= 0 && net < static_cast<int>(build_.net_names.size()));
  assert(cell >= 0 && cell < static_cast<int>(build_.cell_names.size()));
  raw_pins_.push_back(RawPin{net, cell, ox, oy});
}

void Database::set_initial_position(int cell, double x, double y) {
  x_[cell] = x;
  y_[cell] = y;
}

int Database::add_fence_region(std::string name, const RectD& rect) {
  require_builder();
  if (rect.width() <= 0.0 || rect.height() <= 0.0) {
    throw std::invalid_argument("fence region '" + name + "' is degenerate");
  }
  build_.fences.push_back(FenceRegion{std::move(name), rect});
  return static_cast<int>(build_.fences.size() - 1);
}

void Database::assign_to_fence(int cell, int fence) {
  require_builder();
  if (fence < 0 || fence >= static_cast<int>(build_.fences.size())) {
    throw std::invalid_argument("unknown fence id");
  }
  if (build_.kinds[cell] != CellKind::kMovable) {
    throw std::invalid_argument("only movable cells can be fenced");
  }
  if (build_.cell_fence.empty()) build_.cell_fence.assign(build_.cell_names.size(), -1);
  build_.cell_fence.resize(build_.cell_names.size(), -1);
  build_.cell_fence[cell] = fence;
}

void Database::finalize() {
  require_builder();
  const std::size_t n = build_.cell_names.size();

  // Stable permutation: movable cells first, fixed cells after.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return (build_.kinds[a] == CellKind::kMovable) > (build_.kinds[b] == CellKind::kMovable);
  });
  std::vector<std::uint32_t> old_to_new(n);
  for (std::size_t i = 0; i < n; ++i) old_to_new[order[i]] = static_cast<std::uint32_t>(i);

  auto permute = [&](auto& v) {
    using V = std::decay_t<decltype(v)>;
    V out(v.size());
    for (std::size_t i = 0; i < n; ++i) out[i] = std::move(v[order[i]]);
    v = std::move(out);
  };
  permute(build_.cell_names);
  permute(build_.widths);
  permute(build_.heights);
  permute(build_.kinds);
  permute(x_);
  permute(y_);
  if (!build_.cell_fence.empty()) {
    build_.cell_fence.resize(n, -1);
    permute(build_.cell_fence);
  }
  build_.cell_index.clear();
  for (std::size_t i = 0; i < n; ++i) {
    build_.cell_index.emplace(build_.cell_names[i], static_cast<int>(i));
  }

  build_.num_movable = static_cast<std::size_t>(
      std::count(build_.kinds.begin(), build_.kinds.end(), CellKind::kMovable));
  build_.num_physical = n;

  // Build net CSR. Pins keep their within-net insertion order.
  const std::size_t num_nets = build_.net_names.size();
  build_.net_pin_start.assign(num_nets + 1, 0);
  for (const RawPin& p : raw_pins_) ++build_.net_pin_start[p.net + 1];
  for (std::size_t e = 0; e < num_nets; ++e) {
    build_.net_pin_start[e + 1] += build_.net_pin_start[e];
  }
  const std::size_t num_pins = raw_pins_.size();
  build_.pin_cell.resize(num_pins);
  build_.pin_net.resize(num_pins);
  build_.pin_offset_x.resize(num_pins);
  build_.pin_offset_y.resize(num_pins);
  {
    std::vector<std::uint32_t> cursor(build_.net_pin_start.begin(),
                                      build_.net_pin_start.end() - 1);
    for (const RawPin& p : raw_pins_) {
      const std::uint32_t slot = cursor[p.net]++;
      build_.pin_cell[slot] = old_to_new[p.cell];
      build_.pin_net[slot] = static_cast<std::uint32_t>(p.net);
      build_.pin_offset_x[slot] = p.ox;
      build_.pin_offset_y[slot] = p.oy;
    }
  }
  raw_pins_.clear();
  raw_pins_.shrink_to_fit();

  // Build cell→pin CSR.
  build_.cell_pin_start.assign(n + 1, 0);
  for (std::uint32_t c : build_.pin_cell) ++build_.cell_pin_start[c + 1];
  for (std::size_t c = 0; c < n; ++c) {
    build_.cell_pin_start[c + 1] += build_.cell_pin_start[c];
  }
  build_.cell_pin_list.resize(num_pins);
  {
    std::vector<std::uint32_t> cursor(build_.cell_pin_start.begin(),
                                      build_.cell_pin_start.end() - 1);
    for (std::uint32_t p = 0; p < num_pins; ++p) {
      build_.cell_pin_list[cursor[build_.pin_cell[p]]++] = p;
    }
  }

  // Default region: bounding box of rows if provided and region unset.
  if (build_.region.width() <= 0.0 && !build_.rows.empty()) {
    RectD r{build_.rows[0].lx, build_.rows[0].ly, build_.rows[0].hx(), build_.rows[0].hy()};
    for (const Row& row : build_.rows) {
      r = r.united(RectD{row.lx, row.ly, row.hx(), row.hy()});
    }
    build_.region = r;
  }

  build_.total_movable_area = 0.0;
  for (std::size_t c = 0; c < build_.num_movable; ++c) {
    build_.total_movable_area += build_.widths[c] * build_.heights[c];
  }
  build_.fixed_area_in_region = 0.0;
  for (std::size_t c = build_.num_movable; c < n; ++c) {
    const double hw = build_.widths[c] * 0.5, hh = build_.heights[c] * 0.5;
    const RectD r{x_[c] - hw, y_[c] - hh, x_[c] + hw, y_[c] + hh};
    build_.fixed_area_in_region += r.overlap_area(build_.region);
  }

  // Freeze: parse-time data becomes the shared immutable core; per-run state
  // (positions, overlays, density) seeds from it.
  target_density_run_ = build_.target_density;
  total_movable_area_run_ = build_.total_movable_area;
  const std::string name = build_.design_name;
  const std::size_t movable = build_.num_movable;
  core_ = std::make_shared<const DesignCore>(std::move(build_));
  build_ = DesignCore{};
  finalized_ = true;
  XP_DEBUG("finalized design '%s': %zu movable, %zu fixed, %zu nets, %zu pins",
           name.c_str(), movable, num_fixed(), num_nets, num_pins);
}

void Database::scale_cell_width(std::size_t cell, double factor) {
  if (!finalized_) throw std::logic_error("scale_cell_width before finalize");
  if (cell >= C().num_movable) {
    throw std::invalid_argument("scale_cell_width: not a movable cell");
  }
  if (!filler_w_.empty()) {
    throw std::logic_error("scale_cell_width after filler insertion");
  }
  if (factor <= 0.0) throw std::invalid_argument("non-positive inflation factor");
  if (widths_cow_.empty()) widths_cow_ = C().widths;  // detach from shared core
  const double old_area = widths_cow_[cell] * C().heights[cell];
  widths_cow_[cell] *= factor;
  total_movable_area_run_ += widths_cow_[cell] * C().heights[cell] - old_area;
}

void Database::insert_fillers(std::uint64_t seed) {
  if (!finalized_) throw std::logic_error("insert_fillers before finalize");
  if (!filler_w_.empty()) {
    throw std::logic_error("fillers already inserted");
  }
  if (num_movable() == 0) return;

  // Filler size: mean movable width/height (ePlace uses the middle of the
  // sorted size distribution; the mean is equivalent for our size mixes).
  double mean_w = 0.0, mean_h = 0.0;
  for (std::size_t c = 0; c < num_movable(); ++c) {
    mean_w += width(c);
    mean_h += height(c);
  }
  mean_w /= static_cast<double>(num_movable());
  mean_h /= static_cast<double>(num_movable());
  const double one_area = std::max(1e-12, mean_w * mean_h);

  Rng rng(seed);
  std::size_t total_count = 0;
  // Per electrostatic region: allowed area, fixed blockage inside it, member
  // movable area; filler budget = D_t·free − movable (DREAMPlace 3.0 style).
  const std::vector<FenceRegion>& fence_list = C().fences;
  const RectD region_rect = C().region;
  const int num_regions = static_cast<int>(fence_list.size());
  for (int k = -1; k < num_regions; ++k) {
    double allowed_area;
    RectD bounds = region_rect;
    if (k >= 0) {
      bounds = fence_list[k].rect.intersection(region_rect);
      allowed_area = std::max(0.0, bounds.width()) * std::max(0.0, bounds.height());
    } else {
      allowed_area = region_rect.area();
      for (const FenceRegion& f : fence_list) {
        allowed_area -= f.rect.intersection(region_rect).area();
      }
    }
    double fixed_area = 0.0;
    for (std::size_t c = num_movable(); c < num_physical(); ++c) {
      const RectD r = cell_rect(c).intersection(region_rect);
      if (r.width() <= 0 || r.height() <= 0) continue;
      if (k >= 0) {
        fixed_area += r.overlap_area(fence_list[k].rect);
      } else {
        double inside_fences = 0.0;
        for (const FenceRegion& f : fence_list) inside_fences += r.overlap_area(f.rect);
        fixed_area += r.area() - inside_fences;
      }
    }
    double movable_area = 0.0;
    for (std::size_t c = 0; c < num_movable(); ++c) {
      if (cell_fence(c) == k) movable_area += area(c);
    }
    const double filler_area =
        std::max(0.0, target_density_run_ * (allowed_area - fixed_area) - movable_area);
    const std::size_t count = static_cast<std::size_t>(filler_area / one_area);
    if (count == 0) continue;

    const double lo_x = bounds.lx + mean_w * 0.5, hi_x = bounds.hx - mean_w * 0.5;
    const double lo_y = bounds.ly + mean_h * 0.5, hi_y = bounds.hy - mean_h * 0.5;
    for (std::size_t i = 0; i < count; ++i) {
      filler_names_.push_back("__filler_" + std::to_string(total_count + i));
      filler_w_.push_back(mean_w);
      filler_h_.push_back(mean_h);
      double fx, fy;
      if (k < 0 && !fence_list.empty()) {
        // Default-region fillers: rejection-sample outside the fences.
        fx = rng.uniform(lo_x, std::max(lo_x + 1e-9, hi_x));
        fy = rng.uniform(lo_y, std::max(lo_y + 1e-9, hi_y));
        for (int tries = 0; tries < 16; ++tries) {
          bool inside = false;
          for (const FenceRegion& f : fence_list) {
            if (f.rect.contains(fx, fy)) {
              inside = true;
              break;
            }
          }
          if (!inside) break;
          fx = rng.uniform(lo_x, std::max(lo_x + 1e-9, hi_x));
          fy = rng.uniform(lo_y, std::max(lo_y + 1e-9, hi_y));
        }
      } else {
        fx = rng.uniform(lo_x, std::max(lo_x + 1e-9, hi_x));
        fy = rng.uniform(lo_y, std::max(lo_y + 1e-9, hi_y));
      }
      x_.push_back(fx);
      y_.push_back(fy);
      filler_fence_.push_back(k);
    }
    total_count += count;
  }
  XP_DEBUG("inserted %zu fillers of %.3g x %.3g", total_count, mean_w, mean_h);
}

int Database::cell_id(const std::string& name) const {
  const auto& index = C().cell_index;
  auto it = index.find(name);
  return it == index.end() ? -1 : it->second;
}

double Database::net_hpwl(std::size_t net) const {
  const DesignCore& k = C();
  const std::size_t begin = k.net_pin_start[net], end = k.net_pin_start[net + 1];
  if (end - begin < 2) return 0.0;
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (std::size_t p = begin; p < end; ++p) {
    const std::uint32_t c = k.pin_cell[p];
    const double px = x_[c] + k.pin_offset_x[p];
    const double py = y_[c] + k.pin_offset_y[p];
    min_x = std::min(min_x, px);
    max_x = std::max(max_x, px);
    min_y = std::min(min_y, py);
    max_y = std::max(max_y, py);
  }
  return (max_x - min_x) + (max_y - min_y);
}

double Database::hpwl() const {
  double total = 0.0;
  const std::vector<double>& weights = C().net_weights;
  for (std::size_t e = 0; e < weights.size(); ++e) {
    total += weights[e] * net_hpwl(e);
  }
  return total;
}

}  // namespace xplace::db
