// Internal per-net helpers shared by the serial and parallel WA wirelength
// kernels. Not part of the public API.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "ops/netlist_view.h"
#include "util/simd.h"

namespace xplace::ops::detail {

struct NetExtent {
  float min_x, max_x, min_y, max_y;
};

inline NetExtent net_extent(const NetlistView& v, std::size_t e, const float* x,
                            const float* y) {
  NetExtent ext{std::numeric_limits<float>::max(),
                std::numeric_limits<float>::lowest(),
                std::numeric_limits<float>::max(),
                std::numeric_limits<float>::lowest()};
  for (std::size_t p = v.net_start[e]; p < v.net_start[e + 1]; ++p) {
    const float px = x[v.pin_cell[p]] + v.pin_ox[p];
    const float py = y[v.pin_cell[p]] + v.pin_oy[p];
    ext.min_x = std::min(ext.min_x, px);
    ext.max_x = std::max(ext.max_x, px);
    ext.min_y = std::min(ext.min_y, py);
    ext.max_y = std::max(ext.max_y, py);
  }
  return ext;
}

/// Stable WA exp-sum accumulators for one net/direction.
struct WaTerms {
  double sum_e_max = 0.0, sum_xe_max = 0.0;  // s_i, x_i·s_i, s = exp((x-max)/γ)
  double sum_e_min = 0.0, sum_xe_min = 0.0;  // u_i, x_i·u_i, u = exp((min-x)/γ)

  double wl() const { return sum_xe_max / sum_e_max - sum_xe_min / sum_e_min; }
};

inline WaTerms wa_terms(const NetlistView& v, std::size_t e, const float* pos,
                        const float* off, float lo, float hi, float inv_gamma) {
  WaTerms t;
  for (std::size_t p = v.net_start[e]; p < v.net_start[e + 1]; ++p) {
    const float px = pos[v.pin_cell[p]] + off[p];
    const double s = std::exp((px - hi) * inv_gamma);
    const double u = std::exp((lo - px) * inv_gamma);
    t.sum_e_max += s;
    t.sum_xe_max += px * s;
    t.sum_e_min += u;
    t.sum_xe_min += px * u;
  }
  return t;
}

/// Scatter the stable-form WA gradient of one net/direction into grad.
inline void wa_scatter(const NetlistView& v, std::size_t e, const float* pos,
                       const float* off, float lo, float hi, float inv_gamma,
                       const WaTerms& t, float weight, float* grad) {
  const double wl_max = t.sum_xe_max / t.sum_e_max;
  const double wl_min = t.sum_xe_min / t.sum_e_min;
  const double inv_smax = 1.0 / t.sum_e_max;
  const double inv_smin = 1.0 / t.sum_e_min;
  for (std::size_t p = v.net_start[e]; p < v.net_start[e + 1]; ++p) {
    const std::uint32_t c = v.pin_cell[p];
    const float px = pos[c] + off[p];
    const double s = std::exp((px - hi) * inv_gamma);
    const double u = std::exp((lo - px) * inv_gamma);
    const double d_max = s * (1.0 + (px - wl_max) * inv_gamma) * inv_smax;
    const double d_min = u * (1.0 - (px - wl_min) * inv_gamma) * inv_smin;
    grad[c] += weight * static_cast<float>(d_max - d_min);
  }
}

/// Full fused treatment of one net: HPWL + WA + gradient scatter.
inline void fused_net(const NetlistView& v, std::size_t e, const float* x,
                      const float* y, float inv_gamma, float* grad_x,
                      float* grad_y, double& wa_acc, double& hpwl_acc) {
  const float w = v.net_weight[e];
  const NetExtent ext = net_extent(v, e, x, y);
  hpwl_acc += static_cast<double>(w) *
              ((ext.max_x - ext.min_x) + (ext.max_y - ext.min_y));
  const WaTerms tx = wa_terms(v, e, x, v.pin_ox.data(), ext.min_x, ext.max_x, inv_gamma);
  const WaTerms ty = wa_terms(v, e, y, v.pin_oy.data(), ext.min_y, ext.max_y, inv_gamma);
  wa_acc += static_cast<double>(w) * (tx.wl() + ty.wl());
  wa_scatter(v, e, x, v.pin_ox.data(), ext.min_x, ext.max_x, inv_gamma, tx, w, grad_x);
  wa_scatter(v, e, y, v.pin_oy.data(), ext.min_y, ext.max_y, inv_gamma, ty, w, grad_y);
}

// ---------------------------------------------------------------------------
// Batched vector path over a contiguous net range. Real netlists average
// ~3 pins per net, so vectorizing *within* one net leaves most lanes masked
// off and the per-net kernel-call overhead eats the gain. This path stages
// every pin of a whole net block through flat buffers instead: one long
// gather per axis, tiny scalar loops for the extents and exp *arguments*,
// then a single vexp sweep over all four argument segments — the exp calls
// are ~¾ of the scalar kernel's cost and here they run 8 pins per step with
// no masking. Sums, gradient arithmetic, and the scatter stay scalar per net
// in pin order, so the accumulation order (and the slot-ordered parallel
// reduction built on it) is unchanged. The grad[cell] += d scatter must stay
// scalar regardless: a net may reference one cell through several pins, and a
// vector scatter would drop the duplicate contributions.
// ---------------------------------------------------------------------------

/// Per-thread scratch for the batched path; sized to the largest block seen.
struct WaBatchScratch {
  std::vector<float> px, py;  // gathered pin positions
  std::vector<float> args;    // exp arguments: [sx | ux | sy | uy] segments
  std::vector<float> exps;    // vexp(args), same layout
  void ensure(std::size_t pins) {
    if (px.size() < pins) {
      px.resize(pins);
      py.resize(pins);
      args.resize(4 * pins);
      exps.resize(4 * pins);
    }
  }
};

/// Batched treatment of nets [e0, e1): kHpwl accumulates exact HPWL, kWl the
/// WA wirelength, kGrad scatters the WA gradient. Equivalent accumulator
/// structure to a per-net loop (per-net additions in net order into the same
/// double accumulators); per-pin exp terms within vexp's documented ≤2-ULP
/// envelope of the scalar path; the HPWL extent math is bitwise-identical.
template <bool kGrad, bool kWl, bool kHpwl>
inline void wa_range_simd(const simd::Kernels& k, const NetlistView& v,
                          std::size_t e0, std::size_t e1, const float* x,
                          const float* y, float inv_gamma, float* grad_x,
                          float* grad_y, double& wa_acc, double& hpwl_acc,
                          WaBatchScratch& sc) {
  constexpr bool kExp = kGrad || kWl;
  constexpr std::size_t kBlockPins = 16384;  // keeps the staging L2-resident
  while (e0 < e1) {
    std::size_t eb = e0;
    const std::size_t p0 = v.net_start[e0];
    while (eb < e1 && v.net_start[eb + 1] - p0 <= kBlockPins) ++eb;
    if (eb == e0) ++eb;  // one oversized net: process it alone
    const std::size_t np = v.net_start[eb] - p0;
    sc.ensure(np);

    k.gather_pin_pos(x, v.pin_cell.data() + p0, v.pin_ox.data() + p0,
                     sc.px.data(), np);
    k.gather_pin_pos(y, v.pin_cell.data() + p0, v.pin_oy.data() + p0,
                     sc.py.data(), np);

    float* const axs = sc.args.data();
    float* const axu = axs + np;
    float* const ays = axu + np;
    float* const ayu = ays + np;
    for (std::size_t e = e0; e < eb; ++e) {
      if (!v.net_mask[e]) continue;  // stale args are harmless: never read
      const std::size_t b = v.net_start[e] - p0;
      const std::size_t n = v.net_start[e + 1] - v.net_start[e];
      float min_x = std::numeric_limits<float>::max();
      float max_x = std::numeric_limits<float>::lowest();
      float min_y = std::numeric_limits<float>::max();
      float max_y = std::numeric_limits<float>::lowest();
      for (std::size_t i = 0; i < n; ++i) {
        min_x = std::min(min_x, sc.px[b + i]);
        max_x = std::max(max_x, sc.px[b + i]);
        min_y = std::min(min_y, sc.py[b + i]);
        max_y = std::max(max_y, sc.py[b + i]);
      }
      if constexpr (kHpwl) {
        hpwl_acc += static_cast<double>(v.net_weight[e]) *
                    ((max_x - min_x) + (max_y - min_y));
      }
      if constexpr (kExp) {
        for (std::size_t i = 0; i < n; ++i) {
          axs[b + i] = (sc.px[b + i] - max_x) * inv_gamma;
          axu[b + i] = (min_x - sc.px[b + i]) * inv_gamma;
          ays[b + i] = (sc.py[b + i] - max_y) * inv_gamma;
          ayu[b + i] = (min_y - sc.py[b + i]) * inv_gamma;
        }
      }
    }

    if constexpr (kExp) {
      k.vexp(sc.args.data(), sc.exps.data(), 4 * np);

      const float* const sx = sc.exps.data();
      const float* const ux = sx + np;
      const float* const sy = ux + np;
      const float* const uy = sy + np;
      for (std::size_t e = e0; e < eb; ++e) {
        if (!v.net_mask[e]) continue;
        const std::size_t b = v.net_start[e] - p0;
        const std::size_t n = v.net_start[e + 1] - v.net_start[e];
        const float w = v.net_weight[e];
        WaTerms tx, ty;
        for (std::size_t i = 0; i < n; ++i) {
          const float pxi = sc.px[b + i], pyi = sc.py[b + i];
          tx.sum_e_max += sx[b + i];
          tx.sum_xe_max += pxi * sx[b + i];
          tx.sum_e_min += ux[b + i];
          tx.sum_xe_min += pxi * ux[b + i];
          ty.sum_e_max += sy[b + i];
          ty.sum_xe_max += pyi * sy[b + i];
          ty.sum_e_min += uy[b + i];
          ty.sum_xe_min += pyi * uy[b + i];
        }
        if constexpr (kWl) {
          wa_acc += static_cast<double>(w) * (tx.wl() + ty.wl());
        }
        if constexpr (kGrad) {
          const double wlx_max = tx.sum_xe_max / tx.sum_e_max;
          const double wlx_min = tx.sum_xe_min / tx.sum_e_min;
          const double wly_max = ty.sum_xe_max / ty.sum_e_max;
          const double wly_min = ty.sum_xe_min / ty.sum_e_min;
          const double ix_max = 1.0 / tx.sum_e_max;
          const double ix_min = 1.0 / tx.sum_e_min;
          const double iy_max = 1.0 / ty.sum_e_max;
          const double iy_min = 1.0 / ty.sum_e_min;
          for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t c = v.pin_cell[p0 + b + i];
            const double pxi = sc.px[b + i], pyi = sc.py[b + i];
            const double dx_max =
                sx[b + i] * (1.0 + (pxi - wlx_max) * inv_gamma) * ix_max;
            const double dx_min =
                ux[b + i] * (1.0 - (pxi - wlx_min) * inv_gamma) * ix_min;
            grad_x[c] += w * static_cast<float>(dx_max - dx_min);
            const double dy_max =
                sy[b + i] * (1.0 + (pyi - wly_max) * inv_gamma) * iy_max;
            const double dy_min =
                uy[b + i] * (1.0 - (pyi - wly_min) * inv_gamma) * iy_min;
            grad_y[c] += w * static_cast<float>(dy_max - dy_min);
          }
        }
      }
    }
    e0 = eb;
  }
}

/// Fused HPWL + WA + gradient over nets [e0, e1) — the Xplace hot path.
inline void fused_range_simd(const simd::Kernels& k, const NetlistView& v,
                             std::size_t e0, std::size_t e1, const float* x,
                             const float* y, float inv_gamma, float* grad_x,
                             float* grad_y, double& wa_acc, double& hpwl_acc,
                             WaBatchScratch& sc) {
  wa_range_simd<true, true, true>(k, v, e0, e1, x, y, inv_gamma, grad_x,
                                  grad_y, wa_acc, hpwl_acc, sc);
}

}  // namespace xplace::ops::detail
