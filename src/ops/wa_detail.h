// Internal per-net helpers shared by the serial and parallel WA wirelength
// kernels. Not part of the public API.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "ops/netlist_view.h"

namespace xplace::ops::detail {

struct NetExtent {
  float min_x, max_x, min_y, max_y;
};

inline NetExtent net_extent(const NetlistView& v, std::size_t e, const float* x,
                            const float* y) {
  NetExtent ext{std::numeric_limits<float>::max(),
                std::numeric_limits<float>::lowest(),
                std::numeric_limits<float>::max(),
                std::numeric_limits<float>::lowest()};
  for (std::size_t p = v.net_start[e]; p < v.net_start[e + 1]; ++p) {
    const float px = x[v.pin_cell[p]] + v.pin_ox[p];
    const float py = y[v.pin_cell[p]] + v.pin_oy[p];
    ext.min_x = std::min(ext.min_x, px);
    ext.max_x = std::max(ext.max_x, px);
    ext.min_y = std::min(ext.min_y, py);
    ext.max_y = std::max(ext.max_y, py);
  }
  return ext;
}

/// Stable WA exp-sum accumulators for one net/direction.
struct WaTerms {
  double sum_e_max = 0.0, sum_xe_max = 0.0;  // s_i, x_i·s_i, s = exp((x-max)/γ)
  double sum_e_min = 0.0, sum_xe_min = 0.0;  // u_i, x_i·u_i, u = exp((min-x)/γ)

  double wl() const { return sum_xe_max / sum_e_max - sum_xe_min / sum_e_min; }
};

inline WaTerms wa_terms(const NetlistView& v, std::size_t e, const float* pos,
                        const float* off, float lo, float hi, float inv_gamma) {
  WaTerms t;
  for (std::size_t p = v.net_start[e]; p < v.net_start[e + 1]; ++p) {
    const float px = pos[v.pin_cell[p]] + off[p];
    const double s = std::exp((px - hi) * inv_gamma);
    const double u = std::exp((lo - px) * inv_gamma);
    t.sum_e_max += s;
    t.sum_xe_max += px * s;
    t.sum_e_min += u;
    t.sum_xe_min += px * u;
  }
  return t;
}

/// Scatter the stable-form WA gradient of one net/direction into grad.
inline void wa_scatter(const NetlistView& v, std::size_t e, const float* pos,
                       const float* off, float lo, float hi, float inv_gamma,
                       const WaTerms& t, float weight, float* grad) {
  const double wl_max = t.sum_xe_max / t.sum_e_max;
  const double wl_min = t.sum_xe_min / t.sum_e_min;
  const double inv_smax = 1.0 / t.sum_e_max;
  const double inv_smin = 1.0 / t.sum_e_min;
  for (std::size_t p = v.net_start[e]; p < v.net_start[e + 1]; ++p) {
    const std::uint32_t c = v.pin_cell[p];
    const float px = pos[c] + off[p];
    const double s = std::exp((px - hi) * inv_gamma);
    const double u = std::exp((lo - px) * inv_gamma);
    const double d_max = s * (1.0 + (px - wl_max) * inv_gamma) * inv_smax;
    const double d_min = u * (1.0 - (px - wl_min) * inv_gamma) * inv_smin;
    grad[c] += weight * static_cast<float>(d_max - d_min);
  }
}

/// Full fused treatment of one net: HPWL + WA + gradient scatter.
inline void fused_net(const NetlistView& v, std::size_t e, const float* x,
                      const float* y, float inv_gamma, float* grad_x,
                      float* grad_y, double& wa_acc, double& hpwl_acc) {
  const float w = v.net_weight[e];
  const NetExtent ext = net_extent(v, e, x, y);
  hpwl_acc += static_cast<double>(w) *
              ((ext.max_x - ext.min_x) + (ext.max_y - ext.min_y));
  const WaTerms tx = wa_terms(v, e, x, v.pin_ox.data(), ext.min_x, ext.max_x, inv_gamma);
  const WaTerms ty = wa_terms(v, e, y, v.pin_oy.data(), ext.min_y, ext.max_y, inv_gamma);
  wa_acc += static_cast<double>(w) * (tx.wl() + ty.wl());
  wa_scatter(v, e, x, v.pin_ox.data(), ext.min_x, ext.max_x, inv_gamma, tx, w, grad_x);
  wa_scatter(v, e, y, v.pin_oy.data(), ext.min_y, ext.max_y, inv_gamma, ty, w, grad_y);
}

}  // namespace xplace::ops::detail
