#include "ops/parallel.h"

#include <algorithm>
#include <vector>

#include "ops/wa_detail.h"
#include "tensor/dispatch.h"

namespace xplace::ops {

using tensor::Dispatcher;

WirelengthSums fused_wl_grad_hpwl_mt(const NetlistView& v, const float* x,
                                     const float* y, float gamma,
                                     float* grad_x, float* grad_y,
                                     ThreadPool& pool) {
  WirelengthSums sums;
  Dispatcher::global().run("fused_wl_grad_hpwl_mt", [&] {
    const float inv_gamma = 1.0f / gamma;
    const std::size_t workers = pool.size();
    if (workers <= 1 || v.num_nets < 256) {
      for (std::size_t e = 0; e < v.num_nets; ++e) {
        if (!v.net_mask[e]) continue;
        detail::fused_net(v, e, x, y, inv_gamma, grad_x, grad_y, sums.wa,
                          sums.hpwl);
      }
      return;
    }
    const std::size_t n_cells = [&] {
      std::size_t mx = 0;
      for (std::uint32_t c : v.pin_cell) mx = std::max<std::size_t>(mx, c + 1);
      return mx;
    }();
    // Static partition: worker w owns nets [w·N/W, (w+1)·N/W) and a private
    // gradient buffer; buffers reduce in worker order (deterministic).
    std::vector<std::vector<float>> gx(workers), gy(workers);
    std::vector<double> wa(workers, 0.0), hp(workers, 0.0);
    for (auto& g : gx) g.assign(n_cells, 0.0f);
    for (auto& g : gy) g.assign(n_cells, 0.0f);
    pool.parallel_for(workers, [&](std::size_t b, std::size_t e_, std::size_t) {
      for (std::size_t w = b; w < e_; ++w) {
        const std::size_t lo = w * v.num_nets / workers;
        const std::size_t hi = (w + 1) * v.num_nets / workers;
        for (std::size_t e = lo; e < hi; ++e) {
          if (!v.net_mask[e]) continue;
          detail::fused_net(v, e, x, y, inv_gamma, gx[w].data(), gy[w].data(),
                            wa[w], hp[w]);
        }
      }
    });
    for (std::size_t w = 0; w < workers; ++w) {
      sums.wa += wa[w];
      sums.hpwl += hp[w];
      for (std::size_t c = 0; c < n_cells; ++c) {
        grad_x[c] += gx[w][c];
        grad_y[c] += gy[w][c];
      }
    }
  });
  return sums;
}

void accumulate_range_mt(const DensityGrid& grid, const char* opname,
                         const float* x, const float* y, std::size_t begin,
                         std::size_t end, double* map, bool clear,
                         ThreadPool& pool) {
  Dispatcher::global().run(opname, [&] {
    if (clear) std::fill(map, map + grid.num_bins(), 0.0);
    const std::size_t workers = pool.size();
    const std::size_t count = end - begin;
    if (workers <= 1 || count < 512) {
      for (std::size_t c = begin; c < end; ++c) {
        const double scale = grid.cell_density_scale(c) * grid.inv_bin_area();
        grid.for_each_overlap(c, x, y, [&](std::size_t bin, double overlap) {
          map[bin] += overlap * scale;
        });
      }
      return;
    }
    std::vector<std::vector<double>> partial(workers);
    for (auto& p : partial) p.assign(grid.num_bins(), 0.0);
    pool.parallel_for(workers, [&](std::size_t b, std::size_t e_, std::size_t) {
      for (std::size_t w = b; w < e_; ++w) {
        const std::size_t lo = begin + w * count / workers;
        const std::size_t hi = begin + (w + 1) * count / workers;
        double* m = partial[w].data();
        for (std::size_t c = lo; c < hi; ++c) {
          const double scale = grid.cell_density_scale(c) * grid.inv_bin_area();
          grid.for_each_overlap(c, x, y, [&](std::size_t bin, double overlap) {
            m[bin] += overlap * scale;
          });
        }
      }
    });
    for (std::size_t w = 0; w < workers; ++w) {
      for (std::size_t b = 0; b < grid.num_bins(); ++b) map[b] += partial[w][b];
    }
  });
}

void gather_field_mt(const DensityGrid& grid, const char* opname,
                     const float* x, const float* y, std::size_t begin,
                     std::size_t end, const double* ex, const double* ey,
                     float coeff, float* grad_x, float* grad_y,
                     ThreadPool& pool) {
  Dispatcher::global().run(opname, [&] {
    // Each cell owns its gradient slot: direct parallel write is safe.
    pool.parallel_for(end - begin, [&](std::size_t b, std::size_t e_, std::size_t) {
      for (std::size_t i = b; i < e_; ++i) {
        const std::size_t c = begin + i;
        double fx = 0.0, fy = 0.0;
        grid.for_each_overlap(c, x, y, [&](std::size_t bin, double overlap) {
          fx += overlap * ex[bin];
          fy += overlap * ey[bin];
        });
        const double q = grid.cell_density_scale(c) * grid.inv_bin_area();
        grad_x[c] += coeff * static_cast<float>(q * fx);
        grad_y[c] += coeff * static_cast<float>(q * fy);
      }
    });
  });
}

}  // namespace xplace::ops
